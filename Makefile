# Developer entry points. `make ci` is the gate a change must pass.

GO ?= go

.PHONY: all build vet test race short chaos fuzz telemetry-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Quick loop: skips the long chaos campaigns (they run reduced iterations).
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Standalone fault-injection acceptance run (the same harness the chaos
# tests drive, at CLI scale): Independent protocol under ~1.7% per-delivery
# faults, then Split with a mid-run shard fail-stop surviving via parity.
chaos:
	$(GO) run ./cmd/sdimm-chaos -n 5000
	$(GO) run ./cmd/sdimm-chaos -split -failshard 1 -n 2000

# End-to-end telemetry smoke: a short Independent run with span tracing,
# exporting Chrome trace-event JSON. sdimm-sim re-validates the written
# file against the trace schema and exits nonzero if it is malformed; the
# grep asserts the validation line actually appeared.
telemetry-smoke:
	@out=$$(mktemp -t sdimm-trace-XXXXXX.json) && \
	$(GO) run ./cmd/sdimm-sim -protocol independent -levels 20 -warmup 100 -measure 300 -trace $$out | grep -E '^trace .*validated' && \
	rm -f $$out

# Wire-format decoders must never panic on hostile input.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalAccess -fuzztime=20s ./internal/sdimm
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalResponse -fuzztime=20s ./internal/sdimm
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalAppend -fuzztime=20s ./internal/sdimm

ci: build vet race telemetry-smoke
