# Developer entry points. `make ci` is the gate a change must pass.

GO ?= go

.PHONY: all build vet test race short chaos fuzz ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Quick loop: skips the long chaos campaigns (they run reduced iterations).
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Standalone fault-injection acceptance run (the same harness the chaos
# tests drive, at CLI scale): Independent protocol under ~1.7% per-delivery
# faults, then Split with a mid-run shard fail-stop surviving via parity.
chaos:
	$(GO) run ./cmd/sdimm-chaos -n 5000
	$(GO) run ./cmd/sdimm-chaos -split -failshard 1 -n 2000

# Wire-format decoders must never panic on hostile input.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalAccess -fuzztime=20s ./internal/sdimm
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalResponse -fuzztime=20s ./internal/sdimm
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalAppend -fuzztime=20s ./internal/sdimm

ci: build vet race
