# Developer entry points. `make ci` is the gate a change must pass.

GO ?= go

.PHONY: all build vet test race short chaos crash elastic fuzz telemetry-smoke serve-smoke bench blame alloc-gates profile soak soak-short ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Quick loop: skips the long chaos campaigns (they run reduced iterations).
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Standalone fault-injection acceptance run (the same harness the chaos
# tests drive, at CLI scale): Independent protocol under ~1.7% per-delivery
# faults, then Split with a mid-run shard fail-stop surviving via parity.
chaos:
	$(GO) run ./cmd/sdimm-chaos -n 5000
	$(GO) run ./cmd/sdimm-chaos -ringflush 4 -n 3000
	$(GO) run ./cmd/sdimm-chaos -split -failshard 1 -n 2000

# Crash-recovery equivalence sweep (bounded runtime, fully seeded): restart
# points tear the journal mid-record, the cluster restarts from disk, and the
# recovered run must be bitwise-equivalent to an uncrashed reference. The
# -corrupt legs persist a flipped sealed-bucket bit into a checkpoint, so the
# PMMAC scrub — not the journal — has to catch it: Independent must poison
# the lost addresses, Split must repair from parity.
crash:
	$(GO) run ./cmd/sdimm-chaos -crash -n 1200 -crashes 4 -interval 64
	$(GO) run ./cmd/sdimm-chaos -crash -n 1200 -crashes 4 -parallel 4
	$(GO) run ./cmd/sdimm-chaos -crash -ringflush 4 -n 1200 -crashes 4 -parallel 4
	$(GO) run ./cmd/sdimm-chaos -crash -n 800 -crashes 3 -corrupt
	$(GO) run ./cmd/sdimm-chaos -crash -split -n 800 -crashes 3 -corrupt

# Elastic-membership equivalence sweep, under the race detector: drain /
# detach / rejoin a member (Independent) and fail-stop / rebuild-from-parity
# a member (Split) while seeded crashes land anywhere in the record stream —
# including inside migration batches and on the topology records themselves.
# Every recovery must be bitwise-equivalent to an uncrashed reference, with
# migrations flowing both sequentially and through the 4-worker pipeline.
elastic:
	$(GO) run -race ./cmd/sdimm-chaos -resize -n 600 -crashes 3 -interval 48
	$(GO) run -race ./cmd/sdimm-chaos -resize -n 600 -crashes 3 -interval 48 -parallel 4
	$(GO) run -race ./cmd/sdimm-chaos -resize -split -n 600 -crashes 3 -interval 48
	$(GO) test -race -count=1 -run 'TestDrainTrafficIndistinguishable' ./internal/attacker

# End-to-end telemetry smoke: a short Independent run with span tracing,
# exporting Chrome trace-event JSON. sdimm-sim re-validates the written
# file against the trace schema and exits nonzero if it is malformed; the
# grep asserts the validation line actually appeared.
telemetry-smoke:
	@out=$$(mktemp -t sdimm-trace-XXXXXX.json) && \
	$(GO) run ./cmd/sdimm-sim -protocol independent -levels 20 -warmup 100 -measure 300 -trace $$out | grep -E '^trace .*validated' && \
	rm -f $$out

# Parallel-engine throughput report: times the batched cluster pipeline at
# 1/2/4/8 workers and the campaign runner at 1 vs 8 workers, then writes
# BENCH_parallel.json (accesses/sec, speedups, NumCPU, GOMAXPROCS). With ≥4
# effective CPUs (min of NumCPU and GOMAXPROCS) the speedup gates are
# enforced (4-worker pipeline ≥2x; with ≥8 effective CPUs, 8-worker campaign
# ≥2x); smaller hosts record the curve without enforcing, flagged by
# "gate_enforced": false in the JSON.
bench: alloc-gates
	$(GO) run ./cmd/sdimm-bench -exp parbench -parbench-out BENCH_parallel.json
	$(GO) run ./cmd/sdimm-bench -exp recbench -recbench-out BENCH_recovery.json
	$(GO) run ./cmd/sdimm-bench -exp hotpath -hotpath-out BENCH_hotpath.json
	$(GO) run ./cmd/sdimm-bench -exp rebalance -rebalance-out BENCH_rebalance.json
	$(GO) run ./cmd/sdimm-bench -exp ringbench -ringbench-out BENCH_ring.json
	$(GO) run ./cmd/sdimm-serve -bench -bench-out BENCH_serve.json

# Critical-path blame profile of the batched pipeline: per-wave phase
# breakdown plus the serialization ledger (coordinator phases ranked by
# all-workers-idle wall-clock) at 1 and 4 workers → BENCH_blame.json.
# Gates: ≥90% of wave wall-clock attributed (the contiguous-interval
# construction makes it exactly 100%) and a non-empty ledger with a named
# top bottleneck. See README, "Diagnosing a slow pipeline".
blame:
	$(GO) run ./cmd/sdimm-bench -exp blame -blame-out BENCH_blame.json

# Allocation-regression gates for the steady-state access loop: seal/open,
# Engine.Access, and the journal commit must stay at 0 allocs/op. These run
# without -race on purpose — race instrumentation allocates, so the gate
# tests skip themselves under it (see internal/raceflag).
alloc-gates:
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/seccomm ./internal/oram ./internal/durable

# CPU and heap profiles of the access hot path, for digging into a
# regression the alloc gates or BENCH_hotpath.json surfaced. Inspect with
# `go tool pprof hotpath.cpu.pprof` (then `top`, `list <func>`, `web`).
profile:
	$(GO) run ./cmd/sdimm-bench -exp hotpath -hotpath-out BENCH_hotpath.json \
		-cpuprofile hotpath.cpu.pprof -memprofile hotpath.heap.pprof
	@echo "profiles: hotpath.cpu.pprof hotpath.heap.pprof (go tool pprof <file>)"

# Wire-format decoders must never panic on hostile input. The durable-state
# decoders (journal records, checkpoints) must additionally fail closed:
# anything they accept is chain-authenticated and canonical. The sharded
# position map's fuzz leg cross-checks it against a plain map under random
# interleaved Get/Set/Snapshot traffic.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalAccess -fuzztime=20s ./internal/sdimm
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalResponse -fuzztime=20s ./internal/sdimm
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalAppend -fuzztime=20s ./internal/sdimm
	$(GO) test -run=NONE -fuzz=FuzzJournalDecode -fuzztime=20s ./internal/durable
	$(GO) test -run=NONE -fuzz=FuzzCheckpointDecode -fuzztime=20s ./internal/durable
	$(GO) test -run=NONE -fuzz=FuzzShardedPosMap -fuzztime=20s ./internal/oram
	$(GO) test -run=NONE -fuzz=FuzzRingStateDecode -fuzztime=20s ./internal/oram
	$(GO) test -run=NONE -fuzz=FuzzWireDecode -fuzztime=20s ./internal/serve

# Serving front-end smoke: the in-process sdimm-serve run (two tenants,
# closed-loop load, graceful drain, witness + zero-accepted-deadline-miss
# gates) followed by the secure-kv example, which exercises the same wire
# protocol as a thin KV client.
serve-smoke:
	$(GO) run ./cmd/sdimm-serve -smoke
	$(GO) run ./examples/secure-kv >/dev/null

# Pipeline soak, full tier: the randomized stress wall around the overlapped
# engine (16 scenarios × 1000 mixed read/write/migrate ops, windows 1..12,
# transient faults and fail-stops, parallelism 1 vs 2/4/8 bitwise) under the
# race detector. `make race` already runs the default tier; this is the
# pre-merge deep soak.
soak:
	$(GO) test -race -count=1 -run 'TestPipelineSoak' -soak.long -timeout 30m .

# Fast pipeline gates, run explicitly in ci on top of the full race suite:
# the short-tier soak plus the blame regression (top serialization phase
# must hold <25% of wall-clock at 4 workers on a multicore host).
soak-short:
	$(GO) test -race -count=1 -short -run 'TestPipelineSoak|TestPipelineBlameRegression' .

ci: build vet race soak-short telemetry-smoke serve-smoke bench blame crash elastic
