# Developer entry points. `make ci` is the gate a change must pass.

GO ?= go

.PHONY: all build vet test race short chaos fuzz telemetry-smoke bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Quick loop: skips the long chaos campaigns (they run reduced iterations).
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Standalone fault-injection acceptance run (the same harness the chaos
# tests drive, at CLI scale): Independent protocol under ~1.7% per-delivery
# faults, then Split with a mid-run shard fail-stop surviving via parity.
chaos:
	$(GO) run ./cmd/sdimm-chaos -n 5000
	$(GO) run ./cmd/sdimm-chaos -split -failshard 1 -n 2000

# End-to-end telemetry smoke: a short Independent run with span tracing,
# exporting Chrome trace-event JSON. sdimm-sim re-validates the written
# file against the trace schema and exits nonzero if it is malformed; the
# grep asserts the validation line actually appeared.
telemetry-smoke:
	@out=$$(mktemp -t sdimm-trace-XXXXXX.json) && \
	$(GO) run ./cmd/sdimm-sim -protocol independent -levels 20 -warmup 100 -measure 300 -trace $$out | grep -E '^trace .*validated' && \
	rm -f $$out

# Parallel-engine throughput report: times the batched cluster pipeline at
# 1/2/4/8 workers and the campaign runner at 1 vs 8 workers, then writes
# BENCH_parallel.json (accesses/sec, speedups, NumCPU). On hosts with ≥4
# CPUs the speedup gates are enforced (4-worker pipeline ≥1.5x; with ≥8
# CPUs, 8-worker campaign ≥2x); smaller hosts record the curve without
# enforcing, flagged by "gate_enforced": false in the JSON.
bench:
	$(GO) run ./cmd/sdimm-bench -exp parbench -parbench-out BENCH_parallel.json

# Wire-format decoders must never panic on hostile input.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalAccess -fuzztime=20s ./internal/sdimm
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalResponse -fuzztime=20s ./internal/sdimm
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalAppend -fuzztime=20s ./internal/sdimm

ci: build vet race telemetry-smoke bench
