package sdimm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"sdimm/internal/oram"
	"sdimm/internal/rng"
)

func newCluster(t *testing.T, sdimms int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterOptions{
		SDIMMs: sdimms,
		Levels: 10,
		Key:    []byte("cluster-key"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterOptions{SDIMMs: 3, Levels: 10}); err == nil {
		t.Error("non-power-of-two SDIMM count accepted")
	}
	if _, err := NewCluster(ClusterOptions{SDIMMs: 1, Levels: 10}); err == nil {
		t.Error("single SDIMM accepted")
	}
	if _, err := NewCluster(ClusterOptions{SDIMMs: 8, Levels: 4}); err == nil {
		t.Error("too-shallow tree accepted")
	}
}

func TestClusterReadYourWrites(t *testing.T) {
	c := newCluster(t, 4)
	for i := uint64(0); i < 40; i++ {
		if err := c.Write(i, []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 40; i++ {
		got, err := c.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := fmt.Sprintf("record-%d", i)
		if string(got[:len(want)]) != want {
			t.Fatalf("read %d = %q", i, got[:len(want)])
		}
	}
}

func TestClusterUnwrittenReadsZero(t *testing.T) {
	c := newCluster(t, 2)
	got, err := c.Read(12345)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("unwritten block not zeros")
	}
}

func TestClusterBlocksMigrate(t *testing.T) {
	// Hammer one address: with 4 SDIMMs the block's leaf (and thus its
	// home SDIMM) changes on ~3/4 of accesses; data must survive every
	// migration, including reads served from the transfer queue.
	c := newCluster(t, 4)
	if err := c.Write(7, []byte("migratory")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		got, err := c.Read(7)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(got[:9]) != "migratory" {
			t.Fatalf("read %d lost data: %q", i, got[:9])
		}
	}
}

func TestClusterOverwrite(t *testing.T) {
	c := newCluster(t, 2)
	c.Write(3, []byte("old"))
	c.Write(3, []byte("new"))
	got, err := c.Read(3)
	if err != nil || string(got[:3]) != "new" {
		t.Fatalf("overwrite: %q %v", got[:3], err)
	}
}

func TestClusterOversizedWrite(t *testing.T) {
	c := newCluster(t, 2)
	if err := c.Write(0, make([]byte, 65)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestClusterStashesBounded(t *testing.T) {
	c := newCluster(t, 4)
	r := rng.New(3)
	for i := 0; i < 600; i++ {
		addr := r.Uint64n(150)
		if r.Bool(0.5) {
			if err := c.Write(addr, []byte{byte(addr)}); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		} else if _, err := c.Read(addr); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for i, n := range c.StashLens() {
		if n > 200 {
			t.Fatalf("buffer %d stash at %d", i, n)
		}
	}
}

// Property: the cluster behaves exactly like a map under random ops.
func TestClusterPropertyMatchesMap(t *testing.T) {
	c := newCluster(t, 2)
	ref := map[uint64][]byte{}
	f := func(addr uint64, data [24]byte, write bool) bool {
		addr %= 100
		if write {
			if err := c.Write(addr, data[:]); err != nil {
				return false
			}
			ref[addr] = append([]byte(nil), data[:]...)
			return true
		}
		got, err := c.Read(addr)
		if err != nil {
			return false
		}
		want, ok := ref[addr]
		if !ok {
			want = make([]byte, 24)
		}
		return bytes.Equal(got[:24], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterAccessorMethods(t *testing.T) {
	c := newCluster(t, 4)
	if c.SDIMMs() != 4 || c.BlockSize() != 64 {
		t.Fatalf("accessors: %d %d", c.SDIMMs(), c.BlockSize())
	}
}

func newSplitCluster(t *testing.T, k int) *SplitCluster {
	t.Helper()
	c, err := NewSplitCluster(SplitClusterOptions{
		SDIMMs: k,
		Levels: 10,
		Key:    []byte("split-key"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSplitClusterValidation(t *testing.T) {
	if _, err := NewSplitCluster(SplitClusterOptions{SDIMMs: 3, Levels: 10}); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewSplitCluster(SplitClusterOptions{SDIMMs: 2, Levels: 10, BlockSize: 63}); err == nil {
		t.Error("indivisible block size accepted")
	}
}

func TestSplitClusterReadYourWrites(t *testing.T) {
	for _, k := range []int{2, 4} {
		c := newSplitCluster(t, k)
		for i := uint64(0); i < 48; i++ {
			if err := c.Write(i, []byte(fmt.Sprintf("split-%d-%d", k, i))); err != nil {
				t.Fatalf("k=%d write %d: %v", k, i, err)
			}
		}
		for i := uint64(0); i < 48; i++ {
			got, err := c.Read(i)
			if err != nil {
				t.Fatalf("k=%d read %d: %v", k, i, err)
			}
			want := fmt.Sprintf("split-%d-%d", k, i)
			if string(got[:len(want)]) != want {
				t.Fatalf("k=%d read %d = %q", k, i, got[:len(want)])
			}
		}
	}
}

func TestSplitClusterShardsStayInLockstep(t *testing.T) {
	c := newSplitCluster(t, 4)
	r := rng.New(7)
	for i := 0; i < 300; i++ {
		addr := r.Uint64n(120)
		if r.Bool(0.5) {
			if err := c.Write(addr, []byte{byte(addr)}); err != nil {
				t.Fatal(err)
			}
		} else if _, err := c.Read(addr); err != nil {
			t.Fatal(err)
		}
		lens := c.StashLens()
		for _, n := range lens[1:] {
			if n != lens[0] {
				t.Fatalf("op %d: shard stashes diverged: %v", i, lens)
			}
		}
	}
}

func TestSplitClusterSpansShards(t *testing.T) {
	// A payload covering the whole block must survive: bytes land in
	// different shard trees and reassemble exactly.
	c := newSplitCluster(t, 4)
	full := make([]byte, 64)
	for i := range full {
		full[i] = byte(i + 1)
	}
	if err := c.Write(9, full); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatalf("shard reassembly corrupted: %v", got)
	}
}

func TestClusterDetectsActiveTampering(t *testing.T) {
	// An active attacker flips a ciphertext bit in a buffer's DRAM; the
	// next access touching that bucket must fail integrity verification
	// rather than return corrupted data (Section II-B: PMMAC).
	c := newCluster(t, 2)
	for i := uint64(0); i < 8; i++ {
		if err := c.Write(i, []byte{0xEE}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt every materialized bucket in every buffer.
	corrupted := 0
	for _, b := range c.buffers {
		ms := b.Engine().Store().(*oram.MemStore)
		for idx := uint64(0); idx < b.Engine().Geometry().Buckets(); idx++ {
			if ms.Corrupt(idx) {
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("nothing to corrupt")
	}
	sawError := false
	for i := uint64(0); i < 8 && !sawError; i++ {
		if _, err := c.Read(i); err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("tampered memory served reads without an integrity error")
	}
}
