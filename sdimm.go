// Package sdimm is a library-grade reproduction of "Secure DIMM: Moving
// ORAM Primitives Closer to Memory" (Shafiee, Balasubramonian, Li, Tiwari;
// HPCA 2018).
//
// It provides three layers:
//
//   - A functional Path ORAM (type ORAM) with real AES-CTR encrypted
//     buckets and PMMAC integrity, plus a distributed variant (type
//     Cluster) that runs the paper's Independent protocol across several
//     secure-buffer instances — usable as an oblivious block store.
//
//   - A cycle-level simulation stack (Simulate/Config) reproducing the
//     paper's evaluation platform: a DDR3 memory system under FR-FCFS
//     scheduling, a trace-driven in-order core with a 2 MB LLC, Freecursive
//     ORAM, and the three SDIMM protocols (Independent, Split,
//     Indep-Split) with energy accounting.
//
//   - The experiment drivers (package internal/experiments, exposed
//     through cmd/sdimm-bench and the repo-root benchmarks) that regenerate
//     every figure of the paper's evaluation.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package sdimm

import (
	"fmt"

	"sdimm/internal/config"
	"sdimm/internal/freecursive"
	"sdimm/internal/oram"
	"sdimm/internal/rng"
	"sdimm/internal/sim"
	"sdimm/internal/trace"
)

// Protocol selects a memory backend for simulation.
type Protocol = config.Protocol

// The protocols of the paper's evaluation (Figure 7 plus baselines), and
// Ring — the Independent topology with ring-style deferred eviction.
const (
	NonSecure   = config.NonSecure
	Freecursive = config.Freecursive
	Independent = config.Independent
	Split       = config.Split
	IndepSplit  = config.IndepSplit
	Ring        = config.Ring
)

// Config is a complete simulation configuration; DefaultConfig returns the
// paper's Table II parameters.
type Config = config.Config

// DefaultConfig returns the paper's configuration for a protocol and
// channel count (1 or 2 channels; 28 tree levels model the 32 GB system).
func DefaultConfig(p Protocol, channels int) Config {
	return config.Default(p, channels)
}

// Result is the outcome of one simulation run.
type Result = sim.Result

// Simulate runs one configuration against a named workload profile (one of
// Workloads()).
func Simulate(cfg Config, workload string) (Result, error) {
	return sim.Run(cfg, workload)
}

// Workloads lists the synthetic benchmark profiles (stand-ins for the
// paper's 10 SPEC CPU2006 traces).
func Workloads() []string {
	var out []string
	for _, p := range trace.Profiles() {
		out = append(out, p.Name)
	}
	return out
}

// ORAMOptions sizes a functional ORAM.
type ORAMOptions struct {
	// Levels is the tree height; capacity is about 2^(Levels-1) * 2 blocks.
	Levels int
	// BlockSize is the payload bytes per block (default 64).
	BlockSize int
	// Z is the bucket capacity (default 4).
	Z int
	// Key seeds the encryption and MAC keys.
	Key []byte
	// Seed makes leaf assignment deterministic (0 uses 1).
	Seed uint64
}

func (o *ORAMOptions) setDefaults() {
	if o.BlockSize == 0 {
		o.BlockSize = 64
	}
	if o.Z == 0 {
		o.Z = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ORAM is a functional Path ORAM block store: reads and writes are
// indistinguishable to an observer of the (encrypted, MACed) bucket
// accesses, exactly as in Section II-C. It is not safe for concurrent use.
type ORAM struct {
	engine    *oram.Engine
	blockSize int
	writeBuf  []byte // reusable zero-padded staging for Write
}

// NewORAM builds a functional Path ORAM.
func NewORAM(opts ORAMOptions) (*ORAM, error) {
	opts.setDefaults()
	geom, err := oram.NewGeometry(opts.Levels)
	if err != nil {
		return nil, err
	}
	store, err := oram.NewMemStore(opts.Z, opts.BlockSize, opts.Key)
	if err != nil {
		return nil, err
	}
	engine, err := oram.NewEngine(store, oram.NewSparsePosMap(), oram.Options{
		Geometry:       geom,
		StashCapacity:  200,
		EvictThreshold: 150,
		Rand:           rng.New(opts.Seed),
	})
	if err != nil {
		return nil, err
	}
	return &ORAM{engine: engine, blockSize: opts.BlockSize}, nil
}

// BlockSize returns the payload size per block.
func (o *ORAM) BlockSize() int { return o.blockSize }

// Capacity returns the number of blocks the store can hold at the standard
// 50% utilization target.
func (o *ORAM) Capacity() uint64 {
	return o.engine.Geometry().CapacityBlocks(4)
}

// Read returns the BlockSize-byte payload of addr (zeros if never written).
// The result is a fresh allocation the caller owns.
func (o *ORAM) Read(addr uint64) ([]byte, error) {
	data, _, err := o.engine.Access(addr, oram.OpRead, nil)
	if err != nil {
		return nil, err
	}
	// Access returns engine-owned scratch; hand the caller their own copy.
	out := make([]byte, o.blockSize)
	copy(out, data)
	return out, nil
}

// Write stores up to BlockSize bytes at addr (shorter payloads are
// zero-padded).
func (o *ORAM) Write(addr uint64, data []byte) error {
	if len(data) > o.blockSize {
		return fmt.Errorf("sdimm: payload %d exceeds block size %d", len(data), o.blockSize)
	}
	if cap(o.writeBuf) < o.blockSize {
		o.writeBuf = make([]byte, o.blockSize)
	}
	buf := o.writeBuf[:o.blockSize]
	clear(buf)
	copy(buf, data)
	_, _, err := o.engine.Access(addr, oram.OpWrite, buf)
	return err
}

// StashLen exposes current stash occupancy (for monitoring; bounded by
// design).
func (o *ORAM) StashLen() int { return o.engine.StashLen() }

// RecursiveORAMOptions sizes a RecursiveORAM.
type RecursiveORAMOptions struct {
	// DataBlocks is the logical address-space size in blocks.
	DataBlocks uint64
	// PosMaps is the number of recursive position maps (default 2).
	PosMaps int
	// PLBEntries sizes the PosMap Lookaside Buffer (default 64).
	PLBEntries int
	// Levels is the tree height; the tree must hold DataBlocks plus the
	// recursive PosMaps at 50% utilization.
	Levels int
	// Key seeds the bucket encryption/MAC keys.
	Key []byte
	// Seed drives leaf assignment (0 uses 1).
	Seed uint64
}

// RecursiveORAM is the complete Freecursive ORAM running on real bytes:
// position maps are blocks inside the same encrypted tree as the data, a
// PLB short-circuits most recursive lookups (with dirty write-back), and
// only the smallest PosMap stays on chip — so client-side state is O(1) in
// the data size, unlike ORAM, whose position map grows linearly.
type RecursiveORAM struct {
	f         *freecursive.Functional
	blockSize int
}

// NewRecursiveORAM builds a functional Freecursive ORAM (64-byte blocks).
func NewRecursiveORAM(opts RecursiveORAMOptions) (*RecursiveORAM, error) {
	if opts.PosMaps == 0 {
		opts.PosMaps = 2
	}
	if opts.PLBEntries == 0 {
		opts.PLBEntries = 64
	}
	f, err := freecursive.NewFunctional(freecursive.FunctionalOptions{
		DataBlocks: opts.DataBlocks,
		PosMaps:    opts.PosMaps,
		Scale:      16,
		PLBEntries: opts.PLBEntries,
		Levels:     opts.Levels,
		Key:        opts.Key,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &RecursiveORAM{f: f, blockSize: 64}, nil
}

// Read returns the 64-byte payload at addr (zeros if never written).
func (r *RecursiveORAM) Read(addr uint64) ([]byte, error) {
	return r.f.Access(addr, oram.OpRead, nil)
}

// Write stores up to 64 bytes at addr.
func (r *RecursiveORAM) Write(addr uint64, data []byte) error {
	if len(data) > r.blockSize {
		return fmt.Errorf("sdimm: payload %d exceeds block size %d", len(data), r.blockSize)
	}
	buf := make([]byte, r.blockSize)
	copy(buf, data)
	_, err := r.f.Access(addr, oram.OpWrite, buf)
	return err
}

// AccessesPerOp reports the measured recursion overhead (the paper's
// accessORAM-per-access metric; ~1.x with a warm PLB).
func (r *RecursiveORAM) AccessesPerOp() float64 { return r.f.Stats().AccessesPerOp() }
