package sdimm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"sdimm/internal/fault"
)

func newElasticCluster(t *testing.T, sdimms int, tap func(sd int, dir fault.Direction, attempt int, frame []byte)) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterOptions{
		SDIMMs:  sdimms,
		Levels:  10,
		Key:     []byte("elastic-test-key"),
		Seed:    23,
		LinkTap: tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDrainRemoveJoinLifecycle walks the full elastic arc: drain a member
// to empty, detach it, rejoin the slot with a fresh incarnation, and keep
// serving exact payloads throughout.
func TestDrainRemoveJoinLifecycle(t *testing.T) {
	c := newElasticCluster(t, 4, nil)
	ref := map[uint64][]byte{}
	for a := uint64(0); a < 48; a++ {
		data := []byte(fmt.Sprintf("v-%d", a))
		if err := c.Write(a, data); err != nil {
			t.Fatal(err)
		}
		ref[a] = data
	}

	if err := c.BeginDrain(1); err != nil {
		t.Fatalf("BeginDrain: %v", err)
	}
	if got := c.Health().Draining(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("draining set %v, want [1]", got)
	}
	steps := 0
	for {
		done, err := c.DrainStep()
		if err != nil {
			t.Fatalf("DrainStep %d: %v", steps, err)
		}
		if done {
			break
		}
		steps++
		if steps > 10*48 {
			t.Fatal("drain did not converge")
		}
		// Interleave workload mid-drain: the draining member still serves.
		if steps%4 == 0 {
			a := uint64(steps % 48)
			got, err := c.Read(a)
			if err != nil {
				t.Fatalf("read %d mid-drain: %v", a, err)
			}
			if !bytes.Equal(got[:len(ref[a])], ref[a]) {
				t.Fatalf("read %d mid-drain = %q", a, got[:len(ref[a])])
			}
		}
	}
	if n := c.DrainRemaining(); n != 0 {
		t.Fatalf("drain done with %d blocks remaining", n)
	}
	if err := c.CompleteDrain(); err != nil {
		t.Fatalf("CompleteDrain: %v", err)
	}
	if got := c.Health().Removed(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("removed set %v, want [1]", got)
	}
	if !c.Detached(1) {
		t.Fatal("slot 1 not detached after CompleteDrain")
	}

	// A clean drain loses nothing: every payload reads back exactly with
	// the member gone.
	for a, want := range ref {
		got, err := c.Read(a)
		if err != nil {
			t.Fatalf("read %d after detach: %v", a, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("read %d after detach = %q, want %q", a, got[:len(want)], want)
		}
	}

	if err := c.AddSDIMM(1); err != nil {
		t.Fatalf("AddSDIMM: %v", err)
	}
	if c.Incarnation(1) != 1 {
		t.Fatalf("incarnation %d after join, want 1", c.Incarnation(1))
	}
	if c.Detached(1) {
		t.Fatal("slot 1 still detached after join")
	}
	h := c.Health()
	if len(h.Removed()) != 0 || len(h.Failed()) != 0 {
		t.Fatalf("health after join: removed=%v failed=%v", h.Removed(), h.Failed())
	}
	for a := uint64(0); a < 48; a++ {
		data := []byte(fmt.Sprintf("w-%d", a))
		if err := c.Write(a, data); err != nil {
			t.Fatalf("write %d after join: %v", a, err)
		}
		got, err := c.Read(a)
		if err != nil {
			t.Fatalf("read %d after join: %v", a, err)
		}
		if !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("read %d after join = %q", a, got[:len(data)])
		}
	}
}

// TestDrainStepLooksLikeRead pins the obliviousness contract at the frame
// level: one migration step puts exactly the same number of frames, with
// exactly the same length multiset, on the wire as one ordinary read.
func TestDrainStepLooksLikeRead(t *testing.T) {
	type shot struct {
		frames  int
		lengths map[int]int
	}
	cur := &shot{lengths: map[int]int{}}
	c := newElasticCluster(t, 4, func(sd int, dir fault.Direction, attempt int, frame []byte) {
		cur.frames++
		cur.lengths[len(frame)]++
	})
	for a := uint64(0); a < 32; a++ {
		if err := c.Write(a, []byte{byte(a)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.BeginDrain(1); err != nil {
		t.Fatal(err)
	}

	snap := func(f func()) shot {
		cur.frames, cur.lengths = 0, map[int]int{}
		f()
		return shot{frames: cur.frames, lengths: cur.lengths}
	}
	read := snap(func() {
		if _, err := c.Read(5); err != nil {
			t.Fatal(err)
		}
	})
	mig := snap(func() {
		if done, err := c.DrainStep(); err != nil || done {
			t.Fatalf("DrainStep: done=%v err=%v", done, err)
		}
	})
	if read.frames != mig.frames {
		t.Fatalf("frame count differs: read=%d migration=%d", read.frames, mig.frames)
	}
	for l, n := range read.lengths {
		if mig.lengths[l] != n {
			t.Fatalf("frame lengths differ: read=%v migration=%v", read.lengths, mig.lengths)
		}
	}
}

// TestBeginDrainValidation exercises the refusal paths: bad index, double
// drain, and draining away the last eligible member.
func TestBeginDrainValidation(t *testing.T) {
	c := newElasticCluster(t, 4, nil)
	if err := c.BeginDrain(7); err == nil {
		t.Fatal("out-of-range drain accepted")
	}
	if err := c.BeginDrain(1); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginDrain(1); err == nil {
		t.Fatal("double drain of the same member accepted")
	}
	if err := c.BeginDrain(2); err == nil {
		t.Fatal("concurrent drain of a second member accepted")
	}
	if err := c.CancelDrain(); err != nil {
		t.Fatal(err)
	}

	// With one member failed and one draining there must still be somewhere
	// for the blocks to go.
	in := fault.NewInjector(fault.Config{Seed: 21})
	fc := newFaultyCluster(t, 2, in, 3)
	in.FailStop(0)
	for a := uint64(0); a < 8; a++ {
		fc.Write(a, []byte("probe")) //nolint:errcheck — detection phase
	}
	if got := fc.Health().Failed(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("failed set %v, want [0]", got)
	}
	if err := fc.BeginDrain(1); !errors.Is(err, ErrNoHealthySDIMM) {
		t.Fatalf("draining the last member: %v, want ErrNoHealthySDIMM", err)
	}
}

// TestCancelDrainRestoresPlacement: an aborted drain leaves the member in
// the placement set and the data intact.
func TestCancelDrainRestoresPlacement(t *testing.T) {
	c := newElasticCluster(t, 4, nil)
	ref := map[uint64][]byte{}
	for a := uint64(0); a < 32; a++ {
		data := []byte(fmt.Sprintf("c-%d", a))
		if err := c.Write(a, data); err != nil {
			t.Fatal(err)
		}
		ref[a] = data
	}
	if err := c.BeginDrain(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.DrainStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CancelDrain(); err != nil {
		t.Fatal(err)
	}
	h := c.Health()
	if len(h.Draining()) != 0 || len(h.Removed()) != 0 {
		t.Fatalf("health after cancel: draining=%v removed=%v", h.Draining(), h.Removed())
	}
	if err := c.CompleteDrain(); err == nil {
		t.Fatal("CompleteDrain accepted with no drain in progress")
	}
	for a, want := range ref {
		got, err := c.Read(a)
		if err != nil {
			t.Fatalf("read %d after cancel: %v", a, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("read %d after cancel = %q", a, got[:len(want)])
		}
	}
}

// TestRemoveFailedPoisonsOrphans: detaching a fail-stopped member without a
// drain loses the blocks that lived only there — those must poison (loud
// ErrUnrecoverable), and a fresh write must heal each one. The slot must
// then accept a rejoin.
func TestRemoveFailedPoisonsOrphans(t *testing.T) {
	in := fault.NewInjector(fault.Config{Seed: 21})
	c := newFaultyCluster(t, 4, in, 3)
	for a := uint64(0); a < 32; a++ {
		if err := c.Write(a, []byte(fmt.Sprintf("pre-%d", a))); err != nil {
			t.Fatal(err)
		}
	}
	in.FailStop(1)
	for a := uint64(100); a < 110; a++ {
		c.Write(a, []byte("probe")) //nolint:errcheck — detection phase
	}
	if got := c.Health().Failed(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("failed set %v, want [1]", got)
	}
	if err := c.RemoveFailed(2); err == nil {
		t.Fatal("RemoveFailed accepted a live member")
	}
	if err := c.RemoveFailed(1); err != nil {
		t.Fatalf("RemoveFailed: %v", err)
	}
	if got := c.Health().Removed(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("removed set %v, want [1]", got)
	}

	poisoned := 0
	for a := uint64(0); a < 32; a++ {
		got, err := c.Read(a)
		if err != nil {
			if !errors.Is(err, ErrUnrecoverable) {
				t.Fatalf("read %d: %v, want ErrUnrecoverable", a, err)
			}
			poisoned++
			heal := []byte(fmt.Sprintf("heal-%d", a))
			if err := c.Write(a, heal); err != nil {
				t.Fatalf("healing write %d: %v", a, err)
			}
			back, err := c.Read(a)
			if err != nil || !bytes.Equal(back[:len(heal)], heal) {
				t.Fatalf("read %d after heal: %q %v", a, back, err)
			}
			continue
		}
		want := fmt.Sprintf("pre-%d", a)
		if string(got[:len(want)]) != want {
			t.Fatalf("read %d silently corrupted: %q", a, got[:len(want)])
		}
	}
	if poisoned == 0 {
		t.Fatal("no orphaned address poisoned — the unclean detach lost nothing?")
	}

	in.Revive(1) // replacement hardware in the slot
	if err := c.AddSDIMM(1); err != nil {
		t.Fatalf("AddSDIMM after RemoveFailed: %v", err)
	}
	for a := uint64(200); a < 216; a++ {
		data := []byte(fmt.Sprintf("post-%d", a))
		if err := c.Write(a, data); err != nil {
			t.Fatalf("write %d after rejoin: %v", a, err)
		}
		got, err := c.Read(a)
		if err != nil || !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("read %d after rejoin: %q %v", a, got, err)
		}
	}
}

// TestPipelineMigrationMatchesSequential: the same drain driven through
// pipeline Migrate batches must land the identical position map and
// payloads as one driven step by step — the batched path is an execution
// strategy, not a different algorithm.
func TestPipelineMigrationMatchesSequential(t *testing.T) {
	build := func() *Cluster {
		c := newElasticCluster(t, 4, nil)
		for a := uint64(0); a < 48; a++ {
			if err := c.Write(a, []byte(fmt.Sprintf("m-%d", a))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.BeginDrain(1); err != nil {
			t.Fatal(err)
		}
		return c
	}

	seq := build()
	for {
		done, err := seq.DrainStep()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if err := seq.CompleteDrain(); err != nil {
		t.Fatal(err)
	}

	par := build()
	pipe := par.Pipeline(PipelineOptions{Window: 8, Parallelism: 4})
	for {
		addrs := par.NextMigrations(8)
		if len(addrs) == 0 {
			break
		}
		batch := make([]BatchOp, len(addrs))
		for j, a := range addrs {
			batch[j] = BatchOp{Addr: a, Migrate: true}
		}
		for _, r := range pipe.Do(batch) {
			if r.Err != nil {
				t.Fatalf("migrate batch: %v", r.Err)
			}
		}
	}
	pipe.Close()
	if err := par.CompleteDrain(); err != nil {
		t.Fatal(err)
	}

	sp, pp := seq.Positions(), par.Positions()
	if len(sp) != len(pp) {
		t.Fatalf("position map sizes differ: %d vs %d", len(sp), len(pp))
	}
	for a, l := range sp {
		if pp[a] != l {
			t.Fatalf("addr %d: sequential leaf %d, pipelined leaf %d", a, l, pp[a])
		}
	}
	for a := uint64(0); a < 48; a++ {
		sg, err1 := seq.Read(a)
		pg, err2 := par.Read(a)
		if err1 != nil || err2 != nil {
			t.Fatalf("read %d: %v / %v", a, err1, err2)
		}
		if !bytes.Equal(sg, pg) {
			t.Fatalf("addr %d payload diverged between drain strategies", a)
		}
	}
}

// TestSplitReplaceMemberRebuildsFromParity: a failed shard is rebuilt
// bucket-for-bucket from the surviving members, rejoins, and the cluster
// keeps the lockstep invariant and exact payloads. Replacing the parity
// member itself goes through the same path.
func TestSplitReplaceMemberRebuildsFromParity(t *testing.T) {
	c := newParityCluster(t, 4)
	ref := map[uint64][]byte{}
	for a := uint64(0); a < 40; a++ {
		data := []byte(fmt.Sprintf("s-%d", a))
		if err := c.Write(a, data); err != nil {
			t.Fatal(err)
		}
		ref[a] = data
	}

	if err := c.ReplaceMember(1); err == nil {
		t.Fatal("ReplaceMember accepted a live member")
	}
	c.FailShard(1)
	// Degraded window: reads reconstruct through parity.
	for a := uint64(0); a < 10; a++ {
		got, err := c.Read(a)
		if err != nil {
			t.Fatalf("degraded read %d: %v", a, err)
		}
		if !bytes.Equal(got[:len(ref[a])], ref[a]) {
			t.Fatalf("degraded read %d = %q", a, got[:len(ref[a])])
		}
	}
	if err := c.ReplaceMember(1); err != nil {
		t.Fatalf("ReplaceMember: %v", err)
	}
	if c.Incarnation(1) != 1 {
		t.Fatalf("incarnation %d after replacement, want 1", c.Incarnation(1))
	}
	if got := c.Health().Failed(); len(got) != 0 {
		t.Fatalf("failed set %v after replacement", got)
	}

	// The rebuilt shard must hold exactly what its predecessor held: fail
	// a DIFFERENT shard, forcing reads to XOR through the rebuilt one.
	c.FailShard(2)
	for a, want := range ref {
		got, err := c.Read(a)
		if err != nil {
			t.Fatalf("read %d through rebuilt shard: %v", a, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("read %d through rebuilt shard = %q, want %q", a, got[:len(want)], want)
		}
	}
	if err := c.ReplaceMember(2); err != nil {
		t.Fatalf("ReplaceMember(2): %v", err)
	}

	// Parity member replacement: rebuild it, then prove the fresh parity
	// works by surviving yet another data-shard loss.
	pi := len(c.buffers)
	c.FailShard(pi)
	if err := c.ReplaceMember(pi); err != nil {
		t.Fatalf("ReplaceMember(parity): %v", err)
	}
	c.FailShard(0)
	for a, want := range ref {
		got, err := c.Read(a)
		if err != nil {
			t.Fatalf("read %d through rebuilt parity: %v", a, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("read %d through rebuilt parity = %q", a, got[:len(want)])
		}
	}
}
