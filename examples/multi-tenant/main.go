// Multi-tenant: the paper's cloud motivation — a server running sensitive
// workloads under ORAM. This example sweeps several workloads over the
// baseline Freecursive ORAM and the combined Indep-Split SDIMM protocol on
// the 2-channel, 4-SDIMM system and prints normalized execution time and
// energy, showing which workload characters (high MLP vs latency-bound)
// benefit most.
package main

import (
	"fmt"
	"log"

	"sdimm"
)

func main() {
	workloads := []string{"mcf", "GemsFDTD", "omnetpp", "gromacs"}
	fmt.Println("2-channel system, 4 SDIMMs; windows scaled down for an example run")
	fmt.Printf("%-10s %15s %15s %15s\n", "workload", "freecursive", "indep-split", "norm. time")

	for _, w := range workloads {
		base, err := run(sdimm.Freecursive, w)
		if err != nil {
			log.Fatal(err)
		}
		is, err := run(sdimm.IndepSplit, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d cy %12d cy %15.3f\n",
			w, base.MeasuredCycles, is.MeasuredCycles,
			float64(is.MeasuredCycles)/float64(base.MeasuredCycles))
	}

	fmt.Println("\nenergy per LLC miss (J):")
	fmt.Printf("%-10s %15s %15s %15s\n", "workload", "freecursive", "indep-split", "ratio")
	for _, w := range workloads {
		base, err := run(sdimm.Freecursive, w)
		if err != nil {
			log.Fatal(err)
		}
		is, err := run(sdimm.IndepSplit, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %15.3g %15.3g %15.3f\n",
			w, base.EnergyPerMiss, is.EnergyPerMiss, is.EnergyPerMiss/base.EnergyPerMiss)
	}
}

func run(p sdimm.Protocol, workload string) (sdimm.Result, error) {
	cfg := sdimm.DefaultConfig(p, 2)
	cfg.ORAM.Levels = 24
	cfg.WarmupAccesses = 200
	cfg.MeasureAccesses = 400
	return sdimm.Simulate(cfg, workload)
}
