// Quickstart: the functional Path ORAM as an oblivious block store, and
// one cycle-level simulation comparing Freecursive against the Indep-Split
// SDIMM protocol.
package main

import (
	"fmt"
	"log"

	"sdimm"
)

func main() {
	// --- Part 1: a functional ORAM block store -------------------------
	store, err := sdimm.NewORAM(sdimm.ORAMOptions{
		Levels: 12, // ~4K blocks
		Key:    []byte("quickstart-key"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORAM store: %d blocks of %d bytes\n", store.Capacity(), store.BlockSize())

	for i := uint64(0); i < 16; i++ {
		if err := store.Write(i, []byte(fmt.Sprintf("secret record %d", i))); err != nil {
			log.Fatal(err)
		}
	}
	got, err := store.Read(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back block 7: %q (stash holds %d blocks)\n\n", trim(got), store.StashLen())

	// --- Part 2: a small cycle-level simulation ------------------------
	// Compare the baseline Freecursive ORAM against the combined SDIMM
	// protocol on a 2-channel, 4-SDIMM system (scaled-down windows so the
	// example runs in seconds).
	for _, proto := range []sdimm.Protocol{sdimm.Freecursive, sdimm.IndepSplit} {
		cfg := sdimm.DefaultConfig(proto, 2)
		cfg.ORAM.Levels = 24
		cfg.WarmupAccesses = 200
		cfg.MeasureAccesses = 400
		res, err := sdimm.Simulate(cfg, "mcf")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %9d cycles   %6.0f cycles/miss   %.3g J\n",
			proto, res.MeasuredCycles, res.CyclesPerMiss(), res.Energy.Total())
	}
}

func trim(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
