// Secure-kv: an oblivious key-value store built on the functional Path
// ORAM — the kind of in-memory database workload (the paper cites Oracle
// TimesTen) that motivates high-capacity secure memory. Keys are hashed to
// block addresses with open addressing; every get and put is a fixed
// pattern of ORAM accesses, so an observer of the memory bus learns
// neither the keys nor whether an operation was a read or a write.
package main

import (
	"fmt"
	"log"

	"sdimm"
)

// kv is a fixed-capacity oblivious map[string]string. Each block stores
// one record: keyLen(1) | key | valLen(1) | value, zero-padded.
type kv struct {
	store *sdimm.ORAM
	slots uint64
}

func newKV(levels int, key []byte) (*kv, error) {
	store, err := sdimm.NewORAM(sdimm.ORAMOptions{Levels: levels, BlockSize: 128, Key: key})
	if err != nil {
		return nil, err
	}
	return &kv{store: store, slots: store.Capacity()}, nil
}

func fnv(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (m *kv) encode(key, val string) ([]byte, error) {
	if len(key) > 60 || len(val) > 60 {
		return nil, fmt.Errorf("kv: record too large")
	}
	out := make([]byte, 0, 2+len(key)+len(val))
	out = append(out, byte(len(key)))
	out = append(out, key...)
	out = append(out, byte(len(val)))
	out = append(out, val...)
	return out, nil
}

func decode(b []byte) (key, val string, ok bool) {
	if len(b) < 2 || b[0] == 0 {
		return "", "", false
	}
	kl := int(b[0])
	if 1+kl+1 > len(b) {
		return "", "", false
	}
	key = string(b[1 : 1+kl])
	vl := int(b[1+kl])
	if 2+kl+vl > len(b) {
		return "", "", false
	}
	return key, string(b[2+kl : 2+kl+vl]), true
}

// put stores key=val using linear probing (at most 16 probes).
func (m *kv) put(key, val string) error {
	rec, err := m.encode(key, val)
	if err != nil {
		return err
	}
	h := fnv(key) % m.slots
	for i := uint64(0); i < 16; i++ {
		addr := (h + i) % m.slots
		cur, err := m.store.Read(addr)
		if err != nil {
			return err
		}
		k, _, occupied := decode(cur)
		if !occupied || k == key {
			return m.store.Write(addr, rec)
		}
	}
	return fmt.Errorf("kv: probe chain full for %q", key)
}

// get fetches the value for key.
func (m *kv) get(key string) (string, bool, error) {
	h := fnv(key) % m.slots
	for i := uint64(0); i < 16; i++ {
		addr := (h + i) % m.slots
		cur, err := m.store.Read(addr)
		if err != nil {
			return "", false, err
		}
		k, v, occupied := decode(cur)
		if !occupied {
			return "", false, nil
		}
		if k == key {
			return v, true, nil
		}
	}
	return "", false, nil
}

func main() {
	db, err := newKV(12, []byte("tenant-42-master-key"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oblivious KV store with %d slots\n", db.slots)

	users := map[string]string{
		"alice": "credit:9912",
		"bob":   "credit:1034",
		"carol": "credit:7777",
		"dave":  "credit:0041",
		"erin":  "credit:5550",
		"frank": "credit:3141",
		"grace": "credit:2718",
		"heidi": "credit:1618",
		"ivan":  "credit:4242",
		"judy":  "credit:8888",
	}
	for k, v := range users {
		if err := db.put(k, v); err != nil {
			log.Fatal(err)
		}
	}
	// Overwrite one record, then read everything back.
	if err := db.put("alice", "credit:0000"); err != nil {
		log.Fatal(err)
	}
	users["alice"] = "credit:0000"

	for k, want := range users {
		got, ok, err := db.get(k)
		if err != nil {
			log.Fatal(err)
		}
		if !ok || got != want {
			log.Fatalf("lookup %q = %q (%v), want %q", k, got, ok, want)
		}
		fmt.Printf("  %-6s -> %s\n", k, got)
	}
	if _, ok, _ := db.get("mallory"); ok {
		log.Fatal("phantom record")
	}
	fmt.Printf("all %d records verified; absent key correctly missing\n", len(users))
	fmt.Printf("stash occupancy after workload: %d blocks\n", db.store.StashLen())
}
