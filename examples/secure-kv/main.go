// Secure-kv: an oblivious key-value store — the in-memory database workload
// (the paper cites Oracle TimesTen) that motivates high-capacity secure
// memory. The KV mapping itself lives in internal/kv: keys hash to block
// addresses with bounded linear probing, and every get and put is a fixed
// pattern of ORAM accesses, so an observer learns neither the keys nor
// whether an operation was a read or a write.
//
// This example is deliberately a *thin client*: it starts an sdimm-serve
// front end in-process (a real TCP server over the cluster's streaming
// pipeline, with admission control and backpressure) and runs the KV
// workload through the wire protocol — the same path a production tenant
// would use, shed-and-retry handling included.
package main

import (
	"context"
	"fmt"
	"log"

	"sdimm"
	"sdimm/internal/kv"
	"sdimm/internal/serve"
)

func main() {
	const blockSize = 128
	srv, err := serve.New(serve.Config{
		Cluster: sdimm.ClusterOptions{
			SDIMMs: 4, Levels: 12, BlockSize: blockSize,
			Key: []byte("tenant-42-master-key"), Seed: 42,
		},
		Pipeline: sdimm.PipelineOptions{Window: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	cl, err := serve.Dial(addr, "tenant-42")
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// The oblivious map over the served block space: 1024 slots of the
	// server's block size, probed through the wire client. BlockStore
	// retries shed responses with backoff, so the example behaves under
	// server backpressure too.
	db, err := kv.New(1024, cl.BlockSize())
	if err != nil {
		log.Fatal(err)
	}
	store := &serve.BlockStore{C: cl}
	fmt.Printf("oblivious KV store with %d slots, served over %s\n", db.Slots(), addr)

	users := map[string]string{
		"alice": "credit:9912",
		"bob":   "credit:1034",
		"carol": "credit:7777",
		"dave":  "credit:0041",
		"erin":  "credit:5550",
		"frank": "credit:3141",
		"grace": "credit:2718",
		"heidi": "credit:1618",
		"ivan":  "credit:4242",
		"judy":  "credit:8888",
	}
	for k, v := range users {
		if err := db.Put(store, k, v); err != nil {
			log.Fatal(err)
		}
	}
	// Overwrite one record, then read everything back.
	if err := db.Put(store, "alice", "credit:0000"); err != nil {
		log.Fatal(err)
	}
	users["alice"] = "credit:0000"

	for k, want := range users {
		got, ok, err := db.Get(store, k)
		if err != nil {
			log.Fatal(err)
		}
		if !ok || got != want {
			log.Fatalf("lookup %q = %q (%v), want %q", k, got, ok, want)
		}
		fmt.Printf("  %-6s -> %s\n", k, got)
	}
	if _, ok, _ := db.Get(store, "mallory"); ok {
		log.Fatal("phantom record")
	}
	fmt.Printf("all %d records verified; absent key correctly missing\n", len(users))

	slo := srv.SLO()
	fmt.Printf("server SLO: %d ops ok, p99 %dµs, witness green=%v over %d frames\n",
		slo.OK, slo.LatencyP99US, slo.Witness.OK, slo.Witness.Frames)
}
