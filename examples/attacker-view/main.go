// Attacker-view: looks at the memory system through the adversary's logic
// analyzer (the threat model of Section II-B). It captures the address
// trace on every untrusted bus for two very different programs — a
// streaming sweep and a pointer chase — first on a plaintext memory
// system, then under ORAM, and prints the distinguishability metrics:
// on the plaintext bus the two programs are trivially told apart; under
// ORAM their traces look statistically identical.
package main

import (
	"fmt"
	"log"

	"sdimm/internal/attacker"
	"sdimm/internal/config"
)

func main() {
	workloads := [2]string{"libquantum", "mcf"} // streaming vs pointer chase

	grab := func(proto config.Protocol, w string, sysSeed uint64) *attacker.Trace {
		cfg := config.Default(proto, 1)
		cfg.ORAM.Levels = 20
		cfg.WarmupAccesses = 100
		cfg.MeasureAccesses = 400
		cfg.Seed = sysSeed
		// Program inputs stay fixed (trace seed 1); only the system's own
		// randomness varies with sysSeed.
		all, _, err := attacker.CaptureSeeded(cfg, w, 1)
		if err != nil {
			log.Fatal(err)
		}
		return attacker.Merge(all)
	}

	for _, proto := range []config.Protocol{config.NonSecure, config.Freecursive, config.Independent} {
		a := grab(proto, workloads[0], 1)
		b := grab(proto, workloads[1], 1)
		cross, err := attacker.TotalVariation(a, b)
		if err != nil {
			log.Fatal(err)
		}
		// Noise floor: the empirical TV between two runs of the SAME
		// program and input, varying only the system's randomness. For the
		// deterministic plaintext system this is exactly 0; for ORAM it is
		// the path-sampling noise an attacker must beat.
		floor, err := attacker.TotalVariation(a, grab(proto, workloads[0], 2))
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s ==\n", proto)
		for i, tr := range []*attacker.Trace{a, b} {
			r := attacker.Analyze(tr)
			fmt.Printf("  %-12s %6d ACTs, %5d rows, entropy %.2f bits (norm %.3f), repeat %.3f\n",
				workloads[i], r.Accesses, r.DistinctRows, r.Entropy, r.NormalizedEntropy, r.RepeatRate)
		}
		verdict := "programs DISTINGUISHABLE"
		if cross < 1.5*floor {
			verdict = "programs indistinguishable (within sampling noise)"
		}
		fmt.Printf("  TV distance between programs %.3f vs same-program noise floor %.3f -> %s\n\n",
			cross, floor, verdict)
	}
}
