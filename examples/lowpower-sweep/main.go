// Lowpower-sweep: evaluates the rank-per-subtree layout of Section III-E.
// With the layout on, each accessORAM engages a single rank of its SDIMM
// and the other ranks sit in power-down; the paper claims the performance
// cost stays under 4% while background energy drops substantially. This
// example sweeps the toggle across workloads on the Independent protocol.
package main

import (
	"fmt"
	"log"

	"sdimm"
)

func main() {
	workloads := []string{"milc", "lbm", "GemsFDTD"}
	fmt.Printf("%-10s %12s %14s %16s\n", "workload", "perf cost", "bg energy", "total energy")
	for _, w := range workloads {
		on, err := run(w, true)
		if err != nil {
			log.Fatal(err)
		}
		off, err := run(w, false)
		if err != nil {
			log.Fatal(err)
		}
		perfCost := float64(on.MeasuredCycles)/float64(off.MeasuredCycles) - 1
		bgRatio := on.Energy.Background / off.Energy.Background
		totRatio := on.Energy.Total() / off.Energy.Total()
		fmt.Printf("%-10s %+11.2f%% %13.3f %15.3f\n", w, 100*perfCost, bgRatio, totRatio)
	}
	fmt.Println("\n(bg/total energy shown as low-power ÷ always-on; < 1 is a saving)")
}

func run(workload string, lowPower bool) (sdimm.Result, error) {
	cfg := sdimm.DefaultConfig(sdimm.Independent, 1)
	cfg.ORAM.Levels = 24
	cfg.WarmupAccesses = 200
	cfg.MeasureAccesses = 400
	cfg.LowPower = lowPower
	return sdimm.Simulate(cfg, workload)
}
