package sdimm

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestStopFillTimerDrainsInFlightFire is the stale-fire regression test:
// when Stop() loses the race with the timer firing, the fire can still be in
// flight on the runtime's timer goroutine, and a non-blocking drain misses
// it. The stale value then lands in t.C after the next Reset and is consumed
// instantly, cutting that fill window short. The hammer loop below races
// Reset against microsecond fires; after stopFillTimer returns, a re-armed
// timer must never yield a leftover fire.
// A missed fire is sticky: the stale value sits in the buffered channel
// until some receive observes it, so the per-iteration check (or the settle
// check after the loop) eventually reports any leak from an earlier round.
func TestStopFillTimerDrainsInFlightFire(t *testing.T) {
	timer := time.NewTimer(time.Hour)
	stopFillTimer(timer)
	iters := 300_000
	if testing.Short() {
		iters = 20_000
	}
	for i := 0; i < iters; i++ {
		timer.Reset(time.Microsecond)
		if i%64 == 0 {
			runtime.Gosched() // widen the fired-but-undelivered window
		}
		stopFillTimer(timer)
		timer.Reset(time.Hour)
		select {
		case <-timer.C:
			t.Fatalf("iteration %d: stale timer fire leaked past stopFillTimer", i)
		default:
		}
		stopFillTimer(timer)
	}
	timer.Reset(time.Hour)
	time.Sleep(time.Millisecond)
	select {
	case <-timer.C:
		t.Fatal("stale timer fire surfaced after the hammer loop")
	default:
	}
}

// TestPipelineServeFillTimeoutWindowBoundary hammers the streaming front end
// with burst sizes straddling the window boundary under a microsecond fill
// timeout, so every fillBuf exit path — full window, timeout fire, and final
// channel close — races the timer repeatedly. Run under -race in CI; every
// op must still be answered exactly once.
func TestPipelineServeFillTimeoutWindowBoundary(t *testing.T) {
	_, _, in, done := serveCluster(t, nil, PipelineOptions{
		Window: 4, FillTimeout: 100 * time.Microsecond,
	})
	var acks []*AsyncOp
	addr := uint64(0)
	for round := 0; round < 60; round++ {
		n := 3 + round%3 // 3, 4, 5 ops: under, at, and over the window
		for i := 0; i < n; i++ {
			a := NewAsyncOp(BatchOp{Addr: addr % 64, Write: true,
				Data: []byte(fmt.Sprintf("burst-%d", addr))})
			addr++
			in <- a
			acks = append(acks, a)
		}
		if round%2 == 0 {
			// Let the fill timer fire (or race Stop) between bursts.
			time.Sleep(150 * time.Microsecond)
		}
	}
	close(in)
	deadline := time.After(30 * time.Second)
	for i, a := range acks {
		select {
		case r := <-a.Done:
			if r.Err != nil {
				t.Fatalf("op %d: %v", i, r.Err)
			}
		case <-deadline:
			t.Fatalf("op %d never answered", i)
		}
	}
	done.Wait()
}
