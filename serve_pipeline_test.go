package sdimm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sdimm/internal/durable"
	"sdimm/internal/telemetry"
)

// serveCluster builds a small cluster + streaming pipeline for these tests.
func serveCluster(t *testing.T, reg *telemetry.Registry, opts PipelineOptions) (*Cluster, *Pipeline, chan *AsyncOp, *sync.WaitGroup) {
	t.Helper()
	c, err := NewCluster(ClusterOptions{
		SDIMMs: 4, Levels: 10, Key: []byte("serve-key"), Seed: 23, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Pipeline(opts)
	in := make(chan *AsyncOp, 64)
	var done sync.WaitGroup
	done.Add(1)
	go func() {
		defer done.Done()
		p.Serve(in)
	}()
	t.Cleanup(p.Close)
	return c, p, in, &done
}

// TestPipelineServePartialWaveNoStall is the latent-stall regression test:
// three ops on a Window-8 pipeline, with the channel left open, must retire
// after the fill timeout instead of waiting forever for five peers that
// never come.
func TestPipelineServePartialWaveNoStall(t *testing.T) {
	_, _, in, done := serveCluster(t, nil, PipelineOptions{Window: 8})
	ops := make([]*AsyncOp, 3)
	for i := range ops {
		ops[i] = NewAsyncOp(BatchOp{Addr: uint64(10 + i), Write: true,
			Data: []byte(fmt.Sprintf("partial-%d", i))})
		in <- ops[i]
	}
	deadline := time.After(5 * time.Second) // generous; expected ~FillTimeout
	for i, a := range ops {
		select {
		case r := <-a.Done:
			if r.Err != nil {
				t.Fatalf("op %d: %v", i, r.Err)
			}
		case <-deadline:
			t.Fatalf("op %d stalled: partial wave never launched", i)
		}
	}
	close(in)
	done.Wait()
}

// TestPipelineServeMatchesSequential pins the streaming front to the
// sequential engine: a serial client (submit, wait, submit) produces
// one-op waves whose RNG draw order, commit order, and append order are
// identical to bare Read/Write calls, so every observable — payloads,
// position map, stashes, telemetry, health — must agree bitwise.
func TestPipelineServeMatchesSequential(t *testing.T) {
	ops := pipelineWorkload(160, 48)

	regSeq := telemetry.NewRegistry()
	cs, err := NewCluster(ClusterOptions{
		SDIMMs: 4, Levels: 10, Key: []byte("serve-key"), Seed: 23, Telemetry: regSeq,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqResults := make([]BatchResult, len(ops))
	for i, op := range ops {
		if op.Write {
			seqResults[i].Err = cs.Write(op.Addr, op.Data)
		} else {
			seqResults[i].Data, seqResults[i].Err = cs.Read(op.Addr)
		}
	}
	seq := captureState(seqResults, cs.Positions(), cs.StashLens(), regSeq, cs.Health())

	regSrv := telemetry.NewRegistry()
	c, _, in, done := serveCluster(t, regSrv, PipelineOptions{
		Window: 8, FillTimeout: -1, // serial client: launch immediately
	})
	srvResults := make([]BatchResult, len(ops))
	for i, op := range ops {
		a := NewAsyncOp(op)
		in <- a
		srvResults[i] = <-a.Done
	}
	close(in)
	done.Wait()
	srv := captureState(srvResults, c.Positions(), c.StashLens(), regSrv, c.Health())

	diffState(t, "serve(serial) vs sequential", seq, srv)
}

// TestPipelineServeConcurrentSmoke hammers Serve from several goroutines
// with disjoint address ranges (run under -race): every write must be
// acknowledged and every subsequent read must observe it.
func TestPipelineServeConcurrentSmoke(t *testing.T) {
	_, _, in, done := serveCluster(t, nil, PipelineOptions{Window: 8})
	const clients, opsPer = 6, 40
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 100)
			for i := 0; i < opsPer; i++ {
				addr := base + uint64(i%10)
				want := []byte(fmt.Sprintf("g%d-i%d", g, i))
				w := NewAsyncOp(BatchOp{Addr: addr, Write: true, Data: want})
				in <- w
				if r := <-w.Done; r.Err != nil {
					errs <- fmt.Errorf("client %d write %d: %v", g, i, r.Err)
					return
				}
				rd := NewAsyncOp(BatchOp{Addr: addr})
				in <- rd
				r := <-rd.Done
				if r.Err != nil {
					errs <- fmt.Errorf("client %d read %d: %v", g, i, r.Err)
					return
				}
				if string(r.Data[:len(want)]) != string(want) {
					errs <- fmt.Errorf("client %d addr %d: read %q want %q",
						g, addr, r.Data[:len(want)], want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(in)
	done.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPipelineServeCrashFailsPending verifies the write-ahead contract on
// the streaming path: once the planned crash point trips, every later op
// fails with durable.ErrCrashed and Serve still answers everything before
// returning.
func TestPipelineServeCrashFailsPending(t *testing.T) {
	c, err := NewCluster(ClusterOptions{
		SDIMMs: 4, Levels: 10, Key: []byte("serve-key"), Seed: 23,
		Durability: &DurabilityOptions{Dir: t.TempDir(), Interval: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PlanCrash(20, 0); err != nil {
		t.Fatal(err)
	}
	p := c.Pipeline(PipelineOptions{Window: 4})
	defer p.Close()
	in := make(chan *AsyncOp, 16)
	var done sync.WaitGroup
	done.Add(1)
	go func() {
		defer done.Done()
		p.Serve(in)
	}()
	sawCrash := false
	for i := 0; i < 200 && !sawCrash; i++ {
		a := NewAsyncOp(BatchOp{Addr: uint64(i % 16), Write: true,
			Data: []byte(fmt.Sprintf("pre-crash-%d", i))})
		in <- a
		if r := <-a.Done; r.Err != nil {
			if !errors.Is(r.Err, durable.ErrCrashed) {
				t.Fatalf("op %d failed with %v, want ErrCrashed", i, r.Err)
			}
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("planned crash never tripped")
	}
	// Ops submitted after the crash must be answered (with the crash error),
	// not dropped.
	post := NewAsyncOp(BatchOp{Addr: 3})
	in <- post
	if r := <-post.Done; !errors.Is(r.Err, durable.ErrCrashed) {
		t.Fatalf("post-crash op = %v, want ErrCrashed", r.Err)
	}
	close(in)
	done.Wait()
}
