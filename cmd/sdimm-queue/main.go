// Command sdimm-queue explores the transfer-queue overflow models of
// Section IV-C: the passive random walk (Figure 13a) and the actively
// drained M/M/1/K queue (Figure 13b), plus a Monte Carlo cross-check.
//
// Usage:
//
//	sdimm-queue -steps 800000 -limit 64
//	sdimm-queue -mm1k -p 0.25 -k 16
//	sdimm-queue -montecarlo -steps 100000 -limit 16 -trials 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"sdimm/internal/queueing"
	"sdimm/internal/rng"
)

func main() {
	var (
		steps  = flag.Int("steps", 800000, "random-walk steps")
		limit  = flag.Int("limit", 64, "queue size limit")
		arrive = flag.Float64("arrive", 0.25, "arrival probability per step")
		depart = flag.Float64("depart", 0.25, "departure probability per step")
		mm1k   = flag.Bool("mm1k", false, "evaluate the M/M/1/K model instead")
		p      = flag.Float64("p", 0.25, "M/M/1/K drain probability")
		k      = flag.Int("k", 16, "M/M/1/K queue size")
		mc     = flag.Bool("montecarlo", false, "cross-check the walk by simulation")
		trials = flag.Int("trials", 2000, "Monte Carlo trials")
		seed   = flag.Uint64("seed", 1, "Monte Carlo seed")
	)
	flag.Parse()

	switch {
	case *mm1k:
		v, err := queueing.MM1KFullProbability(*p, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("utilization rho = %.4f\n", queueing.Utilization(*p))
		fmt.Printf("P(queue of %d full) = %.6g\n", *k, v)
	case *mc:
		w := queueing.Walk{Arrive: *arrive, Depart: *depart}
		v, err := w.SimulateOverflow(*steps, *limit, *trials, rng.New(*seed))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Monte Carlo P(exceed %d within %d steps) = %.4f (%d trials)\n",
			*limit, *steps, v, *trials)
	default:
		w := queueing.Walk{Arrive: *arrive, Depart: *depart}
		v, err := w.OverflowProbability(*steps, *limit)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("P(exceed %d within %d steps) = %.4f\n", *limit, *steps, v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdimm-queue:", err)
	os.Exit(1)
}
