package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"sdimm"
	"sdimm/internal/rng"
)

// recBenchReport is the BENCH_recovery.json schema: checkpoint save cost
// (wall clock and bytes at a populated tree), and the full restart cost —
// restore + scrub + journal replay — with the replay rate broken out. These
// are report numbers, not gated: recovery happens once per restart, so the
// interesting question is "how far is it from interactive", not a speedup.
type recBenchReport struct {
	NumCPU            int     `json:"num_cpu"`
	SDIMMs            int     `json:"sdimms"`
	Levels            int     `json:"levels"`
	Accesses          int     `json:"accesses"`
	CheckpointWriteMs float64 `json:"checkpoint_write_ms"`
	CheckpointBytes   int64   `json:"checkpoint_bytes"`
	JournalRecords    int     `json:"journal_records"`
	RecoverMs         float64 `json:"recover_ms"`
	ReplayPerSec      float64 `json:"replay_records_per_sec"`
}

// runRecBench populates a durable Independent cluster, times ForceCheckpoint
// over several rotations, appends a journal segment, and times the full
// RecoverCluster restart. Writes the report to outPath.
func runRecBench(outPath string) error {
	const (
		populate  = 2000
		replayLen = 512
		ckptIters = 5
	)
	dir, err := os.MkdirTemp("", "sdimm-recbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rep := recBenchReport{NumCPU: runtime.NumCPU(), SDIMMs: 4, Levels: 14, Accesses: populate}
	opts := sdimm.ClusterOptions{
		SDIMMs: rep.SDIMMs,
		Levels: rep.Levels,
		Key:    []byte("recbench-key"),
		Seed:   7,
		// A huge interval disables automatic checkpoints; the bench rotates
		// explicitly so the timed journal segment has a known length.
		Durability: &sdimm.DurabilityOptions{Dir: dir, Interval: 1 << 30},
	}
	c, err := sdimm.NewCluster(opts)
	if err != nil {
		return err
	}
	r := rng.New(7)
	drive := func(n int) error {
		payload := make([]byte, 64)
		for i := 0; i < n; i++ {
			addr := r.Uint64n(256)
			if r.Bool(0.5) {
				for j := range payload {
					payload[j] = byte(r.Uint64n(256))
				}
				if err := c.Write(addr, payload); err != nil {
					return err
				}
			} else if _, err := c.Read(addr); err != nil {
				return err
			}
		}
		return nil
	}
	if err := drive(populate); err != nil {
		return err
	}

	start := time.Now()
	for i := 0; i < ckptIters; i++ {
		if err := c.ForceCheckpoint(); err != nil {
			return err
		}
	}
	rep.CheckpointWriteMs = float64(time.Since(start).Milliseconds()) / ckptIters

	ckpts, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil || len(ckpts) == 0 {
		return fmt.Errorf("recbench: no checkpoint files in %s", dir)
	}
	if fi, err := os.Stat(ckpts[len(ckpts)-1]); err == nil {
		rep.CheckpointBytes = fi.Size()
	}

	if err := drive(replayLen); err != nil {
		return err
	}
	rep.JournalRecords = replayLen
	c.Close()

	start = time.Now()
	rc, report, err := sdimm.RecoverCluster(opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	rc.Close()
	if report.RecordsReplayed != replayLen {
		return fmt.Errorf("recbench: replayed %d records, want %d", report.RecordsReplayed, replayLen)
	}
	rep.RecoverMs = float64(elapsed.Microseconds()) / 1e3
	rep.ReplayPerSec = float64(replayLen) / elapsed.Seconds()

	fmt.Fprintf(os.Stderr, "recbench: checkpoint %.1fms / %d bytes, recover %.1fms (%d records, %.0f replayed/s)\n",
		rep.CheckpointWriteMs, rep.CheckpointBytes, rep.RecoverMs, replayLen, rep.ReplayPerSec)

	if err := writeJSONAtomic(outPath, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recbench: wrote %s\n", outPath)
	return nil
}
