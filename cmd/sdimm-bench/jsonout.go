package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// writeJSONAtomic publishes v as indented JSON at path via a temp file and
// rename, so a reader (CI collecting BENCH_*.json artifacts) never observes
// a partially-written report — the same publish discipline the durable
// checkpoint writer uses.
func writeJSONAtomic(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("publish %s: %w", path, err)
	}
	return nil
}
