package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"sdimm"
	"sdimm/internal/blame"
)

// This file is the `-exp blame` experiment: it drives the batched cluster
// pipeline with the wave-level blame profiler attached and writes
// BENCH_blame.json — the critical-path explanation of the parallel engine's
// speedup curve. For each worker count the report carries the full phase
// breakdown plus the serialization ledger: the coordinator-side phases
// (schedule, retire.wait, finalize, access.wait, commit, dispatch,
// checkpoint) ranked by the wall-clock they spend with every worker
// measurably idle. The ledger's top entry names the phase to attack before
// adding workers can possibly help (Amdahl).

// blameReport is the BENCH_blame.json schema.
type blameReport struct {
	NumCPU int        `json:"num_cpu"`
	Runs   []blameRun `json:"runs"`
}

// blameRun is one worker count's measurement.
type blameRun struct {
	Parallelism    int          `json:"parallelism"`
	AccessesPerSec float64      `json:"accesses_per_sec"`
	Report         blame.Report `json:"report"`
}

// blameThroughput repeats parbench's cluster workload (8 SDIMMs, 30
// batches × 64 ops through a window-8 pipeline) with a collector attached.
func blameThroughput(parallelism int) (blameRun, error) {
	const (
		batches  = 30
		batchLen = 64
	)
	col := blame.NewCollector(8, 1024)
	c, err := sdimm.NewCluster(sdimm.ClusterOptions{SDIMMs: 8, Levels: 12, Seed: 1, Blame: col})
	if err != nil {
		return blameRun{}, err
	}
	pipe := c.Pipeline(sdimm.PipelineOptions{Window: 8, Parallelism: parallelism})
	defer pipe.Close()
	ops := make([]sdimm.BatchOp, batchLen)
	payload := make([]byte, 64)
	for i := range ops {
		ops[i] = sdimm.BatchOp{Addr: uint64(i), Write: i%2 == 0, Data: payload}
	}
	start := time.Now()
	for b := 0; b < batches; b++ {
		for _, r := range pipe.Do(ops) {
			if r.Err != nil {
				return blameRun{}, r.Err
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	return blameRun{
		Parallelism:    parallelism,
		AccessesPerSec: float64(batches*batchLen) / elapsed,
		Report:         col.Report(),
	}, nil
}

// runBlame measures the pipeline at 1 and 4 workers, writes outPath, and
// enforces the profiler's own contract: at least 90% of every run's wave
// wall-clock must be attributed to named phases (the contiguous-interval
// construction makes it exactly 100%), and the serialization ledger must be
// non-empty with a named top bottleneck.
func runBlame(outPath string) error {
	rep := blameReport{NumCPU: runtime.NumCPU()}
	for _, par := range []int{1, 4} {
		run, err := blameThroughput(par)
		if err != nil {
			return fmt.Errorf("blame bench (parallelism %d): %w", par, err)
		}
		rep.Runs = append(rep.Runs, run)
		r := run.Report
		fmt.Fprintf(os.Stderr,
			"blame: parallelism=%d %.0f accesses/s, %d waves, attribution %.4f, serialized %.1f%% (max speedup %.2fx)\n",
			par, run.AccessesPerSec, r.Waves, r.AttributionRatio, 100*r.SerializedShare, r.MaxSpeedup)
		for _, e := range r.Ledger {
			fmt.Fprintf(os.Stderr, "blame:   ledger %-10s %8.1fµs (%.1f%% of wall)\n",
				e.Phase, float64(e.SerializedNS)/1e3, 100*e.Share)
		}
	}

	if err := writeJSONAtomic(outPath, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "blame: wrote %s\n", outPath)

	for _, run := range rep.Runs {
		r := run.Report
		if r.Waves == 0 {
			return fmt.Errorf("blame: parallelism %d recorded no waves", run.Parallelism)
		}
		if r.AttributionRatio < 0.90 {
			return fmt.Errorf("blame: parallelism %d attributed only %.1f%% of wave wall-clock (gate: 90%%)",
				run.Parallelism, 100*r.AttributionRatio)
		}
		if len(r.Ledger) == 0 || r.TopBottleneck == "" {
			return fmt.Errorf("blame: parallelism %d produced an empty serialization ledger", run.Parallelism)
		}
	}
	return nil
}
