package main

import (
	"fmt"
	"os"

	"sdimm"
	"sdimm/internal/rng"
)

// ringBenchReport is the BENCH_ring.json schema: physical on-DIMM bucket
// writes per access for ring-eviction vs Path ORAM engines at the identical
// workload, plus the stash high-water marks. The reduction gate is
// deterministic (bucket writes, not wall-clock), so it is always enforced.
type ringBenchReport struct {
	Accesses            int     `json:"accesses"`
	Addresses           uint64  `json:"addresses"`
	SDIMMs              int     `json:"sdimms"`
	Levels              int     `json:"levels"`
	RingFlushInterval   int     `json:"ring_flush_interval"`
	PathWritesPerAccess float64 `json:"path_writes_per_access"`
	RingWritesPerAccess float64 `json:"ring_writes_per_access"`
	ReductionPct        float64 `json:"reduction_pct"`
	PathStashPeak       int     `json:"path_stash_peak"`
	RingStashPeak       int     `json:"ring_stash_peak"`
	GatePct             float64 `json:"gate_pct"`
}

const (
	ringBenchAccesses = 4000
	ringBenchAddrs    = 96
	ringBenchSDIMMs   = 4
	ringBenchLevels   = 10
	ringBenchA        = 4
	ringBenchGatePct  = 20.0
)

// ringBenchRun drives the fixed workload through one cluster flavour and
// reports bucket writes per access plus the stash high-water mark. The
// workload RNG is seeded independently of the cluster, so both flavours see
// the byte-identical op stream.
func ringBenchRun(flushInterval int) (writesPerAccess float64, stashPeak int, err error) {
	c, err := sdimm.NewCluster(sdimm.ClusterOptions{
		SDIMMs:            ringBenchSDIMMs,
		Levels:            ringBenchLevels,
		RingFlushInterval: flushInterval,
		Key:               []byte("ring-bench-key"),
		Seed:              9,
	})
	if err != nil {
		return 0, 0, err
	}
	r := rng.New(71)
	payload := make([]byte, 24)
	base := c.BucketWrites()
	for i := 0; i < ringBenchAccesses; i++ {
		addr := r.Uint64n(ringBenchAddrs)
		if r.Bool(0.5) {
			for j := range payload {
				payload[j] = byte(r.Uint64n(256))
			}
			err = c.Write(addr, payload)
		} else {
			_, err = c.Read(addr)
		}
		if err != nil {
			return 0, 0, fmt.Errorf("access %d: %w", i, err)
		}
		for _, n := range c.StashLens() {
			if n > stashPeak {
				stashPeak = n
			}
		}
	}
	writes := c.BucketWrites() - base
	return float64(writes) / float64(ringBenchAccesses), stashPeak, nil
}

// runRingBench produces BENCH_ring.json and enforces the write-traffic
// gate: at the same workload, the ring-eviction cluster must issue at least
// 20% fewer physical bucket writes per access than the Path baseline. Ring
// reads lift one block and leave the path untouched on the way back; only
// the deterministic eviction pointer (every A accesses) and stash-pressure
// drains pay full path writebacks.
func runRingBench(outPath string) error {
	pathW, pathPeak, err := ringBenchRun(0)
	if err != nil {
		return fmt.Errorf("ringbench path baseline: %w", err)
	}
	ringW, ringPeak, err := ringBenchRun(ringBenchA)
	if err != nil {
		return fmt.Errorf("ringbench ring run: %w", err)
	}
	rep := ringBenchReport{
		Accesses:            ringBenchAccesses,
		Addresses:           ringBenchAddrs,
		SDIMMs:              ringBenchSDIMMs,
		Levels:              ringBenchLevels,
		RingFlushInterval:   ringBenchA,
		PathWritesPerAccess: pathW,
		RingWritesPerAccess: ringW,
		ReductionPct:        100 * (1 - ringW/pathW),
		PathStashPeak:       pathPeak,
		RingStashPeak:       ringPeak,
		GatePct:             ringBenchGatePct,
	}
	if err := writeJSONAtomic(outPath, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"ringbench: %.1f bucket writes/access (path) vs %.1f (ring A=%d): %.1f%% reduction; stash peak %d vs %d\n",
		pathW, ringW, ringBenchA, rep.ReductionPct, pathPeak, ringPeak)
	fmt.Fprintf(os.Stderr, "ringbench: wrote %s\n", outPath)
	if rep.ReductionPct < ringBenchGatePct {
		return fmt.Errorf("ring write reduction %.1f%% below the %.0f%% gate", rep.ReductionPct, ringBenchGatePct)
	}
	return nil
}
