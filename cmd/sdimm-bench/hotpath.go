package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"sdimm"
	"sdimm/internal/blame"
	"sdimm/internal/durable"
	"sdimm/internal/flight"
	"sdimm/internal/oram"
	"sdimm/internal/rng"
	"sdimm/internal/seccomm"
)

// hotPathReport is the BENCH_hotpath.json schema: one entry per layer of
// the steady-state access loop, with the allocation gates that CI enforces.
// The layers mirror BenchmarkAccessHotPath in the root package; this runner
// exists so CI and operators get a machine-readable report (and optional
// pprof profiles) without the go test harness.
type hotPathReport struct {
	NumCPU       int            `json:"num_cpu"`
	GoMaxProcs   int            `json:"gomaxprocs"`
	Layers       []hotPathLayer `json:"layers"`
	Flight       flightOverhead `json:"flight_overhead"`
	GatesPassed  bool           `json:"gates_passed"`
	CPUProfile   string         `json:"cpu_profile,omitempty"`
	HeapProfile  string         `json:"heap_profile,omitempty"`
	ElapsedTotal float64        `json:"elapsed_total_sec"`
}

// flightOverhead is the always-on-observability tax: the same pipeline
// workload with the flight recorder and blame collector attached must stay
// within 3% of the bare run (min-of-3 each, wall-clock gate enforced only
// on multi-core hosts) and must add zero allocations per op (enforced
// everywhere — allocation counts are deterministic).
type flightOverhead struct {
	BaseNsPerOp   float64 `json:"base_ns_per_op"`
	FlightNsPerOp float64 `json:"flight_ns_per_op"`
	Ratio         float64 `json:"ratio"`
	AddedAllocs   int64   `json:"added_allocs_per_op"`
	GateEnforced  bool    `json:"wallclock_gate_enforced"`
}

type hotPathLayer struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MaxAllocs   int64   `json:"max_allocs_gate"` // -1 = report only, not gated
	Ops         int     `json:"ops"`
}

// hotSealOpen benchmarks one sealed host→device frame round trip with
// caller-supplied buffers. Gate: 0 allocs/op.
func hotSealOpen(b *testing.B) {
	dev, err := seccomm.NewDevice("hotpath-0", nil)
	if err != nil {
		b.Fatal(err)
	}
	auth := seccomm.NewAuthority()
	auth.Register(dev)
	host, devSess, err := seccomm.Handshake(nil, dev, auth)
	if err != nil {
		b.Fatal(err)
	}
	pt := make([]byte, 90)
	sealBuf := make([]byte, 0, len(pt)+seccomm.MACSize)
	openBuf := make([]byte, 0, len(pt))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := host.SealAppend(sealBuf[:0], pt)
		if _, err := devSess.OpenAppend(openBuf[:0], frame); err != nil {
			b.Fatal(err)
		}
	}
}

// hotEngineAccess benchmarks one full accessORAM on a warmed functional
// engine. Gate: 0 allocs/op in steady state.
func hotEngineAccess(b *testing.B) {
	store, err := oram.NewMemStore(4, 64, []byte("hotpath-key"))
	if err != nil {
		b.Fatal(err)
	}
	e, err := oram.NewEngine(store, oram.NewSparsePosMap(), oram.Options{
		Geometry:       oram.MustGeometry(12),
		StashCapacity:  200,
		EvictThreshold: 150,
		Rand:           rng.New(42),
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	const addrs = 64
	for i := 0; i < 8*addrs; i++ {
		if _, _, err := e.Access(uint64(i%addrs), oram.OpWrite, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := oram.OpRead
		if i%2 == 0 {
			op = oram.OpWrite
		}
		if _, _, err := e.Access(uint64(i%addrs), op, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// hotJournalAppend benchmarks committing one journal record, fsync off.
// Gate: 0 allocs/op.
func hotJournalAppend(b *testing.B) {
	dir, err := os.MkdirTemp("", "sdimm-hotpath-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fp := durable.Fingerprint{Kind: "independent", Members: 4, Levels: 12, BlockSize: 64, Z: 4, Seed: 1}
	m, err := durable.Open(dir, []byte("hotpath-key"), fp, 64, false)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	if err := m.WriteCheckpoint(&durable.Checkpoint{Seq: 0}); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	var batch [1]durable.Record
	seq := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch[0] = durable.Record{Seq: seq, Addr: seq % 32, Kind: durable.KindWrite, Data: payload}
		if err := m.Append(batch[:]); err != nil {
			b.Fatal(err)
		}
		seq++
	}
}

// hotClusterAccess benchmarks one sequential cluster access end to end.
// Report only: the cluster path hands response payloads to the caller, so a
// small bounded allocation count is by design.
func hotClusterAccess(b *testing.B) {
	c, err := sdimm.NewCluster(sdimm.ClusterOptions{SDIMMs: 4, Levels: 12, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	const addrs = 64
	for i := 0; i < 2*addrs; i++ {
		if err := c.Write(uint64(i%addrs), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint64(i % addrs)
		if i%2 == 0 {
			if err := c.Write(a, payload); err != nil {
				b.Fatal(err)
			}
		} else if _, err := c.Read(a); err != nil {
			b.Fatal(err)
		}
	}
}

// hotPipelineAccess benchmarks one batched-pipeline access (64-op batches
// through a window-8 pipeline at 4 workers), optionally with the flight
// recorder and blame collector attached — the overhead-gate workload. Each
// b.N unit is one access.
func hotPipelineAccess(fr *flight.Recorder, col *blame.Collector) func(*testing.B) {
	return func(b *testing.B) {
		c, err := sdimm.NewCluster(sdimm.ClusterOptions{SDIMMs: 4, Levels: 12, Seed: 1, Flight: fr, Blame: col})
		if err != nil {
			b.Fatal(err)
		}
		pipe := c.Pipeline(sdimm.PipelineOptions{Window: 8, Parallelism: 4})
		defer pipe.Close()
		const batchLen = 64
		payload := make([]byte, 64)
		ops := make([]sdimm.BatchOp, batchLen)
		for i := range ops {
			ops[i] = sdimm.BatchOp{Addr: uint64(i), Write: i%2 == 0, Data: payload}
		}
		// Warm the stash, the op pool, and (when attached) the collector's
		// wave free-list, so the measured loop is steady state.
		for w := 0; w < 4; w++ {
			for _, r := range pipe.Do(ops) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; done += batchLen {
			for _, r := range pipe.Do(ops) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	}
}

// measureFlightOverhead runs the pipeline workload bare and instrumented
// (min ns/op of three runs each, interleaved so thermal/scheduler drift
// hits both sides) and fills the report's flight section.
func measureFlightOverhead() flightOverhead {
	minNs := func(rs []testing.BenchmarkResult) float64 {
		m := float64(rs[0].NsPerOp())
		for _, r := range rs[1:] {
			if ns := float64(r.NsPerOp()); ns < m {
				m = ns
			}
		}
		return m
	}
	var off, on []testing.BenchmarkResult
	for i := 0; i < 3; i++ {
		off = append(off, testing.Benchmark(hotPipelineAccess(nil, nil)))
		on = append(on, testing.Benchmark(hotPipelineAccess(flight.New(4, 1024), blame.NewCollector(4, 256))))
	}
	ov := flightOverhead{
		BaseNsPerOp:   minNs(off),
		FlightNsPerOp: minNs(on),
		AddedAllocs:   on[0].AllocsPerOp() - off[0].AllocsPerOp(),
		GateEnforced:  runtime.NumCPU() >= 4,
	}
	ov.Ratio = ov.FlightNsPerOp / ov.BaseNsPerOp
	return ov
}

// runHotPath measures every layer of the access hot path, writes the report
// to outPath atomically, optionally captures CPU and heap profiles around
// the measured loops, and enforces the allocation gates.
func runHotPath(outPath, cpuProfile, heapProfile string) error {
	rep := hotPathReport{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}

	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return fmt.Errorf("hotpath: create cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("hotpath: start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
		rep.CPUProfile = cpuProfile
	}

	layers := []struct {
		name      string
		bench     func(*testing.B)
		maxAllocs int64 // -1 = report only
	}{
		{"seccomm-seal-open", hotSealOpen, 0},
		{"engine-access", hotEngineAccess, 0},
		{"journal-append", hotJournalAppend, 0},
		{"cluster-access", hotClusterAccess, -1},
	}
	start := time.Now()
	rep.GatesPassed = true
	for _, l := range layers {
		res := testing.Benchmark(l.bench)
		layer := hotPathLayer{
			Name:        l.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			MaxAllocs:   l.maxAllocs,
			Ops:         res.N,
		}
		rep.Layers = append(rep.Layers, layer)
		gate := "report-only"
		if l.maxAllocs >= 0 {
			if layer.AllocsPerOp > l.maxAllocs {
				rep.GatesPassed = false
				gate = fmt.Sprintf("FAIL (> %d)", l.maxAllocs)
			} else {
				gate = "ok"
			}
		}
		fmt.Fprintf(os.Stderr, "hotpath: %-18s %10.0f ns/op %6d B/op %4d allocs/op  gate=%s\n",
			l.name, layer.NsPerOp, layer.BytesPerOp, layer.AllocsPerOp, gate)
	}
	// Flight-recorder overhead gate: the instrumented pipeline must add no
	// allocations (always enforced) and stay within 3% wall-clock on hosts
	// with enough cores for the comparison to mean anything.
	rep.Flight = measureFlightOverhead()
	fmt.Fprintf(os.Stderr, "hotpath: flight overhead %.0f -> %.0f ns/op (%.3fx), +%d allocs/op (wallclock gate %v)\n",
		rep.Flight.BaseNsPerOp, rep.Flight.FlightNsPerOp, rep.Flight.Ratio,
		rep.Flight.AddedAllocs, rep.Flight.GateEnforced)
	if rep.Flight.AddedAllocs > 0 {
		rep.GatesPassed = false
		fmt.Fprintf(os.Stderr, "hotpath: FAIL flight recorder added %d allocs/op (gate: 0)\n", rep.Flight.AddedAllocs)
	}
	if rep.Flight.GateEnforced && rep.Flight.Ratio > 1.03 {
		rep.GatesPassed = false
		fmt.Fprintf(os.Stderr, "hotpath: FAIL flight recorder overhead %.1f%% (gate: 3%%)\n", 100*(rep.Flight.Ratio-1))
	}
	rep.ElapsedTotal = time.Since(start).Seconds()

	if heapProfile != "" {
		f, err := os.Create(heapProfile)
		if err != nil {
			return fmt.Errorf("hotpath: create heap profile: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("hotpath: write heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		rep.HeapProfile = heapProfile
	}

	if err := writeJSONAtomic(outPath, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hotpath: wrote %s\n", outPath)
	if !rep.GatesPassed {
		return fmt.Errorf("hotpath: allocation gate failed (see %s)", outPath)
	}
	return nil
}
