package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"sdimm"
	"sdimm/internal/config"
	"sdimm/internal/experiments"
)

// parBenchReport is the BENCH_parallel.json schema: the cluster-pipeline
// throughput curve, the campaign wall-clock comparison, and whether the
// speedup gates were actually enforced (they only mean anything on a
// multi-core host; a 1-CPU CI container records the numbers but cannot
// demand a speedup from extra workers).
type parBenchReport struct {
	NumCPU       int                 `json:"num_cpu"`
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	GateEnforced bool                `json:"gate_enforced"`
	Cluster      []clusterBenchPoint `json:"cluster"`
	Campaign     campaignBench       `json:"campaign"`
}

type clusterBenchPoint struct {
	Parallelism    int     `json:"parallelism"`
	AccessesPerSec float64 `json:"accesses_per_sec"`
	Speedup        float64 `json:"speedup_vs_1"`
}

type campaignBench struct {
	Sims        int     `json:"sims"`
	Workers1Sec float64 `json:"workers1_sec"`
	Workers8Sec float64 `json:"workers8_sec"`
	Speedup     float64 `json:"speedup_vs_1"`
}

// clusterThroughput measures the batched pipeline at one worker count:
// a fresh 8-SDIMM Independent cluster, the same deterministic op sequence
// every time, accesses per wall-clock second.
func clusterThroughput(parallelism int) (float64, error) {
	const (
		batches  = 30
		batchLen = 64
	)
	c, err := sdimm.NewCluster(sdimm.ClusterOptions{SDIMMs: 8, Levels: 12, Seed: 1})
	if err != nil {
		return 0, err
	}
	pipe := c.Pipeline(sdimm.PipelineOptions{Window: 8, Parallelism: parallelism})
	defer pipe.Close()
	ops := make([]sdimm.BatchOp, batchLen)
	payload := make([]byte, 64)
	for i := range ops {
		ops[i] = sdimm.BatchOp{Addr: uint64(i), Write: i%2 == 0, Data: payload}
	}
	start := time.Now()
	for b := 0; b < batches; b++ {
		for _, r := range pipe.Do(ops) {
			if r.Err != nil {
				return 0, r.Err
			}
		}
	}
	return float64(batches*batchLen) / time.Since(start).Seconds(), nil
}

// campaignWallClock times the full workload × backend grid at one worker
// count. The grid and results are identical at every Parallel setting (the
// equivalence suite pins that); only the wall-clock may differ.
func campaignWallClock(workers int) (int, float64, error) {
	o := experiments.Options{Warmup: 100, Measure: 250, Levels: 22, Seed: 1, Parallel: workers}
	protos := []config.Protocol{config.NonSecure, config.Freecursive,
		config.Independent, config.Split, config.IndepSplit, config.Ring}
	start := time.Now()
	res, err := experiments.Campaign(o, protos, 2)
	if err != nil {
		return 0, 0, err
	}
	return len(res), time.Since(start).Seconds(), nil
}

// runParBench produces BENCH_parallel.json and applies the CI speedup
// gates: 4 pipeline workers must beat 1 worker by ≥2× and an 8-worker
// campaign must halve the 1-worker wall clock — but only on hosts where
// that many workers can actually run at once. The effective core count is
// min(NumCPU, GOMAXPROCS): a container can cap GOMAXPROCS below the host's
// cores, and a gate demanded there would only measure the scheduler.
func runParBench(outPath string) error {
	effective := min(runtime.NumCPU(), runtime.GOMAXPROCS(0))
	rep := parBenchReport{
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		GateEnforced: effective >= 4,
	}

	var base float64
	for _, par := range []int{1, 2, 4, 8} {
		rate, err := clusterThroughput(par)
		if err != nil {
			return fmt.Errorf("cluster bench (parallelism %d): %w", par, err)
		}
		if par == 1 {
			base = rate
		}
		rep.Cluster = append(rep.Cluster, clusterBenchPoint{
			Parallelism: par, AccessesPerSec: rate, Speedup: rate / base,
		})
		fmt.Fprintf(os.Stderr, "parbench: cluster parallelism=%d %.0f accesses/s (%.2fx)\n",
			par, rate, rate/base)
	}

	sims, sec1, err := campaignWallClock(1)
	if err != nil {
		return err
	}
	_, sec8, err := campaignWallClock(8)
	if err != nil {
		return err
	}
	rep.Campaign = campaignBench{Sims: sims, Workers1Sec: sec1, Workers8Sec: sec8, Speedup: sec1 / sec8}
	fmt.Fprintf(os.Stderr, "parbench: campaign %d sims: %.2fs @1 worker, %.2fs @8 workers (%.2fx)\n",
		sims, sec1, sec8, sec1/sec8)

	if err := writeJSONAtomic(outPath, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "parbench: wrote %s\n", outPath)

	if !rep.GateEnforced {
		fmt.Fprintf(os.Stderr, "parbench: %d effective CPU(s) — speedup gate recorded but not enforced\n", effective)
		return nil
	}
	for _, p := range rep.Cluster {
		if p.Parallelism == 4 && p.Speedup < 2.0 {
			return fmt.Errorf("cluster speedup at 4 workers is %.2fx, below the 2x gate", p.Speedup)
		}
	}
	if effective >= 8 && rep.Campaign.Speedup < 2.0 {
		return fmt.Errorf("campaign speedup at 8 workers is %.2fx, below the 2x gate", rep.Campaign.Speedup)
	}
	return nil
}
