// Command sdimm-bench regenerates the paper's evaluation: every figure and
// the textual results, printed as tables/series in the layout of Section IV.
//
// Usage:
//
//	sdimm-bench                 # all experiments at default scale
//	sdimm-bench -exp fig9       # one experiment
//	sdimm-bench -measure 2000   # bigger measurement windows
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdimm/internal/experiments"
	"sdimm/internal/stats"
	"sdimm/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig6|fig8|fig9|fig10|fig11|fig13a|fig13b|offdimm|latency|lowpower|cotenant|overflow|ring|area|all, or parbench/recbench/hotpath/rebalance/blame/ringbench (not part of all)")
		warmup   = flag.Int("warmup", 400, "warmup records per run")
		measure  = flag.Int("measure", 800, "measured records per run")
		levels   = flag.Int("levels", 28, "ORAM tree levels")
		seed     = flag.Uint64("seed", 1, "base seed")
		loads    = flag.String("workloads", "", "comma-separated subset of workloads (default: all 10)")
		parallel = flag.Int("parallel", 0, "concurrent simulations (default: NumCPU)")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		snapshot = flag.Bool("snapshot", false, "print the aggregate telemetry snapshot after all experiments")
		telAddr  = flag.String("telemetry", "", "serve live telemetry JSON on this address (e.g. localhost:8080) while experiments run")
		telLog   = flag.Duration("telemetry-log", 0, "log the telemetry snapshot to stderr at this interval (0 disables)")
		parOut   = flag.String("parbench-out", "BENCH_parallel.json", "output path for -exp parbench")
		recOut   = flag.String("recbench-out", "BENCH_recovery.json", "output path for -exp recbench")
		rebOut   = flag.String("rebalance-out", "BENCH_rebalance.json", "output path for -exp rebalance")
		hotOut   = flag.String("hotpath-out", "BENCH_hotpath.json", "output path for -exp hotpath")
		blameOut = flag.String("blame-out", "BENCH_blame.json", "output path for -exp blame")
		ringOut  = flag.String("ringbench-out", "BENCH_ring.json", "output path for -exp ringbench")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the hotpath loops to this file (-exp hotpath)")
		memProf  = flag.String("memprofile", "", "write a heap profile after the hotpath loops to this file (-exp hotpath)")
	)
	flag.Parse()

	// hotpath benchmarks every layer of the steady-state access loop,
	// enforces the allocation gates, and writes BENCH_hotpath.json (plus
	// optional pprof profiles for `make profile`).
	if *exp == "hotpath" {
		if err := runHotPath(*hotOut, *cpuProf, *memProf); err != nil {
			fatal(err)
		}
		return
	}

	// ringbench compares on-DIMM bucket-write traffic between ring-eviction
	// and Path ORAM clusters at the identical workload and enforces the
	// ≥20% reduction gate. Writes BENCH_ring.json.
	if *exp == "ringbench" {
		if err := runRingBench(*ringOut); err != nil {
			fatal(err)
		}
		return
	}

	// blame profiles the batched pipeline's critical path: per-wave phase
	// intervals, the serialization ledger, and the Amdahl speedup bound.
	// Writes BENCH_blame.json.
	if *exp == "blame" {
		if err := runBlame(*blameOut); err != nil {
			fatal(err)
		}
		return
	}

	// rebalance measures elastic membership: drain throughput, the latency
	// cost of co-running a drain with the workload, join cost, and the
	// Split whole-member rebuild. Writes BENCH_rebalance.json.
	if *exp == "rebalance" {
		if err := runRebalance(*rebOut); err != nil {
			fatal(err)
		}
		return
	}

	// recbench times checkpoint save/restore and journal replay for the
	// durability layer, writing BENCH_recovery.json.
	if *exp == "recbench" {
		if err := runRecBench(*recOut); err != nil {
			fatal(err)
		}
		return
	}

	// parbench is the parallel-engine throughput report, not a paper
	// table: it times the cluster pipeline and the campaign runner at
	// several worker counts, writes BENCH_parallel.json, and enforces the
	// CI speedup gates on hosts with enough cores.
	if *exp == "parbench" {
		if err := runParBench(*parOut); err != nil {
			fatal(err)
		}
		return
	}

	opt := experiments.Options{
		Warmup:   *warmup,
		Measure:  *measure,
		Levels:   *levels,
		Seed:     *seed,
		Parallel: *parallel,
	}
	if *loads != "" {
		opt.Workloads = strings.Split(*loads, ",")
	}
	if *snapshot || *telAddr != "" || *telLog != 0 {
		opt.Telemetry = telemetry.NewRegistry()
	}
	if *telAddr != "" {
		addr, stop, err := telemetry.Serve(*telAddr, opt.Telemetry)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "sdimm-bench: telemetry at http://%s (?text=1 for plain text)\n", addr)
	}
	if *telLog != 0 {
		stop := telemetry.StartLogger(opt.Telemetry, os.Stderr, *telLog)
		defer stop()
	}

	type tableExp struct {
		name string
		run  func(experiments.Options) (*stats.Table, error)
	}
	tables := []tableExp{
		{"fig6", experiments.Fig6},
		{"fig8", experiments.Fig8},
		{"fig9", experiments.Fig9},
		{"fig10", experiments.Fig10},
		{"fig11", func(o experiments.Options) (*stats.Table, error) { return experiments.Fig11(o, nil) }},
		{"offdimm", experiments.OffDIMM},
		{"latency", experiments.Latency},
		{"ring", experiments.Ring},
		{"lowpower", experiments.LowPower},
		{"cotenant", experiments.CoTenant},
		{"overflow", experiments.Overflow},
	}

	ran := false
	for _, te := range tables {
		if *exp != "all" && *exp != te.name {
			continue
		}
		ran = true
		start := time.Now()
		t, err := te.run(opt)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", te.name, t.CSV())
		} else {
			fmt.Print(t)
			fmt.Printf("(%s in %.1fs)\n\n", te.name, time.Since(start).Seconds())
		}
	}

	if *exp == "all" || *exp == "fig13a" {
		ran = true
		series, err := experiments.Fig13a(nil, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Figure 13a: transfer-queue overflow probability (random walk) ==")
		for _, s := range series {
			fmt.Println(s.String())
		}
		fmt.Println()
	}
	if *exp == "all" || *exp == "fig13b" {
		ran = true
		series, err := experiments.Fig13b(nil, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Figure 13b: M/M/1/K overflow probability ==")
		for _, s := range series {
			fmt.Println(s.String())
		}
		fmt.Println()
	}
	if *exp == "all" || *exp == "area" {
		ran = true
		a := experiments.Area()
		fmt.Println("== Secure buffer area (Section IV-B) ==")
		fmt.Printf("ORAM controller %.2f mm² + 8KB buffer %.2f mm² = %.2f mm² (< 1 mm²)\n\n",
			a.ControllerMM2, a.BufferMM2, a.Total())
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if *snapshot {
		fmt.Println("== Aggregate telemetry ==")
		opt.Telemetry.Snapshot().WriteText(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdimm-bench:", err)
	os.Exit(1)
}
