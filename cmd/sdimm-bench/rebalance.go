package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"sdimm"
	"sdimm/internal/rng"
)

// rebalanceReport is the BENCH_rebalance.json schema: what elastic
// membership costs while the cluster keeps serving. Report numbers, not
// gated — a drain is a rare operator action, so the interesting questions
// are "how long until the member is empty" and "what does co-running it do
// to workload latency", not a speedup ratio.
type rebalanceReport struct {
	NumCPU int `json:"num_cpu"`
	SDIMMs int `json:"sdimms"`
	Levels int `json:"levels"`

	// Independent protocol: drain/remove/join.
	DrainedBlocks    int     `json:"drained_blocks"`
	DrainMs          float64 `json:"drain_ms"`
	DrainStepsPerSec float64 `json:"drain_steps_per_sec"`
	SteadyOpUs       float64 `json:"steady_op_us"`
	CorunOpUs        float64 `json:"corun_op_us"` // per workload op with one migration interleaved
	JoinMs           float64 `json:"join_ms"`

	// Split protocol: whole-member rebuild from XOR parity.
	SplitRebuildMs float64 `json:"split_rebuild_ms"`
}

// runRebalance measures the elastic-membership operations end to end and
// writes the report to outPath.
func runRebalance(outPath string) error {
	const (
		addrs    = 512
		populate = 1024
		steadyN  = 200
		corunN   = 64
	)
	rep := rebalanceReport{NumCPU: runtime.NumCPU(), SDIMMs: 4, Levels: 12}

	c, err := sdimm.NewCluster(sdimm.ClusterOptions{
		SDIMMs: rep.SDIMMs,
		Levels: rep.Levels,
		Key:    []byte("rebalance-bench-key"),
		Seed:   7,
	})
	if err != nil {
		return err
	}
	r := rng.New(7)
	payload := make([]byte, 64)
	op := func() error {
		addr := r.Uint64n(addrs)
		if r.Bool(0.5) {
			for j := range payload {
				payload[j] = byte(r.Uint64n(256))
			}
			return c.Write(addr, payload)
		}
		_, err := c.Read(addr)
		return err
	}
	for i := 0; i < populate; i++ {
		if err := op(); err != nil {
			return err
		}
	}

	// Steady-state baseline.
	start := time.Now()
	for i := 0; i < steadyN; i++ {
		if err := op(); err != nil {
			return err
		}
	}
	rep.SteadyOpUs = float64(time.Since(start).Microseconds()) / steadyN

	// Co-run window: workload with one migration step after each op — the
	// pacing an operator would use to drain without starving the workload.
	if err := c.BeginDrain(1); err != nil {
		return err
	}
	start = time.Now()
	for i := 0; i < corunN; i++ {
		if err := op(); err != nil {
			return err
		}
		if _, err := c.DrainStep(); err != nil {
			return err
		}
	}
	rep.CorunOpUs = float64(time.Since(start).Microseconds()) / corunN
	rep.DrainedBlocks = corunN

	// Drain the rest flat out.
	start = time.Now()
	for {
		done, err := c.DrainStep()
		if err != nil {
			return err
		}
		if done {
			break
		}
		rep.DrainedBlocks++
	}
	drainTail := time.Since(start)
	rep.DrainMs = float64(drainTail.Microseconds()) / 1e3
	if tail := rep.DrainedBlocks - corunN; tail > 0 && drainTail > 0 {
		rep.DrainStepsPerSec = float64(tail) / drainTail.Seconds()
	}
	if err := c.CompleteDrain(); err != nil {
		return err
	}

	start = time.Now()
	if err := c.AddSDIMM(1); err != nil {
		return err
	}
	rep.JoinMs = float64(time.Since(start).Microseconds()) / 1e3
	c.Close()

	// Split flavour: time a whole-member rebuild from parity at the same
	// tree size.
	sc, err := sdimm.NewSplitCluster(sdimm.SplitClusterOptions{
		SDIMMs: rep.SDIMMs,
		Levels: rep.Levels,
		Key:    []byte("rebalance-bench-split-key"),
		Seed:   11,
		Parity: true,
	})
	if err != nil {
		return err
	}
	sr := rng.New(11)
	for i := 0; i < populate; i++ {
		addr := sr.Uint64n(addrs)
		if sr.Bool(0.5) {
			if err := sc.Write(addr, []byte{byte(addr)}); err != nil {
				return err
			}
		} else if _, err := sc.Read(addr); err != nil {
			return err
		}
	}
	sc.FailShard(1)
	start = time.Now()
	if err := sc.ReplaceMember(1); err != nil {
		return err
	}
	rep.SplitRebuildMs = float64(time.Since(start).Microseconds()) / 1e3
	sc.Close()

	fmt.Fprintf(os.Stderr,
		"rebalance: drained %d blocks in %.1fms (%.0f steps/s tail), op %0.1fµs steady → %0.1fµs co-run, join %.2fms, split rebuild %.1fms\n",
		rep.DrainedBlocks, rep.DrainMs, rep.DrainStepsPerSec, rep.SteadyOpUs, rep.CorunOpUs, rep.JoinMs, rep.SplitRebuildMs)

	if err := writeJSONAtomic(outPath, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rebalance: wrote %s\n", outPath)
	return nil
}
