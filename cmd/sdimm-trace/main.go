// Command sdimm-trace generates synthetic L1-miss trace files in the
// simulator's binary format, or inspects existing ones.
//
// Usage:
//
//	sdimm-trace -workload mcf -n 1000000 -o mcf.sdtr
//	sdimm-trace -inspect mcf.sdtr
package main

import (
	"flag"
	"fmt"
	"os"

	"sdimm/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "mcf", "benchmark profile")
		n        = flag.Int("n", 100000, "records to generate")
		seed     = flag.Uint64("seed", 1, "generation seed")
		out      = flag.String("o", "", "output file (default <workload>.sdtr)")
		inspect  = flag.String("inspect", "", "print a summary of an existing trace file and exit")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		recs, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		summarize(*inspect, recs)
		return
	}

	prof, err := trace.ProfileByName(*workload)
	if err != nil {
		fatal(err)
	}
	recs, err := prof.Generate(*n, *seed)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *workload + ".sdtr"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := trace.Write(f, recs); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d records to %s\n", len(recs), path)
}

func summarize(name string, recs []trace.Record) {
	if len(recs) == 0 {
		fmt.Printf("%s: empty trace\n", name)
		return
	}
	var gaps, writes uint64
	minA, maxA := recs[0].Addr, recs[0].Addr
	for _, r := range recs {
		gaps += uint64(r.Gap)
		if r.Write {
			writes++
		}
		if r.Addr < minA {
			minA = r.Addr
		}
		if r.Addr > maxA {
			maxA = r.Addr
		}
	}
	fmt.Printf("%s: %d records\n", name, len(recs))
	fmt.Printf("  mean gap     %.1f instructions\n", float64(gaps)/float64(len(recs)))
	fmt.Printf("  write frac   %.3f\n", float64(writes)/float64(len(recs)))
	fmt.Printf("  addr range   [%d, %d] lines\n", minA, maxA)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdimm-trace:", err)
	os.Exit(1)
}
