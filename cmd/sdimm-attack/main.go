// Command sdimm-attack plays the adversary of the threat model: it captures
// the plaintext command/address traces on every untrusted bus for two
// programs and reports whether they can be told apart, with the
// distinguishability metrics of internal/attacker.
//
// Usage:
//
//	sdimm-attack -protocol freecursive -a libquantum -b mcf
//	sdimm-attack -protocol non-secure  -a libquantum -b mcf
package main

import (
	"flag"
	"fmt"
	"os"

	"sdimm/internal/attacker"
	"sdimm/internal/config"
)

func main() {
	var (
		protoName = flag.String("protocol", "freecursive", "memory system under attack")
		wa        = flag.String("a", "libquantum", "first program")
		wb        = flag.String("b", "mcf", "second program")
		channels  = flag.Int("channels", 1, "host memory channels")
		levels    = flag.Int("levels", 20, "ORAM tree levels")
		records   = flag.Int("records", 400, "measured records per capture")
		seed      = flag.Uint64("seed", 1, "system randomness seed")
	)
	flag.Parse()

	proto, err := parseProtocol(*protoName)
	if err != nil {
		fatal(err)
	}
	grab := func(w string, sysSeed uint64) *attacker.Trace {
		cfg := config.Default(proto, *channels)
		cfg.ORAM.Levels = *levels
		cfg.WarmupAccesses = 100
		cfg.MeasureAccesses = *records
		cfg.Seed = sysSeed
		traces, _, err := attacker.CaptureSeeded(cfg, w, 1)
		if err != nil {
			fatal(err)
		}
		return attacker.Merge(traces)
	}

	ta := grab(*wa, *seed)
	tb := grab(*wb, *seed)
	cross, err := attacker.TotalVariation(ta, tb)
	if err != nil {
		fatal(err)
	}
	floor, err := attacker.TotalVariation(ta, grab(*wa, *seed+1))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("memory system: %s\n", proto)
	for _, pair := range []struct {
		name string
		tr   *attacker.Trace
	}{{*wa, ta}, {*wb, tb}} {
		r := attacker.Analyze(pair.tr)
		fmt.Printf("  %-12s %6d ACTs  %5d rows  entropy %.2f bits (norm %.3f)  repeat %.3f\n",
			pair.name, r.Accesses, r.DistinctRows, r.Entropy, r.NormalizedEntropy, r.RepeatRate)
	}
	fmt.Printf("TV(%s, %s) = %.3f   noise floor = %.3f\n", *wa, *wb, cross, floor)
	if cross >= 1.5*floor {
		fmt.Println("verdict: DISTINGUISHABLE — the bus leaks the access pattern")
		os.Exit(2)
	}
	fmt.Println("verdict: indistinguishable within sampling noise")
}

func parseProtocol(s string) (config.Protocol, error) {
	for _, p := range []config.Protocol{config.NonSecure, config.Freecursive,
		config.Independent, config.Split, config.IndepSplit, config.Ring} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdimm-attack:", err)
	os.Exit(1)
}
