// Command sdimm-sim runs one simulation: a protocol, a channel count, and a
// workload, printing performance and energy results.
//
// Usage:
//
//	sdimm-sim -protocol indep-split -channels 2 -workload mcf
//	sdimm-sim -protocol freecursive -levels 24 -warmup 500 -measure 2000
//	sdimm-sim -protocol independent -trace out.json -snapshot
//	sdimm-sim -workload milc,gromacs,mcf -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"sdimm/internal/config"
	"sdimm/internal/sim"
	"sdimm/internal/telemetry"
	"sdimm/internal/trace"
)

func main() {
	var (
		protoName = flag.String("protocol", "freecursive", "non-secure | freecursive | independent | split | indep-split | ring")
		channels  = flag.Int("channels", 2, "host memory channels (1 or 2)")
		workload  = flag.String("workload", "mcf", "benchmark profile, or a comma-separated list to shard (see -list)")
		parallel  = flag.Int("parallel", 1, "concurrent simulations when -workload lists several profiles (output order and merged telemetry are identical at any value)")
		levels    = flag.Int("levels", 28, "ORAM tree levels")
		cached    = flag.Int("cached", 7, "on-chip ORAM cache levels (0 disables)")
		warmup    = flag.Int("warmup", 500, "warmup LLC-miss records")
		measure   = flag.Int("measure", 2000, "measured LLC-miss records")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		lowPower  = flag.Bool("lowpower", true, "rank-per-subtree low-power layout")
		replay    = flag.String("replay", "", "drive the run from a trace file (see sdimm-trace) instead of a generated workload")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file of the run (open in Perfetto or chrome://tracing)")
		snapshot  = flag.Bool("snapshot", false, "print the telemetry snapshot after the run")
		telAddr   = flag.String("telemetry", "", "serve live telemetry JSON on this address (e.g. localhost:8080) during the run")
		telLog    = flag.Duration("telemetry-log", 0, "log the telemetry snapshot to stderr at this interval (0 disables)")
		list      = flag.Bool("list", false, "list workload profiles and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range trace.Profiles() {
			fmt.Printf("%-12s mean-gap=%-4g burst=%-3d stream=%.2f footprint=%d lines\n",
				p.Name, p.MeanGap, p.Burst, p.StreamProb, p.Footprint)
		}
		return
	}

	proto, err := parseProtocol(*protoName)
	if err != nil {
		fatal(err)
	}
	cfg := config.Default(proto, *channels)
	cfg.ORAM.Levels = *levels
	cfg.ORAM.CachedLevels = *cached
	cfg.WarmupAccesses = *warmup
	cfg.MeasureAccesses = *measure
	cfg.Seed = *seed
	cfg.LowPower = *lowPower

	var tel *sim.Telemetry
	if *traceOut != "" || *snapshot || *telAddr != "" || *telLog != 0 {
		tel = &sim.Telemetry{Registry: telemetry.NewRegistry(), Trace: *traceOut != ""}
	}

	// A comma-separated -workload list shards the runs across -parallel
	// workers. Each run gets a private registry; the shards are merged in
	// list order, so output and telemetry match a sequential run exactly.
	if names := strings.Split(*workload, ","); len(names) > 1 {
		if *replay != "" || *traceOut != "" {
			fatal(fmt.Errorf("-replay and -trace need a single workload"))
		}
		runSharded(cfg, names, *parallel, tel, *telAddr, *telLog, *snapshot)
		return
	}

	if *telAddr != "" {
		addr, stop, err := telemetry.Serve(*telAddr, tel.Registry)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "sdimm-sim: telemetry at http://%s (?text=1 for plain text)\n", addr)
	}
	if *telLog != 0 {
		stop := telemetry.StartLogger(tel.Registry, os.Stderr, *telLog)
		defer stop()
	}

	var res sim.Result
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		recs, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if cfg.WarmupAccesses+cfg.MeasureAccesses > len(recs) {
			fatal(fmt.Errorf("trace has %d records, need %d", len(recs), cfg.WarmupAccesses+cfg.MeasureAccesses))
		}
		res, err = sim.RunTraceInstrumented(cfg, *replay, recs[:cfg.WarmupAccesses+cfg.MeasureAccesses], nil, tel)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		res, err = sim.RunInstrumented(cfg, *workload, tel)
		if err != nil {
			fatal(err)
		}
	}

	printResult(res)

	if *traceOut != "" {
		if err := writeTrace(*traceOut, tel.Tracer); err != nil {
			fatal(err)
		}
	}
	if *snapshot {
		fmt.Println()
		tel.Registry.Snapshot().WriteText(os.Stdout)
	}
}

func printResult(res sim.Result) {
	fmt.Printf("protocol           %s\n", res.Protocol)
	fmt.Printf("workload           %s\n", res.Workload)
	fmt.Printf("measured cycles    %d\n", res.MeasuredCycles)
	fmt.Printf("total cycles       %d\n", res.TotalCycles)
	fmt.Printf("LLC misses (meas)  %d\n", res.LLCMisses)
	fmt.Printf("cycles / miss      %.1f\n", res.CyclesPerMiss())
	fmt.Printf("avg miss latency   %.1f cycles\n", res.AvgMissLatency)
	fmt.Printf("accessORAM / miss  %.3f\n", res.AccessesPerMiss)
	fmt.Printf("host bytes         %d\n", res.HostBytes)
	fmt.Printf("on-DIMM bytes      %d\n", res.LocalBytes)
	fmt.Printf("energy             %.4g J (bg %.3g, act %.3g, rw %.3g, ref %.3g, io %.3g)\n",
		res.Energy.Total(), res.Energy.Background, res.Energy.ActPre,
		res.Energy.ReadWrite, res.Energy.Refresh, res.Energy.IO)
	fmt.Printf("energy / miss      %.4g J\n", res.EnergyPerMiss)
	fmt.Printf("host bus util      %.3f\n", res.HostBusUtil)
	fmt.Printf("on-DIMM bus util   %.3f\n", res.LocalBusUtil)
}

// runSharded executes one configuration against several workloads across a
// bounded worker pool. Per-shard results and registries land in
// list-indexed slots and are printed/merged in list order after the pool
// drains, so -parallel changes only the wall clock.
func runSharded(cfg config.Config, names []string, parallel int, tel *sim.Telemetry, telAddr string, telLog time.Duration, snapshot bool) {
	if tel != nil {
		if telAddr != "" {
			addr, stop, err := telemetry.Serve(telAddr, tel.Registry)
			if err != nil {
				fatal(err)
			}
			defer stop()
			fmt.Fprintf(os.Stderr, "sdimm-sim: telemetry at http://%s (?text=1 for plain text)\n", addr)
		}
		if telLog != 0 {
			stop := telemetry.StartLogger(tel.Registry, os.Stderr, telLog)
			defer stop()
		}
	}
	if parallel < 1 {
		parallel = 1
	}
	results := make([]sim.Result, len(names))
	errs := make([]error, len(names))
	regs := make([]*telemetry.Registry, len(names))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var shard *sim.Telemetry
			if tel != nil {
				regs[i] = telemetry.NewRegistry()
				shard = &sim.Telemetry{Registry: regs[i]}
			}
			results[i], errs[i] = sim.RunInstrumented(cfg, strings.TrimSpace(names[i]), shard)
		}(i)
	}
	wg.Wait()
	for i, name := range names {
		if errs[i] != nil {
			fatal(fmt.Errorf("%s: %w", name, errs[i]))
		}
		if i > 0 {
			fmt.Println()
		}
		printResult(results[i])
		if tel != nil {
			tel.Registry.Merge(regs[i])
		}
	}
	if snapshot {
		fmt.Println()
		tel.Registry.Snapshot().WriteText(os.Stdout)
	}
}

// writeTrace exports the collected spans as Chrome trace-event JSON and
// re-validates the written file so a bad export fails loudly.
func writeTrace(path string, tr *telemetry.Tracer) error {
	if tr == nil {
		return fmt.Errorf("no trace collected (protocol does not emit spans)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n, err := telemetry.ValidateTrace(data)
	if err != nil {
		return fmt.Errorf("%s: invalid trace: %w", path, err)
	}
	fmt.Printf("trace              %s (%d events, validated)\n", path, n)
	return nil
}

func parseProtocol(s string) (config.Protocol, error) {
	for _, p := range []config.Protocol{config.NonSecure, config.Freecursive,
		config.Independent, config.Split, config.IndepSplit, config.Ring} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdimm-sim:", err)
	os.Exit(1)
}
