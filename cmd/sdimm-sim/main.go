// Command sdimm-sim runs one simulation: a protocol, a channel count, and a
// workload, printing performance and energy results.
//
// Usage:
//
//	sdimm-sim -protocol indep-split -channels 2 -workload mcf
//	sdimm-sim -protocol freecursive -levels 24 -warmup 500 -measure 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"sdimm/internal/config"
	"sdimm/internal/sim"
	"sdimm/internal/trace"
)

func main() {
	var (
		protoName = flag.String("protocol", "freecursive", "non-secure | freecursive | independent | split | indep-split")
		channels  = flag.Int("channels", 2, "host memory channels (1 or 2)")
		workload  = flag.String("workload", "mcf", "benchmark profile (see -list)")
		levels    = flag.Int("levels", 28, "ORAM tree levels")
		cached    = flag.Int("cached", 7, "on-chip ORAM cache levels (0 disables)")
		warmup    = flag.Int("warmup", 500, "warmup LLC-miss records")
		measure   = flag.Int("measure", 2000, "measured LLC-miss records")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		lowPower  = flag.Bool("lowpower", true, "rank-per-subtree low-power layout")
		traceFile = flag.String("trace", "", "drive the run from a trace file (see sdimm-trace) instead of a generated workload")
		list      = flag.Bool("list", false, "list workload profiles and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range trace.Profiles() {
			fmt.Printf("%-12s mean-gap=%-4g burst=%-3d stream=%.2f footprint=%d lines\n",
				p.Name, p.MeanGap, p.Burst, p.StreamProb, p.Footprint)
		}
		return
	}

	proto, err := parseProtocol(*protoName)
	if err != nil {
		fatal(err)
	}
	cfg := config.Default(proto, *channels)
	cfg.ORAM.Levels = *levels
	cfg.ORAM.CachedLevels = *cached
	cfg.WarmupAccesses = *warmup
	cfg.MeasureAccesses = *measure
	cfg.Seed = *seed
	cfg.LowPower = *lowPower

	var res sim.Result
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		recs, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if cfg.WarmupAccesses+cfg.MeasureAccesses > len(recs) {
			fatal(fmt.Errorf("trace has %d records, need %d", len(recs), cfg.WarmupAccesses+cfg.MeasureAccesses))
		}
		res, err = sim.RunTrace(cfg, *traceFile, recs[:cfg.WarmupAccesses+cfg.MeasureAccesses])
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		res, err = sim.Run(cfg, *workload)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("protocol           %s\n", res.Protocol)
	fmt.Printf("workload           %s\n", res.Workload)
	fmt.Printf("measured cycles    %d\n", res.MeasuredCycles)
	fmt.Printf("total cycles       %d\n", res.TotalCycles)
	fmt.Printf("LLC misses (meas)  %d\n", res.LLCMisses)
	fmt.Printf("cycles / miss      %.1f\n", res.CyclesPerMiss())
	fmt.Printf("avg miss latency   %.1f cycles\n", res.AvgMissLatency)
	fmt.Printf("accessORAM / miss  %.3f\n", res.AccessesPerMiss)
	fmt.Printf("host bytes         %d\n", res.HostBytes)
	fmt.Printf("on-DIMM bytes      %d\n", res.LocalBytes)
	fmt.Printf("energy             %.4g J (bg %.3g, act %.3g, rw %.3g, ref %.3g, io %.3g)\n",
		res.Energy.Total(), res.Energy.Background, res.Energy.ActPre,
		res.Energy.ReadWrite, res.Energy.Refresh, res.Energy.IO)
	fmt.Printf("energy / miss      %.4g J\n", res.EnergyPerMiss)
	fmt.Printf("host bus util      %.3f\n", res.HostBusUtil)
	fmt.Printf("on-DIMM bus util   %.3f\n", res.LocalBusUtil)
}

func parseProtocol(s string) (config.Protocol, error) {
	for _, p := range []config.Protocol{config.NonSecure, config.Freecursive,
		config.Independent, config.Split, config.IndepSplit} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdimm-sim:", err)
	os.Exit(1)
}
