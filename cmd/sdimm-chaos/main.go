// Command sdimm-chaos runs a fault-injection campaign against a
// distributed SDIMM cluster and reports whether the recovery layer held:
// zero payload mismatches against a reference map, zero breaches of the
// traffic-pattern invariant, and the final per-SDIMM health view.
//
// Usage:
//
//	sdimm-chaos                       # 5000 accesses, ~1.7% fault rate
//	sdimm-chaos -n 20000 -rate 0.05   # longer and nastier
//	sdimm-chaos -split -failshard 1   # Split protocol, kill shard 1 mid-run
//
// With -crash it instead runs the crash-recovery equivalence sweep: seeded
// restart points tear the journal mid-record (or, with -corrupt, flip a
// sealed-bucket bit and checkpoint the damage), the cluster restarts from
// its state directory, and the recovered run must be bitwise-equivalent to
// an uncrashed reference:
//
//	sdimm-chaos -crash -n 1200 -crashes 4
//	sdimm-chaos -crash -corrupt           # exercise the scrub pass
//	sdimm-chaos -crash -split -corrupt    # parity must repair every flip
//
// With -resize it runs the elastic-membership equivalence sweep: the
// workload drains a member mid-run, detaches it, and rejoins the slot
// (Independent), or fail-stops a shard and rebuilds it from parity
// (Split), while seeded crashes land anywhere in the record stream —
// including inside migration batches. The recovered run must match the
// uncrashed reference bit for bit, and the reference run's link traffic
// must show no migration-shaped frames:
//
//	sdimm-chaos -resize -n 1200 -crashes 4
//	sdimm-chaos -resize -parallel 4       # migrations through the pipeline
//	sdimm-chaos -resize -split            # member replacement from parity
package main

import (
	"flag"
	"fmt"
	"os"

	"sdimm/internal/chaos"
	"sdimm/internal/fault"
	"sdimm/internal/flight"
	"sdimm/internal/telemetry"
	"sdimm/internal/witness"
)

func main() {
	var (
		n         = flag.Int("n", 5000, "number of accesses")
		sdimms    = flag.Int("sdimms", 4, "SDIMMs (power of two)")
		levels    = flag.Int("levels", 10, "ORAM tree levels")
		addrs     = flag.Uint64("addrs", 96, "address working-set size")
		seed      = flag.Uint64("seed", 42, "workload + fault seed")
		rate      = flag.Float64("rate", 0.017, "total per-delivery fault probability")
		attempts  = flag.Int("attempts", 8, "retry budget per exchange")
		split     = flag.Bool("split", false, "run the Split protocol (with XOR parity) instead of Independent")
		failShard = flag.Int("failshard", -1, "Split: member index to fail-stop a third of the way in (-1 = none)")
		snapshot  = flag.Bool("snapshot", true, "print the final telemetry snapshot (cluster.*, fault.*, seccomm.*)")
		traceOut  = flag.String("trace", "", "write cluster access spans as Chrome trace-event JSON to this file")
		parallel  = flag.Int("parallel", 1, "concurrent SDIMM workers (>1 drives the batched pipeline; results are bit-identical at any value)")
		batch     = flag.Int("batch", 8, "pipeline window for -parallel > 1 runs")
		crash     = flag.Bool("crash", false, "run the crash-recovery equivalence sweep instead of the fault campaign")
		crashes   = flag.Int("crashes", 4, "crash: number of seeded restart points")
		stateDir  = flag.String("statedir", "", "crash: state directory (default: a fresh temp dir, removed afterwards)")
		interval  = flag.Int("interval", 64, "crash: checkpoint cadence in committed accesses")
		corrupt   = flag.Bool("corrupt", false, "crash: flip a sealed-bucket bit at each point (scrub pass) instead of tearing the journal")
		resize    = flag.Bool("resize", false, "run the elastic-membership (drain/remove/join) equivalence sweep")
		member    = flag.Int("member", 1, "resize: member slot to drain and rejoin (Split: to fail and rebuild)")
		flightOut = flag.String("flight", "", "attach the flight recorder; dump its rings as a Chrome trace to this file if the run goes red")
		ringFlush = flag.Int("ringflush", 0, "run ring-eviction ORAM engines with this deferred-flush interval A (0 = Path ORAM; Independent campaigns and -crash only)")
	)
	flag.Parse()

	// The flight recorder and obliviousness witness ride along on every
	// campaign mode. The recorder's rings are only written out when a run
	// fails; the witness checks frame-shape and traffic-balance invariants
	// online and its violation count feeds the exit code.
	var fr *flight.Recorder
	if *flightOut != "" {
		fr = flight.New(*sdimms, 1024)
	}

	if *resize {
		var wit *witness.Monitor
		if !*split {
			wit = witness.New(witness.Options{Members: *sdimms})
		}
		res, err := chaos.RunResize(chaos.ResizeConfig{
			SDIMMs:      *sdimms,
			Levels:      *levels,
			Accesses:    *n,
			Addresses:   *addrs,
			Seed:        *seed,
			Crashes:     *crashes,
			Member:      *member,
			Parallelism: *parallel,
			Batch:       *batch,
			Dir:         *stateDir,
			Interval:    *interval,
			Split:       *split,
			Witness:     wit,
			Flight:      fr,
			FlightPath:  *flightOut,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdimm-chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res)
		reportFlight(res.FlightDump)
		if !res.Equivalent() || res.WitnessViolations > 0 {
			fmt.Println("RESULT: FAIL — rebalance diverged from the uncrashed reference")
			os.Exit(1)
		}
		fmt.Println("RESULT: PASS — rebalance crash-consistent and shape-invariant")
		return
	}

	if *crash {
		res, err := chaos.RunCrash(chaos.CrashConfig{
			SDIMMs:            *sdimms,
			Levels:            *levels,
			RingFlushInterval: *ringFlush,
			Accesses:          *n,
			Addresses:         *addrs,
			Seed:              *seed,
			Crashes:           *crashes,
			Parallelism:       *parallel,
			Batch:             *batch,
			Dir:               *stateDir,
			Interval:          *interval,
			Corrupt:           *corrupt,
			Split:             *split,
			Flight:            fr,
			FlightPath:        *flightOut,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdimm-chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res)
		reportFlight(res.FlightDump)
		if !res.Equivalent() {
			fmt.Println("RESULT: FAIL — recovered cluster diverged from the uncrashed reference")
			os.Exit(1)
		}
		fmt.Println("RESULT: PASS — every restart recovered bitwise-equivalent")
		return
	}

	reg := telemetry.NewRegistry()
	var tr *telemetry.Tracer
	if *traceOut != "" {
		tr = telemetry.NewTracer(nil)
	}

	if *split {
		res, err := chaos.RunSplit(chaos.SplitConfig{
			SDIMMs:      *sdimms,
			Levels:      *levels,
			Accesses:    *n,
			Addresses:   *addrs,
			Seed:        *seed,
			Parity:      true,
			FailShardAt: failAt(*failShard, *n),
			FailShard:   *failShard,
			Parallelism: *parallel,
			Telemetry:   reg,
			Tracer:      tr,
		})
		finish(tr, *traceOut)
		report(res, err, *snapshot)
		return
	}

	// Spread the requested rate across every fault class the injector
	// models, weighted toward the common ones.
	r := *rate
	wit := witness.New(witness.Options{Members: *sdimms, Registry: reg})
	res, err := chaos.Run(chaos.Config{
		SDIMMs:            *sdimms,
		Levels:            *levels,
		RingFlushInterval: *ringFlush,
		Accesses:          *n,
		Addresses:         *addrs,
		Seed:              *seed,
		Faults: fault.Config{
			Seed:       *seed ^ 0xfa417,
			BitFlip:    r * 0.30,
			Drop:       r * 0.25,
			Duplicate:  r * 0.15,
			Replay:     r * 0.10,
			Stall:      r * 0.12,
			MACCorrupt: r * 0.08,
		},
		Retry:        fault.RetryPolicy{MaxAttempts: *attempts},
		CheckTraffic: true,
		Parallelism:  *parallel,
		Batch:        *batch,
		Telemetry:    reg,
		Tracer:       tr,
		Witness:      wit,
		Flight:       fr,
		FlightPath:   *flightOut,
	})
	finish(tr, *traceOut)
	report(res, err, *snapshot)
}

// finish exports the span trace, if one was recorded.
func finish(tr *telemetry.Tracer, path string) {
	if tr == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = tr.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdimm-chaos: trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sdimm-chaos: wrote %d trace events to %s\n", tr.Len(), path)
}

// reportFlight points at the flight-recorder dump when a red run wrote one.
func reportFlight(path string) {
	if path != "" {
		fmt.Fprintf(os.Stderr, "sdimm-chaos: flight recorder dumped to %s\n", path)
	}
}

func failAt(shard, n int) int {
	if shard < 0 {
		return -1
	}
	return n / 3
}

func report(res chaos.Result, err error, snapshot bool) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdimm-chaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res)
	if snapshot && res.Snapshot != nil {
		fmt.Println("telemetry:")
		res.Snapshot.WriteText(os.Stdout, "cluster.", "fault.", "seccomm.", "witness.")
	}
	reportFlight(res.FlightDump)
	if res.WitnessViolations != 0 {
		fmt.Printf("RESULT: FAIL — obliviousness witness flagged %d link-invariant violations\n", res.WitnessViolations)
		os.Exit(1)
	}
	if res.Mismatches != 0 || res.TrafficViolations != 0 {
		fmt.Println("RESULT: FAIL — the recovery layer leaked or corrupted")
		os.Exit(1)
	}
	if res.Errors != 0 {
		fmt.Printf("RESULT: DEGRADED — %d accesses exhausted the retry budget\n", res.Errors)
		os.Exit(2)
	}
	fmt.Println("RESULT: PASS — all faults absorbed, traffic invariant held")
}
