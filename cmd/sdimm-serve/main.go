// sdimm-serve is the overload-robust multi-tenant serving front end: a TCP
// block server over a cluster's streaming pipeline, with tenant-oblivious
// admission control, per-request deadlines, slow-start backpressure, and
// graceful drain through the durable journal commit point.
//
// Modes:
//
//	sdimm-serve                          serve until SIGTERM (graceful) —
//	                                     a second signal hard-exits
//	sdimm-serve -state DIR               durable serving; restarts recover
//	                                     the journal automatically
//	sdimm-serve -smoke                   in-process serving smoke test (CI)
//	sdimm-serve -bench -bench-out F      overload benchmark → BENCH_serve.json
//
// The -http endpoint exposes the SLO dashboard: GET /slo (JSON snapshot),
// GET /witness (obliviousness verdict), GET /metrics (Prometheus), GET /
// (raw counters). See README, "Serving runbook".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sdimm"
	"sdimm/internal/rng"
	"sdimm/internal/serve"
	"sdimm/internal/witness"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7911", "TCP listen address")
		httpAddr  = flag.String("http", "", "telemetry/SLO HTTP address (empty = disabled)")
		sdimms    = flag.Int("sdimms", 4, "SDIMM count (power of two)")
		levels    = flag.Int("levels", 12, "global tree levels")
		blockSize = flag.Int("block", 128, "block payload bytes")
		window    = flag.Int("window", 8, "pipeline window")
		seed      = flag.Uint64("seed", 1, "cluster seed")
		state     = flag.String("state", "", "durable state directory (empty = in-memory)")
		interval  = flag.Int("interval", 256, "checkpoint interval (accesses)")
		deadline  = flag.Duration("deadline", 250*time.Millisecond, "default per-request deadline")
		flightDir = flag.String("flight-dir", "", "flight-recorder auto-dump directory")
		key       = flag.String("key", "sdimm-serve-key", "cluster master key")
		smoke     = flag.Bool("smoke", false, "run the in-process serving smoke test and exit")
		bench     = flag.Bool("bench", false, "run the overload benchmark and exit")
		benchOut  = flag.String("bench-out", "BENCH_serve.json", "benchmark report path")
	)
	flag.Parse()

	cfg := serve.Config{
		Cluster: sdimm.ClusterOptions{
			SDIMMs: *sdimms, Levels: *levels, BlockSize: *blockSize,
			Key: []byte(*key), Seed: *seed,
		},
		Pipeline:        sdimm.PipelineOptions{Window: *window},
		DefaultDeadline: *deadline,
		FlightDir:       *flightDir,
	}
	if *state != "" {
		cfg.Cluster.Durability = &sdimm.DurabilityOptions{Dir: *state, Interval: *interval}
	}

	switch {
	case *smoke:
		if err := runSmoke(cfg); err != nil {
			log.Fatalf("serve smoke: %v", err)
		}
	case *bench:
		if err := runBench(cfg, *benchOut); err != nil {
			log.Fatalf("serve bench: %v", err)
		}
	default:
		if err := runServe(cfg, *addr, *httpAddr); err != nil {
			log.Fatal(err)
		}
	}
}

// newOrRecover builds the server, recovering the state directory when it
// already holds checkpoints from a previous run.
func newOrRecover(cfg serve.Config) (*serve.Server, error) {
	s, err := serve.New(cfg)
	if err == nil {
		return s, nil
	}
	if !strings.Contains(err.Error(), "RecoverCluster") {
		return nil, err
	}
	s, report, err := serve.Recover(cfg)
	if err != nil {
		return nil, fmt.Errorf("recover %s: %w", cfg.Cluster.Durability.Dir, err)
	}
	log.Printf("recovered state from %s: %+v", cfg.Cluster.Durability.Dir, *report)
	return s, nil
}

func runServe(cfg serve.Config, addr, httpAddr string) error {
	s, err := newOrRecover(cfg)
	if err != nil {
		return err
	}
	bound, err := s.Start(addr)
	if err != nil {
		return err
	}
	log.Printf("serving on %s (window %d, deadline %s, queue limit %d)",
		bound, cfg.Pipeline.Window, cfg.DefaultDeadline, s.Admission().Limit())
	if httpAddr != "" {
		go func() {
			log.Printf("SLO dashboard on http://%s/slo", httpAddr)
			if err := http.ListenAndServe(httpAddr, s.HTTPHandler()); err != nil {
				log.Printf("http: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("%s: draining (second signal hard-exits)", got)
	go func() {
		<-sig
		log.Print("second signal: hard exit")
		os.Exit(2)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Print("drained cleanly")
	return nil
}

// runSmoke is the CI smoke leg: two tenants against an in-process server,
// then a graceful drain. Fails on any SLO breach.
func runSmoke(cfg serve.Config) error {
	s, err := newOrRecover(cfg)
	if err != nil {
		return err
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	for _, tenant := range []string{"alpha", "beta"} {
		rep, err := serve.RunLoad(serve.LoadOptions{
			Addr: addr, Tenant: tenant, Workers: 4, Ops: 200,
			Space: 64, DeadlineMS: 2000, Seed: 7,
		})
		if err != nil {
			return fmt.Errorf("%s load: %w", tenant, err)
		}
		if rep.OK == 0 || rep.Errors != 0 {
			return fmt.Errorf("%s: %+v", tenant, rep)
		}
	}
	slo := s.SLO()
	if err := s.Shutdown(context.Background()); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if slo.AcceptedDeadlineMissed != 0 {
		return fmt.Errorf("%d accepted deadline misses", slo.AcceptedDeadlineMissed)
	}
	if !slo.Witness.OK {
		return fmt.Errorf("witness red: %+v", slo.Witness)
	}
	fmt.Printf("serve smoke ok: %d ops, p99 %dus, witness green (%d frames)\n",
		slo.OK, slo.LatencyP99US, slo.Witness.Frames)
	return nil
}

// benchReport is BENCH_serve.json: the saturation and 2× overload probes,
// the SLO outcome, and the crash-recovery equivalence leg.
type benchReport struct {
	SaturationWorkers int              `json:"saturation_workers"`
	Saturation        serve.LoadReport `json:"saturation"`
	OverloadWorkers   int              `json:"overload_workers"`
	Overload          serve.LoadReport `json:"overload"`
	GoodputRatio      float64          `json:"goodput_ratio"`
	AcceptedDMissed   uint64           `json:"accepted_deadline_missed"`
	Witness           witness.Verdict  `json:"witness"`
	CrashEqual        bool             `json:"crash_recovery_equal"`
	Gates             map[string]bool  `json:"gates"`
	Pass              bool             `json:"pass"`
}

func runBench(cfg serve.Config, out string) error {
	// Throughput legs run non-durable (journal fsync noise is a different
	// benchmark); the crash leg below is durable by construction.
	cfg.Cluster.Durability = nil
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return err
	}

	rep := benchReport{Gates: map[string]bool{}}
	satWorkers := 2 * cfg.Pipeline.Window
	if satWorkers <= 0 {
		satWorkers = 16
	}
	warm, err := serve.RunLoad(serve.LoadOptions{
		Addr: addr, Tenant: "warmup", Workers: satWorkers, Ops: 1000,
		Space: 256, DeadlineMS: 5000, Seed: 3,
	})
	if err != nil {
		return fmt.Errorf("warmup: %w (%+v)", err, warm)
	}
	rep.SaturationWorkers = satWorkers
	rep.Saturation, err = serve.RunLoad(serve.LoadOptions{
		Addr: addr, Tenant: "sat", Workers: satWorkers, Ops: 4000,
		Space: 256, DeadlineMS: 5000, Seed: 5,
	})
	if err != nil {
		return fmt.Errorf("saturation: %w", err)
	}
	rep.OverloadWorkers = 2 * satWorkers
	rep.Overload, err = serve.RunLoad(serve.LoadOptions{
		Addr: addr, Tenant: "over", Workers: 2 * satWorkers, Ops: 8000,
		Space: 256, DeadlineMS: 5000, Seed: 6,
	})
	if err != nil {
		return fmt.Errorf("overload: %w", err)
	}
	slo := s.SLO()
	rep.AcceptedDMissed = slo.AcceptedDeadlineMissed
	rep.Witness = slo.Witness
	if err := s.Shutdown(context.Background()); err != nil {
		return fmt.Errorf("drain: %w", err)
	}

	if rep.Saturation.GoodputPerSec > 0 {
		rep.GoodputRatio = rep.Overload.GoodputPerSec / rep.Saturation.GoodputPerSec
	}
	crashEqual, err := crashEquivalence(cfg)
	if err != nil {
		return fmt.Errorf("crash leg: %w", err)
	}
	rep.CrashEqual = crashEqual

	rep.Gates["goodput_within_10pct_of_saturation"] = rep.GoodputRatio >= 0.9
	rep.Gates["zero_accepted_deadline_missed"] = rep.AcceptedDMissed == 0
	rep.Gates["witness_green_under_overload"] = rep.Witness.OK && rep.Witness.Frames > 0
	rep.Gates["crash_recovery_bitwise_equal"] = rep.CrashEqual
	rep.Pass = true
	for _, ok := range rep.Gates {
		rep.Pass = rep.Pass && ok
	}

	if err := writeJSONAtomic(out, rep); err != nil {
		return err
	}
	fmt.Printf("serve bench: saturation %.0f ops/s (%d workers), overload %.0f ops/s (%d workers), ratio %.2f\n",
		rep.Saturation.GoodputPerSec, satWorkers, rep.Overload.GoodputPerSec, 2*satWorkers, rep.GoodputRatio)
	fmt.Printf("gates: %v -> %s\n", rep.Gates, map[bool]string{true: "PASS", false: "FAIL"}[rep.Pass])
	if !rep.Pass {
		return fmt.Errorf("gates failed (see %s)", out)
	}
	return nil
}

// crashEquivalence drives a durable in-process server into a planned
// mid-wave crash, recovers the state directory, and compares the recovered
// cluster bitwise against a fresh reference replaying the committed prefix
// sequentially.
func crashEquivalence(cfg serve.Config) (bool, error) {
	dir, err := os.MkdirTemp("", "sdimm-serve-crash-*")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)
	cfg.Cluster.Durability = &sdimm.DurabilityOptions{Dir: dir, Interval: 32}

	s, err := serve.New(cfg)
	if err != nil {
		return false, err
	}
	if err := s.Cluster().PlanCrash(60, 5); err != nil {
		return false, err
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return false, err
	}
	cl, err := serve.Dial(addr, "crash")
	if err != nil {
		return false, err
	}

	r := rng.Stream(cfg.Cluster.Seed, "serve-bench-crash", 0)
	type op struct {
		addr  uint64
		write bool
		data  string
	}
	ops := make([]op, 400)
	for i := range ops {
		ops[i] = op{addr: r.Uint64n(48), write: r.Bool(0.6)}
		if ops[i].write {
			ops[i].data = fmt.Sprintf("bench-crash-%04d", i)
		}
	}
	crashed := false
	for _, o := range ops {
		req := serve.Request{Addr: o.addr, Write: o.write}
		if o.write {
			req.Data = []byte(o.data)
		}
		resp, err := cl.Do(req)
		if err != nil {
			return false, err
		}
		if resp.Status == serve.StatusError {
			crashed = true
			break
		}
	}
	cl.Close()
	s.Shutdown(context.Background()) // backend crashed: drain error expected
	if !crashed {
		return false, fmt.Errorf("planned crash never tripped")
	}

	rc, _, err := sdimm.RecoverCluster(cfg.Cluster)
	if err != nil {
		return false, err
	}
	defer rc.Close()
	n := rc.WorkloadSeq()
	refOpts := cfg.Cluster
	refOpts.Durability = nil
	ref, err := sdimm.NewCluster(refOpts)
	if err != nil {
		return false, err
	}
	defer ref.Close()
	for _, o := range ops[:n] {
		if o.write {
			if err := ref.Write(o.addr, []byte(o.data)); err != nil {
				return false, err
			}
		} else if _, err := ref.Read(o.addr); err != nil {
			return false, err
		}
	}
	gotPos, wantPos := rc.Positions(), ref.Positions()
	if len(gotPos) != len(wantPos) {
		return false, nil
	}
	for a, leaf := range wantPos {
		if gotPos[a] != leaf {
			return false, nil
		}
	}
	for a := uint64(0); a < 48; a++ {
		got, err := rc.Read(a)
		if err != nil {
			return false, err
		}
		want, err := ref.Read(a)
		if err != nil {
			return false, err
		}
		if string(got) != string(want) {
			return false, nil
		}
	}
	return true, nil
}

// writeJSONAtomic publishes v as indented JSON via temp file + rename, the
// same discipline as the other BENCH_*.json writers.
func writeJSONAtomic(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
