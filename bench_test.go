// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each benchmark runs the corresponding experiment at a reduced scale
// (subset of workloads, smaller windows) and reports the headline numbers
// as custom metrics; cmd/sdimm-bench runs the same drivers at full scale.
//
// Paper-vs-measured values for every figure are recorded in EXPERIMENTS.md.
package sdimm

import (
	"fmt"
	"testing"

	"sdimm/internal/config"
	"sdimm/internal/experiments"
	"sdimm/internal/queueing"
	"sdimm/internal/sim"
)

// benchOptions scales the experiments for benchmarking.
func benchOptions() experiments.Options {
	return experiments.Options{
		Warmup:    200,
		Measure:   400,
		Levels:    24,
		Seed:      1,
		Workloads: []string{"milc", "gromacs", "GemsFDTD"},
	}
}

func BenchmarkFig6_FreecursiveSlowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.ColGeoMean("slowdown-1ch"), "slowdown-1ch")
		b.ReportMetric(t.ColGeoMean("slowdown-2ch"), "slowdown-2ch")
		b.ReportMetric(t.ColGeoMean("accessORAM/miss"), "accessORAM/miss")
	}
}

func BenchmarkFig8_SingleChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.ColGeoMean("independent"), "indep2-normtime")
		b.ReportMetric(t.ColGeoMean("split"), "split2-normtime")
	}
}

func BenchmarkFig9_DoubleChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.ColGeoMean("independent"), "indep4-normtime")
		b.ReportMetric(t.ColGeoMean("split"), "split4-normtime")
		b.ReportMetric(t.ColGeoMean("indep-split"), "indepsplit-normtime")
	}
}

func BenchmarkFig10_Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig10(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		fc1 := t.ColGeoMean("freecursive-1ch")
		sp1 := t.ColGeoMean("split2-1ch")
		fc2 := t.ColGeoMean("freecursive-2ch")
		is2 := t.ColGeoMean("indep-split-2ch")
		b.ReportMetric(fc1/sp1, "energy-gain-1ch")
		b.ReportMetric(fc2/is2, "energy-gain-2ch")
	}
}

func BenchmarkFig11_LayerSweep(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"milc"}
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig11(o, []int{20, 24, 28})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.ColGeoMean("L20"), "normtime-L20")
		b.ReportMetric(t.ColGeoMean("L28"), "normtime-L28")
		b.ReportMetric(t.ColGeoMean("L28-nc"), "normtime-L28-nocache")
	}
}

func BenchmarkFig13a_RandomWalk(b *testing.B) {
	w := queueing.DefaultWalk()
	for i := 0; i < b.N; i++ {
		p16, err := w.OverflowProbability(100_000, 16)
		if err != nil {
			b.Fatal(err)
		}
		p1024, err := w.OverflowProbability(800_000, 1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p16, "P(>16)@100K")
		b.ReportMetric(p1024, "P(>1024)@800K")
	}
}

func BenchmarkFig13b_MM1K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig13b(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Report the paper's point: p = 0.25 with a small queue is safe.
		v, err := queueing.MM1KFullProbability(0.25, 16)
		if err != nil {
			b.Fatal(err)
		}
		_ = series
		b.ReportMetric(v, "P(full)p=.25,K=16")
	}
}

func BenchmarkOffDIMM_Traffic(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"milc"}
	for i := 0; i < b.N; i++ {
		t, err := experiments.OffDIMM(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.ColGeoMean("indep-2"), "offdimm-frac-indep2")
		b.ReportMetric(t.ColGeoMean("split-2"), "offdimm-frac-split2")
		b.ReportMetric(t.ColGeoMean("indep-4"), "offdimm-frac-indep4")
	}
}

func BenchmarkLatency_Reduction(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"GemsFDTD"}
	for i := 0; i < b.N; i++ {
		t, err := experiments.Latency(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.ColGeoMean("split-4"), "latency-ratio-split4")
		b.ReportMetric(t.ColGeoMean("indep-split"), "latency-ratio-indepsplit")
	}
}

func BenchmarkLowPower_PerfDrop(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"milc"}
	for i := 0; i < b.N; i++ {
		t, err := experiments.LowPower(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.ColGeoMean("time-ratio"), "lowpower-time-ratio")
		b.ReportMetric(t.ColGeoMean("bg-energy-ratio"), "lowpower-bg-ratio")
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblation_PLB(b *testing.B) {
	for _, plbKB := range []int{8, 64, 512} {
		plbKB := plbKB
		b.Run(size(plbKB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default(config.Freecursive, 1)
				cfg.ORAM.Levels = 24
				cfg.ORAM.PLBBytes = plbKB << 10
				cfg.WarmupAccesses = 200
				cfg.MeasureAccesses = 400
				res, err := sim.Run(cfg, "milc")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AccessesPerMiss, "accessORAM/miss")
				b.ReportMetric(res.CyclesPerMiss(), "cycles/miss")
			}
		})
	}
}

func BenchmarkAblation_ORAMCacheDepth(b *testing.B) {
	for _, cached := range []int{0, 4, 7} {
		cached := cached
		b.Run(size(cached), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default(config.Freecursive, 1)
				cfg.ORAM.Levels = 24
				cfg.ORAM.CachedLevels = cached
				cfg.WarmupAccesses = 200
				cfg.MeasureAccesses = 400
				res, err := sim.Run(cfg, "milc")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.CyclesPerMiss(), "cycles/miss")
			}
		})
	}
}

func BenchmarkAblation_Layout(b *testing.B) {
	// Subtree packing vs naive single-level "packing" (subtree height 1):
	// the row-buffer locality of the packed layout shows up as fewer
	// activates per access and lower cycles per miss.
	for _, subtree := range []int{1, 4} {
		subtree := subtree
		b.Run(size(subtree), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default(config.Freecursive, 1)
				cfg.ORAM.Levels = 24
				cfg.ORAM.SubtreeLevels = subtree
				cfg.WarmupAccesses = 200
				cfg.MeasureAccesses = 400
				res, err := sim.Run(cfg, "milc")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.CyclesPerMiss(), "cycles/miss")
			}
		})
	}
}

func BenchmarkAblation_DrainProbability(b *testing.B) {
	for _, p := range []float64{0.05, 0.25, 0.75} {
		p := p
		b.Run(prob(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default(config.Independent, 1)
				cfg.ORAM.Levels = 24
				cfg.ORAM.DrainProb = p
				cfg.WarmupAccesses = 200
				cfg.MeasureAccesses = 400
				res, err := sim.Run(cfg, "milc")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.CyclesPerMiss(), "cycles/miss")
				b.ReportMetric(float64(res.Backend.ExtraDrains), "extra-drains")
			}
		})
	}
}

func size(n int) string { return "n=" + itoa(n) }

func prob(p float64) string {
	switch {
	case p < 0.1:
		return "p=low"
	case p < 0.5:
		return "p=mid"
	default:
		return "p=high"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkClusterAccess drives the batched access pipeline over an
// 8-SDIMM Independent cluster at increasing worker counts. The work per
// access is identical at every parallelism (results are bit-identical by
// construction), so accesses/sec isolates the fan-out overhead and — on
// multi-core hosts — the speedup. cmd/sdimm-bench -exp parbench runs the
// same loop and writes BENCH_parallel.json with the speedup gate.
func BenchmarkClusterAccess(b *testing.B) {
	for _, par := range []int{1, 2, 4, 8} {
		par := par
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			c, err := NewCluster(ClusterOptions{SDIMMs: 8, Levels: 12, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			pipe := c.Pipeline(PipelineOptions{Window: 8, Parallelism: par})
			defer pipe.Close()
			ops := make([]BatchOp, 64)
			payload := make([]byte, 64)
			for i := range ops {
				ops[i] = BatchOp{Addr: uint64(i), Write: i%2 == 0, Data: payload}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range pipe.Do(ops) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*len(ops))/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}

// BenchmarkCoTenant evaluates the co-residency claim of Section III-A: a
// non-secure VM's memory latency while sharing with a secure tenant,
// normalized to running alone.
func BenchmarkCoTenant(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"milc"}
	for i := 0; i < b.N; i++ {
		t, err := experiments.CoTenant(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.ColGeoMean("with-freecursive"), "tenant-lat-x-freecursive")
		b.ReportMetric(t.ColGeoMean("with-indep-sdimm"), "tenant-lat-x-sdimm")
	}
}

// BenchmarkOverflow_InVivo reports the empirical stash/transfer-queue
// maxima of the Independent protocol (the Section IV-C models, measured).
func BenchmarkOverflow_InVivo(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"milc"}
	for i := 0; i < b.N; i++ {
		t, err := experiments.Overflow(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.ColGeoMean("stash-peak"), "stash-peak")
		b.ReportMetric(t.ColGeoMean("transfer-peak"), "transfer-peak")
	}
}

// BenchmarkAblation_DDR4 swaps the DDR3-1600 channel for DDR4-2400 (the
// paper's footnote-1 scenario) and reports the baseline cost per miss.
func BenchmarkAblation_DDR4(b *testing.B) {
	for _, gen := range []string{"ddr3", "ddr4"} {
		gen := gen
		b.Run(gen, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default(config.Freecursive, 1)
				cfg.ORAM.Levels = 24
				if gen == "ddr4" {
					cfg.Timing = config.DDR42400()
				}
				cfg.WarmupAccesses = 200
				cfg.MeasureAccesses = 400
				res, err := sim.Run(cfg, "milc")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.CyclesPerMiss(), "cycles/miss")
			}
		})
	}
}
