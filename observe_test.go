package sdimm

import (
	"bytes"
	"testing"

	"sdimm/internal/blame"
	"sdimm/internal/flight"
	"sdimm/internal/telemetry"
)

// TestPipelineWavePhaseTiling is the blame profiler's core contract on the
// real pipeline: at parallelism 4 every recorded wave's phase intervals are
// contiguous and tile the wave's wall-clock exactly — no unattributed gap,
// no overlap. Runs under -race in CI: the coordinator marks boundaries while
// workers stamp busy spans into their own member slots.
func TestPipelineWavePhaseTiling(t *testing.T) {
	col := blame.NewCollector(4, 128)
	c, err := NewCluster(ClusterOptions{SDIMMs: 4, Levels: 10, Seed: 42, Blame: col})
	if err != nil {
		t.Fatal(err)
	}
	pipe := c.Pipeline(PipelineOptions{Window: 8, Parallelism: 4})
	defer pipe.Close()

	ops := make([]BatchOp, 32)
	payload := make([]byte, 64)
	for i := range ops {
		ops[i] = BatchOp{Addr: uint64(i), Write: i%2 == 0, Data: payload}
	}
	for b := 0; b < 6; b++ {
		for _, r := range pipe.Do(ops) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}

	recs := col.Recent()
	if len(recs) == 0 {
		t.Fatal("pipeline recorded no waves")
	}
	var totalOps int
	for _, rec := range recs {
		var sum uint64
		for p := blame.Phase(0); p < blame.Phase(blame.NumPhases()); p++ {
			sum += rec.PhaseDur(p)
		}
		if sum != rec.Wall() {
			t.Fatalf("wave %d: phase intervals sum to %dns, wall is %dns — tiling broken: %+v",
				rec.Index, sum, rec.Wall(), rec)
		}
		// Boundaries are monotone: no interval may run backwards.
		for i := 0; i < blame.NumPhases(); i++ {
			if rec.Bounds[i+1] < rec.Bounds[i] {
				t.Fatalf("wave %d: bounds not monotone: %v", rec.Index, rec.Bounds)
			}
		}
		// Worker busy time inside a fan-out never exceeds members × interval.
		for _, p := range []blame.Phase{blame.PhaseAccessFanout, blame.PhaseAppendFanout} {
			if rec.BusySum[p] > 4*rec.PhaseDur(p) {
				t.Fatalf("wave %d: %s busy %dns > 4 workers x %dns interval",
					rec.Index, p, rec.BusySum[p], rec.PhaseDur(p))
			}
			if rec.MaxBusy[p] > rec.PhaseDur(p) {
				t.Fatalf("wave %d: %s max busy %dns exceeds the interval %dns",
					rec.Index, p, rec.MaxBusy[p], rec.PhaseDur(p))
			}
		}
		totalOps += rec.Ops
	}
	if totalOps != 6*32 {
		t.Fatalf("waves account for %d ops, want %d", totalOps, 6*32)
	}

	rep := col.Report()
	if rep.AttributionRatio != 1.0 {
		t.Fatalf("AttributionRatio = %v, want exactly 1.0 (contiguous construction)", rep.AttributionRatio)
	}
	if len(rep.Ledger) == 0 || rep.TopBottleneck == "" {
		t.Fatalf("empty serialization ledger: %+v", rep)
	}
	// The fan-out phases saw real worker activity.
	for _, ps := range rep.Phases {
		if !ps.Coordinator && ps.TotalNS > 0 && ps.WorkerBusyNS == 0 {
			t.Fatalf("fan-out phase %s has wall time but no worker busy time", ps.Phase)
		}
	}
}

// TestBlameEquivalence: attaching a blame collector and a flight recorder
// must not change a single access result — the observability layer draws no
// randomness and feeds nothing back.
func TestBlameEquivalence(t *testing.T) {
	run := func(col *blame.Collector, fr *flight.Recorder) []byte {
		c, err := NewCluster(ClusterOptions{SDIMMs: 4, Levels: 10, Seed: 7, Blame: col, Flight: fr})
		if err != nil {
			t.Fatal(err)
		}
		pipe := c.Pipeline(PipelineOptions{Window: 4, Parallelism: 2})
		defer pipe.Close()
		var out []byte
		ops := make([]BatchOp, 16)
		for i := range ops {
			ops[i] = BatchOp{Addr: uint64(i % 24), Write: i%3 == 0, Data: bytes.Repeat([]byte{byte(i)}, 64)}
		}
		for b := 0; b < 4; b++ {
			for _, r := range pipe.Do(ops) {
				if r.Err != nil {
					t.Fatal(r.Err)
				}
				out = append(out, r.Data...)
			}
		}
		return out
	}
	bare := run(nil, nil)
	instrumented := run(blame.NewCollector(4, 64), flight.New(4, 256))
	if !bytes.Equal(bare, instrumented) {
		t.Fatal("observability instrumentation changed access results")
	}
}

// TestClusterFlightRecords: a sequential (non-pipeline) cluster with a
// recorder attached stamps health transitions and link retries into the
// owning member's ring, and checkpoints into the coordinator's.
func TestClusterFlightRecords(t *testing.T) {
	fr := flight.New(2, 64)
	c, err := NewCluster(ClusterOptions{SDIMMs: 2, Levels: 8, Seed: 1, Flight: fr})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	for i := 0; i < 20; i++ {
		if err := c.Write(uint64(i), data); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Read(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Dump the rings; whatever was recorded must form a valid trace.
	var buf bytes.Buffer
	if err := fr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("cluster flight dump invalid: %v", err)
	}
}
