package sdimm

import (
	"bytes"
	"runtime"
	"testing"

	"sdimm/internal/blame"
	"sdimm/internal/flight"
	"sdimm/internal/telemetry"
)

// TestPipelineWavePhaseTiling is the blame profiler's core contract on the
// real pipeline: at parallelism 4 every recorded iteration's phase intervals
// are contiguous and tile its wall-clock exactly — no unattributed gap, no
// overlap — and the measured all-idle time inside a phase never exceeds the
// phase's own interval. Runs under -race in CI: the coordinator marks
// boundaries while workers stamp busy spans through the collector's idle
// meter.
func TestPipelineWavePhaseTiling(t *testing.T) {
	col := blame.NewCollector(4, 128)
	c, err := NewCluster(ClusterOptions{SDIMMs: 4, Levels: 10, Seed: 42, Blame: col})
	if err != nil {
		t.Fatal(err)
	}
	pipe := c.Pipeline(PipelineOptions{Window: 8, Parallelism: 4})
	defer pipe.Close()

	ops := make([]BatchOp, 32)
	payload := make([]byte, 64)
	for i := range ops {
		ops[i] = BatchOp{Addr: uint64(i), Write: i%2 == 0, Data: payload}
	}
	for b := 0; b < 6; b++ {
		for _, r := range pipe.Do(ops) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}

	recs := col.Recent()
	if len(recs) == 0 {
		t.Fatal("pipeline recorded no waves")
	}
	var totalOps int
	for _, rec := range recs {
		var sum uint64
		for p := blame.Phase(0); p < blame.Phase(blame.NumPhases()); p++ {
			sum += rec.PhaseDur(p)
		}
		if sum != rec.Wall() {
			t.Fatalf("wave %d: phase intervals sum to %dns, wall is %dns — tiling broken: %+v",
				rec.Index, sum, rec.Wall(), rec)
		}
		// Boundaries are monotone: no interval may run backwards.
		for i := 0; i < blame.NumPhases(); i++ {
			if rec.Bounds[i+1] < rec.Bounds[i] {
				t.Fatalf("wave %d: bounds not monotone: %v", rec.Index, rec.Bounds)
			}
		}
		// Serialized (all-workers-idle) time within a phase is bounded by the
		// phase interval itself.
		for p := blame.Phase(0); p < blame.Phase(blame.NumPhases()); p++ {
			if rec.IdleNS[p] > rec.PhaseDur(p) {
				t.Fatalf("wave %d: %s idle %dns exceeds interval %dns",
					rec.Index, p, rec.IdleNS[p], rec.PhaseDur(p))
			}
		}
		totalOps += rec.Ops
	}
	if totalOps != 6*32 {
		t.Fatalf("waves account for %d ops, want %d", totalOps, 6*32)
	}

	rep := col.Report()
	if rep.AttributionRatio != 1.0 {
		t.Fatalf("AttributionRatio = %v, want exactly 1.0 (contiguous construction)", rep.AttributionRatio)
	}
	if len(rep.Ledger) == 0 || rep.TopBottleneck == "" {
		t.Fatalf("empty serialization ledger: %+v", rep)
	}
	if rep.SerializedNS > rep.WallNS {
		t.Fatalf("serialized %dns exceeds wall %dns", rep.SerializedNS, rep.WallNS)
	}
	// The exchanges ran somewhere: worker busy time must be nonzero.
	if rep.AccessBusyNS == 0 || rep.AppendBusyNS == 0 {
		t.Fatalf("no worker busy time recorded: access %dns append %dns",
			rep.AccessBusyNS, rep.AppendBusyNS)
	}
}

// TestPipelineBlameRegression is the decoupling regression gate: on a
// multicore host, a parallelism-4 pipeline run must not have any single
// phase contributing 25% or more of wall-clock as all-workers-idle
// (serialized) time. Before the overlapped pipeline, the journal append and
// commit walk alone sat well above this line.
func TestPipelineBlameRegression(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need 4 CPUs for a meaningful serialization share, have %d", runtime.GOMAXPROCS(0))
	}
	col := blame.NewCollector(4, 4096)
	dir := t.TempDir()
	c, err := NewCluster(ClusterOptions{
		SDIMMs: 4, Levels: 12, Seed: 1217, Blame: col,
		Durability: &DurabilityOptions{Dir: dir, Interval: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pipe := c.Pipeline(PipelineOptions{Window: 8, Parallelism: 4})
	defer pipe.Close()

	payload := make([]byte, 64)
	ops := make([]BatchOp, 256)
	for i := range ops {
		ops[i] = BatchOp{Addr: uint64((i * 17) % 1024), Write: i%2 == 0, Data: payload}
	}
	for b := 0; b < 8; b++ {
		for _, r := range pipe.Do(ops) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}

	rep := col.Report()
	if len(rep.Ledger) == 0 {
		t.Fatal("empty serialization ledger")
	}
	if top := rep.Ledger[0]; top.Share >= 0.25 {
		t.Fatalf("phase %q holds %.1f%% of wall-clock fully serialized (budget <25%%); ledger: %+v",
			top.Phase, 100*top.Share, rep.Ledger)
	}
}

// TestBlameEquivalence: attaching a blame collector and a flight recorder
// must not change a single access result — the observability layer draws no
// randomness and feeds nothing back.
func TestBlameEquivalence(t *testing.T) {
	run := func(col *blame.Collector, fr *flight.Recorder) []byte {
		c, err := NewCluster(ClusterOptions{SDIMMs: 4, Levels: 10, Seed: 7, Blame: col, Flight: fr})
		if err != nil {
			t.Fatal(err)
		}
		pipe := c.Pipeline(PipelineOptions{Window: 4, Parallelism: 2})
		defer pipe.Close()
		var out []byte
		ops := make([]BatchOp, 16)
		for i := range ops {
			ops[i] = BatchOp{Addr: uint64(i % 24), Write: i%3 == 0, Data: bytes.Repeat([]byte{byte(i)}, 64)}
		}
		for b := 0; b < 4; b++ {
			for _, r := range pipe.Do(ops) {
				if r.Err != nil {
					t.Fatal(r.Err)
				}
				out = append(out, r.Data...)
			}
		}
		return out
	}
	bare := run(nil, nil)
	instrumented := run(blame.NewCollector(4, 64), flight.New(4, 256))
	if !bytes.Equal(bare, instrumented) {
		t.Fatal("observability instrumentation changed access results")
	}
}

// TestClusterFlightRecords: a sequential (non-pipeline) cluster with a
// recorder attached stamps health transitions and link retries into the
// owning member's ring, and checkpoints into the coordinator's.
func TestClusterFlightRecords(t *testing.T) {
	fr := flight.New(2, 64)
	c, err := NewCluster(ClusterOptions{SDIMMs: 2, Levels: 8, Seed: 1, Flight: fr})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	for i := 0; i < 20; i++ {
		if err := c.Write(uint64(i), data); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Read(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Dump the rings; whatever was recorded must form a valid trace.
	var buf bytes.Buffer
	if err := fr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("cluster flight dump invalid: %v", err)
	}
}
