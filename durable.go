package sdimm

import (
	"errors"
	"fmt"
	"sort"

	"sdimm/internal/durable"
	"sdimm/internal/fault"
	"sdimm/internal/flight"
	"sdimm/internal/oram"
	isdimm "sdimm/internal/sdimm"
)

// This file wires crash consistency (internal/durable) into both cluster
// flavours: journaling at the commit point, periodic checkpoints, and the
// recovery sequence restore → scrub → replay → probation. See DESIGN.md,
// "Durability & crash recovery", for the invariants.

// ErrUnrecoverable marks a block whose payload was lost to on-disk
// corruption that no redundancy could repair. Reads of such a block fail
// with this error (never silently return zeros); a successful write heals
// the address.
var ErrUnrecoverable = errors.New("sdimm: block lost to unrecoverable corruption")

// DurabilityOptions configures a cluster's crash consistency.
type DurabilityOptions struct {
	// Dir is the state directory (checkpoints + journal). One directory
	// belongs to one cluster shape; recovery refuses mismatches.
	Dir string
	// Key authenticates every durable file (HMAC). Empty derives a key from
	// the cluster key — fine for simulation, but state then shares trust
	// with the bucket keys.
	Key []byte
	// Interval is the checkpoint cadence in committed accesses (default
	// 256). Recovery replays at most this many journal records.
	Interval int
	// Sync fsyncs every commit. Off by default: the chaos harness simulates
	// crashes by tearing the journal itself, and seeded sweeps stay fast.
	Sync bool
}

func (o *DurabilityOptions) withDefaults(clusterKey []byte) DurabilityOptions {
	d := *o
	if len(d.Key) == 0 {
		d.Key = append([]byte("durable|"), clusterKey...)
	}
	if d.Interval <= 0 {
		d.Interval = 256
	}
	return d
}

// independentFingerprint pins an Independent cluster's shape. opts must be
// defaulted. Ring-eviction clusters get their own kind (including the flush
// interval): their engines hold extra durable state (eviction pointer,
// dead-slot masks) that a path-mode recovery could not interpret.
func independentFingerprint(opts ClusterOptions) durable.Fingerprint {
	kind := "independent"
	if opts.RingFlushInterval > 0 {
		kind = fmt.Sprintf("independent-ring%d", opts.RingFlushInterval)
	}
	return durable.Fingerprint{
		Kind:      kind,
		Members:   opts.SDIMMs,
		Levels:    opts.Levels,
		BlockSize: opts.BlockSize,
		Z:         opts.Z,
		Seed:      opts.Seed,
	}
}

// splitFingerprint pins a Split cluster's shape. opts must be defaulted.
func splitFingerprint(opts SplitClusterOptions) durable.Fingerprint {
	return durable.Fingerprint{
		Kind:      "split",
		Members:   opts.SDIMMs,
		Levels:    opts.Levels,
		BlockSize: opts.BlockSize,
		Z:         4,
		Seed:      opts.Seed,
		Parity:    opts.Parity,
	}
}

// durableState is the durability bookkeeping embedded in both cluster
// flavours. seq counts committed logical records of every kind (workload
// accesses, migration steps, topology changes); poisoned tracks addresses
// lost to unrecoverable corruption (always allocated, usually empty).
type durableState struct {
	dur        *durable.Manager
	interval   int
	seq        uint64
	lastCkpt   uint64
	replaying  bool
	poisoned   map[uint64]bool
	recScratch [1]durable.Record // commitRecord's singleton batch

	// Elastic-membership bookkeeping. migSeq/topoSeq partition seq so
	// drivers can recover their workload position from durable state alone:
	// WorkloadSeq() = seq - migSeq - topoSeq. At most one drain runs at a
	// time; drainMember is -1 outside a drain. migrating flags the access
	// currently executing as a rebalance migration step (it journals as
	// KindMigrate instead of KindRead).
	migSeq       uint64
	topoSeq      uint64
	drainMember  int
	drainMoved   uint64
	migrating    bool
	incarnations []uint64 // per-slot join count (0 = founding member)
	detached     []bool   // slots whose member was removed, not yet replaced
}

// initElastic sets up the elastic-membership fields for members slots.
// Called by both cluster builders (the zero value of drainMember would
// otherwise mean "slot 0 is draining").
func (d *durableState) initElastic(members int) {
	d.drainMember = -1
	d.incarnations = make([]uint64, members)
	d.detached = make([]bool, members)
}

// Seq returns the number of committed logical records (workload accesses
// plus migration and topology records). With durability attached, every
// record with sequence number ≤ Seq survives a crash.
func (d *durableState) Seq() uint64 { return d.seq }

// WorkloadSeq returns the number of committed workload accesses — Seq
// minus the migration and topology records sharing the stream. Drivers use
// it to locate their position in an operation list after recovery.
func (d *durableState) WorkloadSeq() uint64 { return d.seq - d.migSeq - d.topoSeq }

// MigrationSeq returns the lifetime count of committed migration steps.
func (d *durableState) MigrationSeq() uint64 { return d.migSeq }

// Draining reports the member currently being drained (-1 if none) and how
// many migration steps have committed for that drain.
func (d *durableState) Draining() (member int, moved uint64) {
	return d.drainMember, d.drainMoved
}

// Incarnation returns how many times slot i has been (re)populated: 0 for
// the founding member, +1 per join.
func (d *durableState) Incarnation(i int) uint64 {
	if i < 0 || i >= len(d.incarnations) {
		return 0
	}
	return d.incarnations[i]
}

// Detached reports whether slot i's member was removed and not replaced.
func (d *durableState) Detached(i int) bool {
	return i >= 0 && i < len(d.detached) && d.detached[i]
}

// crashedNow reports whether a planned crash point has fired — the cluster
// is "dead" and refuses further work.
func (d *durableState) crashedNow() bool { return d.dur != nil && d.dur.Crashed() }

// attachDurability opens the state directory. Shared by construction and
// recovery.
func (d *durableState) attachDurability(opts *DurabilityOptions, fp durable.Fingerprint, clusterKey []byte) error {
	do := opts.withDefaults(clusterKey)
	m, err := durable.Open(do.Dir, do.Key, fp, fp.BlockSize, do.Sync)
	if err != nil {
		return err
	}
	d.dur = m
	d.interval = do.Interval
	return nil
}

// makeRecord advances the committed sequence for one access and returns its
// journal record. A committed write heals a poisoned address — the lost
// payload is fully overwritten. While migrating is set, reads journal as
// KindMigrate and advance the drain progress instead of the workload count.
func (d *durableState) makeRecord(addr uint64, op oram.Op, data []byte) durable.Record {
	d.seq++
	kind := durable.KindRead
	if op == oram.OpWrite {
		delete(d.poisoned, addr)
		kind = durable.KindWrite
	} else if d.migrating {
		kind = durable.KindMigrate
		d.migSeq++
		if d.drainMember >= 0 {
			d.drainMoved++
		}
	}
	return durable.Record{Seq: d.seq, Addr: addr, Kind: kind, Data: data}
}

// commitTopoRecord journals one topology change (drain begin/end, join) at
// its commit point. Topology records carry the member slot in Addr and no
// payload; they advance seq and topoSeq so WorkloadSeq stays the pure
// workload count. During replay the in-memory apply already happened, so
// only the counters advance.
func (d *durableState) commitTopoRecord(kind durable.RecordKind, member int) error {
	d.seq++
	d.topoSeq++
	if d.dur == nil || d.replaying {
		return nil
	}
	d.recScratch[0] = durable.Record{Seq: d.seq, Addr: uint64(member), Kind: kind}
	err := d.dur.Append(d.recScratch[:])
	d.recScratch[0] = durable.Record{}
	return err
}

// appendRecords journals a batch of records made by makeRecord. No-op
// without durability and during replay (replay re-executes history that is
// already on disk).
func (d *durableState) appendRecords(recs []durable.Record) error {
	if d.dur == nil || d.replaying || len(recs) == 0 {
		return nil
	}
	return d.dur.Append(recs)
}

// commitRecord journals one access at its commit point.
func (d *durableState) commitRecord(addr uint64, op oram.Op, data []byte) error {
	rec := d.makeRecord(addr, op, data)
	if d.dur == nil || d.replaying {
		return nil
	}
	// Singleton batch in place: the record is encoded synchronously, so the
	// scratch (and its payload reference) is dropped before return.
	d.recScratch[0] = rec
	err := d.dur.Append(d.recScratch[:])
	d.recScratch[0] = durable.Record{}
	return err
}

// checkpointDue reports that the checkpoint interval has elapsed. The
// pipeline polls it at wave boundaries to decide when to stall the schedule
// and drain for a quiescent capture; the sequential path checks it through
// maybeCheckpoint after every access.
func (d *durableState) checkpointDue() bool {
	return d.dur != nil && !d.replaying && d.seq-d.lastCkpt >= uint64(d.interval)
}

// maybeCheckpoint runs force when the checkpoint interval has elapsed.
func (d *durableState) maybeCheckpoint(force func() error) error {
	if !d.checkpointDue() {
		return nil
	}
	return force()
}

// PlanCrash arms a simulated crash after afterRecords more journal records,
// tearing the next record at tearBytes bytes (chaos harness hook).
func (d *durableState) PlanCrash(afterRecords, tearBytes int) error {
	if d.dur == nil {
		return errors.New("sdimm: PlanCrash without durability")
	}
	d.dur.PlanCrash(afterRecords, tearBytes)
	return nil
}

// capturePositions snapshots a position map sorted by address.
func capturePositions(pos oram.PositionMap) []durable.PosEntry {
	out := make([]durable.PosEntry, 0, pos.Len())
	pos.Each(func(a, l uint64) { out = append(out, durable.PosEntry{Addr: a, Value: l}) })
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// capturePoisoned snapshots the poison set sorted.
func capturePoisoned(p map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(p))
	for a := range p {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// captureBlocks converts engine/buffer blocks into checkpoint form.
func captureBlocks(blocks []oram.Block) []durable.BlockState {
	out := make([]durable.BlockState, len(blocks))
	for i, b := range blocks {
		out[i] = durable.BlockState{Addr: b.Addr, Leaf: b.Leaf, Data: b.Data}
	}
	return out
}

// restoreBlocks is captureBlocks' inverse.
func restoreBlocks(blocks []durable.BlockState) []oram.Block {
	out := make([]oram.Block, len(blocks))
	for i, b := range blocks {
		out[i] = oram.Block{Addr: b.Addr, Leaf: b.Leaf, Data: b.Data}
	}
	return out
}

// memStore unwraps a buffer's functional store.
func memStore(b *isdimm.Buffer) *oram.MemStore {
	return b.Engine().Store().(*oram.MemStore)
}

// captureMember snapshots one buffer (and its health record) into
// checkpoint form.
func captureMember(b *isdimm.Buffer, h *fault.Health) durable.MemberState {
	m := durable.MemberState{
		EngineRNG: b.Engine().RandState(),
		BufferRNG: b.RandState(),
		Stash:     captureBlocks(b.Engine().StashBlocks()),
		Transfer:  captureBlocks(b.TransferBlocks()),
		Ring:      b.Engine().RingSnapshot(),
	}
	ms := memStore(b)
	for _, idx := range ms.BucketIndices() {
		raw, _ := ms.RawBucket(idx)
		m.Buckets = append(m.Buckets, durable.BucketState{Idx: idx, Raw: raw})
	}
	succ, fail := h.Totals()
	m.Health = durable.HealthState{
		State:       int(h.State()),
		Consecutive: h.Consecutive(),
		Successes:   succ,
		Failures:    fail,
	}
	return m
}

// restoreMember loads one buffer (and its health record) from checkpoint
// form.
func restoreMember(b *isdimm.Buffer, h *fault.Health, m durable.MemberState) error {
	b.Engine().RestoreRandState(m.EngineRNG)
	b.RestoreRandState(m.BufferRNG)
	if err := b.Engine().RestoreStash(restoreBlocks(m.Stash)); err != nil {
		return err
	}
	if err := b.RestoreTransfer(restoreBlocks(m.Transfer)); err != nil {
		return err
	}
	if err := b.Engine().RestoreRingSnapshot(m.Ring); err != nil {
		return err
	}
	ms := memStore(b)
	for _, bk := range m.Buckets {
		if err := ms.RestoreRaw(bk.Idx, bk.Raw); err != nil {
			return err
		}
	}
	h.Restore(fault.State(m.Health.State), m.Health.Consecutive, m.Health.Successes, m.Health.Failures)
	return nil
}

// --- Independent cluster ---

// ForceCheckpoint captures the cluster's full state and persists it,
// rotating the journal. Callable any time the cluster is quiescent.
func (c *Cluster) ForceCheckpoint() error {
	if c.dur == nil {
		return errors.New("sdimm: ForceCheckpoint without durability")
	}
	cp := &durable.Checkpoint{
		Seq:       c.seq,
		RNG:       c.rnd.State(),
		Positions: capturePositions(c.pos),
		Poisoned:  capturePoisoned(c.poisoned),
		MigSeq:    c.migSeq,
		TopoSeq:   c.topoSeq,
	}
	if c.drainMember >= 0 {
		cp.Drains = []durable.DrainState{{Member: uint64(c.drainMember), Moved: c.drainMoved}}
	}
	for i, b := range c.buffers {
		m := captureMember(b, c.health[i])
		m.HostSend = c.links[i].Host.SendCounter()
		m.HostRecv = c.links[i].Host.RecvCounter()
		m.DevSend = c.links[i].Dev.SendCounter()
		m.DevRecv = c.links[i].Dev.RecvCounter()
		m.Incarnation = c.incarnations[i]
		m.Detached = c.detached[i]
		cp.Members = append(cp.Members, m)
	}
	if err := c.dur.WriteCheckpoint(cp); err != nil {
		return err
	}
	c.lastCkpt = c.seq
	c.tm.checkpoints.Inc()
	c.flight.Coordinator().Record(flight.KindCheckpoint, c.seq, 0)
	return nil
}

// CorruptBucket flips a ciphertext bit in the k-th materialized bucket
// (sorted by index) of member sd's store and returns the bucket index
// (chaos harness hook for scrub testing). False when the member has no
// materialized buckets.
func (c *Cluster) CorruptBucket(sd, k int) (uint64, bool) {
	if sd < 0 || sd >= len(c.buffers) {
		return 0, false
	}
	ms := memStore(c.buffers[sd])
	idxs := ms.BucketIndices()
	if len(idxs) == 0 {
		return 0, false
	}
	idx := idxs[k%len(idxs)]
	return idx, ms.Corrupt(idx)
}

// restoreCheckpoint loads cp into the (freshly constructed) cluster.
func (c *Cluster) restoreCheckpoint(cp *durable.Checkpoint) error {
	if len(cp.Members) != len(c.buffers) {
		return fmt.Errorf("sdimm: checkpoint has %d members, cluster has %d", len(cp.Members), len(c.buffers))
	}
	c.seq = cp.Seq
	c.lastCkpt = cp.Seq
	c.rnd.Restore(cp.RNG)
	for _, p := range cp.Positions {
		c.pos.Set(p.Addr, p.Value)
	}
	c.poisoned = make(map[uint64]bool, len(cp.Poisoned))
	for _, a := range cp.Poisoned {
		c.poisoned[a] = true
	}
	c.migSeq = cp.MigSeq
	c.topoSeq = cp.TopoSeq
	c.drainMember, c.drainMoved = -1, 0
	if len(cp.Drains) > 0 {
		if len(cp.Drains) > 1 {
			return fmt.Errorf("sdimm: checkpoint records %d concurrent drains, at most 1 supported", len(cp.Drains))
		}
		c.drainMember = int(cp.Drains[0].Member)
		c.drainMoved = cp.Drains[0].Moved
		if c.drainMember < 0 || c.drainMember >= len(c.buffers) {
			return fmt.Errorf("sdimm: checkpoint drain member %d out of range", c.drainMember)
		}
	}
	for i, m := range cp.Members {
		// A member that joined after the founding generation has
		// incarnation-derived store keys and a distinct device identity —
		// rebuild it before restoring its state into place.
		if m.Incarnation != c.incarnations[i] {
			if err := c.mkMember(i, m.Incarnation); err != nil {
				return err
			}
			c.incarnations[i] = m.Incarnation
		}
		c.detached[i] = m.Detached
		if err := restoreMember(c.buffers[i], c.health[i], m); err != nil {
			return err
		}
		// The links run fresh post-restart ECDH sessions (new keys, so
		// restored counters can never reuse a pad); restoring the counters
		// forward keeps both endpoints in lockstep and the counters
		// monotonic across the crash.
		if err := c.links[i].Host.RestoreCounters(m.HostSend, m.HostRecv); err != nil {
			return err
		}
		if err := c.links[i].Dev.RestoreCounters(m.DevSend, m.DevRecv); err != nil {
			return err
		}
	}
	return nil
}

// scrub runs the post-restore PMMAC pass over every member's tree: verify
// every materialized bucket, quarantine the ones whose tag fails, and
// poison any mapped address whose block can no longer be found anywhere
// (corrupt bucket on its path, not in the stash or transfer queue). The
// Independent protocol has no cross-SDIMM redundancy, so a corrupt bucket
// is always unrecoverable — the pass bounds the damage to provably-lost
// addresses and keeps the tree navigable.
func (c *Cluster) scrub(report *durable.RecoveryReport) error {
	corrupt := make([]map[uint64]bool, len(c.buffers))
	for i, b := range c.buffers {
		ms := memStore(b)
		for _, idx := range ms.BucketIndices() {
			report.BucketsScanned++
			if _, err := ms.ReadBucket(idx); err != nil {
				if !errors.Is(err, oram.ErrIntegrity) {
					return err
				}
				if corrupt[i] == nil {
					corrupt[i] = make(map[uint64]bool)
				}
				corrupt[i][idx] = true
			}
		}
	}
	for i, set := range corrupt {
		if len(set) == 0 {
			continue
		}
		ms := memStore(c.buffers[i])
		idxs := make([]uint64, 0, len(set))
		for idx := range set {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
		for _, idx := range idxs {
			// Quarantine: overwrite with an all-dummy bucket so path reads
			// stay serviceable. The lost contents are handled by poisoning.
			if err := ms.WriteBucket(idx, oram.NewBucket(ms.Z())); err != nil {
				return err
			}
			report.BucketsUnrecoverable++
		}
	}

	// Poison pass, in sorted address order (no RNG, so recovery stays
	// deterministic): an address is lost iff a corrupt bucket lay on its
	// path and the block is in neither the stash, the transfer queue, nor a
	// healthy path bucket.
	mask := uint64(1)<<c.localBits - 1
	for _, e := range capturePositions(c.pos) {
		sd := int(e.Value >> c.localBits)
		set := corrupt[sd]
		if len(set) == 0 {
			continue
		}
		b := c.buffers[sd]
		path := b.Engine().Geometry().Path(e.Value&mask, nil)
		touched := false
		for _, idx := range path {
			if set[idx] {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		if _, ok := b.Engine().StashGet(e.Addr); ok {
			continue
		}
		if _, ok := b.TransferQueueSearch(e.Addr); ok {
			continue
		}
		found := false
		ms := memStore(b)
		for _, idx := range path {
			if set[idx] {
				continue
			}
			// Ring engines invalidate slots in place when a read lifts the
			// block; a dead slot is a stale copy, not a live one.
			dead := b.Engine().RingInvalidSlots(idx)
			bkt, err := ms.ReadBucket(idx)
			if err != nil {
				return err
			}
			for si, slot := range bkt.Slots {
				if slot.Addr == e.Addr && dead&(1<<uint(si)) == 0 {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			c.poisoned[e.Addr] = true
			report.Poisoned = append(report.Poisoned, e.Addr)
		}
	}
	return nil
}

// RecoverCluster rebuilds a durable Independent cluster from its state
// directory: construct fresh (new link sessions), load the newest valid
// checkpoint, scrub every bucket's PMMAC tag, replay the journal to the
// last committed access, put all members into Recovering probation, and
// persist a post-recovery checkpoint — only then is traffic admitted.
//
// The scrub runs before replay on purpose: replay re-executes accesses
// against the restored image, so the image must be navigable first, and a
// replayed write to a poisoned address heals it exactly as the original
// execution did.
func RecoverCluster(opts ClusterOptions) (*Cluster, *durable.RecoveryReport, error) {
	opts = opts.withDefaults()
	if opts.Durability == nil {
		return nil, nil, errors.New("sdimm: RecoverCluster requires Durability options")
	}
	c, err := buildCluster(opts)
	if err != nil {
		return nil, nil, err
	}
	if err := c.attachDurability(opts.Durability, independentFingerprint(opts), opts.Key); err != nil {
		return nil, nil, err
	}
	cp, recs, report, err := c.dur.Recover()
	if err != nil {
		return nil, nil, err
	}
	if err := c.restoreCheckpoint(cp); err != nil {
		return nil, nil, err
	}
	if err := c.scrub(report); err != nil {
		return nil, nil, err
	}
	c.replaying = true
	for _, rec := range recs {
		if rec.Seq != c.seq+1 {
			c.replaying = false
			return nil, nil, fmt.Errorf("sdimm: replay record %d does not follow committed seq %d", rec.Seq, c.seq)
		}
		var err error
		switch rec.Kind {
		case durable.KindRead:
			_, err = c.access(rec.Addr, oram.OpRead, nil)
		case durable.KindWrite:
			_, err = c.access(rec.Addr, oram.OpWrite, rec.Data)
		case durable.KindMigrate:
			c.migrating = true
			_, err = c.access(rec.Addr, oram.OpRead, nil)
			c.migrating = false
		case durable.KindDrainBegin:
			err = c.applyDrainBegin(int(rec.Addr))
		case durable.KindDrainEnd:
			err = c.applyDetach(int(rec.Addr))
		case durable.KindJoin:
			err = c.applyJoin(int(rec.Addr))
		default:
			err = fmt.Errorf("sdimm: unknown record kind %d", rec.Kind)
		}
		if err != nil {
			c.replaying = false
			return nil, nil, fmt.Errorf("sdimm: replay record %d (seq %d, kind %d): %w", rec.Addr, rec.Seq, rec.Kind, err)
		}
		c.tm.replayed.Inc()
	}
	c.replaying = false
	for _, h := range c.health {
		h.MarkRecovering()
	}
	if err := c.ForceCheckpoint(); err != nil {
		return nil, nil, err
	}
	c.tm.scrubScanned.Add(uint64(report.BucketsScanned))
	c.tm.scrubRepaired.Add(uint64(report.BucketsRepaired))
	c.tm.scrubUnrecoverable.Add(uint64(report.BucketsUnrecoverable))
	c.flight.Coordinator().Record(flight.KindRecovery, uint64(report.RecordsReplayed), uint64(report.BucketsRepaired))
	return c, report, nil
}

// --- Split cluster ---

// allMembers returns the data shards followed by the parity member (when
// present) — index-aligned with c.health.
func (c *SplitCluster) allMembers() []*isdimm.Buffer {
	out := append([]*isdimm.Buffer(nil), c.buffers...)
	if c.parity != nil {
		out = append(out, c.parity)
	}
	return out
}

// ForceCheckpoint captures the cluster's full state and persists it,
// rotating the journal.
func (c *SplitCluster) ForceCheckpoint() error {
	if c.dur == nil {
		return errors.New("sdimm: ForceCheckpoint without durability")
	}
	cp := &durable.Checkpoint{
		Seq:       c.seq,
		RNG:       c.rnd.State(),
		Positions: capturePositions(c.pos),
		Poisoned:  capturePoisoned(c.poisoned),
		MigSeq:    c.migSeq,
		TopoSeq:   c.topoSeq,
	}
	for i, b := range c.allMembers() {
		m := captureMember(b, c.health[i])
		m.Incarnation = c.incarnations[i]
		cp.Members = append(cp.Members, m)
	}
	if err := c.dur.WriteCheckpoint(cp); err != nil {
		return err
	}
	c.lastCkpt = c.seq
	c.tm.checkpoints.Inc()
	return nil
}

// CorruptBucket flips a ciphertext bit in the k-th materialized bucket of
// member i (data shards 0..SDIMMs-1; SDIMMs = parity) and returns the
// bucket index.
func (c *SplitCluster) CorruptBucket(member, k int) (uint64, bool) {
	members := c.allMembers()
	if member < 0 || member >= len(members) {
		return 0, false
	}
	ms := memStore(members[member])
	idxs := ms.BucketIndices()
	if len(idxs) == 0 {
		return 0, false
	}
	idx := idxs[k%len(idxs)]
	return idx, ms.Corrupt(idx)
}

// restoreCheckpoint loads cp into the (freshly constructed) cluster.
func (c *SplitCluster) restoreCheckpoint(cp *durable.Checkpoint) error {
	members := c.allMembers()
	if len(cp.Members) != len(members) {
		return fmt.Errorf("sdimm: checkpoint has %d members, cluster has %d", len(cp.Members), len(members))
	}
	c.seq = cp.Seq
	c.lastCkpt = cp.Seq
	c.rnd.Restore(cp.RNG)
	for _, p := range cp.Positions {
		c.pos.Set(p.Addr, p.Value)
	}
	c.poisoned = make(map[uint64]bool, len(cp.Poisoned))
	for _, a := range cp.Poisoned {
		c.poisoned[a] = true
	}
	c.migSeq = cp.MigSeq
	c.topoSeq = cp.TopoSeq
	for i, m := range cp.Members {
		// A replacement member's store keys derive from its incarnation —
		// rebuild the buffer before restoring state into it.
		if m.Incarnation != c.incarnations[i] {
			buf, err := c.mkShardMember(i, m.Incarnation)
			if err != nil {
				return err
			}
			if i < len(c.buffers) {
				c.buffers[i] = buf
			} else {
				c.parity = buf
			}
			c.incarnations[i] = m.Incarnation
		}
	}
	members = c.allMembers()
	for i, m := range cp.Members {
		if err := restoreMember(members[i], c.health[i], m); err != nil {
			return err
		}
	}
	return nil
}

// scrub verifies every member's buckets and repairs corrupt ones from the
// other shards. Shard trees evolve in lockstep, so for any bucket index the
// slot headers and write counter agree across members, and the parity
// member's data is the XOR of the data shards' — a single corrupt member's
// bucket is rebuilt bit-exactly (XOR of all healthy members' slot data,
// resealed under the sibling counter). With no parity, or more than one
// corrupt member for the same bucket, the affected members are marked
// Failed and the damage is reported unrecoverable.
func (c *SplitCluster) scrub(report *durable.RecoveryReport) error {
	members := c.allMembers()
	idxSet := make(map[uint64]bool)
	for _, b := range members {
		for _, idx := range memStore(b).BucketIndices() {
			idxSet[idx] = true
		}
	}
	idxs := make([]uint64, 0, len(idxSet))
	for idx := range idxSet {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	for _, idx := range idxs {
		buckets := make([]oram.Bucket, len(members))
		var bad, good []int
		for mi, b := range members {
			report.BucketsScanned++
			bkt, err := memStore(b).ReadBucket(idx)
			if err != nil {
				if !errors.Is(err, oram.ErrIntegrity) {
					return err
				}
				bad = append(bad, mi)
				continue
			}
			buckets[mi] = bkt
			good = append(good, mi)
		}
		if len(bad) == 0 {
			continue
		}
		if c.parity == nil || len(bad) > 1 || len(good) == 0 {
			report.BucketsUnrecoverable += len(bad)
			for _, mi := range bad {
				c.health[mi].MarkFailed(fmt.Errorf("sdimm: bucket %d unrecoverable on member %d: %w", idx, mi, oram.ErrIntegrity))
			}
			continue
		}
		target := bad[0]
		tpl := buckets[good[0]]
		rebuilt := oram.NewBucket(len(tpl.Slots))
		for s := range tpl.Slots {
			rebuilt.Slots[s].Addr = tpl.Slots[s].Addr
			rebuilt.Slots[s].Leaf = tpl.Slots[s].Leaf
			if rebuilt.Slots[s].IsDummy() {
				continue
			}
			data := make([]byte, c.shard)
			for _, mi := range good {
				d := buckets[mi].Slots[s].Data
				for j := range data {
					data[j] ^= d[j]
				}
			}
			rebuilt.Slots[s].Data = data
		}
		counter := memStore(members[good[0]]).Counter(idx)
		if err := memStore(members[target]).PutBucketAt(idx, rebuilt, counter); err != nil {
			return err
		}
		report.BucketsRepaired++
	}
	return nil
}

// RecoverSplitCluster rebuilds a durable Split cluster from its state
// directory, mirroring RecoverCluster: restore → parity scrub → journal
// replay → probation → post-recovery checkpoint.
func RecoverSplitCluster(opts SplitClusterOptions) (*SplitCluster, *durable.RecoveryReport, error) {
	opts = opts.withDefaults()
	if opts.Durability == nil {
		return nil, nil, errors.New("sdimm: RecoverSplitCluster requires Durability options")
	}
	c, err := buildSplitCluster(opts)
	if err != nil {
		return nil, nil, err
	}
	if err := c.attachDurability(opts.Durability, splitFingerprint(opts), opts.Key); err != nil {
		return nil, nil, err
	}
	cp, recs, report, err := c.dur.Recover()
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	if err := c.restoreCheckpoint(cp); err != nil {
		c.Close()
		return nil, nil, err
	}
	if err := c.scrub(report); err != nil {
		c.Close()
		return nil, nil, err
	}
	c.replaying = true
	for _, rec := range recs {
		if rec.Seq != c.seq+1 {
			c.replaying = false
			c.Close()
			return nil, nil, fmt.Errorf("sdimm: replay record %d does not follow committed seq %d", rec.Seq, c.seq)
		}
		var err error
		switch rec.Kind {
		case durable.KindRead:
			_, err = c.access(rec.Addr, oram.OpRead, nil)
		case durable.KindWrite:
			_, err = c.access(rec.Addr, oram.OpWrite, rec.Data)
		case durable.KindJoin:
			err = c.applySplitJoin(int(rec.Addr))
		default:
			// The split protocol has no routing, so drains and migrations
			// never occur; replacement is the only topology change.
			err = fmt.Errorf("sdimm: record kind %d unsupported by split clusters", rec.Kind)
		}
		if err != nil {
			c.replaying = false
			c.Close()
			return nil, nil, fmt.Errorf("sdimm: replay record %d (seq %d, kind %d): %w", rec.Addr, rec.Seq, rec.Kind, err)
		}
		c.tm.replayed.Inc()
	}
	c.replaying = false
	for _, h := range c.health {
		h.MarkRecovering()
	}
	if err := c.ForceCheckpoint(); err != nil {
		c.Close()
		return nil, nil, err
	}
	c.tm.scrubScanned.Add(uint64(report.BucketsScanned))
	c.tm.scrubRepaired.Add(uint64(report.BucketsRepaired))
	c.tm.scrubUnrecoverable.Add(uint64(report.BucketsUnrecoverable))
	return c, report, nil
}
