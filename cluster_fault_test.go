package sdimm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"sdimm/internal/fault"
	"sdimm/internal/rng"
)

func nop(time.Duration) {}

func newFaultyCluster(t *testing.T, sdimms int, in *fault.Injector, attempts int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterOptions{
		SDIMMs: sdimms,
		Levels: 10,
		Key:    []byte("faulty-cluster-key"),
		Seed:   17,
		Faults: in,
		Retry:  fault.RetryPolicy{MaxAttempts: attempts, Sleep: nop},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClusterSurvivesFaultyLinks runs a read/write workload over links with
// a noticeable random fault rate and requires map-exact behaviour with zero
// surfaced errors — every fault must be absorbed by the recovery layer.
func TestClusterSurvivesFaultyLinks(t *testing.T) {
	in := fault.NewInjector(fault.Config{
		Seed: 99, BitFlip: 0.01, Drop: 0.01, Duplicate: 0.01, Replay: 0.005, Stall: 0.005, MACCorrupt: 0.005,
	})
	c := newFaultyCluster(t, 4, in, 8)
	ref := map[uint64][]byte{}
	r := rng.New(5)
	for i := 0; i < 400; i++ {
		addr := r.Uint64n(80)
		if r.Bool(0.5) {
			data := []byte(fmt.Sprintf("v%d-%d", i, addr))
			if err := c.Write(addr, data); err != nil {
				t.Fatalf("op %d write %d: %v", i, addr, err)
			}
			ref[addr] = data
		} else {
			got, err := c.Read(addr)
			if err != nil {
				t.Fatalf("op %d read %d: %v", i, addr, err)
			}
			want := ref[addr]
			if !bytes.Equal(got[:len(want)], want) {
				t.Fatalf("op %d read %d = %q, want %q", i, addr, got[:len(want)], want)
			}
		}
	}
	s := in.Stats()
	if s.Drops+s.BitFlips+s.Duplicates+s.Replays+s.Stalls+s.MACCorruptions == 0 {
		t.Fatalf("fault injector never fired: %+v", s)
	}
	for _, sd := range c.Health().SDIMMs {
		if sd.State == fault.Failed {
			t.Fatalf("sdimm %d failed under transient faults: %+v", sd.Index, sd)
		}
	}
	t.Logf("faults absorbed: %+v", s)
}

// TestClusterStagedCommitSurvivesOutage pins the position-map recovery
// semantics: an access that dies on the wire must leave the address fully
// readable afterwards. The seed implementation committed the new leaf
// BEFORE talking to any buffer, so a single failed exchange permanently
// bricked the address.
func TestClusterStagedCommitSurvivesOutage(t *testing.T) {
	in := fault.NewInjector(fault.Config{Seed: 11})
	c := newFaultyCluster(t, 4, in, 3)
	payload := []byte("survives the outage")
	if err := c.Write(5, payload); err != nil {
		t.Fatal(err)
	}
	// Wedge every link long enough to exhaust the retry budget.
	for i := 0; i < 4; i++ {
		in.StallFor(i, 3)
	}
	if _, err := c.Read(5); err == nil {
		t.Fatal("read succeeded through a total link outage")
	} else {
		var se *fault.SDIMMError
		if !errors.As(err, &se) {
			t.Fatalf("outage error lacks SDIMM attribution: %v", err)
		}
		if !errors.Is(err, fault.ErrStalled) {
			t.Fatalf("outage error hides its cause: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		in.ClearStall(i)
	}
	got, err := c.Read(5)
	if err != nil {
		t.Fatalf("read after outage: %v", err)
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Fatalf("address corrupted by failed access: %q", got[:len(payload)])
	}
}

// TestClusterErrorsCarrySDIMMIndex checks satellite 2: any error crossing
// the cluster boundary names the buffer (index and ID) it came from.
func TestClusterErrorsCarrySDIMMIndex(t *testing.T) {
	in := fault.NewInjector(fault.Config{Seed: 4})
	c := newFaultyCluster(t, 2, in, 2)
	if err := c.Write(9, []byte("x")); err != nil {
		t.Fatal(err)
	}
	in.StallFor(0, 1<<20)
	in.StallFor(1, 1<<20)
	_, err := c.Read(9)
	if err == nil {
		t.Fatal("read succeeded with both links wedged")
	}
	var se *fault.SDIMMError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a SDIMMError: %v", err)
	}
	if se.Index != 0 && se.Index != 1 {
		t.Fatalf("implausible SDIMM index %d", se.Index)
	}
	if want := fmt.Sprintf("sdimm-%d", se.Index); se.ID != want {
		t.Fatalf("SDIMM ID %q does not match index %d", se.ID, se.Index)
	}
	if !bytes.Contains([]byte(err.Error()), []byte(fmt.Sprintf("sdimm %d", se.Index))) {
		t.Fatalf("error text omits the index: %v", err)
	}
}

// TestClusterHealthDegradesAndRecovers drives one SDIMM through
// Healthy → Degraded → Healthy using forced stalls.
func TestClusterHealthDegradesAndRecovers(t *testing.T) {
	in := fault.NewInjector(fault.Config{Seed: 8})
	c := newFaultyCluster(t, 2, in, 2)
	// Every access exchanges with SDIMM 0 at least once (access or append),
	// so three wedged accesses produce three consecutive failures.
	in.StallFor(0, 1<<20)
	for i := uint64(0); i < 3; i++ {
		c.Write(100+i, []byte("z")) //nolint:errcheck — errors expected while wedged
	}
	h := c.Health()
	if h.SDIMMs[0].State != fault.Degraded {
		t.Fatalf("sdimm 0 not degraded after repeated failures: %+v", h.SDIMMs[0])
	}
	if h.Healthy() {
		t.Fatal("ClusterHealth.Healthy() true with a degraded member")
	}
	if h.SDIMMs[0].LastError == "" || h.SDIMMs[0].Retries == 0 {
		t.Fatalf("health view missing diagnostics: %+v", h.SDIMMs[0])
	}
	in.ClearStall(0)
	// One successful exchange recovers the state machine.
	for i := uint64(0); i < 2; i++ {
		if err := c.Write(200+i, []byte("y")); err != nil {
			t.Fatalf("write after stall cleared: %v", err)
		}
	}
	h = c.Health()
	if h.SDIMMs[0].State != fault.Healthy {
		t.Fatalf("sdimm 0 did not recover: %+v", h.SDIMMs[0])
	}
	if !h.Healthy() {
		t.Fatalf("cluster not healthy after recovery: %+v", h)
	}
}

// TestClusterFailStopIsolation kills one SDIMM and checks the cluster
// detects it, stops routing to it, and keeps serving everything that does
// not live there.
func TestClusterFailStopIsolation(t *testing.T) {
	in := fault.NewInjector(fault.Config{Seed: 21})
	c := newFaultyCluster(t, 4, in, 3)
	for a := uint64(0); a < 24; a++ {
		if err := c.Write(a, []byte(fmt.Sprintf("pre-%d", a))); err != nil {
			t.Fatal(err)
		}
	}
	in.FailStop(1)
	// The next accesses discover the corpse (via its dead link); at most the
	// ones routed directly at it error.
	for a := uint64(100); a < 110; a++ {
		c.Write(a, []byte("probe")) //nolint:errcheck — detection phase
	}
	h := c.Health()
	if got := h.Failed(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("failed set %v, want [1]", got)
	}
	// Post-detection: fresh writes and their reads must always succeed —
	// placement avoids the dead SDIMM entirely.
	for a := uint64(200); a < 230; a++ {
		data := []byte(fmt.Sprintf("post-%d", a))
		if err := c.Write(a, data); err != nil {
			t.Fatalf("write %d after detection: %v", a, err)
		}
		got, err := c.Read(a)
		if err != nil {
			t.Fatalf("read %d after detection: %v", a, err)
		}
		if !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("read %d = %q", a, got[:len(data)])
		}
	}
	// Pre-failure addresses either survive (they lived elsewhere or migrated
	// off in the probe phase) or fail loudly with the dead SDIMM named —
	// never silently return wrong data.
	for a := uint64(0); a < 24; a++ {
		got, err := c.Read(a)
		if err != nil {
			var se *fault.SDIMMError
			if !errors.As(err, &se) || se.Index != 1 || !errors.Is(err, fault.ErrUnavailable) {
				t.Fatalf("read %d: unexpected failure shape: %v", a, err)
			}
			continue
		}
		want := fmt.Sprintf("pre-%d", a)
		if string(got[:len(want)]) != want {
			t.Fatalf("read %d silently corrupted: %q", a, got[:len(want)])
		}
	}
}

// TestClusterRehomesInFlightBlock wedges the link of the non-owning SDIMM
// so that every migration's real APPEND is abandoned; the block must be
// re-homed to a healthy SDIMM instead of being lost.
func TestClusterRehomesInFlightBlock(t *testing.T) {
	in := fault.NewInjector(fault.Config{Seed: 31})
	c := newFaultyCluster(t, 2, in, 2)
	payload := []byte("in-flight")
	if err := c.Write(3, payload); err != nil {
		t.Fatal(err)
	}
	oldG, ok := c.pos.Get(3)
	if !ok {
		t.Fatal("written address unmapped")
	}
	owner := int(oldG >> c.localBits)
	other := 1 - owner
	in.StallFor(other, 1<<20)
	// Hammer the address: every ~second access tries to migrate it to the
	// wedged SDIMM, whose append must be abandoned and re-homed.
	for i := 0; i < 20; i++ {
		got, err := c.Read(3)
		if err != nil {
			t.Fatalf("read %d during wedge: %v", i, err)
		}
		if !bytes.Equal(got[:len(payload)], payload) {
			t.Fatalf("read %d lost payload: %q", i, got[:len(payload)])
		}
		g, _ := c.pos.Get(3)
		if int(g>>c.localBits) == other {
			t.Fatalf("read %d left the block mapped to the wedged SDIMM", i)
		}
	}
	in.ClearStall(other)
	if got, err := c.Read(3); err != nil || !bytes.Equal(got[:len(payload)], payload) {
		t.Fatalf("read after wedge: %q %v", got, err)
	}
}

func newParityCluster(t *testing.T, k int) *SplitCluster {
	t.Helper()
	c, err := NewSplitCluster(SplitClusterOptions{
		SDIMMs: k,
		Levels: 10,
		Key:    []byte("parity-key"),
		Seed:   13,
		Parity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSplitParityReconstruction fail-stops one data shard and checks every
// payload — written before or after the failure — reads back exactly via
// XOR reconstruction.
func TestSplitParityReconstruction(t *testing.T) {
	c := newParityCluster(t, 4)
	if !c.HasParity() {
		t.Fatal("parity shard missing")
	}
	for a := uint64(0); a < 20; a++ {
		if err := c.Write(a, []byte(fmt.Sprintf("pre-fail-%02d", a))); err != nil {
			t.Fatal(err)
		}
	}
	c.FailShard(2)
	for a := uint64(0); a < 20; a++ {
		got, err := c.Read(a)
		if err != nil {
			t.Fatalf("read %d with shard down: %v", a, err)
		}
		want := fmt.Sprintf("pre-fail-%02d", a)
		if string(got[:len(want)]) != want {
			t.Fatalf("reconstruction wrong for %d: %q", a, got[:len(want)])
		}
	}
	// Writes after the failure also survive: the parity slice carries the
	// dead shard's information.
	full := make([]byte, 64)
	for i := range full {
		full[i] = byte(0xA0 ^ i)
	}
	if err := c.Write(50, full); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(50)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatalf("post-failure write not reconstructed: %v", got)
	}
	h := c.Health()
	if got := h.Failed(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("failed set %v, want [2]", got)
	}
}

// TestSplitParityShardDownStillServes loses the parity shard itself: all
// data shards remain, so nothing needs reconstruction.
func TestSplitParityShardDownStillServes(t *testing.T) {
	c := newParityCluster(t, 2)
	if err := c.Write(7, []byte("no parity needed")); err != nil {
		t.Fatal(err)
	}
	c.FailShard(2) // index SDIMMs = the parity member
	if err := c.Write(8, []byte("still fine")); err != nil {
		t.Fatalf("write with parity down: %v", err)
	}
	got, err := c.Read(7)
	if err != nil || string(got[:16]) != "no parity needed" {
		t.Fatalf("read with parity down: %q %v", got, err)
	}
}

// TestSplitWithoutParityFailsClosed checks a shard loss without parity is a
// loud, attributed error — never silent corruption.
func TestSplitWithoutParityFailsClosed(t *testing.T) {
	c := newSplitCluster(t, 2)
	if err := c.Write(1, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	c.FailShard(1)
	_, err := c.Read(1)
	if err == nil {
		t.Fatal("read served with a shard missing and no parity")
	}
	var se *fault.SDIMMError
	if !errors.As(err, &se) || !errors.Is(err, fault.ErrUnavailable) {
		t.Fatalf("failure shape: %v", err)
	}
}

// TestSplitTwoShardsDownFailsClosed: XOR parity tolerates exactly one loss.
func TestSplitTwoShardsDownFailsClosed(t *testing.T) {
	c := newParityCluster(t, 4)
	if err := c.Write(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.FailShard(0)
	c.FailShard(3)
	if _, err := c.Read(1); err == nil || !errors.Is(err, fault.ErrUnavailable) {
		t.Fatalf("double loss not rejected: %v", err)
	}
}

// TestSplitParityStaysInLockstep extends the seed lockstep invariant to the
// parity member: its stash must track the data shards exactly.
func TestSplitParityStaysInLockstep(t *testing.T) {
	c := newParityCluster(t, 4)
	r := rng.New(6)
	for i := 0; i < 200; i++ {
		addr := r.Uint64n(90)
		if r.Bool(0.5) {
			if err := c.Write(addr, []byte{byte(addr)}); err != nil {
				t.Fatal(err)
			}
		} else if _, err := c.Read(addr); err != nil {
			t.Fatal(err)
		}
		lens := c.StashLens()
		for _, n := range lens[1:] {
			if n != lens[0] {
				t.Fatalf("op %d: data shards diverged: %v", i, lens)
			}
		}
		if p := c.parity.Engine().StashLen(); p != lens[0] {
			t.Fatalf("op %d: parity stash %d, data shards %d", i, p, lens[0])
		}
	}
}

// TestSplitDataAndParityDownFailsClosed: losing a data shard AND the parity
// member exceeds the XOR redundancy budget. Both reads and writes must fail
// loudly, health must attribute both corpses, and replacement must be
// refused until one of them is rebuilt first.
func TestSplitDataAndParityDownFailsClosed(t *testing.T) {
	c := newParityCluster(t, 4)
	if err := c.Write(3, []byte("two losses")); err != nil {
		t.Fatal(err)
	}
	pi := len(c.buffers)
	c.FailShard(2)
	c.FailShard(pi)
	if _, err := c.Read(3); err == nil || !errors.Is(err, fault.ErrUnavailable) {
		t.Fatalf("read served with data+parity down: %v", err)
	}
	if err := c.Write(4, []byte("x")); err == nil || !errors.Is(err, fault.ErrUnavailable) {
		t.Fatalf("write accepted with data+parity down: %v", err)
	}
	failed := c.Health().Failed()
	if len(failed) != 2 || failed[0] != 2 || failed[1] != pi {
		t.Fatalf("failed set %v, want [2 %d]", failed, pi)
	}
	// A rebuild needs every other member alive; with two down it must be
	// refused for either corpse rather than produce garbage.
	if err := c.ReplaceMember(2); err == nil {
		t.Fatal("ReplaceMember rebuilt a shard from an incomplete XOR set")
	}
	if err := c.ReplaceMember(pi); err == nil {
		t.Fatal("ReplaceMember rebuilt parity from an incomplete XOR set")
	}
}
