package sdimm

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sdimm/internal/fault"
	"sdimm/internal/rng"
	"sdimm/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Worker pool unit tests.
// ---------------------------------------------------------------------------

func TestWorkerPoolFIFOPerWorker(t *testing.T) {
	p := newWorkerPool(3, 8, 16)
	defer p.close()
	var mu sync.Mutex
	got := make([][]int, 3)
	for round := 0; round < 50; round++ {
		for w := 0; w < 3; w++ {
			w, round := w, round
			p.submit(w, func() {
				mu.Lock()
				got[w] = append(got[w], round)
				mu.Unlock()
			})
		}
	}
	p.barrier()
	for w := 0; w < 3; w++ {
		for i, v := range got[w] {
			if v != i {
				t.Fatalf("worker %d executed out of order: %v", w, got[w])
			}
		}
	}
}

func TestWorkerPoolParallelismOne(t *testing.T) {
	// With parallelism 1, tasks must never overlap even across workers.
	p := newWorkerPool(4, 1, 4)
	defer p.close()
	var active, maxActive int
	var mu sync.Mutex
	for i := 0; i < 40; i++ {
		w := i % 4
		p.submit(w, func() {
			mu.Lock()
			active++
			if active > maxActive {
				maxActive = active
			}
			mu.Unlock()
			mu.Lock()
			active--
			mu.Unlock()
		})
	}
	p.barrier()
	if maxActive != 1 {
		t.Fatalf("parallelism 1 pool had %d overlapping tasks", maxActive)
	}
}

func TestWorkerPoolCloseIdempotent(t *testing.T) {
	p := newWorkerPool(2, 2, 2)
	n := 0
	p.submit(0, func() { n++ })
	p.barrier()
	p.close()
	p.close() // second close must not panic
	if n != 1 {
		t.Fatalf("task ran %d times", n)
	}
}

// ---------------------------------------------------------------------------
// Determinism-equivalence harness.
// ---------------------------------------------------------------------------

// engineState is everything the equivalence suite compares bit-for-bit:
// every read payload, the final position map, per-SDIMM stash occupancy,
// the full telemetry snapshot, and the per-SDIMM health/link accounting.
type engineState struct {
	Results   []BatchResult
	Errors    []string
	Positions map[uint64]uint64
	StashLens []int
	Telemetry telemetry.Snapshot
	Health    []SDIMMHealth
}

func captureState(results []BatchResult, pos map[uint64]uint64, lens []int,
	reg *telemetry.Registry, h ClusterHealth) engineState {
	st := engineState{
		Results:   results,
		Positions: pos,
		StashLens: lens,
		Telemetry: reg.Snapshot(),
		Health:    h.SDIMMs,
	}
	for _, r := range results {
		if r.Err != nil {
			st.Errors = append(st.Errors, r.Err.Error())
		}
	}
	// Errors compare as strings; the structs carry the same text.
	for i := range st.Results {
		st.Results[i].Err = nil
	}
	return st
}

func diffState(t *testing.T, tag string, a, b engineState) {
	t.Helper()
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Errorf("%s: read payloads diverged", tag)
	}
	if !reflect.DeepEqual(a.Errors, b.Errors) {
		t.Errorf("%s: errors diverged: %v vs %v", tag, a.Errors, b.Errors)
	}
	if !reflect.DeepEqual(a.Positions, b.Positions) {
		t.Errorf("%s: final position maps diverged (%d vs %d entries)",
			tag, len(a.Positions), len(b.Positions))
	}
	if !reflect.DeepEqual(a.StashLens, b.StashLens) {
		t.Errorf("%s: stash occupancy diverged: %v vs %v", tag, a.StashLens, b.StashLens)
	}
	if !reflect.DeepEqual(a.Telemetry, b.Telemetry) {
		t.Errorf("%s: telemetry snapshots diverged:\n--- a ---\n%s\n--- b ---\n%s",
			tag, a.Telemetry.String(), b.Telemetry.String())
	}
	if !reflect.DeepEqual(a.Health, b.Health) {
		t.Errorf("%s: health accounting diverged:\n%+v\nvs\n%+v", tag, a.Health, b.Health)
	}
}

// pipelineWorkload builds a deterministic mixed read/write op stream with
// enough address reuse to exercise the wave-breaking rule.
func pipelineWorkload(n int, space uint64) []BatchOp {
	r := rng.Stream(7, "pipeline-workload", 0)
	ops := make([]BatchOp, n)
	for i := range ops {
		addr := r.Uint64n(space)
		if r.Bool(0.2) && i > 0 {
			addr = ops[i-1].Addr // forced repeat: wave must break here
		}
		ops[i] = BatchOp{Addr: addr}
		if r.Bool(0.5) {
			ops[i].Write = true
			ops[i].Data = []byte(fmt.Sprintf("op%04d@%d", i, addr))
		}
	}
	return ops
}

// runPipeline executes the workload through a fresh cluster + pipeline and
// captures the full state fingerprint. mid, when non-nil, runs between the
// two halves of the workload (fault scheduling hooks).
func runPipeline(t *testing.T, par, window int, faults *fault.Injector,
	mid func(*Cluster)) engineState {
	t.Helper()
	reg := telemetry.NewRegistry()
	c, err := NewCluster(ClusterOptions{
		SDIMMs:    4,
		Levels:    10,
		Key:       []byte("equivalence-key"),
		Seed:      23,
		Faults:    faults,
		Retry:     fault.RetryPolicy{MaxAttempts: 4, Sleep: nop},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Pipeline(PipelineOptions{Window: window, Parallelism: par})
	defer p.Close()
	ops := pipelineWorkload(240, 60)
	half := len(ops) / 2
	results := p.Do(ops[:half])
	if mid != nil {
		mid(c)
	}
	results = append(results, p.Do(ops[half:])...)
	return captureState(results, c.Positions(), c.StashLens(), reg, c.Health())
}

// TestPipelineWindowOneMatchesSequential pins the pipeline's semantics to
// the sequential Read/Write path: with Window 1 every wave is one access,
// and the RNG draw order, commit order, and append order are identical, so
// the two engines must agree bit-for-bit on everything observable.
func TestPipelineWindowOneMatchesSequential(t *testing.T) {
	ops := pipelineWorkload(240, 60)

	regSeq := telemetry.NewRegistry()
	cs, err := NewCluster(ClusterOptions{
		SDIMMs: 4, Levels: 10, Key: []byte("equivalence-key"), Seed: 23, Telemetry: regSeq,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqResults := make([]BatchResult, len(ops))
	for i, op := range ops {
		if op.Write {
			seqResults[i].Err = cs.Write(op.Addr, op.Data)
		} else {
			seqResults[i].Data, seqResults[i].Err = cs.Read(op.Addr)
		}
	}
	seq := captureState(seqResults, cs.Positions(), cs.StashLens(), regSeq, cs.Health())

	regPipe := telemetry.NewRegistry()
	cp, err := NewCluster(ClusterOptions{
		SDIMMs: 4, Levels: 10, Key: []byte("equivalence-key"), Seed: 23, Telemetry: regPipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := cp.Pipeline(PipelineOptions{Window: 1, Parallelism: 1})
	defer p.Close()
	pipe := captureState(p.Do(ops), cp.Positions(), cp.StashLens(), regPipe, cp.Health())

	diffState(t, "window-1 vs sequential", seq, pipe)
}

// TestPipelineParallelismEquivalence is the core determinism claim: a
// Parallelism: 1 pipeline and Parallelism: N pipelines produce bitwise
// identical results, position maps, stashes, telemetry, and health — for
// perfect links and for deterministic transient fault injection.
func TestPipelineParallelismEquivalence(t *testing.T) {
	for _, window := range []int{4, 8} {
		for _, faulty := range []bool{false, true} {
			mkInjector := func() *fault.Injector {
				if !faulty {
					return nil
				}
				return fault.NewInjector(fault.Config{
					Seed: 99, BitFlip: 0.01, Drop: 0.01, Duplicate: 0.01, Stall: 0.005,
				})
			}
			base := runPipeline(t, 1, window, mkInjector(), nil)
			if len(base.Positions) == 0 {
				t.Fatalf("window %d: baseline run touched no addresses", window)
			}
			for _, par := range []int{2, 4, 8} {
				tag := fmt.Sprintf("window=%d faulty=%v parallelism=%d", window, faulty, par)
				got := runPipeline(t, par, window, mkInjector(), nil)
				diffState(t, tag, base, got)
			}
		}
	}
}

// TestPipelineEquivalenceAcrossFailStop fail-stops one SDIMM between two
// batches: detection, routing-around, and the health bookkeeping must stay
// bit-identical at every parallelism.
func TestPipelineEquivalenceAcrossFailStop(t *testing.T) {
	run := func(par int) engineState {
		in := fault.NewInjector(fault.Config{Seed: 5})
		return runPipeline(t, par, 6, in, func(*Cluster) { in.FailStop(2) })
	}
	base := run(1)
	found := false
	for _, h := range base.Health {
		if h.State == fault.Failed {
			found = true
		}
	}
	if !found {
		t.Fatal("fail-stop scenario never killed an SDIMM")
	}
	for _, par := range []int{2, 4} {
		diffState(t, fmt.Sprintf("failstop parallelism=%d", par), base, run(par))
	}
}

// TestPipelineReadYourWrites checks plain correctness of the batched path:
// later reads in the same Do see earlier writes (waves break on repeats).
func TestPipelineReadYourWrites(t *testing.T) {
	c := newCluster(t, 4)
	p := c.Pipeline(PipelineOptions{Window: 8, Parallelism: 4})
	defer p.Close()
	var ops []BatchOp
	for i := uint64(0); i < 30; i++ {
		ops = append(ops, BatchOp{Addr: i, Write: true, Data: []byte(fmt.Sprintf("v%d", i))})
	}
	for i := uint64(0); i < 30; i++ {
		ops = append(ops, BatchOp{Addr: i})
	}
	res := p.Do(ops)
	for i := uint64(0); i < 30; i++ {
		r := res[30+i]
		if r.Err != nil {
			t.Fatalf("read %d: %v", i, r.Err)
		}
		want := fmt.Sprintf("v%d", i)
		if string(r.Data[:len(want)]) != want {
			t.Fatalf("read %d = %q, want %q", i, r.Data[:len(want)], want)
		}
	}
	// Same-wave write→read on one address: the repeat breaks the wave, so
	// the read must observe the committed write.
	res = p.Do([]BatchOp{
		{Addr: 500, Write: true, Data: []byte("fresh")},
		{Addr: 500},
	})
	if res[1].Err != nil || string(res[1].Data[:5]) != "fresh" {
		t.Fatalf("same-batch read-your-write: %q %v", res[1].Data[:5], res[1].Err)
	}
}

// TestPipelineOversizedWriteFails mirrors TestClusterOversizedWrite on the
// batched path.
func TestPipelineOversizedWriteFails(t *testing.T) {
	c := newCluster(t, 2)
	p := c.Pipeline(PipelineOptions{})
	defer p.Close()
	res := p.Do([]BatchOp{{Addr: 1, Write: true, Data: bytes.Repeat([]byte("x"), 65)}})
	if res[0].Err == nil {
		t.Fatal("oversized batched write accepted")
	}
}

// ---------------------------------------------------------------------------
// Split cluster fan-out equivalence.
// ---------------------------------------------------------------------------

// runSplit executes a deterministic workload on a Split cluster with the
// given fan-out parallelism, optionally failing a shard halfway through.
func runSplit(t *testing.T, par int, parity bool, failShard int) engineState {
	t.Helper()
	reg := telemetry.NewRegistry()
	c, err := NewSplitCluster(SplitClusterOptions{
		SDIMMs:      4,
		Levels:      10,
		Key:         []byte("split-equivalence-key"),
		Seed:        13,
		Parity:      parity,
		Parallelism: par,
		Telemetry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := rng.Stream(11, "split-workload", 0)
	const n = 240
	results := make([]BatchResult, n)
	for i := 0; i < n; i++ {
		if i == n/2 && failShard >= 0 {
			c.FailShard(failShard)
		}
		addr := r.Uint64n(70)
		if r.Bool(0.5) {
			results[i].Err = c.Write(addr, []byte(fmt.Sprintf("s%04d@%d", i, addr)))
		} else {
			results[i].Data, results[i].Err = c.Read(addr)
		}
	}
	return captureState(results, c.Positions(), c.StashLens(), reg, c.Health())
}

// TestSplitParallelismEquivalence: the Split fan-out path must evolve
// bit-identically at any parallelism, with and without a parity member,
// including across a mid-run shard loss with XOR reconstruction.
func TestSplitParallelismEquivalence(t *testing.T) {
	cases := []struct {
		name      string
		parity    bool
		failShard int
	}{
		{"plain", false, -1},
		{"parity", true, -1},
		{"parity-shard-loss", true, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runSplit(t, 1, tc.parity, tc.failShard)
			if len(base.Positions) == 0 {
				t.Fatal("baseline split run touched no addresses")
			}
			if tc.failShard >= 0 {
				recon := base.Telemetry.Counters["cluster.reconstructions"]
				if recon == 0 {
					t.Fatal("shard-loss scenario never reconstructed")
				}
			}
			for _, par := range []int{2, 4, 8} {
				diffState(t, fmt.Sprintf("%s parallelism=%d", tc.name, par),
					base, runSplit(t, par, tc.parity, tc.failShard))
			}
		})
	}
}
