module sdimm

go 1.22
