package sdimm

import (
	"flag"
	"fmt"
	"reflect"
	"testing"

	"sdimm/internal/fault"
	"sdimm/internal/oram"
	"sdimm/internal/rng"
	"sdimm/internal/telemetry"
)

// The pipeline soak is the long-run randomized stress wall around the
// decoupled engine: randomized window sizes, mixed read/write/migrate
// streams, seeded transient faults and fail-stops, all compared bitwise
// against a parallelism-1 run of the identical schedule. Three tiers:
//
//	go test -short          a couple of scenarios (CI smoke, in `make ci`)
//	go test                 the default handful (also under `make race`)
//	go test -soak.long      the full sweep (`make soak`)
var soakLong = flag.Bool("soak.long", false, "run the full-size pipeline soak sweep")

// soakWorkload builds a deterministic mixed op stream: ~10% migration steps
// (read-shaped rebalance ops, as NextMigrations batches would produce), an
// even read/write split for the rest, and forced address repeats so waves
// break mid-stream.
func soakWorkload(r *rng.Source, n int, space uint64) []BatchOp {
	ops := make([]BatchOp, n)
	for i := range ops {
		addr := r.Uint64n(space)
		if i > 0 && r.Bool(0.2) {
			addr = ops[i-1].Addr // forced repeat: wave must break here
		}
		op := BatchOp{Addr: addr}
		switch {
		case r.Bool(0.1):
			op.Migrate = true
		case r.Bool(0.5):
			op.Write = true
			op.Data = []byte(fmt.Sprintf("soak%06d@%d", i, addr))
		}
		ops[i] = op
	}
	return ops
}

// soakScenario is one randomized pipeline configuration under test.
type soakScenario struct {
	seed     uint64
	window   int
	batches  int
	faulty   bool
	failStop int // member to fail-stop before the middle batch; -1 none
	ring     int // ring-eviction flush interval A; 0 = Path ORAM engines
}

func (sc soakScenario) String() string {
	return fmt.Sprintf("window=%d batches=%d faulty=%v failstop=%d ring=%d",
		sc.window, sc.batches, sc.faulty, sc.failStop, sc.ring)
}

// runSoak executes ops through a fresh cluster + pipeline at the given
// parallelism and captures the full state fingerprint.
func runSoak(t *testing.T, sc soakScenario, ops []BatchOp, par int) engineState {
	t.Helper()
	reg := telemetry.NewRegistry()
	var inj *fault.Injector
	if sc.faulty || sc.failStop >= 0 {
		cfg := fault.Config{Seed: sc.seed ^ 0xfa017}
		if sc.faulty {
			cfg.BitFlip, cfg.Drop, cfg.Duplicate, cfg.Stall = 0.01, 0.01, 0.01, 0.005
		}
		inj = fault.NewInjector(cfg)
	}
	c, err := NewCluster(ClusterOptions{
		SDIMMs:            4,
		Levels:            10,
		RingFlushInterval: sc.ring,
		Key:               []byte("soak-key"),
		Seed:              sc.seed,
		Faults:            inj,
		Retry:             fault.RetryPolicy{MaxAttempts: 4, Sleep: nop},
		Telemetry:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Pipeline(PipelineOptions{Window: sc.window, Parallelism: par})
	defer p.Close()

	var results []BatchResult
	per := (len(ops) + sc.batches - 1) / sc.batches
	for b := 0; b < sc.batches; b++ {
		lo := b * per
		hi := min(lo+per, len(ops))
		if lo >= hi {
			break
		}
		if sc.failStop >= 0 && b == sc.batches/2 {
			inj.FailStop(sc.failStop)
		}
		results = append(results, p.Do(ops[lo:hi])...)
	}
	return captureState(results, c.Positions(), c.StashLens(), reg, c.Health())
}

// TestPipelineSoak sweeps randomized scenarios — window size, batch split,
// fault profile, fail-stop member — and demands bitwise equivalence between
// parallelism 1 and parallelism 2/4/8 on every one: results, error strings,
// final position map, stash occupancy, telemetry, and health accounting.
// Run under -race in CI; the equivalence check doubles as the memory-model
// audit of the overlapped pipeline.
func TestPipelineSoak(t *testing.T) {
	scenarios, opsPer, space := 4, 240, uint64(64)
	switch {
	case *soakLong:
		scenarios, opsPer, space = 16, 1000, 96
	case testing.Short():
		scenarios, opsPer = 2, 120
	}
	for s := 0; s < scenarios; s++ {
		s := s
		t.Run(fmt.Sprintf("scenario-%02d", s), func(t *testing.T) {
			r := rng.Stream(1789, "pipeline-soak", s)
			sc := soakScenario{
				seed:     r.Uint64n(1 << 62),
				window:   1 + int(r.Uint64n(12)),
				batches:  2 + int(r.Uint64n(3)),
				faulty:   r.Bool(0.5),
				failStop: -1,
			}
			if r.Bool(0.33) {
				sc.failStop = int(r.Uint64n(4))
			}
			ops := soakWorkload(r, opsPer, space)

			base := runSoak(t, sc, ops, 1)
			if len(base.Positions) == 0 {
				t.Fatalf("%v: baseline run touched no addresses", sc)
			}
			for _, par := range []int{2, 4, 8} {
				got := runSoak(t, sc, ops, par)
				diffState(t, fmt.Sprintf("%v parallelism=%d", sc, par), base, got)
			}
		})
	}
}

// TestPipelineSoakWindowOneMatchesSequential pins the mixed-stream pipeline
// (including migration steps) to the sequential path: with Window 1 every
// wave is one access, and the RNG draw order, commit order, journal bytes,
// and migration accounting are identical, so a sequential runner mirroring
// DrainStep's bookkeeping must agree bit-for-bit on everything observable.
func TestPipelineSoakWindowOneMatchesSequential(t *testing.T) {
	r := rng.Stream(4241, "pipeline-soak-seq", 0)
	ops := soakWorkload(r, 240, 56)

	regSeq := telemetry.NewRegistry()
	cs, err := NewCluster(ClusterOptions{
		SDIMMs: 4, Levels: 10, Key: []byte("soak-key"), Seed: 77, Telemetry: regSeq,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqResults := make([]BatchResult, len(ops))
	for i, op := range ops {
		switch {
		case op.Migrate:
			// Mirror DrainStep's accounting: a migration is a read-shaped
			// access whose payload is not delivered, counted under
			// cluster.migrations instead of the workload observers.
			cs.migrating = true
			_, err := cs.tracedAccess(op.Addr, oram.OpRead, nil)
			cs.migrating = false
			if err == nil {
				cs.tm.migrations.Inc()
			}
			seqResults[i].Err = err
		case op.Write:
			seqResults[i].Err = cs.Write(op.Addr, op.Data)
		default:
			seqResults[i].Data, seqResults[i].Err = cs.Read(op.Addr)
		}
	}
	seq := captureState(seqResults, cs.Positions(), cs.StashLens(), regSeq, cs.Health())

	regPipe := telemetry.NewRegistry()
	cp, err := NewCluster(ClusterOptions{
		SDIMMs: 4, Levels: 10, Key: []byte("soak-key"), Seed: 77, Telemetry: regPipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := cp.Pipeline(PipelineOptions{Window: 1, Parallelism: 1})
	defer p.Close()
	pipe := captureState(p.Do(ops), cp.Positions(), cp.StashLens(), regPipe, cp.Health())

	diffState(t, "soak window-1 vs sequential", seq, pipe)
}

// TestPipelineSoakCrashEquivalence drives a durable pipeline into a planned
// mid-stream crash — torn inside a multi-record wave group — at parallelism
// 1 and 4, and demands both runs report identical per-op outcomes, recover
// to identical position maps, and read back identical contents. The crash
// lands while the next wave's exchanges are already in flight, so this is
// the overlap's crash-semantics witness.
func TestPipelineSoakCrashEquivalence(t *testing.T) {
	r := rng.Stream(55, "pipeline-soak-crash", 0)
	ops := soakWorkload(r, 200, 48)

	run := func(par int) (errs []string, pos map[uint64]uint64, sweep [][]byte) {
		opts := ClusterOptions{
			SDIMMs: 4, Levels: 10, Key: []byte("soak-crash-key"), Seed: 31,
			Durability: &DurabilityOptions{Dir: t.TempDir(), Interval: 32},
		}
		c, err := NewCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.PlanCrash(97, 9); err != nil {
			t.Fatal(err)
		}
		p := c.Pipeline(PipelineOptions{Window: 6, Parallelism: par})
		res := p.Do(ops)
		p.Close()
		c.Close()
		for i, rr := range res {
			if rr.Err != nil {
				errs = append(errs, fmt.Sprintf("%d: %s", i, rr.Err))
			}
		}
		rc, _, err := RecoverCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		for a := uint64(0); a < 48; a++ {
			d, err := rc.Read(a)
			if err != nil {
				d = []byte("err: " + err.Error())
			}
			sweep = append(sweep, d)
		}
		return errs, rc.Positions(), sweep
	}

	e1, p1, s1 := run(1)
	if len(e1) == 0 {
		t.Fatal("planned crash produced no failed ops")
	}
	e4, p4, s4 := run(4)
	if !reflect.DeepEqual(e1, e4) {
		t.Errorf("crash outcomes diverged across parallelism:\n--- par 1 ---\n%v\n--- par 4 ---\n%v", e1, e4)
	}
	if !reflect.DeepEqual(p1, p4) {
		t.Errorf("recovered position maps diverged (%d vs %d entries)", len(p1), len(p4))
	}
	if !reflect.DeepEqual(s1, s4) {
		t.Errorf("recovered contents diverged")
	}
}

// TestPipelineSoakRing runs the parallelism-equivalence wall over
// ring-eviction clusters: the deferred-flush engines add per-member state
// (eviction pointer, pending-flush countdown, invalid-slot masks) that the
// waves must keep in the exact sequential order, so a par-1 run and a par-4
// run of the same schedule must still agree bit for bit on everything
// captureState fingerprints. Scenarios cover both a clean run and a faulty
// one with a mid-stream fail-stop.
func TestPipelineSoakRing(t *testing.T) {
	cases := []soakScenario{
		{window: 6, batches: 3, ring: 4, failStop: -1},
		{window: 9, batches: 2, ring: 4, faulty: true, failStop: 2},
		{window: 3, batches: 4, ring: 8, failStop: -1},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	for i, sc := range cases {
		sc.seed = uint64(9000 + 13*i)
		t.Run(sc.String(), func(t *testing.T) {
			r := rng.Stream(sc.seed, "pipeline-soak-ring", i)
			ops := soakWorkload(r, 240, 64)
			base := runSoak(t, sc, ops, 1)
			if len(base.Positions) == 0 {
				t.Fatalf("%v: baseline run touched no addresses", sc)
			}
			for _, par := range []int{2, 4} {
				got := runSoak(t, sc, ops, par)
				diffState(t, fmt.Sprintf("%v parallelism=%d", sc, par), base, got)
			}
		})
	}
}

// TestPipelineSoakRingCrashEquivalence is the ring leg of the planned-crash
// wall: the checkpoint now carries live ring-eviction state, and a recovery
// that dropped or misdecoded it would shift every later flush — so the
// recovered position maps and contents at parallelism 1 and 4 must still be
// identical, and identical to each other.
func TestPipelineSoakRingCrashEquivalence(t *testing.T) {
	r := rng.Stream(56, "pipeline-soak-ring-crash", 0)
	ops := soakWorkload(r, 200, 48)

	run := func(par int) (errs []string, pos map[uint64]uint64, sweep [][]byte) {
		opts := ClusterOptions{
			SDIMMs: 4, Levels: 10, RingFlushInterval: 4,
			Key: []byte("soak-crash-key"), Seed: 31,
			Durability: &DurabilityOptions{Dir: t.TempDir(), Interval: 32},
		}
		c, err := NewCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.PlanCrash(97, 9); err != nil {
			t.Fatal(err)
		}
		p := c.Pipeline(PipelineOptions{Window: 6, Parallelism: par})
		res := p.Do(ops)
		p.Close()
		c.Close()
		for i, rr := range res {
			if rr.Err != nil {
				errs = append(errs, fmt.Sprintf("%d: %s", i, rr.Err))
			}
		}
		rc, _, err := RecoverCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		for a := uint64(0); a < 48; a++ {
			d, err := rc.Read(a)
			if err != nil {
				d = []byte("err: " + err.Error())
			}
			sweep = append(sweep, d)
		}
		return errs, rc.Positions(), sweep
	}

	e1, p1, s1 := run(1)
	if len(e1) == 0 {
		t.Fatal("planned crash produced no failed ops")
	}
	e4, p4, s4 := run(4)
	if !reflect.DeepEqual(e1, e4) {
		t.Errorf("ring crash outcomes diverged across parallelism:\n--- par 1 ---\n%v\n--- par 4 ---\n%v", e1, e4)
	}
	if !reflect.DeepEqual(p1, p4) {
		t.Errorf("recovered ring position maps diverged (%d vs %d entries)", len(p1), len(p4))
	}
	if !reflect.DeepEqual(s1, s4) {
		t.Errorf("recovered ring contents diverged")
	}
}
