package sdimm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T) *ORAM {
	t.Helper()
	o, err := NewORAM(ORAMOptions{Levels: 10, Key: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestORAMDefaults(t *testing.T) {
	o := newStore(t)
	if o.BlockSize() != 64 {
		t.Fatalf("block size %d", o.BlockSize())
	}
	if o.Capacity() == 0 {
		t.Fatal("zero capacity")
	}
}

func TestORAMValidation(t *testing.T) {
	if _, err := NewORAM(ORAMOptions{Levels: 0}); err == nil {
		t.Fatal("zero levels accepted")
	}
}

func TestORAMReadYourWrites(t *testing.T) {
	o := newStore(t)
	if err := o.Write(3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "hello" {
		t.Fatalf("read %q", got[:5])
	}
	// Unwritten block reads as zeros.
	got, err = o.Read(999)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestORAMOversizedWriteRejected(t *testing.T) {
	o := newStore(t)
	if err := o.Write(1, make([]byte, 65)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestORAMPropertyRoundTrip(t *testing.T) {
	o := newStore(t)
	ref := map[uint64][]byte{}
	f := func(addr uint64, data [32]byte) bool {
		addr %= 200
		if err := o.Write(addr, data[:]); err != nil {
			return false
		}
		ref[addr] = append([]byte(nil), data[:]...)
		got, err := o.Read(addr)
		if err != nil {
			return false
		}
		return bytes.Equal(got[:32], ref[addr])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	if o.StashLen() > 200 {
		t.Fatalf("stash grew to %d", o.StashLen())
	}
}

func TestWorkloadsListsTen(t *testing.T) {
	ws := Workloads()
	if len(ws) != 10 {
		t.Fatalf("%d workloads", len(ws))
	}
}

func TestSimulateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg := DefaultConfig(NonSecure, 1)
	cfg.ORAM.Levels = 20
	cfg.WarmupAccesses = 50
	cfg.MeasureAccesses = 100
	res, err := Simulate(cfg, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredCycles == 0 {
		t.Fatal("no cycles measured")
	}
}

func TestSimulateRejectsBadWorkload(t *testing.T) {
	cfg := DefaultConfig(NonSecure, 1)
	if _, err := Simulate(cfg, "nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRecursiveORAMRoundTrip(t *testing.T) {
	r, err := NewRecursiveORAM(RecursiveORAMOptions{
		DataBlocks: 2048,
		Levels:     12,
		Key:        []byte("k"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		if err := r.Write(i, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 32; i++ {
		got, err := r.Read(i)
		if err != nil || got[0] != byte(i+1) {
			t.Fatalf("read %d = %v, %v", i, got[0], err)
		}
	}
	if r.AccessesPerOp() < 1 {
		t.Fatalf("AccessesPerOp = %v", r.AccessesPerOp())
	}
}

func TestRecursiveORAMValidation(t *testing.T) {
	if _, err := NewRecursiveORAM(RecursiveORAMOptions{DataBlocks: 1 << 30, Levels: 8}); err == nil {
		t.Fatal("overfull tree accepted")
	}
}
