package durable

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// checkpointMagic identifies a checkpoint file (version 3: version 2 plus
// per-member ring-eviction state — the eviction pointer, flush phase, and
// dead-slot masks of ring-mode engines; empty for path-mode members).
const checkpointMagic = "SDIMMCP3"

// checkpointMACSize is the untruncated HMAC-SHA256 trailer over the whole
// file body. Checkpoints are read once per recovery, so the full 32 bytes
// cost nothing and leave no forgery margin.
const checkpointMACSize = sha256.Size

// maxCheckpointBody bounds how large a body a decoder will believe, so a
// corrupted length field cannot drive allocation.
const maxCheckpointBody = 1 << 30

// PosEntry is one position-map binding. For the Independent protocol Value
// encodes the global leaf (SDIMM routing included); for Split it is the
// shared local leaf.
type PosEntry struct {
	Addr  uint64
	Value uint64
}

// BlockState is one ORAM block held outside the tree (stash or transfer
// queue) at checkpoint time.
type BlockState struct {
	Addr uint64
	Leaf uint64
	Data []byte
}

// BucketState is one sealed tree bucket, captured verbatim from the store
// (counter || ciphertext || PMMAC tag). Restoring the raw form keeps the
// at-rest MACs intact so the recovery scrub can re-verify every bucket.
type BucketState struct {
	Idx uint64
	Raw []byte
}

// HealthState snapshots one member's fault state machine.
type HealthState struct {
	State       int
	Consecutive int
	Successes   uint64
	Failures    uint64
}

// MemberState is everything mutable inside one SDIMM plus its host-side
// session: RNG streams, stash, transfer queue, sealed buckets, health, and
// the seccomm send/receive counters of both link endpoints.
type MemberState struct {
	EngineRNG [4]uint64
	BufferRNG [4]uint64
	Stash     []BlockState  // sorted by Addr
	Transfer  []BlockState  // queue order (head first)
	Buckets   []BucketState // sorted by Idx
	Health    HealthState
	HostSend  uint64
	HostRecv  uint64
	DevSend   uint64
	DevRecv   uint64
	// Incarnation counts how many times this slot has been (re)populated:
	// 0 for the founding member, +1 per join. Join replay derives the fresh
	// member's seeds from (cluster seed, slot, incarnation), so a recovered
	// run rebuilds bit-identical members.
	Incarnation uint64
	// Detached marks a slot whose member was removed and not yet replaced.
	// A detached slot holds no blocks and serves no exchanges.
	Detached bool
	// Ring is the engine's opaque ring-eviction snapshot (oram.RingSnapshot):
	// eviction pointer, flush phase, and dead-slot masks. Empty for
	// path-mode members; the engine validates it on restore.
	Ring []byte
}

// DrainState is one in-progress drain: how many migration steps have
// committed for the member being drained. Completed drains leave the list.
type DrainState struct {
	Member uint64 // slot index being drained
	Moved  uint64 // migration records committed for this drain
}

// Checkpoint is the full recoverable state of a cluster at sequence Seq
// (Seq = number of committed logical records: workload accesses plus
// migration and topology records).
type Checkpoint struct {
	FP        [8]byte
	Seq       uint64
	RNG       [4]uint64  // cluster-level coordinator RNG
	Positions []PosEntry // sorted by Addr
	Members   []MemberState
	Poisoned  []uint64     // sorted addrs lost to unrecoverable corruption
	MigSeq    uint64       // lifetime count of committed migration records
	TopoSeq   uint64       // lifetime count of committed topology records
	Drains    []DrainState // sorted by Member
}

// --- encoding ---

type byteWriter struct{ b []byte }

func (w *byteWriter) u8(v byte)    { w.b = append(w.b, v) }
func (w *byteWriter) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *byteWriter) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *byteWriter) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}
func (w *byteWriter) rng(s [4]uint64) {
	for _, v := range s {
		w.u64(v)
	}
}

func (w *byteWriter) block(b BlockState) {
	w.u64(b.Addr)
	w.u64(b.Leaf)
	w.bytes(b.Data)
}

// encodeCheckpoint serializes and authenticates a checkpoint.
func encodeCheckpoint(key []byte, cp *Checkpoint) []byte {
	var w byteWriter
	w.b = append(w.b, cp.FP[:]...)
	w.u64(cp.Seq)
	w.rng(cp.RNG)
	w.u32(uint32(len(cp.Positions)))
	for _, p := range cp.Positions {
		w.u64(p.Addr)
		w.u64(p.Value)
	}
	w.u32(uint32(len(cp.Members)))
	for _, m := range cp.Members {
		w.rng(m.EngineRNG)
		w.rng(m.BufferRNG)
		w.u32(uint32(len(m.Stash)))
		for _, b := range m.Stash {
			w.block(b)
		}
		w.u32(uint32(len(m.Transfer)))
		for _, b := range m.Transfer {
			w.block(b)
		}
		w.u32(uint32(len(m.Buckets)))
		for _, b := range m.Buckets {
			w.u64(b.Idx)
			w.bytes(b.Raw)
		}
		w.u32(uint32(m.Health.State))
		w.u32(uint32(m.Health.Consecutive))
		w.u64(m.Health.Successes)
		w.u64(m.Health.Failures)
		w.u64(m.HostSend)
		w.u64(m.HostRecv)
		w.u64(m.DevSend)
		w.u64(m.DevRecv)
		w.u64(m.Incarnation)
		if m.Detached {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.bytes(m.Ring)
	}
	w.u32(uint32(len(cp.Poisoned)))
	for _, a := range cp.Poisoned {
		w.u64(a)
	}
	w.u64(cp.MigSeq)
	w.u64(cp.TopoSeq)
	w.u32(uint32(len(cp.Drains)))
	for _, d := range cp.Drains {
		w.u64(d.Member)
		w.u64(d.Moved)
	}
	body := w.b

	out := make([]byte, 0, 8+8+len(body)+checkpointMACSize)
	out = append(out, checkpointMagic...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(body)))
	out = append(out, body...)
	m := hmac.New(sha256.New, key)
	m.Write(out)
	return m.Sum(out)
}

// --- decoding ---

var errCheckpointCorrupt = errors.New("durable: corrupt checkpoint")

type byteReader struct{ b []byte }

func (r *byteReader) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, errCheckpointCorrupt
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *byteReader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, errCheckpointCorrupt
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *byteReader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errCheckpointCorrupt
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *byteReader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(len(r.b)) {
		return nil, errCheckpointCorrupt
	}
	p := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return p, nil
}

func (r *byteReader) rng() (s [4]uint64, err error) {
	for i := range s {
		if s[i], err = r.u64(); err != nil {
			return s, err
		}
	}
	return s, nil
}

// count reads a list length and rejects counts that could not possibly fit
// in the remaining bytes at minSize bytes per entry (allocation guard).
func (r *byteReader) count(minSize int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if uint64(n)*uint64(minSize) > uint64(len(r.b)) {
		return 0, errCheckpointCorrupt
	}
	return int(n), nil
}

func (r *byteReader) block() (BlockState, error) {
	var b BlockState
	var err error
	if b.Addr, err = r.u64(); err != nil {
		return b, err
	}
	if b.Leaf, err = r.u64(); err != nil {
		return b, err
	}
	b.Data, err = r.bytes()
	return b, err
}

func (r *byteReader) blockList() ([]BlockState, error) {
	n, err := r.count(8 + 8 + 4)
	if err != nil {
		return nil, err
	}
	out := make([]BlockState, n)
	for i := range out {
		if out[i], err = r.block(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeCheckpoint authenticates and parses a checkpoint file. Any
// truncation, trailing garbage, or MAC failure rejects the whole file —
// recovery then falls back to the previous checkpoint.
func decodeCheckpoint(key, data []byte) (*Checkpoint, error) {
	if len(data) < 8+8+checkpointMACSize {
		return nil, errors.New("durable: checkpoint shorter than envelope")
	}
	if string(data[:8]) != checkpointMagic {
		return nil, errors.New("durable: bad checkpoint magic")
	}
	bodyLen := binary.BigEndian.Uint64(data[8:16])
	if bodyLen > maxCheckpointBody || uint64(len(data)) != 16+bodyLen+checkpointMACSize {
		return nil, errors.New("durable: checkpoint length mismatch")
	}
	macOff := 16 + bodyLen
	m := hmac.New(sha256.New, key)
	m.Write(data[:macOff])
	if !hmac.Equal(m.Sum(nil), data[macOff:]) {
		return nil, errors.New("durable: checkpoint failed authentication")
	}

	r := &byteReader{b: data[16:macOff]}
	cp := &Checkpoint{}
	if len(r.b) < 8 {
		return nil, errCheckpointCorrupt
	}
	copy(cp.FP[:], r.b[:8])
	r.b = r.b[8:]
	var err error
	if cp.Seq, err = r.u64(); err != nil {
		return nil, err
	}
	if cp.RNG, err = r.rng(); err != nil {
		return nil, err
	}
	nPos, err := r.count(16)
	if err != nil {
		return nil, err
	}
	cp.Positions = make([]PosEntry, nPos)
	for i := range cp.Positions {
		if cp.Positions[i].Addr, err = r.u64(); err != nil {
			return nil, err
		}
		if cp.Positions[i].Value, err = r.u64(); err != nil {
			return nil, err
		}
	}
	nMem, err := r.count(32 + 32 + 3*4 + 2*4 + 2*8 + 4*8 + 8 + 1 + 4)
	if err != nil {
		return nil, err
	}
	cp.Members = make([]MemberState, nMem)
	for i := range cp.Members {
		m := &cp.Members[i]
		if m.EngineRNG, err = r.rng(); err != nil {
			return nil, err
		}
		if m.BufferRNG, err = r.rng(); err != nil {
			return nil, err
		}
		if m.Stash, err = r.blockList(); err != nil {
			return nil, err
		}
		if m.Transfer, err = r.blockList(); err != nil {
			return nil, err
		}
		nBk, err := r.count(8 + 4)
		if err != nil {
			return nil, err
		}
		m.Buckets = make([]BucketState, nBk)
		for j := range m.Buckets {
			if m.Buckets[j].Idx, err = r.u64(); err != nil {
				return nil, err
			}
			if m.Buckets[j].Raw, err = r.bytes(); err != nil {
				return nil, err
			}
		}
		st, err := r.u32()
		if err != nil {
			return nil, err
		}
		m.Health.State = int(st)
		cons, err := r.u32()
		if err != nil {
			return nil, err
		}
		m.Health.Consecutive = int(cons)
		if m.Health.Successes, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Health.Failures, err = r.u64(); err != nil {
			return nil, err
		}
		if m.HostSend, err = r.u64(); err != nil {
			return nil, err
		}
		if m.HostRecv, err = r.u64(); err != nil {
			return nil, err
		}
		if m.DevSend, err = r.u64(); err != nil {
			return nil, err
		}
		if m.DevRecv, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Incarnation, err = r.u64(); err != nil {
			return nil, err
		}
		det, err := r.u8()
		if err != nil {
			return nil, err
		}
		if det > 1 {
			return nil, errCheckpointCorrupt
		}
		m.Detached = det == 1
		if m.Ring, err = r.bytes(); err != nil {
			return nil, err
		}
	}
	nPoison, err := r.count(8)
	if err != nil {
		return nil, err
	}
	cp.Poisoned = make([]uint64, nPoison)
	for i := range cp.Poisoned {
		if cp.Poisoned[i], err = r.u64(); err != nil {
			return nil, err
		}
	}
	if cp.MigSeq, err = r.u64(); err != nil {
		return nil, err
	}
	if cp.TopoSeq, err = r.u64(); err != nil {
		return nil, err
	}
	nDrain, err := r.count(16)
	if err != nil {
		return nil, err
	}
	cp.Drains = make([]DrainState, nDrain)
	for i := range cp.Drains {
		if cp.Drains[i].Member, err = r.u64(); err != nil {
			return nil, err
		}
		if cp.Drains[i].Moved, err = r.u64(); err != nil {
			return nil, err
		}
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes after checkpoint body", len(r.b))
	}
	return cp, nil
}
