package durable

import (
	"bytes"
	"testing"

	"sdimm/internal/raceflag"
)

// TestJournalAppendZeroAlloc is the allocation gate for the commit path:
// encoding a record, extending the hash chain, and writing the journal must
// reuse the manager's scratch — every committed access pays this cost.
func TestJournalAppendZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc gates run without -race")
	}
	m := testManager(t, t.TempDir())
	if err := m.WriteCheckpoint(testCheckpoint(0)); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 32)
	var batch [1]Record
	seq := uint64(1)
	append1 := func() {
		k := KindRead
		if seq%2 == 0 {
			k = KindWrite
		}
		batch[0] = Record{Seq: seq, Addr: seq % 8, Kind: k, Data: payload}
		if err := m.Append(batch[:]); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	// Warm-up grows the record scratch to steady-state size.
	for i := 0; i < 64; i++ {
		append1()
	}
	if allocs := testing.AllocsPerRun(200, append1); allocs != 0 {
		t.Fatalf("Manager.Append allocates %.1f objects per record in steady state, want 0", allocs)
	}
}
