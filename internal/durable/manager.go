package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sdimm/internal/integrity"
)

// ErrCrashed is returned by every durable operation after a planned crash
// point fires (or once the manager is torn down by one). The cluster treats
// it as fail-stop: the process is "dead" and must be recovered from disk.
var ErrCrashed = errors.New("durable: simulated crash")

// Fingerprint identifies the cluster shape a state directory belongs to.
// Recovery refuses to load state written by a differently-shaped cluster —
// a mismatched geometry would deserialize cleanly and then corrupt silently.
type Fingerprint struct {
	Kind      string // "independent" or "split"
	Members   int
	Levels    int
	BlockSize int
	Z         int
	Seed      uint64
	Parity    bool
}

// Hash condenses the fingerprint into the 8 bytes embedded in every file
// header. FNV-1a over the printed form is plenty: this is an operator
// mistake detector, not a security boundary (the HMACs are).
func (f Fingerprint) Hash() [8]byte {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%d|%t", f.Kind, f.Members, f.Levels, f.BlockSize, f.Z, f.Seed, f.Parity)
	var out [8]byte
	h.Sum(out[:0])
	return out
}

// RecoveryReport summarizes what Recover (and the cluster-level scrub pass
// that follows it) did, for operator runbooks and tests.
type RecoveryReport struct {
	CheckpointSeq        uint64   // seq of the checkpoint actually loaded
	CheckpointsSkipped   int      // newer checkpoints rejected as invalid
	RecordsReplayed      int      // journal records replayed on top
	TornTail             bool     // journal ended mid-group (expected after a crash)
	BucketsScanned       int      // scrub: sealed buckets verified
	BucketsRepaired      int      // scrub: buckets rebuilt from parity
	BucketsUnrecoverable int      // scrub: buckets with no redundancy left
	Poisoned             []uint64 // addrs newly lost to unrecoverable buckets
}

// Manager owns one cluster's state directory: the rotating checkpoint files
// (checkpoint-<seq>.ckpt) and the journal that continues each checkpoint
// (journal-<seq>.wal). All methods are safe for concurrent use, though the
// cluster serializes commits itself.
type Manager struct {
	mu        sync.Mutex
	dir       string
	key       []byte
	fp        [8]byte
	blockSize int
	fsync     bool

	jf      *os.File
	chain   *integrity.Chain
	nextSeq uint64 // seq the next appended record must carry
	ckpt    uint64 // seq of the newest checkpoint written/loaded

	crashAfter int // records until the planned crash; -1 when disarmed
	tearBytes  int
	crashed    bool

	recBuf []byte // reusable encoded-record scratch (body + chain tag)
}

// Open attaches a manager to dir, creating it if needed. key authenticates
// every file; fp pins the cluster shape; fsync controls whether commits hit
// stable storage before returning (off keeps seeded chaos sweeps fast).
func Open(dir string, key []byte, fp Fingerprint, blockSize int, fsync bool) (*Manager, error) {
	if blockSize <= 0 || blockSize > maxJournalBlockSize {
		return nil, fmt.Errorf("durable: block size %d out of range", blockSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create state dir: %w", err)
	}
	return &Manager{
		dir:        dir,
		key:        append([]byte(nil), key...),
		fp:         fp.Hash(),
		blockSize:  blockSize,
		fsync:      fsync,
		crashAfter: -1,
	}, nil
}

func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016x.ckpt", seq))
}

func journalPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%016x.wal", seq))
}

// checkpointSeqs lists the base sequence numbers of all checkpoint files in
// dir, ascending.
func checkpointSeqs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "checkpoint-%016x.ckpt", &seq); n == 1 {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// HasState reports whether dir already holds checkpoints. NewCluster uses
// it to refuse to clobber a recoverable directory.
func (m *Manager) HasState() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	seqs, err := checkpointSeqs(m.dir)
	return err == nil && len(seqs) > 0
}

// LastSeq returns the sequence number of the last committed record.
func (m *Manager) LastSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextSeq - 1
}

// WriteCheckpoint atomically persists cp, rotates the journal to a fresh
// file based at cp.Seq, and prunes files made redundant. On return the
// checkpoint alone reproduces all state up to and including access cp.Seq.
func (m *Manager) WriteCheckpoint(cp *Checkpoint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	cp.FP = m.fp
	enc := encodeCheckpoint(m.key, cp)
	final := checkpointPath(m.dir, cp.Seq)
	tmp := final + ".tmp"
	if err := m.writeFile(tmp, enc); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: publish checkpoint: %w", err)
	}

	// Rotate the journal: everything up to cp.Seq is now in the checkpoint.
	if m.jf != nil {
		m.jf.Close()
		m.jf = nil
	}
	jf, err := os.Create(journalPath(m.dir, cp.Seq))
	if err != nil {
		return fmt.Errorf("durable: open journal: %w", err)
	}
	hdr, mac := encodeJournalHeader(m.key, m.fp, cp.Seq, m.blockSize)
	if _, err := jf.Write(hdr); err != nil {
		jf.Close()
		return fmt.Errorf("durable: write journal header: %w", err)
	}
	if m.fsync {
		if err := jf.Sync(); err != nil {
			jf.Close()
			return fmt.Errorf("durable: sync journal header: %w", err)
		}
	}
	m.jf = jf
	m.chain = integrity.NewChain(m.key, mac)
	m.nextSeq = cp.Seq + 1
	m.ckpt = cp.Seq
	m.prune(cp.Seq)
	return nil
}

// prune removes files that can no longer matter: all but the newest two
// checkpoints (the newest plus one fallback), and journals older than the
// fallback checkpoint's base.
func (m *Manager) prune(newest uint64) {
	seqs, err := checkpointSeqs(m.dir)
	if err != nil {
		return
	}
	keepFrom := newest
	if len(seqs) >= 2 {
		keepFrom = seqs[len(seqs)-2]
	}
	for _, s := range seqs {
		if len(seqs) > 2 && s < keepFrom {
			os.Remove(checkpointPath(m.dir, s))
		}
	}
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "journal-%016x.wal", &seq); n == 1 && seq < keepFrom {
			os.Remove(filepath.Join(m.dir, e.Name()))
		}
	}
}

// writeFile writes data to path, syncing when the manager is in fsync mode.
func (m *Manager) writeFile(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("durable: create %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: write %s: %w", filepath.Base(path), err)
	}
	if m.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("durable: sync %s: %w", filepath.Base(path), err)
		}
	}
	return f.Close()
}

// Append commits a batch of records to the journal as one chained group
// (one group per pipeline wave; a singleton group per sequential access), so
// the HMAC chain extension is paid once per batch rather than once per
// record. Records must continue the committed sequence exactly. When a
// planned crash point falls inside the batch, the records before it are
// sealed as their own group (they were "written" before the crash), the
// group holding the crash record is torn mid-group, the manager dies, and
// ErrCrashed is returned — records before the tear are durable and
// recoverable, the torn group is not.
func (m *Manager) Append(recs []Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if m.jf == nil {
		return errors.New("durable: append with no open journal (write a checkpoint first)")
	}
	if len(recs) == 0 {
		return nil
	}
	for i, rec := range recs {
		if rec.Seq != m.nextSeq+uint64(i) {
			return fmt.Errorf("durable: append seq %d, want %d", rec.Seq, m.nextSeq+uint64(i))
		}
	}
	if m.crashAfter >= 0 && m.crashAfter < len(recs) {
		// The crash point falls inside this batch: seal the records before it
		// as a complete (durable) group, then tear the group carrying the
		// crash record and die.
		k := m.crashAfter
		if k > 0 {
			if err := m.writeGroup(recs[:k]); err != nil {
				return err
			}
			m.nextSeq += uint64(k)
		}
		full, err := m.encodeGroup(recs[k:])
		if err != nil {
			return err
		}
		tear := m.tearBytes
		if tear > len(full) {
			tear = len(full)
		}
		m.jf.Write(full[:tear])
		m.jf.Close()
		m.jf = nil
		m.crashed = true
		return ErrCrashed
	}
	if m.crashAfter > 0 {
		m.crashAfter -= len(recs)
	}
	if err := m.writeGroup(recs); err != nil {
		return err
	}
	m.nextSeq += uint64(len(recs))
	if m.fsync {
		if err := m.jf.Sync(); err != nil {
			return fmt.Errorf("durable: sync journal: %w", err)
		}
	}
	return nil
}

// encodeGroup serializes recs as one wire group — count prefix, record
// bodies, one chain tag over all of it — reusing the manager's scratch
// buffer. Calling it advances the chain, so the group must then be written
// (or deliberately torn).
func (m *Manager) encodeGroup(recs []Record) ([]byte, error) {
	buf := append(m.recBuf[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(recs)))
	var err error
	for _, rec := range recs {
		if buf, err = appendRecord(buf, rec, m.blockSize); err != nil {
			return nil, err
		}
	}
	// The chain tag extends the group in place: full is the exact wire
	// group, and the scratch is kept for the next append.
	full := m.chain.AppendNext(buf, buf)
	m.recBuf = full
	return full, nil
}

// writeGroup encodes and writes one complete group.
func (m *Manager) writeGroup(recs []Record) error {
	full, err := m.encodeGroup(recs)
	if err != nil {
		return err
	}
	if _, err := m.jf.Write(full); err != nil {
		return fmt.Errorf("durable: append records %d..%d: %w", recs[0].Seq, recs[len(recs)-1].Seq, err)
	}
	return nil
}

// PlanCrash arms a crash point: after afterRecords more records are
// appended, the next record is written only up to tearBytes bytes and every
// durable operation from then on returns ErrCrashed.
func (m *Manager) PlanCrash(afterRecords, tearBytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if afterRecords < 0 {
		afterRecords = 0
	}
	if tearBytes < 0 {
		tearBytes = 0
	}
	m.crashAfter = afterRecords
	m.tearBytes = tearBytes
}

// Crashed reports whether a planned crash point has fired.
func (m *Manager) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Recover loads the newest valid checkpoint and the valid prefix of its
// journal. Invalid (torn, bit-flipped, wrong-key) checkpoints are skipped
// in favour of older ones; an absent journal means the crash hit between
// checkpoint publish and journal creation and is not an error. The manager
// does not reopen a journal for appending — the caller writes a fresh
// post-recovery checkpoint, which rotates.
func (m *Manager) Recover() (*Checkpoint, []Record, *RecoveryReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seqs, err := checkpointSeqs(m.dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("durable: list checkpoints: %w", err)
	}
	if len(seqs) == 0 {
		return nil, nil, nil, fmt.Errorf("durable: no checkpoints in %s", m.dir)
	}
	report := &RecoveryReport{}
	var cp *Checkpoint
	for i := len(seqs) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(checkpointPath(m.dir, seqs[i]))
		if rerr != nil {
			report.CheckpointsSkipped++
			continue
		}
		cand, derr := decodeCheckpoint(m.key, data)
		if derr != nil {
			report.CheckpointsSkipped++
			continue
		}
		if cand.FP != m.fp {
			return nil, nil, nil, fmt.Errorf("durable: checkpoint %d belongs to a different cluster shape", seqs[i])
		}
		if cand.Seq != seqs[i] {
			report.CheckpointsSkipped++
			continue
		}
		cp = cand
		break
	}
	if cp == nil {
		return nil, nil, nil, errors.New("durable: no valid checkpoint survives")
	}
	report.CheckpointSeq = cp.Seq

	var recs []Record
	jdata, jerr := os.ReadFile(journalPath(m.dir, cp.Seq))
	if jerr == nil {
		hdr, jrecs, torn, derr := decodeJournal(m.key, jdata)
		if derr != nil {
			// An unreadable journal loses nothing that was acknowledged
			// with fsync off; fail closed to the checkpoint alone.
			report.TornTail = true
		} else if hdr.FP != m.fp || hdr.BaseSeq != cp.Seq || int(hdr.BlockSize) != m.blockSize {
			return nil, nil, nil, errors.New("durable: journal does not continue the recovered checkpoint")
		} else {
			recs = jrecs
			report.TornTail = torn
		}
	} else if !errors.Is(jerr, os.ErrNotExist) {
		return nil, nil, nil, fmt.Errorf("durable: read journal: %w", jerr)
	}
	report.RecordsReplayed = len(recs)
	m.ckpt = cp.Seq
	m.nextSeq = cp.Seq + uint64(len(recs)) + 1
	return cp, recs, report, nil
}

// Close releases the journal file handle. The manager is unusable after.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.jf != nil {
		err := m.jf.Close()
		m.jf = nil
		return err
	}
	return nil
}
