package durable

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"testing"
)

var testFP = Fingerprint{Kind: "independent", Members: 4, Levels: 8, BlockSize: 32, Z: 4, Seed: 7}

func testManager(t *testing.T, dir string) *Manager {
	t.Helper()
	m, err := Open(dir, []byte("durable-test-key"), testFP, 32, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

func testCheckpoint(seq uint64) *Checkpoint {
	return &Checkpoint{
		Seq: seq,
		RNG: [4]uint64{1, 2, 3, 4},
		Positions: []PosEntry{
			{Addr: 1, Value: 9},
			{Addr: 5, Value: 2},
		},
		Members: []MemberState{
			{
				EngineRNG: [4]uint64{5, 6, 7, 8},
				BufferRNG: [4]uint64{9, 10, 11, 12},
				Stash:     []BlockState{{Addr: 1, Leaf: 3, Data: []byte("stash-block")}},
				Transfer:  []BlockState{{Addr: 5, Leaf: 0, Data: []byte("queued")}},
				Buckets:   []BucketState{{Idx: 0, Raw: bytes.Repeat([]byte{0xab}, 40)}},
				Health:      HealthState{State: 1, Consecutive: 2, Successes: 10, Failures: 3},
				HostSend:    4, HostRecv: 4, DevSend: 4, DevRecv: 4,
				Incarnation: 2,
				Detached:    true,
			},
		},
		Poisoned: []uint64{17},
		MigSeq:   6,
		TopoSeq:  3,
		Drains:   []DrainState{{Member: 1, Moved: 4}},
	}
}

func record(seq uint64, addr uint64, write bool, data []byte) Record {
	k := KindRead
	if write {
		k = KindWrite
	}
	return Record{Seq: seq, Addr: addr, Kind: k, Data: data}
}

func TestCheckpointRoundTrip(t *testing.T) {
	key := []byte("roundtrip-key")
	cp := testCheckpoint(42)
	cp.FP = testFP.Hash()
	enc := encodeCheckpoint(key, cp)
	got, err := decodeCheckpoint(key, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Fatalf("round trip mismatch:\n want %+v\n got  %+v", cp, got)
	}
}

func TestCheckpointRejectsTampering(t *testing.T) {
	key := []byte("tamper-key")
	cp := testCheckpoint(1)
	cp.FP = testFP.Hash()
	enc := encodeCheckpoint(key, cp)
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bit flip in body", func(b []byte) []byte { b[20] ^= 1; return b }},
		{"bit flip in mac", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"extended", func(b []byte) []byte { return append(b, 0) }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		mutated := tc.mutate(append([]byte(nil), enc...))
		if _, err := decodeCheckpoint(key, mutated); err == nil {
			t.Errorf("%s: decode accepted corrupted checkpoint", tc.name)
		}
	}
	if _, err := decodeCheckpoint([]byte("other-key"), enc); err == nil {
		t.Error("decode accepted checkpoint under wrong key")
	}
}

func TestJournalAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	m := testManager(t, dir)
	if m.HasState() {
		t.Fatal("fresh dir reports state")
	}
	if err := m.Append([]Record{record(1, 1, true, []byte("x"))}); err == nil {
		t.Fatal("append before first checkpoint succeeded")
	}
	if err := m.WriteCheckpoint(testCheckpoint(0)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if !m.HasState() {
		t.Fatal("dir with checkpoint reports no state")
	}
	recs := []Record{
		record(1, 10, true, []byte("payload-a")),
		record(2, 11, false, nil),
		record(3, 10, true, []byte("payload-b")),
	}
	if err := m.Append(recs); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := m.LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}

	m2 := testManager(t, dir)
	cp, got, report, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if cp.Seq != 0 || report.CheckpointSeq != 0 || report.CheckpointsSkipped != 0 {
		t.Fatalf("recovered checkpoint seq %d (report %+v)", cp.Seq, report)
	}
	if report.TornTail {
		t.Fatal("clean journal reported torn")
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Seq != recs[i].Seq || got[i].Addr != recs[i].Addr || got[i].Kind != recs[i].Kind {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
		if recs[i].Kind == KindWrite && !bytes.Equal(got[i].Data[:len(recs[i].Data)], recs[i].Data) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
}

func TestJournalSeqGapRejected(t *testing.T) {
	m := testManager(t, t.TempDir())
	if err := m.WriteCheckpoint(testCheckpoint(0)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := m.Append([]Record{record(2, 1, false, nil)}); err == nil {
		t.Fatal("append with seq gap succeeded")
	}
}

func TestTornTailYieldsValidPrefix(t *testing.T) {
	dir := t.TempDir()
	m := testManager(t, dir)
	if err := m.WriteCheckpoint(testCheckpoint(0)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	m.PlanCrash(2, 9) // two durable records, then 9 bytes of the third
	err := m.Append([]Record{
		record(1, 10, true, []byte("a")),
		record(2, 11, true, []byte("b")),
		record(3, 12, true, []byte("c")),
	})
	if err != ErrCrashed {
		t.Fatalf("Append after crash plan = %v, want ErrCrashed", err)
	}
	if !m.Crashed() {
		t.Fatal("manager not marked crashed")
	}
	if err := m.WriteCheckpoint(testCheckpoint(3)); err != ErrCrashed {
		t.Fatalf("post-crash WriteCheckpoint = %v, want ErrCrashed", err)
	}

	m2 := testManager(t, dir)
	cp, recs, report, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if cp.Seq != 0 {
		t.Fatalf("checkpoint seq %d, want 0", cp.Seq)
	}
	if !report.TornTail {
		t.Fatal("torn journal not reported")
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want the 2 durable ones", len(recs))
	}
}

func TestRecoverFallsBackOnCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m := testManager(t, dir)
	if err := m.WriteCheckpoint(testCheckpoint(0)); err != nil {
		t.Fatalf("WriteCheckpoint 0: %v", err)
	}
	if err := m.Append([]Record{record(1, 1, false, nil)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := m.WriteCheckpoint(testCheckpoint(1)); err != nil {
		t.Fatalf("WriteCheckpoint 1: %v", err)
	}
	// Corrupt the newest checkpoint on disk.
	path := checkpointPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	data[30] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("rewrite checkpoint: %v", err)
	}

	m2 := testManager(t, dir)
	cp, recs, report, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if cp.Seq != 0 || report.CheckpointsSkipped != 1 {
		t.Fatalf("fallback failed: seq %d, skipped %d", cp.Seq, report.CheckpointsSkipped)
	}
	if len(recs) != 1 {
		t.Fatalf("fallback replayed %d records, want 1", len(recs))
	}
}

func TestRecoverMissingJournalIsClean(t *testing.T) {
	dir := t.TempDir()
	m := testManager(t, dir)
	if err := m.WriteCheckpoint(testCheckpoint(5)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	m.Close()
	// Simulate a crash between checkpoint publish and journal create.
	if err := os.Remove(journalPath(dir, 5)); err != nil {
		t.Fatalf("remove journal: %v", err)
	}
	m2 := testManager(t, dir)
	cp, recs, report, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if cp.Seq != 5 || len(recs) != 0 || report.TornTail {
		t.Fatalf("unexpected recovery: seq %d, %d recs, torn %v", cp.Seq, len(recs), report.TornTail)
	}
}

func TestFingerprintMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	m := testManager(t, dir)
	if err := m.WriteCheckpoint(testCheckpoint(0)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	other := testFP
	other.Levels++
	m2, err := Open(dir, []byte("durable-test-key"), other, 32, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, _, err := m2.Recover(); err == nil {
		t.Fatal("recovery accepted a different cluster shape")
	}
}

func TestPruneKeepsFallback(t *testing.T) {
	dir := t.TempDir()
	m := testManager(t, dir)
	for seq := uint64(0); seq <= 4; seq++ {
		if err := m.WriteCheckpoint(testCheckpoint(seq)); err != nil {
			t.Fatalf("WriteCheckpoint %d: %v", seq, err)
		}
	}
	seqs, err := checkpointSeqs(dir)
	if err != nil {
		t.Fatalf("checkpointSeqs: %v", err)
	}
	if !reflect.DeepEqual(seqs, []uint64{3, 4}) {
		t.Fatalf("kept checkpoints %v, want [3 4]", seqs)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "journal-%016x.wal", &seq); n == 1 && seq < 3 {
			t.Fatalf("stale journal %s survived pruning", e.Name())
		}
	}
}
