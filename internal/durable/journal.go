// Package durable provides crash consistency for the secure-buffer
// simulator: a write-ahead journal of logical accesses, periodic whole-state
// checkpoints, and a recovery loader that reassembles the last committed
// state from disk. The design is redo-only — a journal record is appended
// strictly after the in-memory commit point of its access (the position-map
// update), so replaying the journal against the checkpointed image
// re-executes exactly the committed suffix and nothing else.
//
// Both on-disk formats fail closed: every byte is authenticated (HMAC-SHA256
// for checkpoints, a hash chain over record groups for the journal),
// truncation and bit flips are detected rather than consumed, and a torn
// journal tail yields the valid prefix — never a partial record or group.
package durable

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sdimm/internal/integrity"
)

// journalMagic identifies a journal file (write-ahead log, version 2:
// chain-tagged record groups — one tag per appended batch, amortizing the
// HMAC extension over a pipeline wave instead of paying it per record).
const journalMagic = "SDIMMWL2"

// journalHeaderSize is magic(8) + fingerprint(8) + baseSeq(8) +
// blockSize(4) + headerMAC(ChainTagSize).
const journalHeaderSize = 8 + 8 + 8 + 4 + integrity.ChainTagSize

// maxJournalBlockSize bounds the per-record payload a decoder will believe,
// so a corrupted header cannot drive allocation (fuzzing hits this).
const maxJournalBlockSize = 1 << 20

// RecordKind tags what a journal record describes. Workload accesses
// (reads and writes) share the sequence stream with rebalance records:
// migration steps (one re-homing read each) and topology changes (drain
// begin/end, member join), so replay reconstructs elastic history in the
// exact order it committed.
type RecordKind uint8

const (
	// KindRead is a committed read access (no payload).
	KindRead RecordKind = iota
	// KindWrite is a committed write access; Data is the written payload.
	KindWrite
	// KindDrainBegin marks the start of a drain of member Addr.
	KindDrainBegin
	// KindDrainEnd marks the completed drain (and detach) of member Addr.
	KindDrainEnd
	// KindJoin marks a fresh member joining at slot Addr.
	KindJoin
	// KindMigrate is one rebalance step: a read-shaped access of block
	// Addr whose remap re-homes it off the draining member.
	KindMigrate
	// kindCount bounds the valid kind values; the decoder treats anything
	// at or above it as a torn tail rather than inventing history.
	kindCount
)

// IsTopology reports whether the record changes cluster membership rather
// than recording a block access.
func (k RecordKind) IsTopology() bool {
	return k == KindDrainBegin || k == KindDrainEnd || k == KindJoin
}

// Record is one committed logical event. For KindRead/KindWrite/KindMigrate
// Addr is the block address (Data is the written payload for writes and
// empty otherwise); for topology kinds Addr is the member slot index. Every
// record consumes a sequence number, so Seq counts committed events of all
// kinds.
type Record struct {
	Seq  uint64
	Addr uint64
	Kind RecordKind
	Data []byte
}

// journalHeader is the decoded fixed prefix of a journal file.
type journalHeader struct {
	FP        [8]byte
	BaseSeq   uint64
	BlockSize uint32
}

// groupCountSize is the fixed prefix of a record group: a big-endian u32
// count of the record bodies that follow, sealed together under one chain
// tag. A group is the journal's atomic append unit (one per Manager.Append
// call — a pipeline wave, or a singleton for the sequential path), but NOT
// its durability unit: the writer never starts a group it does not finish,
// so a torn tail still yields every previously sealed group intact.
const groupCountSize = 4

// recordBodySize returns the encoded size of one record body (seq + addr +
// kind + zero-padded payload) for a payload size. Bodies inside a group are
// not individually tagged — the group's single chain tag covers the count
// and every body.
func recordBodySize(blockSize int) int {
	return 8 + 8 + 1 + blockSize
}

// encodeJournalHeader serializes and MACs the header. The returned mac (the
// trailing ChainTagSize bytes) seeds the record hash chain, binding every
// record to this specific file.
func encodeJournalHeader(key []byte, fp [8]byte, baseSeq uint64, blockSize int) (hdr, mac []byte) {
	hdr = make([]byte, journalHeaderSize)
	copy(hdr[:8], journalMagic)
	copy(hdr[8:16], fp[:])
	binary.BigEndian.PutUint64(hdr[16:24], baseSeq)
	binary.BigEndian.PutUint32(hdr[24:28], uint32(blockSize))
	m := hmac.New(sha256.New, key)
	m.Write(hdr[:28])
	mac = m.Sum(nil)[:integrity.ChainTagSize]
	copy(hdr[28:], mac)
	return hdr, mac
}

// encodeRecord serializes one record body (without its chain tag). The
// payload region is exactly blockSize bytes, zero-padded.
func encodeRecord(rec Record, blockSize int) ([]byte, error) {
	return appendRecord(nil, rec, blockSize)
}

// appendRecord appends one record body (without its chain tag) to dst and
// returns the extended slice — the allocation-free form of encodeRecord,
// byte-identical to it.
func appendRecord(dst []byte, rec Record, blockSize int) ([]byte, error) {
	if len(rec.Data) > blockSize {
		return nil, fmt.Errorf("durable: record %d payload %d exceeds block size %d", rec.Seq, len(rec.Data), blockSize)
	}
	base := len(dst)
	n := 8 + 8 + 1 + blockSize
	if cap(dst)-base >= n {
		dst = dst[:base+n]
		clear(dst[base:])
	} else {
		dst = append(dst, make([]byte, n)...)
	}
	if rec.Kind >= kindCount {
		return nil, fmt.Errorf("durable: record %d has unknown kind %d", rec.Seq, rec.Kind)
	}
	body := dst[base:]
	binary.BigEndian.PutUint64(body[0:8], rec.Seq)
	binary.BigEndian.PutUint64(body[8:16], rec.Addr)
	body[16] = byte(rec.Kind)
	copy(body[17:], rec.Data)
	return dst, nil
}

// decodeJournal parses a journal file. It returns the header, the longest
// valid record prefix (every record of every fully sealed group), and
// whether the file ended mid-group or at a broken chain link (torn). Header
// corruption is an error: with an unauthenticated header nothing after it
// can be trusted, so the whole file is rejected.
func decodeJournal(key, data []byte) (hdr journalHeader, recs []Record, torn bool, err error) {
	if len(data) < journalHeaderSize {
		return hdr, nil, false, errors.New("durable: journal shorter than header")
	}
	if string(data[:8]) != journalMagic {
		return hdr, nil, false, errors.New("durable: bad journal magic")
	}
	m := hmac.New(sha256.New, key)
	m.Write(data[:28])
	headerMAC := m.Sum(nil)[:integrity.ChainTagSize]
	if !hmac.Equal(headerMAC, data[28:journalHeaderSize]) {
		return hdr, nil, false, errors.New("durable: journal header failed authentication")
	}
	copy(hdr.FP[:], data[8:16])
	hdr.BaseSeq = binary.BigEndian.Uint64(data[16:24])
	hdr.BlockSize = binary.BigEndian.Uint32(data[24:28])
	if hdr.BlockSize == 0 || hdr.BlockSize > maxJournalBlockSize {
		return hdr, nil, false, fmt.Errorf("durable: journal block size %d out of range", hdr.BlockSize)
	}

	chain := integrity.NewChain(key, headerMAC)
	bodySize := recordBodySize(int(hdr.BlockSize))
	rest := data[journalHeaderSize:]
	for len(rest) > 0 {
		if len(rest) < groupCountSize {
			return hdr, recs, true, nil
		}
		count := binary.BigEndian.Uint32(rest[:groupCountSize])
		// Bounds in uint64 so a hostile count cannot overflow the length
		// arithmetic: anything the remaining bytes cannot hold is a torn
		// (unfinished) group, which by construction holds nothing durable.
		need := uint64(groupCountSize) + uint64(count)*uint64(bodySize) + integrity.ChainTagSize
		if count == 0 || uint64(len(rest)) < need {
			return hdr, recs, true, nil
		}
		msgLen := groupCountSize + int(count)*bodySize
		msg := rest[:msgLen]
		tag := rest[msgLen : msgLen+integrity.ChainTagSize]
		// On mismatch the chain has advanced past a group we discard, but
		// decoding stops here so the stale chain state is never reused.
		want := chain.Next(msg)
		if !hmac.Equal(want, tag) {
			return hdr, recs, true, nil
		}
		for i := 0; i < int(count); i++ {
			body := msg[groupCountSize+i*bodySize:][:bodySize]
			rec := Record{
				Seq:  binary.BigEndian.Uint64(body[0:8]),
				Addr: binary.BigEndian.Uint64(body[8:16]),
				Kind: RecordKind(body[16]),
			}
			if rec.Kind >= kindCount {
				// An authenticated record with an unknown kind can only come
				// from a broken (e.g. newer-versioned) writer; stop trusting
				// the tail rather than misreplaying it.
				return hdr, recs, true, nil
			}
			if rec.Seq != hdr.BaseSeq+1+uint64(len(recs)) {
				// A record authenticated under this chain can only be out of
				// sequence if the writer was broken; stop trusting the tail.
				return hdr, recs, true, nil
			}
			if rec.Kind == KindWrite {
				rec.Data = append([]byte(nil), body[17:]...)
			}
			recs = append(recs, rec)
		}
		rest = rest[msgLen+integrity.ChainTagSize:]
	}
	return hdr, recs, false, nil
}
