package durable

import (
	"bytes"
	"encoding/binary"
	"testing"

	"sdimm/internal/integrity"
)

// FuzzJournalDecode asserts the journal decoder fails closed on arbitrary
// bytes: it never panics, and whatever it accepts is a contiguous,
// chain-authenticated record prefix of whole groups. Seeded with a valid
// journal mixing a multi-record group (a pipeline wave) and singleton groups
// (sequential appends) so mutations explore the interesting paths.
func FuzzJournalDecode(f *testing.F) {
	key := []byte("fuzz-journal-key")
	fp := testFP.Hash()
	hdr, mac := encodeJournalHeader(key, fp, 7, 16)
	file := append([]byte(nil), hdr...)
	chain := integrity.NewChain(key, mac)
	writeGroup := func(recs ...Record) {
		group := make([]byte, groupCountSize)
		binary.BigEndian.PutUint32(group, uint32(len(recs)))
		for i, rec := range recs {
			var err error
			if group, err = appendRecord(group, rec, 16); err != nil {
				f.Fatalf("encode seed record %d: %v", i, err)
			}
		}
		file = append(file, chain.AppendNext(group, group)...)
	}
	writeGroup(
		Record{Seq: 8, Addr: 3, Kind: KindWrite, Data: bytes.Repeat([]byte{0x5a}, 16)},
		Record{Seq: 9, Addr: 4},
		Record{Seq: 10, Addr: 1, Kind: KindDrainBegin},
	)
	writeGroup(Record{Seq: 11, Addr: 6, Kind: KindMigrate})
	writeGroup(
		Record{Seq: 12, Addr: 1, Kind: KindDrainEnd},
		Record{Seq: 13, Addr: 1, Kind: KindJoin},
	)
	f.Add(file)
	f.Add(file[:len(file)-5])   // torn tail
	f.Add(file[:journalHeaderSize]) // empty journal
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, _, err := decodeJournal(key, data)
		if err != nil {
			if len(recs) != 0 {
				t.Fatalf("decoder returned %d records alongside error %v", len(recs), err)
			}
			return
		}
		for i, rec := range recs {
			if rec.Seq != hdr.BaseSeq+1+uint64(i) {
				t.Fatalf("record %d has seq %d, want contiguous from base %d", i, rec.Seq, hdr.BaseSeq)
			}
			if rec.Kind >= kindCount {
				t.Fatalf("record %d has out-of-range kind %d", i, rec.Kind)
			}
			if rec.Kind == KindWrite && len(rec.Data) != int(hdr.BlockSize) {
				t.Fatalf("write record %d payload %d != block size %d", i, len(rec.Data), hdr.BlockSize)
			}
			if rec.Kind != KindWrite && rec.Data != nil {
				t.Fatalf("non-write record %d carries payload", i)
			}
		}
	})
}

// FuzzCheckpointDecode asserts the checkpoint decoder fails closed: no
// panics, no unauthenticated acceptance. Under a fixed key, any input it
// accepts must re-encode to an authentic file (HMAC makes acceptance of a
// mutated file astronomically unlikely; the property that matters here is
// crash-freedom of the bounds-checked parser).
func FuzzCheckpointDecode(f *testing.F) {
	key := []byte("fuzz-checkpoint-key")
	cp := testCheckpoint(3)
	cp.FP = testFP.Hash()
	enc := encodeCheckpoint(key, cp)
	f.Add(enc)
	f.Add(enc[:len(enc)-1])
	f.Add(enc[:20])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeCheckpoint(key, data)
		if err != nil {
			return
		}
		// Accepted input must be byte-identical to its canonical encoding.
		if !bytes.Equal(encodeCheckpoint(key, got), data) {
			t.Fatal("decoder accepted a non-canonical checkpoint")
		}
	})
}
