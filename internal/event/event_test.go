package event

import (
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if !e.Empty() {
		t.Fatal("zero engine not empty")
	}
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestTimeOrdering(t *testing.T) {
	var e Engine
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 0} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.Run()
	want := []Time{0, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestFIFOWithinSameCycle(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 16; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle order %v not FIFO", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	var e Engine
	var at Time
	e.Schedule(42, func() { at = e.Now() })
	e.Run()
	if at != 42 {
		t.Fatalf("Now() inside event = %d, want 42", at)
	}
	if e.Now() != 42 {
		t.Fatalf("final Now() = %d, want 42", e.Now())
	}
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	var e Engine
	fired := Time(0)
	e.Schedule(100, func() {
		e.Schedule(10, func() { fired = e.Now() }) // in the past
	})
	e.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamp to 100", fired)
	}
}

func TestAfter(t *testing.T) {
	var e Engine
	var fired Time
	e.Schedule(7, func() {
		e.After(5, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 12 {
		t.Fatalf("After fired at %d, want 12", fired)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	ran := false
	h := e.Schedule(5, func() { ran = true })
	h.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double-cancel and cancel-after-run must be no-ops.
	h.Cancel()
	h2 := e.Schedule(6, func() {})
	e.Run()
	h2.Cancel()
}

func TestPendingCountsLiveOnly(t *testing.T) {
	var e Engine
	h := e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	h.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(15)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(15) fired %v, want 3 events", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("Now after RunUntil = %d, want 15", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 || e.Now() != 100 {
		t.Fatalf("RunUntil(100): fired=%v now=%d", fired, e.Now())
	}
}

func TestRunWhile(t *testing.T) {
	var e Engine
	n := 0
	var tick func()
	tick = func() {
		n++
		e.After(1, tick)
	}
	e.After(1, tick)
	e.RunWhile(func() bool { return n < 10 })
	if n != 10 {
		t.Fatalf("RunWhile stopped at n=%d, want 10", n)
	}
}

func TestChainedScheduling(t *testing.T) {
	var e Engine
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 1000 {
			e.After(3, recur)
		}
	}
	e.Schedule(0, recur)
	e.Run()
	if depth != 1000 {
		t.Fatalf("depth = %d, want 1000", depth)
	}
	if e.Now() != 3*999 {
		t.Fatalf("Now = %d, want %d", e.Now(), 3*999)
	}
}

// Property: for any multiset of schedule times, events fire in nondecreasing
// time order and all of them fire.
func TestPropertyOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		var e Engine
		var fired []Time
		for _, u := range times {
			at := Time(u)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
