// Package event provides the discrete-event simulation engine that drives
// every timed component in the simulator (DRAM channels, ORAM controllers,
// secure buffers, the CPU frontend).
//
// Time is measured in abstract cycles of the fastest clock in the system
// (the CPU clock by convention). Components schedule callbacks at absolute
// cycle times; the engine executes them in time order, with FIFO ordering
// among events scheduled for the same cycle so that simulations are fully
// deterministic.
//
// The queue is a hand-rolled 4-ary min-heap: event dispatch is the hottest
// loop in the simulator, and the flat heap with inlined comparisons is
// substantially faster than container/heap's interface-based one.
package event

// Time is an absolute simulation time in cycles.
type Time uint64

// Func is a callback executed when an event fires.
type Func func()

type item struct {
	at   Time
	seq  uint64
	fn   Func
	dead bool
}

// before reports heap ordering: earlier time first, FIFO within a cycle.
func (a *item) before(b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ it *item }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.it != nil {
		h.it.dead = true
	}
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use at time 0.
type Engine struct {
	now Time
	seq uint64
	q   []*item
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run at absolute time at. Scheduling in the past
// (at < Now) fires the event at the current time instead; this arises only
// from zero-latency responses and keeps time monotonic.
func (e *Engine) Schedule(at Time, fn Func) Handle {
	if at < e.now {
		at = e.now
	}
	it := &item{at: at, seq: e.seq, fn: fn}
	e.seq++
	e.push(it)
	return Handle{it}
}

// After registers fn to run delay cycles from now.
func (e *Engine) After(delay Time, fn Func) Handle {
	return e.Schedule(e.now+delay, fn)
}

// Pending reports the number of live events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, it := range e.q {
		if !it.dead {
			n++
		}
	}
	return n
}

// Empty reports whether no live events remain.
func (e *Engine) Empty() bool { return e.Pending() == 0 }

// Step executes the next event, advancing time to it. It reports whether an
// event was executed (false means the queue was empty).
func (e *Engine) Step() bool {
	for len(e.q) > 0 {
		it := e.pop()
		if it.dead {
			continue
		}
		e.now = it.at
		it.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline. Events scheduled exactly at
// the deadline do fire. On return the clock reads deadline if the simulation
// had not already passed it.
func (e *Engine) RunUntil(deadline Time) {
	for {
		it := e.peek()
		if it == nil || it.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events while cond() returns true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

func (e *Engine) peek() *item {
	for len(e.q) > 0 {
		if e.q[0].dead {
			e.pop()
			continue
		}
		return e.q[0]
	}
	return nil
}

// 4-ary min-heap primitives.

func (e *Engine) push(it *item) {
	q := append(e.q, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	e.q = q
}

func (e *Engine) pop() *item {
	q := e.q
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	q = q[:last]
	e.q = q
	n := len(q)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q[c].before(q[min]) {
				min = c
			}
		}
		if !q[min].before(q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}
