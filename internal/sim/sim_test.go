package sim

import (
	"testing"

	"sdimm/internal/config"
)

func quickCfg(p config.Protocol, channels int) config.Config {
	c := config.Default(p, channels)
	c.ORAM.Levels = 24
	c.WarmupAccesses = 150
	c.MeasureAccesses = 400
	return c
}

func TestRunValidation(t *testing.T) {
	cfg := quickCfg(config.NonSecure, 1)
	if _, err := Run(cfg, "not-a-benchmark"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	bad := cfg
	bad.WarmupAccesses, bad.MeasureAccesses = 0, 0
	if _, err := Run(bad, "mcf"); err == nil {
		t.Fatal("zero-length run accepted")
	}
	bad = cfg
	bad.Org.Channels = 0
	if _, err := Run(bad, "mcf"); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNonSecureRunCompletes(t *testing.T) {
	res, err := Run(quickCfg(config.NonSecure, 1), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 550 {
		t.Fatalf("records = %d", res.Records)
	}
	if res.MeasuredCycles == 0 || res.MeasuredCycles >= res.TotalCycles {
		t.Fatalf("measured %d of %d cycles", res.MeasuredCycles, res.TotalCycles)
	}
	if res.LLCMisses == 0 {
		t.Fatal("no misses in measurement window")
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if res.HostBytes == 0 || res.LocalBytes != 0 {
		t.Fatalf("byte split: host %d local %d", res.HostBytes, res.LocalBytes)
	}
}

func TestFreecursiveSlowdownShape(t *testing.T) {
	ns, err := Run(quickCfg(config.NonSecure, 1), "milc")
	if err != nil {
		t.Fatal(err)
	}
	fc, err := Run(quickCfg(config.Freecursive, 1), "milc")
	if err != nil {
		t.Fatal(err)
	}
	slowdown := float64(fc.MeasuredCycles) / float64(ns.MeasuredCycles)
	if slowdown < 2 {
		t.Fatalf("freecursive slowdown %.2f, want >> 1 (paper: ~8.8x single channel)", slowdown)
	}
	if fc.AccessesPerMiss < 1 || fc.AccessesPerMiss > 3 {
		t.Fatalf("accessORAMs per miss %.2f, paper reports ~1.4", fc.AccessesPerMiss)
	}
}

func TestSDIMMProtocolsBeatBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol comparison")
	}
	fc, err := Run(quickCfg(config.Freecursive, 1), "milc")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []config.Protocol{config.Independent, config.Split} {
		r, err := Run(quickCfg(p, 1), "milc")
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		norm := float64(r.MeasuredCycles) / float64(fc.MeasuredCycles)
		if norm >= 1.0 {
			t.Errorf("%v normalized time %.3f, want < 1 vs freecursive", p, norm)
		}
		if r.LocalBytes == 0 {
			t.Errorf("%v recorded no on-DIMM traffic", p)
		}
		if r.HostBytes >= fc.HostBytes {
			t.Errorf("%v host bytes %d not below baseline %d", p, r.HostBytes, fc.HostBytes)
		}
	}
}

func TestSDIMMEnergyBelowBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol comparison")
	}
	fc, err := Run(quickCfg(config.Freecursive, 1), "lbm")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Run(quickCfg(config.Split, 1), "lbm")
	if err != nil {
		t.Fatal(err)
	}
	if sp.EnergyPerMiss >= fc.EnergyPerMiss {
		t.Fatalf("split energy/miss %.3g not below freecursive %.3g",
			sp.EnergyPerMiss, fc.EnergyPerMiss)
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := Run(quickCfg(config.Independent, 1), "soplex")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg(config.Independent, 1), "soplex")
	if err != nil {
		t.Fatal(err)
	}
	if a.MeasuredCycles != b.MeasuredCycles || a.Energy.Total() != b.Energy.Total() {
		t.Fatalf("replay diverged: %d/%d vs %g/%g",
			a.MeasuredCycles, b.MeasuredCycles, a.Energy.Total(), b.Energy.Total())
	}
}
