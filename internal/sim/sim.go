// Package sim wires the full system together — trace-driven core + LLC,
// protocol backend, DRAM channels/links, and the energy model — and runs
// the paper's methodology: fast-forward a warmup window of trace records to
// heat the LLC/PLB/position map, then measure cycle-accurate execution of
// the measurement window (Section IV-A).
package sim

import (
	"errors"
	"fmt"

	"sdimm/internal/config"
	"sdimm/internal/cpusim"
	"sdimm/internal/dram"
	"sdimm/internal/energy"
	"sdimm/internal/event"
	"sdimm/internal/freecursive"
	"sdimm/internal/protocol"
	"sdimm/internal/telemetry"
	"sdimm/internal/trace"
)

// Telemetry bundles the observability hooks threaded through a run. The
// zero value disables everything; Registry alone enables metrics; Trace
// additionally collects per-access spans.
type Telemetry struct {
	// Registry receives counters, gauges, and histograms from every
	// instrumented layer (dram.*, protocol.*, and — when the backend
	// supports it — per-phase access spans).
	Registry *telemetry.Registry
	// Trace asks the run to record span events. The tracer is built over
	// the event engine's clock, so span timestamps are simulated CPU
	// cycles (rendered as microseconds by Chrome trace viewers).
	Trace bool
	// Tracer is populated by the run when Trace is set; read it after the
	// run returns to export the collected events.
	Tracer *telemetry.Tracer
}

// Result is the outcome of one simulation run.
type Result struct {
	Protocol config.Protocol
	Workload string

	// MeasuredCycles covers the measurement window (post-warmup).
	MeasuredCycles uint64
	TotalCycles    uint64

	Records      uint64
	LLCMisses    uint64
	Instructions uint64

	AccessORAMs     uint64
	AccessesPerMiss float64 // frontend accessORAMs per LLC miss
	AvgMissLatency  float64 // CPU cycles per LLC miss

	HostBytes  uint64 // bytes that crossed the processor pins
	LocalBytes uint64 // bytes that stayed on a DIMM

	// HostBusUtil / LocalBusUtil are the mean data-bus utilizations over
	// the run (fraction of peak bandwidth; DDR3-1600 moves 8 B per CPU
	// cycle per channel at the paper's clocks).
	HostBusUtil  float64
	LocalBusUtil float64

	Energy        energy.Breakdown
	EnergyPerMiss float64 // Joules per LLC miss

	Backend protocol.BackendStats
}

// CyclesPerMiss normalizes measured time by measured misses.
func (r Result) CyclesPerMiss() float64 {
	m := r.LLCMisses
	if m == 0 {
		return 0
	}
	return float64(r.MeasuredCycles) / float64(m)
}

// Run executes one configuration against one workload profile.
func Run(cfg config.Config, workload string) (Result, error) {
	return RunInstrumented(cfg, workload, nil)
}

// RunInstrumented is Run with telemetry attached (see Telemetry).
func RunInstrumented(cfg config.Config, workload string, tel *Telemetry) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	prof, err := trace.ProfileByName(workload)
	if err != nil {
		return Result{}, err
	}
	total := cfg.WarmupAccesses + cfg.MeasureAccesses
	if total <= 0 {
		return Result{}, errors.New("sim: zero-length run")
	}
	recs, err := prof.Generate(total, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	return RunTraceInstrumented(cfg, workload, recs, nil, tel)
}

// BusObserver sees every command on every modelled (untrusted) DRAM bus —
// the attacker's vantage point of the threat model. channel names the bus;
// local marks an on-DIMM bus (visible to a physical attacker too, but not
// from the motherboard).
type BusObserver func(channel string, local bool, now event.Time, kind dram.CommandKind, coord dram.Coord)

// RunTrace executes one configuration against an explicit record stream;
// the first cfg.WarmupAccesses records are the warmup window.
func RunTrace(cfg config.Config, name string, recs []trace.Record) (Result, error) {
	return RunTraceObserved(cfg, name, recs, nil)
}

// RunTraceObserved is RunTrace with a bus observer attached to every DRAM
// channel (package attacker uses this to capture address traces).
func RunTraceObserved(cfg config.Config, name string, recs []trace.Record, obs BusObserver) (Result, error) {
	return RunTraceInstrumented(cfg, name, recs, obs, nil)
}

// RunTraceInstrumented is RunTraceObserved with telemetry attached: DRAM
// channels mirror their stats into tel.Registry, the backend registers its
// miss-latency histogram, and — when tel.Trace is set — a tracer over the
// engine clock records per-phase access spans (backends that implement
// SetTelemetry emit them; others run untraced).
func RunTraceInstrumented(cfg config.Config, name string, recs []trace.Record, obs BusObserver, tel *Telemetry) (Result, error) {
	eng := &event.Engine{}
	backend, err := protocol.New(eng, cfg)
	if err != nil {
		return Result{}, err
	}
	if tel != nil {
		if tel.Trace {
			tel.Tracer = telemetry.NewTracer(func() uint64 { return uint64(eng.Now()) })
		}
		if tb, ok := backend.(interface {
			SetTelemetry(*telemetry.Registry, *telemetry.Tracer)
		}); ok {
			tb.SetTelemetry(tel.Registry, tel.Tracer)
		} else if tel.Registry != nil {
			tel.Registry.AddHistogram("protocol.miss_latency", backend.Stats().MissLatency)
		}
		if tel.Registry != nil {
			chans, _ := backend.Channels()
			for _, ch := range chans {
				ch.EnableTelemetry(tel.Registry)
			}
		}
	}
	if obs != nil {
		chans, local := backend.Channels()
		for i, ch := range chans {
			ch := ch
			isLocal := local[i]
			ch.Observer = func(now event.Time, kind dram.CommandKind, coord dram.Coord) {
				obs(ch.Name, isLocal, now, kind, coord)
			}
		}
	}
	core, err := cpusim.New(eng, backend, cpusim.Config{
		LLCLines:   cfg.LLCBytes / cfg.Org.LineBytes,
		LLCWays:    cfg.LLCWays,
		LLCLatency: cfg.LLCLatency,
		ROB:        cfg.ROBSize,
		MarkAt:     cfg.WarmupAccesses,
	}, recs)
	if err != nil {
		return Result{}, err
	}

	core.Start(nil)
	// Run until the whole trace (including posted work) completes. The
	// event count bound guards against a wedged configuration: refresh
	// alone generates one event per rank per tREFI, so a generous budget
	// scales with simulated work, not wall-clock time.
	eng.RunWhile(func() bool { return !core.Done() })
	if !core.Done() {
		return Result{}, fmt.Errorf("sim: %v/%s did not converge", cfg.Protocol, name)
	}

	cs := core.Stats()
	res := Result{
		Protocol:       cfg.Protocol,
		Workload:       name,
		TotalCycles:    cs.Cycles,
		MeasuredCycles: cs.Cycles - cs.MarkCycle,
		Records:        cs.Records,
		LLCMisses:      cs.LLCMisses - cs.MarkMisses,
		Instructions:   cs.Instructions,
		AvgMissLatency: cs.AvgMissLatency(),
		Backend:        backend.Stats(),
	}
	res.AccessORAMs = res.Backend.AccessORAMs
	if fe, ok := backend.(interface{ Frontend() *freecursive.Frontend }); ok {
		res.AccessesPerMiss = fe.Frontend().Stats().AccessesPerMiss()
	}
	if tel != nil && tel.Registry != nil {
		tel.Registry.Gauge("sim.cycles").Set(int64(cs.Cycles))
		tel.Registry.Gauge("sim.llc_misses").Set(int64(res.LLCMisses))
		tel.Registry.Gauge("sim.records").Set(int64(cs.Records))
	}

	params := energy.Default()
	chans, local := backend.Channels()
	for i, ch := range chans {
		st := ch.Stats()
		res.Energy.Add(params.Channel(st, cfg.Org.CPUCyclesPerMemCycle, local[i]))
		bytes := st.BytesRead + st.BytesWrite
		if local[i] {
			res.LocalBytes += bytes
		} else {
			res.HostBytes += bytes
		}
	}
	for _, l := range backend.Links() {
		ls := l.Stats()
		res.Energy.Add(params.HostTransfer(ls.Bytes))
		res.HostBytes += ls.Bytes
	}
	if res.LLCMisses > 0 {
		res.EnergyPerMiss = res.Energy.Total() / float64(cs.LLCMisses)
	}
	if cs.Cycles > 0 {
		bytesPerCycle := 8.0 * float64(cfg.Org.CPUCyclesPerMemCycle) / 2 // 8 B per mem cycle
		hostChannels := float64(cfg.Org.Channels)
		res.HostBusUtil = float64(res.HostBytes) / (bytesPerCycle * hostChannels * float64(cs.Cycles))
		nLocal := 0
		for _, l := range local {
			if l {
				nLocal++
			}
		}
		if nLocal > 0 {
			res.LocalBusUtil = float64(res.LocalBytes) / (bytesPerCycle * float64(nLocal) * float64(cs.Cycles))
		}
	}
	return res, nil
}
