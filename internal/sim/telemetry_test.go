package sim

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"sdimm/internal/config"
	"sdimm/internal/telemetry"
	"sdimm/internal/trace"
)

var phaseNames = map[string]bool{
	"link.send":      true,
	"sdimm.queue":    true,
	"dram.path":      true,
	"buffer.seal":    true,
	"fetch.wait":     true,
	"result.decrypt": true,
}

// within reports whether span e lies inside window [ts, ts+dur). A span
// starting exactly at the window's end belongs to the next occupant of the
// reused lane.
func within(e telemetry.Event, ts, dur uint64) bool {
	return e.TS >= ts && e.TS < ts+dur && e.TS+e.Dur <= ts+dur
}

// tileCheck verifies that spans exactly tile [ts, ts+dur]: contiguous,
// gap-free, and summing to dur.
func tileCheck(t *testing.T, kind string, spans []telemetry.Event, ts, dur uint64) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatalf("%s window [%d,%d): no inner spans", kind, ts, ts+dur)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].TS < spans[j].TS })
	cursor := ts
	var sum uint64
	for _, e := range spans {
		if e.TS != cursor {
			t.Fatalf("%s window [%d,%d): span %q starts at %d, want %d",
				kind, ts, ts+dur, e.Name, e.TS, cursor)
		}
		cursor = e.TS + e.Dur
		sum += e.Dur
	}
	if cursor != ts+dur || sum != dur {
		t.Fatalf("%s window [%d,%d): spans cover %d cycles ending at %d",
			kind, ts, ts+dur, sum, cursor)
	}
}

// TestIndependentTraceReconstruction runs the Independent protocol with
// tracing enabled and checks the acceptance property end to end: every
// miss span is tiled exactly by its accessORAM spans, every accessORAM is
// tiled exactly by its six phase spans, and the miss spans reproduce the
// MissLatency histogram sample for sample.
func TestIndependentTraceReconstruction(t *testing.T) {
	cfg := quickCfg(config.Independent, 2)
	prof, err := trace.ProfileByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := prof.Generate(cfg.WarmupAccesses+cfg.MeasureAccesses, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	tel := &Telemetry{Registry: telemetry.NewRegistry(), Trace: true}
	res, err := RunTraceInstrumented(cfg, "mcf", recs, nil, tel)
	if err != nil {
		t.Fatal(err)
	}
	if tel.Tracer == nil {
		t.Fatal("Trace requested but no tracer built")
	}
	evs := tel.Tracer.Events()
	if len(evs) == 0 {
		t.Fatal("no trace events recorded")
	}

	byTid := map[int][]telemetry.Event{}
	var misses []telemetry.Event
	for _, e := range evs {
		if e.Ph != "X" {
			continue
		}
		byTid[e.TID] = append(byTid[e.TID], e)
		if e.Name == "miss" || e.Name == "writeback.miss" {
			misses = append(misses, e)
		}
	}
	if len(misses) == 0 {
		t.Fatal("no miss spans recorded")
	}

	var readSpans, readSum uint64
	for _, m := range misses {
		var inner, phases []telemetry.Event
		for _, e := range byTid[m.TID] {
			if !within(e, m.TS, m.Dur) {
				continue
			}
			switch {
			case e.Name == "accessORAM":
				inner = append(inner, e)
			case phaseNames[e.Name]:
				phases = append(phases, e)
			}
		}
		tileCheck(t, m.Name, inner, m.TS, m.Dur)
		tileCheck(t, m.Name+" phases", phases, m.TS, m.Dur)
		for _, a := range inner {
			var ap []telemetry.Event
			for _, e := range phases {
				if within(e, a.TS, a.Dur) || (e.TS == a.TS && e.Dur == 0) {
					ap = append(ap, e)
				}
			}
			tileCheck(t, "accessORAM", ap, a.TS, a.Dur)
		}
		if m.Name == "miss" {
			readSpans++
			readSum += m.Dur
		}
	}

	// The read-miss spans are the same samples the stats tables report.
	h := res.Backend.MissLatency
	if h.N() != readSpans || h.Sum() != readSum {
		t.Fatalf("miss spans (%d samples, %d cycles) != MissLatency histogram (%d, %d)",
			readSpans, readSum, h.N(), h.Sum())
	}

	// The exported JSON must pass the exporter's own validator.
	var buf bytes.Buffer
	if err := tel.Tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := telemetry.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(evs) {
		t.Fatalf("validator saw %d events, tracer recorded %d", n, len(evs))
	}

	// Metrics side: DRAM channels and the shared miss histogram landed in
	// the registry.
	snap := tel.Registry.Snapshot()
	var dramReads uint64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "dram.reads{") {
			dramReads += v
		}
	}
	if dramReads == 0 {
		t.Fatal("no dram.reads counters in registry snapshot")
	}
	hs, ok := snap.Histograms["protocol.miss_latency"]
	if !ok {
		t.Fatal("protocol.miss_latency not registered")
	}
	if hs.N != h.N() {
		t.Fatalf("registry histogram N = %d, backend N = %d", hs.N, h.N())
	}
	if snap.Gauges["sim.cycles"] == 0 {
		t.Fatal("sim.cycles gauge not set")
	}
}
