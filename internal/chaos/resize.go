package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"sdimm"
	"sdimm/internal/durable"
	"sdimm/internal/fault"
	"sdimm/internal/flight"
	"sdimm/internal/rng"
	"sdimm/internal/witness"
)

// This file is the resize chaos mode: online membership changes under load,
// with seeded crashes landing inside the rebalance. The same seeded workload
// and the same topology schedule (drain → remove → join for the Independent
// protocol; fail-stop → rebuild-from-parity for Split) run twice — once on
// an uncrashed reference, once on a durable cluster killed at seeded journal
// positions and recovered from disk. The driver is deliberately stateless
// across restarts: everything it needs to resume (workload position, drain
// progress, membership incarnations) is recomputed from the recovered
// cluster, so a crash at ANY record boundary — including mid-migration-batch
// — must land the final state bitwise-equal to the reference.

// ResizeConfig sizes one resize chaos campaign.
type ResizeConfig struct {
	// SDIMMs and Levels size the cluster (defaults 4 and 8).
	SDIMMs int
	Levels int
	// Accesses is the workload length (default 1200).
	Accesses int
	// Addresses is the address working-set size (default 96).
	Addresses uint64
	// Seed drives the workload, leaf assignment, and crash points.
	Seed uint64
	// Crashes is the number of seeded restart points, drawn uniquely over
	// the reference run's total journal length so they can land anywhere,
	// including inside the rebalance window (default 4).
	Crashes int
	// Member is the slot drained and rejoined (Independent) or fail-stopped
	// and rebuilt (Split). Default 1.
	Member int
	// Parallelism drives Independent traffic through the batched pipeline
	// with this worker bound (default 1; results must be identical at any
	// value). Split clusters use it for intra-access shard fan-out.
	Parallelism int
	// Batch is the pipeline window (default 8).
	Batch int
	// Dir is the state directory; empty uses a fresh temp dir.
	Dir string
	// Interval is the checkpoint cadence (default 64).
	Interval int
	// Split switches to the Split flavour: no drain (the protocol has no
	// per-block routing), membership changes by whole-member rebuild from
	// parity.
	Split bool
	// Witness, when set, observes the reference run's links (Independent
	// only — the same traffic the offline shape checks judge), so elastic
	// sweeps can assert the online monitor stays silent.
	Witness *witness.Monitor
	// Flight, when set, rides along on every Independent incarnation (the
	// rings span restarts); with FlightPath set, a non-equivalent sweep
	// dumps the rings there.
	Flight     *flight.Recorder
	FlightPath string
}

func withResizeDefaults(cfg ResizeConfig) ResizeConfig {
	if cfg.SDIMMs == 0 {
		cfg.SDIMMs = 4
	}
	if cfg.Levels == 0 {
		cfg.Levels = 8
	}
	if cfg.Accesses == 0 {
		cfg.Accesses = 1200
	}
	if cfg.Addresses == 0 {
		cfg.Addresses = 96
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Crashes == 0 {
		cfg.Crashes = 4
	}
	if cfg.Member == 0 {
		cfg.Member = 1
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.Batch == 0 {
		cfg.Batch = 8
	}
	if cfg.Interval == 0 {
		cfg.Interval = 64
	}
	return cfg
}

// ResizeResult summarizes one resize sweep. It passes iff Equivalent().
type ResizeResult struct {
	Accesses   int
	Crashes    int
	Recoveries int
	Replayed   int
	TornTails  int

	Migrations int  // committed migration steps in the reference run
	Drained    bool // the drain ran to completion (Independent)
	Rejoined   bool // the slot was repopulated (incarnation advanced)

	SkippedResults      int
	ResultMismatches    int
	PayloadMismatches   int
	PositionMismatches  int
	MigrationMismatches int // final migration count diverged from reference
	TrafficViolations   int // reference-run traffic-shape checks that failed

	// WitnessViolations is the online monitor's total over the reference
	// run (zero unless a witness was attached).
	WitnessViolations uint64
	// FlightDump is the flight snapshot written for a non-equivalent sweep.
	FlightDump string
}

// Equivalent reports whether the crashed run matched the reference on every
// compared surface and the reference traffic kept its shape.
func (r ResizeResult) Equivalent() bool {
	return r.ResultMismatches == 0 && r.PayloadMismatches == 0 &&
		r.PositionMismatches == 0 && r.MigrationMismatches == 0 &&
		r.TrafficViolations == 0 && r.Rejoined
}

// String renders a one-screen summary.
func (r ResizeResult) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "resize: %d accesses, %d restart points, %d recoveries, %d records replayed\n",
		r.Accesses, r.Crashes, r.Recoveries, r.Replayed)
	fmt.Fprintf(&b, "  migrations: %d, drained: %v, rejoined: %v, torn tails: %d\n",
		r.Migrations, r.Drained, r.Rejoined, r.TornTails)
	fmt.Fprintf(&b, "  mismatches: results=%d payloads=%d positions=%d migrations=%d traffic=%d (crash-wave results skipped: %d)\n",
		r.ResultMismatches, r.PayloadMismatches, r.PositionMismatches,
		r.MigrationMismatches, r.TrafficViolations, r.SkippedResults)
	return b.String()
}

// resizeSchedule fixes the topology points as workload op indices. Both the
// reference and every crashed incarnation derive their actions from these
// plus the cluster's own recovered state, never from driver memory.
type resizeSchedule struct {
	member  int
	beginAt int // drain begins / member fail-stops before this op
	joinAt  int // join / replacement no earlier than this op
}

func scheduleFor(cfg ResizeConfig) resizeSchedule {
	return resizeSchedule{
		member:  cfg.Member,
		beginAt: cfg.Accesses / 4,
		joinAt:  cfg.Accesses * 3 / 4,
	}
}

// drainQuota is the migration budget after workload op i has committed: 4
// migration steps per op since the drain began. Purely a function of i, so
// a restarted driver recomputes the same pacing.
func (s resizeSchedule) drainQuota(i int) uint64 {
	if i < s.beginAt {
		return 0
	}
	return 4 * uint64(i-s.beginAt+1)
}

// linkShapeTap accumulates the attacker-visible frame shape: per-SDIMM frame
// counts and the set of frame lengths per (SDIMM, direction). The tap runs
// on pipeline workers, hence the lock; phase flips only happen between
// pipeline calls, when the workers are quiescent.
type linkShapeTap struct {
	mu      sync.Mutex
	phase   int // 0 before drain, 1 during, 2 after
	frames  [3][]uint64
	lengths [3]map[[2]int]map[int]bool
}

func newLinkShapeTap(sdimms int) *linkShapeTap {
	t := &linkShapeTap{}
	for p := range t.frames {
		t.frames[p] = make([]uint64, sdimms)
		t.lengths[p] = make(map[[2]int]map[int]bool)
	}
	return t
}

func (t *linkShapeTap) tap(sd int, dir fault.Direction, frame []byte) {
	t.mu.Lock()
	p := t.phase
	t.frames[p][sd]++
	key := [2]int{sd, int(dir)}
	set := t.lengths[p][key]
	if set == nil {
		set = make(map[int]bool)
		t.lengths[p][key] = set
	}
	set[len(frame)] = true
	t.mu.Unlock()
}

func (t *linkShapeTap) setPhase(p int) {
	t.mu.Lock()
	t.phase = p
	t.mu.Unlock()
}

// violations applies the traffic-shape checks to a completed reference run:
// the drain window must introduce no new frame length on any (SDIMM,
// direction) — a migration step has to look exactly like workload on the
// wire — and the draining member must keep receiving frames for the whole
// window (it is drained by placement, not by silencing, which would be a
// trivially observable signal).
func (t *linkShapeTap) violations(member int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := 0
	for key, during := range t.lengths[1] {
		before := t.lengths[0][key]
		for l := range during {
			if !before[l] {
				v++
			}
		}
	}
	if t.frames[1][member] == 0 {
		v++
	}
	return v
}

func resizeIndOpts(cfg ResizeConfig, dur *sdimm.DurabilityOptions, shape *linkShapeTap) sdimm.ClusterOptions {
	opts := sdimm.ClusterOptions{
		SDIMMs:     cfg.SDIMMs,
		Levels:     cfg.Levels,
		Key:        []byte("resize-campaign-key"),
		Seed:       cfg.Seed ^ 0xe1a57c,
		Durability: dur,
		Flight:     cfg.Flight,
	}
	if shape != nil {
		// The reference run carries the offline shape checker and the online
		// witness on the same tap: both judge exactly the traffic an attacker
		// on the links would see.
		w := cfg.Witness
		opts.LinkTap = func(sd int, dir fault.Direction, attempt int, frame []byte) {
			shape.tap(sd, dir, frame)
			w.Tap(sd, dir, attempt, frame)
		}
	}
	return opts
}

func resizeSplitOpts(cfg ResizeConfig, dur *sdimm.DurabilityOptions) sdimm.SplitClusterOptions {
	return sdimm.SplitClusterOptions{
		SDIMMs:      cfg.SDIMMs,
		Levels:      cfg.Levels,
		Key:         []byte("resize-split-key"),
		Seed:        cfg.Seed ^ 0x5b117,
		Parity:      true,
		Parallelism: cfg.Parallelism,
		Durability:  dur,
	}
}

// driveIndependent runs the workload-plus-rebalance schedule on an
// Independent cluster from wherever its durable state says it stopped.
// results[i] is filled for every workload op that completed without
// crashing. Returns crashed=true when a planned crash point fired.
func driveIndependent(c *sdimm.Cluster, cfg ResizeConfig, sched resizeSchedule,
	ops []chaosOp, results []crashOut, shape *linkShapeTap) (crashed bool, err error) {
	pipe := c.Pipeline(sdimm.PipelineOptions{Window: cfg.Batch, Parallelism: cfg.Parallelism})
	defer pipe.Close()

	// topUp advances the drain toward quota q: the next-lowest addresses
	// still on the draining member migrate in pipeline batches. Idempotent
	// given (cluster state, q) — exactly what crash resumption needs. The
	// drain completes the moment nothing is left, whatever q says.
	topUp := func(q uint64) (bool, error) {
		for {
			m, moved := c.Draining()
			if m < 0 || moved >= q {
				return false, nil
			}
			addrs := c.NextMigrations(int(q - moved))
			if len(addrs) == 0 {
				if err := c.CompleteDrain(); err != nil {
					return errors.Is(err, durable.ErrCrashed), err
				}
				return false, nil
			}
			batch := make([]sdimm.BatchOp, len(addrs))
			for j, a := range addrs {
				batch[j] = sdimm.BatchOp{Addr: a, Migrate: true}
			}
			for _, r := range pipe.Do(batch) {
				if r.Err != nil {
					return errors.Is(r.Err, durable.ErrCrashed), r.Err
				}
			}
		}
	}

	i := int(c.WorkloadSeq())
	// Resume a drain round the crash interrupted: the previous incarnation
	// had committed workload op i-1 and was topping up toward its quota.
	if m, _ := c.Draining(); m >= 0 && i > 0 {
		if crashed, err := topUp(sched.drainQuota(i - 1)); err != nil {
			return crashed, err
		}
	}

	for ; i < len(ops); i++ {
		// Topology actions derive from (op index, cluster state) alone.
		if i >= sched.beginAt && c.Incarnation(sched.member) == 0 && !c.Detached(sched.member) {
			if m, _ := c.Draining(); m < 0 {
				if shape != nil {
					shape.setPhase(1)
				}
				if err := c.BeginDrain(sched.member); err != nil {
					return errors.Is(err, durable.ErrCrashed), err
				}
			}
		}
		if i >= sched.joinAt && c.Detached(sched.member) {
			if err := c.AddSDIMM(sched.member); err != nil {
				return errors.Is(err, durable.ErrCrashed), err
			}
		}

		op := ops[i]
		rs := pipe.Do([]sdimm.BatchOp{{Addr: op.addr, Write: op.write, Data: op.data}})
		if errors.Is(rs[0].Err, durable.ErrCrashed) {
			return true, nil
		}
		results[i] = crashOut{data: append([]byte(nil), rs[0].Data...), err: rs[0].Err, valid: true}

		if crashed, err := topUp(sched.drainQuota(i)); err != nil {
			return crashed, err
		}
		if shape != nil {
			if m, _ := c.Draining(); m < 0 && c.Detached(sched.member) {
				shape.setPhase(2)
			}
		}
	}

	// Workload exhausted: run any unfinished drain to the end, then join.
	if m, _ := c.Draining(); m >= 0 {
		if crashed, err := topUp(^uint64(0) >> 1); err != nil {
			return crashed, err
		}
	}
	if c.Detached(sched.member) {
		if err := c.AddSDIMM(sched.member); err != nil {
			return errors.Is(err, durable.ErrCrashed), err
		}
	}
	return false, nil
}

// driveSplit runs the workload-plus-replacement schedule on a Split cluster
// from wherever its durable state says it stopped.
func driveSplit(c *sdimm.SplitCluster, cfg ResizeConfig, sched resizeSchedule,
	ops []chaosOp, results []crashOut) (crashed bool, err error) {
	memberFailed := func() bool {
		for _, m := range c.Health().Failed() {
			if m == sched.member {
				return true
			}
		}
		return false
	}
	// applyTopology re-derives the fail/replace actions from state. The
	// fail-stop is not journaled (it is an external event, not a committed
	// state change), so after a restart it is re-applied here before any
	// further traffic — the same rule the reference run follows.
	applyTopology := func(i int) error {
		if c.Incarnation(sched.member) != 0 {
			return nil
		}
		if i >= sched.beginAt && !memberFailed() {
			c.FailShard(sched.member)
		}
		if i >= sched.joinAt {
			return c.ReplaceMember(sched.member)
		}
		return nil
	}

	i := int(c.WorkloadSeq())
	for ; i < len(ops); i++ {
		if err := applyTopology(i); err != nil {
			return errors.Is(err, durable.ErrCrashed), err
		}
		op := ops[i]
		var got []byte
		var opErr error
		if op.write {
			opErr = c.Write(op.addr, op.data)
		} else {
			got, opErr = c.Read(op.addr)
		}
		if errors.Is(opErr, durable.ErrCrashed) {
			return true, nil
		}
		results[i] = crashOut{data: append([]byte(nil), got...), err: opErr, valid: true}
	}
	if err := applyTopology(len(ops)); err != nil {
		return errors.Is(err, durable.ErrCrashed), err
	}
	return false, nil
}

// resizeDriver is the surface the sweep loop needs from either flavour.
type resizeDriver interface {
	crashDriver
	WorkloadSeq() uint64
	MigrationSeq() uint64
	Incarnation(i int) uint64
	Draining() (member int, moved uint64)
}

// RunResize executes one resize chaos sweep. It returns an error only for
// harness-level failures; divergence is reported in the result.
func RunResize(cfg ResizeConfig) (ResizeResult, error) {
	cfg = withResizeDefaults(cfg)
	sched := scheduleFor(cfg)
	if sched.beginAt <= 0 || sched.joinAt <= sched.beginAt || sched.joinAt >= cfg.Accesses {
		return ResizeResult{}, fmt.Errorf("chaos: %d accesses leave no room for the resize schedule", cfg.Accesses)
	}
	if cfg.Member < 0 || cfg.Member >= cfg.SDIMMs {
		return ResizeResult{}, fmt.Errorf("chaos: member %d out of range", cfg.Member)
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "sdimm-resize-*")
		if err != nil {
			return ResizeResult{}, err
		}
		defer os.RemoveAll(dir)
	}

	ops := buildWorkload(Config{Accesses: cfg.Accesses, Addresses: cfg.Addresses, Seed: cfg.Seed})
	res := ResizeResult{Accesses: cfg.Accesses}

	// Reference run: same driver, no durability, never crashed. Seq still
	// counts every would-be journal record, which tells us the total stream
	// length the crash points are drawn over. The link tap (Independent
	// only) collects the traffic-shape evidence here — replayed exchanges
	// on crashed incarnations would pollute the counts.
	refRes := make([]crashOut, len(ops))
	var refPos map[uint64]uint64
	var refMig, refTotal uint64
	if cfg.Split {
		refC, err := sdimm.NewSplitCluster(resizeSplitOpts(cfg, nil))
		if err != nil {
			return res, err
		}
		if crashed, err := driveSplit(refC, cfg, sched, ops, refRes); err != nil || crashed {
			refC.Close()
			return res, fmt.Errorf("chaos: reference resize run failed: %v", err)
		}
		refPos = refC.Positions()
		refMig, refTotal = refC.MigrationSeq(), refC.Seq()
		refC.Close()
	} else {
		shape := newLinkShapeTap(cfg.SDIMMs)
		refC, err := sdimm.NewCluster(resizeIndOpts(cfg, nil, shape))
		if err != nil {
			return res, err
		}
		if crashed, err := driveIndependent(refC, cfg, sched, ops, refRes, shape); err != nil || crashed {
			refC.Close()
			return res, fmt.Errorf("chaos: reference resize run failed: %v", err)
		}
		refPos = refC.Positions()
		refMig, refTotal = refC.MigrationSeq(), refC.Seq()
		res.TrafficViolations = shape.violations(cfg.Member)
		refC.Close()
	}
	res.Migrations = int(refMig)
	refFinal := map[uint64][]byte{}
	for i, r := range refRes {
		if !r.valid || r.err != nil {
			return res, fmt.Errorf("chaos: reference op %d errored: %v", i, r.err)
		}
		if ops[i].write {
			refFinal[ops[i].addr] = ops[i].data
		}
	}

	// Seeded restart points, unique and ascending over the total record
	// stream (workload + migrations + topology records).
	pr := rng.New(cfg.Seed ^ 0x4e51de)
	ptSet := map[uint64]bool{}
	for len(ptSet) < cfg.Crashes {
		ptSet[1+pr.Uint64n(refTotal-1)] = true
	}
	pts := make([]uint64, 0, len(ptSet))
	for p := range ptSet {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })

	// Crashed run: durable cluster, killed at the seeded points, recovered
	// from disk, re-driven from recovered state alone.
	results := make([]crashOut, len(ops))
	dur := &sdimm.DurabilityOptions{Dir: dir, Interval: cfg.Interval}
	var d resizeDriver
	var closeC func()
	var drive func() (bool, error)
	if cfg.Split {
		c, err := sdimm.NewSplitCluster(resizeSplitOpts(cfg, dur))
		if err != nil {
			return res, err
		}
		d, closeC = c, c.Close
		drive = func() (bool, error) { return driveSplit(c, cfg, sched, ops, results) }
	} else {
		c, err := sdimm.NewCluster(resizeIndOpts(cfg, dur, nil))
		if err != nil {
			return res, err
		}
		d, closeC = c, func() { c.Close() }
		drive = func() (bool, error) { return driveIndependent(c, cfg, sched, ops, results, nil) }
	}

	pi := 0
	for {
		if pi < len(pts) {
			if err := d.PlanCrash(int(pts[pi]-d.Seq()), int(pr.Uint64n(160))); err != nil {
				closeC()
				return res, err
			}
		}
		crashed, err := drive()
		if err != nil && !crashed {
			closeC()
			return res, err
		}
		if !crashed {
			break
		}
		closeC()
		res.Crashes++
		pi++

		var report *durable.RecoveryReport
		if cfg.Split {
			c, rep, rerr := sdimm.RecoverSplitCluster(resizeSplitOpts(cfg, dur))
			if rerr != nil {
				return res, rerr
			}
			d, closeC, report = c, c.Close, rep
			drive = func() (bool, error) { return driveSplit(c, cfg, sched, ops, results) }
		} else {
			c, rep, rerr := sdimm.RecoverCluster(resizeIndOpts(cfg, dur, nil))
			if rerr != nil {
				return res, rerr
			}
			d, closeC, report = c, func() { c.Close() }, rep
			drive = func() (bool, error) { return driveIndependent(c, cfg, sched, ops, results, nil) }
		}
		res.Recoveries++
		res.Replayed += report.RecordsReplayed
		if report.TornTail {
			res.TornTails++
		}
	}

	// Per-operation results (crash-wave casualties are covered by the final
	// payload sweep instead).
	for i, r := range results {
		if !r.valid {
			res.SkippedResults++
			continue
		}
		ref := refRes[i]
		switch {
		case (r.err == nil) != (ref.err == nil):
			res.ResultMismatches++
		case r.err == nil && !ops[i].write && !bytes.Equal(r.data, ref.data):
			res.ResultMismatches++
		}
	}

	drainActive, _ := d.Draining()
	res.Drained = cfg.Split || (drainActive < 0 && d.Incarnation(cfg.Member) > 0)
	res.Rejoined = d.Incarnation(cfg.Member) > 0
	if d.MigrationSeq() != refMig {
		res.MigrationMismatches++
	}

	// Position-map equivalence, before the sweep below disturbs it.
	gotPos := d.Positions()
	for a, l := range refPos {
		if gl, ok := gotPos[a]; !ok || gl != l {
			res.PositionMismatches++
		}
	}
	for a := range gotPos {
		if _, ok := refPos[a]; !ok {
			res.PositionMismatches++
		}
	}

	// Final payload sweep: every address must read back exactly what the
	// reference run left there (zeros if never written) — nothing lost in
	// the migrations or the rebuild, nothing corrupted by a crash.
	for addr := uint64(0); addr < cfg.Addresses; addr++ {
		want := refFinal[addr]
		if want == nil {
			want = make([]byte, payloadLen)
		}
		got, err := d.Read(addr)
		if err != nil {
			res.PayloadMismatches++
			continue
		}
		if !bytes.Equal(got[:payloadLen], want) {
			res.PayloadMismatches++
		}
	}
	closeC()
	res.WitnessViolations = cfg.Witness.Violations()
	res.FlightDump = maybeDumpFlight(cfg.Flight, cfg.FlightPath,
		!res.Equivalent() || res.WitnessViolations > 0)
	return res, nil
}
