package chaos

import "testing"

// checkCrash runs one sweep and asserts the core contract: every seeded
// restart point fired, every recovery happened, and the recovered run is
// bitwise-equivalent to the uncrashed reference.
func checkCrash(t *testing.T, cfg CrashConfig) CrashResult {
	t.Helper()
	res, err := RunCrash(cfg)
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	if res.Crashes != cfg.Crashes || res.Recoveries != cfg.Crashes {
		t.Fatalf("exercised %d crashes / %d recoveries, want %d\n%s", res.Crashes, res.Recoveries, cfg.Crashes, res)
	}
	if !res.Equivalent() {
		t.Fatalf("recovered cluster diverged from reference:\n%s", res)
	}
	return res
}

func crashCfg(t *testing.T) CrashConfig {
	cfg := CrashConfig{Accesses: 600, Crashes: 3, Seed: 11, Interval: 48}
	if testing.Short() {
		cfg.Accesses, cfg.Crashes = 200, 1
	}
	return cfg
}

func TestCrashRecoveryEquivalenceSequential(t *testing.T) {
	cfg := crashCfg(t)
	res := checkCrash(t, cfg)
	// Checkpoint cadence 48 with uniform crash points makes replay work all
	// but certain; a zero here means the journal path went untested.
	if res.Replayed == 0 {
		t.Fatalf("no journal records replayed:\n%s", res)
	}
	if res.TornTails == 0 {
		t.Fatalf("no torn journal tail observed across %d tears:\n%s", cfg.Crashes, res)
	}
}

func TestCrashRecoveryEquivalenceParallel(t *testing.T) {
	cfg := crashCfg(t)
	cfg.Parallelism = 4
	res := checkCrash(t, cfg)
	if res.Replayed == 0 {
		t.Fatalf("no journal records replayed:\n%s", res)
	}
}

// TestCrashRecoveryEquivalenceRing tears the journal mid-stream while the
// ring-eviction engines hold live deferred-flush state: a recovery that
// failed to restore the eviction pointer or pending countdown would evict
// different buckets after the restart and diverge from the reference.
func TestCrashRecoveryEquivalenceRing(t *testing.T) {
	cfg := crashCfg(t)
	cfg.RingFlushInterval = 4
	res := checkCrash(t, cfg)
	if res.Replayed == 0 {
		t.Fatalf("no journal records replayed:\n%s", res)
	}
}

// TestCrashRecoveryEquivalenceRingParallel layers the batched pipeline on
// the ring crash sweep, so tears land mid-wave with flushes pending.
func TestCrashRecoveryEquivalenceRingParallel(t *testing.T) {
	cfg := crashCfg(t)
	cfg.RingFlushInterval = 4
	cfg.Parallelism = 4
	checkCrash(t, cfg)
}

func TestCrashRecoveryEquivalenceSplit(t *testing.T) {
	cfg := crashCfg(t)
	cfg.Split = true
	checkCrash(t, cfg)
}

func TestCrashRecoveryCorruptIndependent(t *testing.T) {
	cfg := crashCfg(t)
	cfg.Corrupt = true
	res := checkCrash(t, cfg)
	// Every corrupt point flips one sealed bucket; with no cross-SDIMM
	// redundancy the scrub must quarantine each rather than serve it.
	if res.Unrecoverable != cfg.Crashes {
		t.Fatalf("scrub quarantined %d buckets, want %d:\n%s", res.Unrecoverable, cfg.Crashes, res)
	}
	if res.Repaired != 0 {
		t.Fatalf("independent scrub claims %d parity repairs:\n%s", res.Repaired, res)
	}
}

func TestCrashRecoveryCorruptSplitRepairsFromParity(t *testing.T) {
	cfg := crashCfg(t)
	cfg.Split = true
	cfg.Corrupt = true
	res := checkCrash(t, cfg)
	if res.Repaired != cfg.Crashes {
		t.Fatalf("parity scrub repaired %d buckets, want %d:\n%s", res.Repaired, cfg.Crashes, res)
	}
	if res.Unrecoverable != 0 || res.PoisonedAddrs != 0 || res.PoisonedReads != 0 {
		t.Fatalf("split recovery lost data despite parity:\n%s", res)
	}
}
