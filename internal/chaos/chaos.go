// Package chaos is the fault-injection harness for distributed SDIMM
// clusters: it drives a randomized read/write workload through a cluster
// whose links misbehave on a deterministic schedule, and checks two things
// the recovery layer promises:
//
//  1. Functional correctness — every completed read returns exactly what a
//     reference map says it should, no matter how many frames were dropped,
//     flipped, duplicated, replayed, or stalled along the way.
//  2. Obliviousness under faults — retries never change the observable
//     traffic: every retransmission is byte-identical to the original
//     frame, and every error-free access puts the same number of exchanges
//     on the wire (one ACCESS plus one APPEND per SDIMM).
//
// Both the `go test` chaos suite and the cmd/sdimm-chaos CLI drive this
// package, so the acceptance run is reproducible from either entry point.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"

	"sdimm"
	"sdimm/internal/blame"
	"sdimm/internal/fault"
	"sdimm/internal/flight"
	"sdimm/internal/rng"
	"sdimm/internal/telemetry"
	"sdimm/internal/witness"
)

// payloadLen is the number of payload bytes the harness writes and
// verifies per block.
const payloadLen = 24

// Config sizes one chaos run against the Independent-protocol cluster.
type Config struct {
	// SDIMMs and Levels size the cluster (defaults 4 and 10).
	SDIMMs int
	Levels int
	// Accesses is the number of read/write operations (default 5000).
	Accesses int
	// Addresses is the size of the address working set (default 96).
	Addresses uint64
	// Seed drives the workload and (xored) the cluster's leaf assignment.
	Seed uint64
	// Faults is the injector schedule; Faults.Rate() is the per-delivery
	// fault probability.
	Faults fault.Config
	// Retry is the cluster's recovery budget (zero value = defaults).
	Retry fault.RetryPolicy
	// RingFlushInterval, when > 0, runs the campaign against ring-eviction
	// ORAM engines with this deferred-flush interval A instead of the Path
	// ORAM default. The wire shape is unchanged, so every invariant —
	// traffic, witness, payload — applies as-is.
	RingFlushInterval int
	// CheckTraffic enables the obliviousness invariant checks via the
	// cluster's link tap.
	CheckTraffic bool
	// Parallelism, when > 1, drives the workload through the cluster's
	// batched access pipeline with this many concurrent SDIMM workers
	// instead of the sequential Read/Write loop. The workload, the cluster
	// seed, and every invariant stay the same; a parallel run must match a
	// sequential run bit-for-bit on all of them.
	Parallelism int
	// Batch is the pipeline window for parallel runs (default 8). Ignored
	// when Parallelism ≤ 1.
	Batch int
	// Telemetry, when set, receives the cluster's metrics (cluster.*,
	// fault.*, seccomm.*); the run's final snapshot lands in
	// Result.Snapshot.
	Telemetry *telemetry.Registry
	// Tracer, when set, records cluster access spans and health instants.
	Tracer *telemetry.Tracer
	// Witness, when set, attaches the online obliviousness monitor to the
	// cluster's link tap (chained after the traffic checker when
	// CheckTraffic is also on). Its violation total lands in
	// Result.WitnessViolations.
	Witness *witness.Monitor
	// Blame, when set, collects wave-level phase timings on parallel runs.
	Blame *blame.Collector
	// Flight, when set, attaches the flight recorder to the cluster. When
	// FlightPath is also set and the run goes red (mismatches, traffic or
	// witness violations, or errors), the rings are dumped there as a
	// Chrome-trace snapshot and Result.FlightDump records the path.
	Flight     *flight.Recorder
	FlightPath string
}

// Result summarizes a chaos run.
type Result struct {
	// Accesses actually issued; Reads+Writes are the ones that completed.
	Accesses int
	Reads    int
	Writes   int
	// Errors is the number of accesses that surfaced an error (the retry
	// budget was exhausted); their addresses drop out of verification.
	Errors int
	// Mismatches counts completed reads whose payload differed from the
	// reference map — the harness's core failure signal, must be zero.
	Mismatches int
	// TrafficViolations counts breaches of the obliviousness invariant:
	// a retransmitted frame that differed from the original, or an
	// error-free access with an unexpected exchange count.
	TrafficViolations int
	// FaultRate is the configured per-delivery fault probability.
	FaultRate float64
	// FaultStats is what the injector actually did.
	FaultStats fault.Stats
	// Health is the cluster's final health view.
	Health sdimm.ClusterHealth
	// Snapshot is the final telemetry snapshot (nil unless the run was
	// given a registry).
	Snapshot *telemetry.Snapshot
	// WitnessViolations is the online monitor's violation total (zero
	// unless the run was given a witness).
	WitnessViolations uint64
	// FlightDump is the path of the flight-recorder snapshot written for a
	// red run ("" when the run stayed green or no recorder was attached).
	FlightDump string
}

// String renders a one-screen summary.
func (r Result) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "chaos: %d accesses (%d reads, %d writes), %d errors\n",
		r.Accesses, r.Reads, r.Writes, r.Errors)
	fmt.Fprintf(&b, "  payload mismatches:  %d\n", r.Mismatches)
	fmt.Fprintf(&b, "  traffic violations:  %d\n", r.TrafficViolations)
	fmt.Fprintf(&b, "  fault rate %.2f%%: %+v\n", 100*r.FaultRate, r.FaultStats)
	for _, sd := range r.Health.SDIMMs {
		fmt.Fprintf(&b, "  %s: %s, %d/%d ok, retries=%d arq=%d resyncs=%d\n",
			sd.ID, sd.State, sd.Successes, sd.Successes+sd.Failures, sd.Retries, sd.Retransmits, sd.Resyncs)
	}
	return b.String()
}

// trafficChecker enforces the obliviousness invariant from the link tap:
// within one exchange, all frames per direction must be byte-identical
// (attempt 0 opens the exchange on the host→device leg).
//
// It is safe under the parallel engine: the aggregate counters are atomic,
// and the per-SDIMM frame state is only ever touched by the single
// goroutine currently driving that SDIMM's link (worker i owns link i;
// the coordinator only uses links between barriers).
type trafficChecker struct {
	started    atomic.Uint64 // exchanges opened (attempt-0 host→device frames)
	violations atomic.Uint64
	curReq     [][]byte
	curResp    [][]byte
}

func newTrafficChecker(sdimms int) *trafficChecker {
	return &trafficChecker{curReq: make([][]byte, sdimms), curResp: make([][]byte, sdimms)}
}

func (t *trafficChecker) tap(sd int, dir fault.Direction, attempt int, frame []byte) {
	if dir == fault.HostToDev {
		if attempt == 0 {
			t.started.Add(1)
			t.curReq[sd] = append([]byte(nil), frame...)
			t.curResp[sd] = nil
			return
		}
		if !bytes.Equal(frame, t.curReq[sd]) {
			t.violations.Add(1)
		}
		return
	}
	if t.curResp[sd] == nil {
		t.curResp[sd] = append([]byte(nil), frame...)
		return
	}
	if !bytes.Equal(frame, t.curResp[sd]) {
		t.violations.Add(1)
	}
}

func withDefaults(cfg Config) Config {
	if cfg.SDIMMs == 0 {
		cfg.SDIMMs = 4
	}
	if cfg.Levels == 0 {
		cfg.Levels = 10
	}
	if cfg.Accesses == 0 {
		cfg.Accesses = 5000
	}
	if cfg.Addresses == 0 {
		cfg.Addresses = 96
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

func abandonedTotal(h sdimm.ClusterHealth) uint64 {
	var n uint64
	for _, sd := range h.SDIMMs {
		n += sd.Abandoned
	}
	return n
}

// chaosOp is one pre-drawn workload operation. The workload is generated up
// front — with exactly the RNG draw sequence the historical per-access loop
// used — so the sequential and batched drivers replay identical streams.
type chaosOp struct {
	addr  uint64
	write bool
	data  []byte
}

func buildWorkload(cfg Config) []chaosOp {
	r := rng.New(cfg.Seed)
	ops := make([]chaosOp, cfg.Accesses)
	for i := range ops {
		ops[i].addr = r.Uint64n(cfg.Addresses)
		if r.Bool(0.5) {
			ops[i].write = true
			ops[i].data = make([]byte, payloadLen)
			for j := range ops[i].data {
				ops[i].data[j] = byte(r.Uint64n(256))
			}
		}
	}
	return ops
}

// verify folds one completed operation into the result: reference-map
// bookkeeping, mismatch detection, and error accounting. Must be called in
// logical-op order (the pipeline preserves per-address ordering, so replaying
// its results in submission order is exact).
func verify(res *Result, ref map[uint64][]byte, unknown map[uint64]bool,
	op chaosOp, got []byte, opErr error) {
	res.Accesses++
	if opErr != nil {
		// Exhausted retry budget: the address's state is unknown until the
		// next successful write. At realistic fault rates this should never
		// fire — the caller asserts Errors == 0.
		res.Errors++
		unknown[op.addr] = true
		return
	}
	if op.write {
		ref[op.addr] = op.data
		delete(unknown, op.addr)
		res.Writes++
		return
	}
	res.Reads++
	if !unknown[op.addr] {
		want := ref[op.addr]
		if want == nil {
			want = make([]byte, payloadLen)
		}
		if !bytes.Equal(got[:payloadLen], want) {
			res.Mismatches++
		}
	}
}

// Run executes one chaos campaign against an Independent cluster. With
// Parallelism > 1 the same workload goes through the cluster's batched
// access pipeline; every Result field must come out identical either way.
func Run(cfg Config) (Result, error) {
	cfg = withDefaults(cfg)
	in := fault.NewInjector(cfg.Faults)
	tc := newTrafficChecker(cfg.SDIMMs)
	opts := sdimm.ClusterOptions{
		SDIMMs:            cfg.SDIMMs,
		Levels:            cfg.Levels,
		RingFlushInterval: cfg.RingFlushInterval,
		Key:               []byte("chaos-campaign-key"),
		Seed:              cfg.Seed ^ 0xc0ffee,
		Faults:            in,
		Retry:             cfg.Retry,
		Telemetry:         cfg.Telemetry,
		Tracer:            cfg.Tracer,
		Blame:             cfg.Blame,
		Flight:            cfg.Flight,
	}
	switch {
	case cfg.CheckTraffic && cfg.Witness != nil:
		w := cfg.Witness
		opts.LinkTap = func(sd int, dir fault.Direction, attempt int, frame []byte) {
			tc.tap(sd, dir, attempt, frame)
			w.Tap(sd, dir, attempt, frame)
		}
	case cfg.CheckTraffic:
		opts.LinkTap = tc.tap
	case cfg.Witness != nil:
		opts.LinkTap = cfg.Witness.Tap
	}
	c, err := sdimm.NewCluster(opts)
	if err != nil {
		return Result{}, err
	}

	res := Result{FaultRate: cfg.Faults.Rate()}
	ops := buildWorkload(cfg)
	if cfg.Parallelism > 1 {
		runBatched(cfg, c, tc, ops, &res)
	} else {
		runSequential(cfg, c, tc, ops, &res)
	}
	res.TrafficViolations += int(tc.violations.Load())
	res.FaultStats = in.Stats()
	res.Health = c.Health()
	res.WitnessViolations = cfg.Witness.Violations()
	if cfg.Telemetry != nil {
		s := cfg.Telemetry.Snapshot()
		res.Snapshot = &s
	}
	res.FlightDump = maybeDumpFlight(cfg.Flight, cfg.FlightPath,
		res.Mismatches > 0 || res.TrafficViolations > 0 || res.Errors > 0 || res.WitnessViolations > 0)
	return res, nil
}

// maybeDumpFlight writes the flight-recorder snapshot when a check went red
// and a recorder plus destination were configured, returning the written
// path ("" otherwise). Dump errors are swallowed — a failing post-mortem
// artifact must never mask the failure it documents.
func maybeDumpFlight(fr *flight.Recorder, path string, red bool) string {
	if fr == nil || path == "" || !red {
		return ""
	}
	if err := fr.DumpFile(path); err != nil {
		return ""
	}
	return path
}

// runSequential is the one-access-at-a-time driver with the per-access
// exchange-count form of the obliviousness invariant.
func runSequential(cfg Config, c *sdimm.Cluster, tc *trafficChecker, ops []chaosOp, res *Result) {
	ref := map[uint64][]byte{}
	unknown := map[uint64]bool{}
	prevAbandoned := uint64(0)
	wantExchanges := uint64(cfg.SDIMMs + 1) // one ACCESS + one APPEND per SDIMM
	for _, op := range ops {
		startExchanges := tc.started.Load()
		var got []byte
		var opErr error
		if op.write {
			opErr = c.Write(op.addr, op.data)
		} else {
			got, opErr = c.Read(op.addr)
		}
		verify(res, ref, unknown, op, got, opErr)
		abandoned := abandonedTotal(c.Health())
		if cfg.CheckTraffic && opErr == nil && abandoned == prevAbandoned {
			if got := tc.started.Load() - startExchanges; got != wantExchanges {
				res.TrafficViolations++
			}
		}
		prevAbandoned = abandoned
	}
}

// runBatched drives the same workload through the access pipeline. Accesses
// interleave on the wire, so the obliviousness invariant takes its whole-run
// form: with zero errors and zero abandoned exchanges, the total exchange
// count must be exactly accesses × (SDIMMs + 1) — any retry that added or
// mutated traffic shows up as a violation, same as the per-access check.
func runBatched(cfg Config, c *sdimm.Cluster, tc *trafficChecker, ops []chaosOp, res *Result) {
	batch := cfg.Batch
	if batch <= 0 {
		batch = 8
	}
	pipe := c.Pipeline(sdimm.PipelineOptions{Window: batch, Parallelism: cfg.Parallelism})
	defer pipe.Close()

	bops := make([]sdimm.BatchOp, len(ops))
	for i, op := range ops {
		bops[i] = sdimm.BatchOp{Addr: op.addr, Write: op.write, Data: op.data}
	}
	results := pipe.Do(bops)

	ref := map[uint64][]byte{}
	unknown := map[uint64]bool{}
	for i, op := range ops {
		verify(res, ref, unknown, op, results[i].Data, results[i].Err)
	}
	if cfg.CheckTraffic && res.Errors == 0 && abandonedTotal(c.Health()) == 0 {
		want := uint64(len(ops)) * uint64(cfg.SDIMMs+1)
		if got := tc.started.Load(); got != want {
			res.TrafficViolations++
		}
	}
}

// SplitConfig sizes a chaos run against the Split-protocol cluster. Split
// members are exercised with fail-stop faults (the shard fan-out runs
// in-process), checking that parity reconstruction keeps every payload
// intact across a mid-run member loss.
type SplitConfig struct {
	SDIMMs    int
	Levels    int
	Accesses  int
	Addresses uint64
	Seed      uint64
	// Parity adds the XOR parity member.
	Parity bool
	// FailShardAt is the access index at which FailShard fires (< 0 never).
	FailShardAt int
	// FailShard is the member index to kill (data shards 0..SDIMMs-1,
	// SDIMMs = parity).
	FailShard int
	// Parallelism, when > 1, fans each access's shard slices out to
	// per-member workers (see sdimm.SplitClusterOptions.Parallelism).
	Parallelism int
	// Telemetry and Tracer mirror Config's fields for the Split cluster.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
}

// RunSplit executes one chaos campaign against a Split cluster.
func RunSplit(cfg SplitConfig) (Result, error) {
	c0 := withDefaults(Config{SDIMMs: cfg.SDIMMs, Levels: cfg.Levels, Accesses: cfg.Accesses,
		Addresses: cfg.Addresses, Seed: cfg.Seed})
	c, err := sdimm.NewSplitCluster(sdimm.SplitClusterOptions{
		SDIMMs:      c0.SDIMMs,
		Levels:      c0.Levels,
		Key:         []byte("chaos-split-key"),
		Seed:        c0.Seed ^ 0x5eed,
		Parity:      cfg.Parity,
		Parallelism: cfg.Parallelism,
		Telemetry:   cfg.Telemetry,
		Tracer:      cfg.Tracer,
	})
	if err != nil {
		return Result{}, err
	}
	defer c.Close()
	var res Result
	ref := map[uint64][]byte{}
	unknown := map[uint64]bool{}
	r := rng.New(c0.Seed)
	for i := 0; i < c0.Accesses; i++ {
		if i == cfg.FailShardAt {
			c.FailShard(cfg.FailShard)
		}
		addr := r.Uint64n(c0.Addresses)
		var opErr error
		if r.Bool(0.5) {
			data := make([]byte, payloadLen)
			for j := range data {
				data[j] = byte(r.Uint64n(256))
			}
			if opErr = c.Write(addr, data); opErr == nil {
				ref[addr] = data
				delete(unknown, addr)
				res.Writes++
			}
		} else {
			var got []byte
			if got, opErr = c.Read(addr); opErr == nil {
				res.Reads++
				if !unknown[addr] {
					want := ref[addr]
					if want == nil {
						want = make([]byte, payloadLen)
					}
					if !bytes.Equal(got[:payloadLen], want) {
						res.Mismatches++
					}
				}
			}
		}
		res.Accesses++
		if opErr != nil {
			res.Errors++
			unknown[addr] = true
			// A second member loss without parity headroom is fatal for the
			// whole run, not just this address.
			if errors.Is(opErr, fault.ErrUnavailable) {
				res.Health = c.Health()
				return res, opErr
			}
		}
	}
	res.Health = c.Health()
	if cfg.Telemetry != nil {
		s := cfg.Telemetry.Snapshot()
		res.Snapshot = &s
	}
	return res, nil
}
