package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"

	"sdimm"
	"sdimm/internal/durable"
	"sdimm/internal/flight"
	"sdimm/internal/rng"
	"sdimm/internal/telemetry"
)

// This file is the crash-point chaos mode: the same seeded workload runs
// twice, once on an uncrashed reference cluster and once on a durable
// cluster that is killed at seeded points and restarted from disk. The
// recovered run must be bitwise-equivalent to the reference — per-operation
// results, final payloads, the position map, and the final incarnation's
// telemetry deltas. Links are fault-free here on purpose: the sweep isolates
// the durability layer, while the link-fault campaign (Run/RunSplit) covers
// the channel.

// CrashConfig sizes one crash-recovery equivalence campaign.
type CrashConfig struct {
	// SDIMMs and Levels size the cluster (defaults 4 and 8).
	SDIMMs int
	Levels int
	// Accesses is the workload length (default 1200).
	Accesses int
	// Addresses is the address working-set size (default 96).
	Addresses uint64
	// Seed drives the workload, the cluster leaf assignment (xored, same
	// derivation as the link-fault campaign), and the crash points.
	Seed uint64
	// Crashes is the number of seeded restart points, drawn uniquely from
	// (0, Accesses) (default 4).
	Crashes int
	// Parallelism > 1 drives Independent segments through the batched access
	// pipeline (crash points then land mid-wave); Split clusters use it for
	// intra-access shard fan-out. Results must be identical at any value.
	Parallelism int
	// Batch is the pipeline window for parallel Independent runs (default 8).
	Batch int
	// Dir is the state directory; empty uses a fresh temp dir removed when
	// the sweep finishes.
	Dir string
	// Interval is the checkpoint cadence in committed accesses (default 64).
	Interval int
	// Corrupt switches the restart points from journal tears to on-disk
	// damage: one member's sealed bucket gets a ciphertext bit flipped and
	// the damage is checkpointed before the restart, so the recovery scrub —
	// not the journal — has to catch it. Independent clusters may then
	// poison provably-lost addresses (reads fail with ErrUnrecoverable
	// instead of returning wrong bytes); Split clusters must repair from
	// parity and stay fully equivalent.
	Corrupt bool
	// Split runs the Split protocol with the XOR parity member.
	Split bool
	// RingFlushInterval, when > 0, gives Independent incarnations
	// ring-eviction ORAM engines with this deferred-flush interval A. The
	// eviction pointer and pending-flush countdown ride the checkpoint, so
	// the sweep's bitwise-equivalence demand covers them. Ignored for Split.
	RingFlushInterval int
	// Flight, when set, attaches the flight recorder to every Independent
	// incarnation (the rings span restarts); when FlightPath is also set
	// and the sweep is not Equivalent(), the rings are dumped there.
	Flight     *flight.Recorder
	FlightPath string
}

// CrashResult summarizes one crash sweep. The sweep passes iff Equivalent().
type CrashResult struct {
	Accesses   int
	Crashes    int // restart points exercised
	Recoveries int
	Replayed   int // journal records replayed across all recoveries
	TornTails  int // recoveries that found a mid-record tear

	Repaired      int // buckets rebuilt from parity by the scrub
	Unrecoverable int // buckets quarantined with no redundancy left
	PoisonedAddrs int // addresses poisoned by the scrub
	PoisonedReads int // reads refused with ErrUnrecoverable (Corrupt mode only)

	// SkippedResults counts operations whose only observed result was the
	// crash itself (committed in the dying wave); their effects are verified
	// by the final payload sweep instead.
	SkippedResults int

	ResultMismatches    int // per-operation result diverged from the reference
	PayloadMismatches   int // final payload sweep diverged
	PositionMismatches  int // final position map diverged
	TelemetryMismatches int // final incarnation's access counters diverged

	// FlightDump is the flight-recorder snapshot written when the sweep
	// diverged ("" when equivalent or no recorder was attached).
	FlightDump string
}

// Equivalent reports whether the recovered run matched the uncrashed
// reference on every compared surface.
func (r CrashResult) Equivalent() bool {
	return r.ResultMismatches == 0 && r.PayloadMismatches == 0 &&
		r.PositionMismatches == 0 && r.TelemetryMismatches == 0
}

// String renders a one-screen summary.
func (r CrashResult) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "crash: %d accesses, %d restart points, %d recoveries, %d records replayed\n",
		r.Accesses, r.Crashes, r.Recoveries, r.Replayed)
	fmt.Fprintf(&b, "  torn tails: %d, repaired: %d, unrecoverable: %d, poisoned addrs: %d, poisoned reads: %d\n",
		r.TornTails, r.Repaired, r.Unrecoverable, r.PoisonedAddrs, r.PoisonedReads)
	fmt.Fprintf(&b, "  mismatches: results=%d payloads=%d positions=%d telemetry=%d (crash-wave results skipped: %d)\n",
		r.ResultMismatches, r.PayloadMismatches, r.PositionMismatches, r.TelemetryMismatches, r.SkippedResults)
	return b.String()
}

func withCrashDefaults(cfg CrashConfig) CrashConfig {
	if cfg.SDIMMs == 0 {
		cfg.SDIMMs = 4
	}
	if cfg.Levels == 0 {
		cfg.Levels = 8
	}
	if cfg.Accesses == 0 {
		cfg.Accesses = 1200
	}
	if cfg.Addresses == 0 {
		cfg.Addresses = 96
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Crashes == 0 {
		cfg.Crashes = 4
	}
	if cfg.Batch == 0 {
		cfg.Batch = 8
	}
	if cfg.Interval == 0 {
		cfg.Interval = 64
	}
	return cfg
}

// crashDriver is the cluster surface the sweep drives; both protocol
// flavours satisfy it.
type crashDriver interface {
	Read(addr uint64) ([]byte, error)
	Write(addr uint64, data []byte) error
	Seq() uint64
	PlanCrash(afterRecords, tearBytes int) error
	ForceCheckpoint() error
	CorruptBucket(member, k int) (uint64, bool)
	Positions() map[uint64]uint64
}

func crashIndOpts(cfg CrashConfig, reg *telemetry.Registry, dur *sdimm.DurabilityOptions) sdimm.ClusterOptions {
	return sdimm.ClusterOptions{
		SDIMMs:            cfg.SDIMMs,
		Levels:            cfg.Levels,
		RingFlushInterval: cfg.RingFlushInterval,
		Key:               []byte("chaos-campaign-key"),
		Seed:              cfg.Seed ^ 0xc0ffee,
		Telemetry:         reg,
		Durability:        dur,
		Flight:            cfg.Flight,
	}
}

func crashSplitOpts(cfg CrashConfig, reg *telemetry.Registry, dur *sdimm.DurabilityOptions) sdimm.SplitClusterOptions {
	return sdimm.SplitClusterOptions{
		SDIMMs:      cfg.SDIMMs,
		Levels:      cfg.Levels,
		Key:         []byte("chaos-split-key"),
		Seed:        cfg.Seed ^ 0x5eed,
		Parity:      true,
		Parallelism: cfg.Parallelism,
		Telemetry:   reg,
		Durability:  dur,
	}
}

// buildCrashCluster constructs a fresh cluster. dir == "" means no
// durability (the reference run). ind is non-nil only for Independent
// clusters — the pipeline driver needs the concrete type.
func buildCrashCluster(cfg CrashConfig, reg *telemetry.Registry, dir string) (c crashDriver, ind *sdimm.Cluster, closeFn func(), err error) {
	var dur *sdimm.DurabilityOptions
	if dir != "" {
		dur = &sdimm.DurabilityOptions{Dir: dir, Interval: cfg.Interval}
	}
	if cfg.Split {
		sc, err := sdimm.NewSplitCluster(crashSplitOpts(cfg, reg, dur))
		if err != nil {
			return nil, nil, nil, err
		}
		return sc, nil, sc.Close, nil
	}
	ic, err := sdimm.NewCluster(crashIndOpts(cfg, reg, dur))
	if err != nil {
		return nil, nil, nil, err
	}
	return ic, ic, func() { ic.Close() }, nil
}

// recoverCrashCluster rebuilds the cluster from the state directory.
func recoverCrashCluster(cfg CrashConfig, reg *telemetry.Registry, dir string) (c crashDriver, ind *sdimm.Cluster, closeFn func(), report *durable.RecoveryReport, err error) {
	dur := &sdimm.DurabilityOptions{Dir: dir, Interval: cfg.Interval}
	if cfg.Split {
		sc, rep, err := sdimm.RecoverSplitCluster(crashSplitOpts(cfg, reg, dur))
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return sc, nil, sc.Close, rep, nil
	}
	ic, rep, err := sdimm.RecoverCluster(crashIndOpts(cfg, reg, dur))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return ic, ic, func() { ic.Close() }, rep, nil
}

// crashOut is one operation's observed result.
type crashOut struct {
	data  []byte
	err   error
	valid bool
}

// driveRef runs the whole workload on an undisturbed cluster, recording
// per-operation results and the final payload per address.
func driveRef(c crashDriver, ops []chaosOp) ([]crashOut, map[uint64][]byte, error) {
	out := make([]crashOut, len(ops))
	final := map[uint64][]byte{}
	for i, op := range ops {
		var got []byte
		var err error
		if op.write {
			if err = c.Write(op.addr, op.data); err == nil {
				final[op.addr] = op.data
			}
		} else {
			got, err = c.Read(op.addr)
		}
		if err != nil {
			// The reference run has no faults and no crashes; any error here
			// invalidates the whole comparison.
			return nil, nil, fmt.Errorf("chaos: reference op %d: %w", i, err)
		}
		out[i] = crashOut{data: append([]byte(nil), got...), valid: true}
	}
	return out, final, nil
}

// RunCrash executes one crash-recovery equivalence sweep. It returns an
// error only for harness-level failures (the cluster could not be built or
// recovered); divergence from the reference is reported in the result.
func RunCrash(cfg CrashConfig) (CrashResult, error) {
	cfg = withCrashDefaults(cfg)
	if cfg.Crashes >= cfg.Accesses {
		return CrashResult{}, fmt.Errorf("chaos: %d crash points need more than %d accesses", cfg.Crashes, cfg.Accesses)
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "sdimm-crash-*")
		if err != nil {
			return CrashResult{}, err
		}
		defer os.RemoveAll(dir)
	}

	ops := buildWorkload(Config{Accesses: cfg.Accesses, Addresses: cfg.Addresses, Seed: cfg.Seed})

	refC, _, refClose, err := buildCrashCluster(cfg, nil, "")
	if err != nil {
		return CrashResult{}, err
	}
	refRes, refFinal, err := driveRef(refC, ops)
	if err != nil {
		refClose()
		return CrashResult{}, err
	}
	refPos := refC.Positions()
	refClose()

	// Seeded restart points, unique in (0, Accesses), ascending. The same
	// stream also draws the tear offsets and corruption targets, so the whole
	// sweep is reproducible from cfg.Seed.
	pr := rng.New(cfg.Seed ^ 0xcfa54ed)
	ptSet := map[int]bool{}
	for len(ptSet) < cfg.Crashes {
		ptSet[1+int(pr.Uint64n(uint64(cfg.Accesses-1)))] = true
	}
	pts := make([]int, 0, len(ptSet))
	for p := range ptSet {
		pts = append(pts, p)
	}
	sort.Ints(pts)

	members := cfg.SDIMMs
	if cfg.Split {
		members++ // the parity member is a corruption target too
	}

	res := CrashResult{Accesses: cfg.Accesses}
	results := make([]crashOut, len(ops))

	reg := telemetry.NewRegistry()
	c, ind, closeC, err := buildCrashCluster(cfg, reg, dir)
	if err != nil {
		return res, err
	}

	pi := 0
	segStart := 0
	for {
		start := int(c.Seq())
		stop := len(ops)
		if pi < len(pts) {
			if cfg.Corrupt {
				// Corrupt points stop cleanly at the point, persist the
				// damage, and restart — the scrub has to catch it.
				stop = pts[pi]
			} else {
				// Tear points kill the journal mid-record at the point's
				// logical access, at a seeded byte offset within the record.
				if err := c.PlanCrash(pts[pi]-start, int(pr.Uint64n(160))); err != nil {
					closeC()
					return res, err
				}
			}
		}
		segStart = start
		crashed := false
		if ind != nil && cfg.Parallelism > 1 {
			pipe := ind.Pipeline(sdimm.PipelineOptions{Window: cfg.Batch, Parallelism: cfg.Parallelism})
			bops := make([]sdimm.BatchOp, stop-start)
			for j, op := range ops[start:stop] {
				bops[j] = sdimm.BatchOp{Addr: op.addr, Write: op.write, Data: op.data}
			}
			rs := pipe.Do(bops)
			pipe.Close()
			for j, r := range rs {
				if errors.Is(r.Err, durable.ErrCrashed) {
					crashed = true
					continue
				}
				results[start+j] = crashOut{data: append([]byte(nil), r.Data...), err: r.Err, valid: true}
			}
		} else {
			for i := start; i < stop; i++ {
				op := ops[i]
				var got []byte
				var opErr error
				if op.write {
					opErr = c.Write(op.addr, op.data)
				} else {
					got, opErr = c.Read(op.addr)
				}
				if errors.Is(opErr, durable.ErrCrashed) {
					crashed = true
					break
				}
				results[i] = crashOut{data: append([]byte(nil), got...), err: opErr, valid: true}
			}
		}

		if !crashed && stop == len(ops) {
			break
		}
		if !crashed {
			// Clean stop at a corrupt point: flip a ciphertext bit in a
			// seeded member's sealed bucket, checkpoint the damage, restart.
			c.CorruptBucket(int(pr.Uint64n(uint64(members))), int(pr.Uint64n(1<<16)))
			if err := c.ForceCheckpoint(); err != nil {
				closeC()
				return res, err
			}
		}
		closeC()
		res.Crashes++
		pi++

		reg = telemetry.NewRegistry() // each incarnation is a fresh process
		var report *durable.RecoveryReport
		c, ind, closeC, report, err = recoverCrashCluster(cfg, reg, dir)
		if err != nil {
			return res, err
		}
		res.Recoveries++
		res.Replayed += report.RecordsReplayed
		if report.TornTail {
			res.TornTails++
		}
		res.Repaired += report.BucketsRepaired
		res.Unrecoverable += report.BucketsUnrecoverable
		res.PoisonedAddrs += len(report.Poisoned)
	}

	// Telemetry equivalence: the final incarnation ran its segment crash-free
	// on a fresh registry, so its access counters must equal the segment's
	// op counts exactly (replayed accesses land in cluster.recovery.replayed,
	// never in cluster.accesses).
	var segReads, segWrites uint64
	for _, op := range ops[segStart:] {
		if op.write {
			segWrites++
		} else {
			segReads++
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster.accesses"] != segReads+segWrites ||
		snap.Counters["cluster.reads"] != segReads ||
		snap.Counters["cluster.writes"] != segWrites {
		res.TelemetryMismatches++
	}

	// Per-operation results. Operations whose only result was the crash are
	// skipped (their committed effects are covered by the payload sweep); in
	// Corrupt mode an Independent read may fail with ErrUnrecoverable where
	// the reference succeeded — that is the poison contract working, counted
	// separately.
	allowPoison := cfg.Corrupt && !cfg.Split
	for i, r := range results {
		if !r.valid {
			res.SkippedResults++
			continue
		}
		ref := refRes[i]
		switch {
		case allowPoison && errors.Is(r.err, sdimm.ErrUnrecoverable):
			res.PoisonedReads++
		case (r.err == nil) != (ref.err == nil):
			res.ResultMismatches++
		case r.err == nil && !ops[i].write && !bytes.Equal(r.data, ref.data):
			res.ResultMismatches++
		}
	}

	// Position-map equivalence, before the sweep below disturbs it.
	gotPos := c.Positions()
	for a, l := range refPos {
		if gl, ok := gotPos[a]; !ok || gl != l {
			res.PositionMismatches++
		}
	}
	for a := range gotPos {
		if _, ok := refPos[a]; !ok {
			res.PositionMismatches++
		}
	}

	// Final payload sweep: every address in the working set must read back
	// exactly what the reference run left there (zeros if never written).
	for addr := uint64(0); addr < cfg.Addresses; addr++ {
		want := refFinal[addr]
		if want == nil {
			want = make([]byte, payloadLen)
		}
		got, err := c.Read(addr)
		if err != nil {
			if allowPoison && errors.Is(err, sdimm.ErrUnrecoverable) {
				res.PoisonedReads++
				continue
			}
			res.PayloadMismatches++
			continue
		}
		if !bytes.Equal(got[:payloadLen], want) {
			res.PayloadMismatches++
		}
	}
	closeC()
	res.FlightDump = maybeDumpFlight(cfg.Flight, cfg.FlightPath, !res.Equivalent())
	return res, nil
}
