package chaos

import (
	"os"
	"testing"

	"sdimm/internal/fault"
	"sdimm/internal/flight"
	"sdimm/internal/telemetry"
	"sdimm/internal/witness"
)

// TestWitnessSilentOnChaosSweep is the production-guardrail property: a full
// faulted campaign — retries, ARQ, duplicates, the works — must not trip the
// online obliviousness monitor. Recovery traffic is part of the protocol's
// observable envelope, and the witness's invariants are calibrated to admit
// exactly that envelope.
func TestWitnessSilentOnChaosSweep(t *testing.T) {
	reg := telemetry.NewRegistry()
	wit := witness.New(witness.Options{Members: 4, Window: 512, Registry: reg})
	res, err := Run(Config{
		Accesses: 1200,
		Seed:     11,
		Faults: fault.Config{
			Seed:      5,
			Drop:      0.01,
			BitFlip:   0.01,
			Duplicate: 0.005,
			Replay:    0.005,
			Stall:     0.005,
		},
		CheckTraffic: true,
		Witness:      wit,
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 || res.TrafficViolations != 0 {
		t.Fatalf("campaign itself went red: %+v", res)
	}
	if res.WitnessViolations != 0 {
		t.Fatalf("witness flagged %d violations on a clean sweep: %+v",
			res.WitnessViolations, wit.Verdict())
	}
	v := wit.Verdict()
	if v.Frames == 0 {
		t.Fatal("witness saw no frames — tap not chained")
	}
	if v.Windows == 0 {
		t.Fatal("witness checked no balance windows — window too large for the sweep")
	}
	// The traffic checker still ran alongside the chained witness tap.
	if c := reg.Snapshot().Counters; c["witness.frames"] != v.Frames {
		t.Fatalf("witness.frames counter %d != verdict frames %d", c["witness.frames"], v.Frames)
	}
}

// TestWitnessSilentOnRingChaosSweep runs the faulted campaign against
// ring-eviction engines with the monitor attached. Ring mode changes only
// on-DIMM bucket traffic — reads lift one block, the eviction pointer
// defers writeback — so the link-level frame shapes and balance must be
// indistinguishable from the Path campaign, and the witness must stay
// silent without recalibration.
func TestWitnessSilentOnRingChaosSweep(t *testing.T) {
	wit := witness.New(witness.Options{Members: 4, Window: 512})
	res, err := Run(Config{
		Accesses:          1200,
		Seed:              11,
		RingFlushInterval: 4,
		Faults: fault.Config{
			Seed:      5,
			Drop:      0.01,
			BitFlip:   0.01,
			Duplicate: 0.005,
			Replay:    0.005,
			Stall:     0.005,
		},
		CheckTraffic: true,
		Witness:      wit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 || res.TrafficViolations != 0 || res.Errors != 0 {
		t.Fatalf("ring campaign went red: %+v", res)
	}
	if res.WitnessViolations != 0 {
		t.Fatalf("witness flagged %d violations on a clean ring sweep: %+v",
			res.WitnessViolations, wit.Verdict())
	}
	if v := wit.Verdict(); v.Frames == 0 || v.Windows == 0 {
		t.Fatalf("witness under-observed the ring sweep: %+v", v)
	}
}

// TestWitnessSilentOnResizeSweep attaches the monitor to the elastic
// drain/remove/join equivalence sweep: migration batches ride the ordinary
// access shape, so even a full rebalance with seeded crashes must keep the
// witness silent on the reference run's links.
func TestWitnessSilentOnResizeSweep(t *testing.T) {
	wit := witness.New(witness.Options{Members: 4, Window: 512})
	res, err := RunResize(ResizeConfig{
		Accesses: 400,
		Seed:     9,
		Crashes:  2,
		Witness:  wit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent() {
		t.Fatalf("resize sweep diverged: %+v", res)
	}
	if res.WitnessViolations != 0 {
		t.Fatalf("witness flagged %d violations during rebalance: %+v",
			res.WitnessViolations, wit.Verdict())
	}
	if wit.Verdict().Frames == 0 {
		t.Fatal("witness saw no frames on the reference run")
	}
}

// TestWitnessFlagsShapeViolatingLink calibrates the monitor on real cluster
// traffic, then injects one frame with a length the link never exhibits —
// the monitor must flag it immediately.
func TestWitnessFlagsShapeViolatingLink(t *testing.T) {
	wit := witness.New(witness.Options{Members: 4})
	res, err := Run(Config{Accesses: 300, Seed: 3, Witness: wit})
	if err != nil {
		t.Fatal(err)
	}
	if res.WitnessViolations != 0 {
		t.Fatalf("clean run tripped the witness: %d", res.WitnessViolations)
	}
	// A padding bug (or a leaky length channel) shows up as a frame length
	// the calibrated link has never carried.
	v := wit.Verdict()
	wit.Tap(2, fault.HostToDev, 0, make([]byte, 3))
	after := wit.Verdict()
	if after.ShapeViolations != v.ShapeViolations+1 {
		t.Fatalf("shape-violating frame not flagged: before %+v after %+v", v, after)
	}
	if after.OK {
		t.Fatal("verdict still OK after a shape violation")
	}
}

// TestFlightDumpOnInducedFailure induces a red run (a drop rate the retry
// budget cannot absorb), and checks the flight recorder dumps its rings as a
// valid Chrome trace with per-ring activity from the run's last moments.
func TestFlightDumpOnInducedFailure(t *testing.T) {
	fr := flight.New(4, 256)
	path := t.TempDir() + "/flight.json"
	res, err := Run(Config{
		Accesses:   200,
		Seed:       21,
		Faults:     fault.Config{Seed: 13, Drop: 0.5},
		Retry:      fault.RetryPolicy{MaxAttempts: 1},
		Flight:     fr,
		FlightPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("fault schedule failed to induce errors — test needs a harsher config")
	}
	if res.FlightDump != path {
		t.Fatalf("FlightDump = %q, want %q", res.FlightDump, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("dump not written: %v", err)
	}
	n, err := telemetry.ValidateTrace(data)
	if err != nil {
		t.Fatalf("dump is not a valid trace: %v", err)
	}
	if n == 0 {
		t.Fatal("dump holds no events")
	}
	// The member rings recorded link-layer activity (retries/abandons at
	// this drop rate are guaranteed).
	var linkEvents int
	for i := 0; i < 4; i++ {
		linkEvents += fr.Ring(i).Len()
	}
	if linkEvents == 0 {
		t.Fatal("no link-layer events in the member rings")
	}
}

// TestFlightNoDumpOnGreenRun: the recorder is always on, but green runs must
// not leave dump artifacts behind.
func TestFlightNoDumpOnGreenRun(t *testing.T) {
	fr := flight.New(4, 256)
	path := t.TempDir() + "/flight.json"
	res, err := Run(Config{
		Accesses:   200,
		Seed:       2,
		Flight:     fr,
		FlightPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Mismatches != 0 {
		t.Fatalf("clean run went red: %+v", res)
	}
	if res.FlightDump != "" {
		t.Fatalf("green run dumped flight data to %q", res.FlightDump)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("dump file exists after a green run (stat err %v)", err)
	}
}
