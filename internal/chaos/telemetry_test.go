package chaos

import (
	"testing"

	"sdimm/internal/fault"
	"sdimm/internal/telemetry"
)

// TestTelemetryCountersMatchResult runs a faulted chaos campaign with a
// registry and tracer attached and checks the acceptance property: every
// cluster.* and fault.* counter agrees exactly with the harness's own
// accounting (Result, FaultStats, and the per-SDIMM health view).
func TestTelemetryCountersMatchResult(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(nil)
	res, err := Run(Config{
		Accesses: 1500,
		Seed:     7,
		Faults: fault.Config{
			Seed:      3,
			Drop:      0.01,
			BitFlip:   0.01,
			Duplicate: 0.005,
			Replay:    0.005,
			Stall:     0.005,
		},
		Telemetry: reg,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Fatalf("payload mismatches: %d", res.Mismatches)
	}
	if res.Snapshot == nil {
		t.Fatal("no telemetry snapshot on result")
	}
	c := res.Snapshot.Counters

	// Cluster-level counters line up with the harness's own tally.
	if got := c["cluster.accesses"]; got != uint64(res.Accesses) {
		t.Fatalf("cluster.accesses = %d, harness counted %d", got, res.Accesses)
	}
	if got := c["cluster.errors"]; got != uint64(res.Errors) {
		t.Fatalf("cluster.errors = %d, harness counted %d", got, res.Errors)
	}
	reads, writes := c["cluster.reads"], c["cluster.writes"]
	if reads+writes != uint64(res.Accesses) {
		t.Fatalf("reads %d + writes %d != accesses %d", reads, writes, res.Accesses)
	}
	// The cluster counts attempts; the harness counts completions. They
	// differ by exactly the errored accesses.
	if reads < uint64(res.Reads) || writes < uint64(res.Writes) {
		t.Fatalf("attempt counters (r=%d w=%d) below completions (r=%d w=%d)",
			reads, writes, res.Reads, res.Writes)
	}
	if (reads-uint64(res.Reads))+(writes-uint64(res.Writes)) != uint64(res.Errors) {
		t.Fatalf("attempt/completion gap != errors: r=%d/%d w=%d/%d errors=%d",
			reads, res.Reads, writes, res.Writes, res.Errors)
	}

	// Injected-fault counters mirror the injector's Stats field for field.
	fs := res.FaultStats
	for name, want := range map[string]uint64{
		"fault.injected.deliveries":      fs.Deliveries,
		"fault.injected.bitflips":        fs.BitFlips,
		"fault.injected.mac_corruptions": fs.MACCorruptions,
		"fault.injected.drops":           fs.Drops,
		"fault.injected.duplicates":      fs.Duplicates,
		"fault.injected.replays":         fs.Replays,
		"fault.injected.stalls":          fs.Stalls,
		"fault.injected.failstops":       fs.FailStopped,
	} {
		if got := c[name]; got != want {
			t.Fatalf("%s = %d, injector counted %d", name, got, want)
		}
	}
	if fs.Deliveries == 0 || fs.Drops+fs.BitFlips+fs.Duplicates == 0 {
		t.Fatal("fault schedule injected nothing — test exercised no recovery")
	}

	// Recovery counters equal the sums over the per-SDIMM health view.
	var retries, retransmits, resyncs, abandoned uint64
	for _, sd := range res.Health.SDIMMs {
		retries += sd.Retries
		retransmits += sd.Retransmits
		resyncs += sd.Resyncs
		abandoned += sd.Abandoned
	}
	for name, want := range map[string]uint64{
		"fault.retries":     retries,
		"fault.retransmits": retransmits,
		"fault.resyncs":     resyncs,
		"fault.abandoned":   abandoned,
	} {
		if got := c[name]; got != want {
			t.Fatalf("%s = %d, health view sums to %d", name, got, want)
		}
	}
	if retries == 0 {
		t.Fatal("no retries at this fault rate — schedule too gentle")
	}

	// Re-homing counters reconcile: every re-homed block took at least one
	// candidate attempt, a failure is only declared after attempts were
	// spent, and attempts never appear without a rehome being driven.
	rehomes, rehomeFails, attempts := c["cluster.rehomes"], c["cluster.rehome_failures"], c["cluster.rehome_attempts"]
	if rehomes < rehomeFails {
		t.Fatalf("cluster.rehomes %d < cluster.rehome_failures %d", rehomes, rehomeFails)
	}
	if attempts < rehomes-rehomeFails {
		t.Fatalf("cluster.rehome_attempts %d < successful rehomes %d", attempts, rehomes-rehomeFails)
	}
	if rehomes == 0 && attempts != 0 {
		t.Fatalf("cluster.rehome_attempts %d with zero rehomes driven", attempts)
	}

	// Post-durability/elastic audit counters reconcile too. A plain fault
	// campaign drives no drains, no checkpoints, no recovery, and no scrub,
	// so every one of those counters must sit at exactly zero — a nonzero
	// value here means a steady-state code path is crediting maintenance
	// machinery that never ran.
	for _, name := range []string{
		"cluster.migrations",
		"cluster.checkpoints",
		"cluster.recovery.replayed",
		"cluster.scrub.scanned",
		"cluster.scrub.repaired",
		"cluster.scrub.unrecoverable",
		"cluster.poisoned_reads",
		"cluster.reconstructions",
	} {
		if got := c[name]; got != 0 {
			t.Fatalf("%s = %d in a plain campaign, want 0", name, got)
		}
	}
	// Lost appends reconcile against the recovery layer: every driven
	// rehome started from a lost real append, every lost append rode an
	// abandoned exchange, and abandonment is the only way to lose one.
	appendsLost := c["cluster.appends_lost"]
	if rehomes > appendsLost {
		t.Fatalf("cluster.rehomes %d > cluster.appends_lost %d", rehomes, appendsLost)
	}
	if appendsLost > abandoned {
		t.Fatalf("cluster.appends_lost %d > fault.abandoned %d", appendsLost, abandoned)
	}

	// seccomm activity was mirrored too.
	if c["seccomm.seals"] == 0 || c["seccomm.opens"] == 0 {
		t.Fatal("seccomm counters not wired")
	}

	// The tracer saw one cluster.access span per access.
	var spans int
	for _, e := range tr.Events() {
		if e.Ph == "X" && e.Name == "cluster.access" {
			spans++
		}
	}
	if spans != res.Accesses {
		t.Fatalf("cluster.access spans = %d, accesses = %d", spans, res.Accesses)
	}
}
