package chaos

import "testing"

// checkResize runs one sweep and asserts the core contract: every seeded
// restart point fired, every recovery happened, the rebalance ran to
// completion, and the recovered run is bitwise-equivalent to the uncrashed
// reference.
func checkResize(t *testing.T, cfg ResizeConfig) ResizeResult {
	t.Helper()
	res, err := RunResize(cfg)
	if err != nil {
		t.Fatalf("RunResize: %v", err)
	}
	if res.Crashes != cfg.Crashes || res.Recoveries != cfg.Crashes {
		t.Fatalf("exercised %d crashes / %d recoveries, want %d\n%s", res.Crashes, res.Recoveries, cfg.Crashes, res)
	}
	if !res.Equivalent() {
		t.Fatalf("recovered cluster diverged from reference:\n%s", res)
	}
	if !res.Drained || !res.Rejoined {
		t.Fatalf("rebalance did not complete: drained=%v rejoined=%v\n%s", res.Drained, res.Rejoined, res)
	}
	return res
}

func resizeCfg(t *testing.T) ResizeConfig {
	cfg := ResizeConfig{Accesses: 600, Crashes: 3, Seed: 11, Interval: 48}
	if testing.Short() {
		cfg.Accesses, cfg.Crashes = 300, 1
	}
	return cfg
}

func TestResizeEquivalenceSequential(t *testing.T) {
	cfg := resizeCfg(t)
	res := checkResize(t, cfg)
	if res.Migrations == 0 {
		t.Fatalf("drain moved no blocks:\n%s", res)
	}
	if res.Replayed == 0 {
		t.Fatalf("no journal records replayed:\n%s", res)
	}
}

func TestResizeEquivalenceParallel(t *testing.T) {
	cfg := resizeCfg(t)
	cfg.Parallelism = 4
	res := checkResize(t, cfg)
	if res.Migrations == 0 {
		t.Fatalf("drain moved no blocks:\n%s", res)
	}
}

func TestResizeEquivalenceSplit(t *testing.T) {
	cfg := resizeCfg(t)
	cfg.Split = true
	checkResize(t, cfg)
}

// Different seeds shift the crash points to different record offsets —
// including inside migration batches and around the topology records.
func TestResizeEquivalenceSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	for _, seed := range []uint64{2, 3, 5, 8} {
		seed := seed
		t.Run("", func(t *testing.T) {
			cfg := resizeCfg(t)
			cfg.Seed = seed
			checkResize(t, cfg)
		})
	}
}
