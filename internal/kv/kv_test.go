package kv

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// memStore is a plain in-memory Store with the ORAM contract: reads of
// never-written addresses return zeros.
type memStore struct {
	blockSize int
	m         map[uint64][]byte
	reads     int
	failAfter int // when > 0, reads past this count return ErrAborted
}

func newMemStore(blockSize int) *memStore {
	return &memStore{blockSize: blockSize, m: make(map[uint64][]byte)}
}

func (s *memStore) Read(addr uint64) ([]byte, error) {
	s.reads++
	if s.failAfter > 0 && s.reads > s.failAfter {
		return nil, ErrAborted
	}
	if b, ok := s.m[addr]; ok {
		return b, nil
	}
	return make([]byte, s.blockSize), nil
}

func (s *memStore) Write(addr uint64, data []byte) error {
	b := make([]byte, s.blockSize)
	copy(b, data)
	s.m[addr] = b
	return nil
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	m, err := New(64, 128)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.Encode("alice", "credit:9912")
	if err != nil {
		t.Fatal(err)
	}
	k, v, ok := Decode(rec)
	if !ok || k != "alice" || v != "credit:9912" {
		t.Fatalf("Decode = %q %q %v", k, v, ok)
	}
	// Padding to the block size must not change the decoding.
	padded := make([]byte, 128)
	copy(padded, rec)
	if k, v, ok = Decode(padded); !ok || k != "alice" || v != "credit:9912" {
		t.Fatalf("padded Decode = %q %q %v", k, v, ok)
	}
	if _, err := m.Encode("", "x"); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := m.Encode(strings.Repeat("k", 127), strings.Repeat("v", 127)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

// Decode must be total on hostile input.
func TestDecodeHostile(t *testing.T) {
	cases := [][]byte{
		nil, {}, {0}, {5}, {200, 'a'}, {1, 'a', 250}, {2, 'a'},
	}
	for _, b := range cases {
		if _, _, ok := Decode(b); ok {
			t.Fatalf("Decode(%v) claimed a valid record", b)
		}
	}
}

func TestPutGetOverwriteAbsent(t *testing.T) {
	m, err := New(256, 128)
	if err != nil {
		t.Fatal(err)
	}
	s := newMemStore(128)
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("user-%d", i), fmt.Sprintf("val-%d", i)
		if err := m.Put(s, k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	// Overwrite in place.
	if err := m.Put(s, "user-7", "rewritten"); err != nil {
		t.Fatal(err)
	}
	want["user-7"] = "rewritten"
	for k, v := range want {
		got, ok, err := m.Get(s, k)
		if err != nil || !ok || got != v {
			t.Fatalf("Get(%q) = %q %v %v, want %q", k, got, ok, err, v)
		}
	}
	if _, ok, err := m.Get(s, "mallory"); err != nil || ok {
		t.Fatalf("absent key reported present (err %v)", err)
	}
}

// Forcing every key into one chain must keep probing past collisions and
// fail with ErrFull once the chain saturates.
func TestProbeChainSaturation(t *testing.T) {
	m, err := New(MaxProbes, 64) // tiny table: all chains overlap heavily
	if err != nil {
		t.Fatal(err)
	}
	s := newMemStore(64)
	stored := 0
	for i := 0; i < 2*MaxProbes; i++ {
		err := m.Put(s, fmt.Sprintf("k%02d", i), "v")
		if err == nil {
			stored++
			continue
		}
		if !errors.Is(err, ErrFull) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if stored != MaxProbes {
		t.Fatalf("stored %d records in a %d-slot table", stored, MaxProbes)
	}
	// Everything that was acknowledged must still be readable.
	found := 0
	for i := 0; i < 2*MaxProbes; i++ {
		if _, ok, err := m.Get(s, fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		} else if ok {
			found++
		}
	}
	if found != stored {
		t.Fatalf("found %d of %d stored records", found, stored)
	}
}

// A Store abort (deadline, shutdown) must surface unwrapped so callers can
// classify it.
func TestStoreAbortPassthrough(t *testing.T) {
	m, err := New(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	s := newMemStore(64)
	s.failAfter = 0
	if err := m.Put(s, "a", "1"); err != nil {
		t.Fatal(err)
	}
	s.failAfter = s.reads // next read aborts
	if _, _, err := m.Get(s, "a"); !errors.Is(err, ErrAborted) {
		t.Fatalf("Get abort = %v, want ErrAborted", err)
	}
	if err := m.Put(s, "b", "2"); !errors.Is(err, ErrAborted) {
		t.Fatalf("Put abort = %v, want ErrAborted", err)
	}
}
