// Package kv is the oblivious key-value mapping shared by the secure-kv
// example and the sdimm-serve front end: string keys are hashed onto ORAM
// block addresses with bounded linear probing, and each block stores one
// record — keyLen(1) | key | valLen(1) | value, zero-padded to the block
// size. Every Get and Put is a fixed pattern of ORAM accesses against any
// Store, so an observer of the memory bus (or of the sealed cluster links)
// learns neither the keys nor whether an operation was a read or a write.
//
// The mapping is deliberately stateless: a Map carries only the slot count
// and block size, so the server, the example, and a recovery replay all
// address the same records as long as they agree on those two numbers.
package kv

import (
	"errors"
	"fmt"
)

// Store is the block device a Map probes: the functional ORAM, a cluster,
// or the serving pipeline adapter. Read of a never-written address returns
// zeros (an unoccupied record).
type Store interface {
	Read(addr uint64) ([]byte, error)
	Write(addr uint64, data []byte) error
}

// MaxProbes bounds every probe chain. A Get that walks MaxProbes occupied
// slots without a hit reports absence; a Put that finds no free or matching
// slot within MaxProbes fails with ErrFull.
const MaxProbes = 16

// ErrFull reports a probe chain with no free slot — the table is locally
// full around that key's hash.
var ErrFull = errors.New("kv: probe chain full")

// ErrAborted is a sentinel Stores may return to cut a probe chain short
// (deadline exceeded, shutdown). Map methods pass it through unwrapped.
var ErrAborted = errors.New("kv: access aborted")

// Map is a fixed-capacity oblivious string→string map layered over a Store.
type Map struct {
	slots     uint64
	blockSize int
}

// New builds a mapping over slots block addresses of blockSize bytes each.
// blockSize must leave room for the two length prefixes.
func New(slots uint64, blockSize int) (*Map, error) {
	if slots == 0 {
		return nil, fmt.Errorf("kv: zero slots")
	}
	if blockSize < 4 {
		return nil, fmt.Errorf("kv: block size %d too small for a record", blockSize)
	}
	return &Map{slots: slots, blockSize: blockSize}, nil
}

// Slots returns the table capacity in block addresses.
func (m *Map) Slots() uint64 { return m.slots }

// Hash is the table's key hash (FNV-1a, 64-bit).
func Hash(key string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// Probe returns the i-th slot of key's probe chain.
func (m *Map) Probe(key string, i uint64) uint64 {
	return (Hash(key) + i) % m.slots
}

// Encode packs key=val into one record. The record must fit the block and
// each field a one-byte length, and keys must be non-empty (a zero first
// byte marks an unoccupied slot).
func (m *Map) Encode(key, val string) ([]byte, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("kv: empty key")
	}
	if len(key) > 255 || len(val) > 255 || 2+len(key)+len(val) > m.blockSize {
		return nil, fmt.Errorf("kv: record %q (%d+%d bytes) exceeds block size %d",
			key, len(key), len(val), m.blockSize)
	}
	out := make([]byte, 0, 2+len(key)+len(val))
	out = append(out, byte(len(key)))
	out = append(out, key...)
	out = append(out, byte(len(val)))
	out = append(out, val...)
	return out, nil
}

// Decode unpacks a record. ok is false for unoccupied (zeroed) or
// malformed blocks — Decode is total and never panics on hostile input.
func Decode(b []byte) (key, val string, ok bool) {
	if len(b) < 2 || b[0] == 0 {
		return "", "", false
	}
	kl := int(b[0])
	if 1+kl+1 > len(b) {
		return "", "", false
	}
	key = string(b[1 : 1+kl])
	vl := int(b[1+kl])
	if 2+kl+vl > len(b) {
		return "", "", false
	}
	return key, string(b[2+kl : 2+kl+vl]), true
}

// Get fetches the value for key, probing at most MaxProbes slots. An
// unoccupied slot terminates the chain (the key is absent).
func (m *Map) Get(s Store, key string) (string, bool, error) {
	for i := uint64(0); i < MaxProbes; i++ {
		cur, err := s.Read(m.Probe(key, i))
		if err != nil {
			return "", false, err
		}
		k, v, occupied := Decode(cur)
		if !occupied {
			return "", false, nil
		}
		if k == key {
			return v, true, nil
		}
	}
	return "", false, nil
}

// Put stores key=val in the first free or matching slot of the chain.
func (m *Map) Put(s Store, key, val string) error {
	rec, err := m.Encode(key, val)
	if err != nil {
		return err
	}
	for i := uint64(0); i < MaxProbes; i++ {
		addr := m.Probe(key, i)
		cur, err := s.Read(addr)
		if err != nil {
			return err
		}
		k, _, occupied := Decode(cur)
		if !occupied || k == key {
			return s.Write(addr, rec)
		}
	}
	return fmt.Errorf("kv: %w for %q", ErrFull, key)
}
