package blame

import (
	"testing"
)

// fakeClock is a settable logical clock.
type fakeClock struct{ now uint64 }

func (c *fakeClock) read() uint64 { return c.now }

func newTestCollector(members, ring int) (*Collector, *fakeClock) {
	col := NewCollector(members, ring)
	clk := &fakeClock{}
	col.SetClock(clk.read)
	return col, clk
}

func TestWaveTiling(t *testing.T) {
	col, clk := newTestCollector(2, 16)

	clk.now = 100
	w := col.BeginWave()
	clk.now = 110
	w.Mark(PhaseSchedule)
	clk.now = 150
	w.Mark(PhaseAccessFanout)
	clk.now = 160
	w.Mark(PhaseCommit)
	clk.now = 165
	w.Mark(PhaseJournal)
	clk.now = 200
	w.Mark(PhaseAppendFanout)
	clk.now = 210
	w.End(8)

	recs := col.Recent()
	if len(recs) != 1 {
		t.Fatalf("Recent() has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Ops != 8 || rec.Index != 0 {
		t.Fatalf("record = %+v, want ops=8 index=0", rec)
	}
	if rec.Wall() != 110 {
		t.Fatalf("Wall() = %d, want 110", rec.Wall())
	}
	wantDur := map[Phase]uint64{
		PhaseSchedule:     10,
		PhaseAccessFanout: 40,
		PhaseCommit:       10,
		PhaseJournal:      5,
		PhaseAppendFanout: 35,
		PhaseFinalize:     10,
	}
	var sum uint64
	for p, want := range wantDur {
		if got := rec.PhaseDur(p); got != want {
			t.Errorf("PhaseDur(%s) = %d, want %d", p, got, want)
		}
		sum += rec.PhaseDur(p)
	}
	if sum != rec.Wall() {
		t.Fatalf("phase intervals sum to %d, wall is %d — tiling broken", sum, rec.Wall())
	}

	rep := col.Report()
	if rep.AttributionRatio != 1.0 {
		t.Fatalf("AttributionRatio = %v, want exactly 1.0", rep.AttributionRatio)
	}
	if rep.Waves != 1 || rep.Ops != 8 || rep.WallNS != 110 {
		t.Fatalf("report totals = %+v", rep)
	}
}

// TestSkippedPhases checks the early-exit contract: marking a later phase
// closes every skipped phase with a zero-length interval at the same
// boundary, and End closes the rest, so tiling stays exact.
func TestSkippedPhases(t *testing.T) {
	col, clk := newTestCollector(1, 16)

	clk.now = 10
	w := col.BeginWave()
	clk.now = 30
	w.Mark(PhaseJournal) // schedule, access.fanout, commit, journal all end at 30
	clk.now = 50
	w.End(1) // append.fanout and finalize end at 50

	rec := col.Recent()[0]
	if rec.Wall() != 40 {
		t.Fatalf("Wall() = %d, want 40", rec.Wall())
	}
	if d := rec.PhaseDur(PhaseSchedule); d != 20 {
		t.Fatalf("schedule = %d, want 20 (first marked phase absorbs the span)", d)
	}
	for _, p := range []Phase{PhaseAccessFanout, PhaseCommit, PhaseJournal} {
		if d := rec.PhaseDur(p); d != 0 {
			t.Fatalf("%s = %d, want zero-length skipped interval", p, d)
		}
	}
	if d := rec.PhaseDur(PhaseAppendFanout); d != 20 {
		t.Fatalf("append.fanout = %d, want 20", d)
	}
	if d := rec.PhaseDur(PhaseFinalize); d != 0 {
		t.Fatalf("finalize = %d, want 0", d)
	}
	if col.Report().AttributionRatio != 1.0 {
		t.Fatal("attribution must stay exact on early-exit waves")
	}
}

func TestWorkerBusyAccounting(t *testing.T) {
	col, clk := newTestCollector(3, 16)

	clk.now = 0
	w := col.BeginWave()
	w.Mark(PhaseSchedule)

	// Worker 0 busy 10ns, worker 2 busy 25ns, worker 1 idle.
	clk.now = 5
	s0 := w.WorkerStart()
	clk.now = 15
	w.WorkerDone(PhaseAccessFanout, 0, s0)
	clk.now = 15
	s2 := w.WorkerStart()
	clk.now = 40
	w.WorkerDone(PhaseAccessFanout, 2, s2)
	clk.now = 50
	w.Mark(PhaseAccessFanout)
	clk.now = 60
	w.End(4)

	rec := col.Recent()[0]
	if rec.BusySum[PhaseAccessFanout] != 35 {
		t.Fatalf("BusySum = %d, want 35", rec.BusySum[PhaseAccessFanout])
	}
	if rec.MaxBusy[PhaseAccessFanout] != 25 {
		t.Fatalf("MaxBusy = %d, want 25 (slowest worker)", rec.MaxBusy[PhaseAccessFanout])
	}

	rep := col.Report()
	var fan PhaseStat
	for _, ps := range rep.Phases {
		if ps.Phase == "access.fanout" {
			fan = ps
		}
	}
	if fan.WorkerBusyNS != 35 || fan.CriticalPathNS != 25 {
		t.Fatalf("fanout stat = %+v, want busy=35 critical=25", fan)
	}
	// Phase interval is 50ns; slack = 50 - 25.
	if fan.BarrierSlackNS != 25 {
		t.Fatalf("BarrierSlackNS = %d, want 25", fan.BarrierSlackNS)
	}
	// Ideal = 3 workers × 50ns = 150; idle share = 1 - 35/150.
	if got, want := fan.WorkerIdleShare, 1-35.0/150.0; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("WorkerIdleShare = %v, want %v", got, want)
	}
}

func TestLedgerRanking(t *testing.T) {
	col, clk := newTestCollector(1, 16)

	clk.now = 0
	w := col.BeginWave()
	clk.now = 5 // schedule: 5
	w.Mark(PhaseSchedule)
	clk.now = 10 // access fanout: 5
	w.Mark(PhaseAccessFanout)
	clk.now = 40 // commit: 30 — the dominant coordinator phase
	w.Mark(PhaseCommit)
	clk.now = 50 // journal: 10
	w.Mark(PhaseJournal)
	clk.now = 55 // append fanout: 5
	w.Mark(PhaseAppendFanout)
	clk.now = 57 // finalize: 2
	w.End(1)

	rep := col.Report()
	if len(rep.Ledger) != 4 {
		t.Fatalf("ledger has %d entries, want 4 coordinator phases", len(rep.Ledger))
	}
	wantOrder := []string{"commit", "journal", "schedule", "finalize"}
	for i, want := range wantOrder {
		if rep.Ledger[i].Phase != want {
			t.Fatalf("ledger[%d] = %s, want %s (full: %+v)", i, rep.Ledger[i].Phase, want, rep.Ledger)
		}
	}
	if rep.TopBottleneck != "commit" {
		t.Fatalf("TopBottleneck = %q, want commit", rep.TopBottleneck)
	}
	if rep.SerializedNS != 47 {
		t.Fatalf("SerializedNS = %d, want 47", rep.SerializedNS)
	}
	if got, want := rep.SerializedShare, 47.0/57.0; got != want {
		t.Fatalf("SerializedShare = %v, want %v", got, want)
	}
	if got, want := rep.MaxSpeedup, 57.0/47.0; got != want {
		t.Fatalf("MaxSpeedup = %v, want %v", got, want)
	}
}

func TestRingWraparoundOldestFirst(t *testing.T) {
	col, clk := newTestCollector(1, 4)
	for i := 0; i < 10; i++ {
		clk.now = uint64(i * 100)
		w := col.BeginWave()
		clk.now = uint64(i*100 + 10)
		w.End(i)
	}
	recs := col.Recent()
	if len(recs) != 4 {
		t.Fatalf("Recent() has %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(6 + i); rec.Index != want {
			t.Fatalf("recent[%d].Index = %d, want %d", i, rec.Index, want)
		}
	}
	if rep := col.Report(); rep.Waves != 10 {
		t.Fatalf("Waves = %d, want 10 (totals cover evicted records too)", rep.Waves)
	}
}

// TestNilSafety: a nil collector must be a complete no-op so production
// clusters run without one attached.
func TestNilSafety(t *testing.T) {
	var col *Collector
	w := col.BeginWave()
	w.Mark(PhaseSchedule)
	s := w.WorkerStart()
	w.WorkerDone(PhaseAccessFanout, 0, s)
	w.End(5)
	if col.Recent() != nil {
		t.Fatal("nil collector Recent() should be nil")
	}
	if rep := col.Report(); rep.Waves != 0 {
		t.Fatal("nil collector Report() should be zero")
	}
	col.SetClock(func() uint64 { return 0 })
}

// TestWaveRecycling checks the free-list reuses scratch without leaking
// state between waves.
func TestWaveRecycling(t *testing.T) {
	col, clk := newTestCollector(2, 8)

	clk.now = 0
	w := col.BeginWave()
	s := w.WorkerStart()
	clk.now = 50
	w.WorkerDone(PhaseAccessFanout, 1, s)
	w.End(1)

	clk.now = 100
	w2 := col.BeginWave()
	clk.now = 120
	w2.End(1)

	recs := col.Recent()
	if recs[1].BusySum[PhaseAccessFanout] != 0 {
		t.Fatalf("recycled wave leaked busy time: %+v", recs[1])
	}
	if recs[1].Bounds[0] != 100 {
		t.Fatalf("recycled wave start = %d, want 100", recs[1].Bounds[0])
	}
}
