package blame

import (
	"testing"
)

// fakeClock is a settable logical clock.
type fakeClock struct{ now uint64 }

func (c *fakeClock) read() uint64 { return c.now }

func newTestCollector(members, ring int) (*Collector, *fakeClock) {
	col := NewCollector(members, ring)
	clk := &fakeClock{}
	col.SetClock(clk.read)
	return col, clk
}

func TestWaveTiling(t *testing.T) {
	col, clk := newTestCollector(2, 16)

	clk.now = 100
	w := col.BeginWave()
	clk.now = 110
	w.Mark(PhaseSchedule)
	clk.now = 130
	w.Mark(PhaseRetireWait)
	clk.now = 145
	w.Mark(PhaseFinalize)
	clk.now = 185
	w.Mark(PhaseAccessWait)
	clk.now = 195
	w.Mark(PhaseCommit)
	clk.now = 200
	w.Mark(PhaseDispatch)
	clk.now = 210
	w.End(8)

	recs := col.Recent()
	if len(recs) != 1 {
		t.Fatalf("Recent() has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Ops != 8 || rec.Index != 0 {
		t.Fatalf("record = %+v, want ops=8 index=0", rec)
	}
	if rec.Wall() != 110 {
		t.Fatalf("Wall() = %d, want 110", rec.Wall())
	}
	wantDur := map[Phase]uint64{
		PhaseSchedule:   10,
		PhaseRetireWait: 20,
		PhaseFinalize:   15,
		PhaseAccessWait: 40,
		PhaseCommit:     10,
		PhaseDispatch:   5,
		PhaseCheckpoint: 10,
	}
	var sum uint64
	for p, want := range wantDur {
		if got := rec.PhaseDur(p); got != want {
			t.Errorf("PhaseDur(%s) = %d, want %d", p, got, want)
		}
		sum += rec.PhaseDur(p)
	}
	if sum != rec.Wall() {
		t.Fatalf("phase intervals sum to %d, wall is %d — tiling broken", sum, rec.Wall())
	}

	rep := col.Report()
	if rep.AttributionRatio != 1.0 {
		t.Fatalf("AttributionRatio = %v, want exactly 1.0", rep.AttributionRatio)
	}
	if rep.Waves != 1 || rep.Ops != 8 || rep.WallNS != 110 {
		t.Fatalf("report totals = %+v", rep)
	}
}

// TestSkippedPhases checks the early-exit contract: marking a later phase
// closes every skipped phase with a zero-length interval at the same
// boundary, and End closes the rest, so tiling stays exact.
func TestSkippedPhases(t *testing.T) {
	col, clk := newTestCollector(1, 16)

	clk.now = 10
	w := col.BeginWave()
	clk.now = 30
	w.Mark(PhaseAccessWait) // schedule, retire.wait, finalize, access.wait all end at 30
	clk.now = 50
	w.End(1) // commit, dispatch, checkpoint end at 50

	rec := col.Recent()[0]
	if rec.Wall() != 40 {
		t.Fatalf("Wall() = %d, want 40", rec.Wall())
	}
	if d := rec.PhaseDur(PhaseSchedule); d != 20 {
		t.Fatalf("schedule = %d, want 20 (first marked phase absorbs the span)", d)
	}
	for _, p := range []Phase{PhaseRetireWait, PhaseFinalize, PhaseAccessWait} {
		if d := rec.PhaseDur(p); d != 0 {
			t.Fatalf("%s = %d, want zero-length skipped interval", p, d)
		}
	}
	if d := rec.PhaseDur(PhaseCommit); d != 20 {
		t.Fatalf("commit = %d, want 20", d)
	}
	for _, p := range []Phase{PhaseDispatch, PhaseCheckpoint} {
		if d := rec.PhaseDur(p); d != 0 {
			t.Fatalf("%s = %d, want 0", p, d)
		}
	}
	if col.Report().AttributionRatio != 1.0 {
		t.Fatal("attribution must stay exact on early-exit waves")
	}
}

// TestIdleLedger drives the all-idle meter through one wave with a worker
// task covering part of it: only the stretches where zero tasks are in
// flight may land in the ledger, attributed to the phase they fell inside,
// and the worker span must show up in the busy totals.
func TestIdleLedger(t *testing.T) {
	col, clk := newTestCollector(2, 16)

	clk.now = 0
	w := col.BeginWave()
	clk.now = 10
	w.Mark(PhaseSchedule) // 0..10 idle: no task in flight
	s := col.WorkerBegin() // task starts at 10
	clk.now = 40
	w.Mark(PhaseRetireWait) // 10..40 covered by the task: zero idle
	col.WorkerEnd(WorkerAccess, s)
	clk.now = 45
	w.Mark(PhaseFinalize) // 40..45 idle again
	w.Mark(PhaseAccessWait) // zero-length
	clk.now = 60
	w.Mark(PhaseCommit) // 45..60 idle
	clk.now = 65
	w.Mark(PhaseDispatch) // 60..65 idle
	w.End(4) // checkpoint zero-length

	rec := col.Recent()[0]
	wantIdle := map[Phase]uint64{
		PhaseSchedule:   10,
		PhaseRetireWait: 0,
		PhaseFinalize:   5,
		PhaseAccessWait: 0,
		PhaseCommit:     15,
		PhaseDispatch:   5,
		PhaseCheckpoint: 0,
	}
	for p, want := range wantIdle {
		if got := rec.IdleNS[p]; got != want {
			t.Errorf("IdleNS[%s] = %d, want %d", p, got, want)
		}
		if rec.IdleNS[p] > rec.PhaseDur(p) {
			t.Errorf("IdleNS[%s] = %d exceeds interval %d", p, rec.IdleNS[p], rec.PhaseDur(p))
		}
	}

	rep := col.Report()
	if rep.AccessBusyNS != 30 || rep.AppendBusyNS != 0 {
		t.Fatalf("busy totals = access %d append %d, want 30/0", rep.AccessBusyNS, rep.AppendBusyNS)
	}
	if rep.SerializedNS != 35 {
		t.Fatalf("SerializedNS = %d, want 35 (total measured idle)", rep.SerializedNS)
	}
	if got, want := rep.SerializedShare, 35.0/65.0; got != want {
		t.Fatalf("SerializedShare = %v, want %v", got, want)
	}
	if got, want := rep.MaxSpeedup, 65.0/35.0; got != want {
		t.Fatalf("MaxSpeedup = %v, want %v", got, want)
	}
	if len(rep.Ledger) != NumPhases() {
		t.Fatalf("ledger has %d entries, want every phase (%d)", len(rep.Ledger), NumPhases())
	}
	wantOrder := []string{"commit", "schedule", "finalize", "dispatch"}
	for i, want := range wantOrder {
		if rep.Ledger[i].Phase != want {
			t.Fatalf("ledger[%d] = %s, want %s (full: %+v)", i, rep.Ledger[i].Phase, want, rep.Ledger)
		}
	}
	if rep.TopBottleneck != "commit" {
		t.Fatalf("TopBottleneck = %q, want commit", rep.TopBottleneck)
	}
}

// TestOverlapHidesIdle is the decoupling property the ledger exists to
// measure: a coordinator phase fully covered by an in-flight worker task
// (wave overlap) contributes interval time but zero serialized time.
func TestOverlapHidesIdle(t *testing.T) {
	col, clk := newTestCollector(2, 16)

	clk.now = 0
	s := col.WorkerBegin() // previous wave's append still running
	w := col.BeginWave()
	clk.now = 30
	w.Mark(PhaseSchedule) // whole schedule phase overlapped by the task
	col.WorkerEnd(WorkerAppend, s)
	clk.now = 50
	w.End(2)

	rec := col.Recent()[0]
	if rec.PhaseDur(PhaseSchedule) != 30 || rec.IdleNS[PhaseSchedule] != 0 {
		t.Fatalf("schedule dur=%d idle=%d, want 30/0 (hidden behind worker)",
			rec.PhaseDur(PhaseSchedule), rec.IdleNS[PhaseSchedule])
	}
	if rec.IdleNS[PhaseRetireWait] != 20 {
		t.Fatalf("retire.wait idle = %d, want 20 (meter restarts at WorkerEnd)", rec.IdleNS[PhaseRetireWait])
	}
	if rep := col.Report(); rep.AppendBusyNS != 30 {
		t.Fatalf("AppendBusyNS = %d, want 30", rep.AppendBusyNS)
	}
}

func TestRingWraparoundOldestFirst(t *testing.T) {
	col, clk := newTestCollector(1, 4)
	for i := 0; i < 10; i++ {
		clk.now = uint64(i * 100)
		w := col.BeginWave()
		clk.now = uint64(i*100 + 10)
		w.End(i)
	}
	recs := col.Recent()
	if len(recs) != 4 {
		t.Fatalf("Recent() has %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(6 + i); rec.Index != want {
			t.Fatalf("recent[%d].Index = %d, want %d", i, rec.Index, want)
		}
	}
	if rep := col.Report(); rep.Waves != 10 {
		t.Fatalf("Waves = %d, want 10 (totals cover evicted records too)", rep.Waves)
	}
}

// TestNilSafety: a nil collector must be a complete no-op so production
// clusters run without one attached.
func TestNilSafety(t *testing.T) {
	var col *Collector
	w := col.BeginWave()
	w.Mark(PhaseSchedule)
	s := col.WorkerBegin()
	col.WorkerEnd(WorkerAccess, s)
	w.End(5)
	if col.Recent() != nil {
		t.Fatal("nil collector Recent() should be nil")
	}
	if rep := col.Report(); rep.Waves != 0 {
		t.Fatal("nil collector Report() should be zero")
	}
	col.SetClock(func() uint64 { return 0 })
}

// TestWaveRecycling checks the free-list reuses scratch without leaking
// state between waves, and that idle accrued between waves (no wave open)
// never lands in any wave's ledger.
func TestWaveRecycling(t *testing.T) {
	col, clk := newTestCollector(2, 8)

	clk.now = 0
	w := col.BeginWave()
	clk.now = 50
	w.End(1) // fully idle wave: 50ns of idle in its record

	// 50..100: idle with no wave open — must be excluded from both records.
	clk.now = 100
	w2 := col.BeginWave()
	clk.now = 120
	w2.End(1)

	recs := col.Recent()
	var idle0, idle1 uint64
	for p := Phase(0); p < Phase(NumPhases()); p++ {
		idle0 += recs[0].IdleNS[p]
		idle1 += recs[1].IdleNS[p]
	}
	if idle0 != 50 {
		t.Fatalf("wave 0 idle = %d, want 50", idle0)
	}
	if idle1 != 20 {
		t.Fatalf("wave 1 idle = %d, want 20 (inter-wave gap leaked in)", idle1)
	}
	if recs[1].Bounds[0] != 100 {
		t.Fatalf("recycled wave start = %d, want 100", recs[1].Bounds[0])
	}
	if rep := col.Report(); rep.SerializedNS != 70 {
		t.Fatalf("SerializedNS = %d, want 70", rep.SerializedNS)
	}
}
