// Package blame is the wave-level critical-path profiler for the overlapped
// cluster pipeline. The coordinator records every loop iteration as a
// contiguous sequence of phase intervals — each phase starts exactly where
// the previous one ended, so the intervals tile the iteration's wall-clock
// with nothing left over. Because waves overlap (wave N retires while wave
// N+1's path reads run), a phase interval alone no longer says whether the
// workers were idle; the collector therefore also keeps a live count of
// in-flight worker tasks and meters the wall-clock during which that count
// is zero. Folding that all-idle meter against the phase boundaries yields
// the serialization ledger: for each phase, how much wall-clock the pipeline
// measurably spent with every worker idle. That ledger is the
// machine-readable explanation of the parallel engine's speedup curve — if
// "commit" and "dispatch" dominate it, adding workers cannot help, because
// the coordinator is the bottleneck.
//
// The collector is deliberately invisible to the determinism-equivalence
// suites: it draws no randomness, touches no telemetry registry, and its
// phase boundaries are wall-clock reads that never feed back into
// scheduling. Attaching or detaching a collector cannot change a single bit
// of cluster state.
package blame

import (
	"sort"
	"sync"
	"time"
)

// Phase identifies one interval of a pipeline coordinator iteration. The
// phases are recorded in this order, and every iteration passes through all
// of them (an iteration that skips work — e.g. no previous wave to retire,
// or no checkpoint due — records zero-length intervals for the skipped
// phases, keeping the tiling exact).
type Phase uint8

const (
	// PhaseSchedule is coordinator-side admission for the next wave:
	// conflict screening against the in-flight wave, position-map lookups,
	// every shared-RNG leaf draw in logical order, and the ACCESS fan-out
	// submit. It overlaps the previous wave's APPEND broadcast on the
	// workers.
	PhaseSchedule Phase = iota
	// PhaseRetireWait is the overlap payoff window: the coordinator waits
	// for the previous wave's APPEND broadcast and its batched journal
	// append (a background goroutine) while the new wave's ACCESS
	// exchanges run on the workers.
	PhaseRetireWait
	// PhaseFinalize is the previous wave's retirement on the coordinator:
	// lost-append accounting, pooled re-homing, poison vetoes, and result
	// delivery.
	PhaseFinalize
	// PhaseAccessWait is the merge barrier: the coordinator waits for the
	// current wave's ACCESS exchanges. Position-map commits ride on the
	// workers inside this phase, so on a loaded pipeline it is worker-busy
	// time, not serialization.
	PhaseAccessWait
	// PhaseCommit is the coordinator's commit walk over the finished
	// ACCESS wave: journal record construction and decode-failure folding,
	// in logical order.
	PhaseCommit
	// PhaseDispatch is the APPEND broadcast submit plus the journal
	// goroutine handoff; the wave then retires during the next iteration's
	// PhaseRetireWait.
	PhaseDispatch
	// PhaseCheckpoint is a checkpoint interval — zero-length on every
	// iteration that does not checkpoint. The pipeline drains to a
	// quiescent point first, so this is honest coordinator serialization.
	PhaseCheckpoint

	numPhases
)

var phaseNames = [numPhases]string{
	"schedule", "retire.wait", "finalize", "access.wait", "commit", "dispatch", "checkpoint",
}

// String returns the phase's stable name (used in reports and tests).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Coordinator reports whether the phase is coordinator-side work (as opposed
// to a wait on worker fan-out). The distinction is descriptive — the ledger
// ranks all phases by measured all-idle time, because with wave overlap even
// a "wait" phase can expose coordinator serialization (e.g. retire.wait with
// an empty incoming wave) and a coordinator phase can be fully hidden behind
// worker execution.
func (p Phase) Coordinator() bool {
	return p != PhaseRetireWait && p != PhaseAccessWait
}

// WorkerKind classifies a worker task for the busy totals.
type WorkerKind uint8

const (
	// WorkerAccess is an ACCESS exchange task (path read + worker-side
	// position-map commit).
	WorkerAccess WorkerKind = iota
	// WorkerAppend is an APPEND broadcast task (one per SDIMM per wave,
	// plus pooled re-home appends).
	WorkerAppend

	numWorkerKinds
)

// WaveRecord is one coordinator iteration's complete timing: Bounds[i] and
// Bounds[i+1] are the start and end of Phase(i), so the intervals are
// contiguous by construction and sum exactly to Bounds[numPhases]-Bounds[0].
// IdleNS[p] is the measured all-workers-idle wall-clock inside phase p,
// clamped to the phase interval (IdleNS[p] <= PhaseDur(p) structurally).
type WaveRecord struct {
	Index  uint64                `json:"index"`
	Ops    int                   `json:"ops"`
	Bounds [numPhases + 1]uint64 `json:"bounds_ns"`
	IdleNS [numPhases]uint64     `json:"all_idle_ns"`
}

// Wall returns the iteration's wall-clock duration.
func (w WaveRecord) Wall() uint64 { return w.Bounds[numPhases] - w.Bounds[0] }

// PhaseDur returns the duration of one phase interval.
func (w WaveRecord) PhaseDur(p Phase) uint64 { return w.Bounds[p+1] - w.Bounds[p] }

// NumPhases returns the number of phases an iteration records.
func NumPhases() int { return int(numPhases) }

// Collector accumulates iteration timings and the live worker-idle meter.
// One collector serves one pipeline at a time: the coordinator owns
// BeginWave/Mark/End, and every worker task (from any wave, since waves
// overlap) brackets itself with WorkerBegin/WorkerEnd. Totals fold in under
// the mutex, so Report may be called concurrently with a running pipeline.
type Collector struct {
	clock   func() uint64 // monotonic nanoseconds; must be goroutine-safe
	members int

	mu     sync.Mutex
	waves  uint64
	ops    uint64
	wallNS uint64

	phaseNS [numPhases]uint64
	idleNS  [numPhases]uint64     // measured all-idle, folded per phase
	busyNS  [numWorkerKinds]uint64

	// The all-idle meter: active counts in-flight worker tasks; while it is
	// zero (and tracking — i.e. a first wave has begun), wall-clock accrues
	// into idleTotal from idleStart. Waves snapshot the running total at
	// each phase boundary, so inter-Do gaps (idle with no wave open) never
	// land in any phase's ledger entry.
	tracking  bool
	active    int
	idleStart uint64
	idleTotal uint64

	ring []WaveRecord
	next uint64 // total records ever pushed to the ring
	free []*Wave
}

// NewCollector builds a collector for a cluster with the given member
// count, keeping the most recent ringSize wave records (default 256).
func NewCollector(members, ringSize int) *Collector {
	if ringSize <= 0 {
		ringSize = 256
	}
	start := time.Now()
	return &Collector{
		clock:   func() uint64 { return uint64(time.Since(start).Nanoseconds()) },
		members: members,
		ring:    make([]WaveRecord, 0, ringSize),
	}
}

// SetClock replaces the wall clock (tests inject a logical clock for
// deterministic records). Call before the first wave.
func (c *Collector) SetClock(clock func() uint64) {
	if c != nil && clock != nil {
		c.clock = clock
	}
}

// idleTotalLocked returns the idle meter's value as of now; c.mu held.
func (c *Collector) idleTotalLocked(now uint64) uint64 {
	total := c.idleTotal
	if c.tracking && c.active == 0 && now > c.idleStart {
		total += now - c.idleStart
	}
	return total
}

// WorkerBegin marks one worker task entering execution and returns its
// start stamp. Nil-safe: returns 0 on a nil collector (the matching
// WorkerEnd then no-ops too).
func (c *Collector) WorkerBegin() uint64 {
	if c == nil {
		return 0
	}
	now := c.clock()
	c.mu.Lock()
	if c.tracking && c.active == 0 && now > c.idleStart {
		c.idleTotal += now - c.idleStart
	}
	c.active++
	c.mu.Unlock()
	return now
}

// WorkerEnd marks the task begun at start as finished, accruing its span
// into the kind's busy total. When it was the last in-flight task, the
// all-idle meter starts running.
func (c *Collector) WorkerEnd(kind WorkerKind, start uint64) {
	if c == nil {
		return
	}
	now := c.clock()
	c.mu.Lock()
	if kind < numWorkerKinds && now > start {
		c.busyNS[kind] += now - start
	}
	if c.active > 0 {
		c.active--
	}
	if c.active == 0 {
		c.idleStart = now
	}
	c.mu.Unlock()
}

// Wave is one in-flight iteration's scratch. The coordinator owns it
// exclusively; worker tasks talk to the Collector, not the Wave.
type Wave struct {
	col    *Collector
	bounds [numPhases + 1]uint64
	idleAt [numPhases + 1]uint64 // idle-meter snapshot at each boundary
	marked Phase                 // next phase to be marked
}

// BeginWave opens an iteration at the current clock and snapshots the idle
// meter as its baseline (so idle time before the iteration — e.g. between
// Do calls — is excluded). Nil-safe: a nil collector returns a nil wave,
// and every Wave method is a no-op on nil.
func (c *Collector) BeginWave() *Wave {
	if c == nil {
		return nil
	}
	now := c.clock()
	c.mu.Lock()
	var w *Wave
	if n := len(c.free); n > 0 {
		w = c.free[n-1]
		c.free = c.free[:n-1]
	}
	if !c.tracking {
		c.tracking = true
		if c.active == 0 {
			c.idleStart = now
		}
	}
	base := c.idleTotalLocked(now)
	c.mu.Unlock()
	if w == nil {
		w = &Wave{col: c}
	} else {
		w.bounds = [numPhases + 1]uint64{}
		w.idleAt = [numPhases + 1]uint64{}
	}
	w.marked = 0
	w.bounds[0] = now
	w.idleAt[0] = base
	return w
}

// Mark closes phase p at the current clock. Phases skipped since the last
// mark get zero-length intervals at the same boundary, so the iteration's
// intervals always tile its wall-clock exactly. A zero-length interval also
// carries zero idle time (same snapshot at both ends).
func (w *Wave) Mark(p Phase) {
	if w == nil {
		return
	}
	now := w.col.clock()
	w.col.mu.Lock()
	cur := w.col.idleTotalLocked(now)
	w.col.mu.Unlock()
	for q := w.marked; q <= p && q < numPhases; q++ {
		w.bounds[q+1] = now
		w.idleAt[q+1] = cur
	}
	if p+1 > w.marked {
		w.marked = p + 1
	}
}

// End closes the iteration (marking any unfinished phases at the final
// clock), folds it into the collector totals and the recent-waves ring, and
// recycles the wave scratch.
func (w *Wave) End(ops int) {
	if w == nil {
		return
	}
	w.Mark(numPhases - 1)
	c := w.col

	rec := WaveRecord{Ops: ops, Bounds: w.bounds}
	for p := Phase(0); p < numPhases; p++ {
		var idle uint64
		if w.idleAt[p+1] > w.idleAt[p] {
			idle = w.idleAt[p+1] - w.idleAt[p]
		}
		// Clamp to the interval: the meter and the boundary stamps come from
		// separate clock reads, so skew must never make idle exceed the
		// phase it is attributed to.
		if d := rec.PhaseDur(p); idle > d {
			idle = d
		}
		rec.IdleNS[p] = idle
	}

	c.mu.Lock()
	rec.Index = c.next
	c.next++
	c.waves++
	c.ops += uint64(ops)
	c.wallNS += rec.Wall()
	for p := Phase(0); p < numPhases; p++ {
		c.phaseNS[p] += rec.PhaseDur(p)
		c.idleNS[p] += rec.IdleNS[p]
	}
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, rec)
	} else {
		c.ring[rec.Index%uint64(cap(c.ring))] = rec
	}
	c.free = append(c.free, w)
	c.mu.Unlock()
}

// Recent returns the retained wave records, oldest first.
func (c *Collector) Recent() []WaveRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WaveRecord, 0, len(c.ring))
	if c.next > uint64(len(c.ring)) && len(c.ring) == cap(c.ring) {
		start := c.next % uint64(cap(c.ring))
		out = append(out, c.ring[start:]...)
		out = append(out, c.ring[:start]...)
	} else {
		out = append(out, c.ring...)
	}
	return out
}

// PhaseStat is one phase's aggregate across every recorded iteration.
type PhaseStat struct {
	Phase       string  `json:"phase"`
	Coordinator bool    `json:"coordinator"`
	TotalNS     uint64  `json:"total_ns"`
	Share       float64 `json:"share_of_wall"`
	MeanNSWave  float64 `json:"mean_ns_per_wave"`
	// AllIdleNS is the measured wall-clock inside this phase during which
	// zero worker tasks were in flight — the phase's true serialization
	// contribution.
	AllIdleNS uint64 `json:"all_idle_ns"`
}

// LedgerEntry ranks one serialization source: measured all-workers-idle
// wall-clock attributed to the phase.
type LedgerEntry struct {
	Phase        string  `json:"phase"`
	SerializedNS uint64  `json:"serialized_ns"`
	Share        float64 `json:"share_of_wall"`
}

// Report is the collector's aggregate view — the BENCH_blame.json payload.
type Report struct {
	Waves  uint64 `json:"waves"`
	Ops    uint64 `json:"ops"`
	WallNS uint64 `json:"wall_ns"`
	// AttributedNS is the wall-clock covered by named phase intervals.
	// Phases are contiguous by construction, so the attribution ratio is
	// exactly 1.0 — asserted, not assumed, by the wave-tiling test.
	AttributedNS     uint64      `json:"attributed_ns"`
	AttributionRatio float64     `json:"attribution_ratio"`
	Phases           []PhaseStat `json:"phases"`
	// AccessBusyNS/AppendBusyNS total worker task time by kind, across all
	// overlapping waves — the denominator for judging how much of the
	// wall-clock the fan-outs actually covered.
	AccessBusyNS uint64 `json:"access_busy_ns"`
	AppendBusyNS uint64 `json:"append_busy_ns"`
	// Ledger ranks every phase by measured all-workers-idle wall-clock —
	// the time the pipeline ran with no worker task in flight.
	Ledger []LedgerEntry `json:"serialization_ledger"`
	// SerializedNS totals the ledger; SerializedShare is its fraction of
	// wall-clock — the upper bound Amdahl's law puts on pipeline speedup.
	SerializedNS    uint64  `json:"serialized_ns"`
	SerializedShare float64 `json:"serialized_share"`
	TopBottleneck   string  `json:"top_bottleneck"`
	// MaxSpeedup is 1/SerializedShare-bounded ideal speedup at infinite
	// workers (Amdahl), explaining the measured parbench curve.
	MaxSpeedup float64 `json:"max_speedup_amdahl"`
}

// Report aggregates everything recorded so far.
func (c *Collector) Report() Report {
	if c == nil {
		return Report{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	r := Report{
		Waves:        c.waves,
		Ops:          c.ops,
		WallNS:       c.wallNS,
		AccessBusyNS: c.busyNS[WorkerAccess],
		AppendBusyNS: c.busyNS[WorkerAppend],
	}
	for p := Phase(0); p < numPhases; p++ {
		r.AttributedNS += c.phaseNS[p]
	}
	if r.WallNS > 0 {
		r.AttributionRatio = float64(r.AttributedNS) / float64(r.WallNS)
	}
	for p := Phase(0); p < numPhases; p++ {
		ps := PhaseStat{
			Phase:       p.String(),
			Coordinator: p.Coordinator(),
			TotalNS:     c.phaseNS[p],
			AllIdleNS:   c.idleNS[p],
		}
		if r.WallNS > 0 {
			ps.Share = float64(c.phaseNS[p]) / float64(r.WallNS)
		}
		if c.waves > 0 {
			ps.MeanNSWave = float64(c.phaseNS[p]) / float64(c.waves)
		}
		le := LedgerEntry{Phase: p.String(), SerializedNS: c.idleNS[p]}
		if r.WallNS > 0 {
			le.Share = float64(c.idleNS[p]) / float64(r.WallNS)
		}
		r.Ledger = append(r.Ledger, le)
		r.SerializedNS += c.idleNS[p]
		r.Phases = append(r.Phases, ps)
	}
	sort.SliceStable(r.Ledger, func(i, j int) bool {
		return r.Ledger[i].SerializedNS > r.Ledger[j].SerializedNS
	})
	if len(r.Ledger) > 0 {
		r.TopBottleneck = r.Ledger[0].Phase
	}
	if r.WallNS > 0 {
		r.SerializedShare = float64(r.SerializedNS) / float64(r.WallNS)
	}
	if r.SerializedShare > 0 {
		r.MaxSpeedup = 1 / r.SerializedShare
	}
	return r
}
