// Package blame is the wave-level critical-path profiler for the batched
// cluster pipeline. The coordinator records every wave as a contiguous
// sequence of phase intervals — each phase starts exactly where the previous
// one ended, so the intervals tile the wave's wall-clock with nothing left
// over — and each fan-out phase additionally records how long every SDIMM
// worker was busy inside it. From those two views the collector reconstructs
// the wave's critical path and emits a ranked serialization ledger: for each
// coordinator-side phase, how much wall-clock the pipeline spent with every
// worker idle. That ledger is the machine-readable explanation of the
// parallel engine's speedup curve — if "journal" and "commit" dominate it,
// adding workers cannot help, because the coordinator is the bottleneck.
//
// The collector is deliberately invisible to the determinism-equivalence
// suites: it draws no randomness, touches no telemetry registry, and its
// phase boundaries are wall-clock reads that never feed back into
// scheduling. Attaching or detaching a collector cannot change a single bit
// of cluster state.
package blame

import (
	"sort"
	"sync"
	"time"
)

// Phase identifies one interval of a pipeline wave. The phases are recorded
// in this order, and every wave passes through all of them (a wave that
// aborts early — e.g. on a journal error — records zero-length intervals
// for the phases it skipped, keeping the tiling exact).
type Phase uint8

const (
	// PhaseSchedule is coordinator-side admission: position-map lookups and
	// every shared-RNG draw (leaf picks) for the wave, in logical order.
	PhaseSchedule Phase = iota
	// PhaseAccessFanout is the ACCESS exchange fan-out: per-SDIMM link
	// send/wait on the owning workers, ended by the wave barrier.
	PhaseAccessFanout
	// PhaseCommit is merge barrier 1: position-map commits and response
	// decoding on the coordinator, in logical order.
	PhaseCommit
	// PhaseJournal is the wave's batched journal append (a no-op interval
	// for clusters without durability).
	PhaseJournal
	// PhaseAppendFanout is the APPEND broadcast fan-out: one task per SDIMM
	// walking the wave, ended by the second barrier.
	PhaseAppendFanout
	// PhaseFinalize is merge barrier 2: lost-append accounting, re-homing,
	// eviction/writeback finalization, and result delivery.
	PhaseFinalize

	numPhases
)

var phaseNames = [numPhases]string{
	"schedule", "access.fanout", "commit", "journal", "append.fanout", "finalize",
}

// String returns the phase's stable name (used in reports and tests).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Coordinator reports whether the phase runs entirely on the coordinator
// goroutine with every worker idle at a barrier — the serialization ledger
// is built from exactly these phases.
func (p Phase) Coordinator() bool {
	return p != PhaseAccessFanout && p != PhaseAppendFanout
}

// fanoutIndex maps the two fan-out phases onto the per-wave worker-busy
// slots; -1 for coordinator phases.
func fanoutIndex(p Phase) int {
	switch p {
	case PhaseAccessFanout:
		return 0
	case PhaseAppendFanout:
		return 1
	}
	return -1
}

// WaveRecord is one wave's complete timing: Bounds[i] and Bounds[i+1] are
// the start and end of Phase(i), so the intervals are contiguous by
// construction and sum exactly to Bounds[numPhases]-Bounds[0]. MaxBusy is
// the longest single worker's busy time inside each fan-out phase (zero for
// coordinator phases) — the worker-side critical path.
type WaveRecord struct {
	Index   uint64                `json:"index"`
	Ops     int                   `json:"ops"`
	Bounds  [numPhases + 1]uint64 `json:"bounds_ns"`
	MaxBusy [numPhases]uint64     `json:"max_busy_ns"`
	BusySum [numPhases]uint64     `json:"busy_sum_ns"`
}

// Wall returns the wave's wall-clock duration.
func (w WaveRecord) Wall() uint64 { return w.Bounds[numPhases] - w.Bounds[0] }

// PhaseDur returns the duration of one phase interval.
func (w WaveRecord) PhaseDur(p Phase) uint64 { return w.Bounds[p+1] - w.Bounds[p] }

// NumPhases returns the number of phases a wave records.
func NumPhases() int { return int(numPhases) }

// Collector accumulates wave timings. One collector serves one pipeline at
// a time (the coordinator marks phases; workers record busy spans into
// per-member slots they exclusively own between barriers). Totals are
// folded in under a mutex only at wave end, so Report may be called
// concurrently with a running pipeline.
type Collector struct {
	clock   func() uint64 // monotonic nanoseconds
	members int

	mu      sync.Mutex
	waves   uint64
	ops     uint64
	wallNS  uint64
	phaseNS [numPhases]uint64
	busyNS  [numPhases]uint64 // summed worker busy (fan-out phases only)
	critNS  [numPhases]uint64 // per-wave max worker busy, summed over waves
	ring    []WaveRecord
	next    uint64 // total records ever pushed to the ring
	free    []*Wave
}

// NewCollector builds a collector for a cluster with the given member
// count, keeping the most recent ringSize wave records (default 256).
func NewCollector(members, ringSize int) *Collector {
	if ringSize <= 0 {
		ringSize = 256
	}
	start := time.Now()
	return &Collector{
		clock:   func() uint64 { return uint64(time.Since(start).Nanoseconds()) },
		members: members,
		ring:    make([]WaveRecord, 0, ringSize),
	}
}

// SetClock replaces the wall clock (tests inject a logical clock for
// deterministic records). Call before the first wave.
func (c *Collector) SetClock(clock func() uint64) {
	if c != nil && clock != nil {
		c.clock = clock
	}
}

// Wave is one in-flight wave's scratch. The coordinator owns Mark/End;
// workers write only their own member slot of the busy arrays between the
// coordinator's submit and barrier (the pool's WaitGroup publishes the
// writes back).
type Wave struct {
	col    *Collector
	bounds [numPhases + 1]uint64
	marked Phase // next phase to be marked
	busy   [2][]uint64
}

// BeginWave opens a wave at the current clock. Nil-safe: a nil collector
// returns a nil wave, and every Wave method is a no-op on nil.
func (c *Collector) BeginWave() *Wave {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	var w *Wave
	if n := len(c.free); n > 0 {
		w = c.free[n-1]
		c.free = c.free[:n-1]
	}
	c.mu.Unlock()
	if w == nil {
		w = &Wave{col: c}
		w.busy[0] = make([]uint64, c.members)
		w.busy[1] = make([]uint64, c.members)
	} else {
		w.bounds = [numPhases + 1]uint64{}
		clear(w.busy[0])
		clear(w.busy[1])
	}
	w.marked = 0
	w.bounds[0] = c.clock()
	return w
}

// Mark closes phase p at the current clock. Phases skipped since the last
// mark get zero-length intervals at the same boundary, so the wave's
// intervals always tile its wall-clock exactly.
func (w *Wave) Mark(p Phase) {
	if w == nil {
		return
	}
	now := w.col.clock()
	for q := w.marked; q <= p && q < numPhases; q++ {
		w.bounds[q+1] = now
	}
	if p+1 > w.marked {
		w.marked = p + 1
	}
}

// WorkerStart returns a busy-span start stamp (0 on a nil wave — the
// matching WorkerDone then no-ops too).
func (w *Wave) WorkerStart() uint64 {
	if w == nil {
		return 0
	}
	return w.col.clock()
}

// WorkerDone accumulates one worker busy span into (phase, member). Safe
// for the member's worker goroutine: each member slot has exactly one
// writer per fan-out phase (tasks on one member run FIFO on one goroutine).
func (w *Wave) WorkerDone(p Phase, member int, start uint64) {
	if w == nil {
		return
	}
	fi := fanoutIndex(p)
	if fi < 0 || member < 0 || member >= len(w.busy[fi]) {
		return
	}
	w.busy[fi][member] += w.col.clock() - start
}

// End closes the wave (marking any unfinished phases at the final clock),
// folds it into the collector totals and the recent-waves ring, and
// recycles the wave scratch.
func (w *Wave) End(ops int) {
	if w == nil {
		return
	}
	w.Mark(numPhases - 1)
	c := w.col

	rec := WaveRecord{Ops: ops, Bounds: w.bounds}
	for _, p := range []Phase{PhaseAccessFanout, PhaseAppendFanout} {
		fi := fanoutIndex(p)
		for _, b := range w.busy[fi] {
			rec.BusySum[p] += b
			if b > rec.MaxBusy[p] {
				rec.MaxBusy[p] = b
			}
		}
	}

	c.mu.Lock()
	rec.Index = c.next
	c.next++
	c.waves++
	c.ops += uint64(ops)
	c.wallNS += rec.Wall()
	for p := Phase(0); p < numPhases; p++ {
		c.phaseNS[p] += rec.PhaseDur(p)
		c.busyNS[p] += rec.BusySum[p]
		c.critNS[p] += rec.MaxBusy[p]
	}
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, rec)
	} else {
		c.ring[rec.Index%uint64(cap(c.ring))] = rec
	}
	c.free = append(c.free, w)
	c.mu.Unlock()
}

// Recent returns the retained wave records, oldest first.
func (c *Collector) Recent() []WaveRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WaveRecord, 0, len(c.ring))
	if c.next > uint64(len(c.ring)) && len(c.ring) == cap(c.ring) {
		start := c.next % uint64(cap(c.ring))
		out = append(out, c.ring[start:]...)
		out = append(out, c.ring[:start]...)
	} else {
		out = append(out, c.ring...)
	}
	return out
}

// PhaseStat is one phase's aggregate across every recorded wave.
type PhaseStat struct {
	Phase       string  `json:"phase"`
	Coordinator bool    `json:"coordinator"`
	TotalNS     uint64  `json:"total_ns"`
	Share       float64 `json:"share_of_wall"`
	MeanNSWave  float64 `json:"mean_ns_per_wave"`
	// Fan-out phases only: summed worker busy time, the per-wave critical
	// (slowest-worker) path, and the barrier slack — wall-clock inside the
	// phase beyond the slowest worker (submit/wakeup overhead plus the time
	// the coordinator spent waiting after the last worker finished).
	WorkerBusyNS    uint64  `json:"worker_busy_ns,omitempty"`
	CriticalPathNS  uint64  `json:"critical_path_ns,omitempty"`
	BarrierSlackNS  uint64  `json:"barrier_slack_ns,omitempty"`
	WorkerIdleShare float64 `json:"worker_idle_share,omitempty"`
}

// LedgerEntry ranks one coordinator-side serialization source: a phase the
// wave spends with every worker parked at a barrier.
type LedgerEntry struct {
	Phase        string  `json:"phase"`
	SerializedNS uint64  `json:"serialized_ns"`
	Share        float64 `json:"share_of_wall"`
}

// Report is the collector's aggregate view — the BENCH_blame.json payload.
type Report struct {
	Waves  uint64 `json:"waves"`
	Ops    uint64 `json:"ops"`
	WallNS uint64 `json:"wall_ns"`
	// AttributedNS is the wall-clock covered by named phase intervals.
	// Phases are contiguous by construction, so the attribution ratio is
	// exactly 1.0 — asserted, not assumed, by the wave-tiling test.
	AttributedNS     uint64      `json:"attributed_ns"`
	AttributionRatio float64     `json:"attribution_ratio"`
	Phases           []PhaseStat `json:"phases"`
	// Ledger ranks the coordinator-side phases by serialized wall-clock —
	// the time every worker sat idle while the coordinator ran.
	Ledger []LedgerEntry `json:"serialization_ledger"`
	// SerializedNS totals the ledger; SerializedShare is its fraction of
	// wall-clock — the upper bound Amdahl's law puts on pipeline speedup.
	SerializedNS    uint64  `json:"serialized_ns"`
	SerializedShare float64 `json:"serialized_share"`
	TopBottleneck   string  `json:"top_bottleneck"`
	// MaxSpeedup is 1/SerializedShare-bounded ideal speedup at infinite
	// workers (Amdahl), explaining the measured parbench curve.
	MaxSpeedup float64 `json:"max_speedup_amdahl"`
}

// Report aggregates everything recorded so far.
func (c *Collector) Report() Report {
	if c == nil {
		return Report{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	r := Report{Waves: c.waves, Ops: c.ops, WallNS: c.wallNS}
	for p := Phase(0); p < numPhases; p++ {
		r.AttributedNS += c.phaseNS[p]
	}
	if r.WallNS > 0 {
		r.AttributionRatio = float64(r.AttributedNS) / float64(r.WallNS)
	}
	for p := Phase(0); p < numPhases; p++ {
		ps := PhaseStat{
			Phase:       p.String(),
			Coordinator: p.Coordinator(),
			TotalNS:     c.phaseNS[p],
		}
		if r.WallNS > 0 {
			ps.Share = float64(c.phaseNS[p]) / float64(r.WallNS)
		}
		if c.waves > 0 {
			ps.MeanNSWave = float64(c.phaseNS[p]) / float64(c.waves)
		}
		if !p.Coordinator() {
			ps.WorkerBusyNS = c.busyNS[p]
			ps.CriticalPathNS = c.critNS[p]
			if c.phaseNS[p] > c.critNS[p] {
				ps.BarrierSlackNS = c.phaseNS[p] - c.critNS[p]
			}
			ideal := uint64(c.members) * c.phaseNS[p]
			if ideal > 0 {
				ps.WorkerIdleShare = 1 - float64(c.busyNS[p])/float64(ideal)
			}
		} else {
			r.Ledger = append(r.Ledger, LedgerEntry{
				Phase:        p.String(),
				SerializedNS: c.phaseNS[p],
				Share:        ps.Share,
			})
			r.SerializedNS += c.phaseNS[p]
		}
		r.Phases = append(r.Phases, ps)
	}
	sort.SliceStable(r.Ledger, func(i, j int) bool {
		return r.Ledger[i].SerializedNS > r.Ledger[j].SerializedNS
	})
	if len(r.Ledger) > 0 {
		r.TopBottleneck = r.Ledger[0].Phase
	}
	if r.WallNS > 0 {
		r.SerializedShare = float64(r.SerializedNS) / float64(r.WallNS)
	}
	if r.SerializedShare > 0 {
		r.MaxSpeedup = 1 / r.SerializedShare
	}
	return r
}
