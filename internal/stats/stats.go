// Package stats reports simulation statistics: scalar counters, running
// means, latency histograms, and the tabular output used by the experiment
// harness to print paper-style tables.
//
// The scalar primitives (Counter, Mean, Histogram) are aliases for the
// concurrency-safe implementations in internal/telemetry, so a histogram
// feeding a paper table can simultaneously be registered in a
// telemetry.Registry without double bookkeeping. Table and Series remain
// here as presentation-layer views.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"sdimm/internal/telemetry"
)

// Counter is a monotonically growing event count.
type Counter = telemetry.Counter

// Mean accumulates samples and reports their running mean.
type Mean = telemetry.Mean

// Histogram is a latency histogram with fixed-width buckets plus an
// overflow bucket, retaining enough information for mean and quantiles.
type Histogram = telemetry.Histogram

// NewHistogram builds a histogram with nbuckets buckets of the given width.
func NewHistogram(width uint64, nbuckets int) *Histogram {
	return telemetry.NewHistogram(width, nbuckets)
}

// Table is a simple named-rows/named-columns table of float64 cells used to
// print figure data in the same layout as the paper.
type Table struct {
	Title string
	Cols  []string
	rows  []string
	cells map[string]map[string]float64
}

// NewTable creates a table with the given title and column order.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols, cells: make(map[string]map[string]float64)}
}

// Set stores a cell, creating the row on first use (rows keep insertion order).
func (t *Table) Set(row, col string, v float64) {
	m, ok := t.cells[row]
	if !ok {
		m = make(map[string]float64)
		t.cells[row] = m
		t.rows = append(t.rows, row)
	}
	m[col] = v
}

// Get returns a cell value and whether it was set.
func (t *Table) Get(row, col string) (float64, bool) {
	m, ok := t.cells[row]
	if !ok {
		return 0, false
	}
	v, ok := m[col]
	return v, ok
}

// Rows returns the row labels in insertion order.
func (t *Table) Rows() []string { return append([]string(nil), t.rows...) }

// ColMean returns the mean over all set cells in the column.
func (t *Table) ColMean(col string) float64 {
	var m Mean
	for _, r := range t.rows {
		if v, ok := t.Get(r, col); ok {
			m.Add(v)
		}
	}
	return m.Value()
}

// ColGeoMean returns the geometric mean over all set cells in the column.
// Non-positive cells are skipped.
func (t *Table) ColGeoMean(col string) float64 {
	var logs Mean
	for _, r := range t.rows {
		if v, ok := t.Get(r, col); ok && v > 0 {
			logs.Add(math.Log(v))
		}
	}
	if logs.N() == 0 {
		return 0
	}
	return math.Exp(logs.Value())
}

// String renders the table with a gmean summary row, fixed to 4 significant
// decimals, in the row/column order given.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	w := 12
	for _, r := range t.rows {
		if len(r)+2 > w {
			w = len(r) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", w, "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	writeRow := func(label string, get func(col string) (float64, bool)) {
		fmt.Fprintf(&b, "%-*s", w, label)
		for _, c := range t.Cols {
			if v, ok := get(c); ok {
				fmt.Fprintf(&b, "%14.4f", v)
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		r := r
		writeRow(r, func(c string) (float64, bool) { return t.Get(r, c) })
	}
	if len(t.rows) > 1 {
		writeRow("gmean", func(c string) (float64, bool) {
			v := t.ColGeoMean(c)
			return v, v != 0
		})
	}
	return b.String()
}

// Series is an ordered (x, y) sequence used for figure-style curves.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders the series as "name: (x,y) ..." with points in x order.
func (s *Series) String() string {
	type pt struct{ x, y float64 }
	pts := make([]pt, len(s.X))
	for i := range s.X {
		pts[i] = pt{s.X[i], s.Y[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Name)
	for _, p := range pts {
		fmt.Fprintf(&b, " (%g, %.5g)", p.x, p.y)
	}
	return b.String()
}

// tableJSON is Table's serialized form: rows stay in insertion order, cell
// maps serialize with sorted keys (encoding/json), so equal tables always
// marshal to identical bytes — the golden regression suite relies on that.
type tableJSON struct {
	Title string         `json:"title"`
	Cols  []string       `json:"cols"`
	Rows  []tableRowJSON `json:"rows"`
}

type tableRowJSON struct {
	Name  string             `json:"name"`
	Cells map[string]float64 `json:"cells"`
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{Title: t.Title, Cols: t.Cols, Rows: make([]tableRowJSON, 0, len(t.rows))}
	for _, r := range t.rows {
		cells := make(map[string]float64, len(t.cells[r]))
		for c, v := range t.cells[r] {
			cells[c] = v
		}
		out.Rows = append(out.Rows, tableRowJSON{Name: r, Cells: cells})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, restoring row order.
func (t *Table) UnmarshalJSON(b []byte) error {
	var in tableJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	t.Title = in.Title
	t.Cols = in.Cols
	t.rows = nil
	t.cells = make(map[string]map[string]float64)
	for _, r := range in.Rows {
		for c, v := range r.Cells {
			t.Set(r.Name, c, v)
		}
		if len(r.Cells) == 0 {
			t.rows = append(t.rows, r.Name)
			t.cells[r.Name] = make(map[string]float64)
		}
	}
	return nil
}

// CSV renders the table as comma-separated values (header row, then one
// line per row label), for plotting outside the harness.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("name")
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(r)
		for _, c := range t.Cols {
			b.WriteByte(',')
			if v, ok := t.Get(r, c); ok {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
