// Package stats collects and reports simulation statistics: scalar
// counters, running means, latency histograms, and the tabular output used
// by the experiment harness to print paper-style tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically growing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Mean accumulates samples and reports their running mean.
type Mean struct {
	sum float64
	n   uint64
}

// Add records one sample.
func (m *Mean) Add(v float64) {
	m.sum += v
	m.n++
}

// N returns the number of samples.
func (m *Mean) N() uint64 { return m.n }

// Sum returns the total of all samples.
func (m *Mean) Sum() float64 { return m.sum }

// Value returns the mean of the samples, or 0 with no samples.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Histogram is a latency histogram with fixed-width buckets plus an
// overflow bucket, retaining enough information for mean and quantiles.
type Histogram struct {
	width   uint64
	buckets []uint64
	over    uint64
	sum     uint64
	n       uint64
	max     uint64
}

// NewHistogram builds a histogram with nbuckets buckets of the given width.
func NewHistogram(width uint64, nbuckets int) *Histogram {
	if width == 0 || nbuckets <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{width: width, buckets: make([]uint64, nbuckets)}
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
	i := v / h.width
	if i >= uint64(len(h.buckets)) {
		h.over++
		return
	}
	h.buckets[i]++
}

// N returns the number of samples.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the mean sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest sample seen.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1), using
// bucket upper edges. Samples in the overflow bucket report the observed max.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return (uint64(i) + 1) * h.width
		}
	}
	return h.max
}

// Table is a simple named-rows/named-columns table of float64 cells used to
// print figure data in the same layout as the paper.
type Table struct {
	Title string
	Cols  []string
	rows  []string
	cells map[string]map[string]float64
}

// NewTable creates a table with the given title and column order.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols, cells: make(map[string]map[string]float64)}
}

// Set stores a cell, creating the row on first use (rows keep insertion order).
func (t *Table) Set(row, col string, v float64) {
	m, ok := t.cells[row]
	if !ok {
		m = make(map[string]float64)
		t.cells[row] = m
		t.rows = append(t.rows, row)
	}
	m[col] = v
}

// Get returns a cell value and whether it was set.
func (t *Table) Get(row, col string) (float64, bool) {
	m, ok := t.cells[row]
	if !ok {
		return 0, false
	}
	v, ok := m[col]
	return v, ok
}

// Rows returns the row labels in insertion order.
func (t *Table) Rows() []string { return append([]string(nil), t.rows...) }

// ColMean returns the mean over all set cells in the column.
func (t *Table) ColMean(col string) float64 {
	var m Mean
	for _, r := range t.rows {
		if v, ok := t.Get(r, col); ok {
			m.Add(v)
		}
	}
	return m.Value()
}

// ColGeoMean returns the geometric mean over all set cells in the column.
// Non-positive cells are skipped.
func (t *Table) ColGeoMean(col string) float64 {
	var logs Mean
	for _, r := range t.rows {
		if v, ok := t.Get(r, col); ok && v > 0 {
			logs.Add(math.Log(v))
		}
	}
	if logs.N() == 0 {
		return 0
	}
	return math.Exp(logs.Value())
}

// String renders the table with a gmean summary row, fixed to 4 significant
// decimals, in the row/column order given.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	w := 12
	for _, r := range t.rows {
		if len(r)+2 > w {
			w = len(r) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", w, "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	writeRow := func(label string, get func(col string) (float64, bool)) {
		fmt.Fprintf(&b, "%-*s", w, label)
		for _, c := range t.Cols {
			if v, ok := get(c); ok {
				fmt.Fprintf(&b, "%14.4f", v)
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		r := r
		writeRow(r, func(c string) (float64, bool) { return t.Get(r, c) })
	}
	if len(t.rows) > 1 {
		writeRow("gmean", func(c string) (float64, bool) {
			v := t.ColGeoMean(c)
			return v, v != 0
		})
	}
	return b.String()
}

// Series is an ordered (x, y) sequence used for figure-style curves.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders the series as "name: (x,y) ..." with points in x order.
func (s *Series) String() string {
	type pt struct{ x, y float64 }
	pts := make([]pt, len(s.X))
	for i := range s.X {
		pts[i] = pt{s.X[i], s.Y[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Name)
	for _, p := range pts {
		fmt.Fprintf(&b, " (%g, %.5g)", p.x, p.y)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row, then one
// line per row label), for plotting outside the harness.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("name")
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(r)
		for _, c := range t.Cols {
			b.WriteByte(',')
			if v, ok := t.Get(r, c); ok {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
