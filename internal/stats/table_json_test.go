package stats

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestTableJSONRoundTrip pins the property the golden regression suite
// depends on: marshal → unmarshal → marshal yields identical bytes, and
// the restored table preserves row insertion order and every cell.
func TestTableJSONRoundTrip(t *testing.T) {
	tab := NewTable("fig-demo", "base", "secure", "overhead")
	tab.Set("milc", "base", 1.0)
	tab.Set("milc", "secure", 3.25)
	tab.Set("gromacs", "secure", 2.5)
	tab.Set("gromacs", "base", 1.0)
	tab.Set("aaa-last", "overhead", 0.125) // sorts before the others; order must survive anyway

	b1, err := json.MarshalIndent(tab, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(b1, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != tab.Title || !reflect.DeepEqual(got.Cols, tab.Cols) {
		t.Fatalf("header mangled: %q %v", got.Title, got.Cols)
	}
	if !reflect.DeepEqual(got.Rows(), []string{"milc", "gromacs", "aaa-last"}) {
		t.Fatalf("row order not preserved: %v", got.Rows())
	}
	for _, r := range tab.Rows() {
		for _, c := range tab.Cols {
			want, okW := tab.Get(r, c)
			have, okH := got.Get(r, c)
			if okW != okH || want != have {
				t.Fatalf("cell (%s,%s): got %v/%v want %v/%v", r, c, have, okH, want, okW)
			}
		}
	}
	b2, err := json.MarshalIndent(&got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-marshal not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
}

// TestTableJSONEmptyRow keeps rows that have a label but no cells.
func TestTableJSONEmptyRow(t *testing.T) {
	blob := []byte(`{"title":"t","cols":["a"],"rows":[{"name":"empty","cells":{}},{"name":"full","cells":{"a":1}}]}`)
	var tab Table
	if err := json.Unmarshal(blob, &tab); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab.Rows(), []string{"empty", "full"}) {
		t.Fatalf("rows = %v", tab.Rows())
	}
	if _, ok := tab.Get("empty", "a"); ok {
		t.Fatal("phantom cell appeared in empty row")
	}
}
