package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero counter not 0")
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("Value = %d, want 42", c.Value())
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean not 0")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		m.Add(v)
	}
	if m.Value() != 2.5 || m.N() != 4 || m.Sum() != 10 {
		t.Fatalf("mean=%v n=%d sum=%v", m.Value(), m.N(), m.Sum())
	}
}

func TestHistogramMeanMax(t *testing.T) {
	h := NewHistogram(10, 10)
	for _, v := range []uint64{5, 15, 25, 95, 250} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if got, want := h.Mean(), float64(5+15+25+95+250)/5; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if h.Max() != 250 {
		t.Fatalf("Max = %d", h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 1000)
	for v := uint64(1); v <= 100; v++ {
		h.Add(v)
	}
	if q := h.Quantile(0.5); q < 50 || q > 51 {
		t.Fatalf("median = %d, want ≈ 50", q)
	}
	if q := h.Quantile(1.0); q < 100 || q > 101 {
		t.Fatalf("p100 = %d, want ≈ 100", q)
	}
	if q := h.Quantile(0.01); q < 1 || q > 2 {
		t.Fatalf("p1 = %d, want ≈ 1", q)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(10, 2) // covers [0,20)
	h.Add(5)
	h.Add(1000)
	if h.Quantile(1.0) != 1000 {
		t.Fatalf("overflow quantile = %d, want observed max 1000", h.Quantile(1.0))
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(10, 2)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

// Regression: quantile edge cases. Samples past the last bucket must
// report the observed max (not a bucket edge or garbage), out-of-range q
// clamps, and an empty histogram answers 0 everywhere.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(4, 2) // covers [0, 8); both samples overflow
	h.Add(100)
	h.Add(900)
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := h.Quantile(q); got != 900 {
			t.Fatalf("Quantile(%v) = %d, want observed max 900", q, got)
		}
	}

	h2 := NewHistogram(1, 10)
	h2.Add(3)
	if got := h2.Quantile(-1); got != 4 {
		t.Fatalf("Quantile(-1) = %d, want clamp to smallest quantile (4)", got)
	}
	if got := h2.Quantile(2); got != 4 {
		t.Fatalf("Quantile(2) = %d, want clamp to p100 (4)", got)
	}

	h3 := NewHistogram(1, 1)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h3.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h3.Max() != 0 || h3.Mean() != 0 {
		t.Fatal("empty histogram must report zero max and mean")
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0, 1) did not panic")
		}
	}()
	NewHistogram(0, 1)
}

func TestTableSetGet(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Set("r1", "a", 1.5)
	if v, ok := tb.Get("r1", "a"); !ok || v != 1.5 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	if _, ok := tb.Get("r1", "b"); ok {
		t.Fatal("unset cell reported present")
	}
	if _, ok := tb.Get("nope", "a"); ok {
		t.Fatal("missing row reported present")
	}
}

func TestTableRowOrder(t *testing.T) {
	tb := NewTable("t", "c")
	tb.Set("z", "c", 1)
	tb.Set("a", "c", 2)
	tb.Set("z", "c", 3) // overwrite must not duplicate the row
	rows := tb.Rows()
	if len(rows) != 2 || rows[0] != "z" || rows[1] != "a" {
		t.Fatalf("Rows = %v, want [z a] in insertion order", rows)
	}
}

func TestTableMeans(t *testing.T) {
	tb := NewTable("t", "c")
	tb.Set("r1", "c", 2)
	tb.Set("r2", "c", 8)
	if m := tb.ColMean("c"); m != 5 {
		t.Fatalf("ColMean = %v, want 5", m)
	}
	if g := tb.ColGeoMean("c"); math.Abs(g-4) > 1e-9 {
		t.Fatalf("ColGeoMean = %v, want 4", g)
	}
}

func TestTableStringContainsGmean(t *testing.T) {
	tb := NewTable("fig", "x")
	tb.Set("r1", "x", 2)
	tb.Set("r2", "x", 8)
	s := tb.String()
	if !strings.Contains(s, "gmean") || !strings.Contains(s, "fig") {
		t.Fatalf("table render missing pieces:\n%s", s)
	}
}

func TestSeriesStringSorted(t *testing.T) {
	var s Series
	s.Name = "curve"
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	str := s.String()
	if !strings.Contains(str, "(1, 10) (2, 20) (3, 30)") {
		t.Fatalf("series not sorted by x: %s", str)
	}
}

// Property: histogram mean equals arithmetic mean of the inserted samples.
func TestPropertyHistogramMean(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(7, 64)
		var sum float64
		for _, v := range vals {
			h.Add(uint64(v))
			sum += float64(v)
		}
		if len(vals) == 0 {
			return h.Mean() == 0
		}
		return math.Abs(h.Mean()-sum/float64(len(vals))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is nondecreasing in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(3, 100)
		for _, v := range vals {
			h.Add(uint64(v))
		}
		prev := uint64(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Set("r1", "a", 1.5)
	tb.Set("r2", "b", 2)
	csv := tb.CSV()
	want := "name,a,b\nr1,1.5,\nr2,,2\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}
