package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	for _, p := range []Protocol{NonSecure, Freecursive, Independent, Split} {
		for _, ch := range []int{1, 2} {
			c := Default(p, ch)
			if err := c.Validate(); err != nil {
				t.Errorf("Default(%v, %d): %v", p, ch, err)
			}
		}
	}
	c := Default(IndepSplit, 2)
	if err := c.Validate(); err != nil {
		t.Errorf("Default(IndepSplit, 2): %v", err)
	}
}

func TestIndepSplitNeedsFourSDIMMs(t *testing.T) {
	c := Default(IndepSplit, 1) // 2 SDIMMs only
	if err := c.Validate(); err == nil {
		t.Fatal("indep-split on 2 SDIMMs validated")
	}
}

// TestDefaultConfigMatchesPaper pins the Table II parameters.
func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := Default(Freecursive, 2)
	if c.LLCBytes != 2<<20 || c.LLCWays != 8 || c.LLCLatency != 10 {
		t.Errorf("LLC = %d B/%d-way/%d-cycle, want 2MB/8/10", c.LLCBytes, c.LLCWays, c.LLCLatency)
	}
	if c.ROBSize != 128 {
		t.Errorf("ROB = %d, want 128", c.ROBSize)
	}
	if c.Org.RanksPerChannel() != 8 {
		t.Errorf("ranks/channel = %d, want 8", c.Org.RanksPerChannel())
	}
	if c.Org.BanksPerRank != 8 {
		t.Errorf("banks = %d, want 8", c.Org.BanksPerRank)
	}
	if c.Org.RowBytes != 8192 {
		t.Errorf("row buffer = %d, want 8192", c.Org.RowBytes)
	}
	if c.Org.WriteQueueCap != 64 || c.Org.WriteDrainHigh != 40 {
		t.Errorf("write queue %d/%d, want 64 cap, drain at 40", c.Org.WriteQueueCap, c.Org.WriteDrainHigh)
	}
	if c.ORAM.Z != 4 || c.ORAM.BlockBytes != 64 {
		t.Errorf("Z=%d block=%d, want 4 and 64", c.ORAM.Z, c.ORAM.BlockBytes)
	}
	if c.ORAM.PLBBytes != 64<<10 {
		t.Errorf("PLB = %d, want 64KB", c.ORAM.PLBBytes)
	}
	if c.ORAM.EncLatency != 21 {
		t.Errorf("enc latency = %d, want 21", c.ORAM.EncLatency)
	}
	if c.ORAM.RecursivePosMaps != 5 {
		t.Errorf("recursive posmaps = %d, want 5", c.ORAM.RecursivePosMaps)
	}
	// 32 GB total for the 2-channel system.
	if got := c.Org.TotalBytes(); got != 32<<30 {
		t.Errorf("capacity = %d, want 32 GiB", got)
	}
}

func TestCapacityDerivations(t *testing.T) {
	o := DefaultOrg(1)
	if o.LinesPerRow() != 128 {
		t.Errorf("lines/row = %d, want 128", o.LinesPerRow())
	}
	if o.ChannelBytes() != 16<<30 {
		t.Errorf("channel bytes = %d, want 16 GiB", o.ChannelBytes())
	}
}

func TestORAMDerivations(t *testing.T) {
	o := DefaultORAM(28)
	if o.MetaLinesPerBucket() != 1 {
		t.Errorf("meta lines = %d, want 1", o.MetaLinesPerBucket())
	}
	if o.LinesPerBucket() != 5 {
		t.Errorf("lines/bucket = %d, want 5", o.LinesPerBucket())
	}
	if o.EffectiveLevels() != 21 {
		t.Errorf("effective levels = %d, want 21", o.EffectiveLevels())
	}
	o.CachedLevels = 27
	if o.EffectiveLevels() != 1 {
		t.Errorf("effective levels floor = %d, want 1", o.EffectiveLevels())
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero channels", func(c *Config) { c.Org.Channels = 0 }},
		{"row not multiple of line", func(c *Config) { c.Org.RowBytes = 100 }},
		{"banks not pow2", func(c *Config) { c.Org.BanksPerRank = 6 }},
		{"drain high over cap", func(c *Config) { c.Org.WriteDrainHigh = 100 }},
		{"drain low over high", func(c *Config) { c.Org.WriteDrainLow = 50 }},
		{"zero Z", func(c *Config) { c.ORAM.Z = 0 }},
		{"cached >= levels", func(c *Config) { c.ORAM.CachedLevels = 28 }},
		{"posmap scale 1", func(c *Config) { c.ORAM.PosMapScale = 1 }},
		{"bad drain prob", func(c *Config) { c.ORAM.DrainProb = 1.5 }},
		{"evict over stash", func(c *Config) { c.ORAM.EvictThreshold = 1000 }},
		{"sdimm mismatch", func(c *Config) { c.NumSDIMMs = 3 }},
		{"zero ROB", func(c *Config) { c.ROBSize = 0 }},
		{"bad LLC", func(c *Config) { c.LLCBytes = 1000 }},
		{"zero clock ratio", func(c *Config) { c.Org.CPUCyclesPerMemCycle = 0 }},
	}
	for _, tc := range cases {
		c := Default(Independent, 2)
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
		}
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		NonSecure:   "non-secure",
		Freecursive: "freecursive",
		Independent: "independent",
		Split:       "split",
		IndepSplit:  "indep-split",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if s := Protocol(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown protocol string = %q", s)
	}
}

func TestMemCycles(t *testing.T) {
	c := Default(NonSecure, 1)
	if got := c.MemCycles(11); got != 22 {
		t.Fatalf("MemCycles(11) = %d, want 22", got)
	}
}

func TestTimingSane(t *testing.T) {
	tm := DDR31600()
	if tm.TRAS >= tm.TRC {
		// tRC = tRAS + tRP must hold approximately.
		t.Errorf("tRAS %d not < tRC %d", tm.TRAS, tm.TRC)
	}
	if tm.TRC != tm.TRAS+tm.TRP {
		t.Errorf("tRC = %d, want tRAS+tRP = %d", tm.TRC, tm.TRAS+tm.TRP)
	}
	if tm.TFAW < tm.TRRD*4 {
		t.Errorf("tFAW %d < 4*tRRD %d: window never binds", tm.TFAW, 4*tm.TRRD)
	}
}

func TestDDR4TimingSane(t *testing.T) {
	tm := DDR42400()
	if tm.TRC != tm.TRAS+tm.TRP {
		t.Errorf("DDR4 tRC = %d, want tRAS+tRP = %d", tm.TRC, tm.TRAS+tm.TRP)
	}
	d3 := DDR31600()
	// DDR4-2400's absolute latencies are similar but its cycles are
	// shorter, so cycle counts must be larger.
	if tm.CL <= d3.CL || tm.TRCD <= d3.TRCD {
		t.Error("DDR4 cycle counts should exceed DDR3's")
	}
}

func TestDDR4RunsEndToEnd(t *testing.T) {
	c := Default(Freecursive, 1)
	c.Timing = DDR42400()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
