// Package config defines the simulator configuration: DRAM device timing and
// organization (Table II of the paper), ORAM/Freecursive parameters, the
// SDIMM topology, and the protocol selection. Default values reproduce the
// paper's evaluation setup: a DDR3-1600 memory system built from Micron
// MT41J256M8-class x8 devices, 8 ranks per channel, a 2 MB LLC, Z = 4 Path
// ORAM with 5 recursive position maps and a 64 KB PLB.
package config

import (
	"errors"
	"fmt"
	"math/bits"
)

// Protocol selects the ORAM backend architecture under simulation.
type Protocol int

// Protocols evaluated in the paper (Figure 7 plus the two baselines).
const (
	// NonSecure is the insecure baseline: LLC misses go straight to DRAM.
	NonSecure Protocol = iota
	// Freecursive is the CPU-side Freecursive ORAM baseline [Fletcher'15].
	Freecursive
	// Independent runs one whole ORAM per SDIMM (Section III-C).
	Independent
	// Split bit-slices every bucket across all SDIMMs (Section III-D).
	Split
	// IndepSplit combines both: independent halves, each split across
	// half the SDIMMs (Figure 7e).
	IndepSplit
	// Ring is the Independent topology with ring-style eviction inside
	// each SDIMM: reads lift one block per path, writebacks are deferred
	// to a deterministic reverse-lexicographic eviction pointer every
	// ORAM.RingFlushInterval accesses (see internal/oram ring mode).
	Ring
)

// String returns the paper's name for the protocol.
func (p Protocol) String() string {
	switch p {
	case NonSecure:
		return "non-secure"
	case Freecursive:
		return "freecursive"
	case Independent:
		return "independent"
	case Split:
		return "split"
	case IndepSplit:
		return "indep-split"
	case Ring:
		return "ring"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// Timing holds DDR3 device timing in memory-controller (command) clock
// cycles. The simulator's base clock is the CPU clock; Org.CPUCyclesPerMemCycle
// converts. Values follow DDR3-1600 (tCK = 1.25 ns) for an MT41J256M8-class
// x8 part.
type Timing struct {
	CL     int // CAS latency (read command to first data)
	CWL    int // CAS write latency
	TRCD   int // row activate to column command
	TRP    int // precharge to activate
	TRAS   int // activate to precharge
	TRC    int // activate to activate, same bank
	TRRD   int // activate to activate, same rank different bank
	TFAW   int // window for four activates in one rank
	TWTR   int // write data end to read command, same rank
	TWR    int // write recovery (write data end to precharge)
	TRTP   int // read to precharge
	TCCD   int // column command to column command
	TBURST int // data burst duration (BL8 = 4 command cycles)
	TRTRS  int // rank-to-rank data-bus switch penalty
	TRFC   int // refresh cycle time
	TREFI  int // refresh interval
	TXP    int // power-down exit latency (paper: 24 ns wakeup)
	TCKE   int // minimum power-down residency
}

// DDR31600 returns DDR3-1600 timing at tCK = 1.25 ns.
func DDR31600() Timing {
	return Timing{
		CL:     11,
		CWL:    8,
		TRCD:   11,
		TRP:    11,
		TRAS:   28,
		TRC:    39,
		TRRD:   6,
		TFAW:   32,
		TWTR:   6,
		TWR:    12,
		TRTP:   6,
		TCCD:   4,
		TBURST: 4,
		TRTRS:  2,
		TRFC:   208,  // 260 ns for a 4 Gb-class device
		TREFI:  6240, // 7.8 us
		TXP:    20,   // ~24 ns slow power-down exit, matching the paper
		TCKE:   4,
	}
}

// DDR42400 returns DDR4-2400 timing at tCK = 0.833 ns, for the footnote-1
// scenario (an SDIMM built from a DDR4 LRDIMM; the distributed data
// buffers would need a few extra pins, but the channel timing is this).
// Use with CPUCyclesPerMemCycle = 1 roughly at 1.6 GHz, or keep the 2:1
// ratio to model a 3.2 GHz part.
func DDR42400() Timing {
	return Timing{
		CL:     16,
		CWL:    12,
		TRCD:   16,
		TRP:    16,
		TRAS:   39,
		TRC:    55,
		TRRD:   6,
		TFAW:   26,
		TWTR:   9,
		TWR:    18,
		TRTP:   9,
		TCCD:   6,
		TBURST: 4,
		TRTRS:  3,
		TRFC:   420,  // 350 ns for an 8 Gb-class device
		TREFI:  9360, // 7.8 us
		TXP:    8,
		TCKE:   6,
	}
}

// Org describes the memory-system organization.
type Org struct {
	Channels             int // host memory channels
	DIMMsPerChannel      int // DIMMs (or SDIMMs) per channel
	RanksPerDIMM         int
	BanksPerRank         int
	RowsPerBank          int
	RowBytes             int // row-buffer size in bytes (per rank)
	LineBytes            int // cache-line / transfer granularity
	CPUCyclesPerMemCycle int // CPU cycles per memory command cycle
	ReadQueueCap         int // per-channel read queue capacity
	WriteQueueCap        int // per-channel write queue capacity (Table II: 64)
	WriteDrainHigh       int // drain writes above this occupancy (paper: 40)
	WriteDrainLow        int // stop draining below this occupancy
}

// DefaultOrg returns the paper's memory organization for the given channel
// count: 2 DIMMs per channel, quad-rank DIMMs (8 ranks/channel), 8 banks,
// 8 KB row buffer, 64 B lines, CPU at 1.6 GHz against an 800 MHz command
// clock.
func DefaultOrg(channels int) Org {
	return Org{
		Channels:             channels,
		DIMMsPerChannel:      2,
		RanksPerDIMM:         4,
		BanksPerRank:         8,
		RowsPerBank:          32768,
		RowBytes:             8192,
		LineBytes:            64,
		CPUCyclesPerMemCycle: 2,
		ReadQueueCap:         64,
		WriteQueueCap:        64,
		WriteDrainHigh:       40,
		WriteDrainLow:        20,
	}
}

// LinesPerRow returns cache lines per DRAM row.
func (o Org) LinesPerRow() int { return o.RowBytes / o.LineBytes }

// RanksPerChannel returns ranks on one host channel.
func (o Org) RanksPerChannel() int { return o.DIMMsPerChannel * o.RanksPerDIMM }

// ChannelBytes returns the capacity of one channel in bytes.
func (o Org) ChannelBytes() uint64 {
	return uint64(o.RanksPerChannel()) * uint64(o.BanksPerRank) * uint64(o.RowsPerBank) * uint64(o.RowBytes)
}

// TotalBytes returns total memory capacity.
func (o Org) TotalBytes() uint64 { return uint64(o.Channels) * o.ChannelBytes() }

// ORAM holds Path ORAM / Freecursive parameters (Table II).
type ORAM struct {
	Z                 int     // blocks per bucket
	BlockBytes        int     // data block size
	Levels            int     // total tree levels (root = level 0)
	CachedLevels      int     // top levels held in the on-chip ORAM cache (0 = off)
	RecursivePosMaps  int     // number of recursive PosMap ORAMs
	PosMapScale       int     // leaf entries per PosMap block
	PLBBytes          int     // PosMap Lookaside Buffer capacity
	EncLatency        int     // encryption/decryption latency, CPU cycles
	StashCapacity     int     // normal stash entries (paper: ~200)
	EvictThreshold    int     // background eviction trigger occupancy
	SubtreeLevels     int     // levels per packed subtree in the memory layout
	TransferQueueCap  int     // Independent-protocol transfer queue entries
	DrainProb         float64 // probability p of draining a transferred block with an extra accessORAM
	RingFlushInterval int     // ring backend: accesses per deferred eviction flush (A)
}

// DefaultORAM returns the paper's ORAM parameters for the given tree height.
func DefaultORAM(levels int) ORAM {
	return ORAM{
		Z:                 4,
		BlockBytes:        64,
		Levels:            levels,
		CachedLevels:      7,
		RecursivePosMaps:  5,
		PosMapScale:       32,
		PLBBytes:          64 << 10,
		EncLatency:        21,
		StashCapacity:     200,
		EvictThreshold:    150,
		SubtreeLevels:     4,
		TransferQueueCap:  64,
		DrainProb:         0.1,
		RingFlushInterval: 4,
	}
}

// MetaLinesPerBucket returns the cache lines of metadata (tags, leaf IDs,
// shared counter, MAC) per bucket. With Z = 4 and 64 B lines the metadata
// packs into one line.
func (o ORAM) MetaLinesPerBucket() int {
	// Per block: address tag (~4 B) + leaf ID (~4 B); per bucket: counter
	// (8 B) + MAC (8 B).
	metaBytes := o.Z*8 + 16
	return (metaBytes + o.BlockBytes - 1) / o.BlockBytes
}

// LinesPerBucket returns the total cache lines per bucket (data + metadata).
func (o ORAM) LinesPerBucket() int { return o.Z + o.MetaLinesPerBucket() }

// EffectiveLevels returns tree levels that live in DRAM after on-chip
// caching of the top CachedLevels levels.
func (o ORAM) EffectiveLevels() int {
	l := o.Levels - o.CachedLevels
	if l < 1 {
		l = 1
	}
	return l
}

// Config is the complete simulation configuration.
type Config struct {
	Protocol Protocol
	Org      Org
	Timing   Timing
	ORAM     ORAM

	// NumSDIMMs is the number of SDIMMs for the distributed protocols.
	// It must equal Org.Channels * Org.DIMMsPerChannel.
	NumSDIMMs int

	// LLC parameters (Table II: 2 MB, 64 B lines, 8-way, 10-cycle).
	LLCBytes   int
	LLCWays    int
	LLCLatency int

	// ROBSize bounds in-flight instructions in the in-order core frontend.
	ROBSize int

	// ProbeInterval is the PROBE polling period in CPU cycles for the
	// Independent protocol.
	ProbeInterval int

	// LowPower enables the rank-per-subtree layout with aggressive rank
	// power-down (Section III-E).
	LowPower bool

	// Seed makes runs reproducible.
	Seed uint64

	// WarmupAccesses and MeasureAccesses bound the simulation in LLC-miss
	// counts (the paper fast-forwards 1M accesses and measures 1M; we
	// default to smaller windows — steady state is reached much earlier).
	WarmupAccesses  int
	MeasureAccesses int
}

// Default returns the paper's configuration for a protocol on the given
// number of channels. Tree height 28 models the 32 GB system of Section IV.
func Default(p Protocol, channels int) Config {
	cfg := Config{
		Protocol:        p,
		Org:             DefaultOrg(channels),
		Timing:          DDR31600(),
		ORAM:            DefaultORAM(28),
		LLCBytes:        2 << 20,
		LLCWays:         8,
		LLCLatency:      10,
		ROBSize:         128,
		ProbeInterval:   100,
		LowPower:        true,
		Seed:            1,
		WarmupAccesses:  500,
		MeasureAccesses: 2000,
	}
	cfg.NumSDIMMs = cfg.Org.Channels * cfg.Org.DIMMsPerChannel
	return cfg
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	o := c.Org
	switch {
	case o.Channels <= 0 || o.DIMMsPerChannel <= 0 || o.RanksPerDIMM <= 0:
		return errors.New("config: non-positive memory organization")
	case o.BanksPerRank <= 0 || o.RowsPerBank <= 0:
		return errors.New("config: non-positive bank organization")
	case o.RowBytes <= 0 || o.LineBytes <= 0 || o.RowBytes%o.LineBytes != 0:
		return errors.New("config: row size must be a positive multiple of line size")
	case o.CPUCyclesPerMemCycle <= 0:
		return errors.New("config: non-positive clock ratio")
	case bits.OnesCount(uint(o.BanksPerRank)) != 1:
		return errors.New("config: banks per rank must be a power of two")
	case o.WriteDrainHigh > o.WriteQueueCap:
		return errors.New("config: write drain threshold exceeds queue capacity")
	case o.WriteDrainLow > o.WriteDrainHigh:
		return errors.New("config: write drain low watermark above high watermark")
	}
	om := c.ORAM
	switch {
	case om.Z <= 0 || om.BlockBytes <= 0 || om.Levels <= 0:
		return errors.New("config: non-positive ORAM parameters")
	case om.CachedLevels < 0 || om.CachedLevels >= om.Levels:
		return errors.New("config: cached levels must be in [0, levels)")
	case om.RecursivePosMaps < 0:
		return errors.New("config: negative recursion depth")
	case om.PosMapScale <= 1:
		return errors.New("config: PosMap scale must exceed 1")
	case om.SubtreeLevels <= 0 || om.SubtreeLevels > om.Levels:
		return errors.New("config: invalid subtree packing")
	case om.DrainProb < 0 || om.DrainProb > 1:
		return errors.New("config: drain probability out of [0,1]")
	case om.EvictThreshold <= 0 || om.EvictThreshold > om.StashCapacity:
		return errors.New("config: eviction threshold out of (0, stash capacity]")
	}
	switch c.Protocol {
	case Independent, Split, IndepSplit, Ring:
		if c.NumSDIMMs != c.Org.Channels*c.Org.DIMMsPerChannel {
			return fmt.Errorf("config: NumSDIMMs = %d, want channels*dimms = %d",
				c.NumSDIMMs, c.Org.Channels*c.Org.DIMMsPerChannel)
		}
		if bits.OnesCount(uint(c.NumSDIMMs)) != 1 {
			return errors.New("config: SDIMM count must be a power of two")
		}
	}
	if c.Protocol == Ring {
		if om.RingFlushInterval <= 0 {
			return errors.New("config: ring backend needs a positive flush interval")
		}
		if om.Z < 2 {
			return errors.New("config: ring backend needs Z >= 2 (reserved dummy slots)")
		}
	}
	if c.Protocol == IndepSplit && c.NumSDIMMs < 4 {
		return errors.New("config: indep-split needs at least 4 SDIMMs")
	}
	if c.LLCBytes <= 0 || c.LLCWays <= 0 || c.LLCBytes%(c.LLCWays*c.Org.LineBytes) != 0 {
		return errors.New("config: LLC size must divide into ways*linesize sets")
	}
	if c.ROBSize <= 0 {
		return errors.New("config: non-positive ROB size")
	}
	return nil
}

// MemCycles converts memory command cycles to CPU cycles.
func (c Config) MemCycles(n int) uint64 {
	return uint64(n) * uint64(c.Org.CPUCyclesPerMemCycle)
}
