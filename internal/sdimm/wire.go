package sdimm

import (
	"encoding/binary"
	"fmt"

	"sdimm/internal/oram"
)

// Wire marshalling for the message bodies that travel (sealed by package
// seccomm) between the CPU and the secure buffers. Fixed-size layouts keep
// every message of a given kind the same length on the bus — part of the
// protocol's obliviousness argument.

const wireHeader = 8 + 1 + 8 + 8 + 1 // addr, op, oldLeaf, newLeaf, keep

// MarshalAccess encodes an AccessRequest with a blockBytes payload slot
// (dummy data for reads, so reads and writes are indistinguishable).
func MarshalAccess(req AccessRequest, blockBytes int) []byte {
	out := make([]byte, wireHeader+blockBytes)
	binary.BigEndian.PutUint64(out[0:], req.Addr)
	if req.Op == oram.OpWrite {
		out[8] = 1
	}
	binary.BigEndian.PutUint64(out[9:], req.OldLeaf)
	binary.BigEndian.PutUint64(out[17:], req.NewLeaf)
	if req.Keep {
		out[25] = 1
	}
	copy(out[wireHeader:], req.Data)
	return out
}

// UnmarshalAccess decodes an AccessRequest. The payload slot is attached
// only for writes (reads carry a dummy block).
func UnmarshalAccess(b []byte, blockBytes int) (AccessRequest, error) {
	if len(b) != wireHeader+blockBytes {
		return AccessRequest{}, fmt.Errorf("sdimm: ACCESS body %d bytes, want %d", len(b), wireHeader+blockBytes)
	}
	req := AccessRequest{
		Addr:    binary.BigEndian.Uint64(b[0:]),
		OldLeaf: binary.BigEndian.Uint64(b[9:]),
		NewLeaf: binary.BigEndian.Uint64(b[17:]),
		Keep:    b[25] == 1,
	}
	if b[8] == 1 {
		req.Op = oram.OpWrite
		req.Data = append([]byte(nil), b[wireHeader:]...)
	}
	return req, nil
}

const respHeader = 1 + 8 + 8 // dummy flag, addr, leaf

// MarshalResponse encodes an AccessResponse with a blockBytes payload slot.
func MarshalResponse(r AccessResponse, blockBytes int) []byte {
	out := make([]byte, respHeader+blockBytes)
	if r.Dummy {
		out[0] = 1
		return out
	}
	binary.BigEndian.PutUint64(out[1:], r.Block.Addr)
	binary.BigEndian.PutUint64(out[9:], r.Block.Leaf)
	copy(out[respHeader:], r.Block.Data)
	return out
}

// UnmarshalResponse decodes an AccessResponse.
func UnmarshalResponse(b []byte, blockBytes int) (AccessResponse, error) {
	if len(b) != respHeader+blockBytes {
		return AccessResponse{}, fmt.Errorf("sdimm: response body %d bytes, want %d", len(b), respHeader+blockBytes)
	}
	if b[0] == 1 {
		return AccessResponse{Dummy: true}, nil
	}
	return AccessResponse{
		Addr: binary.BigEndian.Uint64(b[1:]),
		Block: oram.Block{
			Addr: binary.BigEndian.Uint64(b[1:]),
			Leaf: binary.BigEndian.Uint64(b[9:]),
			Data: append([]byte(nil), b[respHeader:]...),
		},
	}, nil
}

const appendHeader = 1 + 8 + 8 // dummy flag, addr, leaf

// MarshalAppend encodes an APPEND body (block or dummy).
func MarshalAppend(blk oram.Block, dummy bool, blockBytes int) []byte {
	out := make([]byte, appendHeader+blockBytes)
	if dummy {
		out[0] = 1
		return out
	}
	binary.BigEndian.PutUint64(out[1:], blk.Addr)
	binary.BigEndian.PutUint64(out[9:], blk.Leaf)
	copy(out[appendHeader:], blk.Data)
	return out
}

// UnmarshalAppend decodes an APPEND body.
func UnmarshalAppend(b []byte, blockBytes int) (blk oram.Block, dummy bool, err error) {
	if len(b) != appendHeader+blockBytes {
		return oram.Block{}, false, fmt.Errorf("sdimm: APPEND body %d bytes, want %d", len(b), appendHeader+blockBytes)
	}
	if b[0] == 1 {
		return oram.Block{}, true, nil
	}
	return oram.Block{
		Addr: binary.BigEndian.Uint64(b[1:]),
		Leaf: binary.BigEndian.Uint64(b[9:]),
		Data: append([]byte(nil), b[appendHeader:]...),
	}, false, nil
}
