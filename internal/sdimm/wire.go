package sdimm

import (
	"encoding/binary"
	"fmt"

	"sdimm/internal/oram"
)

// Wire marshalling for the message bodies that travel (sealed by package
// seccomm) between the CPU and the secure buffers. Fixed-size layouts keep
// every message of a given kind the same length on the bus — part of the
// protocol's obliviousness argument.

const wireHeader = 8 + 1 + 8 + 8 + 1 // addr, op, oldLeaf, newLeaf, keep

// AppendAccess appends the encoded AccessRequest (with a blockBytes payload
// slot — dummy data for reads, so reads and writes are indistinguishable) to
// dst and returns the extended slice.
func AppendAccess(dst []byte, req AccessRequest, blockBytes int) []byte {
	base := len(dst)
	dst = appendZeros(dst, wireHeader+blockBytes)
	out := dst[base:]
	binary.BigEndian.PutUint64(out[0:], req.Addr)
	if req.Op == oram.OpWrite {
		out[8] = 1
	}
	binary.BigEndian.PutUint64(out[9:], req.OldLeaf)
	binary.BigEndian.PutUint64(out[17:], req.NewLeaf)
	if req.Keep {
		out[25] = 1
	}
	copy(out[wireHeader:], req.Data)
	return dst
}

// MarshalAccess encodes an AccessRequest into a fresh buffer.
func MarshalAccess(req AccessRequest, blockBytes int) []byte {
	return AppendAccess(nil, req, blockBytes)
}

// UnmarshalAccess decodes an AccessRequest. The payload slot is attached
// only for writes (reads carry a dummy block).
func UnmarshalAccess(b []byte, blockBytes int) (AccessRequest, error) {
	req, err := UnmarshalAccessView(b, blockBytes)
	if err == nil && req.Data != nil {
		req.Data = append([]byte(nil), req.Data...)
	}
	return req, err
}

// UnmarshalAccessView decodes an AccessRequest whose Data (writes only)
// aliases b — zero-copy for dispatchers that consume the request before the
// underlying frame is reused.
func UnmarshalAccessView(b []byte, blockBytes int) (AccessRequest, error) {
	if len(b) != wireHeader+blockBytes {
		return AccessRequest{}, fmt.Errorf("sdimm: ACCESS body %d bytes, want %d", len(b), wireHeader+blockBytes)
	}
	req := AccessRequest{
		Addr:    binary.BigEndian.Uint64(b[0:]),
		OldLeaf: binary.BigEndian.Uint64(b[9:]),
		NewLeaf: binary.BigEndian.Uint64(b[17:]),
		Keep:    b[25] == 1,
	}
	if b[8] == 1 {
		req.Op = oram.OpWrite
		req.Data = b[wireHeader:]
	}
	return req, nil
}

// appendZeros extends dst by n zero bytes (reusing capacity when present).
func appendZeros(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		tail := dst[len(dst) : len(dst)+n]
		clear(tail)
		return dst[:len(dst)+n]
	}
	return append(dst, make([]byte, n)...)
}

const respHeader = 1 + 8 + 8 // dummy flag, addr, leaf

// AppendResponse appends the encoded AccessResponse (with a blockBytes
// payload slot) to dst and returns the extended slice.
func AppendResponse(dst []byte, r AccessResponse, blockBytes int) []byte {
	base := len(dst)
	dst = appendZeros(dst, respHeader+blockBytes)
	out := dst[base:]
	if r.Dummy {
		out[0] = 1
		return dst
	}
	binary.BigEndian.PutUint64(out[1:], r.Block.Addr)
	binary.BigEndian.PutUint64(out[9:], r.Block.Leaf)
	copy(out[respHeader:], r.Block.Data)
	return dst
}

// MarshalResponse encodes an AccessResponse into a fresh buffer.
func MarshalResponse(r AccessResponse, blockBytes int) []byte {
	return AppendResponse(nil, r, blockBytes)
}

// UnmarshalResponse decodes an AccessResponse.
func UnmarshalResponse(b []byte, blockBytes int) (AccessResponse, error) {
	if len(b) != respHeader+blockBytes {
		return AccessResponse{}, fmt.Errorf("sdimm: response body %d bytes, want %d", len(b), respHeader+blockBytes)
	}
	if b[0] == 1 {
		return AccessResponse{Dummy: true}, nil
	}
	return AccessResponse{
		Addr: binary.BigEndian.Uint64(b[1:]),
		Block: oram.Block{
			Addr: binary.BigEndian.Uint64(b[1:]),
			Leaf: binary.BigEndian.Uint64(b[9:]),
			Data: append([]byte(nil), b[respHeader:]...),
		},
	}, nil
}

const appendHeader = 1 + 8 + 8 // dummy flag, addr, leaf

// AppendAppend appends the encoded APPEND body (block or dummy) to dst and
// returns the extended slice.
func AppendAppend(dst []byte, blk oram.Block, dummy bool, blockBytes int) []byte {
	base := len(dst)
	dst = appendZeros(dst, appendHeader+blockBytes)
	out := dst[base:]
	if dummy {
		out[0] = 1
		return dst
	}
	binary.BigEndian.PutUint64(out[1:], blk.Addr)
	binary.BigEndian.PutUint64(out[9:], blk.Leaf)
	copy(out[appendHeader:], blk.Data)
	return dst
}

// MarshalAppend encodes an APPEND body into a fresh buffer.
func MarshalAppend(blk oram.Block, dummy bool, blockBytes int) []byte {
	return AppendAppend(nil, blk, dummy, blockBytes)
}

// UnmarshalAppend decodes an APPEND body.
func UnmarshalAppend(b []byte, blockBytes int) (blk oram.Block, dummy bool, err error) {
	blk, dummy, err = UnmarshalAppendView(b, blockBytes)
	if err == nil && blk.Data != nil {
		blk.Data = append([]byte(nil), blk.Data...)
	}
	return blk, dummy, err
}

// UnmarshalAppendView decodes an APPEND body whose Data aliases b —
// zero-copy for dispatchers that consume the block before the frame is
// reused.
func UnmarshalAppendView(b []byte, blockBytes int) (blk oram.Block, dummy bool, err error) {
	if len(b) != appendHeader+blockBytes {
		return oram.Block{}, false, fmt.Errorf("sdimm: APPEND body %d bytes, want %d", len(b), appendHeader+blockBytes)
	}
	if b[0] == 1 {
		return oram.Block{}, true, nil
	}
	return oram.Block{
		Addr: binary.BigEndian.Uint64(b[1:]),
		Leaf: binary.BigEndian.Uint64(b[9:]),
		Data: b[appendHeader:],
	}, false, nil
}
