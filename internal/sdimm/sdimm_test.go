package sdimm

import (
	"strings"
	"testing"

	"sdimm/internal/oram"
	"sdimm/internal/rng"
)

// TestCommandTableMatchesPaper pins the Table I encodings.
func TestCommandTableMatchesPaper(t *testing.T) {
	cases := []struct {
		cmd   Command
		long  bool
		write bool
		cas   uint32
	}{
		{CmdSendPKey, false, false, 0x0},
		{CmdReceiveSecret, true, true, 0x0},
		{CmdAccess, true, true, 0x0},
		{CmdProbe, false, false, 0x8},
		{CmdFetchResult, false, false, 0x10},
		{CmdAppend, true, true, 0x0},
		{CmdFetchData, false, false, 0x18},
		{CmdFetchStash, true, true, 0x18},
		{CmdReceiveList, true, true, 0x0},
	}
	for _, c := range cases {
		e := Table(c.cmd)
		if e.Long != c.long || e.Write != c.write || e.RAS != 0 || e.CAS != c.cas {
			t.Errorf("%v encoding = %+v, want long=%v write=%v cas=%#x", c.cmd, e, c.long, c.write, c.cas)
		}
	}
}

func TestCommandStrings(t *testing.T) {
	if CmdAccess.String() != "ACCESS" || CmdReceiveList.String() != "RECEIVE_LIST" {
		t.Fatal("command names wrong")
	}
	if !strings.Contains(Command(99).String(), "99") {
		t.Fatal("unknown command name")
	}
}

func TestWireRoundTrip(t *testing.T) {
	for _, c := range []Command{CmdSendPKey, CmdReceiveSecret, CmdAccess, CmdProbe,
		CmdFetchResult, CmdAppend, CmdFetchData, CmdFetchStash, CmdReceiveList} {
		payload := []byte("body-" + c.String())
		e := Table(c)
		w := Encode(c, payload)
		got, body, err := Decode(w)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if got != c {
			t.Fatalf("decoded %v as %v", c, got)
		}
		if e.Long && string(body) != string(payload) {
			t.Fatalf("%v payload = %q", c, body)
		}
	}
}

func TestDecodeRejections(t *testing.T) {
	cases := []Wire{
		{Write: false, RAS: 5, CAS: 0},                                     // outside reserved block
		{Write: false, RAS: 0, CAS: 0x20},                                  // unknown short command
		{Write: true, RAS: 0, CAS: 0},                                      // empty payload
		{Write: true, RAS: 0, CAS: 0, Payload: []byte{byte(CmdProbe)}},     // short opcode in long frame
		{Write: true, RAS: 0, CAS: 0x18, Payload: []byte{byte(CmdAccess)}}, // wrong CAS for opcode
	}
	for i, w := range cases {
		if _, _, err := Decode(w); err == nil {
			t.Errorf("bad wire %d accepted", i)
		}
	}
}

// TestAreaEstimate pins the paper's Section IV-B numbers.
func TestAreaEstimate(t *testing.T) {
	a := Area()
	if a.ControllerMM2 != 0.47 || a.BufferMM2 != 0.42 {
		t.Fatalf("area = %+v", a)
	}
	if a.Total() >= 1.0 {
		t.Fatalf("total area %v not under 1 mm² as the paper claims", a.Total())
	}
}

func newBuffer(t *testing.T, levels int) *Buffer {
	t.Helper()
	g := oram.MustGeometry(levels)
	eng, err := oram.NewEngine(oram.NewSparseStore(4), nil, oram.Options{
		Geometry:       g,
		StashCapacity:  200,
		EvictThreshold: 150,
		Rand:           rng.New(77),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuffer("sdimm-0", eng, 16, 0.25, rng.New(78))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBufferValidation(t *testing.T) {
	g := oram.MustGeometry(4)
	eng, _ := oram.NewEngine(oram.NewSparseStore(4), nil, oram.Options{
		Geometry: g, StashCapacity: 10, EvictThreshold: 5, Rand: rng.New(1),
	})
	r := rng.New(2)
	if _, err := NewBuffer("x", nil, 4, 0.5, r); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewBuffer("x", eng, 0, 0.5, r); err == nil {
		t.Error("zero queue accepted")
	}
	if _, err := NewBuffer("x", eng, 4, 1.5, r); err == nil {
		t.Error("bad probability accepted")
	}
	if _, err := NewBuffer("x", eng, 4, 0.5, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestAccessKeepWriteRespondsDummy(t *testing.T) {
	b := newBuffer(t, 8)
	_, _, err := b.HandleAccess(AccessRequest{
		Addr: 1, Op: oram.OpWrite, OldLeaf: 5, NewLeaf: 9, Keep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !b.HandleProbe() {
		t.Fatal("no response ready after access")
	}
	r, err := b.HandleFetchResult()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Dummy {
		t.Fatal("kept write should produce a dummy response")
	}
	if b.HandleProbe() {
		t.Fatal("mailbox not drained")
	}
}

func TestAccessReadReturnsBlock(t *testing.T) {
	b := newBuffer(t, 8)
	// Install then read back keeping it local.
	b.HandleAccess(AccessRequest{Addr: 7, Op: oram.OpWrite, OldLeaf: 3, NewLeaf: 4, Keep: true})
	b.HandleFetchResult()
	_, _, err := b.HandleAccess(AccessRequest{Addr: 7, Op: oram.OpRead, OldLeaf: 4, NewLeaf: 6, Keep: true})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := b.HandleFetchResult()
	if r.Dummy || r.Block.Addr != 7 || r.Block.Leaf != 6 {
		t.Fatalf("read response = %+v", r)
	}
}

func TestAccessMigrationReturnsBlockAndRemoves(t *testing.T) {
	b := newBuffer(t, 8)
	b.HandleAccess(AccessRequest{Addr: 7, Op: oram.OpWrite, OldLeaf: 3, NewLeaf: 4, Keep: true})
	b.HandleFetchResult()
	_, _, err := b.HandleAccess(AccessRequest{Addr: 7, Op: oram.OpWrite, OldLeaf: 4, NewLeaf: 12345, Keep: false})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := b.HandleFetchResult()
	if r.Dummy || r.Block.Addr != 7 {
		t.Fatalf("migrating write must return the block: %+v", r)
	}
	if _, ok := b.Engine().StashGet(7); ok {
		t.Fatal("migrated block still resident")
	}
}

func TestFetchResultEmptyFails(t *testing.T) {
	b := newBuffer(t, 6)
	if _, err := b.HandleFetchResult(); err == nil {
		t.Fatal("empty mailbox fetch succeeded")
	}
}

func TestAppendDummyDiscarded(t *testing.T) {
	b := newBuffer(t, 6)
	forced, err := b.HandleAppend(oram.Block{}, true)
	if err != nil || forced != nil {
		t.Fatalf("dummy append: %v %v", forced, err)
	}
	if b.TransferQueueLen() != 0 {
		t.Fatal("dummy entered queue")
	}
	if b.Stats().DummyAppends != 1 {
		t.Fatal("dummy not counted")
	}
}

func TestAppendQueuesAndVacancyAdmits(t *testing.T) {
	b := newBuffer(t, 8)
	leaves := b.Engine().Geometry().Leaves()
	if _, err := b.HandleAppend(oram.Block{Addr: 100, Leaf: 3 % leaves}, false); err != nil {
		t.Fatal(err)
	}
	if b.TransferQueueLen() != 1 {
		t.Fatal("append did not queue")
	}
	// Install a block, then migrate it out: the departure must admit the
	// queued block into the stash.
	b.HandleAccess(AccessRequest{Addr: 1, Op: oram.OpWrite, OldLeaf: 0, NewLeaf: 1, Keep: true})
	b.HandleFetchResult()
	b.HandleAccess(AccessRequest{Addr: 1, Op: oram.OpWrite, OldLeaf: 1, NewLeaf: 999999, Keep: false})
	b.HandleFetchResult()
	if b.TransferQueueLen() != 0 {
		t.Fatal("vacancy did not admit queued block")
	}
}

func TestAppendOverflowForcesDrain(t *testing.T) {
	g := oram.MustGeometry(8)
	eng, _ := oram.NewEngine(oram.NewSparseStore(4), nil, oram.Options{
		Geometry: g, StashCapacity: 200, EvictThreshold: 150, Rand: rng.New(5),
	})
	b, _ := NewBuffer("s", eng, 2, 0, rng.New(6)) // p=0: only overflow forces drains
	leaves := g.Leaves()
	var forcedSeen bool
	for i := uint64(0); i < 5; i++ {
		forced, err := b.HandleAppend(oram.Block{Addr: 1000 + i, Leaf: i % leaves}, false)
		if err != nil {
			t.Fatal(err)
		}
		if forced != nil {
			forcedSeen = true
		}
		if b.TransferQueueLen() > 2 {
			t.Fatalf("queue exceeded capacity: %d", b.TransferQueueLen())
		}
	}
	if !forcedSeen {
		t.Fatal("overflow never forced a drain")
	}
	if b.Stats().TransferOverflows == 0 {
		t.Fatal("overflow not counted")
	}
}

func TestProbabilisticDrainHappens(t *testing.T) {
	g := oram.MustGeometry(8)
	eng, _ := oram.NewEngine(oram.NewSparseStore(4), nil, oram.Options{
		Geometry: g, StashCapacity: 200, EvictThreshold: 150, Rand: rng.New(5),
	})
	b, _ := NewBuffer("s", eng, 64, 1.0, rng.New(6)) // p=1: drain on every access
	b.HandleAppend(oram.Block{Addr: 50, Leaf: 2}, false)
	_, extra, err := b.HandleAccess(AccessRequest{Addr: 1, Op: oram.OpWrite, OldLeaf: 0, NewLeaf: 1, Keep: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(extra) != 1 {
		t.Fatalf("p=1 drain produced %d extra plans", len(extra))
	}
	if b.TransferQueueLen() != 0 {
		t.Fatal("queue not drained")
	}
	if b.Stats().ExtraAccesses != 1 {
		t.Fatal("extra access not counted")
	}
}

func TestShardAccessKeepsBlock(t *testing.T) {
	b := newBuffer(t, 8)
	blk, plan, err := b.ShardAccess(AccessRequest{Addr: 9, Op: oram.OpWrite, OldLeaf: 2, NewLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	if blk.Addr != 9 || blk.Leaf != 5 {
		t.Fatalf("shard block = %+v", blk)
	}
	if len(plan.Path) != 8 {
		t.Fatalf("plan path %v", plan.Path)
	}
}

func TestEvictLocal(t *testing.T) {
	b := newBuffer(t, 8)
	if err := b.EvictLocal(3); err != nil {
		t.Fatal(err)
	}
}
