package sdimm

import (
	"bytes"
	"testing"

	"sdimm/internal/oram"
)

// The wire decoders sit directly behind the authenticated channel, but the
// fault layer deliberately feeds them traffic that survived bit-flips and
// truncation in tests — and defence in depth says a hostile buffer must
// never be able to panic the host. Each fuzz target checks two properties:
// no panic on arbitrary input, and accept→re-encode→accept stability.

func fuzzBlockSizes(i int) int {
	// Exercise a few plausible block sizes, including degenerate ones.
	return []int{0, 1, 8, 64, 256}[((i%5)+5)%5]
}

func FuzzUnmarshalAccess(f *testing.F) {
	f.Add(MarshalAccess(AccessRequest{Addr: 7, Op: oram.OpWrite, Data: make([]byte, 64),
		OldLeaf: 3, NewLeaf: 9, Keep: true}, 64), 64)
	f.Add(MarshalAccess(AccessRequest{Addr: 1, Op: oram.OpRead, OldLeaf: 0, NewLeaf: 0}, 8), 8)
	f.Add([]byte{}, 64)
	f.Add(bytes.Repeat([]byte{0xff}, 200), 64)
	f.Fuzz(func(t *testing.T, data []byte, szHint int) {
		sz := fuzzBlockSizes(szHint)
		req, err := UnmarshalAccess(data, sz)
		if err != nil {
			return
		}
		// Round-trip: a message we accepted must re-encode to bytes we
		// accept again, identically.
		enc := MarshalAccess(req, sz)
		req2, err := UnmarshalAccess(enc, sz)
		if err != nil {
			t.Fatalf("re-encoded message rejected: %v", err)
		}
		if req2.Addr != req.Addr || req2.Op != req.Op || req2.OldLeaf != req.OldLeaf ||
			req2.NewLeaf != req.NewLeaf || req2.Keep != req.Keep {
			t.Fatalf("round trip changed the request: %+v vs %+v", req, req2)
		}
	})
}

func FuzzUnmarshalResponse(f *testing.F) {
	f.Add(MarshalResponse(AccessResponse{Block: oram.Block{Addr: 3, Leaf: 5, Data: make([]byte, 64)}}, 64), 64)
	f.Add(MarshalResponse(AccessResponse{Dummy: true}, 8), 8)
	f.Add([]byte{0x01}, 64)
	f.Fuzz(func(t *testing.T, data []byte, szHint int) {
		sz := fuzzBlockSizes(szHint)
		resp, err := UnmarshalResponse(data, sz)
		if err != nil {
			return
		}
		enc := MarshalResponse(resp, sz)
		if _, err := UnmarshalResponse(enc, sz); err != nil {
			t.Fatalf("re-encoded response rejected: %v", err)
		}
	})
}

func FuzzUnmarshalAppend(f *testing.F) {
	f.Add(MarshalAppend(oram.Block{Addr: 2, Leaf: 4, Data: make([]byte, 64)}, false, 64), 64)
	f.Add(MarshalAppend(oram.Block{}, true, 8), 8)
	f.Add(bytes.Repeat([]byte{0x55}, 17), 64)
	f.Fuzz(func(t *testing.T, data []byte, szHint int) {
		sz := fuzzBlockSizes(szHint)
		blk, dummy, err := UnmarshalAppend(data, sz)
		if err != nil {
			return
		}
		enc := MarshalAppend(blk, dummy, sz)
		blk2, dummy2, err := UnmarshalAppend(enc, sz)
		if err != nil {
			t.Fatalf("re-encoded append rejected: %v", err)
		}
		if dummy2 != dummy || blk2.Addr != blk.Addr || blk2.Leaf != blk.Leaf {
			t.Fatalf("round trip changed the append: %v/%+v vs %v/%+v", dummy, blk, dummy2, blk2)
		}
	})
}
