package sdimm

import (
	"bytes"
	"testing"
	"testing/quick"

	"sdimm/internal/oram"
)

func TestAccessWireRoundTrip(t *testing.T) {
	req := AccessRequest{
		Addr: 42, Op: oram.OpWrite, Data: bytes.Repeat([]byte{7}, 64),
		OldLeaf: 9, NewLeaf: 13, Keep: true,
	}
	got, err := UnmarshalAccess(MarshalAccess(req, 64), 64)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != 42 || got.Op != oram.OpWrite || got.OldLeaf != 9 || got.NewLeaf != 13 || !got.Keep {
		t.Fatalf("round trip: %+v", got)
	}
	if !bytes.Equal(got.Data, req.Data) {
		t.Fatal("payload lost")
	}
}

func TestAccessWireReadHidesPayload(t *testing.T) {
	// Reads and writes must be the same wire length (op hiding), and a
	// read decodes with no payload attached.
	r := MarshalAccess(AccessRequest{Addr: 1, Op: oram.OpRead}, 64)
	w := MarshalAccess(AccessRequest{Addr: 1, Op: oram.OpWrite, Data: make([]byte, 64)}, 64)
	if len(r) != len(w) {
		t.Fatalf("read frame %d bytes, write frame %d", len(r), len(w))
	}
	got, err := UnmarshalAccess(r, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data != nil {
		t.Fatal("read carried payload")
	}
}

func TestWireLengthChecks(t *testing.T) {
	if _, err := UnmarshalAccess([]byte{1, 2, 3}, 64); err == nil {
		t.Error("short ACCESS accepted")
	}
	if _, err := UnmarshalResponse([]byte{1}, 64); err == nil {
		t.Error("short response accepted")
	}
	if _, _, err := UnmarshalAppend([]byte{1}, 64); err == nil {
		t.Error("short APPEND accepted")
	}
}

func TestResponseWire(t *testing.T) {
	resp := AccessResponse{
		Addr:  7,
		Block: oram.Block{Addr: 7, Leaf: 3, Data: bytes.Repeat([]byte{9}, 64)},
	}
	got, err := UnmarshalResponse(MarshalResponse(resp, 64), 64)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dummy || got.Block.Addr != 7 || got.Block.Leaf != 3 || !bytes.Equal(got.Block.Data, resp.Block.Data) {
		t.Fatalf("round trip: %+v", got)
	}
	// Dummy responses look identical in length.
	d := MarshalResponse(AccessResponse{Dummy: true}, 64)
	if len(d) != len(MarshalResponse(resp, 64)) {
		t.Fatal("dummy response length differs")
	}
	gd, err := UnmarshalResponse(d, 64)
	if err != nil || !gd.Dummy {
		t.Fatalf("dummy round trip: %+v %v", gd, err)
	}
}

// Property: APPEND frames round-trip for arbitrary blocks and are
// length-identical to dummies.
func TestPropertyAppendWire(t *testing.T) {
	f := func(addr, leaf uint64, payload [64]byte, dummy bool) bool {
		blk := oram.Block{Addr: addr, Leaf: leaf, Data: payload[:]}
		frame := MarshalAppend(blk, dummy, 64)
		if len(frame) != len(MarshalAppend(oram.Block{}, true, 64)) {
			return false
		}
		got, gotDummy, err := UnmarshalAppend(frame, 64)
		if err != nil || gotDummy != dummy {
			return false
		}
		if dummy {
			return true
		}
		return got.Addr == addr && got.Leaf == leaf && bytes.Equal(got.Data, payload[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
