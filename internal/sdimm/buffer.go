package sdimm

import (
	"errors"
	"fmt"

	"sdimm/internal/oram"
	"sdimm/internal/rng"
)

// AccessRequest is the decrypted body of an ACCESS command: one accessORAM
// to perform locally. Leaves are local to this SDIMM's subtree; the
// CPU-side frontend translates global leaves before sending.
type AccessRequest struct {
	Addr    uint64
	Op      oram.Op
	Data    []byte // payload for writes (always sent on the bus; dummy for reads)
	OldLeaf uint64
	NewLeaf uint64 // meaningful only when Keep
	Keep    bool   // the remapped block stays in this SDIMM
}

// AccessResponse is what FETCH_RESULT returns: the requested block, or a
// dummy when a written block stayed local (step 5 of Section III-C).
type AccessResponse struct {
	Addr  uint64
	Block oram.Block
	Dummy bool
}

// BufferStats counts secure-buffer activity.
type BufferStats struct {
	Accesses          uint64 // accessORAM operations served
	ExtraAccesses     uint64 // transfer-queue drain accesses (probability p)
	Appends           uint64 // non-dummy APPENDs accepted
	DummyAppends      uint64
	TransferPeak      int
	TransferOverflows uint64 // forced drains because the queue was full
	Probes            uint64
}

// Buffer is the behavioural model of one SDIMM secure buffer: a local ORAM
// engine over the DIMM's own DRAM, the transfer queue of Section IV-C, and
// the PROBE/FETCH_RESULT mailbox. Timing is layered on by package protocol;
// Buffer defines what happens, not when.
type Buffer struct {
	id     string
	engine *oram.Engine

	transferQ   []oram.Block
	transferCap int
	drainProb   float64
	rng         *rng.Source

	mailbox []AccessResponse

	stats BufferStats
}

// NewBuffer builds a secure buffer around a local ORAM engine.
func NewBuffer(id string, engine *oram.Engine, transferCap int, drainProb float64, r *rng.Source) (*Buffer, error) {
	if engine == nil {
		return nil, errors.New("sdimm: nil engine")
	}
	if transferCap <= 0 {
		return nil, errors.New("sdimm: non-positive transfer queue capacity")
	}
	if drainProb < 0 || drainProb > 1 {
		return nil, errors.New("sdimm: drain probability out of [0,1]")
	}
	if r == nil {
		return nil, errors.New("sdimm: nil randomness source")
	}
	return &Buffer{id: id, engine: engine, transferCap: transferCap, drainProb: drainProb, rng: r}, nil
}

// ID returns the buffer's identity string.
func (b *Buffer) ID() string { return b.id }

// Engine exposes the local ORAM engine (the protocol layer derives DRAM
// traffic from its access plans).
func (b *Buffer) Engine() *oram.Engine { return b.engine }

// Stats returns a snapshot of buffer statistics.
func (b *Buffer) Stats() BufferStats { return b.stats }

// TransferQueueLen returns current transfer-queue occupancy.
func (b *Buffer) TransferQueueLen() int { return len(b.transferQ) }

// HandleAccess executes one ACCESS command: the local accessORAM, the
// response enqueue, and the transfer-queue service policy of Section IV-C
// (a departing block creates a vacancy filled from the queue; with
// probability p an extra accessORAM drains one more queued block). It
// returns the access plan plus any extra eviction plans for the timing
// layer.
func (b *Buffer) HandleAccess(req AccessRequest) (oram.AccessPlan, []oram.AccessPlan, error) {
	// A block still sitting in the transfer queue must be visible to the
	// access: promote it to the stash first.
	for i, q := range b.transferQ {
		if q.Addr == req.Addr {
			b.transferQ = append(b.transferQ[:i], b.transferQ[i+1:]...)
			if err := b.engine.StashInsert(q); err != nil {
				return oram.AccessPlan{}, nil, fmt.Errorf("sdimm %s: promoting queued block: %w", b.id, err)
			}
			break
		}
	}
	blk, plan, err := b.engine.AccessAt(req.Addr, req.Op, req.Data, req.OldLeaf, req.NewLeaf, req.Keep)
	if err != nil {
		return plan, nil, fmt.Errorf("sdimm %s: access %d: %w", b.id, req.Addr, err)
	}
	b.stats.Accesses++

	resp := AccessResponse{Addr: req.Addr}
	if req.Keep && req.Op == oram.OpWrite {
		resp.Dummy = true
	} else {
		resp.Block = blk
	}
	b.mailbox = append(b.mailbox, resp)

	var extra []oram.AccessPlan
	// A departure created a stash vacancy: admit one queued block for free.
	if !req.Keep {
		if err := b.admitOne(); err != nil {
			return plan, extra, err
		}
	}
	// With probability p, spend an extra accessORAM to drain the queue.
	if len(b.transferQ) > 0 && b.rng.Bool(b.drainProb) {
		p2, err := b.drainOne()
		if err != nil {
			return plan, extra, err
		}
		extra = append(extra, p2)
	}
	return plan, extra, nil
}

// popTransfer removes and returns the transfer-queue head, sliding the
// remaining entries down so the backing array (and its payload buffers'
// reachability) never grows beyond the queue capacity.
func (b *Buffer) popTransfer() oram.Block {
	blk := b.transferQ[0]
	n := copy(b.transferQ, b.transferQ[1:])
	b.transferQ[n] = oram.Block{}
	b.transferQ = b.transferQ[:n]
	return blk
}

// admitOne moves the head of the transfer queue into the normal stash.
func (b *Buffer) admitOne() error {
	if len(b.transferQ) == 0 {
		return nil
	}
	blk := b.popTransfer()
	if err := b.engine.StashInsert(blk); err != nil {
		return fmt.Errorf("sdimm %s: admitting transferred block: %w", b.id, err)
	}
	return nil
}

// drainOne admits a queued block and immediately performs an eviction
// access along the block's own path so it finds a home in the tree.
func (b *Buffer) drainOne() (oram.AccessPlan, error) {
	blk := b.popTransfer()
	if err := b.engine.StashInsert(blk); err != nil {
		return oram.AccessPlan{}, fmt.Errorf("sdimm %s: draining transferred block: %w", b.id, err)
	}
	leaf := blk.Leaf
	if err := b.engine.EvictPath(leaf); err != nil {
		return oram.AccessPlan{}, fmt.Errorf("sdimm %s: drain eviction: %w", b.id, err)
	}
	b.stats.ExtraAccesses++
	return oram.AccessPlan{OldLeaf: leaf, NewLeaf: leaf, Path: b.engine.Geometry().Path(leaf, nil)}, nil
}

// HandleAppend executes an APPEND command. Dummies are discarded (their
// only purpose is making every SDIMM receive one block per access). A full
// transfer queue forces an immediate drain access, whose plan is returned
// so the timing layer can charge it.
func (b *Buffer) HandleAppend(blk oram.Block, dummy bool) (*oram.AccessPlan, error) {
	if dummy {
		b.stats.DummyAppends++
		return nil, nil
	}
	var forced *oram.AccessPlan
	if len(b.transferQ) >= b.transferCap {
		b.stats.TransferOverflows++
		p, err := b.drainOne()
		if err != nil {
			return nil, err
		}
		forced = &p
	}
	// The queue owns its payloads: the caller's buffer is typically the
	// source engine's response scratch, which the next access overwrites.
	if blk.Data != nil {
		blk.Data = append([]byte(nil), blk.Data...)
	}
	b.transferQ = append(b.transferQ, blk)
	if len(b.transferQ) > b.stats.TransferPeak {
		b.stats.TransferPeak = len(b.transferQ)
	}
	b.stats.Appends++
	return forced, nil
}

// HandleProbe answers a PROBE command: is a response ready?
func (b *Buffer) HandleProbe() bool {
	b.stats.Probes++
	return len(b.mailbox) > 0
}

// HandleFetchResult pops the oldest ready response (copy-down pop, so the
// mailbox backing array is reused instead of marching forward). The
// response's Block payload may be engine-owned scratch, valid until the
// buffer's next engine operation.
func (b *Buffer) HandleFetchResult() (AccessResponse, error) {
	if len(b.mailbox) == 0 {
		return AccessResponse{}, fmt.Errorf("sdimm %s: FETCH_RESULT with empty mailbox", b.id)
	}
	r := b.mailbox[0]
	n := copy(b.mailbox, b.mailbox[1:])
	b.mailbox[n] = AccessResponse{}
	b.mailbox = b.mailbox[:n]
	return r, nil
}

// RandState snapshots the buffer's drain-decision RNG for checkpointing.
func (b *Buffer) RandState() [4]uint64 { return b.rng.State() }

// RestoreRandState reloads a drain-decision RNG snapshot.
func (b *Buffer) RestoreRandState(s [4]uint64) { b.rng.Restore(s) }

// TransferBlocks returns a deep copy of the transfer queue in queue order
// (checkpoint capture). Order matters: admits and drains pop the head.
func (b *Buffer) TransferBlocks() []oram.Block {
	out := make([]oram.Block, len(b.transferQ))
	for i, blk := range b.transferQ {
		out[i] = blk
		out[i].Data = append([]byte(nil), blk.Data...)
	}
	return out
}

// RestoreTransfer replaces the transfer queue with checkpointed contents.
func (b *Buffer) RestoreTransfer(blocks []oram.Block) error {
	if len(blocks) > b.transferCap {
		return fmt.Errorf("sdimm %s: restoring %d queued blocks into capacity %d", b.id, len(blocks), b.transferCap)
	}
	q := make([]oram.Block, len(blocks))
	for i, blk := range blocks {
		q[i] = blk
		q[i].Data = append([]byte(nil), blk.Data...)
	}
	b.transferQ = q
	return nil
}

// TransferQueueSearch returns a copy of the queued block for addr, if any
// (the recovery scrub checks the queue before declaring a block lost).
func (b *Buffer) TransferQueueSearch(addr uint64) (oram.Block, bool) {
	for _, q := range b.transferQ {
		if q.Addr == addr {
			cp := q
			cp.Data = append([]byte(nil), q.Data...)
			return cp, true
		}
	}
	return oram.Block{}, false
}

// ShardAccess executes this SDIMM's part of one Split-protocol access
// (FETCH_DATA + FETCH_STASH + RECEIVE_LIST collapsed functionally: path
// read, shard update, deterministic greedy writeback — identical across
// shards because eviction is a pure function of stash contents).
func (b *Buffer) ShardAccess(req AccessRequest) (oram.Block, oram.AccessPlan, error) {
	blk, plan, err := b.engine.AccessAt(req.Addr, req.Op, req.Data, req.OldLeaf, req.NewLeaf, true)
	if err != nil {
		return oram.Block{}, plan, fmt.Errorf("sdimm %s: shard access %d: %w", b.id, req.Addr, err)
	}
	b.stats.Accesses++
	return blk, plan, nil
}

// EvictLocal performs a CPU-directed eviction access (Split background
// eviction; the CPU sends the same leaf to all shards).
func (b *Buffer) EvictLocal(leaf uint64) error {
	return b.engine.EvictPath(leaf)
}
