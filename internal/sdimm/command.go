// Package sdimm models the secure buffer that replaces the LRDIMM buffer
// chip (Section III): the DDR-compatible command set of Table I, a wire
// codec that shoehorns those commands into RAS/CAS sequences against the
// DIMM's reserved block 0, and the behavioural Buffer that executes them —
// a local ORAM controller, local stash, transfer queue, and a response
// mailbox polled by the host through PROBE/FETCH_RESULT.
package sdimm

import "fmt"

// Command identifies one of the Table I commands.
type Command int

// The Table I command set.
const (
	CmdSendPKey Command = iota
	CmdReceiveSecret
	CmdAccess
	CmdProbe
	CmdFetchResult
	CmdAppend
	CmdFetchData
	CmdFetchStash
	CmdReceiveList
)

var commandNames = map[Command]string{
	CmdSendPKey:      "SEND_PKEY",
	CmdReceiveSecret: "RECEIVE_SECRET",
	CmdAccess:        "ACCESS",
	CmdProbe:         "PROBE",
	CmdFetchResult:   "FETCH_RESULT",
	CmdAppend:        "APPEND",
	CmdFetchData:     "FETCH_DATA",
	CmdFetchStash:    "FETCH_STASH",
	CmdReceiveList:   "RECEIVE_LIST",
}

// String returns the paper's name for the command.
func (c Command) String() string {
	if n, ok := commandNames[c]; ok {
		return n
	}
	return fmt.Sprintf("command(%d)", int(c))
}

// Encoding is how a command appears on the DDR bus (Table I): reads and
// writes to reserved block 0 with the CAS offset selecting among short
// commands. Long (write) commands carry their payload on the data bus; the
// first payload byte is an opcode that disambiguates the WR commands
// sharing RAS(0x0) CAS(0x0).
type Encoding struct {
	Long  bool // needs the data bus (a WR with payload)
	Write bool // WR vs RD on the command bus
	RAS   uint32
	CAS   uint32
}

// Table returns the Table I encoding for a command.
func Table(c Command) Encoding {
	switch c {
	case CmdSendPKey:
		return Encoding{Long: false, Write: false, RAS: 0x0, CAS: 0x0}
	case CmdReceiveSecret:
		return Encoding{Long: true, Write: true, RAS: 0x0, CAS: 0x0}
	case CmdAccess:
		return Encoding{Long: true, Write: true, RAS: 0x0, CAS: 0x0}
	case CmdProbe:
		return Encoding{Long: false, Write: false, RAS: 0x0, CAS: 0x8}
	case CmdFetchResult:
		return Encoding{Long: false, Write: false, RAS: 0x0, CAS: 0x10}
	case CmdAppend:
		return Encoding{Long: true, Write: true, RAS: 0x0, CAS: 0x0}
	case CmdFetchData:
		return Encoding{Long: false, Write: false, RAS: 0x0, CAS: 0x18}
	case CmdFetchStash:
		return Encoding{Long: true, Write: true, RAS: 0x0, CAS: 0x18}
	case CmdReceiveList:
		return Encoding{Long: true, Write: true, RAS: 0x0, CAS: 0x0}
	}
	panic(fmt.Sprintf("sdimm: unknown command %d", int(c)))
}

// Wire is one bus transaction as the secure buffer's decoder sees it.
type Wire struct {
	Write   bool
	RAS     uint32
	CAS     uint32
	Payload []byte // data-bus content for long commands (opcode-prefixed)
}

// Encode produces the wire form of a command with an optional payload.
// Long commands get the command opcode prepended to the payload (this byte
// travels encrypted in the real system; the codec operates on plaintext and
// the session layer seals it).
func Encode(c Command, payload []byte) Wire {
	e := Table(c)
	w := Wire{Write: e.Write, RAS: e.RAS, CAS: e.CAS}
	if e.Long {
		w.Payload = append([]byte{byte(c)}, payload...)
	}
	return w
}

// Decode recovers the command and payload from a wire transaction.
func Decode(w Wire) (Command, []byte, error) {
	if w.RAS != 0 {
		return 0, nil, fmt.Errorf("sdimm: transaction outside reserved block (RAS %#x)", w.RAS)
	}
	if !w.Write {
		switch w.CAS {
		case 0x0:
			return CmdSendPKey, nil, nil
		case 0x8:
			return CmdProbe, nil, nil
		case 0x10:
			return CmdFetchResult, nil, nil
		case 0x18:
			return CmdFetchData, nil, nil
		}
		return 0, nil, fmt.Errorf("sdimm: unknown short command CAS %#x", w.CAS)
	}
	if len(w.Payload) == 0 {
		return 0, nil, fmt.Errorf("sdimm: long command with empty payload")
	}
	c := Command(w.Payload[0])
	e := Table(c)
	if !e.Long {
		return 0, nil, fmt.Errorf("sdimm: opcode %v is not a long command", c)
	}
	if w.CAS != e.CAS {
		return 0, nil, fmt.Errorf("sdimm: %v arrived at CAS %#x, want %#x", c, w.CAS, e.CAS)
	}
	return c, w.Payload[1:], nil
}

// AreaEstimate reports the secure buffer's silicon budget in mm² at 32 nm,
// following the paper's Section IV-B accounting: the Tiny ORAM controller
// (0.47 mm², Fletcher et al.) plus an 8 KB overflow buffer (0.42 mm² per
// CACTI 6.5). The paper's claim is the total stays under 1 mm².
type AreaEstimate struct {
	ControllerMM2 float64
	BufferMM2     float64
}

// Area returns the paper's estimate.
func Area() AreaEstimate {
	return AreaEstimate{ControllerMM2: 0.47, BufferMM2: 0.42}
}

// Total returns the summed area.
func (a AreaEstimate) Total() float64 { return a.ControllerMM2 + a.BufferMM2 }
