package freecursive

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sdimm/internal/oram"
	"sdimm/internal/rng"
)

// Functional is a complete, runnable Freecursive ORAM: the recursive
// position maps are real blocks living in the same ORAM tree as the data,
// the PLB caches their contents (write-back, with dirty eviction turning
// into ORAM writes), and only the smallest PosMap is held on chip. This is
// the full algorithm of Fletcher et al. operating on real bytes — the
// timing simulator's Frontend models the same walk, but this type actually
// stores and retrieves the leaves recursively.
type Functional struct {
	engine *Frontend // reuse the address-space arithmetic
	oram   *oram.Engine
	rnd    *rng.Source

	scale      uint64
	nPosMaps   int
	blockBytes int
	leaves     uint64 // tree leaf count

	onchip []uint32 // leaves of the top PosMap's blocks

	plb    map[uint64]*plbEntry
	plbCap int
	lruHot *plbEntry // most recent
	lruOld *plbEntry // least recent
	pins   []*plbEntry

	stats FunctionalStats
}

// FunctionalStats counts the real recursive ORAM's work.
type FunctionalStats struct {
	DataAccesses  uint64 // public Access calls
	ORAMAccesses  uint64 // accessORAM operations (data + posmap + evictions)
	PLBHits       uint64
	PLBMisses     uint64
	EvictionWrite uint64 // dirty PLB evictions written back
}

// AccessesPerOp reports the recursion overhead actually incurred.
func (s FunctionalStats) AccessesPerOp() float64 {
	if s.DataAccesses == 0 {
		return 0
	}
	return float64(s.ORAMAccesses) / float64(s.DataAccesses)
}

type plbEntry struct {
	addr   uint64
	level  int
	leaves []uint32
	dirty  bool
	pinned bool

	newer, older *plbEntry
}

const unassigned = ^uint32(0)

// FunctionalOptions sizes a Functional instance.
type FunctionalOptions struct {
	DataBlocks uint64 // data-ORAM address space
	PosMaps    int    // recursive PosMap levels (≥ 1)
	Scale      int    // leaves per PosMap block (entries are 4 bytes each)
	PLBEntries int    // PLB capacity in PosMap blocks
	Levels     int    // tree levels (capacity must hold data + posmaps)
	Z          int
	BlockBytes int
	Key        []byte
	Seed       uint64
}

// NewFunctional builds the full recursive ORAM.
func NewFunctional(o FunctionalOptions) (*Functional, error) {
	if o.Z == 0 {
		o.Z = 4
	}
	if o.BlockBytes == 0 {
		o.BlockBytes = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PosMaps < 1 {
		return nil, errors.New("freecursive: functional ORAM needs ≥ 1 recursive PosMap")
	}
	if o.Scale < 2 || o.Scale*4 > o.BlockBytes {
		return nil, fmt.Errorf("freecursive: scale %d does not fit %d-byte blocks", o.Scale, o.BlockBytes)
	}
	fe, err := New(o.DataBlocks, o.PosMaps, o.Scale, max(o.PLBEntries, 8))
	if err != nil {
		return nil, err
	}
	geom, err := oram.NewGeometry(o.Levels)
	if err != nil {
		return nil, err
	}
	if o.Levels > 32 {
		return nil, errors.New("freecursive: leaves must fit 32-bit PosMap entries")
	}
	if geom.CapacityBlocks(o.Z) < fe.TotalBlocks() {
		return nil, fmt.Errorf("freecursive: tree of %d levels holds %d blocks, need %d",
			o.Levels, geom.CapacityBlocks(o.Z), fe.TotalBlocks())
	}
	store, err := oram.NewMemStore(o.Z, o.BlockBytes, o.Key)
	if err != nil {
		return nil, err
	}
	eng, err := oram.NewEngine(store, nil, oram.Options{
		Geometry:       geom,
		StashCapacity:  200,
		EvictThreshold: 150,
		Rand:           rng.New(o.Seed ^ 0xfc01),
	})
	if err != nil {
		return nil, err
	}
	if o.PLBEntries < 8 {
		o.PLBEntries = 8
	}
	top := fe.counts[o.PosMaps]
	f := &Functional{
		engine:     fe,
		oram:       eng,
		rnd:        rng.New(o.Seed ^ 0xfc02),
		scale:      uint64(o.Scale),
		nPosMaps:   o.PosMaps,
		blockBytes: o.BlockBytes,
		leaves:     geom.Leaves(),
		onchip:     make([]uint32, top),
		plb:        make(map[uint64]*plbEntry),
		plbCap:     o.PLBEntries,
	}
	for i := range f.onchip {
		f.onchip[i] = unassigned
	}
	return f, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Stats returns a snapshot.
func (f *Functional) Stats() FunctionalStats { return f.stats }

// StashLen exposes the underlying stash occupancy.
func (f *Functional) StashLen() int { return f.oram.StashLen() }

// Access performs one data-block operation through the full recursion.
func (f *Functional) Access(addr uint64, op oram.Op, data []byte) ([]byte, error) {
	if addr >= f.engine.counts[0] {
		return nil, fmt.Errorf("freecursive: address %d beyond %d data blocks", addr, f.engine.counts[0])
	}
	defer f.unpinAll()
	f.stats.DataAccesses++

	old, fresh, err := f.takeLeaf(1, addr)
	if err != nil {
		return nil, err
	}
	newLeaf := f.randomLeaf()
	if err := f.storeLeaf(1, addr, newLeaf); err != nil {
		return nil, err
	}
	blk, _, err := f.oram.AccessAt(addr, op, data, uint64(old), uint64(newLeaf), true)
	if err != nil {
		return nil, err
	}
	f.stats.ORAMAccesses++
	_ = fresh
	if op == oram.OpRead {
		if blk.Data == nil {
			return make([]byte, f.blockBytes), nil
		}
		return append([]byte(nil), blk.Data...), nil
	}
	return nil, nil
}

func (f *Functional) randomLeaf() uint32 {
	return uint32(f.rnd.Uint64n(f.leaves))
}

// takeLeaf returns the current leaf of the given block (a level-(lvl-1)
// block looked up in its level-lvl PosMap), assigning a fresh random leaf
// if the block has never existed. It does not modify the entry.
func (f *Functional) takeLeaf(lvl int, child uint64) (uint32, bool, error) {
	if lvl == f.nPosMaps+1 {
		idx := child - f.engine.bases[f.nPosMaps]
		if f.onchip[idx] == unassigned {
			return f.randomLeaf(), true, nil
		}
		return f.onchip[idx], false, nil
	}
	e, err := f.ensureCached(lvl, f.engine.PosMapBlock(lvl, child))
	if err != nil {
		return 0, false, err
	}
	idx := f.entryIndex(lvl, child)
	if e.leaves[idx] == unassigned {
		return f.randomLeaf(), true, nil
	}
	return e.leaves[idx], false, nil
}

// storeLeaf records a block's new leaf in its PosMap.
func (f *Functional) storeLeaf(lvl int, child uint64, leaf uint32) error {
	if lvl == f.nPosMaps+1 {
		f.onchip[child-f.engine.bases[f.nPosMaps]] = leaf
		return nil
	}
	e, err := f.ensureCached(lvl, f.engine.PosMapBlock(lvl, child))
	if err != nil {
		return err
	}
	e.leaves[f.entryIndex(lvl, child)] = leaf
	e.dirty = true
	return nil
}

func (f *Functional) entryIndex(lvl int, child uint64) int {
	return int((child - f.engine.bases[lvl-1]) % f.scale)
}

// ensureCached brings the level-lvl PosMap block at addr into the PLB
// (fetching it with a real accessORAM on a miss) and pins it for the
// duration of the public Access.
func (f *Functional) ensureCached(lvl int, addr uint64) (*plbEntry, error) {
	if e, ok := f.plb[addr]; ok {
		f.stats.PLBHits++
		f.touch(e)
		f.pin(e)
		return e, nil
	}
	f.stats.PLBMisses++
	old, _, err := f.takeLeaf(lvl+1, addr)
	if err != nil {
		return nil, err
	}
	newLeaf := f.randomLeaf()
	if err := f.storeLeaf(lvl+1, addr, newLeaf); err != nil {
		return nil, err
	}
	blk, plan, err := f.oram.AccessAt(addr, oram.OpRead, nil, uint64(old), uint64(newLeaf), true)
	if err != nil {
		return nil, err
	}
	f.stats.ORAMAccesses++

	e := &plbEntry{addr: addr, level: lvl, leaves: make([]uint32, f.scale)}
	if plan.Found && blk.Data != nil {
		for i := range e.leaves {
			e.leaves[i] = binary.LittleEndian.Uint32(blk.Data[4*i:])
		}
	} else {
		for i := range e.leaves {
			e.leaves[i] = unassigned
		}
		e.dirty = true // materialized: must eventually exist in the tree
	}
	f.pin(e)
	if err := f.insert(e); err != nil {
		return nil, err
	}
	return e, nil
}

// insert adds an entry to the PLB and evicts (writing back dirty victims)
// until within capacity.
func (f *Functional) insert(e *plbEntry) error {
	f.plb[e.addr] = e
	f.pushFront(e)
	guard := 0
	for len(f.plb) > f.plbCap {
		guard++
		if guard > f.plbCap+8 {
			return errors.New("freecursive: PLB eviction cascade did not converge")
		}
		v := f.lruVictim()
		if v == nil {
			// Everything pinned: tolerate transient overflow; the next
			// unpinned insert will shrink the PLB.
			return nil
		}
		f.remove(v)
		if v.dirty {
			if err := f.writeback(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeback stores a dirty PosMap block back into the ORAM.
func (f *Functional) writeback(v *plbEntry) error {
	old, _, err := f.takeLeaf(v.level+1, v.addr)
	if err != nil {
		return err
	}
	newLeaf := f.randomLeaf()
	if err := f.storeLeaf(v.level+1, v.addr, newLeaf); err != nil {
		return err
	}
	buf := make([]byte, f.blockBytes)
	for i, l := range v.leaves {
		binary.LittleEndian.PutUint32(buf[4*i:], l)
	}
	if _, _, err := f.oram.AccessAt(v.addr, oram.OpWrite, buf, uint64(old), uint64(newLeaf), true); err != nil {
		return err
	}
	f.stats.ORAMAccesses++
	f.stats.EvictionWrite++
	return nil
}

// --- PLB bookkeeping (tiny pinned LRU) ---

func (f *Functional) pin(e *plbEntry) {
	if !e.pinned {
		e.pinned = true
		f.pins = append(f.pins, e)
	}
}

func (f *Functional) unpinAll() {
	for _, e := range f.pins {
		e.pinned = false
	}
	f.pins = f.pins[:0]
}

func (f *Functional) pushFront(e *plbEntry) {
	e.newer, e.older = nil, f.lruHot
	if f.lruHot != nil {
		f.lruHot.newer = e
	}
	f.lruHot = e
	if f.lruOld == nil {
		f.lruOld = e
	}
}

func (f *Functional) remove(e *plbEntry) {
	if e.newer != nil {
		e.newer.older = e.older
	} else {
		f.lruHot = e.older
	}
	if e.older != nil {
		e.older.newer = e.newer
	} else {
		f.lruOld = e.newer
	}
	e.newer, e.older = nil, nil
	delete(f.plb, e.addr)
}

func (f *Functional) touch(e *plbEntry) {
	f.removeFromList(e)
	f.pushFront(e)
}

func (f *Functional) removeFromList(e *plbEntry) {
	if e.newer != nil {
		e.newer.older = e.older
	} else {
		f.lruHot = e.older
	}
	if e.older != nil {
		e.older.newer = e.newer
	} else {
		f.lruOld = e.newer
	}
	e.newer, e.older = nil, nil
}

func (f *Functional) lruVictim() *plbEntry {
	for e := f.lruOld; e != nil; e = e.newer {
		if !e.pinned {
			return e
		}
	}
	return nil
}
