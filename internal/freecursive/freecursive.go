// Package freecursive implements the frontend of Freecursive ORAM
// [Fletcher et al., ASPLOS'15], which the paper adopts for all its
// configurations: recursive position maps stored in the same unified ORAM
// tree as the data, plus a PosMap Lookaside Buffer (PLB) that short-circuits
// most recursive lookups. The frontend turns one LLC miss into the list of
// accessORAM operations the backend must perform (on average ~1.4 in the
// paper's traces).
package freecursive

import (
	"fmt"

	"sdimm/internal/cache"
)

// Op is one accessORAM operation the backend must perform, ordered from the
// deepest recursive PosMap down to the data ORAM (ORAM 0).
type Op struct {
	ORAMLevel int    // 0 = data ORAM, i > 0 = PosMap ORAM i
	Addr      uint64 // block address in the unified ORAM address space
}

// Stats counts frontend behaviour.
type Stats struct {
	Misses     uint64 // LLC misses resolved
	AccessOps  uint64 // accessORAM operations generated
	PLBHits    uint64
	PLBLookups uint64
}

// AccessesPerMiss returns the paper's headline frontend metric.
func (s Stats) AccessesPerMiss() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.AccessOps) / float64(s.Misses)
}

// Frontend resolves LLC-miss block addresses into accessORAM sequences.
type Frontend struct {
	nPosMaps int
	scale    uint64
	plb      *cache.Cache

	// bases[i] is the first unified address of ORAM i's blocks; counts[i]
	// its block count. bases[0] = 0 for the data ORAM.
	bases  []uint64
	counts []uint64

	stats Stats
}

// New builds a frontend for a data ORAM of dataBlocks blocks, nPosMaps
// recursive PosMap ORAMs with `scale` leaf entries per PosMap block, and a
// PLB of plbEntries blocks (8-way set associative).
func New(dataBlocks uint64, nPosMaps, scale, plbEntries int) (*Frontend, error) {
	if dataBlocks == 0 {
		return nil, fmt.Errorf("freecursive: zero data blocks")
	}
	if nPosMaps < 0 || scale < 2 {
		return nil, fmt.Errorf("freecursive: invalid recursion (n=%d, scale=%d)", nPosMaps, scale)
	}
	ways := 8
	if plbEntries < ways {
		ways = 1
	}
	// Round the PLB down to a valid power-of-two set count.
	sets := 1
	for sets*2*ways <= plbEntries {
		sets *= 2
	}
	plb, err := cache.New(sets*ways, ways)
	if err != nil {
		return nil, fmt.Errorf("freecursive: plb: %w", err)
	}

	f := &Frontend{nPosMaps: nPosMaps, scale: uint64(scale), plb: plb}
	f.bases = make([]uint64, nPosMaps+1)
	f.counts = make([]uint64, nPosMaps+1)
	f.counts[0] = dataBlocks
	next := dataBlocks
	for i := 1; i <= nPosMaps; i++ {
		f.bases[i] = f.bases[i-1] + f.counts[i-1]
		f.counts[i] = (f.counts[i-1] + f.scale - 1) / f.scale
		next += f.counts[i]
	}
	_ = next
	return f, nil
}

// TotalBlocks returns the unified address-space size (data + all PosMaps),
// which sizes the shared ORAM tree.
func (f *Frontend) TotalBlocks() uint64 {
	last := f.nPosMaps
	return f.bases[last] + f.counts[last]
}

// PosMapBlock returns the unified address of the ORAM-level-i PosMap block
// covering data (or lower-level PosMap) block addr.
func (f *Frontend) PosMapBlock(level int, addr uint64) uint64 {
	// addr is a unified address within ORAM level-1's space; index it
	// relative to that space, then scale.
	rel := addr - f.bases[level-1]
	return f.bases[level] + rel/f.scale
}

// Stats returns a snapshot of frontend statistics.
func (f *Frontend) Stats() Stats { return f.stats }

// PLBHitRate returns the PLB hit fraction.
func (f *Frontend) PLBHitRate() float64 {
	if f.stats.PLBLookups == 0 {
		return 0
	}
	return float64(f.stats.PLBHits) / float64(f.stats.PLBLookups)
}

// Resolve turns one LLC-miss data-block address into the ordered list of
// accessORAM operations: it walks the PLB from ORAM 1 upward, stops at the
// first hit (or the on-chip PosMap after ORAM n), then the backend must
// access every level from there down to the data. PosMap blocks fetched by
// those accesses are inserted into the PLB, modelling Freecursive exactly.
func (f *Frontend) Resolve(addr uint64) ([]Op, error) {
	if addr >= f.counts[0] {
		return nil, fmt.Errorf("freecursive: data address %d beyond %d blocks", addr, f.counts[0])
	}
	f.stats.Misses++

	// Find the first PLB hit walking up the recursion.
	hitLevel := f.nPosMaps + 1 // on-chip PosMap fallback
	cur := addr
	posAddrs := make([]uint64, f.nPosMaps+1) // posAddrs[i] = ORAM-i block for this walk
	for i := 1; i <= f.nPosMaps; i++ {
		posAddrs[i] = f.PosMapBlock(i, cur)
		f.stats.PLBLookups++
		// Probe without allocating: a miss must not install the block (it
		// has not been fetched yet); a hit refreshes LRU state.
		if f.plb.Contains(posAddrs[i]) {
			f.plb.Access(posAddrs[i], false)
			f.stats.PLBHits++
			hitLevel = i
			break
		}
		cur = posAddrs[i]
	}

	// Access levels hitLevel-1 .. 0. Fetched PosMap blocks enter the PLB.
	ops := make([]Op, 0, hitLevel)
	for lvl := hitLevel - 1; lvl >= 1; lvl-- {
		ops = append(ops, Op{ORAMLevel: lvl, Addr: posAddrs[lvl]})
		f.plb.Access(posAddrs[lvl], false)
	}
	ops = append(ops, Op{ORAMLevel: 0, Addr: addr})
	f.stats.AccessOps += uint64(len(ops))
	return ops, nil
}
