package freecursive

import (
	"testing"

	"sdimm/internal/rng"
)

func newFrontend(t *testing.T) *Frontend {
	t.Helper()
	f, err := New(1<<20, 5, 16, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5, 16, 1024); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := New(100, -1, 16, 1024); err == nil {
		t.Error("negative recursion accepted")
	}
	if _, err := New(100, 5, 1, 1024); err == nil {
		t.Error("scale 1 accepted")
	}
}

func TestAddressSpaceLayout(t *testing.T) {
	f, err := New(1600, 2, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	// ORAM1 covers 1600/16 = 100 blocks, ORAM2 covers 100/16 -> 7.
	if f.bases[1] != 1600 || f.counts[1] != 100 {
		t.Fatalf("ORAM1 base/count = %d/%d", f.bases[1], f.counts[1])
	}
	if f.bases[2] != 1700 || f.counts[2] != 7 {
		t.Fatalf("ORAM2 base/count = %d/%d", f.bases[2], f.counts[2])
	}
	if f.TotalBlocks() != 1707 {
		t.Fatalf("TotalBlocks = %d", f.TotalBlocks())
	}
}

func TestPosMapBlockMapping(t *testing.T) {
	f, _ := New(1600, 2, 16, 64)
	// Data blocks 0..15 share PosMap block base1+0; 16..31 -> base1+1.
	if got := f.PosMapBlock(1, 0); got != 1600 {
		t.Fatalf("PosMapBlock(1,0) = %d", got)
	}
	if got := f.PosMapBlock(1, 15); got != 1600 {
		t.Fatalf("PosMapBlock(1,15) = %d", got)
	}
	if got := f.PosMapBlock(1, 16); got != 1601 {
		t.Fatalf("PosMapBlock(1,16) = %d", got)
	}
	// ORAM2 covers ORAM1's space.
	if got := f.PosMapBlock(2, 1600); got != 1700 {
		t.Fatalf("PosMapBlock(2, base1) = %d", got)
	}
}

func TestColdMissWalksFullRecursion(t *testing.T) {
	f := newFrontend(t)
	ops, err := f.Resolve(12345)
	if err != nil {
		t.Fatal(err)
	}
	// Cold PLB: on-chip PosMap provides ORAM5's leaf, so levels 5..0 = 6 ops.
	if len(ops) != 6 {
		t.Fatalf("cold resolve produced %d ops", len(ops))
	}
	for i, op := range ops {
		wantLevel := 5 - i
		if op.ORAMLevel != wantLevel {
			t.Fatalf("op %d level %d, want %d (ops %v)", i, op.ORAMLevel, wantLevel, ops)
		}
	}
	if ops[len(ops)-1].Addr != 12345 || ops[len(ops)-1].ORAMLevel != 0 {
		t.Fatalf("final op %+v not the data access", ops[len(ops)-1])
	}
}

func TestWarmHitShortCircuits(t *testing.T) {
	f := newFrontend(t)
	f.Resolve(1000)
	// Same address again: the ORAM1 PosMap block is now in the PLB.
	ops, err := f.Resolve(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].ORAMLevel != 0 {
		t.Fatalf("warm resolve ops = %v", ops)
	}
}

func TestSpatialLocalitySharesPosMapBlock(t *testing.T) {
	f := newFrontend(t)
	f.Resolve(160) // covers data blocks 160..175 at level 1
	ops, _ := f.Resolve(161)
	if len(ops) != 1 {
		t.Fatalf("neighbouring block needed %d ops", len(ops))
	}
	// A distant block shares only higher PosMap levels.
	ops, _ = f.Resolve(160 + 16)
	if len(ops) != 2 {
		t.Fatalf("next PosMap block over needed %d ops, want 2", len(ops))
	}
}

func TestAccessesPerMissMetric(t *testing.T) {
	f := newFrontend(t)
	r := rng.New(5)
	// A workload with strong spatial locality should land well under the
	// full recursion depth — the paper reports ~1.4.
	base := uint64(0)
	for i := 0; i < 5000; i++ {
		if r.Bool(0.05) {
			base = r.Uint64n(1 << 18)
		}
		addr := base + r.Uint64n(64)
		if _, err := f.Resolve(addr % (1 << 20)); err != nil {
			t.Fatal(err)
		}
	}
	apm := f.Stats().AccessesPerMiss()
	if apm < 1.0 || apm > 2.5 {
		t.Fatalf("accesses per miss = %v, want in [1, 2.5] for a local workload", apm)
	}
	if f.PLBHitRate() <= 0 {
		t.Fatal("PLB never hit")
	}
}

func TestResolveRejectsOutOfRange(t *testing.T) {
	f := newFrontend(t)
	if _, err := f.Resolve(1 << 30); err == nil {
		t.Fatal("out-of-range address accepted")
	}
}

func TestZeroRecursionAlwaysOneOp(t *testing.T) {
	f, err := New(1000, 0, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := f.Resolve(5)
	if err != nil || len(ops) != 1 || ops[0].ORAMLevel != 0 {
		t.Fatalf("ops = %v, err %v", ops, err)
	}
	if f.TotalBlocks() != 1000 {
		t.Fatalf("TotalBlocks = %d", f.TotalBlocks())
	}
}

func TestStatsAccumulate(t *testing.T) {
	f := newFrontend(t)
	f.Resolve(1)
	f.Resolve(1)
	s := f.Stats()
	if s.Misses != 2 {
		t.Fatalf("Misses = %d", s.Misses)
	}
	if s.AccessOps != 7 { // 6 cold + 1 warm
		t.Fatalf("AccessOps = %d", s.AccessOps)
	}
	if got := s.AccessesPerMiss(); got != 3.5 {
		t.Fatalf("AccessesPerMiss = %v", got)
	}
}

func TestTinyPLBStillWorks(t *testing.T) {
	f, err := New(1<<16, 3, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if _, err := f.Resolve(i * 1000 % (1 << 16)); err != nil {
			t.Fatal(err)
		}
	}
}
