package freecursive

import (
	"bytes"
	"fmt"
	"testing"

	"sdimm/internal/oram"
	"sdimm/internal/rng"
)

func newFunctional(t *testing.T, plbEntries int) *Functional {
	t.Helper()
	f, err := NewFunctional(FunctionalOptions{
		DataBlocks: 4096,
		PosMaps:    2,
		Scale:      16,
		PLBEntries: plbEntries,
		Levels:     12, // capacity 2*(2^12-1) = 8190 ≥ 4096+256+16
		Key:        []byte("recursive"),
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFunctionalValidation(t *testing.T) {
	bad := []FunctionalOptions{
		{DataBlocks: 100, PosMaps: 0, Scale: 16, Levels: 10},
		{DataBlocks: 100, PosMaps: 2, Scale: 1, Levels: 10},
		{DataBlocks: 100, PosMaps: 2, Scale: 32, BlockBytes: 64, Levels: 10},  // 32*4 > 64
		{DataBlocks: 1 << 20, PosMaps: 2, Scale: 16, Levels: 8},               // too small a tree
		{DataBlocks: 100, PosMaps: 2, Scale: 16, Levels: 40, BlockBytes: 256}, // leaves exceed 32-bit entries
	}
	for i, o := range bad {
		if _, err := NewFunctional(o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestFunctionalReadYourWrites(t *testing.T) {
	f := newFunctional(t, 64)
	payload := func(i int) []byte {
		b := make([]byte, 64)
		copy(b, fmt.Sprintf("rec-%d", i))
		return b
	}
	for i := 0; i < 64; i++ {
		if _, err := f.Access(uint64(i*37%4096), oram.OpWrite, payload(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 64; i++ {
		got, err := f.Access(uint64(i*37%4096), oram.OpRead, nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got[:8], payload(i)[:8]) {
			t.Fatalf("read %d = %q", i, got[:8])
		}
	}
}

func TestFunctionalFreshReadsZero(t *testing.T) {
	f := newFunctional(t, 64)
	got, err := f.Access(1234, oram.OpRead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("fresh block not zeros")
	}
}

func TestFunctionalRecursionCountWarmVsCold(t *testing.T) {
	f := newFunctional(t, 256)
	// Cold access: data + 2 posmap fetches.
	if _, err := f.Access(100, oram.OpRead, nil); err != nil {
		t.Fatal(err)
	}
	cold := f.Stats().ORAMAccesses
	if cold < 3 {
		t.Fatalf("cold access did %d ORAM accesses, want ≥ 3", cold)
	}
	// Warm repeat: both posmap blocks cached → exactly one more access.
	if _, err := f.Access(100, oram.OpRead, nil); err != nil {
		t.Fatal(err)
	}
	warm := f.Stats().ORAMAccesses - cold
	if warm != 1 {
		t.Fatalf("warm access did %d ORAM accesses, want 1 (PLB hit)", warm)
	}
	if f.Stats().PLBHits == 0 {
		t.Fatal("no PLB hits recorded")
	}
}

// TestFunctionalTinyPLBStillCorrect: with a PLB far smaller than the
// posmap working set, dirty evictions write back through the ORAM and
// nothing is lost.
func TestFunctionalTinyPLBStillCorrect(t *testing.T) {
	f := newFunctional(t, 9)
	r := rng.New(3)
	ref := map[uint64]byte{}
	for i := 0; i < 400; i++ {
		addr := r.Uint64n(4096)
		if r.Bool(0.5) {
			v := byte(r.Uint64n(250) + 1)
			buf := make([]byte, 64)
			buf[0] = v
			if _, err := f.Access(addr, oram.OpWrite, buf); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			ref[addr] = v
		} else {
			got, err := f.Access(addr, oram.OpRead, nil)
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if got[0] != ref[addr] {
				t.Fatalf("op %d: addr %d = %d, want %d", i, addr, got[0], ref[addr])
			}
		}
	}
	if f.Stats().EvictionWrite == 0 {
		t.Fatal("tiny PLB never wrote back a dirty block")
	}
	if f.StashLen() > 200 {
		t.Fatalf("stash at %d", f.StashLen())
	}
}

func TestFunctionalRecursionOverheadShrinksWithPLB(t *testing.T) {
	run := func(plb int) float64 {
		f := newFunctional(t, plb)
		r := rng.New(5)
		base := uint64(0)
		for i := 0; i < 600; i++ {
			if r.Bool(0.05) {
				base = r.Uint64n(3500)
			}
			if _, err := f.Access((base+r.Uint64n(64))%4096, oram.OpRead, nil); err != nil {
				t.Fatal(err)
			}
		}
		return f.Stats().AccessesPerOp()
	}
	small := run(9)
	big := run(256)
	if big >= small {
		t.Fatalf("bigger PLB did not cut recursion: %v vs %v", big, small)
	}
	if big > 2 {
		t.Fatalf("warm large-PLB overhead %v, want < 2 accesses per op", big)
	}
}

func TestFunctionalAddressBounds(t *testing.T) {
	f := newFunctional(t, 64)
	if _, err := f.Access(99999999, oram.OpRead, nil); err == nil {
		t.Fatal("out-of-range address accepted")
	}
}

func TestFunctionalStatsConsistency(t *testing.T) {
	f := newFunctional(t, 64)
	for i := uint64(0); i < 20; i++ {
		f.Access(i, oram.OpWrite, nil)
	}
	s := f.Stats()
	if s.DataAccesses != 20 {
		t.Fatalf("DataAccesses = %d", s.DataAccesses)
	}
	if s.ORAMAccesses < s.DataAccesses {
		t.Fatal("ORAM accesses below data accesses")
	}
	if s.AccessesPerOp() < 1 {
		t.Fatalf("AccessesPerOp = %v", s.AccessesPerOp())
	}
	var empty FunctionalStats
	if empty.AccessesPerOp() != 0 {
		t.Fatal("empty stats ratio nonzero")
	}
}
