// Package flight is the always-on flight recorder: fixed-size,
// allocation-free per-worker ring buffers of recent events (wave ids, phase
// edges, health transitions, retry/ARQ activity, checkpoints). In steady
// state recording is a handful of stores into a preallocated array; when a
// chaos/crash/equivalence check goes red, the harness dumps the rings as a
// Chrome-trace-compatible snapshot, so every failing run ships its own
// last-milliseconds trace without paying for full tracing on green runs.
//
// Concurrency model: each Ring has exactly one writer (worker i records
// only into ring i; the coordinator owns the last ring), so Record needs no
// atomics and no locks. Dumping reads every ring, so it must run quiesced —
// after the pipeline has closed or between harness phases — which is
// exactly when failure dumps happen.
package flight

import (
	"io"
	"os"
	"time"

	"sdimm/internal/telemetry"
)

// Kind tags one recorded event.
type Kind uint8

const (
	// KindWave marks a wave starting on the coordinator (A = wave index,
	// B = ops admitted).
	KindWave Kind = 1 + iota
	// KindPhase marks a pipeline phase edge (A = phase code, B = wave index).
	KindPhase
	// KindHealth marks a health-state transition (A = from, B = to).
	KindHealth
	// KindRetry marks a link retry attempt (A = attempt number).
	KindRetry
	// KindRetransmit marks a device-side ARQ retransmission.
	KindRetransmit
	// KindResync marks a post-abandonment counter resync.
	KindResync
	// KindAbandon marks an exchange that exhausted its retry budget.
	KindAbandon
	// KindCheckpoint marks a durable checkpoint commit (A = sequence).
	KindCheckpoint
	// KindRecovery marks a recovery milestone (A = records replayed).
	KindRecovery
)

var kindNames = map[Kind]string{
	KindWave:       "wave",
	KindPhase:      "phase",
	KindHealth:     "health",
	KindRetry:      "retry",
	KindRetransmit: "retransmit",
	KindResync:     "resync",
	KindAbandon:    "abandon",
	KindCheckpoint: "checkpoint",
	KindRecovery:   "recovery",
}

// String returns the kind's stable name (the dumped event name).
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "unknown"
}

// Event is one recorded entry. A and B are kind-specific arguments.
type Event struct {
	TS   uint64
	Kind Kind
	A, B uint64
}

// Ring is one single-writer ring buffer. The zero/nil Ring drops records.
type Ring struct {
	clock func() uint64
	buf   []Event
	n     uint64 // total events ever recorded
}

// Record stores one event, overwriting the oldest once the ring is full.
// Allocation-free and lock-free; safe only from the ring's single writer.
func (r *Ring) Record(k Kind, a, b uint64) {
	if r == nil {
		return
	}
	r.buf[r.n&uint64(len(r.buf)-1)] = Event{TS: r.clock(), Kind: k, A: a, B: b}
	r.n++
}

// Len reports how many events the ring currently retains.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Events returns the retained events, oldest first (a copy).
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.Len())
	start := uint64(0)
	if r.n > uint64(len(r.buf)) {
		start = r.n - uint64(len(r.buf))
	}
	for i := start; i < r.n; i++ {
		out = append(out, r.buf[i&uint64(len(r.buf)-1)])
	}
	return out
}

// Recorder is a set of rings: one per SDIMM worker plus one for the
// coordinator (the last index).
type Recorder struct {
	rings []Ring
	clock func() uint64
}

// New builds a recorder with `members` worker rings plus a coordinator
// ring, each retaining `size` events (rounded up to a power of two;
// default 1024). The clock is monotonic microseconds since creation.
func New(members, size int) *Recorder {
	start := time.Now()
	return NewWithClock(members, size, func() uint64 {
		return uint64(time.Since(start).Microseconds())
	})
}

// NewWithClock is New with an injected clock — tests use a logical counter
// so dump contents are bitwise-deterministic for a seeded run.
func NewWithClock(members, size int, clock func() uint64) *Recorder {
	if size <= 0 {
		size = 1024
	}
	n := 1
	for n < size {
		n <<= 1
	}
	r := &Recorder{rings: make([]Ring, members+1), clock: clock}
	for i := range r.rings {
		r.rings[i].clock = clock
		r.rings[i].buf = make([]Event, n)
	}
	return r
}

// Ring returns ring i (workers 0..members-1; Coordinator() for the last).
// Nil-safe: a nil recorder returns a nil ring that drops records.
func (r *Recorder) Ring(i int) *Ring {
	if r == nil || i < 0 || i >= len(r.rings) {
		return nil
	}
	return &r.rings[i]
}

// Coordinator returns the coordinator's ring.
func (r *Recorder) Coordinator() *Ring {
	if r == nil {
		return nil
	}
	return &r.rings[len(r.rings)-1]
}

// Rings reports how many rings the recorder holds.
func (r *Recorder) Rings() int {
	if r == nil {
		return 0
	}
	return len(r.rings)
}

// WriteTrace dumps every ring as Chrome trace-event JSON (the same schema
// telemetry.WriteJSON emits and telemetry.ValidateTrace checks): ring i
// becomes trace lane (tid) i, each event a zero-duration span named after
// its kind with the ring, sequence, and arguments attached. Call only when
// the writers are quiescent.
func (r *Recorder) WriteTrace(w io.Writer) error {
	tr := telemetry.NewTracer(func() uint64 { return 0 })
	if r != nil {
		for i := range r.rings {
			ring := &r.rings[i]
			seq := uint64(0)
			if ring.n > uint64(len(ring.buf)) {
				seq = ring.n - uint64(len(ring.buf))
			}
			for _, ev := range ring.Events() {
				tr.CompleteArgs(i, "flight."+ev.Kind.String(), "flight", ev.TS, ev.TS,
					map[string]any{"ring": i, "seq": seq, "a": ev.A, "b": ev.B})
				seq++
			}
		}
	}
	return tr.WriteJSON(w)
}

// DumpFile writes the trace snapshot to path (atomically enough for a
// post-mortem artifact: create, write, close).
func (r *Recorder) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
