package flight

import (
	"bytes"
	"os"
	"sync"
	"testing"

	"sdimm/internal/raceflag"
	"sdimm/internal/telemetry"
)

// logicalClock returns a deterministic monotonically increasing clock.
func logicalClock() func() uint64 {
	var t uint64
	return func() uint64 {
		t++
		return t
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewWithClock(0, 8, logicalClock())
	ring := r.Coordinator()
	for i := 0; i < 20; i++ {
		ring.Record(KindWave, uint64(i), uint64(i*2))
	}
	if got := ring.Len(); got != 8 {
		t.Fatalf("Len() = %d, want 8 after wraparound", got)
	}
	evs := ring.Events()
	if len(evs) != 8 {
		t.Fatalf("Events() returned %d events, want 8", len(evs))
	}
	// Oldest-first: the retained events are 12..19.
	for i, ev := range evs {
		want := uint64(12 + i)
		if ev.A != want || ev.B != want*2 || ev.Kind != KindWave {
			t.Fatalf("event %d = %+v, want A=%d B=%d", i, ev, want, want*2)
		}
		if i > 0 && ev.TS <= evs[i-1].TS {
			t.Fatalf("timestamps not increasing at %d: %d then %d", i, evs[i-1].TS, ev.TS)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewWithClock(0, 8, logicalClock())
	ring := r.Coordinator()
	ring.Record(KindCheckpoint, 7, 0)
	ring.Record(KindRecovery, 9, 1)
	if got := ring.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	evs := ring.Events()
	if len(evs) != 2 || evs[0].Kind != KindCheckpoint || evs[1].Kind != KindRecovery {
		t.Fatalf("Events() = %+v, want checkpoint then recovery", evs)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.Rings() != 0 {
		t.Fatal("nil recorder should report 0 rings")
	}
	r.Ring(0).Record(KindRetry, 1, 0) // must not panic
	r.Coordinator().Record(KindWave, 1, 0)
	if r.Ring(3).Len() != 0 || r.Ring(3).Events() != nil {
		t.Fatal("nil ring should be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("nil recorder WriteTrace: %v", err)
	}
	if _, err := telemetry.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("nil recorder trace invalid: %v", err)
	}
}

func TestSizeRounding(t *testing.T) {
	r := NewWithClock(1, 5, logicalClock())
	ring := r.Ring(0)
	for i := 0; i < 100; i++ {
		ring.Record(KindRetry, uint64(i), 0)
	}
	if got := ring.Len(); got != 8 {
		t.Fatalf("size 5 should round to 8, Len() = %d", got)
	}
	if r := New(2, 0); len(r.rings[0].buf) != 1024 {
		t.Fatalf("default size = %d, want 1024", len(r.rings[0].buf))
	}
}

// TestConcurrentWriters exercises the single-writer-per-ring discipline under
// -race: one goroutine per ring, all recording simultaneously.
func TestConcurrentWriters(t *testing.T) {
	const members = 8
	r := New(members, 64)
	var wg sync.WaitGroup
	for i := 0; i < r.Rings(); i++ {
		wg.Add(1)
		go func(ring *Ring, id int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				ring.Record(KindRetry, uint64(id), uint64(j))
			}
		}(r.Ring(i), i)
	}
	wg.Wait()
	for i := 0; i < r.Rings(); i++ {
		ring := r.Ring(i)
		if ring.Len() != 64 {
			t.Fatalf("ring %d Len() = %d, want 64", i, ring.Len())
		}
		for _, ev := range ring.Events() {
			if ev.A != uint64(i) {
				t.Fatalf("ring %d holds foreign event %+v", i, ev)
			}
		}
	}
}

// TestDumpDeterministic checks that two identical event sequences recorded
// under a logical clock produce bitwise-identical trace dumps.
func TestDumpDeterministic(t *testing.T) {
	dump := func() []byte {
		r := NewWithClock(2, 8, logicalClock())
		r.Ring(0).Record(KindRetry, 3, 0)
		r.Ring(0).Record(KindRetransmit, 1, 0)
		r.Ring(1).Record(KindHealth, 0, 1)
		r.Coordinator().Record(KindWave, 0, 16)
		r.Coordinator().Record(KindPhase, 1, 0)
		var buf bytes.Buffer
		if err := r.WriteTrace(&buf); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		return buf.Bytes()
	}
	a, b := dump(), dump()
	if !bytes.Equal(a, b) {
		t.Fatalf("dumps differ:\n%s\nvs\n%s", a, b)
	}
	n, err := telemetry.ValidateTrace(a)
	if err != nil {
		t.Fatalf("dump is not a valid trace: %v", err)
	}
	if n != 5 {
		t.Fatalf("trace has %d events, want 5", n)
	}
}

func TestDumpFile(t *testing.T) {
	r := NewWithClock(1, 8, logicalClock())
	r.Ring(0).Record(KindAbandon, 8, 0)
	path := t.TempDir() + "/flight.json"
	if err := r.DumpFile(path); err != nil {
		t.Fatalf("DumpFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}
	if _, err := telemetry.ValidateTrace(data); err != nil {
		t.Fatalf("dump file invalid: %v", err)
	}
}

func TestKindNames(t *testing.T) {
	for k := KindWave; k <= KindRecovery; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kinds should stringify as unknown")
	}
}

// TestRecordAllocationFree is the always-on guarantee: recording into a ring
// must not allocate.
func TestRecordAllocationFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation accounting differs under -race")
	}
	r := New(1, 64)
	ring := r.Ring(0)
	allocs := testing.AllocsPerRun(1000, func() {
		ring.Record(KindRetry, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("Ring.Record allocates %.1f per op, want 0", allocs)
	}
}
