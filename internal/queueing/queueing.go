// Package queueing implements the analytical models of Section IV-C used to
// size the Independent protocol's transfer queue:
//
//   - a one-dimensional random walk (arrival probability 1/4, departure
//     probability 1/4, stay 1/2 — a dual-SDIMM system with no active
//     draining) whose first-passage probability past the queue limit is
//     Figure 13a;
//
//   - an M/M/1/K queue where an extra accessORAM services a queued block
//     with probability p, giving utilization ρ = 0.25/(0.25+p) and the
//     overflow (full-queue) probability of Figure 13b.
package queueing

import (
	"fmt"
	"math"

	"sdimm/internal/rng"
)

// Walk describes the transfer-queue random walk. Probabilities must satisfy
// Arrive + Depart <= 1; the remainder is the probability of no change.
type Walk struct {
	Arrive float64 // one block arrives (queue +1)
	Depart float64 // one block is serviced (queue -1, floored at 0)
}

// DefaultWalk returns the paper's dual-SDIMM walk: 1/4 arrive, 1/4 depart.
func DefaultWalk() Walk { return Walk{Arrive: 0.25, Depart: 0.25} }

// Validate checks the walk probabilities.
func (w Walk) Validate() error {
	if w.Arrive < 0 || w.Depart < 0 || w.Arrive+w.Depart > 1 {
		return fmt.Errorf("queueing: invalid walk probabilities %+v", w)
	}
	return nil
}

// OverflowProbability returns the probability that the walk's position
// exceeds limit at least once within steps steps, starting from 0. This is
// the paper's Figure 13a model: the net block balance is a walk on the
// signed line (F(s,k) over all k, positive and negative), and "piling up
// more than K blocks" is the first passage past +K. Small problems are
// solved exactly by dynamic programming with +limit absorbing; large ones
// use the reflection-principle normal approximation (the regime where the
// paper itself reads values off a plot).
func (w Walk) OverflowProbability(steps, limit int) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if steps < 0 || limit <= 0 {
		return 0, fmt.Errorf("queueing: steps %d / limit %d invalid", steps, limit)
	}
	variance := w.Arrive + w.Depart // per-step variance of the ±1/0 walk
	span := limit + int(6*math.Sqrt(variance*float64(steps))) + 2
	const dpBudget = 2e8
	if float64(steps)*float64(span+limit) > dpBudget {
		return w.overflowApprox(steps, limit), nil
	}
	return w.overflowExact(steps, limit, span), nil
}

// overflowExact runs the absorbing-barrier DP over positions [-span, limit).
func (w Walk) overflowExact(steps, limit, span int) float64 {
	size := span + limit // index = position + span, positions -span..limit-1
	dist := make([]float64, size)
	next := make([]float64, size)
	dist[span] = 1
	absorbed := 0.0
	stay := 1 - w.Arrive - w.Depart
	for s := 0; s < steps; s++ {
		for k := range next {
			next[k] = 0
		}
		for k, p := range dist {
			if p == 0 {
				continue
			}
			if k == 0 {
				// Truncation floor: hold (error negligible with 6σ span).
				next[0] += p * (w.Depart + stay)
			} else {
				next[k-1] += p * w.Depart
				next[k] += p * stay
			}
			if k+1 >= size {
				absorbed += p * w.Arrive
			} else {
				next[k+1] += p * w.Arrive
			}
		}
		dist, next = next, dist
	}
	return absorbed
}

// overflowApprox uses the reflection principle for the symmetric walk:
// P(max S_t >= K) ≈ 2 P(S_n >= K), with S_n normal with variance
// (Arrive+Depart)·n and drift (Arrive-Depart)·n.
func (w Walk) overflowApprox(steps, limit int) float64 {
	n := float64(steps)
	sd := math.Sqrt((w.Arrive + w.Depart) * n)
	if sd == 0 {
		return 0
	}
	mean := (w.Arrive - w.Depart) * n
	z := (float64(limit) - 0.5 - mean) / sd
	p := math.Erfc(z / math.Sqrt2) // 2 * Φc(z)
	if p > 1 {
		p = 1
	}
	return p
}

// SimulateOverflow estimates the same first-passage probability by Monte
// Carlo with trials independent walks (used to cross-validate the DP).
func (w Walk) SimulateOverflow(steps, limit, trials int, r *rng.Source) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if trials <= 0 || r == nil {
		return 0, fmt.Errorf("queueing: invalid simulation setup")
	}
	hits := 0
	for t := 0; t < trials; t++ {
		pos := 0
		for s := 0; s < steps; s++ {
			u := r.Float64()
			switch {
			case u < w.Arrive:
				pos++
			case u < w.Arrive+w.Depart:
				pos--
			}
			if pos >= limit {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(trials), nil
}

// Utilization returns ρ = arrival / service for the actively drained queue:
// arrivals at rate 1/4, service at rate 1/4 + p (a vacancy-driven service
// plus an extra accessORAM with probability p).
func Utilization(p float64) float64 {
	return 0.25 / (0.25 + p)
}

// MM1KFullProbability returns the stationary probability that an M/M/1/K
// queue with utilization ρ(p) is full: P_K = ρ^K (1-ρ) / (1-ρ^(K+1)).
// This is the Figure 13b overflow rate.
func MM1KFullProbability(p float64, k int) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("queueing: drain probability %v out of [0,1]", p)
	}
	if k <= 0 {
		return 0, fmt.Errorf("queueing: queue size %d invalid", k)
	}
	return FullProbability(Utilization(p), k)
}
