package queueing

import (
	"math"
	"testing"

	"sdimm/internal/rng"
)

func TestWalkValidate(t *testing.T) {
	if err := DefaultWalk().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []Walk{{-0.1, 0.2}, {0.2, -0.1}, {0.7, 0.7}} {
		if err := w.Validate(); err == nil {
			t.Errorf("walk %+v accepted", w)
		}
	}
}

func TestOverflowProbabilityInvalidArgs(t *testing.T) {
	w := DefaultWalk()
	if _, err := w.OverflowProbability(-1, 4); err == nil {
		t.Error("negative steps accepted")
	}
	if _, err := w.OverflowProbability(10, 0); err == nil {
		t.Error("zero limit accepted")
	}
}

func TestOverflowZeroSteps(t *testing.T) {
	p, err := DefaultWalk().OverflowProbability(0, 16)
	if err != nil || p != 0 {
		t.Fatalf("zero steps overflow = %v, %v", p, err)
	}
}

func TestOverflowMonotoneInSteps(t *testing.T) {
	w := DefaultWalk()
	prev := 0.0
	for _, s := range []int{100, 500, 2000, 8000} {
		p, err := w.OverflowProbability(s, 8)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("overflow decreased with more steps: %v -> %v", prev, p)
		}
		prev = p
	}
	if prev < 0.85 {
		t.Fatalf("tiny queue should very likely overflow in 8000 steps: %v", prev)
	}
}

func TestOverflowMonotoneInLimit(t *testing.T) {
	w := DefaultWalk()
	prev := 1.1
	for _, k := range []int{4, 8, 16, 32} {
		p, err := w.OverflowProbability(5000, k)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev {
			t.Fatalf("overflow increased with larger queue: %v -> %v", prev, p)
		}
		prev = p
	}
}

// TestPaperFigure13aValues checks the headline numbers the paper reads off
// Figure 13a (generous tolerances: these are read off a plot).
func TestPaperFigure13aValues(t *testing.T) {
	if testing.Short() {
		t.Skip("long DP")
	}
	w := DefaultWalk()
	p16, err := w.OverflowProbability(100_000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p16 < 0.90 {
		t.Errorf("P(>16 within 100K) = %v, paper says ≈ 0.97", p16)
	}
	p64, _ := w.OverflowProbability(800_000, 64)
	if p64 < 0.85 || p64 > 0.99 {
		t.Errorf("P(>64 within 800K) = %v, paper says ≈ 0.91", p64)
	}
}

func TestSimulationMatchesDP(t *testing.T) {
	w := DefaultWalk()
	steps, limit := 5000, 12
	dp, err := w.OverflowProbability(steps, limit)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := w.SimulateOverflow(steps, limit, 4000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dp-mc) > 0.05 {
		t.Fatalf("DP %v vs Monte Carlo %v", dp, mc)
	}
}

func TestSimulateInvalidArgs(t *testing.T) {
	w := DefaultWalk()
	if _, err := w.SimulateOverflow(10, 4, 0, rng.New(1)); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := w.SimulateOverflow(10, 4, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(0); got != 1 {
		t.Fatalf("ρ(0) = %v, want 1 (saturated)", got)
	}
	if got := Utilization(0.25); got != 0.5 {
		t.Fatalf("ρ(0.25) = %v, want 0.5", got)
	}
}

func TestMM1KSaturatedQueue(t *testing.T) {
	// p = 0 means ρ = 1: uniform stationary distribution, P_full = 1/(K+1).
	p, err := MM1KFullProbability(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.1) > 1e-9 {
		t.Fatalf("saturated P_full = %v, want 0.1", p)
	}
}

func TestMM1KDrainingShrinksOverflow(t *testing.T) {
	prev := 1.1
	for _, p := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		v, err := MM1KFullProbability(p, 16)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Fatalf("overflow not decreasing in p: %v at p=%v", v, p)
		}
		prev = v
	}
	// The paper's point: even a small queue almost never overflows with
	// occasional draining.
	v, _ := MM1KFullProbability(0.25, 32)
	if v > 1e-8 {
		t.Fatalf("P_full(p=0.25, K=32) = %v, should be negligible", v)
	}
}

func TestMM1KLargerQueueShrinksOverflow(t *testing.T) {
	prev := 1.1
	for _, k := range []int{2, 4, 8, 16} {
		v, err := MM1KFullProbability(0.1, k)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Fatalf("overflow not decreasing in K")
		}
		prev = v
	}
}

func TestMM1KInvalidArgs(t *testing.T) {
	if _, err := MM1KFullProbability(-0.1, 4); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := MM1KFullProbability(2, 4); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := MM1KFullProbability(0.5, 0); err == nil {
		t.Error("K = 0 accepted")
	}
}

func TestMassConservation(t *testing.T) {
	// Absorbed + in-queue mass must equal 1 (checked indirectly: overflow
	// probability in [0,1] always).
	w := Walk{Arrive: 0.3, Depart: 0.1}
	for _, s := range []int{0, 1, 10, 1000} {
		p, err := w.OverflowProbability(s, 6)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1+1e-12 {
			t.Fatalf("overflow probability %v out of [0,1]", p)
		}
	}
}
