package queueing

import (
	"math"
	"testing"

	"sdimm/internal/rng"
)

// With LowRate == HighRate the MMPP feeds a plain Bernoulli single-server
// queue. Unlike the paper's Walk (a signed net-balance walk that wanders
// negative), the queue is reflected at zero, so we validate the simulator
// against an exact absorbing-barrier DP of the same queue dynamics: from an
// occupied queue, +1 w.p. a(1-s), -1 w.p. s(1-a); from an empty queue an
// arrival is immediately serviceable, so +1 w.p. a(1-s) and stay otherwise.
func TestMMPPMatchesExactQueueDP(t *testing.T) {
	const a, s = 0.25, 0.25
	m := MMPP{LowRate: a, HighRate: a, PUp: 0.1, PDown: 0.1}
	if got, want := m.MeanRate(), a; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanRate = %v, want %v", got, want)
	}
	steps, limit := 400, 8
	up := a * (1 - s)
	down := s * (1 - a)
	dist := make([]float64, limit)
	next := make([]float64, limit)
	dist[0] = 1
	absorbed := 0.0
	for t := 0; t < steps; t++ {
		clear(next)
		for k, p := range dist {
			if p == 0 {
				continue
			}
			if k+1 >= limit {
				absorbed += p * up
			} else {
				next[k+1] += p * up
			}
			if k > 0 {
				next[k-1] += p * down
				next[k] += p * (1 - up - down)
			} else {
				next[0] += p * (1 - up)
			}
		}
		dist, next = next, dist
	}
	sim, err := m.SimulateOverflow(steps, limit, 20000, s, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim-absorbed) > 0.03 {
		t.Fatalf("degenerate MMPP overflow %v, exact queue DP %v — simulator diverged", sim, absorbed)
	}
}

// Burstiness at a fixed mean rate must strictly raise the overflow
// probability: the queue eats the High-state bursts it never sees under
// uniform arrivals. This is the property the admission watermarks are sized
// against.
func TestMMPPBurstyOverflowsMore(t *testing.T) {
	uniform := MMPP{LowRate: 0.25, HighRate: 0.25, PUp: 0.05, PDown: 0.05}
	bursty := MMPP{LowRate: 0.05, HighRate: 0.45, PUp: 0.05, PDown: 0.05}
	if u, b := uniform.MeanRate(), bursty.MeanRate(); math.Abs(u-b) > 1e-12 {
		t.Fatalf("mean rates differ: uniform %v bursty %v", u, b)
	}
	steps, limit, trials := 600, 10, 20000
	u, err := uniform.SimulateOverflow(steps, limit, trials, 0.3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := bursty.SimulateOverflow(steps, limit, trials, 0.3, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if b <= u+0.02 {
		t.Fatalf("bursty overflow %v not above uniform %v", b, u)
	}
}

func TestMMPPValidate(t *testing.T) {
	bad := []MMPP{
		{LowRate: -0.1, HighRate: 0.5, PUp: 0.1, PDown: 0.1},
		{LowRate: 0.1, HighRate: 1.5, PUp: 0.1, PDown: 0.1},
		{LowRate: 0.1, HighRate: 0.5, PUp: 0, PDown: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted invalid process", m)
		}
	}
	if _, err := (MMPP{LowRate: 0.1, HighRate: 0.5, PUp: 0.1, PDown: 0.1}).
		SimulateOverflow(10, 5, 10, 1.5, rng.New(1)); err == nil {
		t.Fatal("SimulateOverflow accepted service probability > 1")
	}
}

// QueueLimitFor must return the smallest bound meeting the target, shrink
// as the target loosens, and agree with FullProbability.
func TestQueueLimitFor(t *testing.T) {
	k, err := QueueLimitFor(0.9, 1e-4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FullProbability(0.9, k)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-4 {
		t.Fatalf("K=%d misses target: P_K=%v", k, p)
	}
	if k > 1 {
		prev, err := FullProbability(0.9, k-1)
		if err != nil {
			t.Fatal(err)
		}
		if prev <= 1e-4 {
			t.Fatalf("K=%d not minimal: P_{K-1}=%v already meets target", k, prev)
		}
	}
	loose, err := QueueLimitFor(0.9, 1e-2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if loose > k {
		t.Fatalf("looser target needs deeper queue: %d > %d", loose, k)
	}
	for _, bad := range [][2]float64{{1.0, 0.1}, {0.5, 0}, {0, 0.1}, {0.5, 1}} {
		if _, err := QueueLimitFor(bad[0], bad[1], 100); err == nil {
			t.Fatalf("QueueLimitFor(%v, %v) accepted invalid input", bad[0], bad[1])
		}
	}
	// MM1KFullProbability must still match its FullProbability refactor.
	want, err := MM1KFullProbability(0.25, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FullProbability(Utilization(0.25), 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-got) > 1e-15 {
		t.Fatalf("MM1KFullProbability %v != FullProbability %v", want, got)
	}
}
