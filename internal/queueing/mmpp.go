package queueing

import (
	"fmt"
	"math"

	"sdimm/internal/rng"
)

// This file extends the Section IV-C queue models with the arrival side a
// serving front end actually faces: bursty, correlated request streams. The
// admission layer of cmd/sdimm-serve sizes its queue watermarks from these
// models — QueueLimitFor picks the shallowest bound that keeps the
// stationary overflow probability under a target, and the MMPP lets the
// tests drive the bound with arrivals far burstier than Bernoulli.

// MMPP is a two-state Markov-modulated Bernoulli process — the discrete-time
// MMPP commonly used to model bursty request arrivals. Each slot the process
// sits in a Low or High state, emits an arrival with that state's
// probability, and then flips state with probability PUp (Low→High) or
// PDown (High→Low). With LowRate == HighRate it degenerates to the plain
// Bernoulli arrivals of Walk; pushing the rates apart adds burstiness at a
// fixed mean rate.
type MMPP struct {
	LowRate  float64 // per-slot arrival probability in the Low state
	HighRate float64 // per-slot arrival probability in the High state
	PUp      float64 // per-slot Low→High transition probability
	PDown    float64 // per-slot High→Low transition probability
}

// Validate checks the process parameters.
func (m MMPP) Validate() error {
	for _, p := range []float64{m.LowRate, m.HighRate, m.PUp, m.PDown} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("queueing: invalid MMPP parameter in %+v", m)
		}
	}
	if m.PUp+m.PDown == 0 {
		return fmt.Errorf("queueing: MMPP never changes state: %+v", m)
	}
	return nil
}

// MeanRate returns the stationary arrival rate: the High-state occupancy is
// PUp/(PUp+PDown).
func (m MMPP) MeanRate() float64 {
	piHigh := m.PUp / (m.PUp + m.PDown)
	return (1-piHigh)*m.LowRate + piHigh*m.HighRate
}

// SimulateOverflow estimates, by Monte Carlo, the probability that a
// single-server queue fed by this arrival process and drained with per-slot
// service probability service exceeds limit at least once within steps
// slots. This is the bursty-arrivals counterpart of Walk.SimulateOverflow.
func (m MMPP) SimulateOverflow(steps, limit, trials int, service float64, r *rng.Source) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if steps < 0 || limit <= 0 || trials <= 0 || r == nil || service < 0 || service > 1 {
		return 0, fmt.Errorf("queueing: invalid MMPP simulation setup")
	}
	hits := 0
	for t := 0; t < trials; t++ {
		pos, high := 0, false
		for s := 0; s < steps; s++ {
			rate := m.LowRate
			if high {
				rate = m.HighRate
			}
			if r.Float64() < rate {
				pos++
			}
			if pos > 0 && r.Float64() < service {
				pos--
			}
			if pos >= limit {
				hits++
				break
			}
			if high {
				if r.Float64() < m.PDown {
					high = false
				}
			} else if r.Float64() < m.PUp {
				high = true
			}
		}
	}
	return float64(hits) / float64(trials), nil
}

// FullProbability returns the stationary probability that an M/M/1/K queue
// at utilization rho is full: P_K = rho^K (1-rho) / (1-rho^(K+1)). It is
// MM1KFullProbability with the utilization supplied directly instead of
// derived from the paper's drain probability.
func FullProbability(rho float64, k int) (float64, error) {
	if rho < 0 || math.IsNaN(rho) {
		return 0, fmt.Errorf("queueing: utilization %v invalid", rho)
	}
	if k <= 0 {
		return 0, fmt.Errorf("queueing: queue size %d invalid", k)
	}
	if math.Abs(rho-1) < 1e-12 {
		return 1 / float64(k+1), nil
	}
	return math.Pow(rho, float64(k)) * (1 - rho) / (1 - math.Pow(rho, float64(k+1))), nil
}

// QueueLimitFor returns the smallest queue bound K ≤ maxK whose stationary
// full-queue probability at utilization rho stays at or below target — the
// admission layer's watermark-sizing rule. rho must be < 1 (an overloaded
// queue has no bound that meets any target below 1/(K+1); admission handles
// that regime by shedding, not by queueing deeper).
func QueueLimitFor(rho, target float64, maxK int) (int, error) {
	if rho <= 0 || rho >= 1 || math.IsNaN(rho) {
		return 0, fmt.Errorf("queueing: utilization %v out of (0,1)", rho)
	}
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("queueing: target %v out of (0,1)", target)
	}
	if maxK <= 0 {
		return 0, fmt.Errorf("queueing: maxK %d invalid", maxK)
	}
	for k := 1; k <= maxK; k++ {
		p, err := FullProbability(rho, k)
		if err != nil {
			return 0, err
		}
		if p <= target {
			return k, nil
		}
	}
	return 0, fmt.Errorf("queueing: no K ≤ %d meets target %v at rho %v", maxK, target, rho)
}
