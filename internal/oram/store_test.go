package oram

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestBucketHelpers(t *testing.T) {
	b := NewBucket(4)
	if len(b.Slots) != 4 || b.RealBlocks() != 0 {
		t.Fatalf("new bucket: %+v", b)
	}
	b.Slots[1] = Block{Addr: 7, Leaf: 3}
	if b.RealBlocks() != 1 {
		t.Fatalf("RealBlocks = %d", b.RealBlocks())
	}
	if !b.Slots[0].IsDummy() || b.Slots[1].IsDummy() {
		t.Fatal("dummy detection wrong")
	}
}

func TestSparseStoreEmptyReadsDummy(t *testing.T) {
	s := NewSparseStore(4)
	b, err := s.ReadBucket(12345)
	if err != nil || b.RealBlocks() != 0 || len(b.Slots) != 4 {
		t.Fatalf("empty read: %+v %v", b, err)
	}
	if s.Materialized() != 0 {
		t.Fatal("read materialized a bucket")
	}
}

func TestSparseStoreRoundTrip(t *testing.T) {
	s := NewSparseStore(4)
	b := NewBucket(4)
	b.Slots[0] = Block{Addr: 9, Leaf: 2}
	if err := s.WriteBucket(5, b); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBucket(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slots[0].Addr != 9 || got.Slots[0].Leaf != 2 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestSparseStoreCounterMonotonic(t *testing.T) {
	s := NewSparseStore(4)
	b := NewBucket(4)
	for i := 1; i <= 3; i++ {
		if err := s.WriteBucket(1, b); err != nil {
			t.Fatal(err)
		}
		got, _ := s.ReadBucket(1)
		if got.Counter != uint64(i) {
			t.Fatalf("counter after %d writes = %d", i, got.Counter)
		}
	}
	// Writing a bucket carrying a bogus counter must not reset it.
	bogus := NewBucket(4)
	bogus.Counter = 0
	s.WriteBucket(1, bogus)
	got, _ := s.ReadBucket(1)
	if got.Counter != 4 {
		t.Fatalf("counter hijacked: %d", got.Counter)
	}
}

func TestSparseStoreCopyIsolation(t *testing.T) {
	s := NewSparseStore(4)
	b := NewBucket(4)
	b.Slots[0] = Block{Addr: 1, Leaf: 1}
	s.WriteBucket(0, b)
	got, _ := s.ReadBucket(0)
	got.Slots[0].Addr = 999
	again, _ := s.ReadBucket(0)
	if again.Slots[0].Addr != 1 {
		t.Fatal("ReadBucket aliases internal state")
	}
	b.Slots[0].Addr = 777 // mutate after write
	again, _ = s.ReadBucket(0)
	if again.Slots[0].Addr != 1 {
		t.Fatal("WriteBucket aliases caller state")
	}
}

func TestSparseStoreRejectsWrongZ(t *testing.T) {
	s := NewSparseStore(4)
	if err := s.WriteBucket(0, NewBucket(3)); err == nil {
		t.Fatal("wrong-Z bucket accepted")
	}
}

func TestMemStoreRoundTripWithPayload(t *testing.T) {
	s, err := NewMemStore(4, 64, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBucket(4)
	data := bytes.Repeat([]byte{0xAB}, 64)
	b.Slots[2] = Block{Addr: 42, Leaf: 17, Data: data}
	if err := s.WriteBucket(3, b); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBucket(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slots[2].Addr != 42 || got.Slots[2].Leaf != 17 || !bytes.Equal(got.Slots[2].Data, data) {
		t.Fatalf("round trip: %+v", got.Slots[2])
	}
	if got.RealBlocks() != 1 {
		t.Fatalf("RealBlocks = %d", got.RealBlocks())
	}
}

func TestMemStoreDetectsCorruption(t *testing.T) {
	s, _ := NewMemStore(4, 64, []byte("k"))
	s.WriteBucket(0, NewBucket(4))
	if !s.Corrupt(0) {
		t.Fatal("Corrupt found no bucket")
	}
	if _, err := s.ReadBucket(0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted bucket read: %v", err)
	}
	if s.Corrupt(99) {
		t.Fatal("Corrupt invented a bucket")
	}
}

func TestMemStoreCiphertextChangesEveryWrite(t *testing.T) {
	s, _ := NewMemStore(4, 64, []byte("k"))
	b := NewBucket(4)
	b.Slots[0] = Block{Addr: 1, Leaf: 1, Data: make([]byte, 64)}
	s.WriteBucket(7, b)
	c1 := append([]byte(nil), s.buckets[7]...)
	s.WriteBucket(7, b)
	c2 := s.buckets[7]
	if bytes.Equal(c1[8:], c2[8:]) {
		t.Fatal("identical plaintext re-encrypted identically (pad reuse)")
	}
}

func TestMemStoreRejectsOversizedPayload(t *testing.T) {
	s, _ := NewMemStore(4, 64, []byte("k"))
	b := NewBucket(4)
	b.Slots[0] = Block{Addr: 1, Leaf: 1, Data: make([]byte, 65)}
	if err := s.WriteBucket(0, b); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestMemStoreInvalidShape(t *testing.T) {
	if _, err := NewMemStore(0, 64, nil); err == nil {
		t.Fatal("Z=0 accepted")
	}
	if _, err := NewMemStore(4, 0, nil); err == nil {
		t.Fatal("blockBytes=0 accepted")
	}
}

// Property: MemStore round-trips arbitrary bucket contents.
func TestPropertyMemStoreRoundTrip(t *testing.T) {
	s, _ := NewMemStore(2, 16, []byte("prop"))
	f := func(idx uint64, a0, l0, a1, l1 uint64, d0, d1 [16]byte) bool {
		b := NewBucket(2)
		if a0 != DummyAddr {
			b.Slots[0] = Block{Addr: a0, Leaf: l0, Data: d0[:]}
		}
		if a1 != DummyAddr {
			b.Slots[1] = Block{Addr: a1, Leaf: l1, Data: d1[:]}
		}
		if err := s.WriteBucket(idx, b); err != nil {
			return false
		}
		got, err := s.ReadBucket(idx)
		if err != nil {
			return false
		}
		for i := range b.Slots {
			if got.Slots[i].Addr != b.Slots[i].Addr {
				return false
			}
			if !b.Slots[i].IsDummy() {
				if got.Slots[i].Leaf != b.Slots[i].Leaf || !bytes.Equal(got.Slots[i].Data, b.Slots[i].Data) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStashBasics(t *testing.T) {
	s := NewStash(2)
	if err := s.Put(Block{Addr: DummyAddr}); err == nil {
		t.Fatal("dummy accepted")
	}
	if err := s.Put(Block{Addr: 1, Leaf: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Block{Addr: 2, Leaf: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Block{Addr: 3, Leaf: 3}); !errors.Is(err, ErrStashOverflow) {
		t.Fatalf("overflow: %v", err)
	}
	// Replacing an existing entry is always allowed.
	if err := s.Put(Block{Addr: 1, Leaf: 9}); err != nil {
		t.Fatalf("replace failed: %v", err)
	}
	b, ok := s.Get(1)
	if !ok || b.Leaf != 9 {
		t.Fatalf("Get = %+v %v", b, ok)
	}
	if _, ok := s.Remove(1); !ok || s.Len() != 1 {
		t.Fatal("remove failed")
	}
	n := 0
	s.Range(func(Block) bool { n++; return true })
	if n != 1 {
		t.Fatalf("Range visited %d", n)
	}
	s.Range(func(Block) bool { return false }) // early stop must not panic
}

func TestPosMaps(t *testing.T) {
	for _, pm := range []PositionMap{NewDensePosMap(100), NewSparsePosMap()} {
		if _, ok := pm.Get(5); ok {
			t.Fatal("unmapped address reported mapped")
		}
		pm.Set(5, 77)
		if l, ok := pm.Get(5); !ok || l != 77 {
			t.Fatalf("Get = %d %v", l, ok)
		}
		pm.Set(5, 78)
		if l, _ := pm.Get(5); l != 78 {
			t.Fatal("overwrite lost")
		}
		if pm.Len() != 1 {
			t.Fatalf("Len = %d", pm.Len())
		}
	}
}

func TestDensePosMapOutOfRangeGet(t *testing.T) {
	m := NewDensePosMap(4)
	if _, ok := m.Get(100); ok {
		t.Fatal("out-of-range Get returned ok")
	}
}
