package oram

// PositionMap associates each block address with the leaf whose path must
// contain the block. DensePosMap and SparsePosMap are not safe for
// concurrent use — the discrete-event simulator is single-threaded by
// construction. ShardedPosMap is: the parallel cluster pipeline commits
// position updates from per-SDIMM workers concurrently.
type PositionMap interface {
	// Get returns the leaf for addr and whether the address has ever been
	// mapped.
	Get(addr uint64) (leaf uint64, ok bool)
	// Set maps addr to leaf.
	Set(addr uint64, leaf uint64)
	// Len returns the number of mapped addresses.
	Len() int
	// Each calls fn for every mapped address, in unspecified order. The
	// determinism-equivalence harness uses it to compare final position
	// maps across engines.
	Each(fn func(addr, leaf uint64))
}

// DensePosMap is an array-backed position map for small functional trees.
type DensePosMap struct {
	leaves []uint64
	set    []bool
	n      int
}

// NewDensePosMap builds a dense map over addresses [0, capacity).
func NewDensePosMap(capacity uint64) *DensePosMap {
	return &DensePosMap{
		leaves: make([]uint64, capacity),
		set:    make([]bool, capacity),
	}
}

// Get implements PositionMap.
func (m *DensePosMap) Get(addr uint64) (uint64, bool) {
	if addr >= uint64(len(m.leaves)) || !m.set[addr] {
		return 0, false
	}
	return m.leaves[addr], true
}

// Set implements PositionMap. Addresses beyond capacity panic: the dense
// map is used only with bounded functional address spaces.
func (m *DensePosMap) Set(addr uint64, leaf uint64) {
	if !m.set[addr] {
		m.n++
	}
	m.set[addr] = true
	m.leaves[addr] = leaf
}

// Len implements PositionMap.
func (m *DensePosMap) Len() int { return m.n }

// Each implements PositionMap.
func (m *DensePosMap) Each(fn func(addr, leaf uint64)) {
	for a, ok := range m.set {
		if ok {
			fn(uint64(a), m.leaves[a])
		}
	}
}

// SparsePosMap is a map-backed position map: memory grows with the touched
// working set, so paper-scale address spaces (2^29 blocks) are cheap as
// long as the trace touches a bounded set. Untouched blocks are
// indistinguishable from never-inserted blocks, which is the standard
// ORAM-simulation treatment.
type SparsePosMap struct {
	m map[uint64]uint64
}

// NewSparsePosMap builds an empty sparse map.
func NewSparsePosMap() *SparsePosMap {
	return &SparsePosMap{m: make(map[uint64]uint64)}
}

// Get implements PositionMap.
func (m *SparsePosMap) Get(addr uint64) (uint64, bool) {
	l, ok := m.m[addr]
	return l, ok
}

// Set implements PositionMap.
func (m *SparsePosMap) Set(addr uint64, leaf uint64) { m.m[addr] = leaf }

// Len implements PositionMap.
func (m *SparsePosMap) Len() int { return len(m.m) }

// Each implements PositionMap.
func (m *SparsePosMap) Each(fn func(addr, leaf uint64)) {
	for a, l := range m.m {
		fn(a, l)
	}
}
