package oram

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"sdimm/internal/ctrmode"
	"sdimm/internal/integrity"
)

// DummyAddr marks an empty bucket slot.
const DummyAddr = ^uint64(0)

// Block is one ORAM block: its logical address, its assigned leaf, and (in
// functional mode) its payload.
type Block struct {
	Addr uint64
	Leaf uint64
	Data []byte // nil in sparse/timing mode
}

// IsDummy reports whether the slot is empty.
func (b Block) IsDummy() bool { return b.Addr == DummyAddr }

// Bucket is one tree node: Z slots plus the monotonic write counter used
// for encryption and PMMAC freshness.
type Bucket struct {
	Slots   []Block
	Counter uint64
}

// NewBucket returns an all-dummy bucket with z slots.
func NewBucket(z int) Bucket {
	b := Bucket{Slots: make([]Block, z)}
	for i := range b.Slots {
		b.Slots[i].Addr = DummyAddr
	}
	return b
}

// RealBlocks returns the number of non-dummy slots.
func (b Bucket) RealBlocks() int {
	n := 0
	for _, s := range b.Slots {
		if !s.IsDummy() {
			n++
		}
	}
	return n
}

// Store abstracts bucket storage. Bucket indices follow Geometry's heap
// order. Reading a never-written bucket returns an all-dummy bucket.
type Store interface {
	ReadBucket(idx uint64) (Bucket, error)
	// ReadBucketInto is ReadBucket decoding into a caller-provided bucket,
	// resizing b.Slots as needed. Slot Data may alias store-internal scratch
	// valid only until the next call on the store; callers that retain
	// payloads must copy them. This is the engine's hot-path read.
	ReadBucketInto(idx uint64, b *Bucket) error
	WriteBucket(idx uint64, b Bucket) error
	// Z returns the slots per bucket.
	Z() int
}

// resetSlots sizes b.Slots to z and fills it with dummies, reusing capacity.
func resetSlots(b *Bucket, z int) {
	if cap(b.Slots) < z {
		b.Slots = make([]Block, z)
	}
	b.Slots = b.Slots[:z]
	for i := range b.Slots {
		b.Slots[i] = Block{Addr: DummyAddr}
	}
}

// SparseStore keeps bucket placement metadata only (no payloads, no
// cryptography): the timing simulator's backing store. Memory grows with
// the number of buckets ever written.
type SparseStore struct {
	z       int
	buckets map[uint64]Bucket
}

// NewSparseStore builds an empty sparse store with z slots per bucket.
func NewSparseStore(z int) *SparseStore {
	return &SparseStore{z: z, buckets: make(map[uint64]Bucket)}
}

// Z implements Store.
func (s *SparseStore) Z() int { return s.z }

// ReadBucket implements Store.
func (s *SparseStore) ReadBucket(idx uint64) (Bucket, error) {
	if b, ok := s.buckets[idx]; ok {
		// Return a copy so callers cannot alias stored state.
		cp := Bucket{Slots: append([]Block(nil), b.Slots...), Counter: b.Counter}
		return cp, nil
	}
	return NewBucket(s.z), nil
}

// ReadBucketInto implements Store without allocating (sparse slots carry no
// payloads, so the slot copy is the whole read).
func (s *SparseStore) ReadBucketInto(idx uint64, b *Bucket) error {
	if st, ok := s.buckets[idx]; ok {
		if cap(b.Slots) < s.z {
			b.Slots = make([]Block, s.z)
		}
		b.Slots = b.Slots[:s.z]
		copy(b.Slots, st.Slots)
		b.Counter = st.Counter
		return nil
	}
	resetSlots(b, s.z)
	b.Counter = 0
	return nil
}

// WriteBucket implements Store. The write counter is owned by the store and
// advances monotonically regardless of the Counter field passed in.
func (s *SparseStore) WriteBucket(idx uint64, b Bucket) error {
	if len(b.Slots) != s.z {
		return fmt.Errorf("oram: bucket with %d slots written to Z=%d store", len(b.Slots), s.z)
	}
	var counter uint64
	if old, ok := s.buckets[idx]; ok {
		counter = old.Counter
	}
	cp := Bucket{Slots: append([]Block(nil), b.Slots...), Counter: counter + 1}
	s.buckets[idx] = cp
	return nil
}

// Materialized returns how many buckets have ever been written (test and
// memory-footprint introspection).
func (s *SparseStore) Materialized() int { return len(s.buckets) }

// ErrIntegrity is returned when a bucket fails MAC verification.
var ErrIntegrity = errors.New("oram: bucket failed integrity verification")

// MemStore is the functional store: buckets are serialized, encrypted with
// AES-CTR under a per-bucket counter, and authenticated with PMMAC. It is
// what a real secure buffer does to its DRAM contents; unit and property
// tests run the full engine against it. Not safe for concurrent use: the
// keystream, MAC, and plaintext buffers are reused across calls.
type MemStore struct {
	z          int
	blockBytes int
	aead       cipher.Block
	mac        *integrity.PMMAC
	buckets    map[uint64][]byte // idx -> counter || ciphertext || tag
	writes     uint64            // physical bucket seals (see Writes)

	// Reusable scratch: CTR stream state, IV, and the plaintext staging
	// buffer shared by ReadBucketInto (decode) and PutBucketAt (encode).
	stream ctrmode.Stream
	iv     [aes.BlockSize]byte
	ptBuf  []byte
}

// NewMemStore builds a functional store. key seeds both the encryption and
// MAC keys; blockBytes is the payload size of every block.
func NewMemStore(z, blockBytes int, key []byte) (*MemStore, error) {
	if z <= 0 || blockBytes <= 0 {
		return nil, fmt.Errorf("oram: invalid store shape z=%d block=%d", z, blockBytes)
	}
	kb := make([]byte, 16)
	copy(kb, key)
	blk, err := aes.NewCipher(kb)
	if err != nil {
		return nil, fmt.Errorf("oram: store cipher: %w", err)
	}
	macKey := append([]byte("pmmac|"), key...)
	return &MemStore{
		z:          z,
		blockBytes: blockBytes,
		aead:       blk,
		mac:        integrity.New(macKey),
		buckets:    make(map[uint64][]byte),
	}, nil
}

// Z implements Store.
func (s *MemStore) Z() int { return s.z }

const slotHeader = 16 // addr (8) + leaf (8)

func (s *MemStore) plainSize() int { return s.z * (slotHeader + s.blockBytes) }

// scratch returns the plaintext staging buffer sized to one bucket.
func (s *MemStore) scratch() []byte {
	if cap(s.ptBuf) < s.plainSize() {
		s.ptBuf = make([]byte, s.plainSize())
	}
	return s.ptBuf[:s.plainSize()]
}

// ReadBucket implements Store: it decrypts and verifies the bucket. Slot
// payloads are fresh allocations the caller owns; the engine's hot path
// uses ReadBucketInto instead.
func (s *MemStore) ReadBucket(idx uint64) (Bucket, error) {
	var b Bucket
	if err := s.ReadBucketInto(idx, &b); err != nil {
		return Bucket{}, err
	}
	for i := range b.Slots {
		if b.Slots[i].Data != nil {
			b.Slots[i].Data = append([]byte(nil), b.Slots[i].Data...)
		}
	}
	return b, nil
}

// ReadBucketInto implements Store: decrypt and verify into b without
// allocating. Non-dummy slot Data aliases the store's plaintext scratch —
// valid only until the next call on the store.
func (s *MemStore) ReadBucketInto(idx uint64, b *Bucket) error {
	raw, ok := s.buckets[idx]
	if !ok {
		resetSlots(b, s.z)
		b.Counter = 0
		return nil
	}
	counter := binary.BigEndian.Uint64(raw[:8])
	ct := raw[8 : 8+s.plainSize()]
	tag := raw[8+s.plainSize():]
	if !s.mac.Verify(idx, counter, ct, tag) {
		return fmt.Errorf("%w: bucket %d", ErrIntegrity, idx)
	}
	pt := s.scratch()
	s.keystream(idx, counter, ct, pt)
	if cap(b.Slots) < s.z {
		b.Slots = make([]Block, s.z)
	}
	b.Slots = b.Slots[:s.z]
	b.Counter = counter
	for i := 0; i < s.z; i++ {
		off := i * (slotHeader + s.blockBytes)
		b.Slots[i].Addr = binary.BigEndian.Uint64(pt[off:])
		b.Slots[i].Leaf = binary.BigEndian.Uint64(pt[off+8:])
		if b.Slots[i].IsDummy() {
			b.Slots[i].Data = nil
		} else {
			b.Slots[i].Data = pt[off+slotHeader : off+slotHeader+s.blockBytes]
		}
	}
	return nil
}

// WriteBucket implements Store: it bumps the counter, re-encrypts and
// re-MACs the bucket (every Path ORAM writeback re-encrypts). The counter
// is owned by the store and advances monotonically.
func (s *MemStore) WriteBucket(idx uint64, b Bucket) error {
	var counter uint64
	if old, ok := s.buckets[idx]; ok {
		counter = binary.BigEndian.Uint64(old[:8])
	}
	return s.PutBucketAt(idx, b, counter+1)
}

// PutBucketAt seals b at idx under an explicit write counter instead of
// bumping the stored one. The scrub pass uses it to reconstruct a corrupted
// shard bucket bit-exactly: with the sibling shards' (identical, lockstep)
// counter and the parity-recovered plaintext, the re-encryption reproduces
// the exact pre-corruption ciphertext and tag. Slot Data must not alias the
// store's read scratch: payloads obtained from ReadBucketInto have to be
// copied before being written back.
func (s *MemStore) PutBucketAt(idx uint64, b Bucket, counter uint64) error {
	if len(b.Slots) != s.z {
		return fmt.Errorf("oram: bucket with %d slots written to Z=%d store", len(b.Slots), s.z)
	}
	pt := s.scratch()
	for i := range pt {
		pt[i] = 0
	}
	for i, slot := range b.Slots {
		off := i * (slotHeader + s.blockBytes)
		binary.BigEndian.PutUint64(pt[off:], slot.Addr)
		binary.BigEndian.PutUint64(pt[off+8:], slot.Leaf)
		if !slot.IsDummy() {
			if len(slot.Data) > s.blockBytes {
				return fmt.Errorf("oram: block %d payload %d exceeds %d bytes", slot.Addr, len(slot.Data), s.blockBytes)
			}
			copy(pt[off+slotHeader:off+slotHeader+s.blockBytes], slot.Data)
		}
	}
	// Steady state reseals in place: the stored raw buffer has the same
	// (shape-determined) size for the life of the bucket.
	rawSize := 8 + len(pt) + integrity.TagSize
	raw, ok := s.buckets[idx]
	if !ok || len(raw) != rawSize {
		raw = make([]byte, rawSize)
	}
	binary.BigEndian.PutUint64(raw[:8], counter)
	ct := raw[8 : 8+len(pt)]
	s.keystream(idx, counter, pt, ct)
	raw = s.mac.AppendTag(raw[:8+len(pt)], idx, counter, ct)
	s.buckets[idx] = raw
	s.writes++
	return nil
}

// Writes returns the number of physical bucket seals this store has
// performed — every encrypt-and-MAC of a bucket, whatever triggered it.
// The ring-eviction write-traffic gate compares this across backends at
// equal workload.
func (s *MemStore) Writes() uint64 { return s.writes }

// BucketIndices returns the indices of every bucket ever written, sorted
// ascending. Checkpoint capture and the recovery scrub pass iterate it so
// their work (and any RNG-free repair decisions) is deterministic.
func (s *MemStore) BucketIndices() []uint64 {
	idxs := make([]uint64, 0, len(s.buckets))
	for idx := range s.buckets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs
}

// RawBucket returns a copy of the sealed on-"DRAM" bytes of a bucket
// (counter || ciphertext || tag) and whether the bucket exists. Checkpoints
// persist the sealed form verbatim so a restore is bit-exact and the
// stored MACs keep protecting the payload at rest.
func (s *MemStore) RawBucket(idx uint64) ([]byte, bool) {
	raw, ok := s.buckets[idx]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), raw...), true
}

// RestoreRaw installs sealed bucket bytes captured by RawBucket. Only the
// length is validated here; authenticity is checked by ReadBucket (and the
// post-restore scrub pass) via the embedded PMMAC tag.
func (s *MemStore) RestoreRaw(idx uint64, raw []byte) error {
	want := 8 + s.plainSize() + integrity.TagSize
	if len(raw) != want {
		return fmt.Errorf("oram: restored bucket %d is %d bytes, want %d", idx, len(raw), want)
	}
	s.buckets[idx] = append([]byte(nil), raw...)
	return nil
}

// Counter returns the stored write counter of a bucket (0 if the bucket was
// never written). The Split scrub pass reads a healthy sibling's counter to
// reseal a reconstructed shard bucket bit-exactly.
func (s *MemStore) Counter(idx uint64) uint64 {
	raw, ok := s.buckets[idx]
	if !ok {
		return 0
	}
	return binary.BigEndian.Uint64(raw[:8])
}

// Corrupt flips a ciphertext bit in a stored bucket (test hook for
// integrity-failure injection). It reports whether the bucket existed.
func (s *MemStore) Corrupt(idx uint64) bool {
	raw, ok := s.buckets[idx]
	if !ok {
		return false
	}
	raw[8] ^= 0x01
	return true
}

// keystream XORs src into dst with the AES-CTR stream bound to (bucket,
// counter), so every write of every bucket uses a fresh pad. ctrmode is
// bit-identical to the stdlib CTR this originally used, so sealed bytes
// persisted by old checkpoints still decrypt.
func (s *MemStore) keystream(idx, counter uint64, src, dst []byte) {
	binary.BigEndian.PutUint64(s.iv[:8], idx)
	binary.BigEndian.PutUint64(s.iv[8:], counter)
	s.stream.XORKeyStream(s.aead, &s.iv, dst, src)
}
