package oram

import "fmt"

// Stash holds blocks that have been read off their paths and not yet
// written back. Path ORAM's security argument requires only that its
// occupancy stays small; overflow is a hard error surfaced to the caller
// (the paper sizes it at ~200 entries and shows overflow probability is
// negligible for Z >= 4 with background eviction).
type Stash struct {
	capacity int
	blocks   map[uint64]Block // keyed by address
}

// NewStash builds a stash with the given capacity.
func NewStash(capacity int) *Stash {
	return &Stash{capacity: capacity, blocks: make(map[uint64]Block)}
}

// Len returns the current occupancy.
func (s *Stash) Len() int { return len(s.blocks) }

// Capacity returns the configured limit.
func (s *Stash) Capacity() int { return s.capacity }

// ErrStashOverflow is wrapped by Put when capacity would be exceeded.
var ErrStashOverflow = fmt.Errorf("oram: stash overflow")

// Put inserts or replaces a block. Inserting a new block into a full stash
// fails with ErrStashOverflow; replacing an existing address never fails.
func (s *Stash) Put(b Block) error {
	if b.IsDummy() {
		return fmt.Errorf("oram: dummy block inserted into stash")
	}
	if _, ok := s.blocks[b.Addr]; !ok && len(s.blocks) >= s.capacity {
		return fmt.Errorf("%w: capacity %d", ErrStashOverflow, s.capacity)
	}
	s.blocks[b.Addr] = b
	return nil
}

// Get returns the block for addr without removing it.
func (s *Stash) Get(addr uint64) (Block, bool) {
	b, ok := s.blocks[addr]
	return b, ok
}

// Remove deletes and returns the block for addr.
func (s *Stash) Remove(addr uint64) (Block, bool) {
	b, ok := s.blocks[addr]
	if ok {
		delete(s.blocks, addr)
	}
	return b, ok
}

// Range calls fn for every block until fn returns false. Iteration order is
// unspecified; callers needing determinism must sort (see Engine eviction,
// which selects deterministically by address).
func (s *Stash) Range(fn func(Block) bool) {
	for _, b := range s.blocks {
		if !fn(b) {
			return
		}
	}
}
