package oram

import (
	"sync"
	"testing"

	"sdimm/internal/rng"
)

// TestShardedPosMapOracle drives a long randomized Get/Set sequence through
// a ShardedPosMap and a SparsePosMap side by side: every observable — Get
// results, Len, and the full Each dump — must match the monolithic oracle
// exactly at several shard counts (including the non-power-of-two request
// that rounds up, and the degenerate single shard).
func TestShardedPosMapOracle(t *testing.T) {
	for _, shards := range []int{1, 3, 16, 64} {
		m := NewShardedPosMap(shards)
		oracle := NewSparsePosMap()
		r := rng.Stream(41, "shardedpos-oracle", shards)
		for i := 0; i < 5000; i++ {
			addr := r.Uint64n(512)
			if r.Bool(0.6) {
				leaf := r.Uint64n(1 << 20)
				m.Set(addr, leaf)
				oracle.Set(addr, leaf)
			}
			gl, gok := m.Get(addr)
			wl, wok := oracle.Get(addr)
			if gl != wl || gok != wok {
				t.Fatalf("shards=%d step %d: Get(%d) = (%d,%v), oracle (%d,%v)",
					shards, i, addr, gl, gok, wl, wok)
			}
		}
		if m.Len() != oracle.Len() {
			t.Fatalf("shards=%d: Len %d, oracle %d", shards, m.Len(), oracle.Len())
		}
		got := map[uint64]uint64{}
		m.Each(func(a, l uint64) { got[a] = l })
		want := map[uint64]uint64{}
		oracle.Each(func(a, l uint64) { want[a] = l })
		if len(got) != len(want) {
			t.Fatalf("shards=%d: Each dumped %d entries, oracle %d", shards, len(got), len(want))
		}
		for a, l := range want {
			if got[a] != l {
				t.Fatalf("shards=%d: Each[%d] = %d, oracle %d", shards, a, got[a], l)
			}
		}
	}
}

// TestShardedPosMapConcurrentCommits is the pipeline's commit pattern under
// the race detector: many goroutines committing disjoint address stripes
// concurrently (a wave's worker-side Sets never share an address), plus
// readers. Afterwards every address must hold exactly the last value its
// owning goroutine wrote, every Set must be in leaf range, and Len must
// account for every address exactly once — per-address linearization with
// no torn or lost updates.
func TestShardedPosMapConcurrentCommits(t *testing.T) {
	const (
		writers = 8
		perW    = 400
		rounds  = 5
		leaves  = uint64(1) << 16
	)
	m := NewShardedPosMap(16)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.Stream(7, "shardedpos-writer", w)
			for round := 0; round < rounds; round++ {
				for i := 0; i < perW; i++ {
					addr := uint64(w*perW + i) // disjoint stripe per writer
					m.Set(addr, uint64(round)<<32|r.Uint64n(leaves))
					if l, ok := m.Get(addr); !ok || l>>32 != uint64(round) {
						t.Errorf("writer %d: read back round %d, wrote round %d", w, l>>32, round)
						return
					}
				}
			}
		}()
	}
	// Concurrent readers over the whole space: values must always be either
	// absent or something some writer actually wrote (no torn words).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 50; pass++ {
				for addr := uint64(0); addr < writers*perW; addr += 17 {
					if l, ok := m.Get(addr); ok {
						if round := l >> 32; round >= rounds {
							t.Errorf("addr %d: torn read round %d", addr, round)
							return
						}
						if l&0xffffffff >= leaves {
							t.Errorf("addr %d: leaf %d out of range", addr, l&0xffffffff)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if got, want := m.Len(), writers*perW; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	m.Each(func(addr, l uint64) {
		if l>>32 != rounds-1 {
			t.Fatalf("addr %d: final round %d, want %d (lost update)", addr, l>>32, rounds-1)
		}
	})
}

// TestShardedPosMapSharedAddress hammers a single address from many
// goroutines: the final value must be one of the written values (the shard
// mutex linearizes them), never a mix.
func TestShardedPosMapSharedAddress(t *testing.T) {
	m := NewShardedPosMap(8)
	const addr = uint64(42)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Set(addr, uint64(w)<<32|uint64(i))
			}
		}()
	}
	wg.Wait()
	l, ok := m.Get(addr)
	if !ok {
		t.Fatal("address vanished")
	}
	if w, i := l>>32, l&0xffffffff; w >= 8 || i != 999 {
		t.Fatalf("final value %d/%d is not any writer's last Set", w, i)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// FuzzShardedPosMap replays an arbitrary op tape against both the sharded
// map and the monolithic oracle: shard routing must never change what any
// Get observes, what Len counts, or what Each dumps.
func FuzzShardedPosMap(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x81, 0x02, 0x03}, uint8(4))
	f.Add([]byte{0x80, 0x00, 0xff, 0x7f, 0x80}, uint8(1))
	f.Add([]byte{}, uint8(9))
	f.Fuzz(func(t *testing.T, tape []byte, shards uint8) {
		m := NewShardedPosMap(int(shards%32) + 1)
		oracle := NewSparsePosMap()
		for i := 0; i+1 < len(tape); i += 2 {
			op, addr := tape[i], uint64(tape[i+1])
			if op&0x80 != 0 {
				leaf := uint64(op&0x7f) << 8
				m.Set(addr, leaf)
				oracle.Set(addr, leaf)
			}
			gl, gok := m.Get(addr)
			wl, wok := oracle.Get(addr)
			if gl != wl || gok != wok {
				t.Fatalf("op %d: Get(%d) = (%d,%v), oracle (%d,%v)", i, addr, gl, gok, wl, wok)
			}
		}
		if m.Len() != oracle.Len() {
			t.Fatalf("Len %d, oracle %d", m.Len(), oracle.Len())
		}
		got := map[uint64]uint64{}
		m.Each(func(a, l uint64) { got[a] = l })
		oracle.Each(func(a, l uint64) {
			if got[a] != l {
				t.Fatalf("Each[%d] = %d, oracle %d", a, got[a], l)
			}
		})
	})
}
