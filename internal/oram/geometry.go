// Package oram implements the Path ORAM primitive the whole system is
// built on (Stefanov et al., adapted as in Freecursive ORAM): a balanced
// binary tree of Z-slot buckets, a position map, a stash, greedy path
// eviction and background eviction. The same engine runs in two modes:
//
//   - functional: buckets hold real encrypted payloads with PMMAC tags
//     (MemStore); reads return the bytes written — this is the mode library
//     users and the examples exercise;
//   - sparse/timing: buckets hold placement metadata only (SparseStore), so
//     paper-scale trees (2^28 buckets) fit in simulator memory.
//
// Package oram also provides the physical memory layout used by the paper:
// subtree packing for row-buffer locality [Ren et al.] and the
// rank-per-subtree low-power layout of Section III-E.
package oram

import "fmt"

// Geometry captures the shape of a Path ORAM tree: Levels tree levels with
// the root at level 0 and leaves at level Levels-1.
type Geometry struct {
	Levels int
}

// NewGeometry validates and builds a geometry. Levels must be in [1, 48]
// (2^48 buckets is far beyond any simulated configuration).
func NewGeometry(levels int) (Geometry, error) {
	if levels < 1 || levels > 48 {
		return Geometry{}, fmt.Errorf("oram: levels %d out of [1, 48]", levels)
	}
	return Geometry{Levels: levels}, nil
}

// MustGeometry is NewGeometry for static configurations; it panics on error.
func MustGeometry(levels int) Geometry {
	g, err := NewGeometry(levels)
	if err != nil {
		panic(err)
	}
	return g
}

// Leaves returns the number of leaves (and distinct paths).
func (g Geometry) Leaves() uint64 { return 1 << (g.Levels - 1) }

// Buckets returns the total number of buckets in the tree.
func (g Geometry) Buckets() uint64 { return 1<<g.Levels - 1 }

// LevelOf returns the level of a bucket index (heap order: root 0,
// children of i at 2i+1 and 2i+2).
func (g Geometry) LevelOf(bucket uint64) int {
	lvl := 0
	for n := bucket + 1; n > 1; n >>= 1 {
		lvl++
	}
	return lvl
}

// BucketAt returns the bucket index at the given level on the path to leaf.
func (g Geometry) BucketAt(leaf uint64, level int) uint64 {
	if level < 0 || level >= g.Levels {
		panic(fmt.Sprintf("oram: level %d out of range", level))
	}
	prefix := leaf >> uint(g.Levels-1-level)
	return (1 << uint(level)) - 1 + prefix
}

// Path fills buckets with the indices of the path from the root to leaf
// and returns it; buckets must have length Levels (pass nil to allocate).
func (g Geometry) Path(leaf uint64, buckets []uint64) []uint64 {
	if buckets == nil {
		buckets = make([]uint64, g.Levels)
	}
	for lvl := 0; lvl < g.Levels; lvl++ {
		buckets[lvl] = g.BucketAt(leaf, lvl)
	}
	return buckets
}

// CommonDepth returns the deepest level at which the paths to two leaves
// share a bucket (0 = only the root is shared).
func (g Geometry) CommonDepth(a, b uint64) int {
	x := a ^ b
	d := g.Levels - 1
	for x != 0 {
		x >>= 1
		d--
	}
	return d
}

// ValidLeaf reports whether leaf is in range.
func (g Geometry) ValidLeaf(leaf uint64) bool { return leaf < g.Leaves() }

// CapacityBlocks returns the number of real blocks a tree with Z-slot
// buckets can hold at the standard 50% utilization target (half of all
// slots), which is how the paper sizes a 32 GB ORAM at 28 levels.
func (g Geometry) CapacityBlocks(z int) uint64 {
	return g.Buckets() * uint64(z) / 2
}
