package oram

import (
	"bytes"
	"fmt"
	"testing"

	"sdimm/internal/rng"
)

func newRingEngine(t *testing.T, levels, interval int) (*Engine, *MemStore) {
	t.Helper()
	ms, err := NewMemStore(4, 64, []byte("ring-test-key"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ms, NewSparsePosMap(), Options{
		Geometry:          MustGeometry(levels),
		StashCapacity:     200,
		EvictThreshold:    150,
		Rand:              rng.New(42),
		RingFlushInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, ms
}

func TestRingEngineValidation(t *testing.T) {
	g := MustGeometry(4)
	if _, err := NewEngine(NewSparseStore(4), nil, Options{
		Geometry: g, StashCapacity: 10, EvictThreshold: 5, Rand: rng.New(1),
		RingFlushInterval: -1,
	}); err == nil {
		t.Error("negative flush interval accepted")
	}
	// Ring mode must keep at least one real slot after reserving dummies.
	if _, err := NewEngine(NewSparseStore(1), nil, Options{
		Geometry: g, StashCapacity: 10, EvictThreshold: 5, Rand: rng.New(1),
		RingFlushInterval: 4,
	}); err == nil {
		t.Error("Z=1 ring engine accepted")
	}
}

func TestRingReadYourWrites(t *testing.T) {
	e, _ := newRingEngine(t, 8, 4)
	payload := func(i int) []byte {
		b := make([]byte, 64)
		copy(b, fmt.Sprintf("ring-%d", i))
		return b
	}
	for i := 0; i < 60; i++ {
		if _, _, err := e.Access(uint64(i), OpWrite, payload(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Rewrite half with new contents, then read everything back twice —
	// the second pass exercises reads of blocks whose tree slots were
	// invalidated by the first.
	for i := 0; i < 60; i += 2 {
		b := payload(i)
		b[63] = 0xAA
		if _, _, err := e.Access(uint64(i), OpWrite, b); err != nil {
			t.Fatalf("rewrite %d: %v", i, err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 60; i++ {
			got, _, err := e.Access(uint64(i), OpRead, nil)
			if err != nil {
				t.Fatalf("pass %d read %d: %v", pass, i, err)
			}
			want := payload(i)
			if i%2 == 0 {
				want[63] = 0xAA
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("pass %d read %d = %q, want %q", pass, i, got[:8], want[:8])
			}
		}
	}
	if e.StashLen() > e.stash.Capacity()/2 {
		t.Errorf("stash ran hot: %d of %d", e.StashLen(), e.stash.Capacity())
	}
}

// TestRingDrawsNoRandomness pins the property every equivalence suite leans
// on: the protocol-facing ring access path (AccessAt, where the caller owns
// the position map) never touches the engine's randomness source, so
// eviction order is a pure function of the access count.
func TestRingDrawsNoRandomness(t *testing.T) {
	e, _ := newRingEngine(t, 8, 3)
	leaves := e.Geometry().Leaves()
	pos := make(map[uint64]uint64)
	before := e.RandState()
	for i := 0; i < 200; i++ {
		addr := uint64(i % 40)
		op, data := OpRead, []byte(nil)
		if i%3 == 0 {
			op, data = OpWrite, make([]byte, 64)
		}
		oldLeaf, mapped := pos[addr]
		if !mapped {
			oldLeaf = uint64(i) % leaves
		}
		newLeaf := uint64(i*31+7) % leaves
		pos[addr] = newLeaf
		if _, _, err := e.AccessAt(addr, op, data, oldLeaf, newLeaf, true); err != nil {
			t.Fatal(err)
		}
	}
	if e.RandState() != before {
		t.Error("ring access drew from the randomness source")
	}
}

// TestRingWriteTraffic checks the headline property: at flush interval A,
// physical bucket writes per access land near Levels/A — far below the
// Levels-per-access of path mode — while reads stay one path per access.
func TestRingWriteTraffic(t *testing.T) {
	const levels, interval, accesses = 8, 4, 400
	ring, ringStore := newRingEngine(t, levels, interval)
	pathStore, err := NewMemStore(4, 64, []byte("ring-test-key"))
	if err != nil {
		t.Fatal(err)
	}
	path, err := NewEngine(pathStore, NewSparsePosMap(), Options{
		Geometry:      MustGeometry(levels),
		StashCapacity: 200, EvictThreshold: 150, Rand: rng.New(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	for i := 0; i < accesses; i++ {
		addr := uint64(i % 50)
		if _, _, err := ring.Access(addr, OpWrite, data); err != nil {
			t.Fatal(err)
		}
		if _, _, err := path.Access(addr, OpWrite, data); err != nil {
			t.Fatal(err)
		}
	}
	ringW := float64(ringStore.Writes()) / accesses
	pathW := float64(pathStore.Writes()) / accesses
	if ringW >= 0.8*pathW {
		t.Errorf("ring writes/access = %.2f, path = %.2f; want at least a 20%% reduction", ringW, pathW)
	}
	t.Logf("writes/access: ring %.2f, path %.2f (%.0f%% reduction)",
		ringW, pathW, 100*(1-ringW/pathW))
}

// TestRingMigrateLeavesNoLiveCopy: after a migrate access, neither the
// stash nor any non-invalidated tree slot holds the address.
func TestRingMigrateLeavesNoLiveCopy(t *testing.T) {
	e, ms := newRingEngine(t, 6, 2)
	data := make([]byte, 64)
	data[0] = 7
	if _, _, err := e.Access(5, OpWrite, data); err != nil {
		t.Fatal(err)
	}
	leaf, _ := e.PositionOf(5)
	blk, _, err := e.AccessAt(5, OpRead, nil, leaf, 0, false) // keep=false: migrate out
	if err != nil {
		t.Fatal(err)
	}
	if blk.Data[0] != 7 {
		t.Fatalf("migrated payload = %d, want 7", blk.Data[0])
	}
	if _, ok := e.StashGet(5); ok {
		t.Error("migrated block still in stash")
	}
	for _, idx := range ms.BucketIndices() {
		b, err := ms.ReadBucket(idx)
		if err != nil {
			t.Fatal(err)
		}
		dead := e.RingInvalidSlots(idx)
		for si, slot := range b.Slots {
			if !slot.IsDummy() && slot.Addr == 5 && dead&(1<<uint(si)) == 0 {
				t.Errorf("live copy of migrated block in bucket %d slot %d", idx, si)
			}
		}
	}
}

// TestRingReservedDummies: every bucket the ring writeback seals keeps at
// least one dummy slot free.
func TestRingReservedDummies(t *testing.T) {
	e, ms := newRingEngine(t, 6, 2)
	data := make([]byte, 64)
	for i := 0; i < 300; i++ {
		if _, _, err := e.Access(uint64(i%64), OpWrite, data); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range ms.BucketIndices() {
		b, err := ms.ReadBucket(idx)
		if err != nil {
			t.Fatal(err)
		}
		if got := b.RealBlocks(); got > ms.Z()-1 {
			t.Errorf("bucket %d holds %d real blocks, want <= %d (reserved dummies)", idx, got, ms.Z()-1)
		}
	}
}

func TestReverseBits(t *testing.T) {
	cases := []struct {
		x    uint64
		bits int
		want uint64
	}{
		{0, 0, 0}, {0b1, 1, 0b1}, {0b01, 2, 0b10}, {0b001, 3, 0b100},
		{0b1011, 4, 0b1101}, {0b111, 3, 0b111},
	}
	for _, c := range cases {
		if got := reverseBits(c.x, c.bits); got != c.want {
			t.Errorf("reverseBits(%b, %d) = %b, want %b", c.x, c.bits, got, c.want)
		}
	}
}

// TestRingFlushOrderCoversAllLeaves: over Leaves() flushes the pointer
// visits every leaf exactly once, in bit-reversed order.
func TestRingFlushOrderCoversAllLeaves(t *testing.T) {
	e, _ := newRingEngine(t, 5, 1) // flush every access
	seen := make(map[uint64]int)
	data := make([]byte, 64)
	n := int(e.Geometry().Leaves())
	for i := 0; i < n; i++ {
		_, plan, err := e.Access(uint64(i), OpWrite, data)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.BackgroundLeaves) < 1 {
			t.Fatalf("access %d: no flush recorded", i)
		}
		seen[plan.BackgroundLeaves[0]]++
	}
	if len(seen) != n {
		t.Errorf("pointer covered %d of %d leaves in one revolution", len(seen), n)
	}
}

// TestRingSnapshotRoundTrip: snapshot + restore reproduces the engine
// bit-for-bit — the continuation of a restored clone matches the original.
func TestRingSnapshotRoundTrip(t *testing.T) {
	a, as := newRingEngine(t, 7, 3)
	data := make([]byte, 64)
	for i := 0; i < 123; i++ {
		data[0] = byte(i)
		if _, _, err := a.Access(uint64(i%30), OpWrite, data); err != nil {
			t.Fatal(err)
		}
	}

	// Clone: sealed buckets verbatim, stash, ring state, position map.
	bs, err := NewMemStore(4, 64, []byte("ring-test-key"))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range as.BucketIndices() {
		raw, _ := as.RawBucket(idx)
		if err := bs.RestoreRaw(idx, raw); err != nil {
			t.Fatal(err)
		}
	}
	b, err := NewEngine(bs, NewSparsePosMap(), Options{
		Geometry:      MustGeometry(7),
		StashCapacity: 200, EvictThreshold: 150, Rand: rng.New(42),
		RingFlushInterval: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreStash(a.StashBlocks()); err != nil {
		t.Fatal(err)
	}
	snap := a.RingSnapshot()
	if err := b.RestoreRingSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, b.RingSnapshot()) {
		t.Fatal("restored ring snapshot differs from captured one")
	}
	for i := 0; i < 30; i++ {
		leaf, ok := a.PositionOf(uint64(i))
		if !ok {
			continue
		}
		ga, _, err := a.AccessAt(uint64(i), OpRead, nil, leaf, leaf, true)
		if err != nil {
			t.Fatal(err)
		}
		gb, _, err := b.AccessAt(uint64(i), OpRead, nil, leaf, leaf, true)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ga.Data, gb.Data) {
			t.Fatalf("addr %d: clone read diverged", i)
		}
	}
	if !bytes.Equal(a.RingSnapshot(), b.RingSnapshot()) {
		t.Fatal("ring state diverged after identical continuations")
	}
}

func TestRestoreRingSnapshotFailsClosed(t *testing.T) {
	e, _ := newRingEngine(t, 6, 4)
	data := make([]byte, 64)
	for i := 0; i < 20; i++ {
		if _, _, err := e.Access(uint64(i), OpWrite, data); err != nil {
			t.Fatal(err)
		}
	}
	good := e.RingSnapshot()
	bad := [][]byte{
		good[:len(good)-1],            // torn tail
		append([]byte{0}, good...),    // shifted
		make([]byte, 4),               // short header
		ringStateWith(t, 0, 99, 1),    // since >= interval
		ringStateWith(t, 1<<40, 0, 1), // bucket out of range
		ringStateWith(t, 3, 0, 1<<10), // mask exceeds Z
	}
	for i, raw := range bad {
		if err := e.RestoreRingSnapshot(raw); err == nil {
			t.Errorf("bad snapshot %d accepted", i)
		}
	}
	if err := e.RestoreRingSnapshot(good); err != nil {
		t.Fatalf("good snapshot rejected after bad attempts: %v", err)
	}
	// Path-mode engines refuse non-empty ring snapshots.
	p, _ := newTestEngine(t, 6, true)
	if err := p.RestoreRingSnapshot(good); err == nil {
		t.Error("path-mode engine accepted a ring snapshot")
	}
	if err := p.RestoreRingSnapshot(nil); err != nil {
		t.Errorf("path-mode engine rejected the empty snapshot: %v", err)
	}
}

// ringStateWith hand-builds a one-entry snapshot for validation tests.
func ringStateWith(t *testing.T, bucket uint64, since uint32, mask uint64) []byte {
	t.Helper()
	st := ringState{counter: 1, since: since, buckets: []uint64{bucket}, masks: []uint64{mask}}
	out := make([]byte, ringStateHeader+ringStateEntry)
	be := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			out[off+i] = byte(v >> uint(56-8*i))
		}
	}
	be(0, st.counter)
	out[8] = byte(st.since >> 24)
	out[9] = byte(st.since >> 16)
	out[10] = byte(st.since >> 8)
	out[11] = byte(st.since)
	out[15] = 1 // count
	be(16, bucket)
	be(24, mask)
	return out
}

// FuzzRingStateDecode: the ring-state decoder must be total — no panics on
// hostile bytes — and must reject every non-canonical encoding.
func FuzzRingStateDecode(f *testing.F) {
	e, _ := newRingFuzzEngine(f)
	data := make([]byte, 64)
	for i := 0; i < 40; i++ {
		if _, _, err := e.Access(uint64(i%16), OpWrite, data); err != nil {
			f.Fatal(err)
		}
	}
	valid := e.RingSnapshot()
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{})
	f.Add(make([]byte, ringStateHeader))
	f.Add(make([]byte, ringStateHeader+ringStateEntry))
	f.Fuzz(func(t *testing.T, raw []byte) {
		st, err := decodeRingState(raw)
		if err != nil {
			return
		}
		// Anything accepted must re-encode canonically: strictly increasing
		// buckets, nonzero masks, exact length.
		if len(raw) != ringStateHeader+len(st.buckets)*ringStateEntry {
			t.Fatalf("accepted %d bytes for %d entries", len(raw), len(st.buckets))
		}
		for i := range st.buckets {
			if st.masks[i] == 0 {
				t.Fatal("accepted empty mask")
			}
			if i > 0 && st.buckets[i] <= st.buckets[i-1] {
				t.Fatal("accepted unsorted buckets")
			}
		}
	})
}

func newRingFuzzEngine(f *testing.F) (*Engine, *MemStore) {
	f.Helper()
	ms, err := NewMemStore(4, 64, []byte("ring-fuzz-key"))
	if err != nil {
		f.Fatal(err)
	}
	e, err := NewEngine(ms, NewSparsePosMap(), Options{
		Geometry:      MustGeometry(6),
		StashCapacity: 200, EvictThreshold: 150, Rand: rng.New(7),
		RingFlushInterval: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	return e, ms
}
