package oram

import "fmt"

// Layout maps bucket indices to linear cache-line addresses in the ORAM
// region of physical memory. It implements two paper techniques:
//
//   - Subtree packing [Ren et al., adopted in Section III]: the tree is cut
//     into layers of SubtreeLevels levels; the buckets of each small subtree
//     are stored contiguously, so one path descent touches few DRAM rows and
//     row-buffer hit rate goes up.
//
//   - Rank-per-subtree placement (Section III-E): with NumRanks > 0, the top
//     log2(NumRanks) tree levels are pinned in the secure buffer and each
//     remaining top-level subtree is confined to one rank, so an accessORAM
//     touches a single rank and the others can stay in power-down.
type Layout struct {
	Geom           Geometry
	LinesPerBucket int
	SubtreeLevels  int
	// CachedLevels top levels are held on-chip and occupy no memory lines.
	CachedLevels int
	// NumRanks enables the low-power placement when > 1 (must be a power
	// of two). Zero disables rank pinning.
	NumRanks int
	// BucketBytes, when > 0, packs buckets at byte granularity instead of
	// whole lines: bucket i occupies bytes [i*BucketBytes, (i+1)*BucketBytes)
	// of its packed region and its Placement covers the lines that span.
	// Used by the Split protocol, whose shards (e.g. 160 B at 2-way
	// splitting) would otherwise waste a third of every line. LineBytes
	// must then also be set; LinesPerBucket is ignored for placement but
	// still bounds Placement.LineCount reporting.
	BucketBytes int
	LineBytes   int
}

// Validate checks the layout parameters.
func (l Layout) Validate() error {
	if l.Geom.Levels <= 0 {
		return fmt.Errorf("oram: layout with zero geometry")
	}
	if l.LinesPerBucket <= 0 {
		return fmt.Errorf("oram: layout lines per bucket %d", l.LinesPerBucket)
	}
	if l.BucketBytes < 0 || (l.BucketBytes > 0 && l.LineBytes <= 0) {
		return fmt.Errorf("oram: byte-packed layout needs BucketBytes ≥ 0 and LineBytes > 0")
	}
	if l.SubtreeLevels <= 0 {
		return fmt.Errorf("oram: layout subtree levels %d", l.SubtreeLevels)
	}
	if l.CachedLevels < 0 || l.CachedLevels >= l.Geom.Levels {
		return fmt.Errorf("oram: layout cached levels %d out of [0, %d)", l.CachedLevels, l.Geom.Levels)
	}
	if l.NumRanks != 0 {
		if l.NumRanks&(l.NumRanks-1) != 0 {
			return fmt.Errorf("oram: rank count %d not a power of two", l.NumRanks)
		}
		if rankLevels(l.NumRanks) >= l.Geom.Levels {
			return fmt.Errorf("oram: %d ranks need more than %d tree levels", l.NumRanks, l.Geom.Levels)
		}
	}
	return nil
}

func rankLevels(ranks int) int {
	n := 0
	for r := ranks; r > 1; r >>= 1 {
		n++
	}
	return n
}

// Placement is the physical home of one bucket.
type Placement struct {
	// OnChip: the bucket lives in the controller/secure buffer (cached top
	// levels, or the shared top of the low-power layout); no lines.
	OnChip bool
	// Rank is the pinned rank (low-power layout), or -1 for the default
	// address-interleaved policy.
	Rank int
	// FirstLine is the linear line address of the bucket's first line
	// (rank-local when Rank >= 0). Lines are contiguous per bucket.
	FirstLine uint64
	// LineCount is how many lines the bucket spans (differs per bucket
	// only under byte packing).
	LineCount int
}

// Lines returns the bucket's line addresses (nil when on-chip).
func (p Placement) Lines(linesPerBucket int) []uint64 {
	if p.OnChip {
		return nil
	}
	n := p.LineCount
	if n == 0 {
		n = linesPerBucket
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = p.FirstLine + uint64(i)
	}
	return out
}

// Place computes the physical placement of a bucket.
func (l Layout) Place(bucket uint64) Placement {
	if bucket >= l.Geom.Buckets() {
		panic(fmt.Sprintf("oram: bucket %d out of tree with %d buckets", bucket, l.Geom.Buckets()))
	}
	lvl := l.Geom.LevelOf(bucket)
	if lvl < l.CachedLevels {
		return Placement{OnChip: true, Rank: -1}
	}

	if l.NumRanks > 1 {
		rl := rankLevels(l.NumRanks)
		if lvl < rl {
			// Shared top of the forest: kept in the secure buffer
			// (Section III-E: "the first two levels ... are stored in the
			// secure buffer").
			return Placement{OnChip: true, Rank: -1}
		}
		posInLevel := bucket + 1 - 1<<uint(lvl)
		rankIdx := int(posInLevel >> uint(lvl-rl))
		// Re-index the bucket within its rank-subtree and lay that subtree
		// out with subtree packing.
		sub := Geometry{Levels: l.Geom.Levels - rl}
		localLvl := lvl - rl
		localPos := posInLevel & (1<<uint(localLvl) - 1)
		localBucket := 1<<uint(localLvl) - 1 + localPos
		localLayout := Layout{
			Geom: sub, LinesPerBucket: l.LinesPerBucket, SubtreeLevels: l.SubtreeLevels,
			BucketBytes: l.BucketBytes, LineBytes: l.LineBytes,
		}
		pl := localLayout.place2(localBucket)
		pl.Rank = rankIdx
		return pl
	}

	return l.place2(bucket)
}

// place2 converts a packed bucket position to a line placement, honouring
// byte packing when configured.
func (l Layout) place2(bucket uint64) Placement {
	idx := l.packedOffset(bucket)
	if l.BucketBytes > 0 {
		start := idx * uint64(l.BucketBytes)
		end := start + uint64(l.BucketBytes) - 1
		first := start / uint64(l.LineBytes)
		last := end / uint64(l.LineBytes)
		return Placement{Rank: -1, FirstLine: first, LineCount: int(last-first) + 1}
	}
	return Placement{Rank: -1, FirstLine: idx * uint64(l.LinesPerBucket), LineCount: l.LinesPerBucket}
}

// packedOffset returns the bucket's position (in buckets) under subtree
// packing: layers of SubtreeLevels levels; subtrees within a layer stored
// contiguously in order of their roots.
func (l Layout) packedOffset(bucket uint64) uint64 {
	lvl := l.Geom.LevelOf(bucket)
	k := l.SubtreeLevels
	layer := lvl / k
	rootLvl := layer * k
	layerLevels := k
	if rootLvl+layerLevels > l.Geom.Levels {
		layerLevels = l.Geom.Levels - rootLvl
	}
	subtreeSize := uint64(1)<<uint(layerLevels) - 1

	posInLevel := bucket + 1 - 1<<uint(lvl)
	localLvl := lvl - rootLvl
	rootPos := posInLevel >> uint(localLvl)
	localPos := posInLevel & (1<<uint(localLvl) - 1)
	localIdx := uint64(1)<<uint(localLvl) - 1 + localPos

	bucketsBeforeLayer := uint64(1)<<uint(rootLvl) - 1
	return bucketsBeforeLayer + rootPos*subtreeSize + localIdx
}

// TotalLines returns the memory footprint of the layout in lines for one
// rank partition (NumRanks > 1) or the whole tree (otherwise). Cached
// levels still occupy address space (holes) to keep the mapping simple.
func (l Layout) TotalLines() uint64 {
	buckets := l.Geom.Buckets()
	if l.NumRanks > 1 {
		sub := Geometry{Levels: l.Geom.Levels - rankLevels(l.NumRanks)}
		buckets = sub.Buckets()
	}
	if l.BucketBytes > 0 {
		return (buckets*uint64(l.BucketBytes) + uint64(l.LineBytes) - 1) / uint64(l.LineBytes)
	}
	return buckets * uint64(l.LinesPerBucket)
}
