package oram

import (
	"testing"
	"testing/quick"
)

func TestLayoutValidate(t *testing.T) {
	g := MustGeometry(10)
	ok := Layout{Geom: g, LinesPerBucket: 5, SubtreeLevels: 4}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Layout{
		{LinesPerBucket: 5, SubtreeLevels: 4},
		{Geom: g, SubtreeLevels: 4},
		{Geom: g, LinesPerBucket: 5},
		{Geom: g, LinesPerBucket: 5, SubtreeLevels: 4, CachedLevels: 10},
		{Geom: g, LinesPerBucket: 5, SubtreeLevels: 4, NumRanks: 3},
		{Geom: MustGeometry(2), LinesPerBucket: 5, SubtreeLevels: 4, NumRanks: 4},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad layout %d accepted", i)
		}
	}
}

func TestPlacementsDistinct(t *testing.T) {
	g := MustGeometry(10)
	l := Layout{Geom: g, LinesPerBucket: 5, SubtreeLevels: 4}
	seen := make(map[uint64]uint64)
	for b := uint64(0); b < g.Buckets(); b++ {
		p := l.Place(b)
		if p.OnChip {
			t.Fatalf("bucket %d on-chip without caching", b)
		}
		if prev, dup := seen[p.FirstLine]; dup {
			t.Fatalf("buckets %d and %d share line %d", prev, b, p.FirstLine)
		}
		if p.FirstLine%uint64(l.LinesPerBucket) != 0 {
			t.Fatalf("bucket %d not aligned: %d", b, p.FirstLine)
		}
		if p.FirstLine >= l.TotalLines() {
			t.Fatalf("bucket %d beyond footprint", b)
		}
		seen[p.FirstLine] = b
	}
	if uint64(len(seen)) != g.Buckets() {
		t.Fatalf("placed %d of %d buckets", len(seen), g.Buckets())
	}
}

func TestSubtreePackingLocality(t *testing.T) {
	// The 15 buckets of each 4-level subtree must be contiguous: a whole
	// path through one subtree then spans ≤ 15*linesPerBucket lines.
	g := MustGeometry(12)
	l := Layout{Geom: g, LinesPerBucket: 5, SubtreeLevels: 4}
	leaf := uint64(0b10110101101)
	path := g.Path(leaf%g.Leaves(), nil)
	subtreeSpan := uint64((1<<4 - 1) * l.LinesPerBucket)
	for layer := 0; layer < 3; layer++ {
		var lines []uint64
		for lvl := layer * 4; lvl < (layer+1)*4; lvl++ {
			lines = append(lines, l.Place(path[lvl]).FirstLine)
		}
		min, max := lines[0], lines[0]
		for _, x := range lines {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if max-min >= subtreeSpan {
			t.Fatalf("layer %d path span %d exceeds subtree span %d", layer, max-min, subtreeSpan)
		}
	}
}

func TestCachedLevelsOnChip(t *testing.T) {
	g := MustGeometry(10)
	l := Layout{Geom: g, LinesPerBucket: 5, SubtreeLevels: 4, CachedLevels: 3}
	for b := uint64(0); b < g.Buckets(); b++ {
		p := l.Place(b)
		wantOnChip := g.LevelOf(b) < 3
		if p.OnChip != wantOnChip {
			t.Fatalf("bucket %d (level %d) OnChip = %v", b, g.LevelOf(b), p.OnChip)
		}
	}
	if got := l.Place(0).Lines(5); got != nil {
		t.Fatal("on-chip bucket reported lines")
	}
}

func TestLowPowerRankPinning(t *testing.T) {
	g := MustGeometry(10)
	l := Layout{Geom: g, LinesPerBucket: 5, SubtreeLevels: 4, NumRanks: 4}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Top 2 levels on-chip.
	for _, b := range []uint64{0, 1, 2} {
		if !l.Place(b).OnChip {
			t.Fatalf("top bucket %d not on-chip in low-power layout", b)
		}
	}
	// Every path must touch exactly one rank (below the shared top).
	for leaf := uint64(0); leaf < g.Leaves(); leaf += 7 {
		ranks := map[int]bool{}
		for _, idx := range g.Path(leaf, nil) {
			p := l.Place(idx)
			if p.OnChip {
				continue
			}
			ranks[p.Rank] = true
		}
		if len(ranks) != 1 {
			t.Fatalf("leaf %d path touches ranks %v", leaf, ranks)
		}
	}
	// The 4 quarters of the leaf space map to the 4 ranks in order.
	quarter := g.Leaves() / 4
	for q := 0; q < 4; q++ {
		p := l.Place(g.BucketAt(uint64(q)*quarter, g.Levels-1))
		if p.Rank != q {
			t.Fatalf("quarter %d leaf pinned to rank %d", q, p.Rank)
		}
	}
}

func TestLowPowerPlacementsDistinctWithinRank(t *testing.T) {
	g := MustGeometry(9)
	l := Layout{Geom: g, LinesPerBucket: 3, SubtreeLevels: 4, NumRanks: 4}
	seen := make(map[[2]uint64]uint64)
	for b := uint64(0); b < g.Buckets(); b++ {
		p := l.Place(b)
		if p.OnChip {
			continue
		}
		key := [2]uint64{uint64(p.Rank), p.FirstLine}
		if prev, dup := seen[key]; dup {
			t.Fatalf("buckets %d and %d collide at rank %d line %d", prev, b, p.Rank, p.FirstLine)
		}
		if p.FirstLine >= l.TotalLines() {
			t.Fatalf("bucket %d beyond per-rank footprint", b)
		}
		seen[key] = b
	}
}

func TestPlacePanicsOutOfTree(t *testing.T) {
	g := MustGeometry(4)
	l := Layout{Geom: g, LinesPerBucket: 5, SubtreeLevels: 4}
	defer func() {
		if recover() == nil {
			t.Fatal("Place(out of tree) did not panic")
		}
	}()
	l.Place(g.Buckets())
}

func TestPlacementLines(t *testing.T) {
	p := Placement{FirstLine: 10}
	lines := p.Lines(3)
	want := []uint64{10, 11, 12}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("Lines = %v", lines)
		}
	}
}

// Property: packing is a bijection onto [0, buckets) for trees whose depth
// is not a multiple of the subtree height (exercises the short last layer).
func TestPropertyPackingBijective(t *testing.T) {
	g := MustGeometry(11) // 11 = 2*4 + 3: short last layer
	l := Layout{Geom: g, LinesPerBucket: 1, SubtreeLevels: 4}
	seen := make([]bool, g.Buckets())
	for b := uint64(0); b < g.Buckets(); b++ {
		off := l.Place(b).FirstLine
		if off >= g.Buckets() {
			t.Fatalf("offset %d out of range", off)
		}
		if seen[off] {
			t.Fatalf("offset %d reused", off)
		}
		seen[off] = true
	}
	f := func(x uint64) bool {
		b := x % g.Buckets()
		return l.Place(b).FirstLine < g.Buckets()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytePackedPlacement(t *testing.T) {
	g := MustGeometry(8)
	l := Layout{
		Geom: g, LinesPerBucket: 3, SubtreeLevels: 4,
		BucketBytes: 160, LineBytes: 64,
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bucket regions must tile the byte space without gaps: bucket with
	// packed offset i starts at byte i*160.
	seen := map[uint64]bool{}
	var total uint64
	for b := uint64(0); b < g.Buckets(); b++ {
		p := l.Place(b)
		if p.LineCount < 2 || p.LineCount > 3 {
			t.Fatalf("bucket %d spans %d lines for 160B", b, p.LineCount)
		}
		total += uint64(p.LineCount)
		seen[p.FirstLine] = true
	}
	// 160B per bucket: footprint must be about buckets*160/64 lines.
	want := (g.Buckets()*160 + 63) / 64
	if l.TotalLines() != want {
		t.Fatalf("TotalLines = %d, want %d", l.TotalLines(), want)
	}
	// Spanned lines stay within the footprint.
	for b := uint64(0); b < g.Buckets(); b++ {
		p := l.Place(b)
		if p.FirstLine+uint64(p.LineCount) > want {
			t.Fatalf("bucket %d spans beyond footprint", b)
		}
	}
}

func TestBytePackedValidation(t *testing.T) {
	g := MustGeometry(4)
	l := Layout{Geom: g, LinesPerBucket: 1, SubtreeLevels: 4, BucketBytes: 100}
	if err := l.Validate(); err == nil {
		t.Fatal("BucketBytes without LineBytes accepted")
	}
}

func TestBytePackedWithRankPinning(t *testing.T) {
	g := MustGeometry(9)
	l := Layout{
		Geom: g, LinesPerBucket: 3, SubtreeLevels: 4, NumRanks: 4,
		BucketBytes: 84, LineBytes: 64,
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	for leaf := uint64(0); leaf < g.Leaves(); leaf += 5 {
		ranks := map[int]bool{}
		for _, idx := range g.Path(leaf, nil) {
			p := l.Place(idx)
			if !p.OnChip {
				ranks[p.Rank] = true
				if p.LineCount < 1 {
					t.Fatalf("bucket %d has no lines", idx)
				}
			}
		}
		if len(ranks) != 1 {
			t.Fatalf("leaf %d path touches %v", leaf, ranks)
		}
	}
}

func TestPlacementLineCountDefault(t *testing.T) {
	p := Placement{FirstLine: 4}
	if got := p.Lines(2); len(got) != 2 {
		t.Fatalf("zero LineCount should fall back to linesPerBucket: %v", got)
	}
	p.LineCount = 3
	if got := p.Lines(2); len(got) != 3 {
		t.Fatalf("explicit LineCount ignored: %v", got)
	}
}
