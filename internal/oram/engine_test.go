package oram

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"sdimm/internal/rng"
)

func newTestEngine(t *testing.T, levels int, functional bool) (*Engine, Store) {
	t.Helper()
	g := MustGeometry(levels)
	var store Store
	if functional {
		ms, err := NewMemStore(4, 64, []byte("test-key"))
		if err != nil {
			t.Fatal(err)
		}
		store = ms
	} else {
		store = NewSparseStore(4)
	}
	e, err := NewEngine(store, NewSparsePosMap(), Options{
		Geometry:       g,
		StashCapacity:  200,
		EvictThreshold: 150,
		Rand:           rng.New(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, store
}

func TestNewEngineValidation(t *testing.T) {
	g := MustGeometry(4)
	r := rng.New(1)
	ok := Options{Geometry: g, StashCapacity: 10, EvictThreshold: 5, Rand: r}
	if _, err := NewEngine(nil, nil, ok); err == nil {
		t.Error("nil store accepted")
	}
	store := NewSparseStore(4)
	bad := []Options{
		{StashCapacity: 10, EvictThreshold: 5, Rand: r},               // zero geometry
		{Geometry: g, EvictThreshold: 5, Rand: r},                     // zero stash
		{Geometry: g, StashCapacity: 10, Rand: r},                     // zero threshold
		{Geometry: g, StashCapacity: 10, EvictThreshold: 20, Rand: r}, // threshold > capacity
		{Geometry: g, StashCapacity: 10, EvictThreshold: 5},           // nil rand
	}
	for i, o := range bad {
		if _, err := NewEngine(store, nil, o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestReadYourWrites(t *testing.T) {
	e, _ := newTestEngine(t, 8, true)
	payload := func(i int) []byte {
		b := make([]byte, 64)
		copy(b, fmt.Sprintf("block-%d", i))
		return b
	}
	for i := 0; i < 50; i++ {
		if _, _, err := e.Access(uint64(i), OpWrite, payload(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 50; i++ {
		got, _, err := e.Access(uint64(i), OpRead, nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("read %d = %q, want %q", i, got[:16], payload(i)[:16])
		}
	}
}

func TestFirstTouchReadReturnsZeros(t *testing.T) {
	e, _ := newTestEngine(t, 6, true)
	got, plan, err := e.Access(99, OpRead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Found {
		t.Fatal("first touch reported Found")
	}
	if len(got) != 64 || !bytes.Equal(got, make([]byte, 64)) {
		t.Fatalf("first-touch read = %v", got[:8])
	}
}

func TestOverwrite(t *testing.T) {
	e, _ := newTestEngine(t, 6, true)
	a := bytes.Repeat([]byte{1}, 64)
	b := bytes.Repeat([]byte{2}, 64)
	e.Access(7, OpWrite, a)
	e.Access(7, OpWrite, b)
	got, _, err := e.Access(7, OpRead, nil)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatalf("overwrite lost: %v %v", err, got[:4])
	}
}

func TestPlanPathMatchesOldLeaf(t *testing.T) {
	e, _ := newTestEngine(t, 8, false)
	e.Access(1, OpWrite, nil)
	// Second access must read the path of the leaf assigned on the first.
	leaf, ok := e.PositionOf(1)
	if !ok {
		t.Fatal("posmap not updated")
	}
	_, plan, err := e.Access(1, OpRead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.OldLeaf != leaf {
		t.Fatalf("accessed leaf %d, posmap said %d", plan.OldLeaf, leaf)
	}
	want := e.Geometry().Path(leaf, nil)
	for i := range want {
		if plan.Path[i] != want[i] {
			t.Fatalf("plan path %v != geometric path %v", plan.Path, want)
		}
	}
}

func TestLeafRemappedEveryAccess(t *testing.T) {
	e, _ := newTestEngine(t, 16, false)
	e.Access(1, OpWrite, nil)
	changed := 0
	prev, _ := e.PositionOf(1)
	for i := 0; i < 32; i++ {
		e.Access(1, OpRead, nil)
		cur, _ := e.PositionOf(1)
		if cur != prev {
			changed++
		}
		prev = cur
	}
	// With 2^15 leaves, essentially every remap changes the leaf.
	if changed < 30 {
		t.Fatalf("leaf changed only %d/32 times", changed)
	}
}

// treeInvariant checks that every mapped block is either in the stash or
// in a bucket on the path to its mapped leaf.
func treeInvariant(t *testing.T, e *Engine, store *SparseStore, addrs []uint64) {
	t.Helper()
	for _, a := range addrs {
		leaf, ok := e.PositionOf(a)
		if !ok {
			continue
		}
		if _, inStash := e.StashGet(a); inStash {
			continue
		}
		found := false
		for _, idx := range e.Geometry().Path(leaf, nil) {
			b, err := store.ReadBucket(idx)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range b.Slots {
				if s.Addr == a {
					if s.Leaf != leaf {
						t.Fatalf("block %d stored with leaf %d, mapped to %d", a, s.Leaf, leaf)
					}
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("block %d neither in stash nor on path of leaf %d", a, leaf)
		}
	}
}

func TestPathInvariantHoldsUnderLoad(t *testing.T) {
	e, st := newTestEngine(t, 10, false)
	store := st.(*SparseStore)
	r := rng.New(7)
	var addrs []uint64
	seen := map[uint64]bool{}
	for i := 0; i < 600; i++ {
		a := r.Uint64n(100)
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
		op := OpRead
		if r.Bool(0.5) {
			op = OpWrite
		}
		if _, _, err := e.Access(a, op, nil); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
	}
	treeInvariant(t, e, store, addrs)
}

func TestNoDuplicateBlocks(t *testing.T) {
	e, st := newTestEngine(t, 9, false)
	store := st.(*SparseStore)
	r := rng.New(11)
	for i := 0; i < 500; i++ {
		e.Access(r.Uint64n(60), OpWrite, nil)
	}
	// Scan the entire materialized tree: every address at most once, and
	// not simultaneously in the stash.
	count := map[uint64]int{}
	for idx := uint64(0); idx < e.Geometry().Buckets(); idx++ {
		b, _ := store.ReadBucket(idx)
		for _, s := range b.Slots {
			if !s.IsDummy() {
				count[s.Addr]++
			}
		}
	}
	for a, n := range count {
		if n > 1 {
			t.Fatalf("block %d appears %d times in tree", a, n)
		}
		if _, inStash := e.StashGet(a); inStash {
			t.Fatalf("block %d in both tree and stash", a)
		}
	}
}

func TestStashBounded(t *testing.T) {
	e, _ := newTestEngine(t, 12, false)
	r := rng.New(13)
	for i := 0; i < 3000; i++ {
		if _, _, err := e.Access(r.Uint64n(1000), OpWrite, nil); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
	}
	if peak := e.Stats().StashPeak; peak > 200 {
		t.Fatalf("stash peak %d exceeded capacity", peak)
	}
	// With Z=4 the stash should in fact stay far below the threshold.
	if e.StashLen() > 150 {
		t.Fatalf("stash settled at %d", e.StashLen())
	}
}

func TestAccessRequiresPosMap(t *testing.T) {
	g := MustGeometry(4)
	e, err := NewEngine(NewSparseStore(4), nil, Options{
		Geometry: g, StashCapacity: 10, EvictThreshold: 5, Rand: rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Access(1, OpRead, nil); err == nil {
		t.Fatal("Access without posmap succeeded")
	}
}

func TestReadWritePathPairing(t *testing.T) {
	e, _ := newTestEngine(t, 6, false)
	if _, err := e.ReadPath(3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReadPath(4); err == nil {
		t.Fatal("second ReadPath while pending accepted")
	}
	if err := e.WritePath(4); err == nil {
		t.Fatal("WritePath on wrong leaf accepted")
	}
	if err := e.WritePath(3); err != nil {
		t.Fatal(err)
	}
	if err := e.WritePath(3); err == nil {
		t.Fatal("WritePath without pending read accepted")
	}
}

func TestReadPathRejectsBadLeaf(t *testing.T) {
	e, _ := newTestEngine(t, 6, false)
	if _, err := e.ReadPath(1 << 40); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
}

func TestAccessAtMigrationRemovesBlock(t *testing.T) {
	e, st := newTestEngine(t, 8, false)
	store := st.(*SparseStore)
	// Install a block via the posmap-driven path.
	e.Access(5, OpWrite, nil)
	leaf, _ := e.PositionOf(5)
	// Migrate it out: it must appear nowhere in this engine afterwards.
	blk, plan, err := e.AccessAt(5, OpRead, nil, leaf, 12345, false)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Found {
		t.Fatal("migration did not find block")
	}
	if blk.Addr != 5 || blk.Leaf != 12345 {
		t.Fatalf("migrated block = %+v", blk)
	}
	if _, ok := e.StashGet(5); ok {
		t.Fatal("migrated block still in stash")
	}
	for idx := uint64(0); idx < e.Geometry().Buckets(); idx++ {
		b, _ := store.ReadBucket(idx)
		for _, s := range b.Slots {
			if s.Addr == 5 {
				t.Fatalf("migrated block still in bucket %d", idx)
			}
		}
	}
}

func TestAccessAtKeepUpdatesLeaf(t *testing.T) {
	e, _ := newTestEngine(t, 8, false)
	e.Access(9, OpWrite, nil)
	leaf, _ := e.PositionOf(9)
	newLeaf := (leaf + 1) % e.Geometry().Leaves()
	blk, _, err := e.AccessAt(9, OpWrite, nil, leaf, newLeaf, true)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Leaf != newLeaf {
		t.Fatalf("kept block leaf %d, want %d", blk.Leaf, newLeaf)
	}
}

func TestStashInsertAndRemove(t *testing.T) {
	e, _ := newTestEngine(t, 6, false)
	if err := e.StashInsert(Block{Addr: 42, Leaf: 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.StashInsert(Block{Addr: 43, Leaf: 1 << 40}); err == nil {
		t.Fatal("out-of-range leaf accepted by StashInsert")
	}
	b, ok := e.StashRemove(42)
	if !ok || b.Leaf != 3 {
		t.Fatalf("StashRemove = %+v %v", b, ok)
	}
	if _, ok := e.StashRemove(42); ok {
		t.Fatal("double remove succeeded")
	}
}

func TestBackgroundEvictionDrains(t *testing.T) {
	g := MustGeometry(8)
	e, err := NewEngine(NewSparseStore(4), NewSparsePosMap(), Options{
		Geometry:       g,
		StashCapacity:  128,
		EvictThreshold: 8,
		Rand:           rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pump blocks straight into the stash (as APPENDs would), then run a
	// normal access: one greedy writeback cannot place them all, so
	// DrainStash must kick in.
	for i := 0; i < 60; i++ {
		if err := e.StashInsert(Block{Addr: uint64(1000 + i), Leaf: e.RandomLeaf()}); err != nil {
			t.Fatal(err)
		}
	}
	_, plan, err := e.Access(1, OpWrite, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.BackgroundEvicts == 0 {
		t.Fatal("no background evictions despite hot stash")
	}
	if e.Stats().BackgroundEvicts == 0 {
		t.Fatal("stats did not record background evictions")
	}
}

func TestIntegrityFailureSurfaces(t *testing.T) {
	e, st := newTestEngine(t, 6, true)
	ms := st.(*MemStore)
	if _, _, err := e.Access(1, OpWrite, bytes.Repeat([]byte{9}, 64)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the block's whole path so the next access necessarily hits it.
	leaf, _ := e.PositionOf(1)
	for _, idx := range e.Geometry().Path(leaf, nil) {
		ms.Corrupt(idx)
	}
	_, _, err := e.Access(1, OpRead, nil)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted bucket read: %v", err)
	}
}

func TestSparseStoreFootprintGrowsWithTouch(t *testing.T) {
	e, st := newTestEngine(t, 20, false)
	store := st.(*SparseStore)
	for i := 0; i < 10; i++ {
		e.Access(uint64(i), OpWrite, nil)
	}
	// 10 accesses touch at most 10 paths of 20 buckets.
	if m := store.Materialized(); m > 10*20 {
		t.Fatalf("materialized %d buckets for 10 accesses", m)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []uint64 {
		g := MustGeometry(10)
		e, _ := NewEngine(NewSparseStore(4), NewSparsePosMap(), Options{
			Geometry: g, StashCapacity: 100, EvictThreshold: 80, Rand: rng.New(99),
		})
		var leaves []uint64
		for i := 0; i < 100; i++ {
			_, plan, err := e.Access(uint64(i%17), OpWrite, nil)
			if err != nil {
				panic(err)
			}
			leaves = append(leaves, plan.OldLeaf, plan.NewLeaf)
		}
		return leaves
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
