package oram

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file implements the engine's ring-eviction mode (enabled by
// Options.RingFlushInterval): reads lift only the target block off its path
// and invalidate its slot in place, writebacks are deferred to a
// deterministic reverse-lexicographic eviction pointer that flushes one
// path every A accesses, and each written bucket reserves dummy slots so it
// can absorb reads before the pointer returns. Steady-state traffic is
// read-mostly — roughly Levels bucket writes every A accesses instead of
// Levels per access — which is the write-traffic reduction BENCH_ring.json
// gates on.
//
// Invariant: a real block has exactly one live copy — either one
// non-invalidated tree slot or one stash entry. A read moves the live copy
// from tree to stash (marking the slot dead in ringInvalid); a flush moves
// stash blocks back into fresh buckets and clears their dead-slot masks.
// ReadPath and the scrub pass both consult ringInvalid so stale slots are
// never resurrected.

// Ring reports whether the engine runs in ring-eviction mode.
func (e *Engine) Ring() bool { return e.ringA > 0 }

// RingFlushInterval returns the flush interval A (0 in path mode).
func (e *Engine) RingFlushInterval() int { return e.ringA }

// RingInvalidSlots returns the dead-slot bitmap for a bucket: bit i set
// means slot i holds a stale copy whose live version left the tree. The
// recovery scrub consults it so a stale slot does not count as a live copy
// of a lost block.
func (e *Engine) RingInvalidSlots(idx uint64) uint64 {
	if e.ringA == 0 {
		return 0
	}
	return e.ringInvalid[idx]
}

// ringAccessPath is accessPath's ring-mode body: read the path, lift only
// the target block into the stash, update it there, and defer all writeback
// to the eviction pointer. plan.Path is the path read (read-only traffic in
// this mode); every flush performed — the scheduled every-A flush and any
// forced stash-pressure flushes — lands in plan.BackgroundLeaves as a full
// path read+write.
func (e *Engine) ringAccessPath(addr uint64, op Op, data []byte, oldLeaf, newLeaf uint64, migrate bool) (AccessPlan, Block, error) {
	plan := AccessPlan{Addr: addr, OldLeaf: oldLeaf, NewLeaf: newLeaf}
	if e.pending {
		return plan, Block{}, fmt.Errorf("oram: ring access while path %d is pending writeback", e.pendingLeaf)
	}
	if !e.geom.ValidLeaf(oldLeaf) {
		return plan, Block{}, fmt.Errorf("oram: old leaf %d out of range", oldLeaf)
	}
	if !migrate && !e.geom.ValidLeaf(newLeaf) {
		return plan, Block{}, fmt.Errorf("oram: new leaf %d out of range", newLeaf)
	}
	if cap(e.pathBuf) < e.geom.Levels {
		e.pathBuf = make([]uint64, e.geom.Levels)
	}
	path := e.geom.Path(oldLeaf, e.pathBuf[:e.geom.Levels])
	e.planPath = append(e.planPath[:0], path...)
	plan.Path = e.planPath

	// Read every bucket on the path, but take only the live copy of addr
	// into the stash, invalidating the slot it came from. Everything else
	// stays in the tree untouched — no writeback this access.
	for _, idx := range path {
		if err := e.store.ReadBucketInto(idx, &e.readBkt); err != nil {
			return plan, Block{}, err
		}
		dead := e.ringInvalid[idx]
		for si, slot := range e.readBkt.Slots {
			if slot.IsDummy() || dead&(1<<uint(si)) != 0 || slot.Addr != addr {
				continue
			}
			slot.Data = e.copyIn(slot.Data)
			if err := e.stash.Put(slot); err != nil {
				e.recycle(slot.Data)
				return plan, Block{}, err
			}
			e.ringInvalid[idx] = dead | 1<<uint(si)
			break
		}
	}
	e.stats.PathReads++
	if e.stash.Len() > e.stats.StashPeak {
		e.stats.StashPeak = e.stash.Len()
	}

	blk, found := e.stash.Get(addr)
	plan.Found = found
	if !found {
		blk = Block{Addr: addr, Leaf: newLeaf}
		if hint := e.blockBytesHint(); hint > 0 {
			blk.Data = e.zeroBuf(hint)
		}
	}
	blk.Leaf = newLeaf
	if op == OpWrite && data != nil {
		blk.Data = append(blk.Data[:0], data...)
	}
	if migrate {
		// The block leaves this ORAM entirely; its tree slot (if any) was
		// invalidated above, so no live copy remains here.
		e.stash.Remove(addr)
	} else if err := e.stash.Put(blk); err != nil {
		return plan, Block{}, err
	}

	// Snapshot the response before any flush: the eviction pointer may
	// write the block back into the tree and recycle its stash buffer.
	if blk.Data != nil {
		e.respBuf = append(e.respBuf[:0], blk.Data...)
		if migrate {
			e.recycle(blk.Data)
		}
		blk.Data = e.respBuf
	}

	// Deferred writeback: the scheduled every-A flush, then deterministic
	// extra flushes while the stash runs hot (bounded like background
	// eviction). No randomness is drawn anywhere in ring mode.
	e.leavesBuf = e.leavesBuf[:0]
	e.ringSince++
	if int(e.ringSince) >= e.ringA {
		e.ringSince = 0
		leaf, err := e.ringFlush()
		if err != nil {
			return plan, Block{}, err
		}
		e.leavesBuf = append(e.leavesBuf, leaf)
	}
	for e.stash.Len() > e.evictThreshold && len(e.leavesBuf) < e.maxBG {
		leaf, err := e.ringFlush()
		if err != nil {
			return plan, Block{}, err
		}
		e.leavesBuf = append(e.leavesBuf, leaf)
		e.stats.BackgroundEvicts++
	}
	plan.BackgroundEvicts = len(e.leavesBuf)
	if len(e.leavesBuf) > 0 {
		plan.BackgroundLeaves = e.leavesBuf
	}
	plan.StashAfter = e.stash.Len()
	return plan, blk, nil
}

// ringFlush advances the eviction pointer one step and evicts that path
// (full read + greedy writeback with reserved dummies). The pointer walks
// the leaves in reverse-lexicographic order — the bit-reversed access
// counter — so consecutive flushes touch maximally distant subtrees and
// every leaf is flushed exactly once per Leaves() steps.
func (e *Engine) ringFlush() (uint64, error) {
	leaf := reverseBits(e.ringCounter&(e.geom.Leaves()-1), e.geom.Levels-1)
	e.ringCounter++
	if err := e.EvictPath(leaf); err != nil {
		return leaf, err
	}
	return leaf, nil
}

// reverseBits reverses the low `bits` bits of x (the reverse-lexicographic
// eviction order of Ring ORAM).
func reverseBits(x uint64, bits int) uint64 {
	var r uint64
	for i := 0; i < bits; i++ {
		r = r<<1 | x&1
		x >>= 1
	}
	return r
}

// Ring-state snapshot wire format (durable checkpoints):
//
//	u64 ringCounter | u32 ringSince | u32 n | n × (u64 bucket, u64 mask)
//
// with buckets strictly increasing and every mask nonzero. The decoder is
// total — hostile input fails closed with an error, never a panic — and
// RestoreRingSnapshot additionally validates the decoded state against the
// engine's geometry and bucket shape.

const ringStateHeader = 8 + 4 + 4
const ringStateEntry = 8 + 8

// ringState is the decoded durable ring-eviction state.
type ringState struct {
	counter uint64
	since   uint32
	buckets []uint64
	masks   []uint64
}

// RingSnapshot serializes the engine's ring-eviction state for a durable
// checkpoint (nil in path mode). The dead-slot map is emitted in bucket
// order, so the snapshot is byte-stable.
func (e *Engine) RingSnapshot() []byte {
	if e.ringA == 0 {
		return nil
	}
	idxs := make([]uint64, 0, len(e.ringInvalid))
	for idx, mask := range e.ringInvalid {
		if mask != 0 {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	out := make([]byte, ringStateHeader+len(idxs)*ringStateEntry)
	binary.BigEndian.PutUint64(out[0:], e.ringCounter)
	binary.BigEndian.PutUint32(out[8:], e.ringSince)
	binary.BigEndian.PutUint32(out[12:], uint32(len(idxs)))
	off := ringStateHeader
	for _, idx := range idxs {
		binary.BigEndian.PutUint64(out[off:], idx)
		binary.BigEndian.PutUint64(out[off+8:], e.ringInvalid[idx])
		off += ringStateEntry
	}
	return out
}

// decodeRingState parses a RingSnapshot payload. It accepts exactly the
// canonical encoding: the declared entry count must match the remaining
// length, buckets must be strictly increasing, and masks must be nonzero.
func decodeRingState(raw []byte) (ringState, error) {
	var st ringState
	if len(raw) < ringStateHeader {
		return st, fmt.Errorf("oram: ring state %d bytes, want >= %d", len(raw), ringStateHeader)
	}
	st.counter = binary.BigEndian.Uint64(raw[0:])
	st.since = binary.BigEndian.Uint32(raw[8:])
	n := binary.BigEndian.Uint32(raw[12:])
	body := raw[ringStateHeader:]
	if uint64(len(body)) != uint64(n)*ringStateEntry {
		return st, fmt.Errorf("oram: ring state body %d bytes, want %d entries", len(body), n)
	}
	st.buckets = make([]uint64, n)
	st.masks = make([]uint64, n)
	var prev uint64
	for i := uint32(0); i < n; i++ {
		off := int(i) * ringStateEntry
		idx := binary.BigEndian.Uint64(body[off:])
		mask := binary.BigEndian.Uint64(body[off+8:])
		if i > 0 && idx <= prev {
			return st, fmt.Errorf("oram: ring state buckets not strictly increasing at entry %d", i)
		}
		if mask == 0 {
			return st, fmt.Errorf("oram: ring state entry %d has empty mask", i)
		}
		st.buckets[i] = idx
		st.masks[i] = mask
		prev = idx
	}
	return st, nil
}

// RestoreRingSnapshot loads a RingSnapshot payload into the engine,
// replacing the current ring-eviction state. It fails closed: a snapshot
// that does not decode canonically, or whose contents exceed the engine's
// geometry or bucket shape, leaves the current state untouched.
func (e *Engine) RestoreRingSnapshot(raw []byte) error {
	if e.ringA == 0 {
		if len(raw) == 0 {
			return nil
		}
		return fmt.Errorf("oram: ring snapshot restored into a path-mode engine")
	}
	st, err := decodeRingState(raw)
	if err != nil {
		return err
	}
	if st.since >= uint32(e.ringA) {
		return fmt.Errorf("oram: ring state since=%d exceeds flush interval %d", st.since, e.ringA)
	}
	z := e.store.Z()
	for i, idx := range st.buckets {
		if idx >= e.geom.Buckets() {
			return fmt.Errorf("oram: ring state bucket %d out of range", idx)
		}
		if st.masks[i]>>uint(z) != 0 {
			return fmt.Errorf("oram: ring state mask %#x exceeds Z=%d slots", st.masks[i], z)
		}
	}
	e.ringCounter = st.counter
	e.ringSince = st.since
	clear(e.ringInvalid)
	for i, idx := range st.buckets {
		e.ringInvalid[idx] = st.masks[i]
	}
	return nil
}
