package oram

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"

	"sdimm/internal/rng"
)

// Op is an ORAM operation type. Path ORAM performs identical work for both;
// the type only selects whether payload data flows in or out.
type Op int

// Operations accepted by Access (the accessORAM interface of Section II-C).
const (
	OpRead Op = iota
	OpWrite
)

// AccessPlan records exactly what one accessORAM did: which path was read
// and rewritten, the leaf remapping, and the stash behaviour. The timing
// simulator replays plans as DRAM traffic; tests use them to check
// obliviousness invariants (the path depends only on the old leaf).
//
// Path and BackgroundLeaves are engine-owned scratch, valid only until the
// next operation on the engine that produced the plan; callers that retain
// a plan (e.g. to replay it as DRAM traffic later) must copy them.
type AccessPlan struct {
	Addr             uint64
	OldLeaf          uint64
	NewLeaf          uint64
	Path             []uint64 // bucket indices, root to leaf
	Found            bool     // block was present (false on first touch)
	StashAfter       int
	BackgroundEvicts int // dummy accesses performed to drain the stash
	// BackgroundLeaves are the leaves of those dummy accesses, in order;
	// the timing layer turns each into one more path read+write.
	BackgroundLeaves []uint64
}

// EngineStats counts engine activity.
type EngineStats struct {
	Accesses         uint64
	PathReads        uint64
	PathWrites       uint64
	BackgroundEvicts uint64
	StashPeak        int
}

// Options configures an Engine.
type Options struct {
	Geometry            Geometry
	StashCapacity       int
	EvictThreshold      int // background-evict when stash exceeds this
	MaxBackgroundEvicts int // per Access; 0 means a default of 8
	Rand                *rng.Source
	// DisableAutoDrain turns off the automatic background eviction inside
	// Access/AccessAt. The Split protocol sets it: eviction decisions are
	// made by the CPU-side controller and pushed to every shard engine via
	// EvictPath so all shards stay in lockstep.
	DisableAutoDrain bool
	// RingFlushInterval, when > 0, switches the engine into ring-eviction
	// mode with flush interval A: each access reads its path and lifts only
	// the target block into the stash (invalidating its slot in place —
	// no per-access writeback), and every A-th access flushes one path
	// chosen by a deterministic reverse-lexicographic eviction pointer.
	// Writebacks reserve dummy slots per bucket (Z/4, at least one) so
	// freshly evicted buckets can absorb reads before the pointer returns.
	// Ring mode draws no randomness: eviction order is a pure function of
	// the access count, which is what makes it bitwise-reproducible across
	// parallelism and crash recovery.
	RingFlushInterval int
}

// Engine is one Path ORAM instance: tree store + stash + (optionally) a
// position map. With a position map, Access provides the full accessORAM
// operation. Without one, the path-level primitives (ReadPath, WritePath,
// StashInsert, StashRemove) let a distributed protocol drive the engine —
// this is exactly the role of the secure buffer in the Independent
// protocol, where the CPU-side frontend owns the position map.
type Engine struct {
	geom  Geometry
	store Store
	pos   PositionMap
	stash *Stash
	rand  *rng.Source

	evictThreshold int
	maxBG          int
	autoDrain      bool

	// Ring-eviction state (ringA > 0 enables ring mode; see
	// Options.RingFlushInterval and ring.go). ringInvalid maps bucket index
	// to a bitmap of slots whose contents were consumed by a read and are
	// stale in the tree; the live copy is in the stash (or migrated away).
	ringA        int
	ringReserved int
	ringCounter  uint64 // eviction-pointer position (flushes performed)
	ringSince    uint32 // accesses since the last scheduled flush
	ringInvalid  map[uint64]uint64

	pending     bool
	pendingLeaf uint64

	stats EngineStats

	// Reusable hot-path scratch. One steady-state access performs zero heap
	// allocations: the path index buffers, the bucket staging areas, the
	// writeback candidate list, and the response payload are all reused, and
	// every stash payload lives in an engine-owned buffer recycled through
	// freeBufs when its block is written back to the tree. Buffers handed
	// out (Access/AccessAt results, plan.Path, plan.BackgroundLeaves) are
	// valid only until the next engine operation.
	pathBuf   []uint64 // ReadPath's working path
	planPath  []uint64 // accessPath's stable copy handed out via AccessPlan
	readBkt   Bucket   // ReadPath bucket staging
	writeBkt  Bucket   // WritePath bucket staging
	cands     []Block  // WritePath candidate list
	placed    map[uint64]bool
	leavesBuf []uint64 // DrainStash result
	respBuf   []byte   // accessed payload snapshot returned to callers
	freeBufs  [][]byte // recycled stash payload buffers
}

// takeBuf pops a recycled payload buffer (nil when the free list is empty).
func (e *Engine) takeBuf() []byte {
	if n := len(e.freeBufs); n > 0 {
		b := e.freeBufs[n-1]
		e.freeBufs[n-1] = nil
		e.freeBufs = e.freeBufs[:n-1]
		return b[:0]
	}
	return nil
}

// copyIn copies src into an engine-owned buffer; nil stays nil (sparse mode
// carries no payloads).
func (e *Engine) copyIn(src []byte) []byte {
	if src == nil {
		return nil
	}
	return append(e.takeBuf(), src...)
}

// zeroBuf returns an engine-owned zero-filled buffer of n bytes.
func (e *Engine) zeroBuf(n int) []byte {
	b := e.takeBuf()
	if cap(b) < n {
		return make([]byte, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// recycle returns a payload buffer to the free list. Reuse order does not
// affect determinism: recycled buffers are always fully overwritten before
// they are observed again.
func (e *Engine) recycle(data []byte) {
	if cap(data) == 0 {
		return
	}
	e.freeBufs = append(e.freeBufs, data)
}

// NewEngine builds an engine over store. pos may be nil for protocol-driven
// use (Access then returns an error).
func NewEngine(store Store, pos PositionMap, opts Options) (*Engine, error) {
	if store == nil {
		return nil, errors.New("oram: nil store")
	}
	if opts.Geometry.Levels == 0 {
		return nil, errors.New("oram: zero geometry")
	}
	if opts.StashCapacity <= 0 {
		return nil, errors.New("oram: non-positive stash capacity")
	}
	if opts.EvictThreshold <= 0 || opts.EvictThreshold > opts.StashCapacity {
		return nil, errors.New("oram: eviction threshold out of (0, capacity]")
	}
	if opts.Rand == nil {
		return nil, errors.New("oram: nil randomness source")
	}
	maxBG := opts.MaxBackgroundEvicts
	if maxBG == 0 {
		maxBG = 8
	}
	e := &Engine{
		geom:           opts.Geometry,
		store:          store,
		pos:            pos,
		stash:          NewStash(opts.StashCapacity),
		rand:           opts.Rand,
		evictThreshold: opts.EvictThreshold,
		maxBG:          maxBG,
		autoDrain:      !opts.DisableAutoDrain,
	}
	if opts.RingFlushInterval < 0 {
		return nil, errors.New("oram: negative ring flush interval")
	}
	if opts.RingFlushInterval > 0 {
		reserved := store.Z() / 4
		if reserved < 1 {
			reserved = 1
		}
		if store.Z()-reserved < 1 {
			return nil, fmt.Errorf("oram: ring mode needs Z >= 2, got %d", store.Z())
		}
		e.ringA = opts.RingFlushInterval
		e.ringReserved = reserved
		e.ringInvalid = make(map[uint64]uint64)
	}
	return e, nil
}

// Geometry returns the tree geometry.
func (e *Engine) Geometry() Geometry { return e.geom }

// Store exposes the bucket store (integrity-failure injection in tests and
// advanced inspection).
func (e *Engine) Store() Store { return e.store }

// Stats returns a snapshot of engine statistics.
func (e *Engine) Stats() EngineStats { return e.stats }

// StashLen returns current stash occupancy.
func (e *Engine) StashLen() int { return e.stash.Len() }

// RandomLeaf draws a uniform leaf.
func (e *Engine) RandomLeaf() uint64 { return e.rand.Uint64n(e.geom.Leaves()) }

// PositionOf exposes the internal position map (nil-safe; ok=false without
// a map or for unmapped addresses).
func (e *Engine) PositionOf(addr uint64) (uint64, bool) {
	if e.pos == nil {
		return 0, false
	}
	return e.pos.Get(addr)
}

// Access performs one accessORAM(addr, op, data) operation: position-map
// lookup and remap, path read, block update, greedy writeback, and
// background eviction if the stash ran hot. For OpRead it returns the
// block's payload (zero-filled on first touch in functional mode, nil in
// sparse mode); for OpWrite it stores data.
//
// The returned payload is engine-owned scratch, valid only until the next
// engine operation; callers that retain it must copy.
func (e *Engine) Access(addr uint64, op Op, data []byte) ([]byte, AccessPlan, error) {
	if e.pos == nil {
		return nil, AccessPlan{}, errors.New("oram: Access requires a position map")
	}
	oldLeaf, mapped := e.pos.Get(addr)
	if !mapped {
		oldLeaf = e.RandomLeaf()
	}
	newLeaf := e.RandomLeaf()
	e.pos.Set(addr, newLeaf)

	plan, blk, err := e.accessPath(addr, op, data, oldLeaf, newLeaf, false)
	if err != nil {
		return nil, plan, err
	}
	var out []byte
	if op == OpRead && blk.Data != nil {
		out = blk.Data
	}
	e.stats.Accesses++
	return out, plan, nil
}

// AccessAt is the protocol-facing variant used by the SDIMM backends: the
// caller supplies the old and new leaves (the frontend owns the position
// map). If keep is false the block is removed from this engine and returned
// (Independent protocol: the block migrates to another SDIMM's stash); the
// departing block is held aside during writeback so no stale copy remains
// in this tree.
//
// The returned block's Data (and the plan's Path/BackgroundLeaves) are
// engine-owned scratch, valid only until the next engine operation; callers
// that retain them must copy.
func (e *Engine) AccessAt(addr uint64, op Op, data []byte, oldLeaf, newLeaf uint64, keep bool) (Block, AccessPlan, error) {
	plan, blk, err := e.accessPath(addr, op, data, oldLeaf, newLeaf, !keep)
	if err != nil {
		return Block{}, plan, err
	}
	e.stats.Accesses++
	return blk, plan, nil
}

// accessPath implements the shared body of Access/AccessAt. When migrate is
// set, the accessed block is excluded from this tree's writeback and
// returned for transfer elsewhere.
func (e *Engine) accessPath(addr uint64, op Op, data []byte, oldLeaf, newLeaf uint64, migrate bool) (AccessPlan, Block, error) {
	if e.ringA > 0 {
		return e.ringAccessPath(addr, op, data, oldLeaf, newLeaf, migrate)
	}
	plan := AccessPlan{Addr: addr, OldLeaf: oldLeaf, NewLeaf: newLeaf}
	if !e.geom.ValidLeaf(oldLeaf) {
		return plan, Block{}, fmt.Errorf("oram: old leaf %d out of range", oldLeaf)
	}
	if !migrate && !e.geom.ValidLeaf(newLeaf) {
		return plan, Block{}, fmt.Errorf("oram: new leaf %d out of range", newLeaf)
	}
	path, err := e.ReadPath(oldLeaf)
	if err != nil {
		return plan, Block{}, err
	}
	// ReadPath's result aliases pathBuf, which background eviction below
	// would clobber; hand out a stable copy instead.
	e.planPath = append(e.planPath[:0], path...)
	plan.Path = e.planPath

	blk, found := e.stash.Get(addr)
	plan.Found = found
	if !found {
		blk = Block{Addr: addr, Leaf: newLeaf}
		if hint := e.blockBytesHint(); hint > 0 {
			blk.Data = e.zeroBuf(hint)
		}
	}
	blk.Leaf = newLeaf
	if op == OpWrite && data != nil {
		blk.Data = append(blk.Data[:0], data...)
	}
	if migrate {
		// The block leaves this ORAM entirely: keep it out of writeback.
		e.stash.Remove(addr)
	} else if err := e.stash.Put(blk); err != nil {
		return plan, Block{}, err
	}

	// Snapshot the response payload before writeback: the greedy writeback
	// may place the block back in the tree and recycle its stash buffer.
	if blk.Data != nil {
		e.respBuf = append(e.respBuf[:0], blk.Data...)
		if migrate {
			e.recycle(blk.Data)
		}
		blk.Data = e.respBuf
	}

	if err := e.WritePath(oldLeaf); err != nil {
		return plan, Block{}, err
	}
	if e.autoDrain {
		leaves, err := e.DrainStash()
		if err != nil {
			return plan, Block{}, err
		}
		plan.BackgroundEvicts = len(leaves)
		if len(leaves) > 0 {
			plan.BackgroundLeaves = leaves
		}
	}
	plan.StashAfter = e.stash.Len()
	return plan, blk, nil
}

// blockBytesHint infers the payload size from the store (functional mode).
func (e *Engine) blockBytesHint() int {
	if ms, ok := e.store.(*MemStore); ok {
		return ms.blockBytes
	}
	return 0
}

// ReadPath reads every bucket on the path to leaf into the stash and
// returns the path's bucket indices. It must be paired with a WritePath on
// the same leaf before the next ReadPath (Path ORAM empties what it reads;
// the writeback rewrites the whole path). The returned slice is engine
// scratch, valid only until the next ReadPath.
func (e *Engine) ReadPath(leaf uint64) ([]uint64, error) {
	if e.pending {
		return nil, fmt.Errorf("oram: ReadPath(%d) while path %d is pending writeback", leaf, e.pendingLeaf)
	}
	if !e.geom.ValidLeaf(leaf) {
		return nil, fmt.Errorf("oram: leaf %d out of range", leaf)
	}
	if cap(e.pathBuf) < e.geom.Levels {
		e.pathBuf = make([]uint64, e.geom.Levels)
	}
	path := e.geom.Path(leaf, e.pathBuf[:e.geom.Levels])
	for _, idx := range path {
		if err := e.store.ReadBucketInto(idx, &e.readBkt); err != nil {
			return nil, err
		}
		dead := uint64(0)
		if e.ringA > 0 {
			dead = e.ringInvalid[idx]
		}
		for si, slot := range e.readBkt.Slots {
			if slot.IsDummy() || dead&(1<<uint(si)) != 0 {
				// Ring mode: an invalidated slot is a stale copy of a block
				// whose live version is in the stash (or migrated away) —
				// pulling it in would resurrect old data.
				continue
			}
			// ReadBucketInto's payloads alias store scratch; move them
			// into engine-owned buffers before they enter the stash.
			slot.Data = e.copyIn(slot.Data)
			if err := e.stash.Put(slot); err != nil {
				e.recycle(slot.Data)
				return nil, err
			}
		}
	}
	e.pending = true
	e.pendingLeaf = leaf
	e.stats.PathReads++
	if e.stash.Len() > e.stats.StashPeak {
		e.stats.StashPeak = e.stash.Len()
	}
	return path, nil
}

// WritePath performs the greedy writeback: every bucket on the path to
// leaf is refilled from the stash, deepest level first, with blocks whose
// assigned leaf keeps them on this path.
func (e *Engine) WritePath(leaf uint64) error {
	if !e.pending || e.pendingLeaf != leaf {
		return fmt.Errorf("oram: WritePath(%d) without matching ReadPath", leaf)
	}
	// Deterministic candidate order: sort by address (addresses are unique
	// in the stash, so the order is total and matches the previous
	// sort.Slice selection exactly).
	e.cands = e.cands[:0]
	e.stash.Range(func(b Block) bool {
		e.cands = append(e.cands, b)
		return true
	})
	slices.SortFunc(e.cands, func(a, b Block) int { return cmp.Compare(a.Addr, b.Addr) })
	if e.placed == nil {
		e.placed = make(map[uint64]bool)
	}
	clear(e.placed)

	z := e.store.Z()
	fill := z
	if e.ringA > 0 {
		// Ring mode reserves dummy slots so a freshly written bucket can
		// absorb reads (slot invalidations) before the pointer returns.
		fill = z - e.ringReserved
	}
	for lvl := e.geom.Levels - 1; lvl >= 0; lvl-- {
		resetSlots(&e.writeBkt, z)
		n := 0
		for _, b := range e.cands {
			if n == fill {
				break
			}
			if e.placed[b.Addr] {
				continue
			}
			if e.geom.CommonDepth(b.Leaf, leaf) >= lvl {
				e.writeBkt.Slots[n] = b
				n++
				e.placed[b.Addr] = true
			}
		}
		idx := e.geom.BucketAt(leaf, lvl)
		if err := e.store.WriteBucket(idx, e.writeBkt); err != nil {
			return err
		}
		if e.ringA > 0 {
			// Every slot in the bucket is fresh again.
			delete(e.ringInvalid, idx)
		}
	}
	for addr := range e.placed {
		if blk, ok := e.stash.Remove(addr); ok {
			// The tree now owns the block; its stash payload buffer is free
			// for reuse. (Map iteration order varies, but free-list order is
			// invisible: recycled buffers are fully overwritten on reuse.)
			e.recycle(blk.Data)
		}
	}
	e.pending = false
	e.stats.PathWrites++
	return nil
}

// DrainStash performs background-eviction dummy accesses (read a path,
// write it back) while the stash exceeds the eviction threshold, up to the
// per-access bound. Path mode draws each leaf uniformly; ring mode advances
// the deterministic eviction pointer instead, so a drain consumes no
// randomness. It returns the leaves of the accesses performed; the slice is
// engine scratch, valid only until the next DrainStash.
func (e *Engine) DrainStash() ([]uint64, error) {
	e.leavesBuf = e.leavesBuf[:0]
	for e.stash.Len() > e.evictThreshold && len(e.leavesBuf) < e.maxBG {
		var leaf uint64
		var err error
		if e.ringA > 0 {
			leaf, err = e.ringFlush()
		} else {
			leaf = e.RandomLeaf()
			err = e.EvictPath(leaf)
		}
		if err != nil {
			return e.leavesBuf, err
		}
		e.leavesBuf = append(e.leavesBuf, leaf)
		e.stats.BackgroundEvicts++
	}
	return e.leavesBuf, nil
}

// EvictPath performs one externally-directed eviction access: it reads the
// path to leaf and greedily writes it back. The Split protocol's CPU
// controller calls this on every shard engine with the same leaf so shard
// placements never diverge; it is also a dummy access for timing purposes.
func (e *Engine) EvictPath(leaf uint64) error {
	if _, err := e.ReadPath(leaf); err != nil {
		return err
	}
	return e.WritePath(leaf)
}

// NeedsDrain reports whether the stash exceeds the eviction threshold.
func (e *Engine) NeedsDrain() bool { return e.stash.Len() > e.evictThreshold }

// StashInsert adds a block to the stash (the APPEND command of the
// Independent protocol and the Split protocol's FETCH_DATA destination).
// The payload is copied into an engine-owned buffer; the caller keeps
// ownership of b.Data.
func (e *Engine) StashInsert(b Block) error {
	if !e.geom.ValidLeaf(b.Leaf) {
		return fmt.Errorf("oram: inserting block with leaf %d out of range", b.Leaf)
	}
	if e.stash.Len() > e.stats.StashPeak {
		e.stats.StashPeak = e.stash.Len()
	}
	b.Data = e.copyIn(b.Data)
	if err := e.stash.Put(b); err != nil {
		e.recycle(b.Data)
		return err
	}
	return nil
}

// StashRemove removes and returns the block for addr if present. Ownership
// of the block's payload buffer transfers to the caller.
func (e *Engine) StashRemove(addr uint64) (Block, bool) { return e.stash.Remove(addr) }

// RandState snapshots the engine's randomness stream for a durability
// checkpoint; restoring it makes post-recovery eviction draws replay the
// crashed run's exactly.
func (e *Engine) RandState() [4]uint64 { return e.rand.State() }

// RestoreRandState loads a RandState snapshot.
func (e *Engine) RestoreRandState(s [4]uint64) { e.rand.Restore(s) }

// StashBlocks returns a deep copy of the stash contents sorted by address
// (checkpoint capture; the sort makes the snapshot byte-stable).
func (e *Engine) StashBlocks() []Block {
	out := make([]Block, 0, e.stash.Len())
	e.stash.Range(func(b Block) bool {
		b.Data = append([]byte(nil), b.Data...)
		out = append(out, b)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// RestoreStash replaces the stash contents with blocks (checkpoint
// restore). The engine must be quiescent (no pending path writeback).
// Every block is validated up front — the same leaf-range check StashInsert
// applies, plus dummy and capacity checks — so a corrupted snapshot fails
// closed without disturbing the current stash.
func (e *Engine) RestoreStash(blocks []Block) error {
	if e.pending {
		return fmt.Errorf("oram: RestoreStash while path %d is pending writeback", e.pendingLeaf)
	}
	if len(blocks) > e.stash.Capacity() {
		return fmt.Errorf("%w: restoring %d blocks into capacity %d", ErrStashOverflow, len(blocks), e.stash.Capacity())
	}
	for _, b := range blocks {
		if b.IsDummy() {
			return errors.New("oram: restoring dummy stash block")
		}
		if !e.geom.ValidLeaf(b.Leaf) {
			return fmt.Errorf("oram: restoring block %d with leaf %d out of range", b.Addr, b.Leaf)
		}
	}
	var addrs []uint64
	e.stash.Range(func(b Block) bool {
		addrs = append(addrs, b.Addr)
		return true
	})
	for _, a := range addrs {
		if blk, ok := e.stash.Remove(a); ok {
			e.recycle(blk.Data)
		}
	}
	for _, b := range blocks {
		b.Data = e.copyIn(b.Data)
		if err := e.stash.Put(b); err != nil {
			return err
		}
	}
	return nil
}

// StashGet returns the block for addr without removing it.
func (e *Engine) StashGet(addr uint64) (Block, bool) { return e.stash.Get(addr) }
