package oram

import (
	"errors"
	"fmt"
	"sort"

	"sdimm/internal/rng"
)

// Op is an ORAM operation type. Path ORAM performs identical work for both;
// the type only selects whether payload data flows in or out.
type Op int

// Operations accepted by Access (the accessORAM interface of Section II-C).
const (
	OpRead Op = iota
	OpWrite
)

// AccessPlan records exactly what one accessORAM did: which path was read
// and rewritten, the leaf remapping, and the stash behaviour. The timing
// simulator replays plans as DRAM traffic; tests use them to check
// obliviousness invariants (the path depends only on the old leaf).
type AccessPlan struct {
	Addr             uint64
	OldLeaf          uint64
	NewLeaf          uint64
	Path             []uint64 // bucket indices, root to leaf
	Found            bool     // block was present (false on first touch)
	StashAfter       int
	BackgroundEvicts int // dummy accesses performed to drain the stash
	// BackgroundLeaves are the leaves of those dummy accesses, in order;
	// the timing layer turns each into one more path read+write.
	BackgroundLeaves []uint64
}

// EngineStats counts engine activity.
type EngineStats struct {
	Accesses         uint64
	PathReads        uint64
	PathWrites       uint64
	BackgroundEvicts uint64
	StashPeak        int
}

// Options configures an Engine.
type Options struct {
	Geometry            Geometry
	StashCapacity       int
	EvictThreshold      int // background-evict when stash exceeds this
	MaxBackgroundEvicts int // per Access; 0 means a default of 8
	Rand                *rng.Source
	// DisableAutoDrain turns off the automatic background eviction inside
	// Access/AccessAt. The Split protocol sets it: eviction decisions are
	// made by the CPU-side controller and pushed to every shard engine via
	// EvictPath so all shards stay in lockstep.
	DisableAutoDrain bool
}

// Engine is one Path ORAM instance: tree store + stash + (optionally) a
// position map. With a position map, Access provides the full accessORAM
// operation. Without one, the path-level primitives (ReadPath, WritePath,
// StashInsert, StashRemove) let a distributed protocol drive the engine —
// this is exactly the role of the secure buffer in the Independent
// protocol, where the CPU-side frontend owns the position map.
type Engine struct {
	geom  Geometry
	store Store
	pos   PositionMap
	stash *Stash
	rand  *rng.Source

	evictThreshold int
	maxBG          int
	autoDrain      bool

	pending     bool
	pendingLeaf uint64

	stats EngineStats
}

// NewEngine builds an engine over store. pos may be nil for protocol-driven
// use (Access then returns an error).
func NewEngine(store Store, pos PositionMap, opts Options) (*Engine, error) {
	if store == nil {
		return nil, errors.New("oram: nil store")
	}
	if opts.Geometry.Levels == 0 {
		return nil, errors.New("oram: zero geometry")
	}
	if opts.StashCapacity <= 0 {
		return nil, errors.New("oram: non-positive stash capacity")
	}
	if opts.EvictThreshold <= 0 || opts.EvictThreshold > opts.StashCapacity {
		return nil, errors.New("oram: eviction threshold out of (0, capacity]")
	}
	if opts.Rand == nil {
		return nil, errors.New("oram: nil randomness source")
	}
	maxBG := opts.MaxBackgroundEvicts
	if maxBG == 0 {
		maxBG = 8
	}
	return &Engine{
		geom:           opts.Geometry,
		store:          store,
		pos:            pos,
		stash:          NewStash(opts.StashCapacity),
		rand:           opts.Rand,
		evictThreshold: opts.EvictThreshold,
		maxBG:          maxBG,
		autoDrain:      !opts.DisableAutoDrain,
	}, nil
}

// Geometry returns the tree geometry.
func (e *Engine) Geometry() Geometry { return e.geom }

// Store exposes the bucket store (integrity-failure injection in tests and
// advanced inspection).
func (e *Engine) Store() Store { return e.store }

// Stats returns a snapshot of engine statistics.
func (e *Engine) Stats() EngineStats { return e.stats }

// StashLen returns current stash occupancy.
func (e *Engine) StashLen() int { return e.stash.Len() }

// RandomLeaf draws a uniform leaf.
func (e *Engine) RandomLeaf() uint64 { return e.rand.Uint64n(e.geom.Leaves()) }

// PositionOf exposes the internal position map (nil-safe; ok=false without
// a map or for unmapped addresses).
func (e *Engine) PositionOf(addr uint64) (uint64, bool) {
	if e.pos == nil {
		return 0, false
	}
	return e.pos.Get(addr)
}

// Access performs one accessORAM(addr, op, data) operation: position-map
// lookup and remap, path read, block update, greedy writeback, and
// background eviction if the stash ran hot. For OpRead it returns the
// block's payload (zero-filled on first touch in functional mode, nil in
// sparse mode); for OpWrite it stores data.
func (e *Engine) Access(addr uint64, op Op, data []byte) ([]byte, AccessPlan, error) {
	if e.pos == nil {
		return nil, AccessPlan{}, errors.New("oram: Access requires a position map")
	}
	oldLeaf, mapped := e.pos.Get(addr)
	if !mapped {
		oldLeaf = e.RandomLeaf()
	}
	newLeaf := e.RandomLeaf()
	e.pos.Set(addr, newLeaf)

	plan, blk, err := e.accessPath(addr, op, data, oldLeaf, newLeaf, false)
	if err != nil {
		return nil, plan, err
	}
	var out []byte
	if op == OpRead && blk.Data != nil {
		out = append([]byte(nil), blk.Data...)
	}
	e.stats.Accesses++
	return out, plan, nil
}

// AccessAt is the protocol-facing variant used by the SDIMM backends: the
// caller supplies the old and new leaves (the frontend owns the position
// map). If keep is false the block is removed from this engine and returned
// (Independent protocol: the block migrates to another SDIMM's stash); the
// departing block is held aside during writeback so no stale copy remains
// in this tree.
func (e *Engine) AccessAt(addr uint64, op Op, data []byte, oldLeaf, newLeaf uint64, keep bool) (Block, AccessPlan, error) {
	plan, blk, err := e.accessPath(addr, op, data, oldLeaf, newLeaf, !keep)
	if err != nil {
		return Block{}, plan, err
	}
	e.stats.Accesses++
	return blk, plan, nil
}

// accessPath implements the shared body of Access/AccessAt. When migrate is
// set, the accessed block is excluded from this tree's writeback and
// returned for transfer elsewhere.
func (e *Engine) accessPath(addr uint64, op Op, data []byte, oldLeaf, newLeaf uint64, migrate bool) (AccessPlan, Block, error) {
	plan := AccessPlan{Addr: addr, OldLeaf: oldLeaf, NewLeaf: newLeaf}
	if !e.geom.ValidLeaf(oldLeaf) {
		return plan, Block{}, fmt.Errorf("oram: old leaf %d out of range", oldLeaf)
	}
	if !migrate && !e.geom.ValidLeaf(newLeaf) {
		return plan, Block{}, fmt.Errorf("oram: new leaf %d out of range", newLeaf)
	}
	path, err := e.ReadPath(oldLeaf)
	if err != nil {
		return plan, Block{}, err
	}
	plan.Path = path

	blk, found := e.stash.Get(addr)
	plan.Found = found
	if !found {
		blk = Block{Addr: addr, Leaf: newLeaf}
		if e.blockBytesHint() > 0 {
			blk.Data = make([]byte, e.blockBytesHint())
		}
	}
	blk.Leaf = newLeaf
	if op == OpWrite && data != nil {
		blk.Data = append([]byte(nil), data...)
	}
	if migrate {
		// The block leaves this ORAM entirely: keep it out of writeback.
		e.stash.Remove(addr)
	} else if err := e.stash.Put(blk); err != nil {
		return plan, Block{}, err
	}

	if err := e.WritePath(oldLeaf); err != nil {
		return plan, Block{}, err
	}
	if e.autoDrain {
		leaves, err := e.DrainStash()
		if err != nil {
			return plan, Block{}, err
		}
		plan.BackgroundEvicts = len(leaves)
		plan.BackgroundLeaves = leaves
	}
	plan.StashAfter = e.stash.Len()
	return plan, blk, nil
}

// blockBytesHint infers the payload size from the store (functional mode).
func (e *Engine) blockBytesHint() int {
	if ms, ok := e.store.(*MemStore); ok {
		return ms.blockBytes
	}
	return 0
}

// ReadPath reads every bucket on the path to leaf into the stash and
// returns the path's bucket indices. It must be paired with a WritePath on
// the same leaf before the next ReadPath (Path ORAM empties what it reads;
// the writeback rewrites the whole path).
func (e *Engine) ReadPath(leaf uint64) ([]uint64, error) {
	if e.pending {
		return nil, fmt.Errorf("oram: ReadPath(%d) while path %d is pending writeback", leaf, e.pendingLeaf)
	}
	if !e.geom.ValidLeaf(leaf) {
		return nil, fmt.Errorf("oram: leaf %d out of range", leaf)
	}
	path := e.geom.Path(leaf, nil)
	for _, idx := range path {
		b, err := e.store.ReadBucket(idx)
		if err != nil {
			return nil, err
		}
		for _, slot := range b.Slots {
			if slot.IsDummy() {
				continue
			}
			if err := e.stash.Put(slot); err != nil {
				return nil, err
			}
		}
	}
	e.pending = true
	e.pendingLeaf = leaf
	e.stats.PathReads++
	if e.stash.Len() > e.stats.StashPeak {
		e.stats.StashPeak = e.stash.Len()
	}
	return path, nil
}

// WritePath performs the greedy writeback: every bucket on the path to
// leaf is refilled from the stash, deepest level first, with blocks whose
// assigned leaf keeps them on this path.
func (e *Engine) WritePath(leaf uint64) error {
	if !e.pending || e.pendingLeaf != leaf {
		return fmt.Errorf("oram: WritePath(%d) without matching ReadPath", leaf)
	}
	// Deterministic candidate order: sort by address.
	cands := make([]Block, 0, e.stash.Len())
	e.stash.Range(func(b Block) bool {
		cands = append(cands, b)
		return true
	})
	sort.Slice(cands, func(i, j int) bool { return cands[i].Addr < cands[j].Addr })
	placed := make(map[uint64]bool)

	z := e.store.Z()
	for lvl := e.geom.Levels - 1; lvl >= 0; lvl-- {
		bucket := NewBucket(z)
		n := 0
		for _, b := range cands {
			if n == z {
				break
			}
			if placed[b.Addr] {
				continue
			}
			if e.geom.CommonDepth(b.Leaf, leaf) >= lvl {
				bucket.Slots[n] = b
				n++
				placed[b.Addr] = true
			}
		}
		if err := e.store.WriteBucket(e.geom.BucketAt(leaf, lvl), bucket); err != nil {
			return err
		}
	}
	for addr := range placed {
		e.stash.Remove(addr)
	}
	e.pending = false
	e.stats.PathWrites++
	return nil
}

// DrainStash performs background-eviction dummy accesses (read a random
// path, write it back) while the stash exceeds the eviction threshold, up
// to the per-access bound. It returns the leaves of the accesses performed.
func (e *Engine) DrainStash() ([]uint64, error) {
	var leaves []uint64
	for e.stash.Len() > e.evictThreshold && len(leaves) < e.maxBG {
		leaf := e.RandomLeaf()
		if err := e.EvictPath(leaf); err != nil {
			return leaves, err
		}
		leaves = append(leaves, leaf)
		e.stats.BackgroundEvicts++
	}
	return leaves, nil
}

// EvictPath performs one externally-directed eviction access: it reads the
// path to leaf and greedily writes it back. The Split protocol's CPU
// controller calls this on every shard engine with the same leaf so shard
// placements never diverge; it is also a dummy access for timing purposes.
func (e *Engine) EvictPath(leaf uint64) error {
	if _, err := e.ReadPath(leaf); err != nil {
		return err
	}
	return e.WritePath(leaf)
}

// NeedsDrain reports whether the stash exceeds the eviction threshold.
func (e *Engine) NeedsDrain() bool { return e.stash.Len() > e.evictThreshold }

// StashInsert adds a block to the stash (the APPEND command of the
// Independent protocol and the Split protocol's FETCH_DATA destination).
func (e *Engine) StashInsert(b Block) error {
	if !e.geom.ValidLeaf(b.Leaf) {
		return fmt.Errorf("oram: inserting block with leaf %d out of range", b.Leaf)
	}
	if e.stash.Len() > e.stats.StashPeak {
		e.stats.StashPeak = e.stash.Len()
	}
	return e.stash.Put(b)
}

// StashRemove removes and returns the block for addr if present.
func (e *Engine) StashRemove(addr uint64) (Block, bool) { return e.stash.Remove(addr) }

// RandState snapshots the engine's randomness stream for a durability
// checkpoint; restoring it makes post-recovery eviction draws replay the
// crashed run's exactly.
func (e *Engine) RandState() [4]uint64 { return e.rand.State() }

// RestoreRandState loads a RandState snapshot.
func (e *Engine) RestoreRandState(s [4]uint64) { e.rand.Restore(s) }

// StashBlocks returns a deep copy of the stash contents sorted by address
// (checkpoint capture; the sort makes the snapshot byte-stable).
func (e *Engine) StashBlocks() []Block {
	out := make([]Block, 0, e.stash.Len())
	e.stash.Range(func(b Block) bool {
		b.Data = append([]byte(nil), b.Data...)
		out = append(out, b)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// RestoreStash replaces the stash contents with blocks (checkpoint
// restore). The engine must be quiescent (no pending path writeback).
func (e *Engine) RestoreStash(blocks []Block) error {
	if e.pending {
		return fmt.Errorf("oram: RestoreStash while path %d is pending writeback", e.pendingLeaf)
	}
	var addrs []uint64
	e.stash.Range(func(b Block) bool {
		addrs = append(addrs, b.Addr)
		return true
	})
	for _, a := range addrs {
		e.stash.Remove(a)
	}
	for _, b := range blocks {
		b.Data = append([]byte(nil), b.Data...)
		if err := e.stash.Put(b); err != nil {
			return err
		}
	}
	return nil
}

// StashGet returns the block for addr without removing it.
func (e *Engine) StashGet(addr uint64) (Block, bool) { return e.stash.Get(addr) }
