package oram

import "sync"

// ShardedPosMap is a position map cut into power-of-two shards, each behind
// its own mutex, routed by the low bits of the address. It exists for the
// parallel cluster pipeline: position-map commits happen on the per-SDIMM
// worker that executed the access, concurrently with commits for other
// addresses of the same wave and with the coordinator's re-home repoints —
// the monolithic map would serialize all of them on the coordinator.
//
// Concurrency contract: Get/Set/Len are safe for concurrent use from any
// goroutine; operations on different addresses in different shards never
// contend. A single address still linearizes through its shard's mutex, and
// the pipeline additionally guarantees (by wave scheduling) that no two
// in-flight tasks ever operate on the same address. Each locks one shard at
// a time — it is a quiescent-point snapshot (checkpoints, equivalence
// harnesses), not an atomic view across concurrent writers, and fn must not
// call back into the map.
type ShardedPosMap struct {
	mask   uint64
	shards []posShard
}

type posShard struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

// NewShardedPosMap builds a map with shards rounded up to the next power of
// two (minimum 1), so routing is a mask of the address low bits.
func NewShardedPosMap(shards int) *ShardedPosMap {
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &ShardedPosMap{
		mask:   uint64(n - 1),
		shards: make([]posShard, n),
	}
	for i := range m.shards {
		m.shards[i].m = make(map[uint64]uint64)
	}
	return m
}

func (m *ShardedPosMap) shard(addr uint64) *posShard {
	return &m.shards[addr&m.mask]
}

// Get implements PositionMap.
func (m *ShardedPosMap) Get(addr uint64) (uint64, bool) {
	s := m.shard(addr)
	s.mu.Lock()
	l, ok := s.m[addr]
	s.mu.Unlock()
	return l, ok
}

// Set implements PositionMap.
func (m *ShardedPosMap) Set(addr uint64, leaf uint64) {
	s := m.shard(addr)
	s.mu.Lock()
	s.m[addr] = leaf
	s.mu.Unlock()
}

// Len implements PositionMap.
func (m *ShardedPosMap) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Each implements PositionMap: shards are visited in index order, entries
// within a shard in unspecified order. Callers that need determinism sort
// the collected entries (capturePositions does).
func (m *ShardedPosMap) Each(fn func(addr, leaf uint64)) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for a, l := range s.m {
			fn(a, l)
		}
		s.mu.Unlock()
	}
}
