package oram

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"sdimm/internal/raceflag"
)

// TestAccessZeroAlloc is the allocation gate for the engine hot path: once
// the scratch buffers, free list, position map, and stash have grown to
// their steady-state sizes, a full accessORAM (path read, remap, writeback,
// background eviction) must not touch the heap.
func TestAccessZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc gates run without -race")
	}
	e, _ := newTestEngine(t, 8, true)
	buf := make([]byte, 64)
	const addrs = 32
	// Warm-up: first touches grow the position map, the stash map, the
	// engine scratch, and the payload free list.
	for i := 0; i < 400; i++ {
		if _, _, err := e.Access(uint64(i%addrs), OpWrite, buf); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		op := OpRead
		if i%2 == 0 {
			op = OpWrite
		}
		if _, _, err := e.Access(uint64(i%addrs), op, buf); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Engine.Access allocates %.1f objects per op in steady state, want 0", allocs)
	}
}

// TestRestoreStashRejectsCorruptSnapshot is the regression test for the
// checkpoint-restore validation gap: RestoreStash must apply the same
// leaf-range check StashInsert does, so a hand-corrupted snapshot fails
// closed and leaves the live stash untouched.
func TestRestoreStashRejectsCorruptSnapshot(t *testing.T) {
	e, _ := newTestEngine(t, 6, true)
	payload := bytes.Repeat([]byte{0xAB}, 64)
	leaves := e.Geometry().Leaves()
	for a := uint64(0); a < 5; a++ {
		if err := e.StashInsert(Block{Addr: a, Leaf: a % leaves, Data: payload}); err != nil {
			t.Fatal(err)
		}
	}
	before := e.StashBlocks()

	// An out-of-range leaf (valid leaves are [0, Leaves)) must be rejected.
	snap := e.StashBlocks()
	snap[2].Leaf = leaves
	if err := e.RestoreStash(snap); err == nil {
		t.Fatal("RestoreStash accepted a snapshot with an out-of-range leaf")
	}

	// A dummy slot smuggled into the snapshot must be rejected too.
	snap = e.StashBlocks()
	snap[0].Addr = DummyAddr
	if err := e.RestoreStash(snap); err == nil {
		t.Fatal("RestoreStash accepted a snapshot containing a dummy block")
	}

	// A snapshot larger than the stash can hold must fail with
	// ErrStashOverflow before any block is admitted.
	big := make([]Block, e.stash.Capacity()+1)
	for i := range big {
		big[i] = Block{Addr: uint64(i), Leaf: uint64(i) % leaves, Data: payload}
	}
	if err := e.RestoreStash(big); !errors.Is(err, ErrStashOverflow) {
		t.Fatalf("oversized snapshot: got %v, want ErrStashOverflow", err)
	}

	// Fail closed: every rejection above left the original stash intact.
	if got := e.StashBlocks(); !reflect.DeepEqual(got, before) {
		t.Fatalf("stash disturbed by rejected restore:\n%+v\nwant\n%+v", got, before)
	}

	// The corrected snapshot still restores cleanly.
	if err := e.RestoreStash(before); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	if got := e.StashBlocks(); !reflect.DeepEqual(got, before) {
		t.Fatalf("restored stash differs from snapshot:\n%+v\nwant\n%+v", got, before)
	}
}
