package oram

import (
	"testing"
	"testing/quick"
)

func TestNewGeometryBounds(t *testing.T) {
	if _, err := NewGeometry(0); err == nil {
		t.Error("levels 0 accepted")
	}
	if _, err := NewGeometry(49); err == nil {
		t.Error("levels 49 accepted")
	}
	g, err := NewGeometry(5)
	if err != nil || g.Levels != 5 {
		t.Fatalf("NewGeometry(5) = %v, %v", g, err)
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeometry(0) did not panic")
		}
	}()
	MustGeometry(0)
}

func TestCounts(t *testing.T) {
	g := MustGeometry(4)
	if g.Leaves() != 8 {
		t.Errorf("Leaves = %d, want 8", g.Leaves())
	}
	if g.Buckets() != 15 {
		t.Errorf("Buckets = %d, want 15", g.Buckets())
	}
	if g.CapacityBlocks(4) != 30 {
		t.Errorf("CapacityBlocks(4) = %d, want 30", g.CapacityBlocks(4))
	}
}

func TestLevelOf(t *testing.T) {
	g := MustGeometry(4)
	want := map[uint64]int{0: 0, 1: 1, 2: 1, 3: 2, 6: 2, 7: 3, 14: 3}
	for b, lvl := range want {
		if got := g.LevelOf(b); got != lvl {
			t.Errorf("LevelOf(%d) = %d, want %d", b, got, lvl)
		}
	}
}

func TestPathStructure(t *testing.T) {
	g := MustGeometry(5)
	for leaf := uint64(0); leaf < g.Leaves(); leaf++ {
		p := g.Path(leaf, nil)
		if len(p) != g.Levels {
			t.Fatalf("path length %d", len(p))
		}
		if p[0] != 0 {
			t.Fatalf("path does not start at root: %v", p)
		}
		if p[g.Levels-1] != g.Buckets()-g.Leaves()+leaf {
			t.Fatalf("leaf bucket wrong for leaf %d: %v", leaf, p)
		}
		for i := 1; i < len(p); i++ {
			parent := (p[i] - 1) / 2
			if parent != p[i-1] {
				t.Fatalf("path not parent-linked at %d: %v", i, p)
			}
		}
	}
}

func TestPathReuseBuffer(t *testing.T) {
	g := MustGeometry(4)
	buf := make([]uint64, g.Levels)
	p := g.Path(3, buf)
	if &p[0] != &buf[0] {
		t.Fatal("Path did not reuse caller buffer")
	}
}

func TestBucketAtPanicsOutOfRange(t *testing.T) {
	g := MustGeometry(4)
	defer func() {
		if recover() == nil {
			t.Fatal("BucketAt(leaf, 99) did not panic")
		}
	}()
	g.BucketAt(0, 99)
}

func TestCommonDepth(t *testing.T) {
	g := MustGeometry(4) // 8 leaves, depth 0..3
	cases := []struct {
		a, b uint64
		want int
	}{
		{0, 0, 3},
		{0, 1, 2},
		{0, 2, 1},
		{0, 3, 1},
		{0, 4, 0},
		{0, 7, 0},
		{6, 7, 2},
	}
	for _, c := range cases {
		if got := g.CommonDepth(c.a, c.b); got != c.want {
			t.Errorf("CommonDepth(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: CommonDepth(a,b) is exactly the number of shared buckets minus
// one between the two paths, and it is symmetric.
func TestPropertyCommonDepthMatchesPaths(t *testing.T) {
	g := MustGeometry(10)
	f := func(a, b uint64) bool {
		a %= g.Leaves()
		b %= g.Leaves()
		if g.CommonDepth(a, b) != g.CommonDepth(b, a) {
			return false
		}
		pa := g.Path(a, nil)
		pb := g.Path(b, nil)
		shared := 0
		for i := range pa {
			if pa[i] == pb[i] {
				shared = i
			} else {
				break
			}
		}
		return g.CommonDepth(a, b) == shared
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BucketAt is consistent with LevelOf and bucket indexing.
func TestPropertyBucketAtLevel(t *testing.T) {
	g := MustGeometry(12)
	f := func(leaf uint64, lvl uint8) bool {
		leaf %= g.Leaves()
		l := int(lvl) % g.Levels
		b := g.BucketAt(leaf, l)
		return g.LevelOf(b) == l && b < g.Buckets()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
