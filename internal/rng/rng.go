// Package rng provides the deterministic pseudo-random number generators
// used throughout the simulator. Every source of randomness (leaf
// remapping, trace generation, scheduling tie-breaks) is seeded explicitly
// so that simulation runs are exactly reproducible.
//
// The generator is xoshiro256**, seeded through SplitMix64 as its authors
// recommend. It is not cryptographically secure; cryptographic randomness
// (session keys, nonces) lives in package seccomm.
package rng

import "math/bits"

// SplitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand a single 64-bit seed into generator state.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256** generator. The zero value is not
// valid; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	var src Source
	st := seed
	for i := range src.s {
		src.s[i] = SplitMix64(&st)
	}
	// All-zero state is the one invalid state for xoshiro; the SplitMix
	// expansion cannot produce it, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift method with rejection to avoid modulo bias.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n(0)")
	}
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n) as an int. It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (support {1, 2, ...}: the number of trials up to and
// including the first success). p must be in (0, 1].
func (r *Source) Geometric(p float64) uint64 {
	if p <= 0 || p > 1 {
		panic("rng: Geometric probability out of (0,1]")
	}
	if p == 1 {
		return 1
	}
	n := uint64(1)
	for !r.Bool(p) {
		n++
		// Cap pathological streaks so a bad p cannot hang a simulation.
		if n == 1<<32 {
			break
		}
	}
	return n
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// State snapshots the generator's internal state. Together with Restore it
// lets a checkpoint capture every randomness stream in the system, so a
// recovered run replays exactly the draws the crashed run would have made.
func (r *Source) State() [4]uint64 { return r.s }

// Restore overwrites the generator's internal state with a snapshot taken
// by State. The all-zero state is invalid for xoshiro and is coerced to a
// minimal non-zero state rather than wedging the generator.
func (r *Source) Restore(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 1
	}
	r.s = s
}

// Fork derives an independent generator from this one. Streams forked at
// different points are statistically independent for simulation purposes.
func (r *Source) Fork() *Source {
	return New(r.Uint64())
}

// Stream derives an independent generator from (seed, domain, index) — the
// seed-derivation scheme of the parallel engines. The domain string keeps
// unrelated subsystems (worker RNGs, benchmark workloads, shard schedules)
// off each other's streams even at equal indices, and the whole derivation
// is a pure function of its arguments, so a Parallelism: 1 run and a
// Parallelism: N run hand every worker exactly the same stream.
func Stream(seed uint64, domain string, index int) *Source {
	st := seed
	for _, b := range []byte(domain) {
		st ^= uint64(b)
		SplitMix64(&st)
	}
	st ^= uint64(index)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	return New(SplitMix64(&st))
}
