package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for SplitMix64 with seed 0 (from the public-domain
	// reference implementation by Sebastiano Vigna).
	st := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&st); got != w {
			t.Fatalf("SplitMix64 draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ≈ 0.5", mean)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const buckets = 8
	const n = 80000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d count %d deviates from %v by >5%%", b, c, want)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const p = 0.25
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	if math.Abs(mean-1/p) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ≈ %v", p, mean, 1/p)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(17)
	if v := r.Geometric(1); v != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	out := make([]int, 64)
	r.Perm(out)
	seen := make(map[int]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", out)
		}
		seen[v] = true
	}
}

func TestStreamDerivation(t *testing.T) {
	a := Stream(42, "worker", 3)
	b := Stream(42, "worker", 3)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Stream is not a pure function of (seed, domain, index)")
		}
	}
	// Different index, domain, or seed must decorrelate the first outputs.
	base := Stream(42, "worker", 3).Uint64()
	for name, s := range map[string]*Source{
		"index":  Stream(42, "worker", 4),
		"domain": Stream(42, "shard", 3),
		"seed":   Stream(43, "worker", 3),
	} {
		if s.Uint64() == base {
			t.Errorf("Stream variation %q produced the same first output", name)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(23)
	f := r.Fork()
	// The fork and parent should not track each other.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork mirrors parent: %d/100 identical draws", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", got)
	}
}

// Property: Uint64n(n) is always < n for arbitrary seeds and n.
func TestPropertyUint64nBounded(t *testing.T) {
	f := func(seed, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 32; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
