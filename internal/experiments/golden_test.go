package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sdimm/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the golden experiment tables")

// goldenOptions is the fixed-seed scale the golden tables are pinned at:
// small enough to run in seconds, large enough that every backend does real
// evictions and queueing. Changing it invalidates every golden file.
func goldenOptions() Options {
	return Options{Warmup: 120, Measure: 300, Levels: 22, Seed: 1,
		Workloads: []string{"milc", "gromacs", "mcf"}}
}

// TestGoldenTables regression-pins the paper's headline tables: a seeded
// experiments run must reproduce the checked-in JSON byte-for-byte. Any
// change to the simulator, protocols, DRAM model, or RNG that shifts a
// single cell fails here first. Refresh intentionally with:
//
//	go test ./internal/experiments -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	cases := []struct {
		name string
		gen  func(Options) (*stats.Table, error)
	}{
		{"fig6", Fig6},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"offdimm", OffDIMM},
		{"latency", Latency},
		{"ring", Ring},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tab, err := c.gen(goldenOptions())
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(tab, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", c.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the golden file)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted from golden; diff the table below against %s and "+
					"rerun with -update if the change is intentional:\n%s", c.name, path, tab)
			}
			// The golden bytes must also round-trip through the Table JSON
			// codec, or the stored file could not be audited or reused.
			var back stats.Table
			if err := json.Unmarshal(want, &back); err != nil {
				t.Fatalf("golden file does not parse as a Table: %v", err)
			}
		})
	}
}
