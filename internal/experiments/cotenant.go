package experiments

import (
	"fmt"

	"sdimm/internal/config"
	"sdimm/internal/cpusim"
	"sdimm/internal/event"
	"sdimm/internal/protocol"
	"sdimm/internal/stats"
	"sdimm/internal/trace"
)

// CoTenant evaluates the co-residency claim of Section III-A: a non-secure
// VM shares the machine with a secure tenant. Under the Freecursive
// baseline the ORAM's shuffle traffic saturates the shared channels and
// the non-secure VM's memory latency balloons; under the Independent SDIMM
// protocol the shuffle stays on the DIMMs and the non-secure VM is barely
// disturbed. Reported: the tenant's average memory latency normalized to
// running alone.
func CoTenant(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	const tenantWorkload = "milc"

	t := stats.NewTable("Co-tenant memory latency vs running alone",
		"with-freecursive", "with-indep-sdimm")
	for _, w := range o.Workloads {
		alone, err := tenantAlone(o, tenantWorkload)
		if err != nil {
			return nil, err
		}
		shared, err := tenantWith(o, config.Freecursive, w, tenantWorkload)
		if err != nil {
			return nil, err
		}
		sdimm, err := tenantWith(o, config.Independent, w, tenantWorkload)
		if err != nil {
			return nil, err
		}
		t.Set(w, "with-freecursive", shared/alone)
		t.Set(w, "with-indep-sdimm", sdimm/alone)
	}
	return t, nil
}

// tenantAlone measures the tenant's average miss latency with the machine
// to itself (its own LRDIMM, empty host links).
func tenantAlone(o Options, tenantWorkload string) (float64, error) {
	cfg := o.configFor(config.Independent, 2)
	eng := &event.Engine{}
	backend, err := protocol.NewIndependent(eng, cfg)
	if err != nil {
		return 0, err
	}
	tenant, err := protocol.NewTenantOnLinks(eng, cfg, backend.Links())
	if err != nil {
		return 0, err
	}
	core, err := tenantCore(eng, cfg, tenant, tenantWorkload, o)
	if err != nil {
		return 0, err
	}
	core.Start(nil)
	eng.RunWhile(func() bool { return !core.Done() })
	return core.Stats().AvgMissLatency(), nil
}

// tenantWith measures the tenant's latency while a secure tenant runs the
// given protocol alongside.
func tenantWith(o Options, p config.Protocol, secureWorkload, tenantWorkload string) (float64, error) {
	cfg := o.configFor(p, 2)
	eng := &event.Engine{}
	backend, err := protocol.New(eng, cfg)
	if err != nil {
		return 0, err
	}

	var tenant *protocol.TenantMem
	switch p {
	case config.Freecursive:
		chans, _ := backend.Channels()
		tenant, err = protocol.NewTenantOnChannels(eng, cfg.Org, chans)
	default:
		tenant, err = protocol.NewTenantOnLinks(eng, cfg, backend.Links())
	}
	if err != nil {
		return 0, err
	}

	secureProf, err := trace.ProfileByName(secureWorkload)
	if err != nil {
		return 0, err
	}
	secureRecs, err := secureProf.Generate(o.Warmup+o.Measure, o.Seed)
	if err != nil {
		return 0, err
	}
	secureCore, err := cpusim.New(eng, backend, cpusim.Config{
		LLCLines: cfg.LLCBytes / cfg.Org.LineBytes, LLCWays: cfg.LLCWays,
		LLCLatency: cfg.LLCLatency, ROB: cfg.ROBSize,
	}, secureRecs)
	if err != nil {
		return 0, err
	}

	tenantCoreV, err := tenantCore(eng, cfg, tenant, tenantWorkload, o)
	if err != nil {
		return 0, err
	}

	secureCore.Start(nil)
	tenantCoreV.Start(nil)
	// Measure the tenant while the secure tenant is actually running:
	// stop when the tenant finishes or the secure side runs dry.
	eng.RunWhile(func() bool { return !tenantCoreV.Done() && !secureCore.Done() })
	lat := tenantCoreV.Stats().AvgMissLatency()
	if lat == 0 {
		return 0, fmt.Errorf("cotenant: tenant made no progress under %v", p)
	}
	return lat, nil
}

func tenantCore(eng *event.Engine, cfg config.Config, mem cpusim.Memory, workload string, o Options) (*cpusim.Core, error) {
	prof, err := trace.ProfileByName(workload)
	if err != nil {
		return nil, err
	}
	recs, err := prof.Generate(o.Warmup+o.Measure, o.Seed^0xc07e)
	if err != nil {
		return nil, err
	}
	return cpusim.New(eng, mem, cpusim.Config{
		LLCLines: cfg.LLCBytes / cfg.Org.LineBytes, LLCWays: cfg.LLCWays,
		LLCLatency: cfg.LLCLatency, ROB: cfg.ROBSize,
	}, recs)
}
