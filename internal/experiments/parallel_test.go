package experiments

import (
	"reflect"
	"testing"

	"sdimm/internal/config"
	"sdimm/internal/sim"
	"sdimm/internal/telemetry"
)

// TestCampaignParallelEquivalence is the determinism-equivalence suite for
// the campaign runner: for every backend, a Parallel: 4 campaign must
// reproduce the Parallel: 1 campaign bit-for-bit from the same seed — every
// sim.Result field including the protocol.miss_latency histogram and stash
// peaks, and the merged telemetry registry (counters, gauges, means,
// histograms). Cluster-level state (final position map, per-buffer stash
// contents) is pinned by the pipeline equivalence tests in the root package;
// this test pins the experiment layer above it.
func TestCampaignParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	backends := []struct {
		p        config.Protocol
		channels int
	}{
		{config.NonSecure, 1},
		{config.Freecursive, 1},
		{config.Independent, 1},
		{config.Split, 1},
		{config.IndepSplit, 2}, // needs ≥4 SDIMMs, i.e. two channels
		{config.Ring, 1},
	}
	for _, b := range backends {
		b := b
		t.Run(b.p.String(), func(t *testing.T) {
			run := func(parallel int) (map[string]sim.Result, telemetry.Snapshot) {
				o := Options{
					Warmup:   60,
					Measure:  160,
					Levels:   20,
					Seed:     1,
					Parallel: parallel,
					// Workloads defaulted: all 10 profiles.
					Telemetry: telemetry.NewRegistry(),
				}
				res, err := Campaign(o, []config.Protocol{b.p}, b.channels)
				if err != nil {
					t.Fatal(err)
				}
				snap := o.Telemetry.Snapshot()
				return res, snap
			}
			seqRes, seqSnap := run(1)
			parRes, parSnap := run(4)

			if len(seqRes) != 10 {
				t.Fatalf("campaign returned %d results, want one per workload (10)", len(seqRes))
			}
			if len(parRes) != len(seqRes) {
				t.Fatalf("parallel campaign returned %d results, sequential %d", len(parRes), len(seqRes))
			}
			for k, want := range seqRes {
				got, ok := parRes[k]
				if !ok {
					t.Errorf("%s: missing from parallel campaign", k)
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s: parallel result diverged from sequential\nseq: %+v\npar: %+v", k, want, got)
				}
			}
			if !reflect.DeepEqual(seqSnap, parSnap) {
				t.Errorf("merged telemetry diverged between Parallel 1 and 4")
				diffSnapshots(t, seqSnap, parSnap)
			}
		})
	}
}

// diffSnapshots narrows a snapshot mismatch to the offending section so a
// failure names the metric, not just "not equal".
func diffSnapshots(t *testing.T, a, b telemetry.Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		for k, v := range a.Counters {
			if b.Counters[k] != v {
				t.Errorf("counter %s: %d vs %d", k, v, b.Counters[k])
			}
		}
		for k := range b.Counters {
			if _, ok := a.Counters[k]; !ok {
				t.Errorf("counter %s only in parallel run", k)
			}
		}
	}
	if !reflect.DeepEqual(a.Gauges, b.Gauges) {
		t.Errorf("gauges diverged: %v vs %v", a.Gauges, b.Gauges)
	}
	if !reflect.DeepEqual(a.Means, b.Means) {
		t.Errorf("means diverged: %v vs %v", a.Means, b.Means)
	}
	if !reflect.DeepEqual(a.Histograms, b.Histograms) {
		for k, v := range a.Histograms {
			if !reflect.DeepEqual(b.Histograms[k], v) {
				t.Errorf("histogram %s diverged", k)
			}
		}
	}
}

// TestCampaignErrorDeterminism pins that a failing campaign reports the same
// (first-in-job-order) error regardless of Parallel.
func TestCampaignErrorDeterminism(t *testing.T) {
	run := func(parallel int) string {
		o := Options{
			Warmup:    10,
			Measure:   20,
			Levels:    22,
			Seed:      1,
			Parallel:  parallel,
			Workloads: []string{"milc", "no-such-workload", "also-missing"},
		}
		_, err := Campaign(o, []config.Protocol{config.NonSecure}, 1)
		if err == nil {
			t.Fatal("campaign over unknown workloads succeeded")
		}
		return err.Error()
	}
	seq := run(1)
	if par := run(4); par != seq {
		t.Errorf("error nondeterministic across Parallel: %q vs %q", seq, par)
	}
}
