package experiments

import "testing"

func TestCoTenantShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := tiny()
	o.Workloads = []string{"milc"}
	tb, err := CoTenant(o)
	if err != nil {
		t.Fatal(err)
	}
	fc := tb.ColGeoMean("with-freecursive")
	sd := tb.ColGeoMean("with-indep-sdimm")
	if sd >= fc {
		t.Fatalf("tenant latency under SDIMM (%v) not below under Freecursive (%v)", sd, fc)
	}
	// SDIMM co-residency should leave the tenant nearly undisturbed.
	if sd > 2.0 {
		t.Errorf("tenant disturbed %.2fx under SDIMM, want near 1x", sd)
	}
	if fc < 1.2 {
		t.Errorf("tenant disturbed only %.2fx under Freecursive, expected heavy contention", fc)
	}
}
