package experiments

import (
	"strings"
	"testing"
)

// tiny returns options small enough for unit tests.
func tiny() Options {
	return Options{
		Warmup:    120,
		Measure:   300,
		Levels:    22,
		Seed:      1,
		Workloads: []string{"milc", "gromacs"},
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	s1 := tb.ColGeoMean("slowdown-1ch")
	s2 := tb.ColGeoMean("slowdown-2ch")
	if s1 <= 1 || s2 <= 1 {
		t.Fatalf("ORAM not slower than non-secure: %v / %v", s1, s2)
	}
	if s2 >= s1 {
		t.Fatalf("2-channel slowdown %v not below 1-channel %v", s2, s1)
	}
	apm := tb.ColGeoMean("accessORAM/miss")
	if apm < 1 || apm > 3 {
		t.Fatalf("accessORAM/miss = %v", apm)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"independent", "split"} {
		v := tb.ColGeoMean(col)
		if v <= 0 || v >= 1 {
			t.Errorf("%s normalized time = %v, want (0, 1)", col, v)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	is := tb.ColGeoMean("indep-split")
	if is <= 0 || is >= 1 {
		t.Fatalf("indep-split normalized time = %v", is)
	}
	// The combined protocol is the paper's overall winner.
	if ind := tb.ColGeoMean("independent"); is >= ind {
		t.Errorf("indep-split %v not better than independent %v", is, ind)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb, err := Fig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	fc := tb.ColGeoMean("freecursive-1ch")
	sp := tb.ColGeoMean("split2-1ch")
	if fc <= 1 {
		t.Fatalf("freecursive energy overhead %v not above non-secure", fc)
	}
	if sp >= fc {
		t.Fatalf("split energy overhead %v not below freecursive %v", sp, fc)
	}
}

func TestFig13aShape(t *testing.T) {
	series, err := Fig13a([]int{50_000, 100_000}, []int{16, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	// Small queue must overflow with (much) higher probability.
	small := series[0].Y[len(series[0].Y)-1]
	big := series[1].Y[len(series[1].Y)-1]
	if small <= big {
		t.Fatalf("P(16)=%v not above P(256)=%v", small, big)
	}
	if !strings.Contains(series[0].Name, "16") {
		t.Fatalf("series name %q", series[0].Name)
	}
}

func TestFig13bShape(t *testing.T) {
	series, err := Fig13b(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("%d series", len(series))
	}
	// Higher drain probability => lower overflow at equal K.
	if series[0].Y[0] <= series[4].Y[0] {
		t.Fatalf("p ordering violated: %v vs %v", series[0].Y[0], series[4].Y[0])
	}
}

func TestAreaUnderOneMM2(t *testing.T) {
	if Area().Total() >= 1.0 {
		t.Fatal("area estimate not under 1 mm²")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Warmup == 0 || o.Measure == 0 || o.Levels != 28 || len(o.Workloads) != 10 || o.Parallel <= 0 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestLowPowerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := tiny()
	o.Workloads = []string{"milc"}
	tb, err := LowPower(o)
	if err != nil {
		t.Fatal(err)
	}
	ratio := tb.ColGeoMean("time-ratio")
	if ratio > 1.10 {
		t.Fatalf("low-power time ratio %v, paper says ≤ 1.04", ratio)
	}
	bg := tb.ColGeoMean("bg-energy-ratio")
	if bg >= 1 {
		t.Fatalf("low-power did not cut background energy: %v", bg)
	}
}

func TestOffDIMMShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := tiny()
	o.Workloads = []string{"milc"}
	tb, err := OffDIMM(o)
	if err != nil {
		t.Fatal(err)
	}
	ind := tb.ColGeoMean("indep-2")
	sp := tb.ColGeoMean("split-2")
	if ind >= 0.25 {
		t.Errorf("indep-2 off-DIMM fraction %v, paper ≈ 0.042", ind)
	}
	if sp >= 0.5 {
		t.Errorf("split-2 off-DIMM fraction %v, paper ≈ 0.12", sp)
	}
	if ind >= sp {
		t.Errorf("independent fraction %v not below split %v", ind, sp)
	}
}
