// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV): the Freecursive slowdown (Figure 6), the
// single- and double-channel SDIMM speedups (Figures 8 and 9), the memory
// energy comparison (Figure 10), the tree-depth sensitivity sweep
// (Figure 11), the transfer-queue overflow models (Figure 13), and the
// textual results (off-DIMM traffic fractions, latency reductions, the
// low-power penalty, and the buffer area estimate).
//
// Absolute cycle counts differ from the paper (synthetic traces, reimplemented
// DRAM model); the shapes — who wins, by what rough factor — are the
// reproduction target. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"sdimm/internal/config"
	"sdimm/internal/queueing"
	"sdimm/internal/sdimm"
	"sdimm/internal/sim"
	"sdimm/internal/stats"
	"sdimm/internal/telemetry"
	"sdimm/internal/trace"
)

// Options scales the experiments. Zero values take defaults sized for a
// few-minute full reproduction run.
type Options struct {
	Warmup    int      // warmup records per run (default 400)
	Measure   int      // measured records per run (default 800)
	Levels    int      // ORAM tree levels (default 28)
	Seed      uint64   // base seed (default 1)
	Workloads []string // default: all 10 profiles
	Parallel  int      // concurrent simulations (default NumCPU)
	// Telemetry, when set, aggregates metrics from every simulation of
	// the experiment into one registry (dram.*, protocol.*, sim.*). Each
	// simulation runs against its own private registry; the shards are
	// merged into this one in job order after all runs complete, so the
	// aggregate is bit-identical at any Parallel setting.
	Telemetry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 400
	}
	if o.Measure == 0 {
		o.Measure = 800
	}
	if o.Levels == 0 {
		o.Levels = 28
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Workloads) == 0 {
		for _, p := range trace.Profiles() {
			o.Workloads = append(o.Workloads, p.Name)
		}
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.NumCPU()
	}
	return o
}

func (o Options) configFor(p config.Protocol, channels int) config.Config {
	cfg := config.Default(p, channels)
	cfg.ORAM.Levels = o.Levels
	cfg.WarmupAccesses = o.Warmup
	cfg.MeasureAccesses = o.Measure
	cfg.Seed = o.Seed
	return cfg
}

// job is one simulation to run.
type job struct {
	key      string
	workload string
	cfg      config.Config
}

// runAll executes jobs across a bounded worker pool, returning results by
// key. Determinism does not depend on scheduling: every simulation is
// single-threaded over its own state and its own private telemetry
// registry, and the per-job shards — results, errors, registries — land in
// job-indexed slots that are folded together in job order after the pool
// drains. A Parallel: 1 campaign and a Parallel: N campaign therefore
// return identical results and an identical merged registry.
func runAll(jobs []job, o Options) (map[string]sim.Result, error) {
	results := make([]sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	regs := make([]*telemetry.Registry, len(jobs))
	sem := make(chan struct{}, o.Parallel)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var tel *sim.Telemetry
			if o.Telemetry != nil {
				regs[i] = telemetry.NewRegistry()
				tel = &sim.Telemetry{Registry: regs[i]}
			}
			results[i], errs[i] = sim.RunInstrumented(jobs[i].cfg, jobs[i].workload, tel)
		}(i)
	}
	wg.Wait()
	// Deterministic merge barrier: fold shards in job order.
	out := make(map[string]sim.Result, len(jobs))
	var firstErr error
	for i, j := range jobs {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", j.key, errs[i])
			}
			continue
		}
		out[j.key] = results[i]
		o.Telemetry.Merge(regs[i])
	}
	return out, firstErr
}

// Campaign runs the full workload × backend grid — every configured
// workload against every protocol at the given channel count — across the
// worker pool and returns the per-run results keyed by Key. It is the
// building block the determinism-equivalence suite compares across
// Parallel settings, and the unit sdimm-bench shards when regenerating the
// paper tables.
func Campaign(o Options, protos []config.Protocol, channels int) (map[string]sim.Result, error) {
	o = o.withDefaults()
	var jobs []job
	for _, w := range o.Workloads {
		for _, p := range protos {
			jobs = append(jobs, job{key(p, channels, w), w, o.configFor(p, channels)})
		}
	}
	return runAll(jobs, o)
}

// Key names one campaign run: protocol, channel count, workload.
func Key(p config.Protocol, channels int, workload string) string {
	return key(p, channels, workload)
}

func key(p config.Protocol, ch int, w string) string {
	return fmt.Sprintf("%v/%dch/%s", p, ch, w)
}

// Fig6 reproduces Figure 6: the slowdown of Freecursive ORAM relative to a
// non-secure memory system, for 1 and 2 channels, plus the accessORAM-per-
// LLC-miss ratio the paper reports (~1.4).
func Fig6(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	var jobs []job
	for _, w := range o.Workloads {
		for _, ch := range []int{1, 2} {
			jobs = append(jobs,
				job{key(config.NonSecure, ch, w), w, o.configFor(config.NonSecure, ch)},
				job{key(config.Freecursive, ch, w), w, o.configFor(config.Freecursive, ch)})
		}
	}
	res, err := runAll(jobs, o)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 6: Freecursive slowdown vs non-secure",
		"slowdown-1ch", "slowdown-2ch", "accessORAM/miss")
	for _, w := range o.Workloads {
		for _, ch := range []int{1, 2} {
			ns := res[key(config.NonSecure, ch, w)]
			fc := res[key(config.Freecursive, ch, w)]
			t.Set(w, fmt.Sprintf("slowdown-%dch", ch),
				float64(fc.MeasuredCycles)/float64(ns.MeasuredCycles))
		}
		t.Set(w, "accessORAM/miss", res[key(config.Freecursive, 1, w)].AccessesPerMiss)
	}
	return t, nil
}

// Fig8 reproduces Figure 8: normalized execution time of the single-channel
// SDIMM designs (INDEP-2, SPLIT-2) relative to single-channel Freecursive.
func Fig8(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	return normalizedTime(o, 1, []config.Protocol{config.Independent, config.Split},
		"Figure 8: single-channel normalized execution time")
}

// Fig9 reproduces Figure 9: normalized execution time of the double-channel
// designs (INDEP-4, SPLIT-4, INDEP-SPLIT) relative to 2-channel Freecursive.
func Fig9(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	return normalizedTime(o, 2,
		[]config.Protocol{config.Independent, config.Split, config.IndepSplit},
		"Figure 9: double-channel normalized execution time")
}

func normalizedTime(o Options, channels int, protos []config.Protocol, title string) (*stats.Table, error) {
	var jobs []job
	for _, w := range o.Workloads {
		jobs = append(jobs, job{key(config.Freecursive, channels, w), w, o.configFor(config.Freecursive, channels)})
		for _, p := range protos {
			jobs = append(jobs, job{key(p, channels, w), w, o.configFor(p, channels)})
		}
	}
	res, err := runAll(jobs, o)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(protos))
	for i, p := range protos {
		cols[i] = p.String()
	}
	t := stats.NewTable(title, cols...)
	for _, w := range o.Workloads {
		base := res[key(config.Freecursive, channels, w)]
		for _, p := range protos {
			r := res[key(p, channels, w)]
			t.Set(w, p.String(), float64(r.MeasuredCycles)/float64(base.MeasuredCycles))
		}
	}
	return t, nil
}

// Fig10 reproduces Figure 10: memory energy per access normalized to the
// non-secure baseline, for Freecursive and the best SDIMM design on each
// channel count (SPLIT-2 and INDEP-SPLIT in the paper).
func Fig10(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	type cfgRow struct {
		name string
		p    config.Protocol
		ch   int
	}
	rows := []cfgRow{
		{"freecursive-1ch", config.Freecursive, 1},
		{"split2-1ch", config.Split, 1},
		{"freecursive-2ch", config.Freecursive, 2},
		{"indep-split-2ch", config.IndepSplit, 2},
	}
	var jobs []job
	for _, w := range o.Workloads {
		for _, ch := range []int{1, 2} {
			jobs = append(jobs, job{key(config.NonSecure, ch, w), w, o.configFor(config.NonSecure, ch)})
		}
		for _, r := range rows {
			jobs = append(jobs, job{key(r.p, r.ch, w), w, o.configFor(r.p, r.ch)})
		}
	}
	res, err := runAll(jobs, o)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(rows))
	for i, r := range rows {
		cols[i] = r.name
	}
	t := stats.NewTable("Figure 10: memory energy overhead vs non-secure", cols...)
	for _, w := range o.Workloads {
		for _, r := range rows {
			ns := res[key(config.NonSecure, r.ch, w)]
			pr := res[key(r.p, r.ch, w)]
			t.Set(w, r.name, pr.EnergyPerMiss/ns.EnergyPerMiss)
		}
	}
	return t, nil
}

// Fig11 reproduces Figure 11: normalized execution time (best SDIMM design
// vs Freecursive) across ORAM tree depths, with and without the on-chip
// ORAM cache. Columns are labelled L<levels>[-nc].
func Fig11(o Options, levels []int) (*stats.Table, error) {
	o = o.withDefaults()
	if len(levels) == 0 {
		levels = []int{20, 22, 24, 26, 28}
	}
	var jobs []job
	for _, w := range o.Workloads {
		for _, l := range levels {
			for _, cached := range []int{7, 0} {
				for _, p := range []config.Protocol{config.Freecursive, config.Split} {
					cfg := o.configFor(p, 1)
					cfg.ORAM.Levels = l
					cfg.ORAM.CachedLevels = cached
					jobs = append(jobs, job{fmt.Sprintf("%v/L%d/c%d/%s", p, l, cached, w), w, cfg})
				}
			}
		}
	}
	res, err := runAll(jobs, o)
	if err != nil {
		return nil, err
	}
	var cols []string
	for _, l := range levels {
		cols = append(cols, fmt.Sprintf("L%d", l), fmt.Sprintf("L%d-nc", l))
	}
	t := stats.NewTable("Figure 11: normalized time (SPLIT-2 vs Freecursive) across ORAM depth", cols...)
	for _, w := range o.Workloads {
		for _, l := range levels {
			for _, cached := range []int{7, 0} {
				base := res[fmt.Sprintf("%v/L%d/c%d/%s", config.Freecursive, l, cached, w)]
				sp := res[fmt.Sprintf("%v/L%d/c%d/%s", config.Split, l, cached, w)]
				col := fmt.Sprintf("L%d", l)
				if cached == 0 {
					col += "-nc"
				}
				t.Set(w, col, float64(sp.MeasuredCycles)/float64(base.MeasuredCycles))
			}
		}
	}
	return t, nil
}

// Fig13a reproduces Figure 13a: the probability a transfer queue of the
// given sizes overflows within s steps, under the passive random walk.
func Fig13a(steps []int, limits []int) ([]stats.Series, error) {
	if len(steps) == 0 {
		steps = []int{100_000, 200_000, 400_000, 800_000}
	}
	if len(limits) == 0 {
		limits = []int{16, 64, 256, 1024}
	}
	w := queueing.DefaultWalk()
	var out []stats.Series
	for _, k := range limits {
		s := stats.Series{Name: fmt.Sprintf("limit=%d", k)}
		for _, n := range steps {
			p, err := w.OverflowProbability(n, k)
			if err != nil {
				return nil, err
			}
			s.Add(float64(n), p)
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig13b reproduces Figure 13b: the stationary M/M/1/K overflow probability
// for different drain probabilities p and queue sizes K.
func Fig13b(probs []float64, sizes []int) ([]stats.Series, error) {
	if len(probs) == 0 {
		probs = []float64{0.01, 0.05, 0.1, 0.25, 0.5}
	}
	if len(sizes) == 0 {
		sizes = []int{4, 8, 16, 32, 64}
	}
	var out []stats.Series
	for _, p := range probs {
		s := stats.Series{Name: fmt.Sprintf("p=%g", p)}
		for _, k := range sizes {
			v, err := queueing.MM1KFullProbability(p, k)
			if err != nil {
				return nil, err
			}
			s.Add(float64(k), v)
		}
		out = append(out, s)
	}
	return out, nil
}

// OffDIMM reproduces the off-DIMM traffic numbers of Section IV-B: host-
// channel bytes per accessORAM as a fraction of the Freecursive baseline.
func OffDIMM(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	var jobs []job
	for _, w := range o.Workloads {
		jobs = append(jobs,
			job{key(config.Freecursive, 1, w), w, o.configFor(config.Freecursive, 1)},
			job{key(config.Independent, 1, w), w, o.configFor(config.Independent, 1)},
			job{key(config.Split, 1, w), w, o.configFor(config.Split, 1)},
			job{key(config.Independent, 2, w), w, o.configFor(config.Independent, 2)})
	}
	res, err := runAll(jobs, o)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Off-DIMM traffic fraction vs Freecursive",
		"indep-2", "split-2", "indep-4")
	for _, w := range o.Workloads {
		base := res[key(config.Freecursive, 1, w)]
		perBase := float64(base.HostBytes) / float64(base.AccessORAMs)
		set := func(col string, r sim.Result) {
			t.Set(w, col, (float64(r.HostBytes)/float64(r.AccessORAMs))/perBase)
		}
		set("indep-2", res[key(config.Independent, 1, w)])
		set("split-2", res[key(config.Split, 1, w)])
		set("indep-4", res[key(config.Independent, 2, w)])
	}
	return t, nil
}

// Ring compares the ring-eviction backend against Independent at one
// channel: relative execution time per LLC miss, and the on-DIMM byte
// ratio. Ring reads replay as read-only paths — writeback rides the
// deterministic eviction pointer every A accesses — so the local-bus
// traffic drops well below Independent's full read+write paths while the
// host-visible wire shape stays identical.
func Ring(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	var jobs []job
	for _, w := range o.Workloads {
		jobs = append(jobs,
			job{key(config.Independent, 1, w), w, o.configFor(config.Independent, 1)},
			job{key(config.Ring, 1, w), w, o.configFor(config.Ring, 1)})
	}
	res, err := runAll(jobs, o)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ring eviction vs Independent (1ch)", "rel-time", "local-bytes")
	for _, w := range o.Workloads {
		base := res[key(config.Independent, 1, w)]
		r := res[key(config.Ring, 1, w)]
		t.Set(w, "rel-time", r.CyclesPerMiss()/base.CyclesPerMiss())
		t.Set(w, "local-bytes", float64(r.LocalBytes)/float64(base.LocalBytes))
	}
	return t, nil
}

// Latency reproduces the Section IV-B latency claim: average LLC-miss
// latency of SPLIT-4 and INDEP-SPLIT relative to 2-channel Freecursive
// (the paper reports reductions of 41% and 63%).
func Latency(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	var jobs []job
	for _, w := range o.Workloads {
		jobs = append(jobs,
			job{key(config.Freecursive, 2, w), w, o.configFor(config.Freecursive, 2)},
			job{key(config.Split, 2, w), w, o.configFor(config.Split, 2)},
			job{key(config.IndepSplit, 2, w), w, o.configFor(config.IndepSplit, 2)})
	}
	res, err := runAll(jobs, o)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Relative LLC-miss latency vs 2ch Freecursive", "split-4", "indep-split")
	for _, w := range o.Workloads {
		base := res[key(config.Freecursive, 2, w)]
		t.Set(w, "split-4", res[key(config.Split, 2, w)].AvgMissLatency/base.AvgMissLatency)
		t.Set(w, "indep-split", res[key(config.IndepSplit, 2, w)].AvgMissLatency/base.AvgMissLatency)
	}
	return t, nil
}

// LowPower reproduces the Section III-E claim: the rank-per-subtree layout
// costs at most a few percent of performance (the paper says ≤ 4%) while
// enabling rank power-down.
func LowPower(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	var jobs []job
	for _, w := range o.Workloads {
		on := o.configFor(config.Independent, 1)
		off := o.configFor(config.Independent, 1)
		off.LowPower = false
		jobs = append(jobs,
			job{"lp-on/" + w, w, on},
			job{"lp-off/" + w, w, off})
	}
	res, err := runAll(jobs, o)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Low-power layout: perf cost and background saving",
		"time-ratio", "bg-energy-ratio")
	for _, w := range o.Workloads {
		on := res["lp-on/"+w]
		off := res["lp-off/"+w]
		t.Set(w, "time-ratio", float64(on.MeasuredCycles)/float64(off.MeasuredCycles))
		t.Set(w, "bg-energy-ratio", on.Energy.Background/off.Energy.Background)
	}
	return t, nil
}

// Area reports the secure-buffer area estimate (Section IV-B).
func Area() sdimm.AreaEstimate { return sdimm.Area() }

// Overflow runs the Independent protocol and reports the in-vivo stash and
// transfer-queue occupancy maxima — the empirical counterpart of the
// Section IV-C models (Figure 13): with the drain policy on, neither the
// normal stash nor the transfer queue should approach its capacity.
func Overflow(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	var jobs []job
	for _, w := range o.Workloads {
		jobs = append(jobs, job{key(config.Independent, 2, w), w, o.configFor(config.Independent, 2)})
	}
	res, err := runAll(jobs, o)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Independent protocol: stash / transfer-queue maxima",
		"stash-peak", "transfer-peak", "overflows", "extra-drains")
	for _, w := range o.Workloads {
		r := res[key(config.Independent, 2, w)]
		t.Set(w, "stash-peak", float64(r.Backend.StashPeak))
		t.Set(w, "transfer-peak", float64(r.Backend.TransferPeak))
		t.Set(w, "overflows", float64(r.Backend.TransferOverflows))
		t.Set(w, "extra-drains", float64(r.Backend.ExtraDrains))
	}
	return t, nil
}
