package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestProfilesAllValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 10 {
		t.Fatalf("%d profiles, want 10 (paper uses 10 SPEC benchmarks)", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
	}
	// The narrative workloads must be present with the right MLP ordering.
	g, _ := ProfileByName("gromacs")
	o, _ := ProfileByName("omnetpp")
	gem, _ := ProfileByName("GemsFDTD")
	if g.Burst <= gem.Burst || o.Burst <= gem.Burst {
		t.Error("gromacs/omnetpp must have higher MLP than GemsFDTD")
	}
}

func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName("mcf"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile found")
	}
}

func TestValidateRejections(t *testing.T) {
	base := Profiles()[0]
	muts := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.MeanGap = 0 },
		func(p *Profile) { p.Burst = 0 },
		func(p *Profile) { p.StreamProb = 1.0 },
		func(p *Profile) { p.HotProb = -0.1 },
		func(p *Profile) { p.HotBlocks = 0 },
		func(p *Profile) { p.Footprint = 0; p.HotBlocks = 0 },
		func(p *Profile) { p.WriteFrac = 2 },
		func(p *Profile) { p.HotBlocks = 1 << 30 },
	}
	for i, m := range muts {
		p := base
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profiles()[0]
	a, err := p.Generate(1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Generate(1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverged at %d", i)
		}
	}
	c, _ := p.Generate(1000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical records", same)
	}
}

func TestGenerateProperties(t *testing.T) {
	for _, p := range Profiles() {
		recs, err := p.Generate(20000, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		writes, gapSum := 0, 0.0
		for _, r := range recs {
			if r.Addr >= p.Footprint {
				t.Fatalf("%s: address %d beyond footprint", p.Name, r.Addr)
			}
			if r.Write {
				writes++
			}
			gapSum += float64(r.Gap)
		}
		wf := float64(writes) / float64(len(recs))
		if wf < p.WriteFrac-0.05 || wf > p.WriteFrac+0.05 {
			t.Errorf("%s: write fraction %v, want ≈ %v", p.Name, wf, p.WriteFrac)
		}
		meanGap := gapSum / float64(len(recs))
		if meanGap < p.MeanGap*0.6 || meanGap > p.MeanGap*1.4 {
			t.Errorf("%s: mean gap %v, want ≈ %v", p.Name, meanGap, p.MeanGap)
		}
	}
}

func TestStreamingProfileIsSequential(t *testing.T) {
	p, _ := ProfileByName("libquantum")
	recs, _ := p.Generate(10000, 3)
	seq := 0
	for i := 1; i < len(recs); i++ {
		if recs[i].Addr == recs[i-1].Addr+1 {
			seq++
		}
	}
	frac := float64(seq) / float64(len(recs))
	if frac < 0.75 {
		t.Fatalf("libquantum sequential fraction %v, want streaming-dominated", frac)
	}
}

func TestHighMLPProfileIsBursty(t *testing.T) {
	g, _ := ProfileByName("gromacs")
	gem, _ := ProfileByName("GemsFDTD")
	count := func(p Profile) float64 {
		recs, _ := p.Generate(10000, 4)
		tiny := 0
		for _, r := range recs {
			if r.Gap <= 2 {
				tiny++
			}
		}
		return float64(tiny) / float64(len(recs))
	}
	if count(g) <= count(gem) {
		t.Fatal("gromacs not burstier than GemsFDTD")
	}
}

func TestGenerateNegativeCount(t *testing.T) {
	if _, err := Profiles()[0].Generate(-1, 1); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	p := Profiles()[2]
	recs, _ := p.Generate(5000, 11)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Right magic, wrong version.
	bad := append([]byte("SDTR"), 99)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	Write(&buf, []Record{{Gap: 1, Addr: 2}})
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

// Property: arbitrary records survive serialization.
func TestPropertyFileRoundTrip(t *testing.T) {
	f := func(gaps []uint32, addrs []uint64, writeBits []bool) bool {
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(writeBits) < n {
			n = len(writeBits)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{Gap: gaps[i], Addr: addrs[i], Write: writeBits[i]}
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
