// Package trace generates and serializes the memory traces that drive the
// simulator. The paper captures L1-miss traces from 10 SPEC CPU2006
// benchmarks with Simics; we substitute synthetic traces with per-benchmark
// profiles tuned so the properties ORAM performance is sensitive to — miss
// intensity, memory-level parallelism (burstiness), spatial locality and
// reuse (which drives PLB hits), and write fraction — match each
// benchmark's published character. The profile set keeps the paper's
// narrative ordering: gromacs and omnetpp are the high-MLP workloads,
// GemsFDTD is latency-bound with low MLP.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sdimm/internal/rng"
)

// Record is one L1-miss event: Gap non-memory instructions execute before
// this access to line address Addr.
type Record struct {
	Gap   uint32
	Addr  uint64
	Write bool
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string
	// MeanGap is the mean instruction gap between misses (miss intensity).
	MeanGap float64
	// Burst is the typical number of back-to-back misses (MLP proxy): a
	// burst's members have near-zero gaps, so they overlap in the ROB.
	Burst int
	// StreamProb is the probability of continuing a sequential run.
	StreamProb float64
	// HotProb is the probability a non-streaming access hits the hot set.
	HotProb float64
	// HotBlocks is the hot-set size in lines.
	HotBlocks int
	// Footprint is the total address-space footprint in lines.
	Footprint uint64
	// WriteFrac is the store fraction.
	WriteFrac float64
}

// Validate checks profile parameters.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("trace: profile without name")
	case p.MeanGap < 1:
		return fmt.Errorf("trace %s: mean gap %v < 1", p.Name, p.MeanGap)
	case p.Burst < 1:
		return fmt.Errorf("trace %s: burst %d < 1", p.Name, p.Burst)
	case p.StreamProb < 0 || p.StreamProb >= 1:
		return fmt.Errorf("trace %s: stream probability %v", p.Name, p.StreamProb)
	case p.HotProb < 0 || p.HotProb > 1:
		return fmt.Errorf("trace %s: hot probability %v", p.Name, p.HotProb)
	case p.HotBlocks <= 0 || uint64(p.HotBlocks) > p.Footprint:
		return fmt.Errorf("trace %s: hot set %d vs footprint %d", p.Name, p.HotBlocks, p.Footprint)
	case p.Footprint == 0:
		return fmt.Errorf("trace %s: zero footprint", p.Name)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("trace %s: write fraction %v", p.Name, p.WriteFrac)
	}
	return nil
}

// Profiles returns the 10 benchmark profiles used throughout the
// evaluation, in the order the paper's figures list them.
func Profiles() []Profile {
	return []Profile{
		// mcf: pointer chasing over a huge footprint, dependent loads.
		{Name: "mcf", MeanGap: 360, Burst: 3, StreamProb: 0.05, HotProb: 0.25, HotBlocks: 4096, Footprint: 1 << 22, WriteFrac: 0.25},
		// lbm: streaming stencil, long sequential runs, heavy stores.
		{Name: "lbm", MeanGap: 240, Burst: 6, StreamProb: 0.85, HotProb: 0.05, HotBlocks: 1024, Footprint: 1 << 22, WriteFrac: 0.45},
		// libquantum: pure streaming sweeps over a vector.
		{Name: "libquantum", MeanGap: 200, Burst: 6, StreamProb: 0.92, HotProb: 0.02, HotBlocks: 512, Footprint: 1 << 21, WriteFrac: 0.30},
		// milc: lattice QCD, strided with moderate reuse.
		{Name: "milc", MeanGap: 320, Burst: 5, StreamProb: 0.55, HotProb: 0.20, HotBlocks: 8192, Footprint: 1 << 22, WriteFrac: 0.35},
		// GemsFDTD: latency-bound, dependent accesses, almost no overlap.
		{Name: "GemsFDTD", MeanGap: 440, Burst: 1, StreamProb: 0.35, HotProb: 0.15, HotBlocks: 4096, Footprint: 1 << 22, WriteFrac: 0.30},
		// omnetpp: event queues, irregular but highly parallel misses.
		{Name: "omnetpp", MeanGap: 400, Burst: 8, StreamProb: 0.15, HotProb: 0.35, HotBlocks: 16384, Footprint: 1 << 22, WriteFrac: 0.30},
		// gromacs: molecular dynamics, deep software pipelining: high MLP.
		{Name: "gromacs", MeanGap: 520, Burst: 10, StreamProb: 0.30, HotProb: 0.30, HotBlocks: 8192, Footprint: 1 << 21, WriteFrac: 0.25},
		// soplex: sparse LP solver, mixed behaviour.
		{Name: "soplex", MeanGap: 300, Burst: 5, StreamProb: 0.45, HotProb: 0.25, HotBlocks: 8192, Footprint: 1 << 22, WriteFrac: 0.20},
		// leslie3d: fluid dynamics, strided streams.
		{Name: "leslie3d", MeanGap: 280, Burst: 6, StreamProb: 0.70, HotProb: 0.10, HotBlocks: 2048, Footprint: 1 << 22, WriteFrac: 0.35},
		// bwaves: blast waves, large strided working set.
		{Name: "bwaves", MeanGap: 260, Burst: 7, StreamProb: 0.65, HotProb: 0.10, HotBlocks: 4096, Footprint: 1 << 22, WriteFrac: 0.30},
	}
}

// ProfileByName finds a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}

// Generate produces n records deterministically from the seed.
func (p Profile) Generate(n int, seed uint64) ([]Record, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("trace: negative record count")
	}
	r := rng.New(seed ^ hashName(p.Name))
	recs := make([]Record, 0, n)
	cur := r.Uint64n(p.Footprint) // current streaming position
	burstLeft := 0
	hotBase := r.Uint64n(p.Footprint - uint64(p.HotBlocks))
	// Irregular accesses land in a drifting region rather than uniformly
	// over the footprint: real pointer-chasing code walks data structures
	// with page-level locality, which is what keeps the PLB effective.
	regionSize := uint64(16384)
	if regionSize > p.Footprint {
		regionSize = p.Footprint
	}
	regionBase := r.Uint64n(p.Footprint - regionSize + 1)
	for len(recs) < n {
		var gap uint32
		if burstLeft > 0 {
			burstLeft--
			gap = uint32(r.Uint64n(3)) // back-to-back: overlaps in the ROB
		} else {
			burstLeft = p.Burst - 1
			// Inter-burst gap scaled so the overall mean stays MeanGap.
			mean := p.MeanGap * float64(p.Burst)
			g := r.Geometric(1 / mean)
			if g > 1<<30 {
				g = 1 << 30
			}
			gap = uint32(g)
		}

		var addr uint64
		switch {
		case r.Bool(p.StreamProb):
			cur = (cur + 1) % p.Footprint
			addr = cur
		case r.Bool(p.HotProb):
			addr = hotBase + r.Uint64n(uint64(p.HotBlocks))
		default:
			if r.Bool(0.02) {
				regionBase = r.Uint64n(p.Footprint - regionSize + 1)
			}
			addr = regionBase + r.Uint64n(regionSize)
			cur = addr
		}
		recs = append(recs, Record{Gap: gap, Addr: addr, Write: r.Bool(p.WriteFrac)})
	}
	return recs, nil
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// File format: "SDTR" magic, a version byte, a uint64 count, then 16-byte
// little-endian records (gap u32, flags u8, 3 pad, addr u64).

var magic = [4]byte{'S', 'D', 'T', 'R'}

const formatVersion = 1

// Write serializes records to w.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return fmt.Errorf("trace: writing version: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(recs))); err != nil {
		return fmt.Errorf("trace: writing count: %w", err)
	}
	var buf [16]byte
	for _, rec := range recs {
		binary.LittleEndian.PutUint32(buf[0:4], rec.Gap)
		buf[4] = 0
		if rec.Write {
			buf[4] = 1
		}
		binary.LittleEndian.PutUint64(buf[8:16], rec.Addr)
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("trace: writing record: %w", err)
		}
	}
	return bw.Flush()
}

// Read deserializes records from r.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	if hdr[4] != formatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	recs := make([]Record, 0, count)
	var buf [16]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		recs = append(recs, Record{
			Gap:   binary.LittleEndian.Uint32(buf[0:4]),
			Write: buf[4] != 0,
			Addr:  binary.LittleEndian.Uint64(buf[8:16]),
		})
	}
	return recs, nil
}
