package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sdimm"
	"sdimm/internal/fault"
	"sdimm/internal/rng"
)

func baseConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Cluster: sdimm.ClusterOptions{
			SDIMMs: 4, Levels: 10, Key: []byte("serve-test-key"), Seed: 5,
		},
		Pipeline: sdimm.PipelineOptions{Window: 8},
	}
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, addr
}

func TestServeMultiTenantBasic(t *testing.T) {
	s, addr := startServer(t, baseConfig(t))
	defer s.Shutdown(context.Background())

	var wg sync.WaitGroup
	for _, tenant := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			cl, err := Dial(addr, tenant)
			if err != nil {
				t.Errorf("%s: %v", tenant, err)
				return
			}
			defer cl.Close()
			base := uint64(0)
			if tenant == "beta" {
				base = 1000
			}
			for i := 0; i < 25; i++ {
				addr := base + uint64(i)
				want := fmt.Sprintf("%s-%03d", tenant, i)
				resp, err := cl.Do(Request{Addr: addr, Write: true, Data: []byte(want)})
				if err != nil || resp.Status != StatusOK {
					t.Errorf("%s write %d: %v %s", tenant, i, err, StatusString(resp.Status))
					return
				}
				resp, err = cl.Do(Request{Addr: addr})
				if err != nil || resp.Status != StatusOK {
					t.Errorf("%s read %d: %v %s", tenant, i, err, StatusString(resp.Status))
					return
				}
				if got := string(resp.Data[:len(want)]); got != want {
					t.Errorf("%s addr %d: got %q want %q", tenant, addr, got, want)
					return
				}
			}
		}(tenant)
	}
	wg.Wait()

	// Per-tenant accounting exists; admission never saw the labels.
	snap := s.Registry().Snapshot()
	text := snap.String()
	for _, want := range []string{"serve.requests{tenant=alpha}", "serve.requests{tenant=beta}"} {
		if !strings.Contains(text, want) {
			t.Errorf("telemetry missing %s:\n%s", want, text)
		}
	}

	// SLO + witness over HTTP.
	hs := httptest.NewServer(s.HTTPHandler())
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	var slo SLOSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&slo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slo.OK != 100 {
		t.Errorf("SLO ok = %d, want 100", slo.OK)
	}
	if !slo.Witness.OK || slo.Witness.Frames == 0 {
		t.Errorf("witness not green under normal serving: %+v", slo.Witness)
	}
	if slo.Capacity != 1.0 {
		t.Errorf("healthy capacity = %v, want 1.0", slo.Capacity)
	}
	if slo.AcceptedDeadlineMissed != 0 {
		t.Errorf("accepted deadline misses = %d", slo.AcceptedDeadlineMissed)
	}
}

// TestServeOverloadSheds drives a deliberately tiny queue with 16 closed-loop
// workers: the server must shed rather than queue into deadline misses, and
// everything it does accept must complete in time.
func TestServeOverloadSheds(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Admission = AdmissionOptions{Rho: 0.5, OverflowTarget: 0.2} // limit = 2
	s, addr := startServer(t, cfg)
	defer s.Shutdown(context.Background())

	rep, err := RunLoad(LoadOptions{
		Addr: addr, Tenant: "storm", Workers: 16, Ops: 600,
		Space: 128, DeadlineMS: 2000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatal("overloaded server made no progress at all")
	}
	if rep.Shed == 0 {
		t.Fatalf("16 workers against a depth-2 queue shed nothing: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d hard errors under overload: %+v", rep.Errors, rep)
	}
	slo := s.SLO()
	if slo.AcceptedDeadlineMissed != 0 {
		t.Fatalf("%d accepted requests missed their deadline — admission let them in anyway", slo.AcceptedDeadlineMissed)
	}
	if !slo.Witness.OK {
		t.Fatalf("witness tripped during overload: %+v", slo.Witness)
	}
	if slo.QueuePeak > s.Admission().Limit() {
		t.Fatalf("queue peaked at %d past limit %d", slo.QueuePeak, s.Admission().Limit())
	}
}

// TestServeFlightDumpOnWitnessViolation pins the auto-dump path: a witness
// violation must snapshot the flight rings to disk exactly once.
func TestServeFlightDumpOnWitnessViolation(t *testing.T) {
	cfg := baseConfig(t)
	cfg.FlightDir = t.TempDir()
	violated := make(chan string, 4)
	cfg.Witness.OnViolation = func(kind string) { violated <- kind }
	s, addr := startServer(t, cfg)
	defer s.Shutdown(context.Background())

	cl, err := Dial(addr, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Enough traffic to freeze the shape set.
	for i := 0; i < 70; i++ {
		if resp, err := cl.Do(Request{Addr: uint64(i % 8)}); err != nil || resp.Status != StatusOK {
			t.Fatalf("op %d: %v %s", i, err, StatusString(resp.Status))
		}
	}
	// A frame shape the calibrated link never produced.
	s.Witness().Tap(0, fault.HostToDev, 0, make([]byte, 31337))
	select {
	case kind := <-violated:
		if kind != "shape" {
			t.Fatalf("violation kind = %q", kind)
		}
	case <-time.After(time.Second):
		t.Fatal("user OnViolation callback never fired")
	}
	path := filepath.Join(cfg.FlightDir, "flight-witness-shape.trace.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("flight recorder did not dump: %v", err)
	}
	// Second violation: no second dump file churn (dump-once is per trigger).
	s.Witness().Tap(0, fault.HostToDev, 0, make([]byte, 31338))
	ents, err := os.ReadDir(cfg.FlightDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("expected exactly one dump, found %d", len(ents))
	}
}

// TestServeGracefulShutdownDurable: every write the server acknowledged
// before Shutdown must read back identically from a recovered server — the
// drain runs through the durable journal commit point.
func TestServeGracefulShutdownDurable(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig(t)
	cfg.Cluster.Durability = &sdimm.DurabilityOptions{Dir: dir, Interval: 32}
	s, addr := startServer(t, cfg)

	cl, err := Dial(addr, "durable")
	if err != nil {
		t.Fatal(err)
	}
	acked := map[uint64]string{}
	for i := 0; i < 60; i++ {
		a := uint64(i % 40)
		v := fmt.Sprintf("v%04d", i)
		resp, err := cl.Do(Request{Addr: a, Write: true, Data: []byte(v)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == StatusOK {
			acked[a] = v
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	cl.Close()
	// Post-shutdown the address must refuse connections.
	if _, err := Dial(addr, "late"); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}

	s2, report, err := Recover(cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if report == nil {
		t.Fatal("recovery returned no report")
	}
	addr2, err := s2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	cl2, err := Dial(addr2, "durable")
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for a, v := range acked {
		resp, err := cl2.Do(Request{Addr: a})
		if err != nil || resp.Status != StatusOK {
			t.Fatalf("recovered read %d: %v %s", a, err, StatusString(resp.Status))
		}
		if got := string(resp.Data[:len(v)]); got != v {
			t.Fatalf("addr %d: recovered %q, acked %q", a, got, v)
		}
	}
}

// TestServeCrashRecoveryEquivalence is the acceptance gate: a planned crash
// mid-stream (torn final record), recovery, and a fresh reference cluster
// replaying the same committed prefix sequentially must agree bitwise on the
// position map and on every block's content.
func TestServeCrashRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig(t)
	cfg.Cluster.Durability = &sdimm.DurabilityOptions{Dir: dir, Interval: 32}
	s, addr := startServer(t, cfg)
	if err := s.Cluster().PlanCrash(50, 3); err != nil {
		t.Fatal(err)
	}

	// Deterministic serial workload: request order = logical order.
	r := rng.Stream(77, "serve-crash", 0)
	type op struct {
		addr  uint64
		write bool
		data  string
	}
	ops := make([]op, 300)
	for i := range ops {
		ops[i] = op{addr: r.Uint64n(32), write: r.Bool(0.6)}
		if ops[i].write {
			ops[i].data = fmt.Sprintf("crash-op-%04d", i)
		}
	}

	cl, err := Dial(addr, "crasher")
	if err != nil {
		t.Fatal(err)
	}
	crashed := false
	for _, o := range ops {
		req := Request{Addr: o.addr, Write: o.write, Data: []byte(o.data)}
		if !o.write {
			req.Data = nil
		}
		resp, err := cl.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == StatusError {
			if !strings.Contains(string(resp.Data), "crash") {
				t.Fatalf("unexpected error: %s", resp.Data)
			}
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatal("planned crash never surfaced to the client")
	}
	cl.Close()
	s.Shutdown(context.Background()) // error is fine: the backend is crashed

	// Recover the crashed state directory.
	rc, report, err := sdimm.RecoverCluster(cfg.Cluster)
	if err != nil {
		t.Fatalf("RecoverCluster: %v", err)
	}
	defer rc.Close()
	if report == nil {
		t.Fatal("no recovery report")
	}
	n := rc.WorkloadSeq()
	if n == 0 || n > uint64(len(ops)) {
		t.Fatalf("implausible committed count %d", n)
	}

	// Reference: the same committed prefix, sequentially, from scratch.
	ref, err := sdimm.NewCluster(sdimm.ClusterOptions{
		SDIMMs: 4, Levels: 10, Key: []byte("serve-test-key"), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, o := range ops[:n] {
		if o.write {
			if err := ref.Write(o.addr, []byte(o.data)); err != nil {
				t.Fatal(err)
			}
		} else if _, err := ref.Read(o.addr); err != nil {
			t.Fatal(err)
		}
	}

	gotPos, wantPos := rc.Positions(), ref.Positions()
	if len(gotPos) != len(wantPos) {
		t.Fatalf("position map sizes differ: %d vs %d", len(gotPos), len(wantPos))
	}
	for a, leaf := range wantPos {
		if gotPos[a] != leaf {
			t.Fatalf("addr %d: recovered leaf %d, reference leaf %d", a, gotPos[a], leaf)
		}
	}
	// Content sweep, lockstep so both clusters keep drawing the same RNG
	// stream.
	for a := uint64(0); a < 32; a++ {
		got, err := rc.Read(a)
		if err != nil {
			t.Fatalf("recovered read %d: %v", a, err)
		}
		want, err := ref.Read(a)
		if err != nil {
			t.Fatalf("reference read %d: %v", a, err)
		}
		if string(got) != string(want) {
			t.Fatalf("addr %d content diverged after recovery", a)
		}
	}
}
