package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sdimm/internal/attacker"
	"sdimm/internal/rng"
)

// runTenantWindow drives n serial ops for one tenant from a seeded stream
// over its own address range.
func runTenantWindow(t *testing.T, cl *Client, seed uint64, offset, space uint64, n int) {
	t.Helper()
	r := rng.Stream(seed, "crosstenant", 0)
	for i := 0; i < n; i++ {
		req := Request{Addr: offset + r.Uint64n(space)}
		if r.Bool(0.5) {
			req.Write = true
			req.Data = []byte(fmt.Sprintf("s%d-i%04d", seed, i))
		}
		resp, err := cl.Do(req)
		if err != nil || resp.Status != StatusOK {
			t.Fatalf("seed %d op %d: %v %s", seed, i, err, StatusString(resp.Status))
		}
	}
}

// TestServeCrossTenantLinkInvariance is the tentpole's obliviousness gate
// at the link level: what tenant A's co-tenant does — which addresses it
// touches, how write-heavy it is — must be invisible in the sealed link
// traffic. We record full link traces for two serving windows whose only
// difference is the co-tenant's workload (different seed, different address
// range, different write mix), and demand (a) no frame shape appears in one
// but not the other, and (b) the traces' (SDIMM, direction, length)
// distributions are within the ordinary window-to-window noise floor —
// measured from two windows with statistically identical workloads.
func TestServeCrossTenantLinkInvariance(t *testing.T) {
	rec := attacker.NewLinkRecorder()
	cfg := baseConfig(t)
	cfg.Cluster.LinkTap = rec.Tap
	s, addr := startServer(t, cfg)
	defer s.Shutdown(context.Background())

	const perTenant = 150
	window := func(seedA, seedB, offB uint64, writeFracB float64) *attacker.LinkTrace {
		clA, err := Dial(addr, "victim")
		if err != nil {
			t.Fatal(err)
		}
		defer clA.Close()
		clB, err := Dial(addr, "cotenant")
		if err != nil {
			t.Fatal(err)
		}
		defer clB.Close()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			runTenantWindow(t, clA, seedA, 0, 64, perTenant)
		}()
		go func() {
			defer wg.Done()
			rB := rng.Stream(seedB, "crosstenant-b", 0)
			for i := 0; i < perTenant; i++ {
				req := Request{Addr: offB + rB.Uint64n(64)}
				if rB.Bool(writeFracB) {
					req.Write = true
					req.Data = []byte(fmt.Sprintf("b%d-%04d", seedB, i))
				}
				resp, err := clB.Do(req)
				if err != nil || resp.Status != StatusOK {
					t.Errorf("cotenant seed %d op %d: %v %s", seedB, i, err, StatusString(resp.Status))
					return
				}
			}
		}()
		wg.Wait()
		return rec.Cut()
	}

	// Calibration window (shape learning) before any comparison.
	window(100, 300, 1000, 0.5)

	// Noise floor: two windows with identical co-tenant configuration,
	// fresh seeds — the distance an attacker must already tolerate.
	n1 := window(101, 301, 1000, 0.5)
	n2 := window(102, 302, 1000, 0.5)
	noise, err := attacker.LinkTotalVariation(n1, n2)
	if err != nil {
		t.Fatal(err)
	}

	// Probe: the co-tenant changes everything it can — seed, address
	// range, write mix — while tenant A and the op counts stay fixed in
	// distribution.
	p1 := window(103, 303, 1000, 0.5)
	p2 := window(104, 500, 9000, 0.9)
	cross, err := attacker.LinkTotalVariation(p1, p2)
	if err != nil {
		t.Fatal(err)
	}

	// (a) No novel frame shapes.
	known := n1.Shapes()
	for sh := range n2.Shapes() {
		known[sh] = true
	}
	for sh := range p1.Shapes() {
		known[sh] = true
	}
	for sh := range p2.Shapes() {
		if !known[sh] {
			t.Fatalf("co-tenant workload change produced novel frame shape %+v", sh)
		}
	}
	// (b) Distributional distance within the ordinary noise band.
	limit := 1.5*noise + 0.02
	if cross > limit {
		t.Fatalf("co-tenant workload observable on the links: cross-TV %.4f > %.4f (noise %.4f)",
			cross, limit, noise)
	}
	t.Logf("noise floor %.4f, co-tenant-change cross-TV %.4f", noise, cross)

	// (c) The witness stayed green across every window.
	if v := s.Witness().Verdict(); !v.OK {
		t.Fatalf("witness tripped: %+v", v)
	}

	// (d) Every member carried traffic in the probe window — no tenant's
	// placement silences a link.
	perMember := map[int]int{}
	for _, e := range p2.Events {
		perMember[e.SDIMM]++
	}
	for m := 0; m < 4; m++ {
		if perMember[m] == 0 {
			t.Fatalf("member %d silent during probe window", m)
		}
	}
}

// TestServeCrossTenantOverloadWitness runs the witness gate while the
// server is actively shedding: a co-tenant storm must not bend the victim's
// observable traffic — shapes stay calibrated, balance holds, and the
// victim still gets goodput.
func TestServeCrossTenantOverloadWitness(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Admission = AdmissionOptions{Rho: 0.5, OverflowTarget: 0.2} // tiny queue
	s, addr := startServer(t, cfg)
	defer s.Shutdown(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	var stormRep LoadReport
	go func() {
		defer wg.Done()
		var err error
		stormRep, err = RunLoad(LoadOptions{
			Addr: addr, Tenant: "storm", Workers: 12, Ops: 400,
			Space: 64, AddrOffset: 5000, DeadlineMS: 2000, Seed: 13,
		})
		if err != nil {
			t.Errorf("storm: %v", err)
		}
	}()

	victim, err := Dial(addr, "victim")
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	st := &BlockStore{C: victim, DeadlineMS: 2000, Retries: 20}
	ok := 0
	for i := 0; i < 60; i++ {
		v := fmt.Sprintf("victim-%04d", i)
		if err := st.Write(uint64(i%16), []byte(v)); err == nil {
			ok++
		}
	}
	wg.Wait()

	if ok == 0 {
		t.Fatal("victim starved completely during co-tenant storm")
	}
	if stormRep.Shed == 0 {
		t.Fatalf("storm was not actually overloading: %+v", stormRep)
	}
	slo := s.SLO()
	if !slo.Witness.OK {
		t.Fatalf("witness tripped during overload: %+v", slo.Witness)
	}
	if slo.AcceptedDeadlineMissed != 0 {
		t.Fatalf("%d accepted deadline misses during storm", slo.AcceptedDeadlineMissed)
	}
}
