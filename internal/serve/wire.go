// Package serve is the overload-robust multi-tenant front end over a
// Cluster's streaming pipeline: a length-prefixed TCP wire protocol, a
// tenant-oblivious admission layer with queue-depth watermarks and a retry
// token bucket, per-connection slow-start credits for backpressure, and a
// graceful shutdown path that drains in-flight waves through the durable
// journal commit point.
//
// The server is deliberately a *block* server: requests address ORAM blocks,
// and richer data models (the secure-kv example's hash table, via
// internal/kv) layer on the client side. That keeps every request the same
// shape on the wire and the same cost in the pipeline — one accessORAM —
// which is what makes tenant-oblivious admission meaningful.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame layer: every message crosses the wire as a 4-byte big-endian length
// followed by that many payload bytes. MaxFrame bounds hostile lengths.
const MaxFrame = 1 << 16

// Message type tags (payload byte 0).
const (
	MsgHello    = 0x01 // client → server, once per connection
	MsgHelloAck = 0x02 // server → client
	MsgRequest  = 0x03 // client → server
	MsgResponse = 0x04 // server → client
)

// Response status codes.
const (
	StatusOK       = 0x00 // request executed
	StatusShed     = 0x01 // admission refused: over capacity; retry with backoff
	StatusDeadline = 0x02 // refused or aborted: deadline cannot be met
	StatusError    = 0x03 // executed and failed (Data carries the error text)
	StatusClosing  = 0x04 // server draining: reconnect elsewhere
)

// StatusString names a status code for logs and counters.
func StatusString(s byte) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusShed:
		return "shed"
	case StatusDeadline:
		return "deadline"
	case StatusError:
		return "error"
	case StatusClosing:
		return "closing"
	}
	return fmt.Sprintf("status-%d", s)
}

// ErrFrameTooLarge reports a length prefix beyond MaxFrame.
var ErrFrameTooLarge = errors.New("serve: frame exceeds MaxFrame")

// ErrMalformed reports a payload that does not decode as any message.
var ErrMalformed = errors.New("serve: malformed message")

// Hello opens a connection. Tenant is an accounting label only: it feeds
// per-tenant telemetry and nothing else — the admission layer never sees it
// (see Admission.Admit).
type Hello struct {
	Tenant string
}

// HelloAck acknowledges a Hello and grants the connection's initial request
// credit. BlockSize tells the client how large payloads must be.
type HelloAck struct {
	Credit    uint16
	BlockSize uint32
}

// Request is one block operation. DeadlineMS is the client's per-request
// budget in milliseconds from server receipt; zero selects the server
// default. Retry marks a client-side retry of a previously shed request —
// retries draw from the server's retry token budget so a shed storm cannot
// amplify itself.
type Request struct {
	ID         uint64
	Write      bool
	Retry      bool
	Addr       uint64
	DeadlineMS uint32
	Data       []byte
}

// Response answers one Request. Credit is the connection's updated request
// window (slow-start backpressure: it grows on success and shrinks when the
// server is under pressure). Data is the block payload for successful reads
// and the error text for StatusError.
type Response struct {
	ID     uint64
	Status byte
	Credit uint16
	Data   []byte
}

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

const (
	flagWrite = 1 << 0
	flagRetry = 1 << 1
)

// Encode serializes h.
func (h Hello) Encode() ([]byte, error) {
	if len(h.Tenant) > 255 {
		return nil, fmt.Errorf("serve: tenant name %d bytes long", len(h.Tenant))
	}
	out := make([]byte, 0, 2+len(h.Tenant))
	out = append(out, MsgHello, byte(len(h.Tenant)))
	return append(out, h.Tenant...), nil
}

// Encode serializes a.
func (a HelloAck) Encode() []byte {
	out := make([]byte, 7)
	out[0] = MsgHelloAck
	binary.BigEndian.PutUint16(out[1:3], a.Credit)
	binary.BigEndian.PutUint32(out[3:7], a.BlockSize)
	return out
}

// Encode serializes r.
func (r Request) Encode() ([]byte, error) {
	if len(r.Data) > MaxFrame-24 {
		return nil, fmt.Errorf("serve: request payload %d bytes", len(r.Data))
	}
	out := make([]byte, 0, 24+len(r.Data))
	out = append(out, MsgRequest)
	var flags byte
	if r.Write {
		flags |= flagWrite
	}
	if r.Retry {
		flags |= flagRetry
	}
	out = append(out, flags)
	out = binary.BigEndian.AppendUint64(out, r.ID)
	out = binary.BigEndian.AppendUint64(out, r.Addr)
	out = binary.BigEndian.AppendUint32(out, r.DeadlineMS)
	out = binary.BigEndian.AppendUint16(out, uint16(len(r.Data)))
	return append(out, r.Data...), nil
}

// Encode serializes r.
func (r Response) Encode() ([]byte, error) {
	if len(r.Data) > MaxFrame-16 {
		return nil, fmt.Errorf("serve: response payload %d bytes", len(r.Data))
	}
	out := make([]byte, 0, 16+len(r.Data))
	out = append(out, MsgResponse, r.Status)
	out = binary.BigEndian.AppendUint64(out, r.ID)
	out = binary.BigEndian.AppendUint16(out, r.Credit)
	out = binary.BigEndian.AppendUint16(out, uint16(len(r.Data)))
	return append(out, r.Data...), nil
}

// Decode parses one message payload. It is total: any input either decodes
// into one of the four message structs or returns ErrMalformed — never a
// panic (FuzzWireDecode pins this).
func Decode(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, ErrMalformed
	}
	switch b[0] {
	case MsgHello:
		if len(b) < 2 {
			return nil, ErrMalformed
		}
		n := int(b[1])
		if len(b) != 2+n {
			return nil, ErrMalformed
		}
		return Hello{Tenant: string(b[2:])}, nil
	case MsgHelloAck:
		if len(b) != 7 {
			return nil, ErrMalformed
		}
		return HelloAck{
			Credit:    binary.BigEndian.Uint16(b[1:3]),
			BlockSize: binary.BigEndian.Uint32(b[3:7]),
		}, nil
	case MsgRequest:
		if len(b) < 24 || b[1]&^(flagWrite|flagRetry) != 0 {
			return nil, ErrMalformed
		}
		n := int(binary.BigEndian.Uint16(b[22:24]))
		if len(b) != 24+n {
			return nil, ErrMalformed
		}
		r := Request{
			Write:      b[1]&flagWrite != 0,
			Retry:      b[1]&flagRetry != 0,
			ID:         binary.BigEndian.Uint64(b[2:10]),
			Addr:       binary.BigEndian.Uint64(b[10:18]),
			DeadlineMS: binary.BigEndian.Uint32(b[18:22]),
		}
		if n > 0 {
			r.Data = append([]byte(nil), b[24:]...)
		}
		return r, nil
	case MsgResponse:
		if len(b) < 14 {
			return nil, ErrMalformed
		}
		n := int(binary.BigEndian.Uint16(b[12:14]))
		if len(b) != 14+n {
			return nil, ErrMalformed
		}
		r := Response{
			Status: b[1],
			ID:     binary.BigEndian.Uint64(b[2:10]),
			Credit: binary.BigEndian.Uint16(b[10:12]),
		}
		if n > 0 {
			r.Data = append([]byte(nil), b[14:]...)
		}
		return r, nil
	}
	return nil, ErrMalformed
}
