package serve

import (
	"bytes"
	"reflect"
	"testing"
)

func TestWireRoundtrip(t *testing.T) {
	msgs := []any{
		Hello{Tenant: "acme"},
		Hello{Tenant: ""},
		HelloAck{Credit: 7, BlockSize: 64},
		Request{ID: 42, Write: true, Retry: true, Addr: 1234,
			DeadlineMS: 250, Data: []byte("payload")},
		Request{ID: 1, Addr: 9},
		Response{ID: 42, Status: StatusShed, Credit: 3},
		Response{ID: 7, Status: StatusOK, Credit: 16, Data: []byte("block")},
	}
	for _, m := range msgs {
		var b []byte
		var err error
		switch v := m.(type) {
		case Hello:
			b, err = v.Encode()
		case HelloAck:
			b = v.Encode()
		case Request:
			b, err = v.Encode()
		case Response:
			b, err = v.Encode()
		}
		if err != nil {
			t.Fatalf("encode %#v: %v", m, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("decode %#v: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("roundtrip %#v -> %#v", m, got)
		}
	}
}

func TestWireFraming(t *testing.T) {
	var buf bytes.Buffer
	for _, p := range [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{9}, 500)} {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{9}, 500)} {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %v want %v", got, want)
		}
	}
	// Hostile length prefix.
	if _, err := ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame err = %v", err)
	}
}

func TestDecodeHostile(t *testing.T) {
	cases := [][]byte{
		nil, {}, {0x99}, {MsgHello}, {MsgHello, 5, 'a'},
		{MsgHelloAck, 1}, {MsgRequest, 0, 0}, {MsgResponse},
		append([]byte{MsgRequest}, make([]byte, 22)...), // one short of header
	}
	for _, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Fatalf("Decode(%v) accepted hostile input", b)
		}
	}
}

// FuzzWireDecode pins Decode's totality: any byte string either decodes
// into a message that re-encodes to the identical bytes, or errors — never
// a panic, never a lossy accept.
func FuzzWireDecode(f *testing.F) {
	seedHello, _ := Hello{Tenant: "t"}.Encode()
	seedReq, _ := Request{ID: 3, Write: true, Addr: 7, Data: []byte("x")}.Encode()
	seedResp, _ := Response{ID: 3, Status: StatusOK, Data: []byte("y")}.Encode()
	f.Add(seedHello)
	f.Add(HelloAck{Credit: 1, BlockSize: 64}.Encode())
	f.Add(seedReq)
	f.Add(seedResp)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		var re []byte
		switch v := m.(type) {
		case Hello:
			re, err = v.Encode()
		case HelloAck:
			re = v.Encode()
		case Request:
			re, err = v.Encode()
		case Response:
			re, err = v.Encode()
		default:
			t.Fatalf("Decode returned unknown type %T", m)
		}
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("re-encode mismatch:\n in  %v\n out %v", b, re)
		}
	})
}
