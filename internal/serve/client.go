package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClientClosed reports Do on a closed client (or one whose connection
// died).
var ErrClientClosed = errors.New("serve: client closed")

// Client is a connection to a Server. Do is safe for concurrent use; the
// client paces submissions to the server-granted credit window, so a
// backpressured connection slows its callers instead of flooding the
// server.
type Client struct {
	conn      net.Conn
	blockSize int

	mu          sync.Mutex
	cond        *sync.Cond
	credit      int
	outstanding int
	nextID      uint64
	pending     map[uint64]chan Response
	err         error
	wmu         sync.Mutex
}

// Dial connects and performs the hello handshake. tenant is the
// accounting label carried in telemetry — it buys no priority.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	hello, err := Hello{Tenant: tenant}.Encode()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := WriteFrame(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	msg, err := Decode(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	ack, ok := msg.(HelloAck)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake got %T", msg)
	}
	conn.SetReadDeadline(time.Time{})
	c := &Client{
		conn:      conn,
		blockSize: int(ack.BlockSize),
		credit:    int(ack.Credit),
		pending:   make(map[uint64]chan Response),
	}
	if c.credit < 1 {
		c.credit = 1
	}
	c.cond = sync.NewCond(&c.mu)
	go c.readLoop()
	return c, nil
}

// BlockSize is the server's block payload size.
func (c *Client) BlockSize() int { return c.blockSize }

func (c *Client) readLoop() {
	for {
		payload, err := ReadFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClientClosed, err))
			return
		}
		msg, err := Decode(payload)
		if err != nil {
			c.fail(err)
			return
		}
		resp, ok := msg.(Response)
		if !ok {
			c.fail(fmt.Errorf("serve: unexpected %T mid-stream", msg))
			return
		}
		c.mu.Lock()
		if ch, ok := c.pending[resp.ID]; ok {
			delete(c.pending, resp.ID)
			c.outstanding--
			ch <- resp
		}
		if resp.Credit > 0 {
			c.credit = int(resp.Credit)
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- Response{ID: id, Status: StatusError, Data: []byte(err.Error())}
	}
	c.outstanding = 0
	c.cond.Broadcast()
}

// Do submits one request and blocks for its response, waiting first for
// credit if the window is full. The ID field is assigned by the client.
func (c *Client) Do(req Request) (Response, error) {
	ch := make(chan Response, 1)
	c.mu.Lock()
	for c.err == nil && c.outstanding >= c.credit {
		c.cond.Wait()
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Response{}, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.outstanding++
	c.mu.Unlock()

	b, err := req.Encode()
	if err == nil {
		c.wmu.Lock()
		err = WriteFrame(c.conn, b)
		c.wmu.Unlock()
	}
	if err != nil {
		c.mu.Lock()
		if _, ok := c.pending[req.ID]; ok {
			delete(c.pending, req.ID)
			c.outstanding--
			c.cond.Broadcast()
		}
		c.mu.Unlock()
		return Response{}, err
	}
	return <-ch, nil
}

// Close tears the connection down; in-flight Dos fail with ErrClientClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(ErrClientClosed)
	return err
}

// Doer submits one request and blocks for its response. *Client implements
// it; tests substitute fakes to exercise BlockStore's retry loop without a
// server.
type Doer interface {
	Do(Request) (Response, error)
}

// BlockStore adapts a Client into the internal/kv Store shape: Read/Write
// over block addresses, with bounded retry of shed responses. Deadline and
// Closing responses abort (the caller's probe chain should stop, not spin
// against a draining server).
type BlockStore struct {
	C Doer
	// Ctx, when non-nil, bounds the whole retry loop: a cancelled or
	// expired context aborts immediately — including mid-backoff sleep —
	// with the context's error. Nil keeps the uncancellable behaviour.
	Ctx context.Context
	// DeadlineMS is the per-request budget (0 = server default).
	DeadlineMS uint32
	// Retries bounds re-submissions after StatusShed (default 3).
	Retries int
	// Backoff is the initial retry delay, doubled each attempt (default
	// 2ms).
	Backoff time.Duration
}

// ErrShed reports a request still shed after the retry budget.
var ErrShed = errors.New("serve: shed")

// ErrServerClosing reports a draining server.
var ErrServerClosing = errors.New("serve: server closing")

// ErrDeadline reports a request refused or aborted on deadline.
var ErrDeadline = errors.New("serve: deadline")

// sleepCtx sleeps for d, or returns the context's error the moment ctx is
// cancelled. A nil ctx is an unconditional sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (s *BlockStore) do(req Request) ([]byte, error) {
	retries := s.Retries
	if retries == 0 {
		retries = 3
	}
	backoff := s.Backoff
	if backoff == 0 {
		backoff = 2 * time.Millisecond
	}
	req.DeadlineMS = s.DeadlineMS
	for attempt := 0; ; attempt++ {
		if s.Ctx != nil && s.Ctx.Err() != nil {
			return nil, s.Ctx.Err()
		}
		resp, err := s.C.Do(req)
		if err != nil {
			return nil, err
		}
		switch resp.Status {
		case StatusOK:
			return resp.Data, nil
		case StatusShed:
			if attempt >= retries {
				return nil, ErrShed
			}
			if err := sleepCtx(s.Ctx, backoff); err != nil {
				return nil, err
			}
			backoff *= 2
			req.Retry = true
		case StatusDeadline:
			return nil, ErrDeadline
		case StatusClosing:
			return nil, ErrServerClosing
		default:
			return nil, fmt.Errorf("serve: %s: %s", StatusString(resp.Status), resp.Data)
		}
	}
}

// Read fetches one block.
func (s *BlockStore) Read(addr uint64) ([]byte, error) {
	return s.do(Request{Addr: addr})
}

// Write stores one block.
func (s *BlockStore) Write(addr uint64, data []byte) error {
	_, err := s.do(Request{Addr: addr, Write: true, Data: data})
	return err
}
