package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// shedDoer always sheds, counting calls, so BlockStore's retry loop spins
// into its backoff sleep on every attempt.
type shedDoer struct{ calls int }

func (d *shedDoer) Do(req Request) (Response, error) {
	d.calls++
	return Response{ID: req.ID, Status: StatusShed}, nil
}

// TestBlockStoreBackoffRespectsContext is the regression test for the
// shed-retry backoff ignoring cancellation: with an hour-long backoff, a
// context cancelled mid-sleep must abort the retry loop promptly with the
// context's error instead of serving out the full backoff.
func TestBlockStoreBackoffRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d := &shedDoer{}
	st := &BlockStore{C: d, Ctx: ctx, Retries: 5, Backoff: time.Hour}

	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := st.Read(7)
		errc <- err
	}()

	// Let the first attempt shed and the loop enter its hour-long backoff,
	// then cancel mid-sleep.
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("cancellation took %v; backoff sleep not interrupted", waited)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Read still blocked in backoff after cancel")
	}
	if d.calls != 1 {
		t.Fatalf("server saw %d attempts, want 1 (cancel hit during first backoff)", d.calls)
	}

	// Already-cancelled context: abort before submitting anything.
	d2 := &shedDoer{}
	st2 := &BlockStore{C: d2, Ctx: ctx, Retries: 5, Backoff: time.Hour}
	if _, err := st2.Read(7); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled read got %v, want context.Canceled", err)
	}
	if d2.calls != 0 {
		t.Fatalf("pre-cancelled read reached the server %d times", d2.calls)
	}
}

// TestBlockStoreNilContextKeepsRetrying pins the nil-Ctx compatibility path:
// no context means the old bounded-retry behaviour, ending in ErrShed.
func TestBlockStoreNilContextKeepsRetrying(t *testing.T) {
	d := &shedDoer{}
	st := &BlockStore{C: d, Retries: 3, Backoff: time.Microsecond}
	if _, err := st.Read(7); !errors.Is(err, ErrShed) {
		t.Fatalf("got %v, want ErrShed", err)
	}
	if d.calls != 4 {
		t.Fatalf("server saw %d attempts, want 4 (initial + 3 retries)", d.calls)
	}
}
