package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdimm/internal/rng"
)

// LoadOptions drive the closed-loop load generator: Workers clients each
// keep exactly one request in flight (issue, wait, issue), so offered load
// scales with the worker count — the standard way to push a server past
// saturation without open-loop queue explosion.
type LoadOptions struct {
	Addr string
	// Tenant labels this generator's connections (default "loadgen").
	Tenant string
	// Workers is the closed-loop concurrency (default 4).
	Workers int
	// Ops is the total operation budget across workers.
	Ops int
	// Space is the block address space the workload draws from (default
	// 256).
	Space uint64
	// AddrOffset shifts the address range, so co-tenant generators can use
	// disjoint spaces.
	AddrOffset uint64
	// WriteFrac is the write fraction (default 0.5).
	WriteFrac float64
	// DeadlineMS is the per-request budget (0 = server default).
	DeadlineMS uint32
	// Seed makes the workload deterministic (default 1).
	Seed uint64
	// Payload is the write payload size (default 32; must fit the block).
	Payload int
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Offered       uint64  `json:"offered"`
	OK            uint64  `json:"ok"`
	Shed          uint64  `json:"shed"`
	Deadline      uint64  `json:"deadline"`
	Closing       uint64  `json:"closing"`
	Errors        uint64  `json:"errors"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
}

// RunLoad runs the closed-loop generator to its op budget and reports.
func RunLoad(o LoadOptions) (LoadReport, error) {
	if o.Tenant == "" {
		o.Tenant = "loadgen"
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Ops <= 0 {
		o.Ops = 1000
	}
	if o.Space == 0 {
		o.Space = 256
	}
	if o.WriteFrac == 0 {
		o.WriteFrac = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Payload == 0 {
		o.Payload = 32
	}

	var (
		rep     LoadReport
		budget  atomic.Int64
		mu      sync.Mutex
		lats    []float64 // ms, successful ops only
		firstEr error
		wg      sync.WaitGroup
	)
	budget.Store(int64(o.Ops))
	start := time.Now()
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(o.Addr, o.Tenant)
			if err != nil {
				mu.Lock()
				if firstEr == nil {
					firstEr = err
				}
				mu.Unlock()
				return
			}
			defer cl.Close()
			r := rng.Stream(o.Seed, "loadgen/"+o.Tenant, w)
			var myLats []float64
			for budget.Add(-1) >= 0 {
				req := Request{
					Addr:       o.AddrOffset + r.Uint64n(o.Space),
					DeadlineMS: o.DeadlineMS,
				}
				if r.Bool(o.WriteFrac) {
					req.Write = true
					req.Data = []byte(fmt.Sprintf("%-*d", o.Payload, r.Uint64n(1<<32)))
				}
				t0 := time.Now()
				resp, err := cl.Do(req)
				atomic.AddUint64(&rep.Offered, 1)
				if err != nil {
					atomic.AddUint64(&rep.Errors, 1)
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
				switch resp.Status {
				case StatusOK:
					atomic.AddUint64(&rep.OK, 1)
					myLats = append(myLats, float64(time.Since(t0).Microseconds())/1000)
				case StatusShed:
					atomic.AddUint64(&rep.Shed, 1)
				case StatusDeadline:
					atomic.AddUint64(&rep.Deadline, 1)
				case StatusClosing:
					atomic.AddUint64(&rep.Closing, 1)
					return
				default:
					atomic.AddUint64(&rep.Errors, 1)
				}
			}
			mu.Lock()
			lats = append(lats, myLats...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	rep.ElapsedSec = time.Since(start).Seconds()
	if rep.ElapsedSec > 0 {
		rep.GoodputPerSec = float64(rep.OK) / rep.ElapsedSec
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		rep.P50MS = lats[len(lats)/2]
		rep.P99MS = lats[(len(lats)*99)/100]
	}
	return rep, firstEr
}
