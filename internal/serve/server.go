package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sdimm"
	"sdimm/internal/durable"
	"sdimm/internal/fault"
	"sdimm/internal/flight"
	"sdimm/internal/telemetry"
	"sdimm/internal/witness"
)

// Config assembles a Server: the cluster it fronts, the pipeline shape, the
// admission controller, and the serving knobs.
type Config struct {
	// Cluster configures the backing cluster. The server wires its own
	// witness monitor and flight recorder into these options; a LinkTap
	// already present (e.g. an attacker harness) is chained, not replaced.
	Cluster sdimm.ClusterOptions
	// Pipeline shapes the streaming pipeline (zero value = defaults).
	Pipeline sdimm.PipelineOptions
	// Admission sizes the admission controller (zero value = defaults).
	// Its Capacity hook is installed by the server.
	Admission AdmissionOptions
	// DefaultDeadline applies to requests with DeadlineMS 0 (default
	// 250ms).
	DefaultDeadline time.Duration
	// InitialCredit and MaxCredit bound the per-connection slow-start
	// request window (defaults 1 and 32).
	InitialCredit int
	MaxCredit     int
	// Witness configures the obliviousness monitor; Members is set by the
	// server. Calibration and Window keep their package defaults when 0.
	Witness witness.Options
	// FlightDir, when set, is where the flight recorder auto-dumps on a
	// shed storm, an accepted-request deadline miss, or a witness
	// violation (one dump per trigger kind per process).
	FlightDir string
	// ShedStormThreshold is how many consecutive sheds (no accept in
	// between) constitute a storm (default 4 × the admission queue limit).
	ShedStormThreshold int
}

func (c Config) withDefaults() Config {
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 250 * time.Millisecond
	}
	if c.InitialCredit <= 0 {
		c.InitialCredit = 1
	}
	if c.MaxCredit <= 0 {
		c.MaxCredit = 32
	}
	return c
}

// Server is the multi-tenant block-serving front end: TCP connections carry
// framed requests into the admission layer, accepted requests flow through
// the cluster's streaming pipeline, and the telemetry/SLO surface hangs off
// HTTPHandler.
type Server struct {
	cfg  Config
	c    *sdimm.Cluster
	pipe *sdimm.Pipeline
	in   chan *sdimm.AsyncOp
	adm  *Admission
	reg  *telemetry.Registry
	wit  *witness.Monitor
	fr   *flight.Recorder

	ln      net.Listener
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	connWG  sync.WaitGroup
	pipeWG  sync.WaitGroup
	closing chan struct{}
	down    atomic.Bool

	start       time.Time
	okCount     atomic.Uint64
	shedStreak  atomic.Uint64
	acceptedDM  atomic.Uint64
	dumpMu      sync.Mutex
	dumped      map[string]bool
	latency     *telemetry.Histogram
	stormThresh uint64
}

// New builds the cluster and its serving front. The cluster is created
// inside New so the witness tap and flight recorder observe every frame
// from the first access.
func New(cfg Config) (*Server, error) {
	return build(cfg, func(opts sdimm.ClusterOptions) (*sdimm.Cluster, error) {
		return sdimm.NewCluster(opts)
	})
}

// Recover is New over sdimm.RecoverCluster: it rebuilds the cluster from
// its durable state directory (replaying the journal tail) and fronts the
// recovered cluster. The report describes what recovery replayed.
func Recover(cfg Config) (*Server, *durable.RecoveryReport, error) {
	var report *durable.RecoveryReport
	s, err := build(cfg, func(opts sdimm.ClusterOptions) (*sdimm.Cluster, error) {
		c, r, err := sdimm.RecoverCluster(opts)
		report = r
		return c, err
	})
	return s, report, err
}

func build(cfg Config, mk func(sdimm.ClusterOptions) (*sdimm.Cluster, error)) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Cluster.Telemetry == nil {
		cfg.Cluster.Telemetry = telemetry.NewRegistry()
	}
	reg := cfg.Cluster.Telemetry

	s := &Server{
		cfg:     cfg,
		reg:     reg,
		conns:   make(map[net.Conn]struct{}),
		closing: make(chan struct{}),
		dumped:  make(map[string]bool),
		start:   time.Now(),
	}

	wopts := cfg.Witness
	wopts.Members = cfg.Cluster.SDIMMs
	wopts.Registry = reg
	userViolation := wopts.OnViolation
	wopts.OnViolation = func(kind string) {
		s.dumpFlight("witness-" + kind)
		if userViolation != nil {
			userViolation(kind)
		}
	}
	s.wit = witness.New(wopts)

	if cfg.Cluster.Flight == nil {
		cfg.Cluster.Flight = flight.New(cfg.Cluster.SDIMMs, 4096)
	}
	s.fr = cfg.Cluster.Flight

	userTap := cfg.Cluster.LinkTap
	cfg.Cluster.LinkTap = func(sd int, dir fault.Direction, attempt int, frame []byte) {
		s.wit.Tap(sd, dir, attempt, frame)
		if userTap != nil {
			userTap(sd, dir, attempt, frame)
		}
	}

	c, err := mk(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	s.c = c
	s.cfg = cfg

	admOpts := cfg.Admission
	admOpts.Capacity = s.capacity
	adm, err := NewAdmission(admOpts)
	if err != nil {
		c.Close()
		return nil, err
	}
	s.adm = adm
	s.stormThresh = uint64(cfg.ShedStormThreshold)
	if s.stormThresh == 0 {
		s.stormThresh = uint64(4 * adm.Limit())
	}

	// Latency in microseconds, 250µs buckets out to 100ms (the tail rides
	// in the overflow bucket; Max is exact).
	s.latency = reg.Histogram("serve.latency_us", 250, 400)

	s.pipe = c.Pipeline(cfg.Pipeline)
	s.in = make(chan *sdimm.AsyncOp, 256)
	s.pipeWG.Add(1)
	go func() {
		defer s.pipeWG.Done()
		s.pipe.Serve(s.in)
	}()
	return s, nil
}

// Cluster exposes the backing cluster (tests: positions, crash planning).
func (s *Server) Cluster() *sdimm.Cluster { return s.c }

// Witness exposes the obliviousness monitor.
func (s *Server) Witness() *witness.Monitor { return s.wit }

// Admission exposes the admission controller.
func (s *Server) Admission() *Admission { return s.adm }

// Registry exposes the telemetry registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// capacity is the advertised capacity fraction: the mean CapacityWeight of
// the members' health states. Reading only the mutex-guarded state
// machines, it is safe concurrent with the pipeline.
func (s *Server) capacity() float64 {
	states := s.c.HealthStates()
	if len(states) == 0 {
		return 0
	}
	var sum float64
	for _, st := range states {
		sum += st.CapacityWeight()
	}
	return sum / float64(len(states))
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves connections until
// Shutdown. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.connWG.Add(1)
	go func() {
		defer s.connWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.down.Load() {
				s.mu.Unlock()
				conn.Close()
				continue
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.connWG.Add(1)
			go func() {
				defer s.connWG.Done()
				s.handleConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// servConn is per-connection state: the response writer lock and the
// slow-start credit window.
type servConn struct {
	conn   net.Conn
	wmu    sync.Mutex
	cmu    sync.Mutex
	credit int
}

func (cn *servConn) send(resp Response) error {
	b, err := resp.Encode()
	if err != nil {
		return err
	}
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	return WriteFrame(cn.conn, b)
}

// adjustCredit applies slow-start: grow multiplicatively while the server
// is unpressured, halve on pressure or shed. Returns the window to
// advertise.
func (s *Server) adjustCredit(cn *servConn, ok bool) uint16 {
	cn.cmu.Lock()
	defer cn.cmu.Unlock()
	if ok && !s.adm.Pressure() {
		cn.credit *= 2
		if cn.credit > s.cfg.MaxCredit {
			cn.credit = s.cfg.MaxCredit
		}
	} else {
		cn.credit /= 2
		if cn.credit < 1 {
			cn.credit = 1
		}
		s.reg.Counter("serve.backpressure").Inc()
	}
	return uint16(cn.credit)
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		return
	}
	msg, err := Decode(payload)
	if err != nil {
		return
	}
	hello, ok := msg.(Hello)
	if !ok {
		return
	}
	tenant := hello.Tenant
	if tenant == "" {
		tenant = "anon"
	}
	cn := &servConn{conn: conn, credit: s.cfg.InitialCredit}
	if err := func() error {
		cn.wmu.Lock()
		defer cn.wmu.Unlock()
		return WriteFrame(conn, HelloAck{
			Credit:    uint16(cn.credit),
			BlockSize: uint32(s.c.BlockSize()),
		}.Encode())
	}(); err != nil {
		return
	}
	s.reg.Counter("serve.connections", "tenant", tenant).Inc()

	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		msg, err := Decode(payload)
		if err != nil {
			return
		}
		req, ok := msg.(Request)
		if !ok {
			return
		}
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			s.handleRequest(cn, req, tenant)
		}()
	}
}

// handleRequest runs one request through admission and (if accepted) the
// pipeline. The tenant label is used for telemetry only — it is not passed
// to the admission layer, whose Admit signature cannot even express it.
func (s *Server) handleRequest(cn *servConn, req Request, tenant string) {
	s.reg.Counter("serve.requests", "tenant", tenant).Inc()
	budget := time.Duration(req.DeadlineMS) * time.Millisecond
	if budget == 0 {
		budget = s.cfg.DefaultDeadline
	}
	arrived := time.Now()
	deadline := arrived.Add(budget)

	switch s.adm.Admit(budget, req.Retry) {
	case ShedOverload:
		s.noteShed("overload", tenant)
		cn.send(Response{ID: req.ID, Status: StatusShed, Credit: s.adjustCredit(cn, false)})
		return
	case ShedDeadline:
		s.noteShed("deadline", tenant)
		cn.send(Response{ID: req.ID, Status: StatusDeadline, Credit: s.adjustCredit(cn, false)})
		return
	case ShedClosing:
		cn.send(Response{ID: req.ID, Status: StatusClosing, Credit: 1})
		return
	}
	s.shedStreak.Store(0)

	op := sdimm.BatchOp{Addr: req.Addr, Write: req.Write}
	if req.Write {
		op.Data = req.Data
	}
	a := sdimm.NewAsyncOp(op)
	s.in <- a
	r := <-a.Done
	elapsed := time.Since(arrived)
	s.adm.Done(elapsed)
	s.latency.Add(uint64(elapsed.Microseconds()))

	resp := Response{ID: req.ID}
	switch {
	case r.Err != nil:
		resp.Status = StatusError
		resp.Data = []byte(r.Err.Error())
		s.reg.Counter("serve.errors", "tenant", tenant).Inc()
		resp.Credit = s.adjustCredit(cn, false)
	case time.Now().After(deadline):
		// Accepted and executed, but too late: this is the SLO breach the
		// admission layer exists to prevent — count it loudly and snapshot
		// the flight rings.
		resp.Status = StatusDeadline
		s.acceptedDM.Add(1)
		s.reg.Counter("serve.deadline.missed.accepted", "tenant", tenant).Inc()
		s.dumpFlight("deadline-miss")
		resp.Credit = s.adjustCredit(cn, false)
	default:
		resp.Status = StatusOK
		if !req.Write {
			resp.Data = r.Data
		}
		s.okCount.Add(1)
		s.reg.Counter("serve.ok", "tenant", tenant).Inc()
		resp.Credit = s.adjustCredit(cn, true)
	}
	cn.send(resp)
}

func (s *Server) noteShed(reason, tenant string) {
	s.reg.Counter("serve.shed", "reason", reason, "tenant", tenant).Inc()
	if s.shedStreak.Add(1) == s.stormThresh {
		s.dumpFlight("shed-storm")
	}
}

// dumpFlight snapshots the flight recorder into FlightDir, once per
// trigger kind.
func (s *Server) dumpFlight(trigger string) {
	if s.fr == nil || s.cfg.FlightDir == "" {
		return
	}
	s.dumpMu.Lock()
	if s.dumped[trigger] {
		s.dumpMu.Unlock()
		return
	}
	s.dumped[trigger] = true
	s.dumpMu.Unlock()
	path := filepath.Join(s.cfg.FlightDir, "flight-"+trigger+".trace.json")
	if err := os.MkdirAll(s.cfg.FlightDir, 0o755); err == nil {
		if err := s.fr.DumpFile(path); err == nil {
			s.reg.Counter("serve.flight.dumps", "trigger", trigger).Inc()
			fmt.Fprintf(os.Stderr, "sdimm-serve: flight recorder dumped to %s (%s)\n", path, trigger)
		}
	}
}

// SLOSnapshot is the serving-health summary exposed at /slo.
type SLOSnapshot struct {
	UptimeSec              float64         `json:"uptime_sec"`
	GoodputPerSec          float64         `json:"goodput_per_sec"`
	OK                     uint64          `json:"ok"`
	AcceptedDeadlineMissed uint64          `json:"accepted_deadline_missed"`
	QueueDepth             int             `json:"queue_depth"`
	QueuePeak              int             `json:"queue_peak"`
	QueueLimit             int             `json:"queue_limit"`
	Capacity               float64         `json:"capacity"`
	LatencyP50US           uint64          `json:"latency_p50_us"`
	LatencyP99US           uint64          `json:"latency_p99_us"`
	Health                 []string        `json:"health"`
	Witness                witness.Verdict `json:"witness"`
}

// SLO snapshots current serving health.
func (s *Server) SLO() SLOSnapshot {
	states := s.c.HealthStates()
	names := make([]string, len(states))
	for i, st := range states {
		names[i] = st.String()
	}
	up := time.Since(s.start).Seconds()
	ok := s.okCount.Load()
	return SLOSnapshot{
		UptimeSec:              up,
		GoodputPerSec:          float64(ok) / up,
		OK:                     ok,
		AcceptedDeadlineMissed: s.acceptedDM.Load(),
		QueueDepth:             s.adm.Depth(),
		QueuePeak:              s.adm.PeakDepth(),
		QueueLimit:             s.adm.Limit(),
		Capacity:               s.capacity(),
		LatencyP50US:           s.latency.Quantile(0.5),
		LatencyP99US:           s.latency.Quantile(0.99),
		Health:                 names,
		Witness:                s.wit.Verdict(),
	}
}

// HTTPHandler is the observability surface: the telemetry registry at /
// and /metrics, the SLO snapshot at /slo, and the witness verdict at
// /witness.
func (s *Server) HTTPHandler() http.Handler {
	return telemetry.HandlerMux(s.reg, map[string]http.Handler{
		"/slo": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(s.SLO())
		}),
		"/witness": s.wit.Handler(),
	})
}

// Shutdown drains the server gracefully: admission closes (new requests
// answer StatusClosing), accepted requests run to completion through the
// pipeline and the durable journal commit point, the pipeline drains, a
// final checkpoint is forced when durability is on, and only then do the
// cluster and connections close. A server killed instead of Shutdown —
// SIGKILL, or a planned crash — recovers through Recover with no committed
// op lost (the crash suites pin bitwise equality).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.down.Swap(true) {
		return nil
	}
	s.adm.Close()
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()

	// Drain accepted requests: depth falls to zero once every in-flight op
	// has retired and answered.
	drained := false
	for !drained {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
			drained = s.adm.Depth() == 0
		}
	}

	// No submissions can follow: admission is closed and depth is zero.
	close(s.in)
	s.pipeWG.Wait()
	s.pipe.Close()

	var err error
	if s.cfg.Cluster.Durability != nil {
		err = s.c.ForceCheckpoint()
	}

	// Connections now: readers unblock on close and handlers exit.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()

	if cerr := s.c.Close(); err == nil {
		err = cerr
	}
	return err
}
