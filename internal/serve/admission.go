package serve

import (
	"sync"
	"time"

	"sdimm/internal/queueing"
)

// Admission is the server's tenant-oblivious admission controller. It is
// oblivious *by construction*: Admit receives only the request's deadline
// slack and retry flag — there is no parameter through which a tenant
// identity, connection, or block address could influence the decision, so
// shed decisions depend only on arrival order, queue state, and deadlines
// (TestAdmissionPermutationInvariance pins this).
//
// Three mechanisms bound overload:
//
//   - A queue-depth limit sized by queueing.QueueLimitFor — the smallest
//     M/M/1/K queue whose full-queue probability at the target utilization
//     stays under the configured overflow target. Beyond the limit,
//     requests shed instead of queueing into certain deadline misses.
//   - Deadline feasibility: a request whose slack is smaller than the
//     queue's estimated drain time (depth × an EWMA of recent service
//     times) is shed on arrival. Accepting it would burn pipeline work on
//     a response the client will discard — the "zero accepted requests
//     miss their deadline" discipline.
//   - A retry token bucket: client retries of shed requests spend tokens
//     that refill at a bounded rate, so retry storms decay geometrically
//     instead of amplifying the overload that caused them.
//
// The advertised queue limit scales with cluster health: Capacity (the mean
// of the members' fault.State CapacityWeight) shrinks the limit while the
// cluster is degraded, recovering, or draining — graceful degradation
// instead of queueing into a slow backend.
type Admission struct {
	mu sync.Mutex

	limit    int     // full-health queue-depth limit K
	depth    int     // admitted, not yet completed
	peak     int     // high-water depth since last SLO snapshot
	closed   bool    // draining: everything sheds with StatusClosing
	svcEWMA  float64 // seconds per op, exponentially weighted
	tokens   float64 // retry budget
	rate     float64 // tokens per second
	burst    float64
	last     time.Time
	capacity func() float64 // ∈ [0,1]; nil = always 1
	now      func() time.Time
}

// AdmissionOptions size an Admission controller.
type AdmissionOptions struct {
	// Rho is the design utilization the queue limit is sized for
	// (default 0.9).
	Rho float64
	// OverflowTarget is the acceptable full-queue probability at Rho
	// (default 1e-4). Together with Rho it yields the depth limit via
	// queueing.QueueLimitFor.
	OverflowTarget float64
	// MaxDepth caps the computed limit (default 4096).
	MaxDepth int
	// RetryRate is the retry token refill rate per second (default 16).
	RetryRate float64
	// RetryBurst is the bucket capacity (default 2 × RetryRate).
	RetryBurst float64
	// Capacity reports the cluster's current capacity fraction; nil means
	// full capacity. Typically health-state CapacityWeights averaged over
	// the members.
	Capacity func() float64
	// Now injects a clock for tests (default time.Now).
	Now func() time.Time
}

// Decision is an admission outcome.
type Decision int

const (
	// Accepted: execute the request; the caller must pair with Done.
	Accepted Decision = iota
	// ShedOverload: the queue is at its depth limit (or the retry budget
	// is exhausted) — answer StatusShed.
	ShedOverload
	// ShedDeadline: the deadline cannot be met through the current queue —
	// answer StatusDeadline without executing.
	ShedDeadline
	// ShedClosing: the server is draining — answer StatusClosing.
	ShedClosing
)

// NewAdmission builds the controller.
func NewAdmission(o AdmissionOptions) (*Admission, error) {
	if o.Rho == 0 {
		o.Rho = 0.9
	}
	if o.OverflowTarget == 0 {
		o.OverflowTarget = 1e-4
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 4096
	}
	if o.RetryRate == 0 {
		o.RetryRate = 16
	}
	if o.RetryBurst == 0 {
		o.RetryBurst = 2 * o.RetryRate
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	limit, err := queueing.QueueLimitFor(o.Rho, o.OverflowTarget, o.MaxDepth)
	if err != nil {
		return nil, err
	}
	a := &Admission{
		limit:    limit,
		tokens:   o.RetryBurst,
		rate:     o.RetryRate,
		burst:    o.RetryBurst,
		capacity: o.Capacity,
		now:      o.Now,
	}
	a.last = a.now()
	return a, nil
}

// Limit returns the full-health queue-depth limit.
func (a *Admission) Limit() int { return a.limit }

// effectiveLimit scales the depth limit by current capacity. Any nonzero
// capacity keeps the limit at least 1 — a degraded cluster still serves,
// just less of the queue.
func (a *Admission) effectiveLimit() int {
	cap := 1.0
	if a.capacity != nil {
		cap = a.capacity()
	}
	if cap <= 0 {
		return 0
	}
	l := int(float64(a.limit) * cap)
	if l < 1 {
		l = 1
	}
	return l
}

// Admit decides one request. slack is the time remaining until the
// request's deadline; retry marks a client retry of a previously shed
// request. On Accepted the caller must call Done(elapsed) exactly once when
// the request completes.
func (a *Admission) Admit(slack time.Duration, retry bool) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ShedClosing
	}
	now := a.now()
	a.tokens += now.Sub(a.last).Seconds() * a.rate
	if a.tokens > a.burst {
		a.tokens = a.burst
	}
	a.last = now

	if retry {
		if a.tokens < 1 {
			return ShedOverload
		}
		a.tokens--
	}
	if a.depth >= a.effectiveLimit() {
		return ShedOverload
	}
	// Deadline feasibility: the request waits behind ~depth ops, each
	// taking ~svcEWMA. If that drain time already exceeds the slack, the
	// response would arrive dead — shed now, cheaply.
	if a.svcEWMA > 0 && slack > 0 {
		wait := time.Duration(float64(a.depth+1) * a.svcEWMA * float64(time.Second))
		if wait > slack {
			return ShedDeadline
		}
	}
	a.depth++
	if a.depth > a.peak {
		a.peak = a.depth
	}
	return Accepted
}

// Done completes one accepted request, feeding its service time into the
// drain-time estimate.
func (a *Admission) Done(elapsed time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.depth > 0 {
		a.depth--
	}
	if s := elapsed.Seconds(); s > 0 {
		const alpha = 0.1
		if a.svcEWMA == 0 {
			a.svcEWMA = s
		} else {
			a.svcEWMA = (1-alpha)*a.svcEWMA + alpha*s
		}
	}
}

// Depth returns the current admitted-but-incomplete count.
func (a *Admission) Depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.depth
}

// PeakDepth returns and resets the high-water depth.
func (a *Admission) PeakDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := a.peak
	a.peak = a.depth
	return p
}

// Pressure reports whether the queue is past its backpressure watermark
// (half the effective limit) — connections should shrink their credit
// windows.
func (a *Admission) Pressure() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.depth >= (a.effectiveLimit()+1)/2
}

// Close moves the controller into draining: every subsequent Admit returns
// ShedClosing. Idempotent.
func (a *Admission) Close() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
}
