package serve

import (
	"testing"
	"time"

	"sdimm/internal/queueing"
	"sdimm/internal/rng"
)

// fakeClock is a deterministic time source for admission tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                   { return &fakeClock{t: time.Unix(1700000000, 0)} }
func admWithClock(t *testing.T, o AdmissionOptions, c *fakeClock) *Admission {
	t.Helper()
	o.Now = c.now
	a, err := NewAdmission(o)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAdmissionLimitFromQueueing(t *testing.T) {
	a, err := NewAdmission(AdmissionOptions{Rho: 0.9, OverflowTarget: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := queueing.QueueLimitFor(0.9, 1e-4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.Limit() != want {
		t.Fatalf("Limit = %d, want QueueLimitFor's %d", a.Limit(), want)
	}
	if a.Limit() < 10 {
		t.Fatalf("implausibly small limit %d", a.Limit())
	}
}

func TestAdmissionDepthLimitSheds(t *testing.T) {
	clk := newFakeClock()
	a := admWithClock(t, AdmissionOptions{Rho: 0.5, OverflowTarget: 0.01}, clk)
	limit := a.Limit()
	for i := 0; i < limit; i++ {
		if d := a.Admit(time.Second, false); d != Accepted {
			t.Fatalf("admit %d/%d = %v", i, limit, d)
		}
	}
	if d := a.Admit(time.Second, false); d != ShedOverload {
		t.Fatalf("over-limit admit = %v, want ShedOverload", d)
	}
	a.Done(time.Millisecond)
	if d := a.Admit(time.Second, false); d != Accepted {
		t.Fatalf("admit after Done = %v", d)
	}
}

func TestAdmissionDeadlineInfeasibleSheds(t *testing.T) {
	clk := newFakeClock()
	a := admWithClock(t, AdmissionOptions{}, clk)
	// Teach the EWMA a 10ms service time.
	for i := 0; i < 50; i++ {
		if a.Admit(time.Second, false) != Accepted {
			t.Fatal("warmup admit refused")
		}
		a.Done(10 * time.Millisecond)
	}
	// Queue up 20 requests: drain time ≈ 200ms.
	for i := 0; i < 20; i++ {
		if a.Admit(time.Second, false) != Accepted {
			t.Fatal("queue admit refused")
		}
	}
	if d := a.Admit(50*time.Millisecond, false); d != ShedDeadline {
		t.Fatalf("infeasible deadline admit = %v, want ShedDeadline", d)
	}
	if d := a.Admit(2*time.Second, false); d != Accepted {
		t.Fatalf("feasible deadline admit = %v, want Accepted", d)
	}
}

func TestAdmissionRetryBudget(t *testing.T) {
	clk := newFakeClock()
	a := admWithClock(t, AdmissionOptions{RetryRate: 2, RetryBurst: 4}, clk)
	// Burst of 4 retries passes, the fifth sheds.
	for i := 0; i < 4; i++ {
		if d := a.Admit(time.Second, true); d != Accepted {
			t.Fatalf("retry %d = %v", i, d)
		}
		a.Done(time.Millisecond)
	}
	if d := a.Admit(time.Second, true); d != ShedOverload {
		t.Fatalf("budget-exhausted retry = %v, want ShedOverload", d)
	}
	// Non-retries are unaffected.
	if d := a.Admit(time.Second, false); d != Accepted {
		t.Fatalf("fresh request during retry exhaustion = %v", d)
	}
	a.Done(time.Millisecond)
	// One second refills two tokens.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if d := a.Admit(time.Second, true); d != Accepted {
			t.Fatalf("refilled retry %d = %v", i, d)
		}
		a.Done(time.Millisecond)
	}
	if d := a.Admit(time.Second, true); d != ShedOverload {
		t.Fatalf("over-refill retry = %v", d)
	}
}

func TestAdmissionCapacityShrinksLimit(t *testing.T) {
	clk := newFakeClock()
	cap := 1.0
	o := AdmissionOptions{Rho: 0.5, OverflowTarget: 0.01, Capacity: func() float64 { return cap }}
	a := admWithClock(t, o, clk)
	full := a.Limit()

	count := func() int {
		n := 0
		for a.Admit(time.Second, false) == Accepted {
			n++
		}
		for i := 0; i < n; i++ {
			a.Done(0)
		}
		return n
	}
	if got := count(); got != full {
		t.Fatalf("full capacity admitted %d, want %d", got, full)
	}
	cap = 0.5
	if got := count(); got != full/2 {
		t.Fatalf("half capacity admitted %d, want %d", got, full/2)
	}
	cap = 0
	if d := a.Admit(time.Second, false); d != ShedOverload {
		t.Fatalf("zero capacity admit = %v", d)
	}
}

func TestAdmissionClose(t *testing.T) {
	clk := newFakeClock()
	a := admWithClock(t, AdmissionOptions{}, clk)
	if a.Admit(time.Second, false) != Accepted {
		t.Fatal("pre-close admit refused")
	}
	a.Close()
	a.Close() // idempotent
	if d := a.Admit(time.Second, false); d != ShedClosing {
		t.Fatalf("post-close admit = %v, want ShedClosing", d)
	}
}

// TestAdmissionPermutationInvariance is the tenant-obliviousness pin at the
// type level: admission decisions are a pure function of the (slack, retry)
// arrival sequence and completion schedule. Relabeling which tenant issued
// which request cannot change any decision because no identity flows into
// Admit — we verify by replaying the same arrival sequence twice and
// demanding identical decision vectors, then noting the signature admits no
// other inputs.
func TestAdmissionPermutationInvariance(t *testing.T) {
	r := rng.Stream(11, "admission-perm", 0)
	type arrival struct {
		slack time.Duration
		retry bool
		done  bool // complete one outstanding request before this arrival
	}
	seq := make([]arrival, 400)
	for i := range seq {
		seq[i] = arrival{
			slack: time.Duration(1+r.Uint64n(100)) * time.Millisecond,
			retry: r.Bool(0.2),
			done:  r.Bool(0.4),
		}
	}
	replay := func() []Decision {
		clk := newFakeClock()
		a := admWithClock(t, AdmissionOptions{Rho: 0.5, OverflowTarget: 0.05, RetryRate: 4}, clk)
		outstanding := 0
		out := make([]Decision, len(seq))
		for i, ar := range seq {
			if ar.done && outstanding > 0 {
				a.Done(5 * time.Millisecond)
				outstanding--
			}
			clk.advance(time.Millisecond)
			out[i] = a.Admit(ar.slack, ar.retry)
			if out[i] == Accepted {
				outstanding++
			}
		}
		return out
	}
	a, b := replay(), replay()
	accepted, shed := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical replays: %v vs %v", i, a[i], b[i])
		}
		if a[i] == Accepted {
			accepted++
		} else {
			shed++
		}
	}
	if accepted == 0 || shed == 0 {
		t.Fatalf("degenerate sequence: %d accepted, %d shed", accepted, shed)
	}
}

// TestAdmissionUnderBurstyArrivals replays the queueing-package result at
// the admission layer: MMPP-bursty arrivals at the same mean rate as a
// uniform stream must shed strictly more, because bursts pile into the
// depth limit that the mean-rate analysis would never hit.
func TestAdmissionUnderBurstyArrivals(t *testing.T) {
	run := func(m queueing.MMPP, seed uint64) (accepted, shed int) {
		clk := newFakeClock()
		a := admWithClock(t, AdmissionOptions{Rho: 0.5, OverflowTarget: 0.2}, clk) // limit 2
		r := rng.Stream(seed, "admission-mmpp", 0)
		high := false
		outstanding := 0
		for tick := 0; tick < 6000; tick++ {
			clk.advance(time.Millisecond)
			rate := m.LowRate
			if high {
				rate = m.HighRate
			}
			if r.Bool(rate) {
				if a.Admit(time.Second, false) == Accepted {
					accepted++
					outstanding++
				} else {
					shed++
				}
			}
			if outstanding > 0 && r.Bool(0.30) {
				a.Done(4 * time.Millisecond)
				outstanding--
			}
			flip := m.PDown
			if !high {
				flip = m.PUp
			}
			if r.Bool(flip) {
				high = !high
			}
		}
		return accepted, shed
	}
	uniform := queueing.MMPP{LowRate: 0.25, HighRate: 0.25, PUp: 0.05, PDown: 0.05}
	bursty := queueing.MMPP{LowRate: 0.05, HighRate: 0.45, PUp: 0.05, PDown: 0.05}
	ua, us := run(uniform, 21)
	ba, bs := run(bursty, 21)
	if ua == 0 || ba == 0 {
		t.Fatalf("degenerate runs: uniform accepted %d, bursty accepted %d", ua, ba)
	}
	uRate := float64(us) / float64(ua+us)
	bRate := float64(bs) / float64(ba+bs)
	if bRate <= uRate {
		t.Fatalf("bursty arrivals shed no more than uniform: %.3f vs %.3f", bRate, uRate)
	}
	t.Logf("shed rate: uniform %.3f, bursty %.3f", uRate, bRate)
}
