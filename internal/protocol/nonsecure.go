package protocol

import (
	"sdimm/internal/config"
	"sdimm/internal/dram"
	"sdimm/internal/event"
	"sdimm/internal/stats"
)

// NonSecure is the insecure baseline: each LLC miss is one DRAM line access
// striped across the host channels.
type NonSecure struct {
	eng     *event.Engine
	chans   []*dram.Channel
	mappers []*dram.Mapper
	st      BackendStats
}

// NewNonSecure builds the non-secure backend.
func NewNonSecure(eng *event.Engine, cfg config.Config) (*NonSecure, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ns := &NonSecure{eng: eng}
	ns.st.MissLatency = stats.NewHistogram(64, 512)
	for c := 0; c < cfg.Org.Channels; c++ {
		ch := dram.NewChannel(eng, chName(c), cfg.Org, cfg.Timing, cfg.Org.RanksPerChannel())
		ns.chans = append(ns.chans, ch)
		ns.mappers = append(ns.mappers, dram.NewMapper(cfg.Org, ch.Ranks()))
	}
	return ns, nil
}

func chName(i int) string { return string(rune('A'+i)) + "-host" }

func (ns *NonSecure) place(addr uint64) (int, dram.Coord) {
	ci := int(addr % uint64(len(ns.chans)))
	return ci, ns.mappers[ci].Map(addr / uint64(len(ns.chans)))
}

// Read implements Backend.
func (ns *NonSecure) Read(addr uint64, done func()) {
	ns.st.Reads++
	start := ns.eng.Now()
	ci, coord := ns.place(addr)
	ns.chans[ci].Submit(&dram.Request{
		Coord: coord,
		OnComplete: func(now event.Time) {
			ns.st.MissLatency.Add(uint64(now - start))
			done()
		},
	})
}

// Write implements Backend.
func (ns *NonSecure) Write(addr uint64) {
	ns.st.Writes++
	ci, coord := ns.place(addr)
	ns.chans[ci].Submit(&dram.Request{Coord: coord, Write: true})
}

// Channels implements Backend.
func (ns *NonSecure) Channels() ([]*dram.Channel, []bool) {
	local := make([]bool, len(ns.chans))
	return ns.chans, local
}

// Links implements Backend.
func (ns *NonSecure) Links() []*dram.Link { return nil }

// Stats implements Backend.
func (ns *NonSecure) Stats() BackendStats { return ns.st }
