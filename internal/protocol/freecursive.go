package protocol

import (
	"fmt"

	"sdimm/internal/config"
	"sdimm/internal/dram"
	"sdimm/internal/event"
	"sdimm/internal/freecursive"
	"sdimm/internal/oram"
	"sdimm/internal/rng"
	"sdimm/internal/stats"
)

// FreecursiveBackend is the paper's baseline: the full Freecursive ORAM
// controller at the CPU, with the unified tree striped across all host
// channels (subtree-packed layout, top levels optionally cached on chip).
// The backend serves one accessORAM at a time — its throughput is bound by
// host-channel bandwidth, which is exactly the bottleneck the SDIMM
// protocols attack.
type FreecursiveBackend struct {
	eng    *event.Engine
	cfg    config.Config
	fe     *freecursive.Frontend
	engine *oram.Engine
	tm     *treeMem
	chans  []*dram.Channel
	enc    event.Time

	q    reqQueue
	busy bool

	st BackendStats
}

// NewFreecursive builds the baseline backend.
func NewFreecursive(eng *event.Engine, cfg config.Config) (*FreecursiveBackend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fe, err := freecursive.New(dataBlocks(cfg), cfg.ORAM.RecursivePosMaps, cfg.ORAM.PosMapScale,
		cfg.ORAM.PLBBytes/cfg.Org.LineBytes)
	if err != nil {
		return nil, err
	}
	geom, err := oram.NewGeometry(cfg.ORAM.Levels)
	if err != nil {
		return nil, err
	}
	engine, err := oram.NewEngine(oram.NewSparseStore(cfg.ORAM.Z), oram.NewSparsePosMap(), oram.Options{
		Geometry:       geom,
		StashCapacity:  cfg.ORAM.StashCapacity,
		EvictThreshold: cfg.ORAM.EvictThreshold,
		Rand:           rng.New(cfg.Seed ^ 0xf4ee),
	})
	if err != nil {
		return nil, err
	}
	b := &FreecursiveBackend{
		eng:    eng,
		cfg:    cfg,
		fe:     fe,
		engine: engine,
		enc:    event.Time(cfg.ORAM.EncLatency),
	}
	b.st.MissLatency = stats.NewHistogram(256, 4096)
	for c := 0; c < cfg.Org.Channels; c++ {
		b.chans = append(b.chans, dram.NewChannel(eng, chName(c), cfg.Org, cfg.Timing, cfg.Org.RanksPerChannel()))
	}
	layout, err := buildLayout(cfg, cfg.ORAM.Levels, cfg.ORAM.LinesPerBucket(), 0)
	if err != nil {
		return nil, err
	}
	b.tm, err = newTreeMem(eng, b.chans, cfg.Org, layout, false)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Read implements Backend.
func (b *FreecursiveBackend) Read(addr uint64, done func()) {
	b.st.Reads++
	b.q.push(request{addr: addr, done: done, start: b.eng.Now()})
	b.pump()
}

// Write implements Backend.
func (b *FreecursiveBackend) Write(addr uint64) {
	b.st.Writes++
	b.q.push(request{addr: addr, write: true})
	b.pump()
}

func (b *FreecursiveBackend) pump() {
	if b.busy {
		return
	}
	req, ok := b.q.pop()
	if !ok {
		return
	}
	b.busy = true
	ops, err := b.fe.Resolve(req.addr % dataBlocks(b.cfg))
	if err != nil {
		panic(fmt.Sprintf("protocol: freecursive resolve: %v", err))
	}
	b.runOps(req, ops, 0)
}

// runOps performs the accessORAM chain serially: each op reads a path,
// waits for the data (+ decrypt), writes it back, then the next op starts.
func (b *FreecursiveBackend) runOps(req request, ops []freecursive.Op, i int) {
	if i == len(ops) {
		if !req.write {
			b.st.MissLatency.Add(uint64(b.eng.Now() - req.start))
			req.done()
		}
		b.busy = false
		b.pump()
		return
	}
	op := oram.OpRead
	if req.write && i == len(ops)-1 {
		op = oram.OpWrite
	}
	_, plan, err := b.engine.Access(ops[i].Addr, op, nil)
	if err != nil {
		panic(fmt.Sprintf("protocol: freecursive access: %v", err))
	}
	b.st.AccessORAMs++
	b.st.BgEvictions += uint64(plan.BackgroundEvicts)

	// Main path plus any background-eviction paths, chained serially.
	// plan.Path aliases engine scratch clobbered by the next Access; the
	// replay closures run after later ops, so capture an owned copy.
	paths := [][]uint64{append([]uint64(nil), plan.Path...)}
	for _, leaf := range plan.BackgroundLeaves {
		paths = append(paths, b.engine.Geometry().Path(leaf, nil))
	}
	b.runPaths(paths, 0, func() {
		b.runOps(req, ops, i+1)
	})
}

func (b *FreecursiveBackend) runPaths(paths [][]uint64, i int, done func()) {
	if i == len(paths) {
		done()
		return
	}
	b.tm.accessPath(paths[i], func() {
		b.eng.After(b.enc, func() { b.runPaths(paths, i+1, done) })
	})
}

// Channels implements Backend.
func (b *FreecursiveBackend) Channels() ([]*dram.Channel, []bool) {
	return b.chans, make([]bool, len(b.chans))
}

// Links implements Backend.
func (b *FreecursiveBackend) Links() []*dram.Link { return nil }

// Stats implements Backend.
func (b *FreecursiveBackend) Stats() BackendStats {
	s := b.st
	s.QueuePeak = b.q.peak
	return s
}

// Frontend exposes the Freecursive frontend (for accessORAM-per-miss stats).
func (b *FreecursiveBackend) Frontend() *freecursive.Frontend { return b.fe }
