package protocol

import (
	"testing"

	"sdimm/internal/config"
	"sdimm/internal/event"
)

// TestIndependentReadPriority: a read miss issued after a pile of posted
// writes must not wait for all of them.
func TestIndependentReadPriority(t *testing.T) {
	eng := &event.Engine{}
	b, err := NewIndependent(eng, cfgFor(config.Independent, 1, 20))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		b.Write(uint64(i * 7919))
	}
	var readDone event.Time
	b.Read(99999, func() { readDone = eng.Now() })
	eng.RunWhile(func() bool { return readDone == 0 })
	if readDone == 0 {
		t.Fatal("read never completed")
	}
	// The read must overtake the pile of posted writes: when it finishes,
	// posted work must still be waiting somewhere in the backend.
	pending := 0
	for sd := range b.postedQ {
		pending += len(b.postedQ[sd])
	}
	chans, _ := b.Channels()
	for _, ch := range chans {
		pending += ch.Pending()
	}
	if pending == 0 {
		t.Fatal("all posted writes finished before the read: no priority")
	}
}

// TestSplitPipelineOverlaps: two back-to-back accesses on the split group
// must take less than twice one access (stage A of the second overlaps
// stage B of the first).
func TestSplitPipelineOverlaps(t *testing.T) {
	single := func(n int) event.Time {
		eng := &event.Engine{}
		b, err := NewSplit(eng, cfgFor(config.Split, 1, 22))
		if err != nil {
			t.Fatal(err)
		}
		done := 0
		for i := 0; i < n; i++ {
			b.Read(uint64(i*104729), func() { done++ })
		}
		eng.RunWhile(func() bool { return done < n })
		return eng.Now()
	}
	one := single(1)
	four := single(4)
	if four >= 4*one {
		t.Fatalf("4 accesses took %d, ≥ 4x single %d: no pipelining", four, one)
	}
}

// TestIndepSplitBothHalvesProgress: concurrent misses spread across halves
// finish faster than on a single Split group of the same width.
func TestIndepSplitParallelHalves(t *testing.T) {
	addrs := make([]uint64, 16)
	for i := range addrs {
		addrs[i] = uint64(i * 900001)
	}
	engIS := &event.Engine{}
	bIS, err := NewIndepSplit(engIS, cfgFor(config.IndepSplit, 2, 22))
	if err != nil {
		t.Fatal(err)
	}
	tIS := issueReads(t, engIS, bIS, addrs)

	engS := &event.Engine{}
	bS, err := NewSplit(engS, cfgFor(config.Split, 2, 22))
	if err != nil {
		t.Fatal(err)
	}
	tS := issueReads(t, engS, bS, addrs)
	// Indep-split has 2 independent pipelines vs split's one (wider) one;
	// under high MLP it should not be slower.
	if float64(tIS) > 1.1*float64(tS) {
		t.Fatalf("indep-split %d much slower than split-4 %d under MLP", tIS, tS)
	}
}
