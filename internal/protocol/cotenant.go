package protocol

import (
	"errors"

	"sdimm/internal/config"
	"sdimm/internal/dram"
	"sdimm/internal/event"
	"sdimm/internal/stats"
)

// TenantMem is the memory system of a non-secure co-tenant VM sharing a
// machine with a secure (ORAM) tenant — the co-residency scenario of
// Section III-A point 3, which the paper motivates but leaves unevaluated
// ("the low ORAM-specific traffic on the main DDR bus can lead to lower
// latency for memory accesses by other non-secure threads"). Two sharing
// modes exist:
//
//   - on-channels: the tenant's LRDIMM hangs off the same bank-modelled
//     channels the ORAM baseline saturates (the Freecursive scenario);
//
//   - on-links: the tenant's LRDIMM has its own banks but shares the
//     physical host channel with SDIMM command/data traffic, so its bursts
//     contend only for link occupancy (the SDIMM scenario).
type TenantMem struct {
	eng     *event.Engine
	chans   []*dram.Channel
	mappers []*dram.Mapper
	links   []*dram.Link

	st BackendStats
}

// NewTenantOnChannels attaches the tenant to existing bank-modelled
// channels (shared with the ORAM backend that owns them).
func NewTenantOnChannels(eng *event.Engine, org config.Org, chans []*dram.Channel) (*TenantMem, error) {
	if len(chans) == 0 {
		return nil, errors.New("protocol: tenant needs at least one channel")
	}
	t := &TenantMem{eng: eng, chans: chans}
	t.st.MissLatency = stats.NewHistogram(64, 4096)
	for _, ch := range chans {
		t.mappers = append(t.mappers, dram.NewMapper(org, ch.Ranks()))
	}
	return t, nil
}

// NewTenantOnLinks gives the tenant its own LRDIMM (one quad-rank channel
// per host link) whose data bursts also occupy the shared host links.
func NewTenantOnLinks(eng *event.Engine, cfg config.Config, links []*dram.Link) (*TenantMem, error) {
	if len(links) == 0 {
		return nil, errors.New("protocol: tenant needs at least one link")
	}
	t := &TenantMem{eng: eng, links: links}
	t.st.MissLatency = stats.NewHistogram(64, 4096)
	for i := range links {
		ch := dram.NewChannel(eng, "lrdimm"+string(rune('0'+i)), cfg.Org, cfg.Timing, cfg.Org.RanksPerDIMM)
		t.chans = append(t.chans, ch)
		t.mappers = append(t.mappers, dram.NewMapper(cfg.Org, ch.Ranks()))
	}
	return t, nil
}

func (t *TenantMem) place(addr uint64) (int, dram.Coord) {
	ci := int(addr % uint64(len(t.chans)))
	return ci, t.mappers[ci].Map(addr / uint64(len(t.chans)))
}

// Read implements cpusim.Memory: the line must traverse both the bank
// pipeline and (in link mode) the shared host bus.
func (t *TenantMem) Read(addr uint64, done func()) {
	t.st.Reads++
	start := t.eng.Now()
	ci, coord := t.place(addr)
	remaining := 1
	if t.links != nil {
		remaining = 2
	}
	fin := func() {
		remaining--
		if remaining == 0 {
			t.st.MissLatency.Add(uint64(t.eng.Now() - start))
			done()
		}
	}
	t.chans[ci].Submit(&dram.Request{Coord: coord, OnComplete: func(event.Time) { fin() }})
	if t.links != nil {
		t.links[ci%len(t.links)].Transfer(64, func(event.Time) { fin() })
	}
}

// Write implements cpusim.Memory (posted).
func (t *TenantMem) Write(addr uint64) {
	t.st.Writes++
	ci, coord := t.place(addr)
	t.chans[ci].Submit(&dram.Request{Coord: coord, Write: true})
	if t.links != nil {
		t.links[ci%len(t.links)].Transfer(64, nil)
	}
}

// Channels implements Backend.
func (t *TenantMem) Channels() ([]*dram.Channel, []bool) {
	return t.chans, make([]bool, len(t.chans))
}

// Links implements Backend.
func (t *TenantMem) Links() []*dram.Link { return nil }

// Stats implements Backend.
func (t *TenantMem) Stats() BackendStats { return t.st }
