package protocol

import (
	"fmt"

	"sdimm/internal/config"
	"sdimm/internal/dram"
	"sdimm/internal/event"
	"sdimm/internal/freecursive"
	"sdimm/internal/oram"
	"sdimm/internal/rng"
	"sdimm/internal/sdimm"
	"sdimm/internal/stats"
	"sdimm/internal/telemetry"
)

// Sizes of host-link messages in bytes. Every long command carries one
// data block (real or dummy) plus an encrypted header; PROBE is a short
// read of the reserved block.
const (
	msgAccess = 72 // ACCESS: block + header (operation type hidden)
	msgProbe  = 8
	msgFetch  = 72 // FETCH_RESULT: block + new leaf
	msgAppend = 72 // APPEND: block (or dummy) + header
)

// IndependentBackend implements the Independent protocol (Section III-C):
// the global ORAM is partitioned by leaf MSBs into one complete sub-ORAM
// per SDIMM. The CPU runs the Freecursive frontend and the position map;
// each SDIMM runs whole accessORAM operations against its own DRAM. The
// host channel carries only the requested blocks, PROBE polling, and the
// APPEND broadcast that obfuscates block migration.
//
// Functional ORAM state transitions happen in submission order (so queue
// scheduling can never corrupt placement state); the work queues replay
// the corresponding bus traffic with demand accesses prioritized over
// posted LLC writebacks.
type IndependentBackend struct {
	eng *event.Engine
	cfg config.Config
	fe  *freecursive.Frontend
	pos oram.PositionMap
	rnd *rng.Source

	buffers []*sdimm.Buffer
	tms     []*treeMem
	chans   []*dram.Channel
	links   []*dram.Link

	localBits uint // local leaf bits per SDIMM
	ring      bool // ring-eviction engines: per-access path replay is read-only

	demandQ  [][]func(done func())
	postedQ  [][]func(done func())
	workBusy []bool

	ready   []int      // per SDIMM: responses whose data has arrived from DRAM
	waiters [][]func() // per SDIMM: FIFO of fetchers awaiting a response
	probing []bool     // per SDIMM: probe loop active

	enc    event.Time
	st     BackendStats
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
}

// SetTelemetry attaches a metrics registry and an access tracer. The
// registry gains the backend's miss-latency histogram (shared, not copied,
// with the paper-table stats) under protocol.miss_latency; the tracer
// receives one lane per in-flight miss carrying the per-phase spans
// link.send → sdimm.queue → dram.path → buffer.seal → fetch.wait →
// result.decrypt, whose durations tile the enclosing miss span.
func (b *IndependentBackend) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	b.reg = reg
	b.tracer = tr
	reg.AddHistogram("protocol.miss_latency", b.st.MissLatency)
}

// NewIndependent builds the Independent backend.
func NewIndependent(eng *event.Engine, cfg config.Config) (*IndependentBackend, error) {
	return newIndependent(eng, cfg, false)
}

// newIndependent builds the Independent topology; with ring set the per-SDIMM
// engines run in ring-eviction mode and the per-access path replay is
// read-only (writeback is deferred to the eviction pointer, which surfaces as
// background paths).
func newIndependent(eng *event.Engine, cfg config.Config, ring bool) (*IndependentBackend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := cfg.NumSDIMMs
	localLevels := cfg.ORAM.Levels - int(log2(k))
	if localLevels < 2 {
		return nil, fmt.Errorf("protocol: %d SDIMMs need more than %d tree levels", k, cfg.ORAM.Levels)
	}
	fe, err := freecursive.New(dataBlocks(cfg), cfg.ORAM.RecursivePosMaps, cfg.ORAM.PosMapScale,
		cfg.ORAM.PLBBytes/cfg.Org.LineBytes)
	if err != nil {
		return nil, err
	}
	b := &IndependentBackend{
		eng:       eng,
		cfg:       cfg,
		fe:        fe,
		pos:       oram.NewSparsePosMap(),
		rnd:       rng.New(cfg.Seed ^ 0x1dde),
		localBits: uint(localLevels - 1),
		ring:      ring,
		enc:       event.Time(cfg.ORAM.EncLatency),
	}
	ringA := 0
	if ring {
		ringA = cfg.ORAM.RingFlushInterval
	}
	b.st.MissLatency = stats.NewHistogram(256, 4096)
	for c := 0; c < cfg.Org.Channels; c++ {
		b.links = append(b.links, dram.NewLink(eng, cfg.Org, cfg.Timing))
	}
	numRanks := 0
	if cfg.LowPower {
		numRanks = cfg.Org.RanksPerDIMM
	}
	layout, err := buildLayout(cfg, localLevels, cfg.ORAM.LinesPerBucket(), numRanks)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		ch := dram.NewChannel(eng, fmt.Sprintf("sdimm%d", i), cfg.Org, cfg.Timing, cfg.Org.RanksPerDIMM)
		b.chans = append(b.chans, ch)
		tm, err := newTreeMem(eng, []*dram.Channel{ch}, cfg.Org, layout, cfg.LowPower)
		if err != nil {
			return nil, err
		}
		b.tms = append(b.tms, tm)
		eng2, err := oram.NewEngine(oram.NewSparseStore(cfg.ORAM.Z), nil, oram.Options{
			Geometry:          oram.MustGeometry(localLevels),
			StashCapacity:     cfg.ORAM.StashCapacity,
			EvictThreshold:    cfg.ORAM.EvictThreshold,
			RingFlushInterval: ringA,
			Rand:              rng.New(cfg.Seed ^ uint64(0xd1*i+7)),
		})
		if err != nil {
			return nil, err
		}
		buf, err := sdimm.NewBuffer(fmt.Sprintf("sdimm-%d", i), eng2,
			cfg.ORAM.TransferQueueCap, cfg.ORAM.DrainProb, rng.New(cfg.Seed^uint64(0xab*i+3)))
		if err != nil {
			return nil, err
		}
		b.buffers = append(b.buffers, buf)
	}
	b.demandQ = make([][]func(done func()), k)
	b.postedQ = make([][]func(done func()), k)
	b.workBusy = make([]bool, k)
	b.ready = make([]int, k)
	b.waiters = make([][]func(), k)
	b.probing = make([]bool, k)
	return b, nil
}

// Read implements Backend.
func (b *IndependentBackend) Read(addr uint64, done func()) {
	b.st.Reads++
	start := b.eng.Now()
	lane := b.tracer.Lane()
	b.startMiss(addr, lane, false, func() {
		now := b.eng.Now()
		b.st.MissLatency.Add(uint64(now - start))
		if b.tracer != nil {
			b.tracer.CompleteArgs(lane, "miss", "access", uint64(start), uint64(now),
				map[string]any{"addr": addr})
			b.tracer.FreeLane(lane)
		}
		done()
	})
}

// Write implements Backend.
func (b *IndependentBackend) Write(addr uint64) {
	b.st.Writes++
	start := b.eng.Now()
	lane := b.tracer.Lane()
	var fin func()
	if b.tracer != nil {
		fin = func() {
			b.tracer.CompleteArgs(lane, "writeback.miss", "access", uint64(start), uint64(b.eng.Now()),
				map[string]any{"addr": addr})
			b.tracer.FreeLane(lane)
		}
	}
	b.startMiss(addr, lane, true, fin)
}

func (b *IndependentBackend) startMiss(addr uint64, lane int, write bool, done func()) {
	ops, err := b.fe.Resolve(addr % dataBlocks(b.cfg))
	if err != nil {
		panic(fmt.Sprintf("protocol: independent resolve: %v", err))
	}
	b.runOps(ops, 0, lane, write, done)
}

func (b *IndependentBackend) runOps(ops []freecursive.Op, i, lane int, write bool, done func()) {
	if i == len(ops) {
		if done != nil {
			done()
		}
		return
	}
	op := oram.OpRead
	cat := "posmap"
	if i == len(ops)-1 {
		cat = "data"
		if write {
			op = oram.OpWrite
		}
	}
	b.accessORAM(ops[i].Addr, op, write, lane, cat, func() {
		b.runOps(ops, i+1, lane, write, done)
	})
}

// accessORAM runs one distributed accessORAM. All functional steps (the
// SDIMM's local access, the response, the APPEND placement) execute now,
// in submission order; the bus traffic replays on the timed queues.
//
// lane and cat drive tracing: phase boundary timestamps are captured per
// access so the phase spans tile [t0, end] of the accessORAM span exactly
// — link.send [t0,t1], sdimm.queue [t1,t1b], dram.path [t1b,t2],
// buffer.seal [t2,t2e], fetch.wait [t2e,t3], result.decrypt [t3,end].
func (b *IndependentBackend) accessORAM(addr uint64, op oram.Op, posted bool, lane int, cat string, cont func()) {
	b.st.AccessORAMs++
	tr := b.tracer
	t0 := uint64(b.eng.Now())
	var t1, t1b, t2, t2e, t3 uint64
	globalLeaves := uint64(1) << (b.cfg.ORAM.Levels - 1)
	oldG, ok := b.pos.Get(addr)
	if !ok {
		oldG = b.rnd.Uint64n(globalLeaves)
	}
	newG := b.rnd.Uint64n(globalLeaves)
	b.pos.Set(addr, newG)

	mask := uint64(1)<<b.localBits - 1
	sd := int(oldG >> b.localBits)
	sdNew := int(newG >> b.localBits)
	keep := sd == sdNew

	// --- Functional execution (instantaneous, ordered) ---
	req := sdimm.AccessRequest{
		Addr:    addr,
		Op:      op,
		OldLeaf: oldG & mask,
		NewLeaf: newG & mask,
		Keep:    keep,
	}
	plan, extras, err := b.buffers[sd].HandleAccess(req)
	if err != nil {
		panic(fmt.Sprintf("protocol: independent access on sdimm %d (%s): %v", sd, b.buffers[sd].ID(), err))
	}
	b.st.BgEvictions += uint64(plan.BackgroundEvicts)
	b.st.ExtraDrains += uint64(len(extras))
	if !b.buffers[sd].HandleProbe() {
		panic(fmt.Sprintf("protocol: independent access on sdimm %d (%s) produced no response", sd, b.buffers[sd].ID()))
	}
	resp, err := b.buffers[sd].HandleFetchResult()
	if err != nil {
		panic(fmt.Sprintf("protocol: independent fetch on sdimm %d (%s): %v", sd, b.buffers[sd].ID(), err))
	}
	blk := resp.Block
	blk.Leaf = newG & mask
	appendForced := make([]*oram.AccessPlan, b.cfg.NumSDIMMs)
	for j := 0; j < b.cfg.NumSDIMMs; j++ {
		real := !keep && j == sdNew && !resp.Dummy
		var forced *oram.AccessPlan
		if real {
			forced, err = b.buffers[j].HandleAppend(blk, false)
		} else {
			forced, err = b.buffers[j].HandleAppend(oram.Block{}, true)
		}
		if err != nil {
			panic(fmt.Sprintf("protocol: independent append on sdimm %d (%s): %v", j, b.buffers[j].ID(), err))
		}
		if forced != nil {
			b.st.ExtraDrains++
		}
		appendForced[j] = forced
	}

	// --- Timing replay ---
	// plan.Path and plan.BackgroundLeaves alias engine scratch that later
	// accesses overwrite; the replay closures below run after arbitrary
	// interleaved accesses, so capture an owned copy now.
	paths := [][]uint64{append([]uint64(nil), plan.Path...)}
	geom := b.buffers[sd].Engine().Geometry()
	for _, l := range plan.BackgroundLeaves {
		paths = append(paths, geom.Path(l, nil))
	}
	for _, ex := range extras {
		paths = append(paths, ex.Path)
	}

	// 1. ACCESS command (always carries one block of data), then the
	// SDIMM's controller performs the path access(es).
	b.hostSend(sd, msgAccess, func() {
		t1 = uint64(b.eng.Now())
		tr.Complete(lane, "link.send", "link", t0, t1)
		b.enqueueWork(sd, posted, func(workDone func()) {
			t1b = uint64(b.eng.Now())
			tr.Complete(lane, "sdimm.queue", "queue", t1, t1b)
			runPath := b.tms[sd].accessPath
			if b.ring {
				// Ring reads lift one block and defer writeback, so the
				// per-access path is read-only on the bus; the eviction
				// pointer's flushes replay as background paths (full
				// read+write) below.
				runPath = b.tms[sd].readPath
			}
			runPath(paths[0], func() {
				t2 = uint64(b.eng.Now())
				t2e = t2 + uint64(b.enc)
				if tr != nil {
					tr.CompleteArgs(lane, "dram.path", "dram", t1b, t2,
						map[string]any{"sdimm": sd, "paths": len(paths)})
					tr.Complete(lane, "buffer.seal", "seal", t2, t2e)
				}
				b.eng.After(b.enc, func() { b.ready[sd]++ })
				b.runLocalPaths(sd, paths[1:], 0, workDone)
			})
		})
	})

	// 2. The CPU polls and fetches, then broadcasts the APPENDs.
	b.waiters[sd] = append(b.waiters[sd], func() {
		t3 = uint64(b.eng.Now())
		tr.Complete(lane, "fetch.wait", "link", t2e, t3)
		for j := 0; j < b.cfg.NumSDIMMs; j++ {
			j := j
			forced := appendForced[j]
			b.hostSend(j, msgAppend, func() {
				if forced == nil {
					return
				}
				b.enqueueWork(j, false, func(workDone func()) {
					b.runLocalPaths(j, [][]uint64{forced.Path}, 0, workDone)
				})
			})
		}
		// The requested data reaches the CPU after decryption.
		b.eng.After(b.enc, func() {
			end := uint64(b.eng.Now())
			if tr != nil {
				tr.Complete(lane, "result.decrypt", "seal", t3, end)
				tr.CompleteArgs(lane, "accessORAM", cat, t0, end,
					map[string]any{"sdimm": sd, "addr": addr})
			}
			cont()
		})
	})
	b.startProbing(sd)
}

// runLocalPaths chains path traffic on one SDIMM's internal channel.
func (b *IndependentBackend) runLocalPaths(sd int, paths [][]uint64, i int, done func()) {
	if i == len(paths) {
		done()
		return
	}
	b.tms[sd].accessPath(paths[i], func() {
		b.runLocalPaths(sd, paths, i+1, done)
	})
}

// hostSend models one host-link transfer to an SDIMM's channel.
func (b *IndependentBackend) hostSend(sd int, bytes int, onArrive func()) {
	b.st.HostBytes += uint64(bytes)
	b.links[chanOf(sd, b.cfg.Org.DIMMsPerChannel)].Transfer(bytes, func(event.Time) { onArrive() })
}

// enqueueWork serializes traffic replay on one SDIMM's controller; demand
// work bypasses posted work.
func (b *IndependentBackend) enqueueWork(sd int, posted bool, work func(done func())) {
	if posted {
		b.postedQ[sd] = append(b.postedQ[sd], work)
	} else {
		b.demandQ[sd] = append(b.demandQ[sd], work)
	}
	b.pumpWork(sd)
}

func (b *IndependentBackend) pumpWork(sd int) {
	if b.workBusy[sd] {
		return
	}
	var w func(done func())
	switch {
	case len(b.demandQ[sd]) > 0:
		w = b.demandQ[sd][0]
		b.demandQ[sd] = b.demandQ[sd][1:]
	case len(b.postedQ[sd]) > 0:
		w = b.postedQ[sd][0]
		b.postedQ[sd] = b.postedQ[sd][1:]
	default:
		return
	}
	b.workBusy[sd] = true
	w(func() {
		b.workBusy[sd] = false
		b.pumpWork(sd)
	})
}

// startProbing runs the PROBE loop for an SDIMM while fetchers wait.
func (b *IndependentBackend) startProbing(sd int) {
	if b.probing[sd] {
		return
	}
	b.probing[sd] = true
	b.eng.After(event.Time(b.cfg.ProbeInterval), func() { b.probe(sd) })
}

func (b *IndependentBackend) probe(sd int) {
	if len(b.waiters[sd]) == 0 {
		b.probing[sd] = false
		return
	}
	b.st.Probes++
	b.hostSend(sd, msgProbe, func() {
		if b.ready[sd] > 0 && len(b.waiters[sd]) > 0 {
			b.ready[sd]--
			// FETCH_RESULT returns the block.
			b.hostSend(sd, msgFetch, func() {
				w := b.waiters[sd][0]
				b.waiters[sd] = b.waiters[sd][1:]
				w()
				b.probeNext(sd)
			})
			return
		}
		b.probeNext(sd)
	})
}

func (b *IndependentBackend) probeNext(sd int) {
	if len(b.waiters[sd]) == 0 {
		b.probing[sd] = false
		return
	}
	b.eng.After(event.Time(b.cfg.ProbeInterval), func() { b.probe(sd) })
}

// Channels implements Backend: all channels are on-DIMM.
func (b *IndependentBackend) Channels() ([]*dram.Channel, []bool) {
	local := make([]bool, len(b.chans))
	for i := range local {
		local[i] = true
	}
	return b.chans, local
}

// Links implements Backend.
func (b *IndependentBackend) Links() []*dram.Link { return b.links }

// Stats implements Backend, aggregating per-buffer maxima.
func (b *IndependentBackend) Stats() BackendStats {
	s := b.st
	for _, buf := range b.buffers {
		bs := buf.Stats()
		if bs.TransferPeak > s.TransferPeak {
			s.TransferPeak = bs.TransferPeak
		}
		if p := buf.Engine().Stats().StashPeak; p > s.StashPeak {
			s.StashPeak = p
		}
		s.TransferOverflows += bs.TransferOverflows
	}
	return s
}

// Frontend exposes the Freecursive frontend.
func (b *IndependentBackend) Frontend() *freecursive.Frontend { return b.fe }

// Buffers exposes the secure buffers (tests inspect transfer queues).
func (b *IndependentBackend) Buffers() []*sdimm.Buffer { return b.buffers }
