// Package protocol implements the five memory backends the paper evaluates
// (Figure 7 plus the two baselines), each as a cpusim.Memory:
//
//   - NonSecure: LLC misses go straight to DRAM (the insecure reference).
//   - FreecursiveBackend: CPU-side Freecursive ORAM striped over the host
//     channels — the paper's baseline.
//   - IndependentBackend: one whole ORAM per SDIMM; the host channel
//     carries only ACCESS/PROBE/FETCH_RESULT/APPEND traffic (Section III-C).
//   - SplitBackend: every bucket bit-sliced across the SDIMMs; the host
//     carries metadata, the SDIMMs shuffle data locally (Section III-D).
//   - IndepSplitBackend: two Independent halves, each Split across half
//     the SDIMMs (Figure 7e).
//   - Ring (NewRing): the Independent topology with ring-eviction engines —
//     read-only per-access paths plus a deterministic deferred-flush
//     eviction pointer (write traffic drops by roughly the flush interval).
//
// Each backend owns its DRAM channels/links and exposes them for energy
// accounting. All functional ORAM state runs through package oram, so the
// timing backends inherit the engine's correctness invariants.
package protocol

import (
	"fmt"

	"sdimm/internal/config"
	"sdimm/internal/dram"
	"sdimm/internal/event"
	"sdimm/internal/oram"
	"sdimm/internal/stats"
)

// Backend is a memory backend plus the introspection the simulator needs.
type Backend interface {
	// Read requests a line; done fires when data returns (cpusim.Memory).
	Read(addr uint64, done func())
	// Write posts a line writeback (cpusim.Memory).
	Write(addr uint64)
	// Channels returns (bank-modelled channels, whether each is on-DIMM).
	Channels() ([]*dram.Channel, []bool)
	// Links returns the host links (SDIMM protocols; empty otherwise).
	Links() []*dram.Link
	// Stats returns backend counters.
	Stats() BackendStats
}

// BackendStats are protocol-level counters (bus-level numbers live in the
// channel/link stats).
type BackendStats struct {
	Reads       uint64
	Writes      uint64
	AccessORAMs uint64
	Probes      uint64
	HostBytes   uint64 // protocol bytes moved over host links
	MissLatency *stats.Histogram
	QueuePeak   int
	ExtraDrains uint64 // Independent transfer-queue drain accesses
	BgEvictions uint64
	// StashPeak / TransferPeak are in-vivo maxima across all secure
	// buffers (Independent protocol), validating the Section IV-C sizing.
	StashPeak         int
	TransferPeak      int
	TransferOverflows uint64
}

// request is one pending line operation.
type request struct {
	addr  uint64
	write bool
	done  func()
	start event.Time
}

// reqQueue is a two-priority queue: reads before posted writes.
type reqQueue struct {
	reads  []request
	writes []request
	peak   int
}

func (q *reqQueue) push(r request) {
	if r.write {
		q.writes = append(q.writes, r)
	} else {
		q.reads = append(q.reads, r)
	}
	if n := len(q.reads) + len(q.writes); n > q.peak {
		q.peak = n
	}
}

func (q *reqQueue) pop() (request, bool) {
	if len(q.reads) > 0 {
		r := q.reads[0]
		q.reads = q.reads[1:]
		return r, true
	}
	if len(q.writes) > 0 {
		r := q.writes[0]
		q.writes = q.writes[1:]
		return r, true
	}
	return request{}, false
}

func (q *reqQueue) empty() bool { return len(q.reads) == 0 && len(q.writes) == 0 }

// treeMem issues ORAM path traffic against one set of DRAM channels. For
// the baseline the set is all host channels (bucket lines striped across
// them); for an SDIMM it is the single on-DIMM channel.
type treeMem struct {
	eng      *event.Engine
	chans    []*dram.Channel
	mappers  []*dram.Mapper
	layout   oram.Layout
	lowPower bool
}

func newTreeMem(eng *event.Engine, chans []*dram.Channel, org config.Org, layout oram.Layout, lowPower bool) (*treeMem, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	tm := &treeMem{eng: eng, chans: chans, layout: layout, lowPower: lowPower}
	for _, ch := range chans {
		tm.mappers = append(tm.mappers, dram.NewMapper(org, ch.Ranks()))
	}
	return tm, nil
}

type placedLine struct {
	chanIdx int
	coord   dram.Coord
}

// placePath maps a path's buckets to physical lines. On-chip buckets are
// skipped. With rank pinning (low-power layout) the lines stay in one rank
// of one channel; otherwise lines stripe across channels.
func (tm *treeMem) placePath(path []uint64) []placedLine {
	var out []placedLine
	for _, bucket := range path {
		p := tm.layout.Place(bucket)
		if p.OnChip {
			continue
		}
		n := p.LineCount
		if n == 0 {
			n = tm.layout.LinesPerBucket
		}
		for i := 0; i < n; i++ {
			line := p.FirstLine + uint64(i)
			if p.Rank >= 0 {
				// Rank-pinned: the whole subtree lives in one rank of
				// channel 0 of this tree's channel set (an SDIMM has one).
				out = append(out, placedLine{0, tm.mappers[0].MapToRank(line, p.Rank)})
			} else {
				ci := int(line % uint64(len(tm.chans)))
				out = append(out, placedLine{ci, tm.mappers[ci].Map(line / uint64(len(tm.chans)))})
			}
		}
	}
	return out
}

// accessPath generates the DRAM traffic of one path access: read every
// line, and once all reads complete invoke onReadsDone and post the
// writeback of the same lines. With the low-power layout, other ranks are
// nudged into power-down.
func (tm *treeMem) accessPath(path []uint64, onReadsDone func()) {
	tm.readPath(path, func() {
		onReadsDone()
		tm.writePath(path)
	})
}

// readPath reads every line of the path; onDone fires when the last read
// completes.
func (tm *treeMem) readPath(path []uint64, onDone func()) {
	lines := tm.placePath(path)
	if len(lines) == 0 {
		// Fully cached path: complete immediately.
		tm.eng.After(0, onDone)
		return
	}
	if tm.lowPower {
		tm.powerSiblings(lines[0])
	}
	remaining := len(lines)
	for _, pl := range lines {
		tm.chans[pl.chanIdx].Submit(&dram.Request{
			Coord: pl.coord,
			OnComplete: func(event.Time) {
				remaining--
				if remaining == 0 {
					onDone()
				}
			},
		})
	}
}

// writePath posts the writeback of every line of the path.
func (tm *treeMem) writePath(path []uint64) {
	for _, pl := range tm.placePath(path) {
		tm.chans[pl.chanIdx].Submit(&dram.Request{Coord: pl.coord, Write: true})
	}
}

// powerSiblings pushes the non-target ranks toward power-down.
func (tm *treeMem) powerSiblings(target placedLine) {
	ch := tm.chans[target.chanIdx]
	for r := 0; r < ch.Ranks(); r++ {
		if r != target.coord.Rank {
			ch.PowerDown(r)
		}
	}
}

// chanOf returns the host link index serving SDIMM sd.
func chanOf(sd, dimmsPerChannel int) int { return sd / dimmsPerChannel }

// log2 returns log2(n) for power-of-two n.
func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// buildLayout constructs the bucket layout for a tree of the given levels.
func buildLayout(cfg config.Config, levels, linesPerBucket, numRanks int) (oram.Layout, error) {
	l := oram.Layout{
		Geom:           oram.MustGeometry(levels),
		LinesPerBucket: linesPerBucket,
		SubtreeLevels:  cfg.ORAM.SubtreeLevels,
		CachedLevels:   cfg.ORAM.CachedLevels,
		NumRanks:       numRanks,
	}
	if l.CachedLevels >= levels {
		l.CachedLevels = levels - 1
	}
	if err := l.Validate(); err != nil {
		return oram.Layout{}, fmt.Errorf("protocol: layout: %w", err)
	}
	return l, nil
}

// dataBlocks returns the data-ORAM address-space size in blocks.
func dataBlocks(cfg config.Config) uint64 {
	return cfg.Org.TotalBytes() / uint64(cfg.Org.LineBytes)
}

// New builds the backend selected by cfg.Protocol.
func New(eng *event.Engine, cfg config.Config) (Backend, error) {
	switch cfg.Protocol {
	case config.NonSecure:
		return NewNonSecure(eng, cfg)
	case config.Freecursive:
		return NewFreecursive(eng, cfg)
	case config.Independent:
		return NewIndependent(eng, cfg)
	case config.Split:
		return NewSplit(eng, cfg)
	case config.IndepSplit:
		return NewIndepSplit(eng, cfg)
	case config.Ring:
		return NewRing(eng, cfg)
	}
	return nil, fmt.Errorf("protocol: unknown protocol %v", cfg.Protocol)
}
