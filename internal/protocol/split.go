package protocol

import (
	"fmt"

	"sdimm/internal/config"
	"sdimm/internal/dram"
	"sdimm/internal/event"
	"sdimm/internal/freecursive"
	"sdimm/internal/oram"
	"sdimm/internal/rng"
	"sdimm/internal/stats"
)

// splitOp is one accessORAM executed by a split group.
type splitOp struct {
	addr    uint64
	op      oram.Op
	oldLeaf uint64 // leaf within the group's tree
	newLeaf uint64
	keep    bool // false: the block migrates to another group (indep-split)
	posted  bool // LLC writeback: yields to demand accesses
	// onData fires when the CPU holds the (reassembled) block.
	onData func(blk oram.Block)

	// Functional outcome, captured at submit time so that queue
	// reordering can never reorder ORAM state transitions.
	blk  oram.Block
	path []uint64
}

// splitGroup is one Split-protocol ORAM spread across a set of member
// SDIMMs (Section III-D). Every bucket is bit-sliced: each member stores
// 1/k of every block, 1/k of the metadata, and its own MAC. One logical
// engine tracks placement (all shards evolve in lockstep — greedy eviction
// is a pure function of stash contents); each member's internal channel
// carries the shard-sized path traffic.
type splitGroup struct {
	eng     *event.Engine
	cfg     config.Config
	engine  *oram.Engine
	tms     []*treeMem
	links   []*dram.Link // global per-channel links
	members []int        // global SDIMM indices
	rnd     *rng.Source

	metaShare int // metadata bytes per bucket per member on the host bus
	fetchResp int // FETCH_STASH response bytes per member
	listBytes int // RECEIVE_LIST payload per member

	q          []splitOp
	postedQ    []splitOp
	stageABusy bool
	drains     int // in-flight background-evict traffic generators

	enc event.Time
	st  *BackendStats
}

func newSplitGroup(eng *event.Engine, cfg config.Config, levels int, members []int,
	links []*dram.Link, seed uint64, st *BackendStats) (*splitGroup, error) {
	k := len(members)
	if k < 2 {
		return nil, fmt.Errorf("protocol: split group needs ≥ 2 members, got %d", k)
	}
	// Shard sizing: data Z*B/k + metadata share + an own MAC per shard.
	metaBytes := cfg.ORAM.Z*8 + 16
	metaShare := (metaBytes + k - 1) / k
	shardBytes := cfg.ORAM.Z*cfg.ORAM.BlockBytes/k + metaShare + 8
	shardLines := (shardBytes + cfg.Org.LineBytes - 1) / cfg.Org.LineBytes

	engine, err := oram.NewEngine(oram.NewSparseStore(cfg.ORAM.Z), nil, oram.Options{
		Geometry:         oram.MustGeometry(levels),
		StashCapacity:    cfg.ORAM.StashCapacity,
		EvictThreshold:   cfg.ORAM.EvictThreshold,
		Rand:             rng.New(seed ^ 0x5b17),
		DisableAutoDrain: true, // the CPU directs eviction for all shards
	})
	if err != nil {
		return nil, err
	}
	numRanks := 0
	if cfg.LowPower {
		numRanks = cfg.Org.RanksPerDIMM
	}
	layout, err := buildLayout(cfg, levels, shardLines, numRanks)
	if err != nil {
		return nil, err
	}
	// Note: byte-granular packing (Layout.BucketBytes) does not pay here —
	// a 160 B 2-way shard spans 3 lines wherever it starts — so shards are
	// stored line-aligned.
	g := &splitGroup{
		eng:       eng,
		cfg:       cfg,
		engine:    engine,
		links:     links,
		members:   members,
		rnd:       rng.New(seed ^ 0xe71c),
		metaShare: metaShare,
		fetchResp: cfg.ORAM.BlockBytes/k + 8,
		listBytes: 16 + (levels-cfg.ORAM.CachedLevels)*(cfg.ORAM.Z+2),
		enc:       event.Time(cfg.ORAM.EncLatency),
		st:        st,
	}
	for _, m := range members {
		ch := dram.NewChannel(eng, fmt.Sprintf("sdimm%d", m), cfg.Org, cfg.Timing, cfg.Org.RanksPerDIMM)
		tm, err := newTreeMem(eng, []*dram.Channel{ch}, cfg.Org, layout, cfg.LowPower)
		if err != nil {
			return nil, err
		}
		g.tms = append(g.tms, tm)
	}
	return g, nil
}

func (g *splitGroup) channels() []*dram.Channel {
	var out []*dram.Channel
	for _, tm := range g.tms {
		out = append(out, tm.chans...)
	}
	return out
}

// submit enqueues one accessORAM on the group's controller. Demand
// accesses (read misses) bypass posted ones (LLC writebacks). The
// functional state transition happens here, in submission order; the
// pipeline replays it as bus traffic later. The accessed block (migrated
// out when keep is false) is returned so an indep-split caller can place
// it in the destination group immediately.
func (g *splitGroup) submit(op splitOp) oram.Block {
	blk, plan, err := g.engine.AccessAt(op.addr, op.op, nil, op.oldLeaf, op.newLeaf, op.keep)
	if err != nil {
		panic(fmt.Sprintf("protocol: split access (group members %v): %v", g.members, err))
	}
	// The op is queued and replayed after later submits; plan.Path and
	// blk.Data are engine scratch by then, so the op takes owned copies.
	op.blk = blk
	if blk.Data != nil {
		op.blk.Data = append([]byte(nil), blk.Data...)
	}
	op.path = append([]uint64(nil), plan.Path...)
	if op.posted {
		g.postedQ = append(g.postedQ, op)
	} else {
		g.q = append(g.q, op)
	}
	g.pump()
	return blk
}

// pump starts the next op when the fetch stage (internal shard reads +
// metadata) is free; the host handshake and writeback stage of the
// previous op overlaps with it, as a real controller would pipeline.
func (g *splitGroup) pump() {
	if g.stageABusy {
		return
	}
	var op splitOp
	switch {
	case len(g.q) > 0:
		op = g.q[0]
		g.q = g.q[1:]
	case len(g.postedQ) > 0:
		op = g.postedQ[0]
		g.postedQ = g.postedQ[1:]
	default:
		return
	}
	g.stageABusy = true
	g.run(op)
}

// broadcast sends bytes to every member's host link; done fires when all
// transfers complete.
func (g *splitGroup) broadcast(bytes int, done func()) {
	remaining := len(g.members)
	for _, m := range g.members {
		g.st.HostBytes += uint64(bytes)
		g.links[chanOf(m, g.cfg.Org.DIMMsPerChannel)].Transfer(bytes, func(event.Time) {
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

// eachShard runs fn(path) against every member's internal channel, calling
// done once all complete.
func (g *splitGroup) readShards(path []uint64, done func()) {
	remaining := len(g.tms)
	for _, tm := range g.tms {
		tm.readPath(path, func() {
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

func (g *splitGroup) writeShards(path []uint64) {
	for _, tm := range g.tms {
		tm.writePath(path)
	}
}

// run executes one accessORAM over the group (the numbered steps of
// Section III-D). Stage A: FETCH_DATA plus the metadata reads — the data
// shards flow into the members' stashes over their internal channels while
// the metadata crosses the host links concurrently (the two streams share
// no resource). Stage B: reassembly, FETCH_STASH, RECEIVE_LIST, and the
// local writeback; the next op's stage A overlaps with it.
func (g *splitGroup) run(op splitOp) {
	g.st.AccessORAMs++
	effLevels := len(op.path) - g.cfg.ORAM.CachedLevels
	if effLevels < 1 {
		effLevels = 1
	}
	metaBytes := g.metaShare * effLevels

	// Stage A: FETCH_DATA command, then data shards (internal) and path
	// metadata (host) in parallel.
	g.broadcast(16, func() {
		remaining := 2
		join := func() {
			remaining--
			if remaining != 0 {
				return
			}
			// Stage A complete: free the fetch station for the next op.
			g.stageABusy = false
			g.pump()
			g.stageB(op)
		}
		g.readShards(op.path, join)
		g.broadcast(metaBytes, join)
	})
}

// stageB finishes one access: metadata reassembly, FETCH_STASH,
// RECEIVE_LIST, writeback, and any background eviction.
func (g *splitGroup) stageB(op splitOp) {
	g.eng.After(g.enc, func() {
		g.broadcast(g.fetchResp, func() {
			g.eng.After(g.enc, func() {
				if op.onData != nil {
					op.onData(op.blk)
				}
				g.broadcast(g.listBytes, func() {
					g.writeShards(op.path)
					g.maybeEvict(0)
				})
			})
		})
	})
}

// maybeEvict performs CPU-directed background evictions while the mirrored
// stash runs hot. Eviction traffic rides alongside the pipeline (it
// contends on the buses naturally); at most one eviction chain runs at a
// time.
func (g *splitGroup) maybeEvict(n int) {
	if n >= 8 || !g.engine.NeedsDrain() || (n == 0 && g.drains > 0) {
		return
	}
	if n == 0 {
		g.drains++
	}
	leaf := g.rnd.Uint64n(g.engine.Geometry().Leaves())
	if err := g.engine.EvictPath(leaf); err != nil {
		panic(fmt.Sprintf("protocol: split eviction (group members %v): %v", g.members, err))
	}
	g.st.BgEvictions++
	path := g.engine.Geometry().Path(leaf, nil)
	// Eviction command + list to every member, then the local read/write.
	g.broadcast(g.listBytes, func() {
		g.readShards(path, func() {
			g.writeShards(path)
			if g.engine.NeedsDrain() && n+1 < 8 {
				g.maybeEvict(n + 1)
				return
			}
			g.drains--
			g.pump()
		})
	})
}

// insert adds a migrated block to the group's (mirrored) stash — the
// indep-split APPEND path. A hot stash triggers a background drain.
func (g *splitGroup) insert(blk oram.Block) error {
	if err := g.engine.StashInsert(blk); err != nil {
		return err
	}
	g.maybeEvict(0)
	return nil
}

// SplitBackend implements the Split protocol: one group spanning all
// SDIMMs, CPU-side Freecursive frontend and position map.
type SplitBackend struct {
	eng   *event.Engine
	cfg   config.Config
	fe    *freecursive.Frontend
	pos   oram.PositionMap
	rnd   *rng.Source
	group *splitGroup
	links []*dram.Link
	st    BackendStats
}

// NewSplit builds the Split backend.
func NewSplit(eng *event.Engine, cfg config.Config) (*SplitBackend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fe, err := freecursive.New(dataBlocks(cfg), cfg.ORAM.RecursivePosMaps, cfg.ORAM.PosMapScale,
		cfg.ORAM.PLBBytes/cfg.Org.LineBytes)
	if err != nil {
		return nil, err
	}
	b := &SplitBackend{
		eng: eng,
		cfg: cfg,
		fe:  fe,
		pos: oram.NewSparsePosMap(),
		rnd: rng.New(cfg.Seed ^ 0x517a),
	}
	b.st.MissLatency = stats.NewHistogram(256, 4096)
	for c := 0; c < cfg.Org.Channels; c++ {
		b.links = append(b.links, dram.NewLink(eng, cfg.Org, cfg.Timing))
	}
	members := make([]int, cfg.NumSDIMMs)
	for i := range members {
		members[i] = i
	}
	b.group, err = newSplitGroup(eng, cfg, cfg.ORAM.Levels, members, b.links, cfg.Seed, &b.st)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Read implements Backend.
func (b *SplitBackend) Read(addr uint64, done func()) {
	b.st.Reads++
	start := b.eng.Now()
	b.startMiss(addr, false, func() {
		b.st.MissLatency.Add(uint64(b.eng.Now() - start))
		done()
	})
}

// Write implements Backend.
func (b *SplitBackend) Write(addr uint64) {
	b.st.Writes++
	b.startMiss(addr, true, nil)
}

func (b *SplitBackend) startMiss(addr uint64, write bool, done func()) {
	ops, err := b.fe.Resolve(addr % dataBlocks(b.cfg))
	if err != nil {
		panic(fmt.Sprintf("protocol: split resolve: %v", err))
	}
	b.runOps(ops, 0, write, done)
}

func (b *SplitBackend) runOps(ops []freecursive.Op, i int, write bool, done func()) {
	if i == len(ops) {
		if done != nil {
			done()
		}
		return
	}
	o := oram.OpRead
	if write && i == len(ops)-1 {
		o = oram.OpWrite
	}
	leaves := b.group.engine.Geometry().Leaves()
	oldLeaf, ok := b.pos.Get(ops[i].Addr)
	if !ok {
		oldLeaf = b.rnd.Uint64n(leaves)
	}
	newLeaf := b.rnd.Uint64n(leaves)
	b.pos.Set(ops[i].Addr, newLeaf)
	b.group.submit(splitOp{
		addr:    ops[i].Addr,
		op:      o,
		oldLeaf: oldLeaf,
		newLeaf: newLeaf,
		keep:    true,
		posted:  write,
		onData:  func(oram.Block) { b.runOps(ops, i+1, write, done) },
	})
}

// Channels implements Backend: all bank-modelled channels are on-DIMM.
func (b *SplitBackend) Channels() ([]*dram.Channel, []bool) {
	chans := b.group.channels()
	local := make([]bool, len(chans))
	for i := range local {
		local[i] = true
	}
	return chans, local
}

// Links implements Backend.
func (b *SplitBackend) Links() []*dram.Link { return b.links }

// Stats implements Backend.
func (b *SplitBackend) Stats() BackendStats { return b.st }

// Frontend exposes the Freecursive frontend.
func (b *SplitBackend) Frontend() *freecursive.Frontend { return b.fe }
