package protocol

import (
	"testing"

	"sdimm/internal/config"
	"sdimm/internal/event"
	"sdimm/internal/rng"
)

// drive pushes n reads (and writes per writeEvery) through a backend and
// runs the engine until all reads complete. It returns the completion time.
func drive(t *testing.T, eng *event.Engine, b Backend, n int, seed uint64) event.Time {
	t.Helper()
	r := rng.New(seed)
	done := 0
	for i := 0; i < n; i++ {
		addr := r.Uint64n(1 << 20)
		if i%4 == 3 {
			b.Write(addr)
			done++ // writes are posted; count them as issued work only
			continue
		}
		b.Read(addr, func() { done++ })
	}
	eng.RunWhile(func() bool { return done < n })
	if done != n {
		t.Fatalf("completed %d/%d operations", done, n)
	}
	end := eng.Now()
	// Let trailing posted work (APPEND broadcasts, writebacks) land.
	eng.RunUntil(end + 500_000)
	return end
}

// issueReads issues reads concurrently and runs until all complete,
// returning the completion time of the last.
func issueReads(t *testing.T, eng *event.Engine, b Backend, addrs []uint64) uint64 {
	t.Helper()
	done := 0
	var last event.Time
	for _, a := range addrs {
		b.Read(a, func() { done++; last = eng.Now() })
	}
	eng.RunWhile(func() bool { return done < len(addrs) })
	if done != len(addrs) {
		t.Fatalf("completed %d/%d reads", done, len(addrs))
	}
	return uint64(last)
}

// chainReads issues reads one at a time (a dependent pointer chase) and
// returns the completion time of the last.
func chainReads(t *testing.T, eng *event.Engine, b Backend, addrs []uint64) uint64 {
	t.Helper()
	done := 0
	var issue func()
	issue = func() {
		if done == len(addrs) {
			return
		}
		b.Read(addrs[done], func() { done++; issue() })
	}
	issue()
	eng.RunWhile(func() bool { return done < len(addrs) })
	if done != len(addrs) {
		t.Fatalf("completed %d/%d chained reads", done, len(addrs))
	}
	return uint64(eng.Now())
}

func cfgFor(p config.Protocol, channels, levels int) config.Config {
	c := config.Default(p, channels)
	c.ORAM.Levels = levels
	c.WarmupAccesses = 0
	c.MeasureAccesses = 0
	return c
}

func TestNonSecureReadsComplete(t *testing.T) {
	eng := &event.Engine{}
	b, err := NewNonSecure(eng, cfgFor(config.NonSecure, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	end := drive(t, eng, b, 200, 1)
	if end == 0 {
		t.Fatal("zero time")
	}
	chans, local := b.Channels()
	if len(chans) != 2 || local[0] {
		t.Fatalf("channels: %d local=%v", len(chans), local)
	}
	total := uint64(0)
	for _, ch := range chans {
		s := ch.Stats()
		total += s.Reads + s.Writes
	}
	if total == 0 {
		t.Fatal("no DRAM traffic")
	}
	if b.Links() != nil {
		t.Fatal("non-secure backend reported links")
	}
}

func TestFreecursiveReadsComplete(t *testing.T) {
	eng := &event.Engine{}
	b, err := NewFreecursive(eng, cfgFor(config.Freecursive, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, eng, b, 60, 2)
	st := b.Stats()
	if st.AccessORAMs < st.Reads {
		t.Fatalf("accessORAMs %d < reads %d", st.AccessORAMs, st.Reads)
	}
	// Cold PLB means recursion: more than one accessORAM per operation on
	// average at first.
	if got := b.Frontend().Stats().AccessesPerMiss(); got <= 1 {
		t.Fatalf("accesses per miss = %v", got)
	}
	chans, _ := b.Channels()
	var lines uint64
	for _, ch := range chans {
		s := ch.Stats()
		lines += s.Reads + s.Writes
	}
	// Each accessORAM reads and writes a path of (levels-cached) buckets.
	if lines < st.AccessORAMs*uint64(2*(20-7)) {
		t.Fatalf("DRAM lines %d implausibly low for %d accessORAMs", lines, st.AccessORAMs)
	}
}

func TestFreecursiveMuchSlowerThanNonSecure(t *testing.T) {
	engN := &event.Engine{}
	bn, _ := NewNonSecure(engN, cfgFor(config.NonSecure, 1, 20))
	tN := drive(t, engN, bn, 100, 3)

	engF := &event.Engine{}
	bf, _ := NewFreecursive(engF, cfgFor(config.Freecursive, 1, 20))
	tF := drive(t, engF, bf, 100, 3)

	slowdown := float64(tF) / float64(tN)
	if slowdown < 3 {
		t.Fatalf("freecursive slowdown %.2fx, expected large (paper: ~8.8x)", slowdown)
	}
}

func TestIndependentReadsComplete(t *testing.T) {
	eng := &event.Engine{}
	b, err := NewIndependent(eng, cfgFor(config.Independent, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, eng, b, 60, 4)
	st := b.Stats()
	if st.Probes == 0 {
		t.Fatal("no PROBE polling happened")
	}
	if st.HostBytes == 0 {
		t.Fatal("no host traffic")
	}
	// Every accessORAM broadcasts one APPEND per SDIMM.
	var appends, dummies uint64
	for _, buf := range b.Buffers() {
		s := buf.Stats()
		appends += s.Appends
		dummies += s.DummyAppends
	}
	if appends+dummies != st.AccessORAMs*uint64(4) {
		t.Fatalf("appends %d + dummies %d != 4*accesses %d", appends, dummies, 4*st.AccessORAMs)
	}
	chans, local := b.Channels()
	if len(chans) != 4 || !local[0] {
		t.Fatalf("want 4 on-DIMM channels, got %d local=%v", len(chans), local)
	}
}

func TestIndependentHostTrafficTiny(t *testing.T) {
	// The headline claim: the Independent protocol moves a few percent of
	// the baseline's bytes over the host channel.
	cfg := cfgFor(config.Freecursive, 1, 22)
	engF := &event.Engine{}
	bf, _ := NewFreecursive(engF, cfg)
	drive(t, engF, bf, 80, 5)
	chansF, _ := bf.Channels()
	var baseBytes uint64
	for _, ch := range chansF {
		s := ch.Stats()
		baseBytes += s.BytesRead + s.BytesWrite
	}
	baseAccesses := bf.Stats().AccessORAMs

	engI := &event.Engine{}
	bi, _ := NewIndependent(engI, cfgFor(config.Independent, 1, 22))
	drive(t, engI, bi, 80, 5)
	var hostBytes uint64
	for _, l := range bi.Links() {
		hostBytes += l.Stats().Bytes
	}
	indAccesses := bi.Stats().AccessORAMs

	perBase := float64(baseBytes) / float64(baseAccesses)
	perInd := float64(hostBytes) / float64(indAccesses)
	frac := perInd / perBase
	if frac > 0.15 {
		t.Fatalf("independent host traffic fraction %.3f, paper says ~0.04", frac)
	}
}

func TestSplitReadsComplete(t *testing.T) {
	eng := &event.Engine{}
	b, err := NewSplit(eng, cfgFor(config.Split, 1, 20))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, eng, b, 60, 6)
	st := b.Stats()
	if st.AccessORAMs < st.Reads {
		t.Fatalf("accessORAMs %d < reads %d", st.AccessORAMs, st.Reads)
	}
	if st.HostBytes == 0 {
		t.Fatal("no host metadata traffic")
	}
	chans, _ := b.Channels()
	if len(chans) != 2 {
		t.Fatalf("want 2 member channels, got %d", len(chans))
	}
	// Both members must carry (identical shard) traffic.
	a := chans[0].Stats()
	c := chans[1].Stats()
	if a.Reads == 0 || c.Reads == 0 {
		t.Fatal("a member channel idle")
	}
	if a.Reads != c.Reads {
		t.Fatalf("shard traffic diverged: %d vs %d", a.Reads, c.Reads)
	}
}

func TestSplitLatencyBelowIndependent(t *testing.T) {
	// A dependent chain of misses (no MLP): Split spreads each path over
	// both internal channels, so the chain must finish faster than on the
	// Independent protocol, whose per-access latency is single-channel
	// (the paper's Section III-D motivation).
	addrs := make([]uint64, 12)
	for i := range addrs {
		addrs[i] = uint64(i * 99991)
	}
	engI := &event.Engine{}
	bi, _ := NewIndependent(engI, cfgFor(config.Independent, 1, 22))
	tI := chainReads(t, engI, bi, addrs)

	engS := &event.Engine{}
	bs, _ := NewSplit(engS, cfgFor(config.Split, 1, 22))
	tS := chainReads(t, engS, bs, addrs)

	if tS >= tI {
		t.Fatalf("split chained latency %d not below independent %d", tS, tI)
	}
}

func TestIndependentThroughputBeatsSplitUnderMLP(t *testing.T) {
	// The flip side: with many concurrent misses, Independent's per-SDIMM
	// parallelism wins over Split's one-access-at-a-time group.
	addrs := make([]uint64, 24)
	for i := range addrs {
		addrs[i] = uint64(i * 131071)
	}
	engI := &event.Engine{}
	bi, _ := NewIndependent(engI, cfgFor(config.Independent, 1, 22))
	tI := issueReads(t, engI, bi, addrs)

	engS := &event.Engine{}
	bs, _ := NewSplit(engS, cfgFor(config.Split, 1, 22))
	tS := issueReads(t, engS, bs, addrs)

	if tI >= tS {
		t.Fatalf("independent concurrent completion %d not below split %d", tI, tS)
	}
}

func TestIndepSplitReadsComplete(t *testing.T) {
	eng := &event.Engine{}
	b, err := NewIndepSplit(eng, cfgFor(config.IndepSplit, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, eng, b, 60, 7)
	st := b.Stats()
	if st.AccessORAMs == 0 || st.HostBytes == 0 {
		t.Fatalf("stats %+v", st)
	}
	chans, _ := b.Channels()
	if len(chans) != 4 {
		t.Fatalf("want 4 member channels, got %d", len(chans))
	}
	// Both halves should see traffic (leaves split by MSB).
	if chans[0].Stats().Reads == 0 || chans[2].Stats().Reads == 0 {
		t.Fatal("one half idle")
	}
}

func TestIndepSplitRejectsTwoSDIMMs(t *testing.T) {
	eng := &event.Engine{}
	cfg := cfgFor(config.IndepSplit, 1, 20)
	cfg.Protocol = config.IndepSplit
	if _, err := NewIndepSplit(eng, cfg); err == nil {
		t.Fatal("2-SDIMM indep-split accepted")
	}
}

func TestFactory(t *testing.T) {
	for _, p := range []config.Protocol{config.NonSecure, config.Freecursive,
		config.Independent, config.Split} {
		eng := &event.Engine{}
		b, err := New(eng, cfgFor(p, 1, 20))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if b == nil {
			t.Fatalf("%v: nil backend", p)
		}
	}
	eng := &event.Engine{}
	if _, err := New(eng, cfgFor(config.IndepSplit, 2, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, config.Config{Protocol: config.Protocol(99)}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() event.Time {
		eng := &event.Engine{}
		b, err := NewIndependent(eng, cfgFor(config.Independent, 1, 20))
		if err != nil {
			t.Fatal(err)
		}
		return drive(t, eng, b, 40, 9)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %d vs %d", a, b)
	}
}

func TestLowPowerTogglePreservesCompletion(t *testing.T) {
	for _, lp := range []bool{true, false} {
		eng := &event.Engine{}
		cfg := cfgFor(config.Independent, 1, 20)
		cfg.LowPower = lp
		b, err := NewIndependent(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		drive(t, eng, b, 30, 10)
		chans, _ := b.Channels()
		var pd uint64
		for _, ch := range chans {
			for _, r := range ch.Stats().PerRank {
				pd += r.TPowerDown
			}
		}
		if lp && pd == 0 {
			t.Error("low-power mode recorded no power-down residency")
		}
	}
}

func TestObliviousnessPathDependsOnlyOnLeaf(t *testing.T) {
	// Two backends fed different data values but the same address sequence
	// must issue identical path traffic (the engine's plans depend only on
	// the position map, which is seeded identically).
	run := func() uint64 {
		eng := &event.Engine{}
		b, _ := NewFreecursive(eng, cfgFor(config.Freecursive, 1, 20))
		addrs := []uint64{5, 5, 9, 5, 9, 13}
		issueReads(t, eng, b, addrs)
		chans, _ := b.Channels()
		s := chans[0].Stats()
		return s.Reads
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("traffic shape diverged: %d vs %d", a, b)
	}
}
