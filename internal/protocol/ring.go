package protocol

import (
	"sdimm/internal/config"
	"sdimm/internal/event"
)

// NewRing builds the ring-eviction backend: the Independent topology (one
// whole sub-ORAM per SDIMM, host channel carrying ACCESS/PROBE/FETCH_RESULT/
// APPEND) with each SDIMM's engine in ring-eviction mode. Reads fetch the
// path but lift only the target block — the per-access path replay is
// read-only on the local bus — and writeback is deferred to a deterministic
// reverse-lexicographic eviction pointer that flushes one full path every
// ORAM.RingFlushInterval accesses. The wire shape the host observes is
// identical to Independent; the savings are in on-DIMM bucket writes.
func NewRing(eng *event.Engine, cfg config.Config) (*IndependentBackend, error) {
	return newIndependent(eng, cfg, true)
}
