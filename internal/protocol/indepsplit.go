package protocol

import (
	"fmt"

	"sdimm/internal/config"
	"sdimm/internal/dram"
	"sdimm/internal/event"
	"sdimm/internal/freecursive"
	"sdimm/internal/oram"
	"sdimm/internal/rng"
	"sdimm/internal/stats"
)

// IndepSplitBackend combines both protocols (Figure 7e): the global ORAM
// is cut into two Independent halves by the leaf MSB, and each half is
// Split across half of the SDIMMs. Each access engages only two SDIMMs
// (low latency, from Split) while the two halves serve accesses in
// parallel (throughput, from Independent). Remapped blocks migrate between
// halves via an APPEND broadcast of block shards.
type IndepSplitBackend struct {
	eng    *event.Engine
	cfg    config.Config
	fe     *freecursive.Frontend
	pos    oram.PositionMap
	rnd    *rng.Source
	groups []*splitGroup
	links  []*dram.Link

	halfBits uint // leaf bits within one half

	st BackendStats
}

// NewIndepSplit builds the combined backend. It requires ≥ 4 SDIMMs.
func NewIndepSplit(eng *event.Engine, cfg config.Config) (*IndepSplitBackend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumSDIMMs < 4 {
		return nil, fmt.Errorf("protocol: indep-split needs ≥ 4 SDIMMs, got %d", cfg.NumSDIMMs)
	}
	fe, err := freecursive.New(dataBlocks(cfg), cfg.ORAM.RecursivePosMaps, cfg.ORAM.PosMapScale,
		cfg.ORAM.PLBBytes/cfg.Org.LineBytes)
	if err != nil {
		return nil, err
	}
	b := &IndepSplitBackend{
		eng:      eng,
		cfg:      cfg,
		fe:       fe,
		pos:      oram.NewSparsePosMap(),
		rnd:      rng.New(cfg.Seed ^ 0x1d59),
		halfBits: uint(cfg.ORAM.Levels - 2), // half-tree has Levels-1 levels
	}
	b.st.MissLatency = stats.NewHistogram(256, 4096)
	for c := 0; c < cfg.Org.Channels; c++ {
		b.links = append(b.links, dram.NewLink(eng, cfg.Org, cfg.Timing))
	}
	half := cfg.NumSDIMMs / 2
	for h := 0; h < 2; h++ {
		members := make([]int, half)
		for i := range members {
			members[i] = h*half + i
		}
		g, err := newSplitGroup(eng, cfg, cfg.ORAM.Levels-1, members, b.links, cfg.Seed^uint64(h*0x9191), &b.st)
		if err != nil {
			return nil, err
		}
		b.groups = append(b.groups, g)
	}
	return b, nil
}

// Read implements Backend.
func (b *IndepSplitBackend) Read(addr uint64, done func()) {
	b.st.Reads++
	start := b.eng.Now()
	b.startMiss(addr, false, func() {
		b.st.MissLatency.Add(uint64(b.eng.Now() - start))
		done()
	})
}

// Write implements Backend.
func (b *IndepSplitBackend) Write(addr uint64) {
	b.st.Writes++
	b.startMiss(addr, true, nil)
}

func (b *IndepSplitBackend) startMiss(addr uint64, write bool, done func()) {
	ops, err := b.fe.Resolve(addr % dataBlocks(b.cfg))
	if err != nil {
		panic(fmt.Sprintf("protocol: indep-split resolve: %v", err))
	}
	b.runOps(ops, 0, write, done)
}

func (b *IndepSplitBackend) runOps(ops []freecursive.Op, i int, write bool, done func()) {
	if i == len(ops) {
		if done != nil {
			done()
		}
		return
	}
	o := oram.OpRead
	if write && i == len(ops)-1 {
		o = oram.OpWrite
	}
	b.accessORAM(ops[i].Addr, o, write, func() { b.runOps(ops, i+1, write, done) })
}

func (b *IndepSplitBackend) accessORAM(addr uint64, o oram.Op, posted bool, cont func()) {
	globalLeaves := uint64(1) << (b.cfg.ORAM.Levels - 1)
	oldG, ok := b.pos.Get(addr)
	if !ok {
		oldG = b.rnd.Uint64n(globalLeaves)
	}
	newG := b.rnd.Uint64n(globalLeaves)
	b.pos.Set(addr, newG)

	mask := uint64(1)<<b.halfBits - 1
	h := int(oldG >> b.halfBits)
	hNew := int(newG >> b.halfBits)
	keep := h == hNew

	blk := b.groups[h].submit(splitOp{
		addr:    addr,
		op:      o,
		oldLeaf: oldG & mask,
		newLeaf: newG & mask,
		keep:    keep,
		posted:  posted,
		onData: func(oram.Block) {
			// The data is at the CPU: the miss proceeds while the APPEND
			// broadcast rides the links in the background.
			cont()
			b.appendBroadcast()
		},
	})
	if !keep {
		// Functional migration happens now, in submission order; the
		// broadcast later carries only (timed) bytes.
		ins := blk
		ins.Leaf = newG & mask
		if err := b.groups[hNew].insert(ins); err != nil {
			panic(fmt.Sprintf("protocol: indep-split append into group %d (members %v): %v", hNew, b.groups[hNew].members, err))
		}
	}
}

// appendBroadcast sends one shard-sized APPEND to every SDIMM (real shards
// to the new half's members on migration, dummies elsewhere), preserving
// the Independent protocol's destination obfuscation. Placement already
// happened at submit; only the bus traffic is modelled here.
func (b *IndepSplitBackend) appendBroadcast() {
	shard := b.cfg.ORAM.BlockBytes/(b.cfg.NumSDIMMs/2) + 8
	for sd := 0; sd < b.cfg.NumSDIMMs; sd++ {
		b.st.HostBytes += uint64(shard)
		b.links[chanOf(sd, b.cfg.Org.DIMMsPerChannel)].Transfer(shard, nil)
	}
}

// Channels implements Backend: all bank-modelled channels are on-DIMM.
func (b *IndepSplitBackend) Channels() ([]*dram.Channel, []bool) {
	var chans []*dram.Channel
	for _, g := range b.groups {
		chans = append(chans, g.channels()...)
	}
	local := make([]bool, len(chans))
	for i := range local {
		local[i] = true
	}
	return chans, local
}

// Links implements Backend.
func (b *IndepSplitBackend) Links() []*dram.Link { return b.links }

// Stats implements Backend.
func (b *IndepSplitBackend) Stats() BackendStats { return b.st }

// Frontend exposes the Freecursive frontend.
func (b *IndepSplitBackend) Frontend() *freecursive.Frontend { return b.fe }
