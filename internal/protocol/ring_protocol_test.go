package protocol

import (
	"testing"

	"sdimm/internal/config"
	"sdimm/internal/event"
)

func TestRingReadsComplete(t *testing.T) {
	eng := &event.Engine{}
	b, err := NewRing(eng, cfgFor(config.Ring, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, eng, b, 60, 4)
	st := b.Stats()
	if st.Probes == 0 {
		t.Fatal("no PROBE polling happened")
	}
	if st.HostBytes == 0 {
		t.Fatal("no host traffic")
	}
	// The wire shape is Independent's: one APPEND per SDIMM per accessORAM.
	var appends, dummies uint64
	for _, buf := range b.Buffers() {
		if !buf.Engine().Ring() {
			t.Fatal("ring backend built a path-mode engine")
		}
		s := buf.Stats()
		appends += s.Appends
		dummies += s.DummyAppends
	}
	if appends+dummies != st.AccessORAMs*uint64(4) {
		t.Fatalf("appends %d + dummies %d != 4*accesses %d", appends, dummies, 4*st.AccessORAMs)
	}
	chans, local := b.Channels()
	if len(chans) != 4 || !local[0] {
		t.Fatalf("want 4 on-DIMM channels, got %d local=%v", len(chans), local)
	}
}

func TestRingFactory(t *testing.T) {
	eng := &event.Engine{}
	b, err := New(eng, cfgFor(config.Ring, 1, 20))
	if err != nil {
		t.Fatal(err)
	}
	rb, ok := b.(*IndependentBackend)
	if !ok {
		t.Fatalf("factory returned %T", b)
	}
	if !rb.ring {
		t.Fatal("factory built a non-ring backend for config.Ring")
	}
	drive(t, eng, rb, 20, 9)
}

// TestRingLocalWritesBelowIndependent is the protocol-level half of the
// BENCH_ring.json claim: the same workload generates materially fewer DRAM
// write commands on the on-DIMM buses under ring eviction, because only the
// deferred flushes (one path per A accesses, plus stash-pressure extras)
// write buckets back.
func TestRingLocalWritesBelowIndependent(t *testing.T) {
	localWrites := func(b Backend) uint64 {
		chans, _ := b.Channels()
		var w uint64
		for _, ch := range chans {
			w += ch.Stats().Writes
		}
		return w
	}

	engI := &event.Engine{}
	bi, err := NewIndependent(engI, cfgFor(config.Independent, 1, 20))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, engI, bi, 80, 7)
	indW := localWrites(bi)

	engR := &event.Engine{}
	br, err := NewRing(engR, cfgFor(config.Ring, 1, 20))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, engR, br, 80, 7)
	ringW := localWrites(br)

	if indW == 0 {
		t.Fatal("independent run produced no DRAM writes")
	}
	if float64(ringW) >= 0.8*float64(indW) {
		t.Fatalf("ring local writes %d not below 80%% of independent %d", ringW, indW)
	}
}

func TestRingDeterministicReplay(t *testing.T) {
	run := func() (event.Time, BackendStats) {
		eng := &event.Engine{}
		b, err := NewRing(eng, cfgFor(config.Ring, 1, 20))
		if err != nil {
			t.Fatal(err)
		}
		end := drive(t, eng, b, 50, 11)
		return end, b.Stats()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 {
		t.Fatalf("end times differ: %d vs %d", e1, e2)
	}
	s1.MissLatency, s2.MissLatency = nil, nil
	if s1 != s2 {
		t.Fatalf("stats differ:\n%+v\n%+v", s1, s2)
	}
}
