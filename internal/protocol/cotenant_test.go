package protocol

import (
	"testing"

	"sdimm/internal/config"
	"sdimm/internal/dram"
	"sdimm/internal/event"
)

func TestTenantValidation(t *testing.T) {
	eng := &event.Engine{}
	cfg := cfgFor(config.Independent, 1, 20)
	if _, err := NewTenantOnChannels(eng, cfg.Org, nil); err == nil {
		t.Error("no channels accepted")
	}
	if _, err := NewTenantOnLinks(eng, cfg, nil); err == nil {
		t.Error("no links accepted")
	}
}

func TestTenantOnChannelsSharesBanks(t *testing.T) {
	eng := &event.Engine{}
	cfg := cfgFor(config.NonSecure, 1, 20)
	ch := dram.NewChannel(eng, "shared", cfg.Org, cfg.Timing, cfg.Org.RanksPerChannel())
	tenant, err := NewTenantOnChannels(eng, cfg.Org, []*dram.Channel{ch})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 50; i++ {
		tenant.Read(uint64(i*997), func() { done++ })
		if i%3 == 0 {
			tenant.Write(uint64(i * 131))
		}
	}
	eng.RunWhile(func() bool { return done < 50 })
	if done != 50 {
		t.Fatalf("%d/50 reads completed", done)
	}
	st := ch.Stats()
	if st.Reads != 50 || st.Writes == 0 {
		t.Fatalf("channel stats: %+v", st)
	}
	lat := tenant.Stats().MissLatency
	if lat.N() != 50 {
		t.Fatal("latency histogram incomplete")
	}
}

func TestTenantOnLinksCouplesToBus(t *testing.T) {
	// Saturating the link with foreign traffic must slow the tenant.
	run := func(saturate bool) float64 {
		eng := &event.Engine{}
		cfg := cfgFor(config.Independent, 1, 20)
		link := dram.NewLink(eng, cfg.Org, cfg.Timing)
		tenant, err := NewTenantOnLinks(eng, cfg, []*dram.Link{link})
		if err != nil {
			t.Fatal(err)
		}
		if saturate {
			for i := 0; i < 200; i++ {
				link.Transfer(64, nil)
			}
		}
		done := 0
		for i := 0; i < 20; i++ {
			tenant.Read(uint64(i*997), func() { done++ })
		}
		eng.RunWhile(func() bool { return done < 20 })
		lat := tenant.Stats().MissLatency
		return lat.Mean()
	}
	free := run(false)
	busy := run(true)
	if busy <= free {
		t.Fatalf("tenant latency %v not above %v under a saturated link", busy, free)
	}
}
