// Package attacker evaluates the system from the adversary's vantage point
// of the threat model (Section II-B): a logic analyzer on the untrusted
// buses sees every DDR command and its plaintext bank/row address. The
// package captures those address traces and quantifies how much the trace
// reveals about the running program:
//
//   - the row-address distribution and its entropy (ORAM touches rows
//     near-uniformly at every level; plaintext programs concentrate on
//     their working set);
//
//   - the total-variation distance between the traces of two different
//     programs (indistinguishability: for an oblivious memory the distance
//     is small no matter how different the programs are);
//
//   - the short-window repeat rate (temporal locality: a plaintext bus
//     shows a block being touched again and again; ORAM's remapping
//     destroys this signal).
//
// The tests assert the paper's obliviousness claim in these terms: under
// any ORAM protocol the metrics cannot tell two very different workloads
// apart, while the non-secure bus trivially gives them away.
package attacker

import (
	"fmt"
	"math"
	"sort"

	"sdimm/internal/config"
	"sdimm/internal/dram"
	"sdimm/internal/event"
	"sdimm/internal/sim"
	"sdimm/internal/trace"
)

// Access is one observed command on an untrusted bus.
type Access struct {
	Cycle event.Time
	Kind  dram.CommandKind
	Rank  int
	Bank  int
	Row   uint32
}

// Trace is the attacker's captured view of one bus.
type Trace struct {
	Channel  string
	Local    bool
	Accesses []Access
}

// Capture runs one simulation and records every activate on every
// modelled bus, keyed by channel name. Only ACT commands are kept: the row
// address is the information-bearing signal (column accesses within an
// open row are positionally determined by it).
func Capture(cfg config.Config, workload string) (map[string]*Trace, sim.Result, error) {
	return CaptureSeeded(cfg, workload, cfg.Seed)
}

// CaptureSeeded decouples the program input (traceSeed) from the system's
// randomness (cfg.Seed): holding the input fixed while varying cfg.Seed
// measures the trace variation due to the ORAM's own coins — the
// sampling-noise floor an attacker's distinguisher has to beat.
func CaptureSeeded(cfg config.Config, workload string, traceSeed uint64) (map[string]*Trace, sim.Result, error) {
	prof, err := trace.ProfileByName(workload)
	if err != nil {
		return nil, sim.Result{}, err
	}
	recs, err := prof.Generate(cfg.WarmupAccesses+cfg.MeasureAccesses, traceSeed)
	if err != nil {
		return nil, sim.Result{}, err
	}
	traces := make(map[string]*Trace)
	res, err := sim.RunTraceObserved(cfg, workload, recs,
		func(channel string, local bool, now event.Time, kind dram.CommandKind, coord dram.Coord) {
			if kind != dram.CmdActivate {
				return
			}
			t, ok := traces[channel]
			if !ok {
				t = &Trace{Channel: channel, Local: local}
				traces[channel] = t
			}
			t.Accesses = append(t.Accesses, Access{
				Cycle: now, Kind: kind, Rank: coord.Rank, Bank: coord.Bank, Row: coord.Row,
			})
		})
	if err != nil {
		return nil, sim.Result{}, err
	}
	return traces, res, nil
}

// Merge concatenates all bus traces into one attacker view (a physical
// attacker probes every bus).
func Merge(traces map[string]*Trace) *Trace {
	names := make([]string, 0, len(traces))
	for n := range traces {
		names = append(names, n)
	}
	sort.Strings(names)
	out := &Trace{Channel: "all"}
	for _, n := range names {
		out.Accesses = append(out.Accesses, traces[n].Accesses...)
	}
	sort.Slice(out.Accesses, func(i, j int) bool { return out.Accesses[i].Cycle < out.Accesses[j].Cycle })
	return out
}

// location folds an access to its (rank, bank, row) identity.
func (a Access) location() uint64 {
	return uint64(a.Rank)<<48 | uint64(a.Bank)<<40 | uint64(a.Row)
}

// RowHistogram returns the frequency of each touched (rank, bank, row).
func (t *Trace) RowHistogram() map[uint64]int {
	h := make(map[uint64]int)
	for _, a := range t.Accesses {
		h[a.location()]++
	}
	return h
}

// Entropy returns the Shannon entropy (bits) of the row-touch distribution.
func (t *Trace) Entropy() float64 {
	h := t.RowHistogram()
	n := float64(len(t.Accesses))
	if n == 0 {
		return 0
	}
	e := 0.0
	for _, c := range h {
		p := float64(c) / n
		e -= p * math.Log2(p)
	}
	return e
}

// NormalizedEntropy returns Entropy / log2(distinct rows touched): 1 means
// the touched rows are hit uniformly.
func (t *Trace) NormalizedEntropy() float64 {
	h := t.RowHistogram()
	if len(h) < 2 {
		return 0
	}
	return t.Entropy() / math.Log2(float64(len(h)))
}

// RepeatRate returns the fraction of accesses whose row was already
// touched within the previous window accesses — the temporal-locality
// signal a plaintext bus leaks.
func (t *Trace) RepeatRate(window int) float64 {
	if len(t.Accesses) == 0 || window <= 0 {
		return 0
	}
	recent := make([]uint64, 0, window)
	hits := 0
	for _, a := range t.Accesses {
		loc := a.location()
		for _, r := range recent {
			if r == loc {
				hits++
				break
			}
		}
		recent = append(recent, loc)
		if len(recent) > window {
			recent = recent[1:]
		}
	}
	return float64(hits) / float64(len(t.Accesses))
}

// TotalVariation returns the total-variation distance between the
// row-touch distributions of two traces (0 = identical, 1 = disjoint).
func TotalVariation(a, b *Trace) (float64, error) {
	ha, hb := a.RowHistogram(), b.RowHistogram()
	na, nb := float64(len(a.Accesses)), float64(len(b.Accesses))
	if na == 0 || nb == 0 {
		return 0, fmt.Errorf("attacker: empty trace")
	}
	keys := make(map[uint64]bool, len(ha)+len(hb))
	for k := range ha {
		keys[k] = true
	}
	for k := range hb {
		keys[k] = true
	}
	d := 0.0
	for k := range keys {
		d += math.Abs(float64(ha[k])/na - float64(hb[k])/nb)
	}
	return d / 2, nil
}

// Report summarizes the attacker's metrics for one trace.
type Report struct {
	Accesses          int
	DistinctRows      int
	Entropy           float64
	NormalizedEntropy float64
	RepeatRate        float64 // window 32
}

// Analyze produces a Report.
func Analyze(t *Trace) Report {
	return Report{
		Accesses:          len(t.Accesses),
		DistinctRows:      len(t.RowHistogram()),
		Entropy:           t.Entropy(),
		NormalizedEntropy: t.NormalizedEntropy(),
		RepeatRate:        t.RepeatRate(32),
	}
}
