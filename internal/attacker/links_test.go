package attacker

import (
	"fmt"
	"testing"

	"sdimm"
	"sdimm/internal/rng"
)

// scriptOp is one access in a replayable link-trace workload.
type scriptOp struct {
	addr  uint64
	write bool
	data  byte
}

func linkWorkload(seed uint64, n int, addrs uint64) []scriptOp {
	r := rng.New(seed)
	ops := make([]scriptOp, n)
	for i := range ops {
		ops[i] = scriptOp{addr: r.Uint64n(addrs), write: r.Bool(0.4), data: byte(r.Uint64n(256))}
	}
	return ops
}

func execScript(t *testing.T, c *sdimm.Cluster, ops []scriptOp) {
	t.Helper()
	for i, op := range ops {
		var err error
		if op.write {
			err = c.Write(op.addr, []byte{op.data})
		} else {
			_, err = c.Read(op.addr)
		}
		if err != nil {
			t.Fatalf("script op %d (addr %d): %v", i, op.addr, err)
		}
	}
}

// TestDrainTrafficIndistinguishableOnLinks is the link-level obliviousness
// claim for elastic rebalancing. Two clusters run in lockstep through an
// identical history, so their states are bit-identical when the window of
// interest opens. Then one drains a member while serving the workload; the
// other replays the exact same address sequence — with each migration
// appearing as an ordinary read of the same address — without any drain.
// The adversary on the links must find (a) no frame shape it never saw in
// steady state, (b) frames still flowing to the draining member, and (c) a
// distributional distance under 1.5x the noise floor set by ordinary
// workload variation.
func TestDrainTrafficIndistinguishableOnLinks(t *testing.T) {
	const (
		addrs  = 128
		window = 150
		member = 1
	)
	build := func(rec *LinkRecorder) *sdimm.Cluster {
		c, err := sdimm.NewCluster(sdimm.ClusterOptions{
			SDIMMs:  4,
			Levels:  10,
			Key:     []byte("link-analysis-key"),
			Seed:    23,
			LinkTap: rec.Tap,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	recR, recS := NewLinkRecorder(), NewLinkRecorder()
	cR, cS := build(recR), build(recS)

	// Identical warmup on both: populate every address, then mix.
	warm := make([]scriptOp, 0, addrs+100)
	for a := uint64(0); a < addrs; a++ {
		warm = append(warm, scriptOp{addr: a, write: true, data: byte(a)})
	}
	warm = append(warm, linkWorkload(100, 100, addrs)...)
	execScript(t, cR, warm)
	execScript(t, cS, warm)
	recR.Cut()
	recS.Cut()

	// One steady window with both clusters still in lockstep: identical
	// histories must produce identical traces, or the load-matching below
	// is meaningless.
	wA := linkWorkload(101, window, addrs)
	execScript(t, cR, wA)
	execScript(t, cS, wA)
	rA, sA := recR.Cut(), recS.Cut()
	if tv, err := LinkTotalVariation(rA, sA); err != nil || tv != 0 {
		t.Fatalf("lockstep clusters diverged before the drain: tv=%v err=%v", tv, err)
	}

	// Drain window on cR: one migration step after each workload op, the
	// capture ending the moment the member is empty (what happens after —
	// detach, silence — is an announced topology change, not a covert
	// act). cS replays the identical address sequence with each migration
	// appearing as an ordinary read.
	if err := cR.BeginDrain(member); err != nil {
		t.Fatal(err)
	}
	wC := linkWorkload(103, window, addrs)
	script := make([]scriptOp, 0, 2*window)
	migrations := 0
	for i := 0; ; i++ {
		if i >= len(wC) {
			t.Fatalf("drain did not deplete within %d ops (%d left)", window, cR.DrainRemaining())
		}
		execScript(t, cR, []scriptOp{wC[i]})
		script = append(script, wC[i])
		next := cR.NextMigrations(1)
		if len(next) == 0 {
			break
		}
		if done, err := cR.DrainStep(); err != nil || done {
			t.Fatalf("DrainStep after op %d: done=%v err=%v", i, done, err)
		}
		script = append(script, scriptOp{addr: next[0]})
		migrations++
		if len(cR.NextMigrations(1)) == 0 {
			break
		}
	}
	if cR.DrainRemaining() != 0 {
		t.Fatalf("capture window closed with %d blocks left", cR.DrainRemaining())
	}
	rC := recR.Cut()
	execScript(t, cS, script)
	sC := recS.Cut()

	if migrations < 10 {
		t.Fatalf("only %d migrations in the window — nothing to hide", migrations)
	}

	// Noise floor: two further steady windows on cS, each the same length
	// as the drain window, with fresh workloads — the distance an attacker
	// must already tolerate between two ordinary busy periods.
	execScript(t, cS, linkWorkload(104, len(script), addrs))
	sD := recS.Cut()
	execScript(t, cS, linkWorkload(105, len(script), addrs))
	sE := recS.Cut()
	noise, err := LinkTotalVariation(sD, sE)
	if err != nil {
		t.Fatal(err)
	}

	// (a) No frame shape the steady windows never produced.
	steady := sA.Shapes()
	for _, w := range []*LinkTrace{sD, sE} {
		for sh := range w.Shapes() {
			steady[sh] = true
		}
	}
	for sh := range rC.Shapes() {
		if !steady[sh] {
			t.Fatalf("drain window produced a novel frame shape %+v", sh)
		}
	}
	// (b) The draining member keeps taking traffic — it is drained by
	// placement, not silenced.
	memberFrames := 0
	for _, e := range rC.Events {
		if e.SDIMM == member {
			memberFrames++
		}
	}
	if memberFrames == 0 {
		t.Fatal("draining member went silent — trivially observable")
	}
	// (c) Distribution distance against the load-matched steady trace stays
	// within the ordinary workload-to-workload noise.
	cross, err := LinkTotalVariation(rC, sC)
	if err != nil {
		t.Fatal(err)
	}
	limit := 1.5 * noise
	if cross > limit {
		t.Fatalf("drain trace distinguishable: cross-TV %.4f > 1.5 x noise floor %.4f", cross, noise)
	}
	t.Logf("noise floor %.4f, drain cross-TV %.4f (%d migrations among %d accesses)", noise, cross, migrations, len(script))

	// The drain itself must still be a clean, lossless one.
	if err := cR.CompleteDrain(); err != nil {
		t.Fatalf("CompleteDrain: %v", err)
	}
	for a := uint64(0); a < addrs; a++ {
		if _, err := cR.Read(a); err != nil {
			t.Fatalf("read %d after drain: %v", a, err)
		}
	}
}

// TestLinkTotalVariationBounds pins the metric itself.
func TestLinkTotalVariationBounds(t *testing.T) {
	mk := func(events ...LinkEvent) *LinkTrace { return &LinkTrace{Events: events} }
	a := mk(LinkEvent{0, 0, 64}, LinkEvent{1, 0, 64})
	same, err := LinkTotalVariation(a, a)
	if err != nil || same != 0 {
		t.Fatalf("identical traces: tv=%v err=%v", same, err)
	}
	b := mk(LinkEvent{2, 1, 128})
	far, err := LinkTotalVariation(a, b)
	if err != nil || far != 1 {
		t.Fatalf("disjoint traces: tv=%v err=%v", far, err)
	}
	if _, err := LinkTotalVariation(a, mk()); err == nil {
		t.Fatal("empty trace accepted")
	}
	if fmt.Sprintf("%v", LinkEvent{1, 1, 8}) == "" {
		t.Fatal("unreachable")
	}
}
