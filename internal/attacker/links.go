package attacker

import (
	"fmt"
	"sync"

	"sdimm/internal/fault"
)

// This file extends the adversary's vantage point from the DDR bus to the
// cluster's serial links: the attacker of Section II-B can also count and
// size the sealed frames each SDIMM exchanges with the host. Payloads are
// AES-GCM sealed, so the only observables per frame are WHICH link, WHICH
// direction, and HOW LONG — exactly what LinkEvent records. The elastic
// rebalancing claim is phrased in these terms: the link trace of a cluster
// draining a member must be statistically indistinguishable from the trace
// of one merely serving load, because every migration step is a single
// normal-shaped access.

// LinkEvent is one frame observed on a cluster link, reduced to the fields
// the sealed channel actually leaks.
type LinkEvent struct {
	SDIMM int
	Dir   fault.Direction
	Len   int
}

// LinkTrace is an ordered capture of link events.
type LinkTrace struct {
	Events []LinkEvent
}

// LinkRecorder collects LinkEvents from a cluster's LinkTap. It is safe for
// concurrent use — pipeline workers tap from multiple goroutines.
type LinkRecorder struct {
	mu     sync.Mutex
	events []LinkEvent
}

// NewLinkRecorder returns an empty recorder.
func NewLinkRecorder() *LinkRecorder { return &LinkRecorder{} }

// Tap has the cluster LinkTap shape; pass it to ClusterOptions.LinkTap.
// Every delivery attempt is recorded — retransmissions are channel-visible
// events and belong in the adversary's trace.
func (r *LinkRecorder) Tap(sd int, dir fault.Direction, attempt int, frame []byte) {
	r.mu.Lock()
	r.events = append(r.events, LinkEvent{SDIMM: sd, Dir: dir, Len: len(frame)})
	r.mu.Unlock()
}

// Cut returns the events recorded since the previous Cut (or since the
// start) as a trace, and starts a fresh window. Use it to split one run
// into before/during/after segments.
func (r *LinkRecorder) Cut() *LinkTrace {
	r.mu.Lock()
	t := &LinkTrace{Events: r.events}
	r.events = nil
	r.mu.Unlock()
	return t
}

// Histogram returns the frequency of each (SDIMM, direction, length)
// identity — the full per-frame observable.
func (t *LinkTrace) Histogram() map[LinkEvent]int {
	h := make(map[LinkEvent]int)
	for _, e := range t.Events {
		h[e]++
	}
	return h
}

// Shapes returns the set of distinct (SDIMM, direction, length) identities.
// A rebalance that introduced a frame shape never seen in steady state
// would hand the attacker a perfect distinguisher, whatever the counts.
func (t *LinkTrace) Shapes() map[LinkEvent]bool {
	s := make(map[LinkEvent]bool)
	for _, e := range t.Events {
		s[e] = true
	}
	return s
}

// LinkTotalVariation returns the total-variation distance between the
// frame-identity distributions of two link traces (0 = identical, 1 =
// disjoint). Traces of different lengths compare fine: distributions are
// normalized, so a drain window with extra (migration) accesses is judged
// on shape, not volume.
func LinkTotalVariation(a, b *LinkTrace) (float64, error) {
	na, nb := float64(len(a.Events)), float64(len(b.Events))
	if na == 0 || nb == 0 {
		return 0, fmt.Errorf("attacker: empty link trace")
	}
	ha, hb := a.Histogram(), b.Histogram()
	keys := make(map[LinkEvent]bool, len(ha)+len(hb))
	for k := range ha {
		keys[k] = true
	}
	for k := range hb {
		keys[k] = true
	}
	tv := 0.0
	for k := range keys {
		pa := float64(ha[k]) / na
		pb := float64(hb[k]) / nb
		if pa > pb {
			tv += pa - pb
		} else {
			tv += pb - pa
		}
	}
	return tv / 2, nil
}
