package attacker

import (
	"math"
	"testing"

	"sdimm/internal/config"
	"sdimm/internal/event"
)

func capture(t *testing.T, p config.Protocol, workload string) *Trace {
	t.Helper()
	cfg := config.Default(p, 1)
	cfg.ORAM.Levels = 20
	cfg.WarmupAccesses = 100
	cfg.MeasureAccesses = 400
	traces, _, err := Capture(cfg, workload)
	if err != nil {
		t.Fatal(err)
	}
	return Merge(traces)
}

// TestNonSecureBusLeaks: on the plaintext bus, two different programs
// produce clearly distinguishable address traces, and a single program
// shows strong temporal locality.
func TestNonSecureBusLeaks(t *testing.T) {
	stream := capture(t, config.NonSecure, "libquantum")
	random := capture(t, config.NonSecure, "mcf")
	tv, err := TotalVariation(stream, random)
	if err != nil {
		t.Fatal(err)
	}
	if tv < 0.5 {
		t.Fatalf("plaintext traces of different programs TV=%v, expected clearly distinguishable", tv)
	}
}

// TestORAMBusObliviousness: under Freecursive ORAM, the same two programs
// produce traces the metrics cannot tell apart.
func TestORAMBusObliviousness(t *testing.T) {
	stream := capture(t, config.Freecursive, "libquantum")
	random := capture(t, config.Freecursive, "mcf")
	tvORAM, err := TotalVariation(stream, random)
	if err != nil {
		t.Fatal(err)
	}
	nsStream := capture(t, config.NonSecure, "libquantum")
	nsRandom := capture(t, config.NonSecure, "mcf")
	tvNS, _ := TotalVariation(nsStream, nsRandom)
	if tvORAM >= tvNS/2 {
		t.Fatalf("ORAM TV %v not far below plaintext TV %v", tvORAM, tvNS)
	}
}

// TestORAMEntropyNearUniform: the ORAM's touched-row distribution is close
// to uniform (per-level uniform path sampling).
func TestORAMEntropyNearUniform(t *testing.T) {
	tr := capture(t, config.Freecursive, "milc")
	rep := Analyze(tr)
	if rep.NormalizedEntropy < 0.85 {
		t.Fatalf("ORAM normalized entropy %v, want near 1", rep.NormalizedEntropy)
	}
}

// TestSDIMMBusesObliviousToo: the Independent protocol's on-DIMM buses are
// untrusted as well; they must show the same indistinguishability.
func TestSDIMMBusesObliviousToo(t *testing.T) {
	a := capture(t, config.Independent, "libquantum")
	b := capture(t, config.Independent, "mcf")
	tv, err := TotalVariation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.35 {
		t.Fatalf("SDIMM bus traces distinguishable: TV=%v", tv)
	}
}

// TestRepeatRateSignal: the short-window repeat rate is a program
// fingerprint on the plaintext bus (different programs differ), but under
// ORAM it is a program-independent constant — the tree's shape, not the
// program, determines it (shared top levels repeat on every access for
// every program alike).
func TestRepeatRateSignal(t *testing.T) {
	nsA := capture(t, config.NonSecure, "libquantum").RepeatRate(32)
	nsB := capture(t, config.NonSecure, "mcf").RepeatRate(32)
	orA := capture(t, config.Freecursive, "libquantum").RepeatRate(32)
	orB := capture(t, config.Freecursive, "mcf").RepeatRate(32)

	nsGap := math.Abs(nsA - nsB)
	orGap := math.Abs(orA - orB)
	if orGap >= nsGap/2 {
		t.Fatalf("ORAM repeat-rate gap %v (A=%v B=%v) not well below plaintext gap %v (A=%v B=%v)",
			orGap, orA, orB, nsGap, nsA, nsB)
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	var empty Trace
	if empty.Entropy() != 0 || empty.NormalizedEntropy() != 0 || empty.RepeatRate(8) != 0 {
		t.Fatal("empty trace metrics not zero")
	}
	if _, err := TotalVariation(&empty, &empty); err == nil {
		t.Fatal("TV of empty traces accepted")
	}
	one := &Trace{Accesses: []Access{{Row: 1}, {Row: 1}}}
	if one.NormalizedEntropy() != 0 {
		t.Fatal("single-row trace entropy not 0")
	}
	if r := one.RepeatRate(8); r != 0.5 {
		t.Fatalf("repeat rate %v, want 0.5", r)
	}
	ident, err := TotalVariation(one, one)
	if err != nil || math.Abs(ident) > 1e-12 {
		t.Fatalf("self TV %v %v", ident, err)
	}
}

func TestCaptureRejectsBadWorkload(t *testing.T) {
	cfg := config.Default(config.NonSecure, 1)
	if _, _, err := Capture(cfg, "nope"); err == nil {
		t.Fatal("bad workload accepted")
	}
}

func TestMergeOrdersByCycle(t *testing.T) {
	traces := map[string]*Trace{
		"b": {Channel: "b", Accesses: []Access{{Cycle: 5}, {Cycle: 9}}},
		"a": {Channel: "a", Accesses: []Access{{Cycle: 7}}},
	}
	m := Merge(traces)
	if len(m.Accesses) != 3 {
		t.Fatalf("merged %d", len(m.Accesses))
	}
	for i := 1; i < len(m.Accesses); i++ {
		if m.Accesses[i].Cycle < m.Accesses[i-1].Cycle {
			t.Fatal("merge not time-ordered")
		}
	}
}

var _ = event.Time(0)
