package witness

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"sdimm/internal/fault"
	"sdimm/internal/telemetry"
)

func frame(n int) []byte { return make([]byte, n) }

func TestShapeViolationAfterCalibration(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := New(Options{Members: 2, Calibration: 4, Registry: reg})

	// Calibrate both directions of member 0 with two legitimate lengths.
	for i := 0; i < 4; i++ {
		m.Tap(0, fault.HostToDev, 0, frame(64))
		m.Tap(0, fault.DevToHost, 0, frame(128))
	}
	if v := m.Verdict(); !v.OK {
		t.Fatalf("calibration frames must not violate: %+v", v)
	}

	// A never-seen length after calibration is a distinguisher.
	m.Tap(0, fault.HostToDev, 0, frame(65))
	v := m.Verdict()
	if v.OK || v.ShapeViolations != 1 {
		t.Fatalf("verdict = %+v, want one shape violation", v)
	}
	if m.Violations() != 1 {
		t.Fatalf("Violations() = %d, want 1", m.Violations())
	}

	// The other direction and the other member are calibrated independently:
	// the same length is fine where it was learned.
	m.Tap(0, fault.DevToHost, 0, frame(128))
	if got := m.Violations(); got != 1 {
		t.Fatalf("known shape re-counted: %d", got)
	}

	// Telemetry surfaced the violation.
	snap := reg.Snapshot()
	if got := snap.Counters["witness.violations{kind=shape}"]; got != 1 {
		t.Fatalf("witness.violations{kind=shape} = %d, want 1", got)
	}
}

func TestShapeDiversityCapDuringCalibration(t *testing.T) {
	m := New(Options{Members: 1, Calibration: 100, MaxShapes: 3})
	for i := 0; i < 3; i++ {
		m.Tap(0, fault.HostToDev, 0, frame(10+i))
	}
	if !m.Verdict().OK {
		t.Fatal("three shapes within cap must pass")
	}
	// A fourth distinct length exceeds MaxShapes even inside calibration.
	m.Tap(0, fault.HostToDev, 0, frame(99))
	if v := m.Verdict(); v.OK || v.ShapeViolations != 1 {
		t.Fatalf("verdict = %+v, want shape violation for unbounded diversity", v)
	}
}

func TestBalanceViolationOnSilencedMember(t *testing.T) {
	m := New(Options{Members: 4, Window: 100})
	// Skew one window hard: member 0 carries 97 frames, members 1-2 carry
	// little, member 3 is fully silent (exempt).
	for i := 0; i < 97; i++ {
		m.Tap(0, fault.HostToDev, 0, frame(64))
	}
	m.Tap(1, fault.HostToDev, 0, frame(64))
	m.Tap(2, fault.HostToDev, 0, frame(64))
	m.Tap(2, fault.HostToDev, 0, frame(64))
	v := m.Verdict()
	if v.Windows != 1 {
		t.Fatalf("windows checked = %d, want 1", v.Windows)
	}
	// fair = 100/3 ≈ 33.3; members 1 (1 frame) and 2 (2 frames) sit below
	// fair/4 ≈ 8.3 and trip; member 0 at 97 stays inside the 4× band.
	if v.BalanceViolations != 2 {
		t.Fatalf("verdict = %+v, want 2 balance violations", v)
	}
	if v.OK {
		t.Fatal("verdict must not be OK")
	}
}

func TestBalancedTrafficStaysSilent(t *testing.T) {
	m := New(Options{Members: 4, Window: 64})
	for w := 0; w < 10; w++ {
		for i := 0; i < 64; i++ {
			m.Tap(i%4, fault.HostToDev, 0, frame(64))
		}
	}
	v := m.Verdict()
	if !v.OK || v.Windows != 10 {
		t.Fatalf("uniform traffic flagged: %+v", v)
	}
}

func TestZeroTrafficMemberExempt(t *testing.T) {
	m := New(Options{Members: 4, Window: 60})
	// Member 3 removed from the cluster: the remaining three split evenly.
	for i := 0; i < 60; i++ {
		m.Tap(i%3, fault.HostToDev, 0, frame(64))
	}
	if v := m.Verdict(); !v.OK {
		t.Fatalf("removed member must be exempt: %+v", v)
	}
}

func TestNilAndOutOfRange(t *testing.T) {
	var m *Monitor
	m.Tap(0, fault.HostToDev, 0, frame(64)) // must not panic
	if m.Violations() != 0 {
		t.Fatal("nil monitor has violations")
	}
	if v := m.Verdict(); !v.OK {
		t.Fatal("nil monitor verdict must be OK")
	}

	m2 := New(Options{Members: 2})
	m2.Tap(-1, fault.HostToDev, 0, frame(64))
	m2.Tap(2, fault.HostToDev, 0, frame(64))
	if v := m2.Verdict(); v.Frames != 0 {
		t.Fatalf("out-of-range taps counted: %+v", v)
	}
}

func TestConcurrentTaps(t *testing.T) {
	m := New(Options{Members: 4, Window: 128})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(sd int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Tap(sd, fault.HostToDev, 0, frame(64))
			}
		}(g)
	}
	wg.Wait()
	v := m.Verdict()
	if v.Frames != 4000 {
		t.Fatalf("frames = %d, want 4000", v.Frames)
	}
	if !v.OK {
		t.Fatalf("uniform concurrent traffic flagged: %+v", v)
	}
}

func TestHandlerVerdict(t *testing.T) {
	m := New(Options{Members: 1, Calibration: 1})
	m.Tap(0, fault.HostToDev, 0, frame(64))

	req := httptest.NewRequest("GET", "/witness", nil)
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("healthy verdict status = %d, want 200", rec.Code)
	}
	var v Verdict
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("verdict not JSON: %v", err)
	}
	if !v.OK || v.Frames != 1 {
		t.Fatalf("verdict body = %+v", v)
	}

	// Break the shape invariant; the endpoint must go 500.
	m.Tap(0, fault.HostToDev, 0, frame(999))
	rec = httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, req)
	if rec.Code != 500 {
		t.Fatalf("violated verdict status = %d, want 500", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil || v.OK || v.ShapeViolations != 1 {
		t.Fatalf("violated body = %+v (err %v)", v, err)
	}
}

// OnViolation must fire once per violating Tap, outside the lock (re-entrant
// Verdict calls from the callback must not deadlock), and never on clean
// traffic.
func TestOnViolationCallback(t *testing.T) {
	var fired []string
	var m *Monitor
	m = New(Options{Members: 2, Calibration: 2, Window: 4, OnViolation: func(kind string) {
		fired = append(fired, kind)
		// Re-entrancy: the serving front end snapshots the verdict from the
		// callback while dumping the flight recorder.
		if v := m.Verdict(); v.OK {
			t.Errorf("callback saw OK verdict after a violation")
		}
	}})
	for i := 0; i < 2; i++ {
		m.Tap(0, fault.HostToDev, 0, frame(64))
		m.Tap(1, fault.HostToDev, 0, frame(64))
	}
	if len(fired) != 0 {
		t.Fatalf("calibration fired callbacks: %v", fired)
	}
	m.Tap(0, fault.HostToDev, 0, frame(99))
	if len(fired) != 1 || fired[0] != "shape" {
		t.Fatalf("shape violation callbacks = %v, want [shape]", fired)
	}
	// Starve (but do not silence) member 1 for a full window: its share
	// drops below fair/4 and the balance check fires the callback.
	var kinds []string
	m2 := New(Options{Members: 2, Calibration: 1, Window: 32,
		OnViolation: func(kind string) { kinds = append(kinds, kind) }})
	m2.Tap(0, fault.HostToDev, 0, frame(64))
	m2.Tap(1, fault.HostToDev, 0, frame(64))
	for i := 0; i < 29; i++ {
		m2.Tap(0, fault.HostToDev, 0, frame(64))
	}
	m2.Tap(1, fault.HostToDev, 0, frame(64))
	sawBalance := false
	for _, k := range kinds {
		if k == "balance" {
			sawBalance = true
		}
	}
	if !sawBalance {
		t.Fatalf("starved member raised no balance callback: %v", kinds)
	}
}
