// Package witness promotes the offline attacker harness's link observables
// (internal/attacker: which link, which direction, how long — the only
// things a sealed frame leaks) into an online, bounded-memory obliviousness
// monitor for live clusters. It continuously checks two invariants on every
// tapped frame:
//
//   - Frame shape: after a short calibration window, no (member, direction)
//     may ever carry a frame length it has not already exhibited. A new
//     length is a perfect distinguisher for an attacker — the exact check
//     the elastic-rebalance harness applies offline, made continuous.
//   - Traffic balance: over a sliding window of frames, every member that
//     is receiving traffic at all must hold a share of it within a fixed
//     band around 1/members. Members with zero traffic in a window are
//     exempt — a failed or removed member is publicly observable anyway.
//
// Violations surface as telemetry counters (witness.violations{kind=...})
// and an HTTP verdict handler, turning the attacker tests into a production
// guardrail: the chaos and elastic sweeps run with the monitor attached and
// assert it stays silent.
//
// Memory is bounded by construction: per (member, direction) the monitor
// retains at most MaxShapes frame lengths, plus one counter per member for
// the balance window — nothing grows with traffic.
package witness

import (
	"encoding/json"
	"net/http"
	"sync"

	"sdimm/internal/fault"
	"sdimm/internal/telemetry"
)

// Options configure a Monitor.
type Options struct {
	// Members is the cluster's member (link) count. Required.
	Members int
	// Calibration is how many frames per (member, direction) may introduce
	// new lengths before the shape set freezes (default 64). Every
	// steady-state shape appears within the first access, so the default
	// leaves generous slack without weakening the check materially.
	Calibration int
	// MaxShapes caps the learned length set per (member, direction)
	// (default 8). Exceeding it during calibration is itself a violation —
	// a channel with unbounded frame-length diversity is not
	// shape-oblivious.
	MaxShapes int
	// Window is the traffic-balance sliding window in frames (default
	// 4096). The check fires each time a window fills; runs shorter than
	// one window get shape checking only.
	Window int
	// Registry, when set, receives witness.frames and
	// witness.violations{kind=shape|balance} counters.
	Registry *telemetry.Registry
	// OnViolation, when set, is invoked (outside the monitor's lock, at
	// most once per Tap) after a frame raises a shape or balance
	// violation, with the violation kind ("shape" or "balance"). Serving
	// front ends hook their flight-recorder auto-dump here so the ring
	// snapshot captures the traffic that broke the invariant.
	OnViolation func(kind string)
}

func (o Options) withDefaults() Options {
	if o.Calibration <= 0 {
		o.Calibration = 64
	}
	if o.MaxShapes <= 0 {
		o.MaxShapes = 8
	}
	if o.Window <= 0 {
		o.Window = 4096
	}
	return o
}

// Monitor is the online obliviousness monitor. Tap it into a cluster's
// LinkTap (chaining with other taps as needed); it is safe for concurrent
// use from pipeline workers.
type Monitor struct {
	opt Options

	mu       sync.Mutex
	shapes   [][2][]int // learned frame lengths per member × direction
	seen     [][2]int   // calibration frames consumed per member × direction
	winCount []uint64   // frames per member in the current window
	winTotal int
	frames   uint64
	windows  uint64
	shapeV   uint64
	balV     uint64

	cFrames  *telemetry.Counter
	cShape   *telemetry.Counter
	cBalance *telemetry.Counter
	cWindows *telemetry.Counter
}

// New builds a monitor.
func New(opt Options) *Monitor {
	opt = opt.withDefaults()
	m := &Monitor{
		opt:      opt,
		shapes:   make([][2][]int, opt.Members),
		seen:     make([][2]int, opt.Members),
		winCount: make([]uint64, opt.Members),
		cFrames:  opt.Registry.Counter("witness.frames"),
		cShape:   opt.Registry.Counter("witness.violations", "kind", "shape"),
		cBalance: opt.Registry.Counter("witness.violations", "kind", "balance"),
		cWindows: opt.Registry.Counter("witness.windows"),
	}
	return m
}

// Tap observes one frame; it has the cluster LinkTap shape minus nothing —
// pass it directly or chain it after another tap. Retransmissions are
// ordinary observable events: a retried frame is byte-identical to the
// original by the transactor's replay-safety contract, so its length is
// always already calibrated.
func (m *Monitor) Tap(sd int, dir fault.Direction, attempt int, frame []byte) {
	if m == nil || sd < 0 || sd >= m.opt.Members {
		return
	}
	d := 0
	if dir == fault.DevToHost {
		d = 1
	}
	l := len(frame)

	m.mu.Lock()
	m.frames++
	m.cFrames.Inc()

	// Shape invariant.
	shapeFired := false
	known := false
	for _, s := range m.shapes[sd][d] {
		if s == l {
			known = true
			break
		}
	}
	if !known {
		if m.seen[sd][d] < m.opt.Calibration && len(m.shapes[sd][d]) < m.opt.MaxShapes {
			m.shapes[sd][d] = append(m.shapes[sd][d], l)
		} else {
			m.shapeV++
			m.cShape.Inc()
			shapeFired = true
		}
	}
	m.seen[sd][d]++

	// Balance invariant.
	balBefore := m.balV
	m.winCount[sd]++
	m.winTotal++
	if m.winTotal >= m.opt.Window {
		m.checkWindowLocked()
	}
	balFired := m.balV != balBefore
	m.mu.Unlock()

	if cb := m.opt.OnViolation; cb != nil {
		if shapeFired {
			cb("shape")
		}
		if balFired {
			cb("balance")
		}
	}
}

// checkWindowLocked applies the balance band to the completed window and
// resets it. The band is deliberately loose — [1/4, 4]× the fair share of
// the live members — because legitimate skew exists (the ACCESS leg lands
// only on the owning member, fault retries add frames to one link, and a
// member can fail mid-window), while a drained-by-silencing member or a
// hot-spotted channel blows far past 4×.
func (m *Monitor) checkWindowLocked() {
	live := 0
	for _, n := range m.winCount {
		if n > 0 {
			live++
		}
	}
	if live > 0 {
		fair := float64(m.winTotal) / float64(live)
		for _, n := range m.winCount {
			if n == 0 {
				continue
			}
			share := float64(n)
			if share < fair/4 || share > fair*4 {
				m.balV++
				m.cBalance.Inc()
			}
		}
	}
	m.windows++
	m.cWindows.Inc()
	clear(m.winCount)
	m.winTotal = 0
}

// Verdict is the monitor's current judgement.
type Verdict struct {
	OK                bool   `json:"ok"`
	Frames            uint64 `json:"frames"`
	Windows           uint64 `json:"windows_checked"`
	ShapeViolations   uint64 `json:"shape_violations"`
	BalanceViolations uint64 `json:"balance_violations"`
}

// Verdict snapshots the monitor. OK means zero violations of either kind.
func (m *Monitor) Verdict() Verdict {
	if m == nil {
		return Verdict{OK: true}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v := Verdict{
		OK:                m.shapeV == 0 && m.balV == 0,
		Frames:            m.frames,
		Windows:           m.windows,
		ShapeViolations:   m.shapeV,
		BalanceViolations: m.balV,
	}
	return v
}

// Violations returns the total violation count (both kinds).
func (m *Monitor) Violations() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shapeV + m.balV
}

// Handler serves the verdict as JSON — the production guardrail endpoint
// for a serving front end: 200 with {"ok":true,...} while the invariants
// hold, 500 with the violation counts once they break.
func (m *Monitor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		v := m.Verdict()
		w.Header().Set("Content-Type", "application/json")
		if !v.OK {
			w.WriteHeader(http.StatusInternalServerError)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	})
}
