// Package integrity implements PMMAC-style memory authentication as used by
// Freecursive ORAM and inherited by the SDIMM protocols: every bucket
// carries a MAC bound to (bucket position, monotonic write counter, bucket
// contents), so stale or relocated ciphertext is detected without a Merkle
// tree — the position map already authenticates freshness transitively.
//
// The Split protocol shards each bucket across n SDIMMs; each shard carries
// its own MAC over its data portion and the shared compact counter
// (Section III-D: "MACs are generated based on the compact counters and the
// data portions available in each bucket"), which multiplies MAC storage by
// n but lets each SDIMM verify and regenerate independently.
//
// PMMAC and Chain keep their HMAC state and output scratch across calls so
// the verify/append paths are allocation-free; as a consequence neither type
// is safe for concurrent use. Every holder in this repo (a MemStore, a
// durable Manager) is already single-threaded by construction.
package integrity

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"hash"
)

// TagSize is the truncated MAC size in bytes, matching the 8-byte per-bucket
// MAC budget assumed by the paper's bucket layout.
const TagSize = 8

// PMMAC authenticates buckets under one secret key. Not safe for concurrent
// use: the HMAC state and output buffer are reused across calls.
type PMMAC struct {
	mac hash.Hash
	hdr [20]byte
	sum [sha256.Size]byte
}

// New creates a PMMAC instance with the given key. The key is copied.
func New(key []byte) *PMMAC {
	return &PMMAC{mac: hmac.New(sha256.New, key)}
}

// Tag computes the MAC for a whole (unsplit) bucket. The result is a fresh
// allocation the caller owns; the hot path uses AppendTag instead.
func (p *PMMAC) Tag(bucket uint64, counter uint64, data []byte) []byte {
	return append([]byte(nil), p.tag(bucket, ^uint32(0), counter, data)...)
}

// AppendTag appends the whole-bucket MAC to dst and returns the extended
// slice, allocating only if dst lacks capacity.
func (p *PMMAC) AppendTag(dst []byte, bucket uint64, counter uint64, data []byte) []byte {
	return append(dst, p.tag(bucket, ^uint32(0), counter, data)...)
}

// Verify checks a whole-bucket MAC in constant time. It does not allocate.
func (p *PMMAC) Verify(bucket uint64, counter uint64, data, tag []byte) bool {
	want := p.tag(bucket, ^uint32(0), counter, data)
	return len(tag) == TagSize && subtle.ConstantTimeCompare(want, tag) == 1
}

// ShardTag computes the MAC for one SDIMM's shard of a split bucket. The
// shard index is bound into the MAC so shards cannot be swapped between
// SDIMMs. The result is a fresh allocation the caller owns.
func (p *PMMAC) ShardTag(bucket uint64, shard int, counter uint64, data []byte) []byte {
	return append([]byte(nil), p.tag(bucket, uint32(shard), counter, data)...)
}

// AppendShardTag appends a shard MAC to dst and returns the extended slice.
func (p *PMMAC) AppendShardTag(dst []byte, bucket uint64, shard int, counter uint64, data []byte) []byte {
	return append(dst, p.tag(bucket, uint32(shard), counter, data)...)
}

// VerifyShard checks a shard MAC in constant time. It does not allocate.
func (p *PMMAC) VerifyShard(bucket uint64, shard int, counter uint64, data, tag []byte) bool {
	want := p.tag(bucket, uint32(shard), counter, data)
	return len(tag) == TagSize && subtle.ConstantTimeCompare(want, tag) == 1
}

// tag returns the truncated MAC in p's reusable output buffer — valid only
// until the next call on p.
func (p *PMMAC) tag(bucket uint64, shard uint32, counter uint64, data []byte) []byte {
	p.mac.Reset()
	binary.BigEndian.PutUint64(p.hdr[0:8], bucket)
	binary.BigEndian.PutUint32(p.hdr[8:12], shard)
	binary.BigEndian.PutUint64(p.hdr[12:20], counter)
	p.mac.Write(p.hdr[:])
	p.mac.Write(data)
	return p.mac.Sum(p.sum[:0])[:TagSize]
}

// ChainTagSize is the per-record MAC size of a journal hash chain.
const ChainTagSize = 16

// Chain authenticates an append-only record sequence (the durability
// journal): each record's tag is an HMAC over the previous tag and the
// record bytes, so truncating, reordering, or splicing records breaks the
// chain at the first tampered point and the decoder fails closed there.
// Not safe for concurrent use.
type Chain struct {
	mac  hash.Hash
	last []byte
}

// NewChain starts a chain under key, seeded with an initial link (the
// journal header's MAC), which binds every record to its file's identity.
func NewChain(key, seed []byte) *Chain {
	return &Chain{
		mac:  hmac.New(sha256.New, key),
		last: append(make([]byte, 0, sha256.Size), seed...),
	}
}

// Next absorbs one record and returns its ChainTagSize-byte tag as a fresh
// allocation. The tag becomes the chain state for the following record.
func (c *Chain) Next(record []byte) []byte {
	c.advance(record)
	return append([]byte(nil), c.last...)
}

// AppendNext absorbs one record and appends its tag to dst, returning the
// extended slice — the allocation-free form of Next. record may alias dst:
// it is fully absorbed before dst is extended.
func (c *Chain) AppendNext(dst, record []byte) []byte {
	c.advance(record)
	return append(dst, c.last...)
}

func (c *Chain) advance(record []byte) {
	c.mac.Reset()
	c.mac.Write(c.last)
	c.mac.Write(record)
	c.last = c.mac.Sum(c.last[:0])[:ChainTagSize]
}

// SplitOverheadBytes returns the extra MAC bytes per bucket that n-way
// splitting costs relative to the unsplit bucket (n MACs instead of 1).
func SplitOverheadBytes(n int) int {
	if n <= 1 {
		return 0
	}
	return (n - 1) * TagSize
}
