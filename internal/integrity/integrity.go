// Package integrity implements PMMAC-style memory authentication as used by
// Freecursive ORAM and inherited by the SDIMM protocols: every bucket
// carries a MAC bound to (bucket position, monotonic write counter, bucket
// contents), so stale or relocated ciphertext is detected without a Merkle
// tree — the position map already authenticates freshness transitively.
//
// The Split protocol shards each bucket across n SDIMMs; each shard carries
// its own MAC over its data portion and the shared compact counter
// (Section III-D: "MACs are generated based on the compact counters and the
// data portions available in each bucket"), which multiplies MAC storage by
// n but lets each SDIMM verify and regenerate independently.
package integrity

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
)

// TagSize is the truncated MAC size in bytes, matching the 8-byte per-bucket
// MAC budget assumed by the paper's bucket layout.
const TagSize = 8

// PMMAC authenticates buckets under one secret key.
type PMMAC struct {
	key []byte
}

// New creates a PMMAC instance with the given key. The key is copied.
func New(key []byte) *PMMAC {
	return &PMMAC{key: append([]byte(nil), key...)}
}

// Tag computes the MAC for a whole (unsplit) bucket.
func (p *PMMAC) Tag(bucket uint64, counter uint64, data []byte) []byte {
	return p.tag(bucket, ^uint32(0), counter, data)
}

// Verify checks a whole-bucket MAC in constant time.
func (p *PMMAC) Verify(bucket uint64, counter uint64, data, tag []byte) bool {
	want := p.Tag(bucket, counter, data)
	return len(tag) == TagSize && subtle.ConstantTimeCompare(want, tag) == 1
}

// ShardTag computes the MAC for one SDIMM's shard of a split bucket. The
// shard index is bound into the MAC so shards cannot be swapped between
// SDIMMs.
func (p *PMMAC) ShardTag(bucket uint64, shard int, counter uint64, data []byte) []byte {
	return p.tag(bucket, uint32(shard), counter, data)
}

// VerifyShard checks a shard MAC in constant time.
func (p *PMMAC) VerifyShard(bucket uint64, shard int, counter uint64, data, tag []byte) bool {
	want := p.ShardTag(bucket, shard, counter, data)
	return len(tag) == TagSize && subtle.ConstantTimeCompare(want, tag) == 1
}

func (p *PMMAC) tag(bucket uint64, shard uint32, counter uint64, data []byte) []byte {
	m := hmac.New(sha256.New, p.key)
	var hdr [20]byte
	binary.BigEndian.PutUint64(hdr[0:8], bucket)
	binary.BigEndian.PutUint32(hdr[8:12], shard)
	binary.BigEndian.PutUint64(hdr[12:20], counter)
	m.Write(hdr[:])
	m.Write(data)
	return m.Sum(nil)[:TagSize]
}

// ChainTagSize is the per-record MAC size of a journal hash chain.
const ChainTagSize = 16

// Chain authenticates an append-only record sequence (the durability
// journal): each record's tag is an HMAC over the previous tag and the
// record bytes, so truncating, reordering, or splicing records breaks the
// chain at the first tampered point and the decoder fails closed there.
type Chain struct {
	key  []byte
	last []byte
}

// NewChain starts a chain under key, seeded with an initial link (the
// journal header's MAC), which binds every record to its file's identity.
func NewChain(key, seed []byte) *Chain {
	return &Chain{
		key:  append([]byte(nil), key...),
		last: append([]byte(nil), seed...),
	}
}

// Next absorbs one record and returns its ChainTagSize-byte tag. The tag
// becomes the chain state for the following record.
func (c *Chain) Next(record []byte) []byte {
	m := hmac.New(sha256.New, c.key)
	m.Write(c.last)
	m.Write(record)
	c.last = m.Sum(nil)[:ChainTagSize]
	return append([]byte(nil), c.last...)
}

// SplitOverheadBytes returns the extra MAC bytes per bucket that n-way
// splitting costs relative to the unsplit bucket (n MACs instead of 1).
func SplitOverheadBytes(n int) int {
	if n <= 1 {
		return 0
	}
	return (n - 1) * TagSize
}
