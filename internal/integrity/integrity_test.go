package integrity

import (
	"testing"
	"testing/quick"
)

func TestTagRoundTrip(t *testing.T) {
	p := New([]byte("key"))
	data := []byte("bucket contents")
	tag := p.Tag(42, 7, data)
	if len(tag) != TagSize {
		t.Fatalf("tag size %d", len(tag))
	}
	if !p.Verify(42, 7, data, tag) {
		t.Fatal("genuine tag rejected")
	}
}

func TestVerifyRejectsChanges(t *testing.T) {
	p := New([]byte("key"))
	data := []byte("bucket contents")
	tag := p.Tag(42, 7, data)
	if p.Verify(43, 7, data, tag) {
		t.Fatal("relocated bucket accepted")
	}
	if p.Verify(42, 8, data, tag) {
		t.Fatal("stale counter accepted (replay)")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 1
	if p.Verify(42, 7, bad, tag) {
		t.Fatal("modified data accepted")
	}
	if p.Verify(42, 7, data, tag[:4]) {
		t.Fatal("truncated tag accepted")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	a, b := New([]byte("k1")), New([]byte("k2"))
	data := []byte("x")
	if b.Verify(1, 1, data, a.Tag(1, 1, data)) {
		t.Fatal("tag valid under wrong key")
	}
}

func TestShardBinding(t *testing.T) {
	p := New([]byte("key"))
	data := []byte("half a block")
	t0 := p.ShardTag(5, 0, 3, data)
	if !p.VerifyShard(5, 0, 3, data, t0) {
		t.Fatal("genuine shard rejected")
	}
	if p.VerifyShard(5, 1, 3, data, t0) {
		t.Fatal("shard swap accepted")
	}
	// Whole-bucket tags and shard tags must live in separate domains.
	if p.Verify(5, 3, data, t0) {
		t.Fatal("shard tag accepted as whole-bucket tag")
	}
}

func TestSplitOverheadBytes(t *testing.T) {
	for n, want := range map[int]int{0: 0, 1: 0, 2: 8, 4: 24} {
		if got := SplitOverheadBytes(n); got != want {
			t.Errorf("SplitOverheadBytes(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: Verify(Tag(...)) always succeeds, and any single-bit flip in
// the data fails.
func TestPropertyTagging(t *testing.T) {
	p := New([]byte("property-key"))
	f := func(bucket, counter uint64, data []byte) bool {
		tag := p.Tag(bucket, counter, data)
		if !p.Verify(bucket, counter, data, tag) {
			return false
		}
		if len(data) == 0 {
			return true
		}
		mut := append([]byte(nil), data...)
		mut[bucket%uint64(len(mut))] ^= 0x80
		return !p.Verify(bucket, counter, mut, tag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
