package energy

import (
	"math"
	"testing"

	"sdimm/internal/dram"
)

func mkStats(reads, writes, acts uint64, tAct, tPre, tPD uint64) dram.Stats {
	return dram.Stats{
		Reads:      reads,
		Writes:     writes,
		Activates:  acts,
		BytesRead:  reads * 64,
		BytesWrite: writes * 64,
		PerRank: []dram.RankStats{{
			TActive:    tAct,
			TPrecharge: tPre,
			TPowerDown: tPD,
		}},
	}
}

func TestZeroActivityZeroEnergy(t *testing.T) {
	p := Default()
	b := p.Channel(dram.Stats{PerRank: make([]dram.RankStats, 2)}, 2, false)
	if b.Total() != 0 {
		t.Fatalf("idle channel with zero residency burned %v J", b.Total())
	}
}

func TestBackgroundScalesWithTime(t *testing.T) {
	p := Default()
	b1 := p.Channel(mkStats(0, 0, 0, 0, 1000, 0), 2, false)
	b2 := p.Channel(mkStats(0, 0, 0, 0, 2000, 0), 2, false)
	if math.Abs(b2.Background-2*b1.Background) > 1e-15 {
		t.Fatalf("background not linear in residency: %v vs %v", b1.Background, b2.Background)
	}
}

func TestPowerDownCheaperThanStandby(t *testing.T) {
	p := Default()
	pd := p.Channel(mkStats(0, 0, 0, 0, 0, 10000), 2, false)
	stby := p.Channel(mkStats(0, 0, 0, 0, 10000, 0), 2, false)
	active := p.Channel(mkStats(0, 0, 0, 10000, 0, 0), 2, false)
	if !(pd.Background < stby.Background && stby.Background < active.Background) {
		t.Fatalf("ordering violated: pd=%v stby=%v act=%v",
			pd.Background, stby.Background, active.Background)
	}
	// Power-down should be a substantial saving (IDD2P vs IDD2N ≈ 3.5x).
	if stby.Background/pd.Background < 2 {
		t.Fatalf("power-down saving only %vx", stby.Background/pd.Background)
	}
}

func TestReadWriteEnergyPositiveAndLinear(t *testing.T) {
	p := Default()
	b1 := p.Channel(mkStats(100, 50, 10, 0, 0, 0), 2, true)
	b2 := p.Channel(mkStats(200, 100, 20, 0, 0, 0), 2, true)
	if b1.ReadWrite <= 0 || b1.ActPre <= 0 {
		t.Fatalf("dynamic energy not positive: %+v", b1)
	}
	if math.Abs(b2.ReadWrite-2*b1.ReadWrite) > 1e-15 ||
		math.Abs(b2.ActPre-2*b1.ActPre) > 1e-15 {
		t.Fatal("dynamic energy not linear in activity")
	}
}

func TestLocalIOCheaperThanHost(t *testing.T) {
	p := Default()
	host := p.Channel(mkStats(1000, 0, 0, 0, 0, 0), 2, false)
	local := p.Channel(mkStats(1000, 0, 0, 0, 0, 0), 2, true)
	if local.IO >= host.IO {
		t.Fatalf("local I/O %v not cheaper than host %v", local.IO, host.IO)
	}
	ratio := host.IO / local.IO
	want := p.HostPJPerBit / p.LocalPJPerBit
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("I/O ratio %v, want %v", ratio, want)
	}
}

func TestHostTransfer(t *testing.T) {
	p := Default()
	b := p.HostTransfer(64)
	want := 8.0 * 64 * p.HostPJPerBit * 1e-12
	if math.Abs(b.IO-want) > 1e-18 || b.Total() != b.IO {
		t.Fatalf("HostTransfer = %+v, want IO %v", b, want)
	}
}

func TestRefreshEnergyCounted(t *testing.T) {
	p := Default()
	st := dram.Stats{PerRank: []dram.RankStats{{Refreshes: 10}}}
	b := p.Channel(st, 2, false)
	if b.Refresh <= 0 {
		t.Fatalf("refresh energy = %v", b.Refresh)
	}
}

func TestBreakdownAddAndTotal(t *testing.T) {
	a := Breakdown{1, 2, 3, 4, 5}
	b := Breakdown{10, 20, 30, 40, 50}
	a.Add(b)
	if a.Total() != 165 {
		t.Fatalf("Total = %v, want 165", a.Total())
	}
	if a.Background != 11 || a.IO != 55 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

// Sanity: one rank idle in precharge standby for 1 second should burn about
// IDD2N * VDD * devices ≈ 0.57 W — the model must land in a plausible watt
// range (0.1..2 W).
func TestAbsolutePlausibility(t *testing.T) {
	p := Default()
	cyclesPerSec := uint64(1e9 / p.TCKns) // memory cycles in 1 s
	st := mkStats(0, 0, 0, 0, cyclesPerSec*2, 0)
	b := p.Channel(st, 2, false)
	if b.Background < 0.1 || b.Background > 2 {
		t.Fatalf("1s precharge standby = %v J, implausible", b.Background)
	}
}
