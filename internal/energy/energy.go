// Package energy implements an IDD-based DRAM power model in the style of
// the Micron system power calculator the paper uses. Energy is derived from
// the activity counters and power-state residencies recorded by the DRAM
// model plus explicit I/O byte accounting, split into background, activate/
// precharge, read/write, refresh, and I/O components.
//
// The I/O component distinguishes host-channel transfers (CPU socket <->
// DIMM, long and heavily terminated) from on-DIMM transfers (secure buffer
// <-> DRAM chips), which is the first-order source of the SDIMM energy win:
// the Independent/Split protocols keep most ORAM shuffle bytes on the DIMM.
package energy

import "sdimm/internal/dram"

// Params holds device current draws (mA), supply voltage, interface
// energies and the timing needed to convert counters into Joules.
type Params struct {
	VDD float64 // supply voltage, V

	// Device currents in mA (DDR3-1600 x8 2 Gb class).
	IDD0  float64 // one-bank ACT-PRE cycling
	IDD2P float64 // precharge power-down
	IDD2N float64 // precharge standby
	IDD3P float64 // active power-down
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5B float64 // burst refresh

	TCKns float64 // memory command-cycle time, ns

	// Timing in memory command cycles (must match the simulated Timing).
	TRC, TRAS, TRP, TBURST, TRFC int

	DevicesPerRank int

	// Interface energy per transferred bit, pJ.
	HostPJPerBit  float64
	LocalPJPerBit float64
}

// Default returns DDR3-1600 parameters for a Micron MT41J256M8-class x8
// part on a 9-device (ECC) rank.
func Default() Params {
	return Params{
		VDD:            1.5,
		IDD0:           95,
		IDD2P:          12,
		IDD2N:          42,
		IDD3P:          30,
		IDD3N:          45,
		IDD4R:          180,
		IDD4W:          185,
		IDD5B:          215,
		TCKns:          1.25,
		TRC:            39,
		TRAS:           28,
		TRP:            11,
		TBURST:         4,
		TRFC:           208,
		DevicesPerRank: 9,
		HostPJPerBit:   18,
		LocalPJPerBit:  7,
	}
}

// Breakdown reports energy in Joules by component.
type Breakdown struct {
	Background float64
	ActPre     float64
	ReadWrite  float64
	Refresh    float64
	IO         float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 {
	return b.Background + b.ActPre + b.ReadWrite + b.Refresh + b.IO
}

// Add accumulates another breakdown component-wise.
func (b *Breakdown) Add(o Breakdown) {
	b.Background += o.Background
	b.ActPre += o.ActPre
	b.ReadWrite += o.ReadWrite
	b.Refresh += o.Refresh
	b.IO += o.IO
}

// joulesPerCyclePerMA converts (mA × command cycles) to Joules: I×V×t.
func (p Params) joulesPerCyclePerMA() float64 {
	return 1e-3 * p.VDD * p.TCKns * 1e-9
}

// Channel computes the energy consumed by one modelled DRAM channel over
// the run, given its statistics and the CPU:memory clock ratio used to
// record residencies (residencies are stored in CPU cycles). localBus marks
// an on-DIMM channel: its data-bus bytes are charged at the local interface
// rate, a host channel's at the host rate.
func (p Params) Channel(st dram.Stats, cpuCyclesPerMem int, localBus bool) Breakdown {
	var b Breakdown
	k := p.joulesPerCyclePerMA() * float64(p.DevicesPerRank)
	ratio := float64(cpuCyclesPerMem)

	for _, r := range st.PerRank {
		// Residencies are in CPU cycles; convert to memory cycles.
		act := float64(r.TActive) / ratio
		pre := float64(r.TPrecharge) / ratio
		pd := float64(r.TPowerDown) / ratio
		b.Background += k * (act*p.IDD3N + pre*p.IDD2N + pd*p.IDD2P)
		b.Refresh += k * float64(r.Refreshes) * (p.IDD5B - p.IDD2N) * float64(p.TRFC)
	}

	// Activate/precharge pair energy (Micron formulation): the IDD0 loop
	// minus the background already accounted during tRAS/tRP.
	actMA := p.IDD0*float64(p.TRC) - p.IDD3N*float64(p.TRAS) - p.IDD2N*float64(p.TRP)
	b.ActPre = k * float64(st.Activates) * actMA

	b.ReadWrite = k * float64(p.TBURST) *
		(float64(st.Reads)*(p.IDD4R-p.IDD3N) + float64(st.Writes)*(p.IDD4W-p.IDD3N))

	bits := 8 * float64(st.BytesRead+st.BytesWrite)
	rate := p.HostPJPerBit
	if localBus {
		rate = p.LocalPJPerBit
	}
	b.IO = bits * rate * 1e-12
	return b
}

// HostTransfer returns the I/O energy of moving bytes across the host
// channel (CPU <-> secure buffer transfers carried by a dram.Link).
func (p Params) HostTransfer(bytes uint64) Breakdown {
	return Breakdown{IO: 8 * float64(bytes) * p.HostPJPerBit * 1e-12}
}
