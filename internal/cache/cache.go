// Package cache provides the set-associative LRU cache used for both the
// last-level cache (2 MB/8-way in the paper's Table II) and the PosMap
// Lookaside Buffer of Freecursive ORAM. Keys are line/block identifiers;
// the caller chooses the granularity.
package cache

import "fmt"

type line struct {
	key   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Result describes the outcome of an Access.
type Result struct {
	Hit bool
	// Evicted is set when a valid line was displaced; Victim is its key and
	// VictimDirty its dirty state (the LLC turns dirty victims into memory
	// writebacks).
	Evicted     bool
	Victim      uint64
	VictimDirty bool
}

// Cache is a set-associative LRU cache. Not safe for concurrent use.
type Cache struct {
	sets  [][]line
	ways  int
	clock uint64
	mask  uint64

	hits, misses uint64
}

// New builds a cache with totalLines entries and the given associativity.
// totalLines must be a positive multiple of ways with a power-of-two set
// count.
func New(totalLines, ways int) (*Cache, error) {
	if totalLines <= 0 || ways <= 0 || totalLines%ways != 0 {
		return nil, fmt.Errorf("cache: %d lines / %d ways invalid", totalLines, ways)
	}
	nsets := totalLines / ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets not a power of two", nsets)
	}
	sets := make([][]line, nsets)
	backing := make([]line, totalLines)
	for i := range sets {
		sets[i], backing = backing[:ways], backing[ways:]
	}
	return &Cache{sets: sets, ways: ways, mask: uint64(nsets - 1)}, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(totalLines, ways int) *Cache {
	c, err := New(totalLines, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Lines returns the capacity in lines.
func (c *Cache) Lines() int { return len(c.sets) * c.ways }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

func (c *Cache) set(key uint64) []line {
	return c.sets[key&c.mask]
}

// Access looks up key, inserting it on miss (allocate-on-miss for both
// reads and writes). write marks the line dirty.
func (c *Cache) Access(key uint64, write bool) Result {
	c.clock++
	s := c.set(key)
	for i := range s {
		if s[i].valid && s[i].key == key {
			s[i].used = c.clock
			if write {
				s[i].dirty = true
			}
			c.hits++
			return Result{Hit: true}
		}
	}
	c.misses++
	// Choose victim: an invalid way, else LRU.
	vi := 0
	for i := range s {
		if !s[i].valid {
			vi = i
			break
		}
		if s[i].used < s[vi].used {
			vi = i
		}
	}
	res := Result{}
	if s[vi].valid {
		res.Evicted = true
		res.Victim = s[vi].key
		res.VictimDirty = s[vi].dirty
	}
	s[vi] = line{key: key, valid: true, dirty: write, used: c.clock}
	return res
}

// Contains reports whether key is cached, without touching LRU state.
func (c *Cache) Contains(key uint64) bool {
	for _, l := range c.set(key) {
		if l.valid && l.key == key {
			return true
		}
	}
	return false
}

// Invalidate drops key if present, returning whether it was dirty.
func (c *Cache) Invalidate(key uint64) (wasDirty bool) {
	s := c.set(key)
	for i := range s {
		if s[i].valid && s[i].key == key {
			wasDirty = s[i].dirty
			s[i] = line{}
			return wasDirty
		}
	}
	return false
}
