package cache

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {8, 0}, {7, 2}, {24, 2}} {
		if _, err := New(c[0], c[1]); err == nil {
			t.Errorf("New(%d, %d) accepted", c[0], c[1])
		}
	}
	if _, err := New(16, 2); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0,1) did not panic")
		}
	}()
	MustNew(0, 1)
}

func TestHitAfterInsert(t *testing.T) {
	c := MustNew(16, 4)
	if c.Access(5, false).Hit {
		t.Fatal("cold access hit")
	}
	if !c.Access(5, false).Hit {
		t.Fatal("second access missed")
	}
	if !c.Contains(5) {
		t.Fatal("Contains false after insert")
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(4, 4) // one set
	for k := uint64(0); k < 4; k++ {
		c.Access(k*4, false) // all map to set 0 with 1 set... keys arbitrary
	}
	// Touch 0 to make it MRU; insert new key: victim must not be 0.
	c.Access(0, false)
	res := c.Access(100, false)
	if !res.Evicted {
		t.Fatal("full set did not evict")
	}
	if res.Victim == 0 {
		t.Fatal("evicted the MRU line")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := MustNew(2, 2)
	c.Access(0, true) // dirty
	c.Access(2, false)
	res := c.Access(4, false)
	if !res.Evicted || !res.VictimDirty || res.Victim != 0 {
		t.Fatalf("dirty eviction: %+v", res)
	}
}

func TestWriteMarksDirtyOnHit(t *testing.T) {
	c := MustNew(2, 2)
	c.Access(0, false)
	c.Access(0, true) // hit, now dirty
	c.Access(2, false)
	res := c.Access(4, false)
	if !res.VictimDirty {
		t.Fatalf("dirty-on-hit lost: %+v", res)
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(4, 2)
	c.Access(1, true)
	if !c.Invalidate(1) {
		t.Fatal("Invalidate lost dirty state")
	}
	if c.Contains(1) {
		t.Fatal("line survived invalidation")
	}
	if c.Invalidate(1) {
		t.Fatal("double invalidate reported dirty")
	}
}

func TestSetIsolation(t *testing.T) {
	c := MustNew(8, 2) // 4 sets
	// Fill set 0 (keys ≡ 0 mod 4); keys in other sets must survive.
	c.Access(100, false) // set 0 (100&3 == 0)
	c.Access(1, false)   // set 1
	c.Access(0, false)
	c.Access(4, false)
	c.Access(8, false) // evicts in set 0 only
	if !c.Contains(1) {
		t.Fatal("eviction crossed sets")
	}
}

func TestHitRate(t *testing.T) {
	c := MustNew(4, 4)
	c.Access(1, false)
	c.Access(1, false)
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
	if MustNew(4, 4).HitRate() != 0 {
		t.Fatal("empty cache hit rate nonzero")
	}
}

// Property: after accessing K, Contains(K); capacity never exceeded (no
// panic), and re-access always hits immediately.
func TestPropertyAccessThenHit(t *testing.T) {
	c := MustNew(64, 4)
	f := func(keys []uint64) bool {
		for _, k := range keys {
			c.Access(k, false)
			if !c.Contains(k) {
				return false
			}
			if !c.Access(k, false).Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
