// Package fault models the unreliable half of the paper's threat model:
// the untrusted channel between the CPU and the SDIMM secure buffers. The
// seed treated every sealed exchange as infallible; this package supplies
// the pieces a production cluster needs to survive a hostile or merely
// flaky channel without leaking access patterns:
//
//   - Link: where faults live — a transport for sealed frames that may
//     corrupt, drop, duplicate, replay, stall, or fail-stop.
//   - Injector: a deterministic, seedable fault generator producing per-
//     SDIMM Links from one schedule, so chaos runs are reproducible.
//   - Transactor: a replay-safe request/response ARQ over a Link, with
//     bounded retry, exponential backoff, and counter resynchronization.
//   - Health: per-SDIMM failure tracking (Healthy → Degraded → Failed).
//
// Faults are injected strictly between seccomm.Session.Seal and Open, so
// every fault the injector produces is one the link cryptography must
// detect; nothing in this package can bypass authentication.
package fault

import (
	"errors"
	"fmt"
)

// Direction labels which way a frame crosses the channel.
type Direction int

const (
	// HostToDev carries CPU-sealed commands toward the secure buffer.
	HostToDev Direction = iota
	// DevToHost carries buffer-sealed responses toward the CPU.
	DevToHost
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == HostToDev {
		return "host->dev"
	}
	return "dev->host"
}

// Link is the untrusted transport for sealed frames between the host and
// one SDIMM. Deliver carries a frame in the given direction and returns
// the frames the receiver actually observes: zero (dropped), one, or more
// (duplicated, or a stale frame replayed alongside). A stalled or
// fail-stopped link returns an error instead of delivering.
//
// Implementations may corrupt the returned frames arbitrarily — they carry
// sealed bytes, and anything a Link does must be caught by seccomm.Open.
type Link interface {
	Deliver(dir Direction, frame []byte) ([][]byte, error)
}

// Transport-level errors.
var (
	// ErrStalled reports a link that is temporarily not moving frames
	// (a wedged buffer or contended bus); retrying later may succeed.
	ErrStalled = errors.New("fault: link stalled")
	// ErrFailStop reports a permanently dead SDIMM; retrying cannot help.
	ErrFailStop = errors.New("fault: SDIMM fail-stopped")
	// ErrNoResponse reports an exchange attempt in which no authentic
	// response reached the host (request or response lost/corrupted).
	ErrNoResponse = errors.New("fault: no authentic response received")
	// ErrUnavailable reports an operation routed to an SDIMM already
	// marked Failed; the data it holds is unreachable.
	ErrUnavailable = errors.New("fault: SDIMM unavailable")
)

// Perfect is the fault-free Link: every frame is delivered exactly once,
// unmodified. It is the default transport for clusters built without an
// Injector.
type Perfect struct{}

// Deliver implements Link.
func (Perfect) Deliver(_ Direction, frame []byte) ([][]byte, error) {
	return [][]byte{frame}, nil
}

// SDIMMError attributes a failure to one specific secure buffer, so health
// tracking and operators can tell which SDIMM misbehaved. It wraps the
// underlying cause for errors.Is/As.
type SDIMMError struct {
	// Index is the buffer's position in its cluster.
	Index int
	// ID is the buffer's identity string.
	ID string
	// Op names the operation that failed ("access", "append", "shard",
	// "evict", ...).
	Op string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *SDIMMError) Error() string {
	return fmt.Sprintf("sdimm %d (%s): %s: %v", e.Index, e.ID, e.Op, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *SDIMMError) Unwrap() error { return e.Err }

// AppError marks a device-application failure: the frame crossed the link
// intact and the handler ran, but processing failed (an engine or
// integrity error, not a transport fault). The Transactor never retries an
// AppError — the handler executed, and re-running it could double-apply a
// non-idempotent operation.
type AppError struct {
	Err error
}

// Error implements error.
func (e *AppError) Error() string { return e.Err.Error() }

// Unwrap exposes the handler's error.
func (e *AppError) Unwrap() error { return e.Err }
