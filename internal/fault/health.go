package fault

import (
	"errors"
	"sync"
)

// State is an SDIMM's health as seen by the host.
type State int

const (
	// Healthy: recent exchanges succeed.
	Healthy State = iota
	// Degraded: DegradeAfter consecutive exchanges failed; the SDIMM is
	// still addressed (the faults may be transient) but operators should
	// look at it.
	Degraded
	// Failed: the SDIMM fail-stopped (or crossed FailAfter consecutive
	// failures). Failed is sticky — the host stops routing to it.
	Failed
	// Recovering: the SDIMM came back from a restart and is in post-recovery
	// probation. It is addressed normally (it is not Failed), but operators
	// can tell restart probation apart from in-flight link backoff
	// (Degraded). The first successful exchange promotes it to Healthy.
	Recovering
	// Draining: the SDIMM is being rebalanced away from. It still serves
	// exchanges (migration reads look like ordinary accesses), but the host
	// excludes it from new-leaf placement so its real blocks converge onto
	// the rest of the cluster. Successes do not promote a Draining SDIMM
	// back to Healthy — only an explicit CancelDraining or the terminal
	// MarkRemoved ends a drain.
	Draining
	// Removed: the SDIMM was detached after a completed drain (or replaced
	// by a joining member). Removed is sticky and terminal; the host never
	// routes to a Removed slot.
	Removed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Recovering:
		return "recovering"
	case Draining:
		return "draining"
	case Removed:
		return "removed"
	default:
		return "failed"
	}
}

// CapacityWeight maps a health state to the fraction of the member's
// nominal serving capacity an admission layer should keep advertising for
// it. This is the serving front end's degradation ladder: a Recovering or
// Degraded member is addressed but at half weight (its next exchanges may
// retry or re-probe), a Draining member keeps only a sliver (it serves
// reads but is excluded from placement, so it converges to dummy traffic),
// and Failed/Removed members contribute nothing. Shrinking advertised
// capacity turns a sick member into early backpressure on clients instead
// of late timeouts.
func (s State) CapacityWeight() float64 {
	switch s {
	case Healthy:
		return 1.0
	case Degraded, Recovering:
		return 0.5
	case Draining:
		return 0.25
	default: // Failed, Removed
		return 0
	}
}

// Health tracks one SDIMM's consecutive-failure state machine:
// Healthy → (DegradeAfter consecutive failures) → Degraded → (success) →
// Healthy; ErrFailStop or FailAfter consecutive failures → Failed (sticky).
// Health is safe for concurrent use.
type Health struct {
	mu           sync.Mutex
	degradeAfter int
	failAfter    int // 0: only ErrFailStop marks Failed
	consecutive  int
	state        State
	successes    uint64
	failures     uint64
	lastErr      error
	observer     func(from, to State)
}

// NewHealth builds a tracker. degradeAfter ≤ 0 defaults to 3; failAfter 0
// means only an explicit fail-stop marks the SDIMM Failed.
func NewHealth(degradeAfter, failAfter int) *Health {
	if degradeAfter <= 0 {
		degradeAfter = 3
	}
	return &Health{degradeAfter: degradeAfter, failAfter: failAfter}
}

// SetObserver registers a callback invoked on every state transition. It
// runs under the tracker's lock, so observers see transitions in the exact
// order they happened and must not call back into the Health.
func (h *Health) SetObserver(fn func(from, to State)) {
	h.mu.Lock()
	h.observer = fn
	h.mu.Unlock()
}

// setState transitions the machine and notifies the observer. Caller holds
// the lock.
func (h *Health) setState(to State) {
	from := h.state
	if from == to {
		return
	}
	h.state = to
	if h.observer != nil {
		h.observer(from, to)
	}
}

// Success records a completed exchange. A Degraded SDIMM recovers to
// Healthy; a Failed one stays Failed. A Draining SDIMM stays Draining:
// migration traffic succeeding is expected and must not resurrect the
// member into the placement pool.
func (h *Health) Success() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.successes++
	if h.state == Failed || h.state == Removed {
		return
	}
	h.consecutive = 0
	if h.state == Draining {
		return
	}
	h.setState(Healthy)
}

// Failure records a failed exchange and advances the state machine.
func (h *Health) Failure(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failures++
	h.consecutive++
	h.lastErr = err
	if h.state == Failed || h.state == Removed {
		return
	}
	// A Draining member that fail-stops mid-drain becomes Failed (the drain
	// can no longer complete obliviously; recovery poisons what was left).
	// Transient failures during a drain do not demote it to Degraded — the
	// member is already excluded from placement, and the drain loop retries.
	if h.state == Draining {
		if errors.Is(err, ErrFailStop) || (h.failAfter > 0 && h.consecutive >= h.failAfter) {
			h.setState(Failed)
		}
		return
	}
	switch {
	case errors.Is(err, ErrFailStop):
		h.setState(Failed)
	case h.failAfter > 0 && h.consecutive >= h.failAfter:
		h.setState(Failed)
	case h.consecutive >= h.degradeAfter:
		h.setState(Degraded)
	}
}

// MarkDraining starts a rebalance drain: the member keeps serving
// exchanges but is excluded from new-leaf placement. Failed and Removed
// stay sticky; MarkDraining reports whether the transition (or no-op
// re-entry into Draining) was possible.
func (h *Health) MarkDraining() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == Failed || h.state == Removed {
		return false
	}
	h.consecutive = 0
	h.setState(Draining)
	return true
}

// CancelDraining aborts a drain in progress, returning the member to the
// placement pool (as Healthy). Only a Draining member can be cancelled.
func (h *Health) CancelDraining() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != Draining {
		return false
	}
	h.consecutive = 0
	h.setState(Healthy)
	return true
}

// MarkRemoved retires the member after a completed drain (or a
// replacement join). Removed is terminal and sticky.
func (h *Health) MarkRemoved() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.setState(Removed)
}

// MarkRecovering puts a non-Failed SDIMM into post-restart probation: the
// consecutive-failure streak resets (the pre-crash streak says nothing
// about the restarted process) and the state machine reports Recovering
// until the first successful exchange. Failed and Removed stay sticky,
// and Draining is preserved: a restarted drain is still a drain, and
// demoting it to Recovering would put the member back in the placement
// pool on its first success.
func (h *Health) MarkRecovering() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == Failed || h.state == Removed {
		return
	}
	h.consecutive = 0
	if h.state == Draining {
		return
	}
	h.setState(Recovering)
}

// Restore loads a state snapshot from a durability checkpoint. The
// transition to the restored state fires the observer, so gauges and
// transition counters attached after construction stay exact.
func (h *Health) Restore(st State, consecutive int, successes, failures uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecutive = consecutive
	h.successes = successes
	h.failures = failures
	h.setState(st)
}

// MarkFailed forces the sticky Failed state (fail-stop observed out of
// band).
func (h *Health) MarkFailed(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.setState(Failed)
	if err != nil {
		h.lastErr = err
	}
}

// State returns the current state.
func (h *Health) State() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Consecutive returns the current consecutive-failure streak.
func (h *Health) Consecutive() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.consecutive
}

// Totals returns lifetime success and failure counts.
func (h *Health) Totals() (successes, failures uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.successes, h.failures
}

// LastError returns the most recent failure cause (nil if none).
func (h *Health) LastError() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastErr
}
