package fault

import (
	"sdimm/internal/rng"
	"sdimm/internal/telemetry"
)

// Config is a fault schedule: per-delivery probabilities for each fault
// class. All randomness is derived from Seed, so two injectors with the
// same Config produce byte-identical fault sequences.
type Config struct {
	// Seed drives every fault decision (0 uses 1).
	Seed uint64
	// BitFlip is the probability of flipping one random bit of a frame in
	// flight (channel noise or an active attacker poking ciphertext).
	BitFlip float64
	// MACCorrupt is the probability of entering a transient MAC-key
	// corruption window: for MACOps deliveries every frame's tag is
	// damaged, modelling a flipped key register rather than per-frame
	// noise.
	MACCorrupt float64
	// MACOps is the length of a MAC corruption window in deliveries
	// (default 2).
	MACOps int
	// Drop is the probability a frame vanishes entirely.
	Drop float64
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64
	// Replay is the probability a stale captured frame is re-delivered
	// alongside the current one.
	Replay float64
	// Stall is the probability the link wedges for StallOps deliveries,
	// during which nothing moves in either direction.
	Stall float64
	// StallOps is the length of a stall in deliveries (default 2).
	StallOps int
}

// Rate returns the total per-delivery probability that some fault fires —
// the chaos harness uses it to report the effective fault rate.
func (c Config) Rate() float64 {
	return c.BitFlip + c.MACCorrupt + c.Drop + c.Duplicate + c.Replay + c.Stall
}

// Stats counts injected faults across all links of an injector.
type Stats struct {
	Deliveries     uint64
	BitFlips       uint64
	MACCorruptions uint64 // frames damaged inside MAC-corruption windows
	Drops          uint64
	Duplicates     uint64
	Replays        uint64
	Stalls         uint64 // deliveries refused while stalled
	FailStopped    uint64 // deliveries refused because the SDIMM is dead
}

func (s *Stats) add(o Stats) {
	s.Deliveries += o.Deliveries
	s.BitFlips += o.BitFlips
	s.MACCorruptions += o.MACCorruptions
	s.Drops += o.Drops
	s.Duplicates += o.Duplicates
	s.Replays += o.Replays
	s.Stalls += o.Stalls
	s.FailStopped += o.FailStopped
}

// injectorMetrics mirrors Stats into telemetry counters under
// fault.injected.*. The zero value (all-nil counters) records nothing;
// bump guards every increment.
type injectorMetrics struct {
	deliveries     *telemetry.Counter
	bitFlips       *telemetry.Counter
	macCorruptions *telemetry.Counter
	drops          *telemetry.Counter
	duplicates     *telemetry.Counter
	replays        *telemetry.Counter
	stalls         *telemetry.Counter
	failStopped    *telemetry.Counter
}

func bump(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Injector manufactures per-SDIMM faulty Links from one deterministic
// schedule and carries the runtime controls (fail-stop, forced stalls) the
// chaos harness scripts against.
type Injector struct {
	cfg   Config
	links map[int]*FaultyLink
	tm    injectorMetrics
}

// EnableTelemetry mirrors injected-fault outcomes into reg under the
// fault.injected.* namespace, aggregated across all links (existing and
// future) so the totals line up with Injector.Stats.
func (in *Injector) EnableTelemetry(reg *telemetry.Registry) {
	in.tm = injectorMetrics{
		deliveries:     reg.Counter("fault.injected.deliveries"),
		bitFlips:       reg.Counter("fault.injected.bitflips"),
		macCorruptions: reg.Counter("fault.injected.mac_corruptions"),
		drops:          reg.Counter("fault.injected.drops"),
		duplicates:     reg.Counter("fault.injected.duplicates"),
		replays:        reg.Counter("fault.injected.replays"),
		stalls:         reg.Counter("fault.injected.stalls"),
		failStopped:    reg.Counter("fault.injected.failstops"),
	}
	for _, l := range in.links {
		l.tm = in.tm
	}
}

// NewInjector builds an injector for the given schedule.
func NewInjector(cfg Config) *Injector {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.StallOps <= 0 {
		cfg.StallOps = 2
	}
	if cfg.MACOps <= 0 {
		cfg.MACOps = 2
	}
	return &Injector{cfg: cfg, links: make(map[int]*FaultyLink)}
}

// Link returns the faulty link for SDIMM idx, creating it on first use.
// Each link gets an independent deterministic stream derived from the
// injector seed and the index.
func (in *Injector) Link(idx int) *FaultyLink {
	if l, ok := in.links[idx]; ok {
		return l
	}
	l := &FaultyLink{
		cfg: in.cfg,
		rnd: rng.New(in.cfg.Seed ^ uint64(0x9e37*idx+0xb5)),
		tm:  in.tm,
	}
	in.links[idx] = l
	return l
}

// FailStop permanently kills SDIMM idx: every subsequent delivery on its
// link fails with ErrFailStop.
func (in *Injector) FailStop(idx int) { in.Link(idx).dead = true }

// Revive clears a fail-stop on SDIMM idx's link — the model for replacement
// hardware arriving in the same slot before a cluster-level rejoin.
func (in *Injector) Revive(idx int) { in.Link(idx).dead = false }

// IsFailStopped reports whether SDIMM idx has been fail-stopped.
func (in *Injector) IsFailStopped(idx int) bool {
	l, ok := in.links[idx]
	return ok && l.dead
}

// StallFor wedges SDIMM idx's link for the next n deliveries.
func (in *Injector) StallFor(idx, n int) { in.Link(idx).stalled += n }

// ClearStall releases any forced stall on SDIMM idx's link.
func (in *Injector) ClearStall(idx int) { in.Link(idx).stalled = 0 }

// Stats aggregates fault counts across all links.
func (in *Injector) Stats() Stats {
	var s Stats
	for _, l := range in.links {
		s.add(l.stats)
	}
	return s
}

// FaultyLink is one SDIMM's unreliable channel. At most one fault class
// fires per delivery (plus an independently running MAC-corruption
// window), which keeps the per-delivery fault rate equal to Config.Rate.
type FaultyLink struct {
	cfg     Config
	rnd     *rng.Source
	history [2][][]byte // recent frames per direction, for replay
	stalled int
	macOps  int // remaining deliveries in a MAC corruption window
	dead    bool
	stats   Stats
	tm      injectorMetrics
}

const historyCap = 16

// Deliver implements Link.
func (l *FaultyLink) Deliver(dir Direction, frame []byte) ([][]byte, error) {
	if l.dead {
		l.stats.FailStopped++
		bump(l.tm.failStopped)
		return nil, ErrFailStop
	}
	if l.stalled > 0 {
		l.stalled--
		l.stats.Stalls++
		bump(l.tm.stalls)
		return nil, ErrStalled
	}
	l.stats.Deliveries++
	bump(l.tm.deliveries)

	// The delivered frame is always a copy: corruption must never reach
	// back into the sender's retained buffers (the Transactor caches its
	// last response frame for ARQ retransmission).
	f := append([]byte(nil), frame...)

	var out [][]byte
	r := l.rnd.Float64()
	switch {
	case r < l.cfg.Drop:
		l.stats.Drops++
		bump(l.tm.drops)
	case r < l.cfg.Drop+l.cfg.BitFlip:
		bit := l.rnd.Intn(len(f) * 8)
		f[bit/8] ^= 1 << (bit % 8)
		l.stats.BitFlips++
		bump(l.tm.bitFlips)
		out = [][]byte{f}
	case r < l.cfg.Drop+l.cfg.BitFlip+l.cfg.Duplicate:
		l.stats.Duplicates++
		bump(l.tm.duplicates)
		out = [][]byte{f, append([]byte(nil), f...)}
	case r < l.cfg.Drop+l.cfg.BitFlip+l.cfg.Duplicate+l.cfg.Replay && len(l.history[dir]) > 0:
		stale := l.history[dir][l.rnd.Intn(len(l.history[dir]))]
		l.stats.Replays++
		bump(l.tm.replays)
		out = [][]byte{f, append([]byte(nil), stale...)}
	case r < l.cfg.Drop+l.cfg.BitFlip+l.cfg.Duplicate+l.cfg.Replay+l.cfg.Stall:
		// The stall swallows this frame and the next StallOps-1 deliveries.
		l.stalled = l.cfg.StallOps - 1
		l.stats.Stalls++
		bump(l.tm.stalls)
		return nil, ErrStalled
	default:
		out = [][]byte{f}
	}

	// A MAC-corruption window damages every frame passing while it lasts,
	// independent of the per-frame fault drawn above.
	if l.macOps == 0 && l.cfg.MACCorrupt > 0 && l.rnd.Bool(l.cfg.MACCorrupt) {
		l.macOps = l.cfg.MACOps
	}
	if l.macOps > 0 {
		l.macOps--
		for _, g := range out {
			if len(g) > 0 {
				g[len(g)-1] ^= 0xa5
				l.stats.MACCorruptions++
				bump(l.tm.macCorruptions)
			}
		}
	}

	// Record what was actually observed for future replays.
	h := append(l.history[dir], append([]byte(nil), frame...))
	if len(h) > historyCap {
		h = h[len(h)-historyCap:]
	}
	l.history[dir] = h
	return out, nil
}
