package fault

import "testing"

// The capacity ladder must be monotone in severity: a member never gains
// advertised capacity by getting sicker, and only terminal states zero out.
func TestCapacityWeightLadder(t *testing.T) {
	if w := Healthy.CapacityWeight(); w != 1.0 {
		t.Fatalf("Healthy weight %v, want 1", w)
	}
	order := []State{Healthy, Degraded, Draining, Failed}
	for i := 1; i < len(order); i++ {
		hi, lo := order[i-1].CapacityWeight(), order[i].CapacityWeight()
		if lo > hi {
			t.Fatalf("%v weight %v exceeds %v weight %v", order[i], lo, order[i-1], hi)
		}
	}
	if Recovering.CapacityWeight() != Degraded.CapacityWeight() {
		t.Fatalf("Recovering and Degraded should carry the same weight")
	}
	for _, s := range []State{Failed, Removed} {
		if w := s.CapacityWeight(); w != 0 {
			t.Fatalf("%v weight %v, want 0", s, w)
		}
	}
	for _, s := range []State{Healthy, Degraded, Recovering, Draining} {
		if w := s.CapacityWeight(); w <= 0 || w > 1 {
			t.Fatalf("%v weight %v out of (0,1]", s, w)
		}
	}
}

// A fail-stop mid-serving must drop the weight to zero through the ordinary
// state machine — the admission layer polls State().CapacityWeight() and
// needs no extra wiring.
func TestCapacityWeightTracksTransitions(t *testing.T) {
	h := NewHealth(3, 0)
	if w := h.State().CapacityWeight(); w != 1.0 {
		t.Fatalf("fresh member weight %v, want 1", w)
	}
	for i := 0; i < 3; i++ {
		h.Failure(ErrUnavailable)
	}
	if w := h.State().CapacityWeight(); w != 0.5 {
		t.Fatalf("degraded member weight %v, want 0.5", w)
	}
	h.Success()
	if w := h.State().CapacityWeight(); w != 1.0 {
		t.Fatalf("recovered member weight %v, want 1", w)
	}
	h.MarkDraining()
	if w := h.State().CapacityWeight(); w != 0.25 {
		t.Fatalf("draining member weight %v, want 0.25", w)
	}
	h.Failure(ErrFailStop)
	if w := h.State().CapacityWeight(); w != 0 {
		t.Fatalf("failed member weight %v, want 0", w)
	}
}
