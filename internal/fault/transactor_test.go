package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"sdimm/internal/seccomm"
)

// scriptLink applies a scripted mutation to each delivery in order; once
// the script runs out, deliveries are perfect.
type scriptLink struct {
	script []func(dir Direction, frame []byte) ([][]byte, error)
}

func (l *scriptLink) Deliver(dir Direction, frame []byte) ([][]byte, error) {
	f := append([]byte(nil), frame...)
	if len(l.script) == 0 {
		return [][]byte{f}, nil
	}
	step := l.script[0]
	l.script = l.script[1:]
	return step(dir, f)
}

func drop(_ Direction, _ []byte) ([][]byte, error) { return nil, nil }
func corrupt(_ Direction, f []byte) ([][]byte, error) {
	f[0] ^= 0x01
	return [][]byte{f}, nil
}
func duplicate(_ Direction, f []byte) ([][]byte, error) {
	return [][]byte{f, append([]byte(nil), f...)}, nil
}
func stall(_ Direction, _ []byte) ([][]byte, error) { return nil, ErrStalled }

func newTransactor(t *testing.T, link Link) (*Transactor, *int) {
	t.Helper()
	dev, err := seccomm.NewDevice("dev-under-test", nil)
	if err != nil {
		t.Fatal(err)
	}
	auth := seccomm.NewAuthority()
	auth.Register(dev)
	host, devSess, err := seccomm.Handshake(nil, dev, auth)
	if err != nil {
		t.Fatal(err)
	}
	serves := 0
	tr := &Transactor{
		Host: host,
		Dev:  devSess,
		Link: link,
		Serve: func(body []byte) ([]byte, error) {
			serves++
			return append([]byte("echo:"), body...), nil
		},
		Retry: RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}},
	}
	return tr, &serves
}

func TestExchangeOverPerfectLink(t *testing.T) {
	tr, serves := newTransactor(t, nil)
	for i := 0; i < 3; i++ {
		got, err := tr.Exchange([]byte("ping"))
		if err != nil || string(got) != "echo:ping" {
			t.Fatalf("exchange %d: %q %v", i, got, err)
		}
	}
	if *serves != 3 {
		t.Fatalf("handler ran %d times, want 3", *serves)
	}
	if s := tr.Stats(); s.Exchanges != 3 || s.Retries != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestExchangeSurvivesEachFault drives every single-fault scenario and
// checks the exchange completes with the handler run exactly once.
func TestExchangeSurvivesEachFault(t *testing.T) {
	cases := []struct {
		name   string
		script []func(Direction, []byte) ([][]byte, error)
	}{
		{"request dropped", []func(Direction, []byte) ([][]byte, error){drop}},
		{"request corrupted", []func(Direction, []byte) ([][]byte, error){corrupt}},
		{"request duplicated", []func(Direction, []byte) ([][]byte, error){duplicate}},
		{"request stalled twice", []func(Direction, []byte) ([][]byte, error){stall, stall}},
		// Request arrives, response leg faulted: the device must NOT
		// re-run the handler on the retransmission.
		{"response dropped", []func(Direction, []byte) ([][]byte, error){nil, drop}},
		{"response corrupted", []func(Direction, []byte) ([][]byte, error){nil, corrupt}},
		{"response duplicated", []func(Direction, []byte) ([][]byte, error){nil, duplicate}},
		{"response stalled", []func(Direction, []byte) ([][]byte, error){nil, stall}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			script := tc.script
			for i, f := range script {
				if f == nil {
					script[i] = func(_ Direction, fr []byte) ([][]byte, error) { return [][]byte{fr}, nil }
				}
			}
			tr, serves := newTransactor(t, &scriptLink{script: script})
			got, err := tr.Exchange([]byte("ping"))
			if err != nil || string(got) != "echo:ping" {
				t.Fatalf("exchange: %q %v", got, err)
			}
			if *serves != 1 {
				t.Fatalf("handler ran %d times, want exactly 1", *serves)
			}
			// The link must be fully usable afterwards.
			if got, err := tr.Exchange([]byte("again")); err != nil || string(got) != "echo:again" {
				t.Fatalf("follow-up exchange: %q %v", got, err)
			}
			if *serves != 2 {
				t.Fatalf("follow-up handler count %d, want 2", *serves)
			}
		})
	}
}

// TestRetransmissionsAreByteIdentical proves the obliviousness invariant:
// every retry puts the exact same bytes on the wire as the original
// transmission, in both directions.
func TestRetransmissionsAreByteIdentical(t *testing.T) {
	script := []func(Direction, []byte) ([][]byte, error){corrupt, drop, stall}
	tr, _ := newTransactor(t, &scriptLink{script: script})
	seen := map[Direction][][]byte{}
	tr.Tap = func(dir Direction, attempt int, frame []byte) {
		seen[dir] = append(seen[dir], append([]byte(nil), frame...))
	}
	if _, err := tr.Exchange([]byte("sensitive body")); err != nil {
		t.Fatal(err)
	}
	if len(seen[HostToDev]) < 2 {
		t.Fatalf("expected retransmissions, saw %d host frames", len(seen[HostToDev]))
	}
	for dir, frames := range seen {
		for i := 1; i < len(frames); i++ {
			if !bytes.Equal(frames[0], frames[i]) {
				t.Fatalf("%v frame %d differs from original transmission", dir, i)
			}
		}
	}
}

// TestDeviceARQRetransmitsCachedResponse pins the response-lost path: the
// device serves once, the response is dropped, and the retry is answered
// from the device's response cache (stats.Retransmits advances).
func TestDeviceARQRetransmitsCachedResponse(t *testing.T) {
	ok := func(_ Direction, f []byte) ([][]byte, error) { return [][]byte{f}, nil }
	tr, serves := newTransactor(t, &scriptLink{script: []func(Direction, []byte) ([][]byte, error){ok, drop}})
	got, err := tr.Exchange([]byte("once"))
	if err != nil || string(got) != "echo:once" {
		t.Fatalf("exchange: %q %v", got, err)
	}
	if *serves != 1 {
		t.Fatalf("handler ran %d times, want 1", *serves)
	}
	if s := tr.Stats(); s.Retransmits == 0 {
		t.Fatalf("ARQ retransmission not recorded: %+v", s)
	}
}

// TestAbandonmentResyncsAndRecovers exhausts the retry budget, then checks
// the link still works for the next exchange (counters realigned).
func TestAbandonmentResyncsAndRecovers(t *testing.T) {
	var script []func(Direction, []byte) ([][]byte, error)
	for i := 0; i < 5; i++ {
		script = append(script, drop)
	}
	tr, serves := newTransactor(t, &scriptLink{script: script})
	_, err := tr.Exchange([]byte("doomed"))
	if err == nil {
		t.Fatal("exchange succeeded through 5 drops with 5 attempts")
	}
	if !errors.Is(err, ErrNoResponse) {
		t.Fatalf("abandonment cause: %v", err)
	}
	if s := tr.Stats(); s.Abandoned != 1 || s.Resyncs != 1 {
		t.Fatalf("stats %+v", s)
	}
	// Script exhausted: the link is now perfect. The next exchange must
	// succeed even though counters were left mid-flight.
	got, err := tr.Exchange([]byte("after"))
	if err != nil || string(got) != "echo:after" {
		t.Fatalf("post-abandonment exchange: %q %v", got, err)
	}
	if *serves != 1 {
		t.Fatalf("handler ran %d times, want 1 (abandoned exchange never reached it)", *serves)
	}
}

// TestAbandonmentAfterDeviceServed covers the ambiguous case: the device
// processed the request but every response was lost. The exchange fails,
// and the next exchange still works — the handler must not re-run for the
// abandoned request.
func TestAbandonmentAfterDeviceServed(t *testing.T) {
	ok := func(_ Direction, f []byte) ([][]byte, error) { return [][]byte{f}, nil }
	script := []func(Direction, []byte) ([][]byte, error){
		ok, drop, // attempt 0: served, response lost
		ok, drop, // attempts 1..4: retransmission answered from cache, lost again
		ok, drop,
		ok, drop,
		ok, drop,
	}
	tr, serves := newTransactor(t, &scriptLink{script: script})
	if _, err := tr.Exchange([]byte("ambiguous")); err == nil {
		t.Fatal("exchange succeeded despite all responses lost")
	}
	if *serves != 1 {
		t.Fatalf("handler ran %d times for one abandoned exchange, want 1", *serves)
	}
	got, err := tr.Exchange([]byte("next"))
	if err != nil || string(got) != "echo:next" {
		t.Fatalf("post-ambiguity exchange: %q %v", got, err)
	}
	if *serves != 2 {
		t.Fatalf("handler count %d, want 2", *serves)
	}
}

// TestLateFaultAfterResponseAccepted pins a nasty interaction: the request
// is duplicated, so the device emits two response frames (the second from
// its ARQ cache); the host authenticates the first, then delivery of the
// surplus frame stalls. The exchange MUST still succeed — failing it would
// wedge the link permanently, because the host's receive counter has
// already consumed the response and no retry can ever be answered.
func TestLateFaultAfterResponseAccepted(t *testing.T) {
	ok := func(_ Direction, f []byte) ([][]byte, error) { return [][]byte{f}, nil }
	script := []func(Direction, []byte) ([][]byte, error){
		duplicate, // request leg: device sees the frame twice → 2 outbound
		ok,        // first response frame arrives; host accepts it
		stall,     // surplus ARQ frame dies on the wire
	}
	tr, serves := newTransactor(t, &scriptLink{script: script})
	got, err := tr.Exchange([]byte("ping"))
	if err != nil || string(got) != "echo:ping" {
		t.Fatalf("exchange: %q %v", got, err)
	}
	if *serves != 1 {
		t.Fatalf("handler ran %d times, want 1", *serves)
	}
	if s := tr.Stats(); s.Retries != 0 {
		t.Fatalf("burned %d retries on an already-answered exchange", s.Retries)
	}
}

func TestFailStopAbortsWithoutBurningRetries(t *testing.T) {
	in := NewInjector(Config{Seed: 3})
	in.FailStop(0)
	tr, serves := newTransactor(t, in.Link(0))
	_, err := tr.Exchange([]byte("dead"))
	if !errors.Is(err, ErrFailStop) {
		t.Fatalf("want ErrFailStop, got %v", err)
	}
	if *serves != 0 {
		t.Fatal("handler ran on a fail-stopped link")
	}
	if s := tr.Stats(); s.Retries != 0 {
		t.Fatalf("burned %d retries on a fail-stopped link", s.Retries)
	}
}

func TestAppErrorNotRetried(t *testing.T) {
	tr, _ := newTransactor(t, nil)
	calls := 0
	tr.Serve = func([]byte) ([]byte, error) {
		calls++
		return nil, errors.New("integrity check failed")
	}
	_, err := tr.Exchange([]byte("poison"))
	var app *AppError
	if !errors.As(err, &app) {
		t.Fatalf("want AppError, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("application failure retried %d times", calls)
	}
	// The device consumed the frame and the host got nothing back, but the
	// link must remain usable.
	tr.Serve = func(body []byte) ([]byte, error) { return body, nil }
	if _, err := tr.Exchange([]byte("recover")); err != nil {
		t.Fatalf("exchange after app error: %v", err)
	}
}

// TestExchangeUnderRandomFaultStorm hammers one transactor with a high
// fault rate and verifies every exchange either completes correctly or
// fails cleanly, with the handler running at most once per exchange.
func TestExchangeUnderRandomFaultStorm(t *testing.T) {
	in := NewInjector(Config{
		Seed: 77, BitFlip: 0.05, Drop: 0.05, Duplicate: 0.05, Replay: 0.03, Stall: 0.02, MACCorrupt: 0.02,
	})
	tr, _ := newTransactor(t, in.Link(0))
	served := 0
	tr.Serve = func(body []byte) ([]byte, error) {
		served++
		return body, nil
	}
	completed := 0
	for i := 0; i < 500; i++ {
		body := []byte{byte(i), byte(i >> 8), 0x5a}
		got, err := tr.Exchange(body)
		if err != nil {
			continue
		}
		completed++
		if !bytes.Equal(got, body) {
			t.Fatalf("exchange %d returned wrong body", i)
		}
	}
	if completed < 450 {
		t.Fatalf("only %d/500 exchanges completed under fault storm", completed)
	}
	if served > 500 {
		t.Fatalf("handler ran %d times for 500 exchanges (double execution)", served)
	}
	t.Logf("storm: %d/500 completed, %d serves, stats %+v, faults %+v",
		completed, served, tr.Stats(), in.Stats())
}
