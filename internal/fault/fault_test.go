package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestPerfectLinkDelivers(t *testing.T) {
	frames, err := Perfect{}.Deliver(HostToDev, []byte("frame"))
	if err != nil || len(frames) != 1 || string(frames[0]) != "frame" {
		t.Fatalf("perfect link: %v %v", frames, err)
	}
}

func TestSDIMMErrorAttributionAndUnwrap(t *testing.T) {
	e := &SDIMMError{Index: 3, ID: "sdimm-3", Op: "append", Err: ErrStalled}
	if !errors.Is(e, ErrStalled) {
		t.Fatal("SDIMMError does not unwrap to its cause")
	}
	msg := e.Error()
	for _, want := range []string{"sdimm 3", "sdimm-3", "append", "stalled"} {
		if !bytes.Contains([]byte(msg), []byte(want)) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, BitFlip: 0.2, Drop: 0.2, Duplicate: 0.2, Replay: 0.1, Stall: 0.05}
	run := func() (Stats, [][]byte) {
		in := NewInjector(cfg)
		l := in.Link(0)
		var all [][]byte
		for i := 0; i < 400; i++ {
			frames, err := l.Deliver(HostToDev, []byte{byte(i), byte(i >> 8), 0xcc, 0xdd})
			if err != nil {
				continue
			}
			all = append(all, frames...)
		}
		return in.Stats(), all
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if len(f1) != len(f2) {
		t.Fatalf("delivered frame counts diverged: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if !bytes.Equal(f1[i], f2[i]) {
			t.Fatalf("frame %d diverged", i)
		}
	}
	if s1.Drops == 0 || s1.BitFlips == 0 || s1.Duplicates == 0 || s1.Replays == 0 || s1.Stalls == 0 {
		t.Fatalf("fault classes never fired: %+v", s1)
	}
}

func TestInjectorFaultsNeverMutateSenderFrame(t *testing.T) {
	in := NewInjector(Config{Seed: 9, BitFlip: 1})
	l := in.Link(0)
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	keep := append([]byte(nil), orig...)
	if _, err := l.Deliver(DevToHost, orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, keep) {
		t.Fatal("bit flip reached back into the sender's buffer")
	}
}

func TestInjectorFailStop(t *testing.T) {
	in := NewInjector(Config{Seed: 5})
	if in.IsFailStopped(2) {
		t.Fatal("fresh link reported fail-stopped")
	}
	in.FailStop(2)
	if !in.IsFailStopped(2) {
		t.Fatal("fail-stop not recorded")
	}
	if _, err := in.Link(2).Deliver(HostToDev, []byte("x")); !errors.Is(err, ErrFailStop) {
		t.Fatalf("dead link delivered: %v", err)
	}
	if _, err := in.Link(0).Deliver(HostToDev, []byte("x")); err != nil {
		t.Fatalf("unrelated link affected: %v", err)
	}
}

func TestInjectorStallWindow(t *testing.T) {
	in := NewInjector(Config{Seed: 5, StallOps: 3})
	in.StallFor(0, 3)
	l := in.Link(0)
	for i := 0; i < 3; i++ {
		if _, err := l.Deliver(HostToDev, []byte("x")); !errors.Is(err, ErrStalled) {
			t.Fatalf("delivery %d during stall: %v", i, err)
		}
	}
	if _, err := l.Deliver(HostToDev, []byte("x")); err != nil {
		t.Fatalf("stall did not clear: %v", err)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}.withDefaults()
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestHealthStateMachine(t *testing.T) {
	h := NewHealth(3, 0)
	if h.State() != Healthy {
		t.Fatal("fresh tracker not healthy")
	}
	someErr := errors.New("link noise")
	h.Failure(someErr)
	h.Failure(someErr)
	if h.State() != Healthy {
		t.Fatalf("degraded too early: %v", h.State())
	}
	h.Failure(someErr)
	if h.State() != Degraded {
		t.Fatalf("not degraded after 3 consecutive failures: %v", h.State())
	}
	h.Success()
	if h.State() != Healthy || h.Consecutive() != 0 {
		t.Fatalf("success did not recover: %v %d", h.State(), h.Consecutive())
	}
	h.Failure(ErrFailStop)
	if h.State() != Failed {
		t.Fatalf("fail-stop not sticky-failed: %v", h.State())
	}
	h.Success()
	if h.State() != Failed {
		t.Fatal("Failed state not sticky")
	}
	s, f := h.Totals()
	if s != 2 || f != 4 {
		t.Fatalf("totals %d/%d, want 2/4", s, f)
	}
	if h.LastError() == nil {
		t.Fatal("last error lost")
	}
}

func TestHealthFailAfterThreshold(t *testing.T) {
	h := NewHealth(2, 4)
	e := errors.New("noise")
	for i := 0; i < 3; i++ {
		h.Failure(e)
	}
	if h.State() != Degraded {
		t.Fatalf("want degraded, got %v", h.State())
	}
	h.Failure(e)
	if h.State() != Failed {
		t.Fatalf("want failed after FailAfter streak, got %v", h.State())
	}
}
