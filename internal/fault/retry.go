package fault

import "time"

// RetryPolicy bounds how hard a Transactor fights a faulty link before
// giving up. The zero value selects the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per exchange, including the
	// first (default 8).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it (default 50µs — exchanges are in-process, so the backoff
	// models controller turnaround, not network RTTs).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5ms).
	MaxBackoff time.Duration
	// Sleep performs the backoff wait. Nil uses time.Sleep; deterministic
	// tests and the chaos harness install a no-op or recording func.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// backoff returns the exponential delay before retry number attempt
// (attempt ≥ 1).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}
