package fault

import (
	"errors"
	"testing"

	"sdimm/internal/telemetry"
)

// TestHealthRecoveringTransitionSequence drives the machine through
// post-restart probation, asserting the exact telemetry edge order: entering
// Recovering resets the failure streak, the first success promotes to
// Healthy, and Failed stays sticky against probation.
func TestHealthRecoveringTransitionSequence(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := NewHealth(2, 0)
	w := &healthWatch{}
	w.attach(reg, h)

	someErr := errors.New("transient")
	h.Failure(someErr)
	h.Failure(someErr) // healthy>degraded
	h.MarkRecovering() // degraded>recovering
	if got := h.Consecutive(); got != 0 {
		t.Fatalf("probation kept a consecutive-failure streak of %d", got)
	}
	h.Success()        // recovering>healthy
	h.MarkRecovering() // healthy>recovering
	h.Failure(ErrFailStop)
	h.MarkRecovering() // Failed is sticky: no edge

	want := []string{
		"healthy>degraded",
		"degraded>recovering",
		"recovering>healthy",
		"healthy>recovering",
		"recovering>failed",
	}
	if got := w.log(); !edgesEqual(got, want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	snap := reg.Snapshot()
	if v := snap.Counters["fault.health.transitions{from=recovering,to=healthy}"]; v != 1 {
		t.Fatalf("recovering>healthy counter = %d, want 1", v)
	}
	if v := snap.Counters["fault.health.transitions{from=recovering,to=failed}"]; v != 1 {
		t.Fatalf("recovering>failed counter = %d, want 1", v)
	}
	if v := snap.Gauges["fault.health.state{sdimm=0}"]; v != int64(Failed) {
		t.Fatalf("state gauge = %d, want %d", v, Failed)
	}
}

// TestHealthRestoreFiresObserver pins the durability contract: loading a
// checkpointed health state notifies the observer, so gauges and transition
// counters attached to a freshly built tracker stay exact across recovery.
func TestHealthRestoreFiresObserver(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := NewHealth(3, 0)
	w := &healthWatch{}
	w.attach(reg, h)

	h.Restore(Degraded, 4, 10, 6)
	if got := w.log(); !edgesEqual(got, []string{"healthy>degraded"}) {
		t.Fatalf("edges = %v, want [healthy>degraded]", got)
	}
	if h.State() != Degraded || h.Consecutive() != 4 {
		t.Fatalf("restored state %v/%d, want Degraded/4", h.State(), h.Consecutive())
	}
	if s, f := h.Totals(); s != 10 || f != 6 {
		t.Fatalf("restored totals %d/%d, want 10/6", s, f)
	}
	if v := reg.Snapshot().Gauges["fault.health.state{sdimm=0}"]; v != int64(Degraded) {
		t.Fatalf("state gauge = %d, want %d", v, Degraded)
	}
}
