package fault

import (
	"errors"
	"sync"
	"testing"

	"sdimm/internal/telemetry"
)

// watchHealth mirrors the cluster's telemetry wiring for a tracker: a state
// gauge, one transition counter per edge, and an ordered edge log. The
// observer runs under the tracker's lock, so the log records transitions in
// the exact order they happened even under concurrent drivers.
type healthWatch struct {
	mu    sync.Mutex
	edges []string
}

func (w *healthWatch) attach(reg *telemetry.Registry, h *Health) {
	gauge := reg.Gauge("fault.health.state", "sdimm", "0")
	gauge.Set(int64(Healthy))
	h.SetObserver(func(from, to State) {
		gauge.Set(int64(to))
		reg.Counter("fault.health.transitions", "from", from.String(), "to", to.String()).Inc()
		w.mu.Lock()
		w.edges = append(w.edges, from.String()+">"+to.String())
		w.mu.Unlock()
	})
}

func (w *healthWatch) log() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.edges...)
}

func edgesEqual(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestHealthTransitionSequence drives the state machine deterministically
// through degradation, recovery, and fail-stop, asserting the exact edge
// sequence the observer reports.
func TestHealthTransitionSequence(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := NewHealth(3, 0)
	w := &healthWatch{}
	w.attach(reg, h)

	someErr := errors.New("transient")
	for i := 0; i < 3; i++ {
		h.Failure(someErr)
	}
	h.Success()
	for i := 0; i < 3; i++ {
		h.Failure(someErr)
	}
	h.Failure(ErrFailStop)
	h.Success() // Failed is sticky: no further transition

	want := []string{
		"healthy>degraded",
		"degraded>healthy",
		"healthy>degraded",
		"degraded>failed",
	}
	if got := w.log(); !edgesEqual(got, want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	snap := reg.Snapshot()
	if v := snap.Gauges["fault.health.state{sdimm=0}"]; v != int64(Failed) {
		t.Fatalf("state gauge = %d, want %d", v, Failed)
	}
	if v := snap.Counters["fault.health.transitions{from=healthy,to=degraded}"]; v != 2 {
		t.Fatalf("healthy>degraded counter = %d, want 2", v)
	}
	if v := snap.Counters["fault.health.transitions{from=degraded,to=failed}"]; v != 1 {
		t.Fatalf("degraded>failed counter = %d, want 1", v)
	}
}

// TestHealthConcurrentTransitions hammers one tracker from several
// failure-reporting goroutines while readers poll the public accessors and
// the registry snapshot. Because only failures are recorded, the machine
// can move exactly healthy→degraded→failed no matter the interleaving —
// the observer's ordered log must show precisely those two edges. Run with
// -race to check the locking.
func TestHealthConcurrentTransitions(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := NewHealth(3, 10)
	w := &healthWatch{}
	w.attach(reg, h)

	someErr := errors.New("transient")
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = h.State()
				_ = h.Consecutive()
				_, _ = h.Totals()
				_ = reg.Snapshot()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 25; i++ {
				h.Failure(someErr)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	want := []string{"healthy>degraded", "degraded>failed"}
	if got := w.log(); !edgesEqual(got, want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	if h.State() != Failed {
		t.Fatalf("state = %v, want Failed", h.State())
	}
	if _, failures := h.Totals(); failures != 100 {
		t.Fatalf("failures = %d, want 100", failures)
	}
	snap := reg.Snapshot()
	if v := snap.Counters["fault.health.transitions{from=healthy,to=degraded}"]; v != 1 {
		t.Fatalf("healthy>degraded counter = %d, want 1", v)
	}
	if v := snap.Counters["fault.health.transitions{from=degraded,to=failed}"]; v != 1 {
		t.Fatalf("degraded>failed counter = %d, want 1", v)
	}
	if v := snap.Gauges["fault.health.state{sdimm=0}"]; v != int64(Failed) {
		t.Fatalf("state gauge = %d, want %d", v, Failed)
	}
}
